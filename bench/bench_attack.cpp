// Adversarial linkage attack (extension experiment): the server tries
// to link a query to the earlier query that evicted the same page, by
// matching the data-dependent extra read against its write log. The
// privacy parameter c bounds the relocation skew the attack exploits,
// so precision falls as privacy tightens (larger k / smaller c) and
// collapses at the full-scan end.

#include <cstdio>

#include "analysis/frequency_attack.h"
#include "analysis/linkage_attack.h"
#include "baselines/encrypted_store.h"
#include "bench/bench_util.h"
#include "crypto/secure_random.h"

namespace {

using namespace shpir;

void Attack(const char* workload_name, uint64_t n, uint64_t m, uint64_t k,
            uint64_t seed,
            const std::function<storage::PageId(crypto::SecureRandom&)>&
                pick) {
  core::CApproxPir::Options options;
  options.num_pages = n;
  options.page_size = 32;
  options.cache_pages = m;
  options.block_size = k;
  auto rig = bench::MakeEngineRig(options, seed);
  crypto::SecureRandom workload(seed + 99);
  auto report = analysis::RunLinkageAttack(
      *rig->engine, rig->trace, 6000,
      [&]() { return pick(workload); });
  SHPIR_CHECK(report.ok());
  std::printf("%-22s %5llu %7.3f %10.1f%% %10.1f%%\n", workload_name,
              (unsigned long long)k, rig->engine->achieved_privacy(),
              100.0 * report->coverage(), 100.0 * report->precision());
}

// §1's argument against encryption-only defenses, made concrete: a
// frequency-analysis adversary with a popularity prior identifies
// queries against a static encrypted layout but not against the
// relocating engine.
void FrequencyContrast() {
  constexpr uint64_t kN = 64;
  constexpr size_t kPageSize = 32;
  constexpr size_t kSealedSize = 12 + 8 + kPageSize + 32;
  constexpr int kRequests = 20000;

  // Zipf prior shared by the workload and the adversary.
  std::vector<double> popularity(kN);
  double total = 0;
  for (uint64_t i = 0; i < kN; ++i) {
    popularity[i] = 1.0 / static_cast<double>(i + 1);
    total += popularity[i];
  }
  for (double& p : popularity) {
    p /= total;
  }
  auto draw = [&](crypto::SecureRandom& rng) -> storage::PageId {
    double x = rng.UniformDouble();
    for (uint64_t i = 0; i < kN; ++i) {
      x -= popularity[i];
      if (x <= 0) {
        return i;
      }
    }
    return kN - 1;
  };

  std::printf("\nFrequency-analysis contrast (Zipf workload, %d queries):\n",
              kRequests);

  // Static encrypted store: encryption alone.
  {
    storage::MemoryDisk disk(kN, kSealedSize);
    auto cpu = hardware::SecureCoprocessor::Create(
        hardware::HardwareProfile::Ibm4764(), &disk, kPageSize, 31);
    SHPIR_CHECK(cpu.ok());
    baselines::StaticEncryptedStore::Options options{kN, kPageSize};
    auto store =
        baselines::StaticEncryptedStore::Create(cpu->get(), options);
    SHPIR_CHECK(store.ok());
    SHPIR_CHECK_OK((*store)->Initialize({}));
    crypto::SecureRandom rng(32);
    std::vector<storage::Location> observed;
    std::vector<storage::PageId> truth;
    for (int i = 0; i < kRequests; ++i) {
      const storage::PageId id = draw(rng);
      SHPIR_CHECK((*store)->Retrieve(id).ok());
      observed.push_back((*store)->LocationOf(id));
      truth.push_back(id);
    }
    const auto report =
        analysis::RunFrequencyAttack(observed, truth, popularity);
    std::printf("  encrypted-static: %5.1f%% of queries identified\n",
                100.0 * report.accuracy());
  }

  // The c-approximate engine.
  {
    core::CApproxPir::Options options;
    options.num_pages = kN;
    options.page_size = kPageSize;
    options.cache_pages = 8;
    options.block_size = 8;
    auto rig = bench::MakeEngineRig(options, 33);
    crypto::SecureRandom rng(34);
    const uint64_t k = rig->engine->block_size();
    std::vector<storage::Location> observed;
    std::vector<storage::PageId> truth;
    size_t cursor = rig->trace.events().size();
    for (int i = 0; i < kRequests; ++i) {
      const storage::PageId id = draw(rng);
      SHPIR_CHECK(rig->engine->Retrieve(id).ok());
      truth.push_back(id);
      uint64_t reads = 0;
      for (; cursor < rig->trace.events().size(); ++cursor) {
        const auto& event = rig->trace.events()[cursor];
        if (event.op == storage::AccessEvent::Op::kRead) {
          ++reads;
          if (reads == k + 1) {
            observed.push_back(event.location);
          }
        }
      }
    }
    const auto report =
        analysis::RunFrequencyAttack(observed, truth, popularity);
    std::printf("  c-approx (c~1.6): %5.1f%% of queries identified "
                "(chance ~ %.1f%%)\n",
                100.0 * report.accuracy(), 100.0 / kN);
  }
}

}  // namespace

int main() {
  std::printf(
      "Linkage attack: adversary links each query's extra read to the\n"
      "most recent write of that location and guesses the requested page\n"
      "was the one evicted then. 6000 queries, n = 256, m = 8.\n\n");
  std::printf("%-22s %5s %7s %11s %11s\n", "workload", "k", "c",
              "coverage", "precision");

  auto uniform = [](crypto::SecureRandom& rng) -> storage::PageId {
    return rng.UniformInt(256);
  };
  // Privacy sweep: larger blocks -> smaller c -> weaker attack.
  for (uint64_t k : {4u, 8u, 16u, 32u, 64u, 128u}) {
    Attack("uniform", 256, 8, k, 1000 + k, uniform);
  }
  // Worst-case client behavior: immediate re-requests.
  auto hot = [](crypto::SecureRandom& rng) -> storage::PageId {
    return rng.UniformInt(10) < 8 ? rng.UniformInt(2)
                                  : rng.UniformInt(256);
  };
  for (uint64_t k : {8u, 64u}) {
    Attack("hot-pair (80%)", 256, 8, k, 2000 + k, hot);
  }

  std::printf(
      "\nReading: precision decays toward the random baseline as k grows\n"
      "(privacy parameter c -> 1). Clients that immediately re-request\n"
      "hot pages leak the most — matching the paper's guidance that the\n"
      "scheme suits applications tolerating approximate privacy, with c\n"
      "as the dial.\n");

  FrequencyContrast();
  return 0;
}
