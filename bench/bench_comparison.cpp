// Constant vs amortized latency: the paper's headline claim (§1/§2).
// Runs the c-approximate engine against trivial PIR, Wang et al.
// (ESORICS'06) and a pyramid ORAM on the same database and reports the
// per-query simulated-latency distribution. The c-approximate scheme
// trades a little privacy for a *flat* latency profile; the baselines
// are either uniformly slow (trivial) or spiky (reshuffle-based).

#include <algorithm>
#include <cstdio>
#include <vector>

#include "baselines/pyramid_oram.h"
#include "baselines/sqrt_oram.h"
#include "baselines/trivial_pir.h"
#include "baselines/wang_pir.h"
#include "bench/bench_util.h"
#include "crypto/secure_random.h"
#include "model/cost_model.h"

namespace {

using namespace shpir;

constexpr uint64_t kNumPages = 4096;
constexpr size_t kPageSize = 256;
constexpr int kQueries = 2000;

struct LatencyStats {
  double min_ms, p50_ms, mean_ms, p95_ms, p99_ms, max_ms, total_s;
};

LatencyStats Summarize(std::vector<double>& seconds) {
  std::sort(seconds.begin(), seconds.end());
  double total = 0;
  for (double s : seconds) {
    total += s;
  }
  auto pct = [&](double p) {
    return seconds[static_cast<size_t>(p * (seconds.size() - 1))] * 1000;
  };
  return LatencyStats{seconds.front() * 1000, pct(0.50),
                      total / seconds.size() * 1000, pct(0.95), pct(0.99),
                      seconds.back() * 1000, total};
}

void Report(const char* name, const LatencyStats& stats) {
  std::printf("%-12s %9.2f %9.2f %9.2f %9.2f %9.2f %10.2f %9.1f\n", name,
              stats.min_ms, stats.p50_ms, stats.mean_ms, stats.p95_ms,
              stats.p99_ms, stats.max_ms, stats.total_s);
}

/// Runs `queries` against `engine`, returning per-query simulated time.
std::vector<double> Drive(core::PirEngine& engine,
                          hardware::SecureCoprocessor& cpu,
                          uint64_t workload_seed) {
  crypto::SecureRandom rng(workload_seed);
  std::vector<double> seconds;
  seconds.reserve(kQueries);
  const hardware::HardwareProfile& profile = cpu.profile();
  for (int i = 0; i < kQueries; ++i) {
    const auto before = cpu.cost().Snapshot();
    SHPIR_CHECK(engine.Retrieve(rng.UniformInt(kNumPages)).ok());
    const auto delta = cpu.cost().Snapshot() - before;
    seconds.push_back(hardware::CostAccountant::Seconds(delta, profile));
  }
  return seconds;
}

}  // namespace

int main() {
  const auto profile = hardware::HardwareProfile::Ibm4764();
  bench::PrintTable2(profile);
  std::printf(
      "Per-query simulated latency over %d uniform queries, n = %llu "
      "pages x %zu B:\n\n",
      kQueries, (unsigned long long)kNumPages, kPageSize);
  std::printf("%-12s %9s %9s %9s %9s %9s %10s %9s\n", "engine", "min ms",
              "p50 ms", "mean ms", "p95 ms", "p99 ms", "max ms", "total s");

  // c-approximate PIR (this paper), c = 2, m = 256.
  {
    core::CApproxPir::Options options;
    options.num_pages = kNumPages;
    options.page_size = kPageSize;
    options.cache_pages = 256;
    options.privacy_c = 2.0;
    auto rig = bench::MakeEngineRig(options, 1);
    auto lat = Drive(*rig->engine, *rig->cpu, 100);
    const auto stats = Summarize(lat);
    Report("c-approx", stats);
    std::printf("%-12s  (k = %llu, achieved c = %.3f — constant cost by "
                "construction)\n",
                "", (unsigned long long)rig->engine->block_size(),
                rig->engine->achieved_privacy());
  }

  // Trivial PIR: perfect privacy, O(n) per query.
  {
    storage::MemoryDisk disk(kNumPages, bench::SealedSize(kPageSize));
    auto cpu = hardware::SecureCoprocessor::Create(profile, &disk,
                                                   kPageSize, 2);
    SHPIR_CHECK(cpu.ok());
    baselines::TrivialPir::Options options{kNumPages, kPageSize};
    auto pir = baselines::TrivialPir::Create(cpu->get(), options);
    SHPIR_CHECK(pir.ok());
    SHPIR_CHECK_OK((*pir)->Initialize({}));
    auto lat = Drive(**pir, **cpu, 101);
    Report("trivial", Summarize(lat));
  }

  // Wang et al.: O(1) until the storage fills, then an O(n) reshuffle.
  {
    storage::MemoryDisk disk(kNumPages, bench::SealedSize(kPageSize));
    auto cpu = hardware::SecureCoprocessor::Create(profile, &disk,
                                                   kPageSize, 3);
    SHPIR_CHECK(cpu.ok());
    baselines::WangPir::Options options;
    options.num_pages = kNumPages;
    options.page_size = kPageSize;
    options.cache_pages = 256;
    auto pir = baselines::WangPir::Create(cpu->get(), options);
    SHPIR_CHECK(pir.ok());
    SHPIR_CHECK_OK((*pir)->Initialize({}));
    auto lat = Drive(**pir, **cpu, 102);
    const auto stats = Summarize(lat);
    Report("wang06", stats);
    std::printf("%-12s  (%llu full reshuffles — the max/p50 gap is the "
                "amortization spike)\n",
                "", (unsigned long long)(*pir)->reshuffles());
  }

  // Square-root ORAM: O(sqrt n) per query plus epoch reshuffles.
  {
    baselines::SqrtOram::Options options;
    options.num_pages = kNumPages;
    options.page_size = kPageSize;
    auto slots = baselines::SqrtOram::DiskSlots(options);
    SHPIR_CHECK(slots.ok());
    storage::MemoryDisk disk(*slots, bench::SealedSize(kPageSize));
    auto cpu = hardware::SecureCoprocessor::Create(profile, &disk,
                                                   kPageSize, 5);
    SHPIR_CHECK(cpu.ok());
    auto oram = baselines::SqrtOram::Create(cpu->get(), options);
    SHPIR_CHECK(oram.ok());
    SHPIR_CHECK_OK((*oram)->Initialize({}));
    auto lat = Drive(**oram, **cpu, 104);
    const auto stats = Summarize(lat);
    Report("sqrt-oram", stats);
    std::printf("%-12s  (shelter = %llu, %llu epoch reshuffles)\n", "",
                (unsigned long long)(*oram)->shelter_slots(),
                (unsigned long long)(*oram)->reshuffles());
  }

  // Pyramid ORAM: polylog amortized, geometric rebuild spikes.
  {
    baselines::PyramidOram::Options options;
    options.num_pages = kNumPages;
    options.page_size = kPageSize;
    options.stash_pages = 8;
    auto slots = baselines::PyramidOram::DiskSlots(options);
    SHPIR_CHECK(slots.ok());
    storage::MemoryDisk disk(*slots, bench::SealedSize(kPageSize));
    auto cpu = hardware::SecureCoprocessor::Create(profile, &disk,
                                                   kPageSize, 4);
    SHPIR_CHECK(cpu.ok());
    auto oram = baselines::PyramidOram::Create(cpu->get(), options);
    SHPIR_CHECK(oram.ok());
    SHPIR_CHECK_OK((*oram)->Initialize({}));
    auto lat = Drive(**oram, **cpu, 103);
    const auto stats = Summarize(lat);
    Report("pyramid-oram", stats);
    std::printf("%-12s  (%llu level rebuilds)\n", "",
                (unsigned long long)(*oram)->rebuilds());
  }

  std::printf(
      "\nShape check vs the paper: c-approx keeps p50 == max (constant\n"
      "response time) at a fraction of trivial PIR's cost; wang06 and the\n"
      "ORAM have cheap medians but orders-of-magnitude worst cases — the\n"
      "\"server offline for large periods\" problem the paper attacks.\n");
  return 0;
}
