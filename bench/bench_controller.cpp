// Adaptive privacy/cost control under a bursty workload: two
// c-approximate shards serve an open-loop diurnal arrival stream with
// 5x bursts, once with a static block size (the most private feasible
// k) and once under the PrivacyCostController (src/control/), which
// steps k down the feasible ladder when queue pressure and SLO burn
// rise and back up when the system quiets.
//
// The paper's Eq. 5 trade-off made operational: smaller k means
// cheaper 2(k+1)-page rounds (lower service time) at a larger — but
// still ladder-bounded — c. The static configuration holds peak
// privacy and misses the 50 ms latency SLO through every burst; the
// adaptive run spends bounded privacy headroom to hold the SLO, and
// the live PrivacyMonitor estimate never exceeds the configured
// c_bound.
//
// Everything is simulated time (discrete-event FIFO per shard, service
// time from the Fig. 3 cost shape 4 seeks + 2(k+1) page IOs), so runs
// are deterministic given the seed. The real engines execute every
// query — block-size transitions land at true scan-period boundaries
// and the privacy monitors measure real relocation streams.

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <deque>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_report.h"
#include "bench/bench_util.h"
#include "control/controller.h"
#include "obs/privacy_monitor.h"
#include "obs/slo.h"
#include "workload/workload.h"

namespace {

using namespace shpir;

constexpr uint64_t kNumPages = 250;
constexpr uint64_t kInsertReserve = 6;  // Pads the disk to 256 slots.
constexpr size_t kPageSize = 128;
constexpr uint64_t kCachePages = 8;
constexpr uint64_t kStaticK = 128;  // Most private feasible rung.
constexpr uint64_t kShards = 2;
constexpr double kCBound = 4.0;
constexpr uint64_t kSloThresholdNs = 50'000'000;  // 50 ms.
constexpr size_t kQueueCapacity = 64;

// Modeled service time for one round at block size k: 4 seeks +
// 2(k+1) page IOs (Eq. 8 shape) with a 64 KB-page disk in mind.
// k = 128 -> 35.8 ms, k = 64 -> 23.0 ms, k = 32 -> 16.6 ms.
constexpr uint64_t kSeekNs = 2'500'000;
constexpr uint64_t kPageIoNs = 100'000;

uint64_t g_duration_s = 600;  // Reduced by --short.

uint64_t ServiceNs(uint64_t k) {
  return 4 * kSeekNs + 2 * (k + 1) * kPageIoNs;
}

/// One simulated shard: a real engine + monitor fed by the simulation,
/// an SLO tracker on simulated time, and a FIFO queue.
struct SimShard {
  std::unique_ptr<bench::EngineRig> rig;
  std::unique_ptr<obs::PrivacyMonitor> monitor;
  std::unique_ptr<obs::SloTracker> slo;
  std::unique_ptr<workload::DiurnalBurstyWorkload> arrivals;
  std::deque<workload::TimedRequest> queue;
  bool stream_open = true;
  // Maturity gate for worst_c sampling: every retune rebases the
  // monitor, and right after a rebase the bin ratio is small-sample
  // noise. Only estimates backed by >= 50 * T relocations since the
  // last rebase count (the stability guidance in privacy_monitor.h).
  uint64_t last_rebases = 0;
  uint64_t rebase_floor = 0;
  uint64_t server_free_ns = 0;
  uint64_t served = 0;
  uint64_t missed = 0;
};

/// ControlPlant over the simulation: live signals come from the real
/// engines/monitors and the simulated queues/SLO clocks.
class SimPlant : public control::ControlPlant {
 public:
  explicit SimPlant(std::vector<SimShard>* shards) : shards_(shards) {}

  void set_now_ns(uint64_t now_ns) { now_ns_ = now_ns; }

  uint64_t shards() const override { return shards_->size(); }
  uint64_t disk_slots(uint64_t shard) const override {
    return (*shards_)[shard].rig->engine->disk_slots();
  }
  uint64_t cache_pages(uint64_t shard) const override {
    return (*shards_)[shard].rig->engine->cache_pages();
  }

  control::ShardSignals Read(uint64_t shard) override {
    SimShard& s = (*shards_)[shard];
    control::ShardSignals signals;
    signals.block_size = s.rig->engine->published_block_size();
    signals.pending_block_size = s.rig->engine->pending_block_size();
    signals.c_estimate = s.monitor->EstimateOrZero();
    signals.queue_fraction =
        std::min(1.0, static_cast<double>(s.queue.size()) /
                          static_cast<double>(kQueueCapacity));
    const obs::SloTracker::Snapshot snapshot = s.slo->EvaluateAt(now_ns_);
    for (const auto* sli : {&snapshot.availability, &snapshot.latency}) {
      for (size_t r = 0; r < obs::SloTracker::kNumRules; ++r) {
        const auto& rule = sli->rules[r];
        const double threshold =
            obs::SloTracker::kDefaultRules[r].burn_threshold;
        const double burn =
            std::min(rule.short_burn, rule.long_burn) / threshold;
        signals.burn = std::max(signals.burn, burn);
        signals.slo_firing = signals.slo_firing || rule.firing;
      }
    }
    return signals;
  }

  Status RequestBlockSize(uint64_t shard, uint64_t new_k) override {
    return (*shards_)[shard].rig->engine->RequestBlockSize(new_k);
  }

 private:
  std::vector<SimShard>* shards_;
  uint64_t now_ns_ = 0;
};

struct RunResult {
  uint64_t total = 0;
  uint64_t missed = 0;
  double worst_c = 0.0;  // Worst live monitor estimate observed.
  uint64_t min_k_seen = kStaticK;
  uint64_t transitions = 0;
  uint64_t applied = 0;
  uint64_t clamps = 0;
  double miss_fraction() const {
    return total == 0 ? 0.0
                      : static_cast<double>(missed) /
                            static_cast<double>(total);
  }
};

std::vector<SimShard> MakeShards(uint64_t seed) {
  std::vector<SimShard> shards(kShards);
  for (uint64_t i = 0; i < kShards; ++i) {
    core::CApproxPir::Options options;
    options.num_pages = kNumPages;
    options.page_size = kPageSize;
    options.cache_pages = kCachePages;
    options.block_size = kStaticK;
    options.insert_reserve = kInsertReserve;
    shards[i].rig = bench::MakeEngineRig(options, seed + i);
    obs::PrivacyMonitor::Options mopts;
    mopts.scan_period = shards[i].rig->engine->scan_period();
    mopts.window = 4096;
    shards[i].monitor = std::make_unique<obs::PrivacyMonitor>(mopts);
    shards[i].rig->engine->AttachPrivacyMonitor(shards[i].monitor.get());
    obs::SloTracker::Objectives objectives;
    objectives.latency_threshold_ns = kSloThresholdNs;
    shards[i].slo = std::make_unique<obs::SloTracker>(objectives);
    workload::DiurnalBurstyWorkload::Options wopts;
    wopts.num_pages = kNumPages;
    wopts.base_qps = 8.0;
    wopts.burst_factor = 3.5;
    wopts.mean_burst_interval_s = 120.0;
    wopts.burst_duration_s = 30.0;
    wopts.seed = seed * 1000 + i + 1;
    shards[i].arrivals =
        std::make_unique<workload::DiurnalBurstyWorkload>(wopts);
  }
  return shards;
}

RunResult Simulate(bool adaptive, uint64_t seed) {
  std::vector<SimShard> shards = MakeShards(seed);
  SimPlant plant(&shards);
  std::unique_ptr<control::PrivacyCostController> controller;
  if (adaptive) {
    control::PrivacyCostController::Options copts;
    copts.c_bound = kCBound;
    copts.k_min = 16;
    copts.cooldown_ticks = 0;
    // React on a half-full queue and only step back up once it has
    // really drained: bursts are marginal, so a wide band stops the
    // controller flapping between rungs inside one burst.
    copts.pressure_high = 0.4;
    copts.pressure_low = 0.1;
    Result<std::unique_ptr<control::PrivacyCostController>> created =
        control::PrivacyCostController::Create(copts, &plant);
    SHPIR_CHECK(created.ok());
    controller = std::move(*created);
  }

  RunResult result;
  // Per-shard pending arrival pulled from the generator but not yet
  // admitted (arrival beyond the current tick window).
  std::vector<workload::TimedRequest> pending(kShards);
  std::vector<bool> have_pending(kShards, false);
  const uint64_t horizon_ns = g_duration_s * 1'000'000'000ULL;
  for (uint64_t tick = 1; tick * 1'000'000'000ULL <= horizon_ns; ++tick) {
    const uint64_t now_ns = tick * 1'000'000'000ULL;
    for (uint64_t i = 0; i < kShards; ++i) {
      SimShard& shard = shards[i];
      // Admit this tick's arrivals.
      while (shard.stream_open) {
        if (!have_pending[i]) {
          pending[i] = shard.arrivals->Next();
          have_pending[i] = true;
        }
        if (pending[i].arrival_ns > now_ns) {
          break;
        }
        if (pending[i].arrival_ns >= horizon_ns) {
          shard.stream_open = false;
          break;
        }
        shard.queue.push_back(pending[i]);
        have_pending[i] = false;
      }
      // Serve everything that can start before this tick's edge.
      while (!shard.queue.empty()) {
        const workload::TimedRequest head = shard.queue.front();
        const uint64_t start =
            std::max(head.arrival_ns, shard.server_free_ns);
        if (start >= now_ns) {
          break;
        }
        shard.queue.pop_front();
        // The real engine round: transitions apply only at true
        // scan-period boundaries, the monitor sees real relocations.
        SHPIR_CHECK(shard.rig->engine->Retrieve(head.page).ok());
        const uint64_t k = shard.rig->engine->published_block_size();
        const uint64_t finish = start + ServiceNs(k);
        shard.server_free_ns = finish;
        const uint64_t sojourn = finish - head.arrival_ns;
        shard.slo->RecordAt(finish, sojourn, /*ok=*/true);
        ++shard.served;
        if (sojourn > kSloThresholdNs) {
          ++shard.missed;
        }
        result.min_k_seen = std::min(result.min_k_seen, k);
      }
    }
    plant.set_now_ns(now_ns);
    if (controller != nullptr) {
      controller->TickNow();
      for (const auto& decision : controller->Trail()) {
        if (decision.tick == controller->ticks() &&
            decision.outcome ==
                control::PrivacyCostController::Outcome::kApplied) {
          ++result.applied;
        }
      }
    }
    for (SimShard& shard : shards) {
      if (shard.monitor->rebases() != shard.last_rebases) {
        shard.last_rebases = shard.monitor->rebases();
        shard.rebase_floor = shard.monitor->relocations();
      }
      const uint64_t settled =
          shard.monitor->relocations() - shard.rebase_floor;
      if (settled >= 50 * shard.monitor->scan_period()) {
        result.worst_c =
            std::max(result.worst_c, shard.monitor->EstimateOrZero());
      }
    }
  }
  for (SimShard& shard : shards) {
    result.total += shard.served;
    result.missed += shard.missed;
    result.transitions += shard.rig->engine->block_size_transitions();
  }
  if (controller != nullptr) {
    result.clamps = controller->emergency_clamps();
  }
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--short") == 0) {
      g_duration_s = 180;
    }
  }
  std::printf(
      "Adaptive privacy/cost control vs static k under a diurnal\n"
      "workload with 5x bursts: %llu shards x %llu pages, ladder\n"
      "bounded by c <= %.1f, latency SLO %.0f ms, %llu s simulated.\n\n",
      (unsigned long long)kShards, (unsigned long long)kNumPages, kCBound,
      kSloThresholdNs / 1e6, (unsigned long long)g_duration_s);

  const RunResult fixed = Simulate(/*adaptive=*/false, 7);
  const RunResult adaptive = Simulate(/*adaptive=*/true, 7);

  std::printf("%-10s %8s %8s %10s %8s %8s %12s\n", "run", "served",
              "missed", "miss_frac", "min_k", "worst_c", "transitions");
  std::printf("%-10s %8llu %8llu %10.4f %8llu %8.3f %12llu\n", "static",
              (unsigned long long)fixed.total,
              (unsigned long long)fixed.missed, fixed.miss_fraction(),
              (unsigned long long)fixed.min_k_seen, fixed.worst_c,
              (unsigned long long)fixed.transitions);
  std::printf("%-10s %8llu %8llu %10.4f %8llu %8.3f %12llu\n", "adaptive",
              (unsigned long long)adaptive.total,
              (unsigned long long)adaptive.missed,
              adaptive.miss_fraction(),
              (unsigned long long)adaptive.min_k_seen, adaptive.worst_c,
              (unsigned long long)adaptive.transitions);

  // The claim the report gates on: the controller turns an SLO-missing
  // static configuration into an SLO-meeting one without ever letting
  // the measured c break the bound.
  SHPIR_CHECK(adaptive.miss_fraction() < fixed.miss_fraction());
  SHPIR_CHECK(adaptive.worst_c <= kCBound);

  bench::BenchReport report("bench_controller");
  report.SetParam("shards", kShards);
  report.SetParam("num_pages", kNumPages);
  report.SetParam("cache_pages", kCachePages);
  report.SetParam("static_k", kStaticK);
  report.SetParam("c_bound", kCBound);
  report.SetParam("slo_threshold_ms", kSloThresholdNs / 1e6);
  report.SetParam("duration_s", g_duration_s);
  report.SetParam("time_base", std::string("simulated_fifo"));
  // Hard budgets: the adaptive run must meet the SLO (static does not)
  // and the worst live c-estimate must stay under the configured bound.
  report.AddBudgetMetric("adaptive_miss_fraction",
                         adaptive.miss_fraction(), 0.15);
  report.AddBudgetMetric("adaptive_worst_measured_c", adaptive.worst_c,
                         kCBound);
  report.AddMetric("static_miss_fraction", fixed.miss_fraction(),
                   bench::BenchReport::Direction::kNone, 0.0);
  report.AddMetric("adaptive_min_k",
                   static_cast<double>(adaptive.min_k_seen),
                   bench::BenchReport::Direction::kNone, 0.0);
  report.AddMetric("adaptive_transitions",
                   static_cast<double>(adaptive.transitions),
                   bench::BenchReport::Direction::kNone, 0.0);
  report.AddMetric("adaptive_applied_decisions",
                   static_cast<double>(adaptive.applied),
                   bench::BenchReport::Direction::kNone, 0.0);
  report.AddMetric("emergency_clamps",
                   static_cast<double>(adaptive.clamps),
                   bench::BenchReport::Direction::kNone, 0.0);
  if (report.WriteJson("BENCH_controller.json")) {
    std::printf("\nwrote BENCH_controller.json\n");
  }
  std::printf(
      "\nReading: the static run holds k = %llu (c = 1.14) and queues\n"
      "collapse under every burst; the controller steps k down the\n"
      "c <= %.1f ladder when pressure rises and back up when it falls,\n"
      "holding the latency SLO while the measured c never crosses the\n"
      "bound. Every decision is in the auditable trail (shpir_ctl).\n",
      (unsigned long long)kStaticK, kCBound);
  return 0;
}
