// Reproduces the paper's §5 coprocessor-count analysis: secure storage
// (Eq. 7) dictates how many 64MB IBM 4764 units a deployment needs.
// "100GB databases will require 10 coprocessors ... for 1TB databases,
// sub-second page retrieval times are only feasible with over 4GB of
// secure storage ... over 70 coprocessor units."

#include <cstdio>

#include "common/check.h"
#include "core/security_parameter.h"
#include "hardware/profile.h"
#include "model/cost_model.h"

int main() {
  using namespace shpir;
  using hardware::kKB;
  using hardware::kMB;
  const auto profile = hardware::HardwareProfile::Ibm4764();

  struct Row {
    const char* db;
    uint64_t n;
    uint64_t page_size;
    uint64_t m;
  };
  const Row rows[] = {
      {"1GB", 1000000, kKB, 50000},
      {"10GB", 10000000, kKB, 20000},
      {"10GB", 10000000, kKB, 80000},
      {"100GB", 100000000, kKB, 200000},
      {"1TB", 1000000000, kKB, 500000},
      {"1GB", 100000, 10 * kKB, 5000},
      {"10GB", 1000000, 10 * kKB, 5000},
      {"100GB", 10000000, 10 * kKB, 60000},
      {"1TB", 100000000, 10 * kKB, 400000},
  };

  std::printf(
      "Coprocessor provisioning (Eq. 7 secure storage / 64MB units):\n\n");
  std::printf("%-6s %8s %10s %8s %14s %10s %8s\n", "DB", "B", "m", "k",
              "storage (MB)", "resp (ms)", "units");
  for (const Row& row : rows) {
    auto eval = model::CostModel::Evaluate(row.n, row.m, row.page_size, 2.0,
                                           profile);
    SHPIR_CHECK(eval.ok());
    const double storage_mb =
        static_cast<double>(eval->storage_bytes) / static_cast<double>(kMB);
    const uint64_t units = static_cast<uint64_t>(
        (eval->storage_bytes + 64 * kMB - 1) / (64 * kMB));
    std::printf("%-6s %8llu %10llu %8llu %14.1f %10.0f %8llu\n", row.db,
                (unsigned long long)row.page_size,
                (unsigned long long)row.m, (unsigned long long)eval->k,
                storage_mb, 1000 * eval->query_seconds,
                (unsigned long long)units);
  }
  std::printf(
      "\nPaper claims reproduced: 10GB/1KB fits 1 unit at 197ms and 2\n"
      "units at 65ms; 100GB/1KB needs ~10 units for 197ms; the 1TB\n"
      "configurations need 4+GB of secure storage (~70 units), dominated\n"
      "by the pageMap (Eq. 7's n(log n + 1) bits).\n");
  return 0;
}
