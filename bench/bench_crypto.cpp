// Microbenchmarks of the crypto substrate (google-benchmark): the
// paper's Table 2 budgets 10 MB/s for the coprocessor's crypto engine;
// these numbers characterize the simulator's actual software crypto.

#include <benchmark/benchmark.h>

#include "common/check.h"
#include "crypto/aes.h"
#include "crypto/chacha20.h"
#include "crypto/ctr.h"
#include "crypto/hmac.h"
#include "crypto/secure_random.h"
#include "crypto/sha256.h"
#include "storage/page_cipher.h"

namespace {

using namespace shpir;

void BM_AesEncryptBlock(benchmark::State& state) {
  auto aes = crypto::Aes::Create(Bytes(16, 0x11));
  SHPIR_CHECK(aes.ok());
  uint8_t block[16] = {};
  for (auto _ : state) {
    aes->EncryptBlock(block, block);
    benchmark::DoNotOptimize(block);
  }
  state.SetBytesProcessed(state.iterations() * 16);
}
BENCHMARK(BM_AesEncryptBlock);

void BM_AesCtr(benchmark::State& state) {
  auto ctr = crypto::AesCtr::Create(Bytes(16, 0x22));
  SHPIR_CHECK(ctr.ok());
  Bytes data(static_cast<size_t>(state.range(0)), 0xab);
  const Bytes iv(16, 0x01);
  for (auto _ : state) {
    SHPIR_CHECK_OK(ctr->Crypt(iv, data, data));
    benchmark::DoNotOptimize(data.data());
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_AesCtr)->Arg(1024)->Arg(10240);

void BM_Sha256(benchmark::State& state) {
  Bytes data(static_cast<size_t>(state.range(0)), 0x5a);
  for (auto _ : state) {
    auto digest = crypto::Sha256::Hash(data);
    benchmark::DoNotOptimize(digest);
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Sha256)->Arg(1024)->Arg(10240);

void BM_HmacSha256(benchmark::State& state) {
  crypto::HmacSha256 mac(Bytes(32, 0x33));
  Bytes data(1024, 0x5a);
  for (auto _ : state) {
    auto tag = mac.Compute(data);
    benchmark::DoNotOptimize(tag);
  }
  state.SetBytesProcessed(state.iterations() * 1024);
}
BENCHMARK(BM_HmacSha256);

void BM_ChaCha20(benchmark::State& state) {
  auto cipher = crypto::ChaCha20::Create(Bytes(32, 0x44));
  SHPIR_CHECK(cipher.ok());
  Bytes data(1024, 0xab);
  const Bytes nonce(12, 0x01);
  for (auto _ : state) {
    SHPIR_CHECK_OK(cipher->Crypt(nonce, 0, data, data));
    benchmark::DoNotOptimize(data.data());
  }
  state.SetBytesProcessed(state.iterations() * 1024);
}
BENCHMARK(BM_ChaCha20);

void BM_SecureRandomFill(benchmark::State& state) {
  crypto::SecureRandom rng(1);
  Bytes data(1024);
  for (auto _ : state) {
    rng.Fill(data);
    benchmark::DoNotOptimize(data.data());
  }
  state.SetBytesProcessed(state.iterations() * 1024);
}
BENCHMARK(BM_SecureRandomFill);

void BM_PageCipherSeal(benchmark::State& state) {
  const size_t page_size = static_cast<size_t>(state.range(0));
  auto cipher =
      storage::PageCipher::Create(Bytes(32, 0x01), Bytes(32, 0x02),
                                  page_size);
  SHPIR_CHECK(cipher.ok());
  crypto::SecureRandom rng(2);
  storage::Page page(7, Bytes(page_size, 0x77));
  for (auto _ : state) {
    auto sealed = cipher->Seal(page, rng);
    benchmark::DoNotOptimize(sealed);
  }
  state.SetBytesProcessed(state.iterations() * page_size);
}
BENCHMARK(BM_PageCipherSeal)->Arg(1024)->Arg(10240);

void BM_PageCipherOpen(benchmark::State& state) {
  const size_t page_size = static_cast<size_t>(state.range(0));
  auto cipher =
      storage::PageCipher::Create(Bytes(32, 0x01), Bytes(32, 0x02),
                                  page_size);
  SHPIR_CHECK(cipher.ok());
  crypto::SecureRandom rng(3);
  storage::Page page(7, Bytes(page_size, 0x77));
  const Bytes sealed = *cipher->Seal(page, rng);
  for (auto _ : state) {
    auto opened = cipher->Open(sealed);
    benchmark::DoNotOptimize(opened);
  }
  state.SetBytesProcessed(state.iterations() * page_size);
}
BENCHMARK(BM_PageCipherOpen)->Arg(1024)->Arg(10240);

}  // namespace

BENCHMARK_MAIN();
