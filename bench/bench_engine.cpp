// Wall-clock microbenchmarks of the engines themselves (the software
// simulator's throughput, distinct from the simulated hardware times).
//
// Besides the usual google-benchmark console output, the binary writes
// BENCH_engine.json next to the working directory: a dedicated measurement
// pass over the instrumented engine reporting queries/sec and the
// p50/p95/p99 of shpir_engine_query_latency_ns, plus the observability
// overhead relative to an identical uninstrumented run.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <vector>

#include "baselines/pyramid_oram.h"
#include "baselines/wang_pir.h"
#include "bench/bench_report.h"
#include "bench/bench_util.h"
#include "crypto/secure_random.h"
#include "index/bplus_tree.h"
#include "index/hash_index.h"
#include "obs/metrics.h"

namespace {

using namespace shpir;

void BM_CApproxRetrieve(benchmark::State& state) {
  core::CApproxPir::Options options;
  options.num_pages = static_cast<uint64_t>(state.range(0));
  options.page_size = 1024;
  options.cache_pages = options.num_pages / 16;
  options.privacy_c = 2.0;
  auto rig = bench::MakeEngineRig(options, 42);
  crypto::SecureRandom rng(1);
  for (auto _ : state) {
    auto data = rig->engine->Retrieve(rng.UniformInt(options.num_pages));
    benchmark::DoNotOptimize(data);
  }
  state.counters["k"] = static_cast<double>(rig->engine->block_size());
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CApproxRetrieve)->Arg(1024)->Arg(4096)->Arg(16384);

// Same workload with the full observability layer attached (registry,
// counters, latency + per-phase histograms). Compare against
// BM_CApproxRetrieve at the same Arg to see the instrumentation overhead;
// the acceptance budget is <= 5%.
void BM_CApproxRetrieveInstrumented(benchmark::State& state) {
  core::CApproxPir::Options options;
  options.num_pages = static_cast<uint64_t>(state.range(0));
  options.page_size = 1024;
  options.cache_pages = options.num_pages / 16;
  options.privacy_c = 2.0;
  // The registry must outlive the rig: detaching happens in destructors
  // (e.g. ~CApproxPir releases secure memory through the attached gauge).
  obs::MetricsRegistry registry;
  auto rig = bench::MakeEngineRig(options, 42);
  rig->cpu->AttachMetrics(&registry);
  rig->engine->EnableMetrics(&registry);
  crypto::SecureRandom rng(1);
  for (auto _ : state) {
    auto data = rig->engine->Retrieve(rng.UniformInt(options.num_pages));
    benchmark::DoNotOptimize(data);
  }
  state.counters["k"] = static_cast<double>(rig->engine->block_size());
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CApproxRetrieveInstrumented)->Arg(1024)->Arg(4096)->Arg(16384);

void BM_CApproxRetrieveByPrivacy(benchmark::State& state) {
  core::CApproxPir::Options options;
  options.num_pages = 4096;
  options.page_size = 1024;
  options.cache_pages = 256;
  options.privacy_c = 1.0 + static_cast<double>(state.range(0)) / 100.0;
  auto rig = bench::MakeEngineRig(options, 42);
  crypto::SecureRandom rng(1);
  for (auto _ : state) {
    auto data = rig->engine->Retrieve(rng.UniformInt(options.num_pages));
    benchmark::DoNotOptimize(data);
  }
  state.counters["k"] = static_cast<double>(rig->engine->block_size());
}
BENCHMARK(BM_CApproxRetrieveByPrivacy)->Arg(5)->Arg(10)->Arg(50)->Arg(100);

void BM_WangRetrieve(benchmark::State& state) {
  const uint64_t n = static_cast<uint64_t>(state.range(0));
  storage::MemoryDisk disk(n, bench::SealedSize(1024));
  auto cpu = hardware::SecureCoprocessor::Create(
      hardware::HardwareProfile::Ibm4764(), &disk, 1024, 7);
  SHPIR_CHECK(cpu.ok());
  baselines::WangPir::Options options;
  options.num_pages = n;
  options.page_size = 1024;
  options.cache_pages = n / 16;
  auto pir = baselines::WangPir::Create(cpu->get(), options);
  SHPIR_CHECK(pir.ok());
  SHPIR_CHECK_OK((*pir)->Initialize({}));
  crypto::SecureRandom rng(2);
  for (auto _ : state) {
    auto data = (*pir)->Retrieve(rng.UniformInt(n));
    benchmark::DoNotOptimize(data);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_WangRetrieve)->Arg(1024)->Arg(4096);

void BM_PyramidOramRetrieve(benchmark::State& state) {
  const uint64_t n = static_cast<uint64_t>(state.range(0));
  baselines::PyramidOram::Options options;
  options.num_pages = n;
  options.page_size = 1024;
  options.stash_pages = 8;
  auto slots = baselines::PyramidOram::DiskSlots(options);
  SHPIR_CHECK(slots.ok());
  storage::MemoryDisk disk(*slots, bench::SealedSize(1024));
  auto cpu = hardware::SecureCoprocessor::Create(
      hardware::HardwareProfile::Ibm4764(), &disk, 1024, 8);
  SHPIR_CHECK(cpu.ok());
  auto oram = baselines::PyramidOram::Create(cpu->get(), options);
  SHPIR_CHECK(oram.ok());
  SHPIR_CHECK_OK((*oram)->Initialize({}));
  crypto::SecureRandom rng(3);
  for (auto _ : state) {
    auto data = (*oram)->Retrieve(rng.UniformInt(n));
    benchmark::DoNotOptimize(data);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PyramidOramRetrieve)->Arg(1024)->Arg(4096);

void BM_EngineUpdates(benchmark::State& state) {
  core::CApproxPir::Options options;
  options.num_pages = 2048;
  options.page_size = 1024;
  options.cache_pages = 128;
  options.privacy_c = 2.0;
  options.insert_reserve = 256;
  auto rig = bench::MakeEngineRig(options, 42);
  crypto::SecureRandom rng(4);
  Bytes payload(1024, 0x42);
  for (auto _ : state) {
    SHPIR_CHECK_OK(
        rig->engine->Modify(rng.UniformInt(options.num_pages), payload));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_EngineUpdates);

// Private index lookups: B+-tree (height fetches) vs hash index
// (fixed 2 probes) over the same engine and key set.
void BM_PrivateIndexLookup(benchmark::State& state) {
  const bool use_hash = state.range(0) != 0;
  constexpr uint64_t kKeys = 20000;
  std::vector<std::pair<uint64_t, uint64_t>> entries;
  for (uint64_t i = 0; i < kKeys; ++i) {
    entries.emplace_back(i * 11 + 3, i);
  }
  std::vector<storage::Page> pages;
  if (use_hash) {
    index::HashIndexBuilder builder(1024);
    pages = *builder.Build(entries);
  } else {
    index::BPlusTreeBuilder builder(1024);
    pages = *builder.Build(entries);
  }
  core::CApproxPir::Options options;
  options.num_pages = pages.size();
  options.page_size = 1024;
  options.cache_pages = std::max<uint64_t>(16, pages.size() / 16);
  options.privacy_c = 2.0;
  auto slots = core::CApproxPir::DiskSlots(options);
  SHPIR_CHECK(slots.ok());
  storage::MemoryDisk disk(*slots, bench::SealedSize(1024));
  auto cpu = hardware::SecureCoprocessor::Create(
      hardware::HardwareProfile::Ibm4764(), &disk, 1024, 11);
  SHPIR_CHECK(cpu.ok());
  auto engine = core::CApproxPir::Create(cpu->get(), options);
  SHPIR_CHECK(engine.ok());
  SHPIR_CHECK_OK((*engine)->Initialize(pages));

  crypto::SecureRandom rng(12);
  if (use_hash) {
    auto idx = index::HashIndex::Open(engine->get());
    SHPIR_CHECK(idx.ok());
    for (auto _ : state) {
      auto r = (*idx)->Lookup(entries[rng.UniformInt(kKeys)].first);
      benchmark::DoNotOptimize(r);
    }
    state.counters["fetches/op"] =
        static_cast<double>((*idx)->probe_width());
  } else {
    auto idx = index::BPlusTree::Open(engine->get());
    SHPIR_CHECK(idx.ok());
    for (auto _ : state) {
      auto r = (*idx)->Lookup(entries[rng.UniformInt(kKeys)].first);
      benchmark::DoNotOptimize(r);
    }
    state.counters["fetches/op"] = static_cast<double>((*idx)->height());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PrivateIndexLookup)
    ->Arg(0)   // B+-tree.
    ->Arg(1);  // Hash index.

// Timed chunk of `queries` retrieves over an existing rig, drawing
// page ids from `rng`; returns wall ns/query.
double TimedRetrieveChunk(bench::EngineRig& rig, uint64_t queries,
                          crypto::SecureRandom& rng) {
  const auto start = std::chrono::steady_clock::now();
  for (uint64_t i = 0; i < queries; ++i) {
    auto data = rig.engine->Retrieve(rng.UniformInt(4096));
    benchmark::DoNotOptimize(data);
  }
  const auto stop = std::chrono::steady_clock::now();
  const double ns =
      std::chrono::duration<double, std::nano>(stop - start).count();
  return ns / static_cast<double>(queries);
}

// Writes BENCH_engine.json: throughput and latency quantiles from the
// engine's own shpir_engine_query_latency_ns histogram, plus the overhead
// of running instrumented vs. plain.
void WriteEngineJson(const char* path, uint64_t kQueries, int kReps) {
  obs::MetricsRegistry registry;
  // Two persistent rigs (plain / instrumented), fast-interleaved in
  // ~25-query chunks; the overhead is the median of the per-chunk
  // paired ratios. Adjacent-in-time pairing plus a median keeps a
  // shared machine's heavy-tailed stalls from masquerading as
  // instrumentation overhead — fresh-rig best-of passes gated on
  // allocation layout and drift instead.
  core::CApproxPir::Options options;
  options.num_pages = 4096;
  options.page_size = 1024;
  options.cache_pages = 256;
  options.privacy_c = 2.0;
  auto plain_rig = bench::MakeEngineRig(options, 42);
  auto inst_rig = bench::MakeEngineRig(options, 42);
  inst_rig->cpu->AttachMetrics(&registry);
  inst_rig->engine->EnableMetrics(&registry);

  constexpr uint64_t kChunkQueries = 25;
  const int chunks = static_cast<int>(
      std::max<uint64_t>(1, kQueries * static_cast<uint64_t>(kReps) /
                                kChunkQueries));
  crypto::SecureRandom plain_rng(1);
  crypto::SecureRandom inst_rng(1);
  // Warm both rigs' caches and page maps before timing.
  (void)TimedRetrieveChunk(*plain_rig, 64, plain_rng);
  (void)TimedRetrieveChunk(*inst_rig, 64, inst_rng);

  std::vector<double> plain_chunks, ratios;
  for (int chunk = 0; chunk < chunks; ++chunk) {
    const double p = TimedRetrieveChunk(*plain_rig, kChunkQueries,
                                        plain_rng);
    const double i = TimedRetrieveChunk(*inst_rig, kChunkQueries,
                                        inst_rng);
    plain_chunks.push_back(p);
    ratios.push_back(i / p);
  }
  const auto median = [](std::vector<double> v) {
    std::nth_element(v.begin(), v.begin() + v.size() / 2, v.end());
    return v[v.size() / 2];
  };
  const double plain_ns = median(plain_chunks);
  const double inst_ns = plain_ns * median(ratios);

  const obs::MetricsSnapshot snapshot = registry.Snapshot();
  double p50 = 0, p95 = 0, p99 = 0;
  uint64_t count = 0;
  for (const obs::SnapshotHistogram& h : snapshot.histograms) {
    if (h.name == "shpir_engine_query_latency_ns") {
      p50 = h.p50;
      p95 = h.p95;
      p99 = h.p99;
      count = h.count;
    }
  }
  const double overhead_pct = plain_ns > 0
      ? 100.0 * (inst_ns - plain_ns) / plain_ns
      : 0.0;

  using bench::BenchReport;
  BenchReport report("bench_engine");
  report.SetHardwareProfile(hardware::HardwareProfile::Ibm4764());
  report.SetParam("num_pages", uint64_t{4096});
  report.SetParam("page_size", uint64_t{1024});
  report.SetParam("queries", count);
  report.SetParam("chunk_queries", kChunkQueries);
  report.SetParam("chunks", static_cast<uint64_t>(chunks));
  report.SetParam("time_base", std::string("wall_clock"));
  // Wall-clock throughput/latency depend on the CI machine, so they are
  // informational; the instrumented/plain ratio is machine-relative and
  // holds the seed PR's <= 5% observability budget.
  report.AddMetric("queries_per_sec", 1e9 / inst_ns,
                   BenchReport::Direction::kNone, 0.0);
  report.AddMetric("latency_p50_ns", p50, BenchReport::Direction::kNone, 0.0);
  report.AddMetric("latency_p95_ns", p95, BenchReport::Direction::kNone, 0.0);
  report.AddMetric("latency_p99_ns", p99, BenchReport::Direction::kNone, 0.0);
  report.AddMetric("baseline_ns_per_query", plain_ns,
                   BenchReport::Direction::kNone, 0.0);
  report.AddMetric("instrumented_ns_per_query", inst_ns,
                   BenchReport::Direction::kNone, 0.0);
  report.AddBudgetMetric("observability_overhead_percent", overhead_pct,
                         5.0);
  if (!report.WriteJson(path)) {
    return;
  }
  std::printf("wrote %s (%.0f queries/sec, p50=%.0fns, overhead=%.2f%%)\n",
              path, 1e9 / inst_ns, p50, overhead_pct);
}

}  // namespace

int main(int argc, char** argv) {
  // --short: CI smoke mode — skip the google-benchmark suite and take a
  // reduced measurement pass for BENCH_engine.json.
  bool short_mode = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--short") == 0) {
      short_mode = true;
      for (int j = i; j + 1 < argc; ++j) {
        argv[j] = argv[j + 1];
      }
      --argc;
      break;
    }
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) {
    return 1;
  }
  if (!short_mode) {
    benchmark::RunSpecifiedBenchmarks();
  }
  benchmark::Shutdown();
  WriteEngineJson("BENCH_engine.json", short_mode ? 250 : 1000,
                  short_mode ? 3 : 5);
  return 0;
}
