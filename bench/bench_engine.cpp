// Wall-clock microbenchmarks of the engines themselves (the software
// simulator's throughput, distinct from the simulated hardware times).

#include <benchmark/benchmark.h>

#include "baselines/pyramid_oram.h"
#include "baselines/wang_pir.h"
#include "bench/bench_util.h"
#include "crypto/secure_random.h"
#include "index/bplus_tree.h"
#include "index/hash_index.h"

namespace {

using namespace shpir;

void BM_CApproxRetrieve(benchmark::State& state) {
  core::CApproxPir::Options options;
  options.num_pages = static_cast<uint64_t>(state.range(0));
  options.page_size = 1024;
  options.cache_pages = options.num_pages / 16;
  options.privacy_c = 2.0;
  auto rig = bench::MakeEngineRig(options, 42);
  crypto::SecureRandom rng(1);
  for (auto _ : state) {
    auto data = rig->engine->Retrieve(rng.UniformInt(options.num_pages));
    benchmark::DoNotOptimize(data);
  }
  state.counters["k"] = static_cast<double>(rig->engine->block_size());
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CApproxRetrieve)->Arg(1024)->Arg(4096)->Arg(16384);

void BM_CApproxRetrieveByPrivacy(benchmark::State& state) {
  core::CApproxPir::Options options;
  options.num_pages = 4096;
  options.page_size = 1024;
  options.cache_pages = 256;
  options.privacy_c = 1.0 + static_cast<double>(state.range(0)) / 100.0;
  auto rig = bench::MakeEngineRig(options, 42);
  crypto::SecureRandom rng(1);
  for (auto _ : state) {
    auto data = rig->engine->Retrieve(rng.UniformInt(options.num_pages));
    benchmark::DoNotOptimize(data);
  }
  state.counters["k"] = static_cast<double>(rig->engine->block_size());
}
BENCHMARK(BM_CApproxRetrieveByPrivacy)->Arg(5)->Arg(10)->Arg(50)->Arg(100);

void BM_WangRetrieve(benchmark::State& state) {
  const uint64_t n = static_cast<uint64_t>(state.range(0));
  storage::MemoryDisk disk(n, bench::SealedSize(1024));
  auto cpu = hardware::SecureCoprocessor::Create(
      hardware::HardwareProfile::Ibm4764(), &disk, 1024, 7);
  SHPIR_CHECK(cpu.ok());
  baselines::WangPir::Options options;
  options.num_pages = n;
  options.page_size = 1024;
  options.cache_pages = n / 16;
  auto pir = baselines::WangPir::Create(cpu->get(), options);
  SHPIR_CHECK(pir.ok());
  SHPIR_CHECK_OK((*pir)->Initialize({}));
  crypto::SecureRandom rng(2);
  for (auto _ : state) {
    auto data = (*pir)->Retrieve(rng.UniformInt(n));
    benchmark::DoNotOptimize(data);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_WangRetrieve)->Arg(1024)->Arg(4096);

void BM_PyramidOramRetrieve(benchmark::State& state) {
  const uint64_t n = static_cast<uint64_t>(state.range(0));
  baselines::PyramidOram::Options options;
  options.num_pages = n;
  options.page_size = 1024;
  options.stash_pages = 8;
  auto slots = baselines::PyramidOram::DiskSlots(options);
  SHPIR_CHECK(slots.ok());
  storage::MemoryDisk disk(*slots, bench::SealedSize(1024));
  auto cpu = hardware::SecureCoprocessor::Create(
      hardware::HardwareProfile::Ibm4764(), &disk, 1024, 8);
  SHPIR_CHECK(cpu.ok());
  auto oram = baselines::PyramidOram::Create(cpu->get(), options);
  SHPIR_CHECK(oram.ok());
  SHPIR_CHECK_OK((*oram)->Initialize({}));
  crypto::SecureRandom rng(3);
  for (auto _ : state) {
    auto data = (*oram)->Retrieve(rng.UniformInt(n));
    benchmark::DoNotOptimize(data);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PyramidOramRetrieve)->Arg(1024)->Arg(4096);

void BM_EngineUpdates(benchmark::State& state) {
  core::CApproxPir::Options options;
  options.num_pages = 2048;
  options.page_size = 1024;
  options.cache_pages = 128;
  options.privacy_c = 2.0;
  options.insert_reserve = 256;
  auto rig = bench::MakeEngineRig(options, 42);
  crypto::SecureRandom rng(4);
  Bytes payload(1024, 0x42);
  for (auto _ : state) {
    SHPIR_CHECK_OK(
        rig->engine->Modify(rng.UniformInt(options.num_pages), payload));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_EngineUpdates);

// Private index lookups: B+-tree (height fetches) vs hash index
// (fixed 2 probes) over the same engine and key set.
void BM_PrivateIndexLookup(benchmark::State& state) {
  const bool use_hash = state.range(0) != 0;
  constexpr uint64_t kKeys = 20000;
  std::vector<std::pair<uint64_t, uint64_t>> entries;
  for (uint64_t i = 0; i < kKeys; ++i) {
    entries.emplace_back(i * 11 + 3, i);
  }
  std::vector<storage::Page> pages;
  if (use_hash) {
    index::HashIndexBuilder builder(1024);
    pages = *builder.Build(entries);
  } else {
    index::BPlusTreeBuilder builder(1024);
    pages = *builder.Build(entries);
  }
  core::CApproxPir::Options options;
  options.num_pages = pages.size();
  options.page_size = 1024;
  options.cache_pages = std::max<uint64_t>(16, pages.size() / 16);
  options.privacy_c = 2.0;
  auto slots = core::CApproxPir::DiskSlots(options);
  SHPIR_CHECK(slots.ok());
  storage::MemoryDisk disk(*slots, bench::SealedSize(1024));
  auto cpu = hardware::SecureCoprocessor::Create(
      hardware::HardwareProfile::Ibm4764(), &disk, 1024, 11);
  SHPIR_CHECK(cpu.ok());
  auto engine = core::CApproxPir::Create(cpu->get(), options);
  SHPIR_CHECK(engine.ok());
  SHPIR_CHECK_OK((*engine)->Initialize(pages));

  crypto::SecureRandom rng(12);
  if (use_hash) {
    auto idx = index::HashIndex::Open(engine->get());
    SHPIR_CHECK(idx.ok());
    for (auto _ : state) {
      auto r = (*idx)->Lookup(entries[rng.UniformInt(kKeys)].first);
      benchmark::DoNotOptimize(r);
    }
    state.counters["fetches/op"] =
        static_cast<double>((*idx)->probe_width());
  } else {
    auto idx = index::BPlusTree::Open(engine->get());
    SHPIR_CHECK(idx.ok());
    for (auto _ : state) {
      auto r = (*idx)->Lookup(entries[rng.UniformInt(kKeys)].first);
      benchmark::DoNotOptimize(r);
    }
    state.counters["fetches/op"] = static_cast<double>((*idx)->height());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PrivateIndexLookup)
    ->Arg(0)   // B+-tree.
    ->Arg(1);  // Hash index.

}  // namespace

BENCHMARK_MAIN();
