// Wall-clock microbenchmarks of the engines themselves (the software
// simulator's throughput, distinct from the simulated hardware times).
//
// Besides the usual google-benchmark console output, the binary writes
// BENCH_engine.json next to the working directory: a dedicated measurement
// pass over the instrumented engine reporting queries/sec and the
// p50/p95/p99 of shpir_engine_query_latency_ns, plus the observability
// overhead relative to an identical uninstrumented run.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdio>

#include "baselines/pyramid_oram.h"
#include "baselines/wang_pir.h"
#include "bench/bench_util.h"
#include "crypto/secure_random.h"
#include "index/bplus_tree.h"
#include "index/hash_index.h"
#include "obs/metrics.h"

namespace {

using namespace shpir;

void BM_CApproxRetrieve(benchmark::State& state) {
  core::CApproxPir::Options options;
  options.num_pages = static_cast<uint64_t>(state.range(0));
  options.page_size = 1024;
  options.cache_pages = options.num_pages / 16;
  options.privacy_c = 2.0;
  auto rig = bench::MakeEngineRig(options, 42);
  crypto::SecureRandom rng(1);
  for (auto _ : state) {
    auto data = rig->engine->Retrieve(rng.UniformInt(options.num_pages));
    benchmark::DoNotOptimize(data);
  }
  state.counters["k"] = static_cast<double>(rig->engine->block_size());
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CApproxRetrieve)->Arg(1024)->Arg(4096)->Arg(16384);

// Same workload with the full observability layer attached (registry,
// counters, latency + per-phase histograms). Compare against
// BM_CApproxRetrieve at the same Arg to see the instrumentation overhead;
// the acceptance budget is <= 5%.
void BM_CApproxRetrieveInstrumented(benchmark::State& state) {
  core::CApproxPir::Options options;
  options.num_pages = static_cast<uint64_t>(state.range(0));
  options.page_size = 1024;
  options.cache_pages = options.num_pages / 16;
  options.privacy_c = 2.0;
  // The registry must outlive the rig: detaching happens in destructors
  // (e.g. ~CApproxPir releases secure memory through the attached gauge).
  obs::MetricsRegistry registry;
  auto rig = bench::MakeEngineRig(options, 42);
  rig->cpu->AttachMetrics(&registry);
  rig->engine->EnableMetrics(&registry);
  crypto::SecureRandom rng(1);
  for (auto _ : state) {
    auto data = rig->engine->Retrieve(rng.UniformInt(options.num_pages));
    benchmark::DoNotOptimize(data);
  }
  state.counters["k"] = static_cast<double>(rig->engine->block_size());
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CApproxRetrieveInstrumented)->Arg(1024)->Arg(4096)->Arg(16384);

void BM_CApproxRetrieveByPrivacy(benchmark::State& state) {
  core::CApproxPir::Options options;
  options.num_pages = 4096;
  options.page_size = 1024;
  options.cache_pages = 256;
  options.privacy_c = 1.0 + static_cast<double>(state.range(0)) / 100.0;
  auto rig = bench::MakeEngineRig(options, 42);
  crypto::SecureRandom rng(1);
  for (auto _ : state) {
    auto data = rig->engine->Retrieve(rng.UniformInt(options.num_pages));
    benchmark::DoNotOptimize(data);
  }
  state.counters["k"] = static_cast<double>(rig->engine->block_size());
}
BENCHMARK(BM_CApproxRetrieveByPrivacy)->Arg(5)->Arg(10)->Arg(50)->Arg(100);

void BM_WangRetrieve(benchmark::State& state) {
  const uint64_t n = static_cast<uint64_t>(state.range(0));
  storage::MemoryDisk disk(n, bench::SealedSize(1024));
  auto cpu = hardware::SecureCoprocessor::Create(
      hardware::HardwareProfile::Ibm4764(), &disk, 1024, 7);
  SHPIR_CHECK(cpu.ok());
  baselines::WangPir::Options options;
  options.num_pages = n;
  options.page_size = 1024;
  options.cache_pages = n / 16;
  auto pir = baselines::WangPir::Create(cpu->get(), options);
  SHPIR_CHECK(pir.ok());
  SHPIR_CHECK_OK((*pir)->Initialize({}));
  crypto::SecureRandom rng(2);
  for (auto _ : state) {
    auto data = (*pir)->Retrieve(rng.UniformInt(n));
    benchmark::DoNotOptimize(data);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_WangRetrieve)->Arg(1024)->Arg(4096);

void BM_PyramidOramRetrieve(benchmark::State& state) {
  const uint64_t n = static_cast<uint64_t>(state.range(0));
  baselines::PyramidOram::Options options;
  options.num_pages = n;
  options.page_size = 1024;
  options.stash_pages = 8;
  auto slots = baselines::PyramidOram::DiskSlots(options);
  SHPIR_CHECK(slots.ok());
  storage::MemoryDisk disk(*slots, bench::SealedSize(1024));
  auto cpu = hardware::SecureCoprocessor::Create(
      hardware::HardwareProfile::Ibm4764(), &disk, 1024, 8);
  SHPIR_CHECK(cpu.ok());
  auto oram = baselines::PyramidOram::Create(cpu->get(), options);
  SHPIR_CHECK(oram.ok());
  SHPIR_CHECK_OK((*oram)->Initialize({}));
  crypto::SecureRandom rng(3);
  for (auto _ : state) {
    auto data = (*oram)->Retrieve(rng.UniformInt(n));
    benchmark::DoNotOptimize(data);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PyramidOramRetrieve)->Arg(1024)->Arg(4096);

void BM_EngineUpdates(benchmark::State& state) {
  core::CApproxPir::Options options;
  options.num_pages = 2048;
  options.page_size = 1024;
  options.cache_pages = 128;
  options.privacy_c = 2.0;
  options.insert_reserve = 256;
  auto rig = bench::MakeEngineRig(options, 42);
  crypto::SecureRandom rng(4);
  Bytes payload(1024, 0x42);
  for (auto _ : state) {
    SHPIR_CHECK_OK(
        rig->engine->Modify(rng.UniformInt(options.num_pages), payload));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_EngineUpdates);

// Private index lookups: B+-tree (height fetches) vs hash index
// (fixed 2 probes) over the same engine and key set.
void BM_PrivateIndexLookup(benchmark::State& state) {
  const bool use_hash = state.range(0) != 0;
  constexpr uint64_t kKeys = 20000;
  std::vector<std::pair<uint64_t, uint64_t>> entries;
  for (uint64_t i = 0; i < kKeys; ++i) {
    entries.emplace_back(i * 11 + 3, i);
  }
  std::vector<storage::Page> pages;
  if (use_hash) {
    index::HashIndexBuilder builder(1024);
    pages = *builder.Build(entries);
  } else {
    index::BPlusTreeBuilder builder(1024);
    pages = *builder.Build(entries);
  }
  core::CApproxPir::Options options;
  options.num_pages = pages.size();
  options.page_size = 1024;
  options.cache_pages = std::max<uint64_t>(16, pages.size() / 16);
  options.privacy_c = 2.0;
  auto slots = core::CApproxPir::DiskSlots(options);
  SHPIR_CHECK(slots.ok());
  storage::MemoryDisk disk(*slots, bench::SealedSize(1024));
  auto cpu = hardware::SecureCoprocessor::Create(
      hardware::HardwareProfile::Ibm4764(), &disk, 1024, 11);
  SHPIR_CHECK(cpu.ok());
  auto engine = core::CApproxPir::Create(cpu->get(), options);
  SHPIR_CHECK(engine.ok());
  SHPIR_CHECK_OK((*engine)->Initialize(pages));

  crypto::SecureRandom rng(12);
  if (use_hash) {
    auto idx = index::HashIndex::Open(engine->get());
    SHPIR_CHECK(idx.ok());
    for (auto _ : state) {
      auto r = (*idx)->Lookup(entries[rng.UniformInt(kKeys)].first);
      benchmark::DoNotOptimize(r);
    }
    state.counters["fetches/op"] =
        static_cast<double>((*idx)->probe_width());
  } else {
    auto idx = index::BPlusTree::Open(engine->get());
    SHPIR_CHECK(idx.ok());
    for (auto _ : state) {
      auto r = (*idx)->Lookup(entries[rng.UniformInt(kKeys)].first);
      benchmark::DoNotOptimize(r);
    }
    state.counters["fetches/op"] = static_cast<double>((*idx)->height());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PrivateIndexLookup)
    ->Arg(0)   // B+-tree.
    ->Arg(1);  // Hash index.

// Timed pass of `queries` retrieves over a fresh rig; returns wall ns/query.
double TimedRetrievePass(bool instrumented, uint64_t queries,
                         obs::MetricsRegistry* registry) {
  core::CApproxPir::Options options;
  options.num_pages = 4096;
  options.page_size = 1024;
  options.cache_pages = 256;
  options.privacy_c = 2.0;
  auto rig = bench::MakeEngineRig(options, 42);
  if (instrumented) {
    rig->cpu->AttachMetrics(registry);
    rig->engine->EnableMetrics(registry);
  }
  crypto::SecureRandom rng(1);
  // Warm up caches and the page map before timing.
  for (int i = 0; i < 64; ++i) {
    auto data = rig->engine->Retrieve(rng.UniformInt(options.num_pages));
    benchmark::DoNotOptimize(data);
  }
  const auto start = std::chrono::steady_clock::now();
  for (uint64_t i = 0; i < queries; ++i) {
    auto data = rig->engine->Retrieve(rng.UniformInt(options.num_pages));
    benchmark::DoNotOptimize(data);
  }
  const auto stop = std::chrono::steady_clock::now();
  const double ns =
      std::chrono::duration<double, std::nano>(stop - start).count();
  return ns / static_cast<double>(queries);
}

// Writes BENCH_engine.json: throughput and latency quantiles from the
// engine's own shpir_engine_query_latency_ns histogram, plus the overhead
// of running instrumented vs. plain.
void WriteEngineJson(const char* path) {
  constexpr uint64_t kQueries = 1000;
  constexpr int kReps = 5;
  obs::MetricsRegistry registry;
  // Interleave repetitions and keep the fastest of each so transient
  // system load does not masquerade as instrumentation overhead.
  double plain_ns = 0;
  double inst_ns = 0;
  for (int rep = 0; rep < kReps; ++rep) {
    const double p = TimedRetrievePass(false, kQueries, nullptr);
    const double i = TimedRetrievePass(true, kQueries, &registry);
    plain_ns = rep == 0 ? p : std::min(plain_ns, p);
    inst_ns = rep == 0 ? i : std::min(inst_ns, i);
  }

  const obs::MetricsSnapshot snapshot = registry.Snapshot();
  double p50 = 0, p95 = 0, p99 = 0;
  uint64_t count = 0;
  for (const obs::SnapshotHistogram& h : snapshot.histograms) {
    if (h.name == "shpir_engine_query_latency_ns") {
      p50 = h.p50;
      p95 = h.p95;
      p99 = h.p99;
      count = h.count;
    }
  }
  const double overhead_pct = plain_ns > 0
      ? 100.0 * (inst_ns - plain_ns) / plain_ns
      : 0.0;

  std::FILE* out = std::fopen(path, "w");
  if (out == nullptr) {
    std::fprintf(stderr, "bench_engine: cannot write %s\n", path);
    return;
  }
  std::fprintf(out, "{\n");
  std::fprintf(out, "  \"benchmark\": \"bench_engine\",\n");
  std::fprintf(out, "  \"num_pages\": 4096,\n");
  std::fprintf(out, "  \"page_size\": 1024,\n");
  std::fprintf(out, "  \"queries\": %llu,\n",
               static_cast<unsigned long long>(count));
  std::fprintf(out, "  \"queries_per_sec\": %.1f,\n", 1e9 / inst_ns);
  std::fprintf(out, "  \"latency_ns\": {\n");
  std::fprintf(out, "    \"p50\": %.1f,\n", p50);
  std::fprintf(out, "    \"p95\": %.1f,\n", p95);
  std::fprintf(out, "    \"p99\": %.1f\n", p99);
  std::fprintf(out, "  },\n");
  std::fprintf(out, "  \"baseline_ns_per_query\": %.1f,\n", plain_ns);
  std::fprintf(out, "  \"instrumented_ns_per_query\": %.1f,\n", inst_ns);
  std::fprintf(out, "  \"observability_overhead_percent\": %.2f\n",
               overhead_pct);
  std::fprintf(out, "}\n");
  std::fclose(out);
  std::printf("wrote %s (%.0f queries/sec, p50=%.0fns, overhead=%.2f%%)\n",
              path, 1e9 / inst_ns, p50, overhead_pct);
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  WriteEngineJson("BENCH_engine.json");
  return 0;
}
