// Overhead of the structured event log (src/obs/eventlog.h) on the
// sharded serving runtime.
//
// Three configurations over ONE engine (same seed, same query stream,
// same memory layout), toggled via EnableEventLog in rapidly cycled
// ~12-query chunks; each overhead is the median of the per-chunk
// paired ratios (the bench_tracing methodology — fast cycling plus a
// median keeps a shared machine's heavy-tailed stalls out of the
// budgets):
//
//   base      — no event log attached (plain Retrieve);
//   disabled  — log attached with min_level = kWarn: the per-query
//               kDebug "fanout_complete" event is rejected by the level
//               check before any lock or clock read (budget: <= 1%);
//   enabled   — log attached at kDebug with the flight recorder wired
//               in: every logical query records one event into the
//               lock-sharded ring, and the fan-out polls the recorder's
//               edge triggers every 64 queries (budget: <= 5%).
//
// Wall-clock time is what matters (the instrumentation runs on this
// machine, not the simulated device), so the per-query numbers are
// real nanoseconds. Writes BENCH_eventlog.json.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_report.h"
#include "common/check.h"
#include "obs/eventlog.h"
#include "obs/flight_recorder.h"
#include "shard/sharded_engine.h"
#include "workload/workload.h"

namespace {

using namespace shpir;

constexpr uint64_t kNumPages = 2048;
constexpr size_t kPageSize = 256;
constexpr uint64_t kCachePerDevice = 32;
constexpr double kPrivacyC = 2.0;
constexpr uint64_t kShards = 2;
constexpr int kChunkQueries = 12;  // ~10 ms per chunk on this rig.
int g_chunks_per_config = 250;     // Reduced by --short.
constexpr double kBudgetDisabledPct = 1.0;
constexpr double kBudgetEnabledPct = 5.0;

std::unique_ptr<shard::ShardedPirEngine> MakeEngine() {
  shard::ShardedPirEngine::Options options;
  options.num_pages = kNumPages;
  options.page_size = kPageSize;
  options.cache_pages = kCachePerDevice;
  options.privacy_c = kPrivacyC;
  options.shards = kShards;
  options.queue_depth = 1024;
  options.seed = 7;  // Identical engine state across configurations.
  auto engine = shard::ShardedPirEngine::Create(options);
  SHPIR_CHECK(engine.ok());
  SHPIR_CHECK_OK((*engine)->Initialize({}));
  return std::move(engine).value();
}

/// One timed chunk of kChunkQueries logical retrieves drawn from `wl`.
double TimeChunkSeconds(shard::ShardedPirEngine& engine,
                        workload::UniformWorkload& wl) {
  const auto start = std::chrono::steady_clock::now();
  for (int q = 0; q < kChunkQueries; ++q) {
    SHPIR_CHECK_OK(engine.Retrieve(wl.Next()).status());
  }
  // Cover queries on the other shards finish asynchronously; wait so
  // every configuration pays for its full fan-out.
  engine.WaitIdle();
  const auto end = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(end - start).count();
}

void WriteJson(const char* path, double base_ns, double disabled_ns,
               double enabled_ns, double overhead_disabled_pct,
               double overhead_enabled_pct, const obs::EventLog& log,
               const obs::FlightRecorder& recorder) {
  using bench::BenchReport;
  BenchReport report("bench_eventlog");
  report.SetHardwareProfile(hardware::HardwareProfile::Ibm4764());
  report.SetParam("num_pages", kNumPages);
  report.SetParam("page_size", static_cast<uint64_t>(kPageSize));
  report.SetParam("shards", kShards);
  report.SetParam("chunk_queries", static_cast<uint64_t>(kChunkQueries));
  report.SetParam("chunks_per_config",
                  static_cast<uint64_t>(g_chunks_per_config));
  report.SetParam("time_base", std::string("wall_clock"));
  report.AddMetric("base_ns_per_query", base_ns,
                   BenchReport::Direction::kNone, 0.0);
  report.AddMetric("disabled_ns_per_query", disabled_ns,
                   BenchReport::Direction::kNone, 0.0);
  report.AddMetric("enabled_ns_per_query", enabled_ns,
                   BenchReport::Direction::kNone, 0.0);
  // The overhead ratios are machine-relative: both numerator and
  // denominator ran interleaved on the same machine, so the budget
  // bound is meaningful on any CI host.
  report.AddBudgetMetric("overhead_disabled_pct", overhead_disabled_pct,
                         kBudgetDisabledPct);
  report.AddBudgetMetric("overhead_enabled_pct", overhead_enabled_pct,
                         kBudgetEnabledPct);
  report.AddMetric("events_recorded", static_cast<double>(log.recorded()),
                   BenchReport::Direction::kNone, 0.0);
  report.AddMetric("recorder_polls", static_cast<double>(recorder.polls()),
                   BenchReport::Direction::kNone, 0.0);
  // The quiet steady state must stay quiet: a spontaneous incident here
  // means a trigger counter regressed into false edges.
  report.AddMetric("incidents_sealed", static_cast<double>(recorder.sealed()),
                   BenchReport::Direction::kLowerBetter, 0.0);
  if (report.WriteJson(path)) {
    std::printf("wrote %s\n", path);
  }
}

}  // namespace

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--short") == 0) {
      g_chunks_per_config = 60;
    }
  }
  std::printf(
      "Event-log overhead on the sharded runtime: n = %llu x %zuB, "
      "S = %llu, %d chunks x %d queries per config, fast-interleaved.\n\n",
      (unsigned long long)kNumPages, kPageSize, (unsigned long long)kShards,
      g_chunks_per_config, kChunkQueries);

  auto engine = MakeEngine();

  // "Disabled": attached, but the per-query kDebug event is filtered by
  // the level check before any lock or clock read.
  obs::EventLog::Options disabled_options;
  disabled_options.min_level = obs::EventLevel::kWarn;
  obs::EventLog disabled_log(disabled_options);

  // "Enabled": every logical query records an event, and the flight
  // recorder's triggers are polled on the fan-out path.
  obs::EventLog::Options enabled_options;
  enabled_options.min_level = obs::EventLevel::kDebug;
  obs::EventLog enabled_log(enabled_options);
  obs::FlightRecorder::Options recorder_options;
  recorder_options.spill_dir = "";  // In-memory only for the bench.
  obs::FlightRecorder recorder(recorder_options);
  recorder.AttachEventLog(&enabled_log);

  // Warmup: a few untimed chunks fill the caches.
  {
    workload::UniformWorkload warmup(kNumPages, 1000);
    for (int i = 0; i < 8; ++i) {
      (void)TimeChunkSeconds(*engine, warmup);
    }
  }

  // Per-chunk paired ratios, reduced by median.
  workload::UniformWorkload base_wl(kNumPages, 2000);
  workload::UniformWorkload disabled_wl(kNumPages, 2000);
  workload::UniformWorkload enabled_wl(kNumPages, 2000);
  std::vector<double> base_chunks, disabled_ratios, enabled_ratios;
  for (int chunk = 0; chunk < g_chunks_per_config; ++chunk) {
    engine->EnableEventLog(nullptr);
    engine->EnableFlightRecorder(nullptr);
    const double base = TimeChunkSeconds(*engine, base_wl);
    engine->EnableEventLog(&disabled_log);
    const double disabled = TimeChunkSeconds(*engine, disabled_wl);
    engine->EnableEventLog(&enabled_log);
    engine->EnableFlightRecorder(&recorder);
    const double enabled = TimeChunkSeconds(*engine, enabled_wl);
    base_chunks.push_back(base);
    disabled_ratios.push_back(disabled / base);
    enabled_ratios.push_back(enabled / base);
  }
  engine->EnableEventLog(nullptr);
  engine->EnableFlightRecorder(nullptr);
  engine->Drain();

  const auto median = [](std::vector<double> v) {
    std::nth_element(v.begin(), v.begin() + v.size() / 2, v.end());
    return v[v.size() / 2];
  };
  const double base_ns = median(base_chunks) * 1e9 / kChunkQueries;
  const double disabled_ns = base_ns * median(disabled_ratios);
  const double enabled_ns = base_ns * median(enabled_ratios);
  const double overhead_disabled_pct =
      100.0 * (median(disabled_ratios) - 1.0);
  const double overhead_enabled_pct = 100.0 * (median(enabled_ratios) - 1.0);

  std::printf("%10s %16s %10s\n", "config", "ns/query", "overhead");
  std::printf("%10s %16.0f %10s\n", "base", base_ns, "-");
  std::printf("%10s %16.0f %9.2f%%\n", "disabled", disabled_ns,
              overhead_disabled_pct);
  std::printf("%10s %16.0f %9.2f%%\n", "enabled", enabled_ns,
              overhead_enabled_pct);
  std::printf(
      "\nevent log: %llu emitted, %llu recorded, %llu filtered, "
      "%llu dropped; recorder: %llu polls, %llu sealed\n\n",
      (unsigned long long)enabled_log.emitted(),
      (unsigned long long)enabled_log.recorded(),
      (unsigned long long)disabled_log.filtered(),
      (unsigned long long)enabled_log.dropped(),
      (unsigned long long)recorder.polls(),
      (unsigned long long)recorder.sealed());

  WriteJson("BENCH_eventlog.json", base_ns, disabled_ns, enabled_ns,
            overhead_disabled_pct, overhead_enabled_pct, enabled_log,
            recorder);

  std::printf(
      "\nReading: the filtered path is one branch on an atomic options\n"
      "read, so the disabled overhead should sit inside the %.0f%% budget;\n"
      "the enabled path adds one sharded-ring write per logical query\n"
      "(never per shard query) and stays inside %.0f%%.\n",
      kBudgetDisabledPct, kBudgetEnabledPct);
  return 0;
}
