// Reproduces paper Figure 4: page retrieval cost and secure storage vs
// cache size, 1KB pages, c = 2, for 1GB/10GB/100GB/1TB databases —
// regenerated with the same closed forms the paper's §5 analysis uses
// (Eqs. 6-8), then spot-checked against the values quoted in the text.

#include <cstdio>

#include "bench/bench_util.h"
#include "model/cost_model.h"

using shpir::hardware::HardwareProfile;
using shpir::model::CostModel;
using shpir::model::FigurePoint;
using shpir::model::GenerateFig4;

int main() {
  shpir::bench::PrintTable2(HardwareProfile::Ibm4764());

  std::printf("Figure 4: page retrieval costs for 1KB pages (c = 2)\n");
  std::printf("%-6s %12s %14s %14s\n", "DB", "cache m", "response (s)",
              "storage (MB)");
  std::string last;
  for (const FigurePoint& p : GenerateFig4()) {
    if (p.database != last) {
      std::printf("  --- Fig. 4 (%s, n = %llu) ---\n", p.database.c_str(),
                  (unsigned long long)p.n);
      last = p.database;
    }
    std::printf("%-6s %12llu %14.4f %14.2f\n", p.database.c_str(),
                (unsigned long long)p.m, p.response_seconds, p.storage_mb);
  }

  std::printf("\nPaper spot checks (quoted in §5 text):\n");
  std::printf("%-34s %10s %10s\n", "configuration", "paper", "model");
  struct Spot {
    const char* text;
    uint64_t n, m;
    double paper;
  };
  const Spot spots[] = {
      {"1GB, m=50k: 27ms", 1000000, 50000, 0.027},
      {"10GB, 1 coproc (m=20k): 197ms", 10000000, 20000, 0.197},
      {"10GB, 2 coproc (m=80k): 65ms", 10000000, 80000, 0.065},
      {"100GB, 10 coproc (m=200k): 197ms", 100000000, 200000, 0.197},
      {"1TB, m=500k: 727ms", 1000000000, 500000, 0.727},
  };
  for (const Spot& s : spots) {
    auto eval = CostModel::Evaluate(s.n, s.m, shpir::hardware::kKB, 2.0,
                                    HardwareProfile::Ibm4764());
    SHPIR_CHECK(eval.ok());
    std::printf("%-34s %8.0fms %8.0fms\n", s.text, s.paper * 1000,
                eval->query_seconds * 1000);
  }
  return 0;
}
