// Reproduces paper Figure 5: page retrieval cost and secure storage vs
// cache size, 10KB pages, c = 2, for 1GB/10GB/100GB/1TB databases.

#include <cstdio>

#include "bench/bench_util.h"
#include "model/cost_model.h"

using shpir::hardware::HardwareProfile;
using shpir::model::CostModel;
using shpir::model::FigurePoint;
using shpir::model::GenerateFig5;

int main() {
  shpir::bench::PrintTable2(HardwareProfile::Ibm4764());

  std::printf("Figure 5: page retrieval costs for 10KB pages (c = 2)\n");
  std::printf("%-6s %12s %14s %14s\n", "DB", "cache m", "response (s)",
              "storage (MB)");
  std::string last;
  for (const FigurePoint& p : GenerateFig5()) {
    if (p.database != last) {
      std::printf("  --- Fig. 5 (%s, n = %llu) ---\n", p.database.c_str(),
                  (unsigned long long)p.n);
      last = p.database;
    }
    std::printf("%-6s %12llu %14.4f %14.2f\n", p.database.c_str(),
                (unsigned long long)p.m, p.response_seconds, p.storage_mb);
  }

  std::printf("\nPaper spot checks (quoted in §5 text):\n");
  std::printf("%-34s %10s %10s\n", "configuration", "paper", "model");
  struct Spot {
    const char* text;
    uint64_t n, m;
    double paper;
  };
  const Spot spots[] = {
      {"1GB, m=5k: 94ms", 100000, 5000, 0.094},
      {"10GB, 1 coproc (m=5k): 731ms", 1000000, 5000, 0.731},
      {"10GB, 2 coproc (m=10k): 378ms", 1000000, 10000, 0.378},
      {"100GB, 10 coproc (m=60k): 613ms", 10000000, 60000, 0.613},
      {"1TB, m=400k: 907ms", 100000000, 400000, 0.907},
  };
  for (const Spot& s : spots) {
    auto eval = CostModel::Evaluate(s.n, s.m, 10 * shpir::hardware::kKB, 2.0,
                                    HardwareProfile::Ibm4764());
    SHPIR_CHECK(eval.ok());
    std::printf("%-34s %8.0fms %8.0fms\n", s.text, s.paper * 1000,
                eval->query_seconds * 1000);
  }
  return 0;
}
