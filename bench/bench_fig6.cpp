// Reproduces paper Figure 6: query response time as a function of the
// privacy parameter c = 1 + eps (1KB pages, largest Fig. 4 cache per
// database size). Shows the privacy/cost trade-off knob.

#include <cstdio>

#include "bench/bench_util.h"
#include "model/cost_model.h"

using shpir::hardware::HardwareProfile;
using shpir::model::FigurePoint;
using shpir::model::GenerateFig6;

int main() {
  shpir::bench::PrintTable2(HardwareProfile::Ibm4764());

  std::printf(
      "Figure 6: response time vs c = 1 + eps (B = 1KB)\n");
  std::printf("%-6s %10s %10s %16s\n", "DB", "cache m", "eps",
              "response (s)");
  std::string last;
  for (const FigurePoint& p : GenerateFig6()) {
    if (p.database != last) {
      std::printf("  --- Fig. 6 (%s, n = %llu, m = %llu) ---\n",
                  p.database.c_str(), (unsigned long long)p.n,
                  (unsigned long long)p.m);
      last = p.database;
    }
    std::printf("%-6s %10llu %10.2f %16.4f\n", p.database.c_str(),
                (unsigned long long)p.m, p.epsilon, p.response_seconds);
  }
  std::printf(
      "\nPaper claim: for databases up to 100GB, sub-second response\n"
      "times are achievable even for c = 1.1 (eps = 0.1).\n");
  return 0;
}
