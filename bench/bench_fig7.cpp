// Reproduces paper Figure 7: the two-party querying model over a 50ms
// WiFi-class link (1TB database). The paper measured a Boost.Asio +
// Crypto++ deployment on two machines; we (i) regenerate the series
// with the network-dominated cost model and (ii) run the actual
// two-party stack (owner-side engine, provider-side block store) at a
// reduced scale and report its accounted per-query costs.

#include <cstdio>

#include "bench/bench_util.h"
#include "crypto/secure_random.h"
#include "model/cost_model.h"
#include "net/remote_disk.h"
#include "net/storage_server.h"

using shpir::hardware::HardwareProfile;
using shpir::model::FigurePoint;
using shpir::model::GenerateFig7;

namespace {

void LiveRunOne(uint64_t cache_pages) {
  using namespace shpir;
  constexpr size_t kPageSize = 1024;
  core::CApproxPir::Options options;
  options.num_pages = 5000;
  options.page_size = kPageSize;
  options.cache_pages = cache_pages;
  options.privacy_c = 2.0;
  auto slots = core::CApproxPir::DiskSlots(options);
  SHPIR_CHECK(slots.ok());
  storage::MemoryDisk provider_disk(*slots,
                                    shpir::bench::SealedSize(kPageSize));
  net::StorageServer server(&provider_disk);
  net::DirectTransport transport(&server);
  auto remote = net::RemoteDisk::Connect(&transport);
  SHPIR_CHECK(remote.ok());
  const HardwareProfile profile =
      HardwareProfile::TwoPartyOwner(1ull * hardware::kGB);
  auto cpu = hardware::SecureCoprocessor::Create(profile, remote->get(),
                                                 kPageSize, 7);
  SHPIR_CHECK(cpu.ok());
  (*remote)->set_accountant(&(*cpu)->cost());
  auto engine = core::CApproxPir::Create(cpu->get(), options);
  SHPIR_CHECK(engine.ok());
  SHPIR_CHECK_OK((*engine)->Initialize({}));

  crypto::SecureRandom rng(8);
  const auto before = (*cpu)->cost().Snapshot();
  constexpr int kQueries = 200;
  for (int i = 0; i < kQueries; ++i) {
    SHPIR_CHECK((*engine)->Retrieve(rng.UniformInt(5000)).ok());
  }
  const auto delta = (*cpu)->cost().Snapshot() - before;
  std::printf("%8llu %8llu %8.3f %10.1f %12.1f %12.1f\n",
              (unsigned long long)cache_pages,
              (unsigned long long)(*engine)->block_size(),
              (*engine)->achieved_privacy(),
              static_cast<double>(delta.network_round_trips) / kQueries,
              static_cast<double>(delta.network_bytes) / kQueries / 1000.0,
              1000.0 *
                  hardware::CostAccountant::Seconds(delta, profile) /
                  kQueries);
}

void LiveRun() {
  std::printf(
      "\nLive two-party sweep (scaled down: n = 5000 x 1KB pages, real\n"
      "stack over the wire protocol, accounted 50ms-RTT WiFi model):\n");
  std::printf("%8s %8s %8s %10s %12s %12s\n", "m", "k", "c", "RTT/query",
              "KB/query", "sim ms");
  for (uint64_t m : {100u, 200u, 400u, 800u}) {
    LiveRunOne(m);
  }
}

}  // namespace

int main() {
  std::printf("Figure 7: two-party model, 1TB database, 50ms RTT\n");
  std::printf("(model series; owner storage = pageMap + cache + block)\n");
  std::printf("%-10s %12s %14s %14s\n", "series", "cache m", "response (s)",
              "storage (GB)");
  std::string last;
  for (const FigurePoint& p : GenerateFig7()) {
    if (p.database != last) {
      std::printf("  --- Fig. 7 (%s, n = %llu) ---\n", p.database.c_str(),
                  (unsigned long long)p.n);
      last = p.database;
    }
    std::printf("%-10s %12llu %14.3f %14.2f\n", p.database.c_str(),
                (unsigned long long)p.m, p.response_seconds,
                p.storage_mb / 1000.0);
  }
  std::printf(
      "\nPaper spot checks: 0.737s at (1KB, m = 2e6, ~6GB storage);\n"
      "~1.3s at (10KB, m = 1e6, >10GB storage).\n");
  LiveRun();
  return 0;
}
