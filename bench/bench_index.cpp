// Private index traversal costs (the paper's motivating workload, cf.
// [23]): B+-tree lookups where every node fetch is a private page
// retrieval. Reports retrievals per lookup and the simulated response
// time under the Table 2 profile for several index sizes.

#include <cstdio>

#include "bench/bench_util.h"
#include "crypto/secure_random.h"
#include "index/bplus_tree.h"

namespace {

using namespace shpir;

void IndexCost(uint64_t num_keys) {
  constexpr size_t kPageSize = 1024;
  index::BPlusTreeBuilder builder(kPageSize);
  std::vector<std::pair<uint64_t, uint64_t>> entries;
  for (uint64_t i = 0; i < num_keys; ++i) {
    entries.emplace_back(i * 7 + 3, i);
  }
  auto pages = builder.Build(entries);
  SHPIR_CHECK(pages.ok());

  core::CApproxPir::Options options;
  options.num_pages = pages->size();
  options.page_size = kPageSize;
  options.cache_pages = std::max<uint64_t>(16, pages->size() / 16);
  options.privacy_c = 2.0;
  auto slots = core::CApproxPir::DiskSlots(options);
  SHPIR_CHECK(slots.ok());
  storage::MemoryDisk disk(*slots, bench::SealedSize(kPageSize));
  auto cpu = hardware::SecureCoprocessor::Create(
      hardware::HardwareProfile::Ibm4764(), &disk, kPageSize, num_keys);
  SHPIR_CHECK(cpu.ok());
  auto engine = core::CApproxPir::Create(cpu->get(), options);
  SHPIR_CHECK(engine.ok());
  SHPIR_CHECK_OK((*engine)->Initialize(*pages));

  auto tree = index::BPlusTree::Open(engine->get());
  SHPIR_CHECK(tree.ok());

  crypto::SecureRandom rng(9);
  constexpr int kLookups = 50;
  const auto before = (*cpu)->cost().Snapshot();
  const uint64_t retrievals_before = (*tree)->retrievals();
  for (int i = 0; i < kLookups; ++i) {
    auto result =
        (*tree)->Lookup(entries[rng.UniformInt(entries.size())].first);
    SHPIR_CHECK(result.ok());
    SHPIR_CHECK(result->has_value());
  }
  const auto delta = (*cpu)->cost().Snapshot() - before;
  const double ms_per_lookup =
      1000.0 *
      hardware::CostAccountant::Seconds(delta, (*cpu)->profile()) /
      kLookups;
  const double fetches =
      static_cast<double>((*tree)->retrievals() - retrievals_before) /
      kLookups;
  std::printf("%10llu %10zu %8llu %10llu %12.1f %14.1f\n",
              (unsigned long long)num_keys, pages->size(),
              (unsigned long long)(*tree)->height(),
              (unsigned long long)(*engine)->block_size(), fetches,
              ms_per_lookup);
}

}  // namespace

int main() {
  std::printf(
      "Private B+-tree lookups over the c-approximate engine (1KB index\n"
      "pages, c = 2, cache = pages/16). One private retrieval per level;\n"
      "hits and misses cost the same.\n\n");
  std::printf("%10s %10s %8s %10s %12s %14s\n", "keys", "pages", "height",
              "k", "fetch/query", "sim ms/query");
  for (uint64_t keys : {1000ull, 10000ull, 50000ull}) {
    IndexCost(keys);
  }
  std::printf(
      "\nThis reproduces the shape of [23]'s finding that index traversal\n"
      "multiplies the per-page PIR cost by the tree height — and why a\n"
      "constant, low per-page cost matters.\n");
  return 0;
}
