// Keyword PIR front-end (src/keyword/): offline build cost and load
// factor of both KeywordMap implementations at scale, map-level and
// end-to-end (engine-backed) lookup throughput, and an empirical
// privacy audit of the keyword-driven access trace.
//
// The front-end's privacy argument is structural — every Get issues
// exactly probes_per_lookup() c-approximate PIR queries whatever the
// key and whether or not it exists — so the audit drives a real engine
// with the flattened keyword probe stream (Zipfian keys, 25% misses)
// and checks the measured relocation ratio still meets the engine's
// configured c bound, and that hit and miss lookups fetch identical
// page counts.
//
// Writes BENCH_keyword.json. --short shrinks the key counts and query
// budgets for CI smoke runs.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "analysis/privacy_audit.h"
#include "bench/bench_report.h"
#include "bench/bench_util.h"
#include "keyword/keyword_client.h"
#include "keyword/keyword_cuckoo.h"
#include "keyword/keyword_fuse.h"
#include "workload/workload.h"

namespace {

using namespace shpir;

uint64_t g_build_keys = 1000000;   // Reduced by --short.
uint64_t g_map_queries = 200000;   // Map-level (no engine) lookups.
uint64_t g_e2e_queries = 300;      // Engine-backed private lookups.
uint64_t g_audit_lookups = 4000;   // Keyword lookups behind the audit.

constexpr double kHitRatio = 0.75;
constexpr double kZipfExponent = 0.99;
constexpr double kPrivacyC = 2.0;

double SecondsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

std::vector<keyword::KeyValue> MakeEntries(uint64_t num_keys) {
  std::vector<keyword::KeyValue> entries(num_keys);
  for (uint64_t i = 0; i < num_keys; ++i) {
    entries[i].key = workload::KeyForIndex(i);
    const std::string value = "value-" + std::to_string(i);
    entries[i].value.assign(value.begin(), value.end());
  }
  return entries;
}

struct BuildRow {
  const char* name = "";
  double build_s = 0;
  double load_factor = 0;       // Cuckoo only.
  double space_overhead = 0;    // Fuse only (slots per key).
  uint32_t attempts = 0;
  uint64_t num_pages = 0;
  size_t probes = 0;
  double map_qps = 0;
};

/// Map-level lookups (digest + probe + page scan, no PIR): the cost of
/// the front-end data structure alone. Every answer is verified.
double MeasureMapQps(const keyword::BuiltKeywordStore& store,
                     uint64_t num_keys, uint64_t queries) {
  std::vector<const Bytes*> page_store(store.pages.size());
  for (const storage::Page& page : store.pages) {
    page_store[page.id] = &page.data;
  }
  workload::ZipfKeyWorkload keys(num_keys, kZipfExponent, kHitRatio, 99);
  const auto start = std::chrono::steady_clock::now();
  for (uint64_t q = 0; q < queries; ++q) {
    const workload::KeyRequest request = keys.Next();
    const keyword::KeywordDigest digest =
        keyword::DigestKey(request.key, store.map->seed());
    std::vector<Bytes> fetched;
    fetched.reserve(store.map->probes_per_lookup());
    for (const storage::PageId id : store.map->Probes(digest)) {
      fetched.push_back(*page_store[id]);
    }
    Result<std::optional<Bytes>> value = store.map->Extract(digest, fetched);
    SHPIR_CHECK(value.ok());
    SHPIR_CHECK(value->has_value() == request.hit);
  }
  return static_cast<double>(queries) / SecondsSince(start);
}

BuildRow RunCuckooBuild() {
  const auto entries = MakeEntries(g_build_keys);
  keyword::CuckooOptions options;
  options.page_size = 256;
  options.seed = 21;
  keyword::CuckooBuildStats stats;
  const auto start = std::chrono::steady_clock::now();
  auto store = keyword::BuildCuckooStore(entries, options, &stats);
  SHPIR_CHECK(store.ok());
  BuildRow row;
  row.name = "cuckoo";
  row.build_s = SecondsSince(start);
  row.load_factor = stats.load_factor;
  row.attempts = stats.attempts;
  row.num_pages = store->map->num_pages();
  row.probes = store->map->probes_per_lookup();
  row.map_qps = MeasureMapQps(*store, g_build_keys, g_map_queries);
  return row;
}

BuildRow RunFuseBuild() {
  const auto entries = MakeEntries(g_build_keys);
  keyword::FuseOptions options;
  options.value_size = 16;
  options.page_size = keyword::kEntryOverhead + options.value_size;
  options.seed = 22;
  keyword::FuseBuildStats stats;
  const auto start = std::chrono::steady_clock::now();
  auto store = keyword::BuildFuseStore(entries, options, &stats);
  SHPIR_CHECK(store.ok());
  BuildRow row;
  row.name = "fuse";
  row.build_s = SecondsSince(start);
  row.space_overhead = stats.space_overhead;
  row.attempts = stats.attempts;
  row.num_pages = store->map->num_pages();
  row.probes = store->map->probes_per_lookup();
  row.map_qps = MeasureMapQps(*store, g_build_keys, g_map_queries);
  return row;
}

/// Small keyword store whose pages load into a real c-approximate
/// engine: the audit and end-to-end numbers run against this.
struct KeywordRig {
  keyword::BuiltKeywordStore store;
  std::unique_ptr<bench::EngineRig> engine_rig;
  std::unique_ptr<keyword::KeywordClient> client;
  uint64_t num_keys = 0;
};

KeywordRig MakeKeywordRig(uint64_t num_keys, uint64_t engine_seed) {
  KeywordRig rig;
  rig.num_keys = num_keys;
  keyword::CuckooOptions options;
  options.page_size = 64;
  options.stash_pages = 2;
  options.seed = 31;
  auto store = keyword::BuildCuckooStore(MakeEntries(num_keys), options);
  SHPIR_CHECK(store.ok());
  rig.store = std::move(store).value();

  core::CApproxPir::Options engine_options;
  engine_options.num_pages = rig.store.map->num_pages();
  engine_options.page_size = rig.store.map->page_size();
  engine_options.cache_pages =
      std::max<uint64_t>(8, engine_options.num_pages / 16);
  engine_options.privacy_c = kPrivacyC;
  rig.engine_rig = std::make_unique<bench::EngineRig>();
  bench::EngineRig& er = *rig.engine_rig;
  Result<uint64_t> slots = core::CApproxPir::DiskSlots(engine_options);
  SHPIR_CHECK(slots.ok());
  er.disk = std::make_unique<storage::MemoryDisk>(
      *slots, bench::SealedSize(engine_options.page_size));
  er.tracing_disk =
      std::make_unique<storage::TracingDisk>(er.disk.get(), &er.trace);
  auto cpu = hardware::SecureCoprocessor::Create(
      hardware::HardwareProfile::Ibm4764(), er.tracing_disk.get(),
      engine_options.page_size, engine_seed);
  SHPIR_CHECK(cpu.ok());
  er.cpu = std::move(cpu).value();
  auto engine = core::CApproxPir::Create(er.cpu.get(), engine_options,
                                         &er.trace);
  SHPIR_CHECK(engine.ok());
  er.engine = std::move(engine).value();
  SHPIR_CHECK_OK(er.engine->Initialize(rig.store.pages));

  auto client = keyword::KeywordClient::Create(
      rig.store.manifest,
      keyword::KeywordClient::EngineFetch(er.engine.get()));
  SHPIR_CHECK(client.ok());
  rig.client = std::move(client).value();
  return rig;
}

struct E2eResult {
  double qps = 0;
  double shape_uniform = 0;  // 1.0 = every lookup fetched probes pages.
};

/// End-to-end private lookups: each Get issues probes_per_lookup() PIR
/// queries against the engine. Wall-clock q/s (informational) plus the
/// shape check: hits and misses must fetch identical page counts.
E2eResult RunEndToEnd(KeywordRig& rig) {
  workload::ZipfKeyWorkload keys(rig.num_keys, kZipfExponent, kHitRatio,
                                 123);
  const size_t probes = rig.store.map->probes_per_lookup();
  bool shape_ok = true;
  const auto start = std::chrono::steady_clock::now();
  for (uint64_t q = 0; q < g_e2e_queries; ++q) {
    const workload::KeyRequest request = keys.Next();
    const uint64_t before = rig.client->pages_fetched();
    Result<std::optional<Bytes>> value =
        rig.client->Get(common::Secret<Bytes>(Bytes(request.key)));
    SHPIR_CHECK(value.ok());
    // shpir-lint-allow-next-line(secret-compare): benchmark correctness check of the retrieved value, wholly client-side
    SHPIR_CHECK(value->has_value() == request.hit);
    shape_ok = shape_ok &&
               rig.client->pages_fetched() - before == probes;
  }
  E2eResult result;
  result.qps = static_cast<double>(g_e2e_queries) / SecondsSince(start);
  result.shape_uniform = shape_ok ? 1.0 : 0.0;
  return result;
}

/// Empirical privacy of the keyword-driven trace: the flattened probe
/// stream (every candidate page of every lookup, in order) drives a
/// fresh engine via the standard relocation audit.
analysis::PrivacyReport RunKeywordAudit(KeywordRig& rig) {
  workload::ZipfKeyWorkload keys(rig.num_keys, kZipfExponent, kHitRatio,
                                 321);
  std::vector<storage::PageId> stream;
  stream.reserve(g_audit_lookups * rig.store.map->probes_per_lookup());
  for (uint64_t q = 0; q < g_audit_lookups; ++q) {
    const keyword::KeywordDigest digest =
        keyword::DigestKey(keys.Next().key, rig.store.map->seed());
    for (const storage::PageId id : rig.store.map->Probes(digest)) {
      stream.push_back(id);
    }
  }
  size_t cursor = 0;
  auto report = analysis::RunPrivacyAudit(
      *rig.engine_rig->engine, stream.size(),
      [&stream, &cursor] { return stream[cursor++]; });
  SHPIR_CHECK(report.ok());
  return *report;
}

void WriteJson(const char* path, const BuildRow& cuckoo,
               const BuildRow& fuse, const E2eResult& e2e,
               const analysis::PrivacyReport& audit) {
  using bench::BenchReport;
  BenchReport report("bench_keyword");
  report.SetHardwareProfile(hardware::HardwareProfile::Ibm4764());
  report.SetParam("build_keys", g_build_keys);
  report.SetParam("map_queries", g_map_queries);
  report.SetParam("e2e_queries", g_e2e_queries);
  report.SetParam("audit_lookups", g_audit_lookups);
  report.SetParam("hit_ratio", kHitRatio);
  report.SetParam("zipf_exponent", kZipfExponent);
  report.SetParam("target_c", kPrivacyC);

  // Deterministic structure metrics (seeded builds): tight gates.
  report.AddMetric("cuckoo_load_factor", cuckoo.load_factor,
                   BenchReport::Direction::kHigherBetter, 2.0);
  report.AddMetric("cuckoo_probes_per_lookup",
                   static_cast<double>(cuckoo.probes),
                   BenchReport::Direction::kLowerBetter, 0.0);
  report.AddMetric("fuse_space_overhead", fuse.space_overhead,
                   BenchReport::Direction::kLowerBetter, 2.0);
  report.AddMetric("fuse_probes_per_lookup",
                   static_cast<double>(fuse.probes),
                   BenchReport::Direction::kLowerBetter, 0.0);
  report.AddMetric("shape_uniform", e2e.shape_uniform,
                   BenchReport::Direction::kHigherBetter, 0.0);
  // Privacy: the keyword-driven trace must stay within the engine's
  // configured bound (small slack for finite-sample noise).
  report.AddBudgetMetric("keyword_analytic_c", audit.analytic_c,
                         kPrivacyC);
  report.AddBudgetMetric("keyword_measured_c", audit.measured_c,
                         1.15 * kPrivacyC);
  // Wall-clock numbers: informational (shared CI machines).
  report.AddMetric("cuckoo_build_s", cuckoo.build_s,
                   BenchReport::Direction::kNone, 0.0);
  report.AddMetric("fuse_build_s", fuse.build_s,
                   BenchReport::Direction::kNone, 0.0);
  report.AddMetric("cuckoo_map_qps", cuckoo.map_qps,
                   BenchReport::Direction::kNone, 0.0);
  report.AddMetric("fuse_map_qps", fuse.map_qps,
                   BenchReport::Direction::kNone, 0.0);
  report.AddMetric("e2e_qps", e2e.qps, BenchReport::Direction::kNone,
                   0.0);

  char builds[512];
  std::snprintf(
      builds, sizeof(builds),
      "[\n      {\"kind\": \"cuckoo\", \"keys\": %llu, \"build_s\": %.3f, "
      "\"load_factor\": %.4f, \"attempts\": %u, \"pages\": %llu, "
      "\"probes_per_lookup\": %zu, \"map_qps\": %.0f},\n"
      "      {\"kind\": \"fuse\", \"keys\": %llu, \"build_s\": %.3f, "
      "\"space_overhead\": %.4f, \"attempts\": %u, \"pages\": %llu, "
      "\"probes_per_lookup\": %zu, \"map_qps\": %.0f}\n    ]",
      (unsigned long long)g_build_keys, cuckoo.build_s,
      cuckoo.load_factor, cuckoo.attempts,
      (unsigned long long)cuckoo.num_pages, cuckoo.probes, cuckoo.map_qps,
      (unsigned long long)g_build_keys, fuse.build_s, fuse.space_overhead,
      fuse.attempts, (unsigned long long)fuse.num_pages, fuse.probes,
      fuse.map_qps);
  report.AddSection("builds", builds);

  char audit_json[320];
  std::snprintf(
      audit_json, sizeof(audit_json),
      "{\"lookups\": %llu, \"page_requests\": %llu, \"relocations\": "
      "%llu, \"analytic_c\": %.6f, \"measured_c\": %.6f, "
      "\"max_relative_deviation\": %.6f, \"slot_entropy\": %.6f, "
      "\"shape_uniform\": %s}",
      (unsigned long long)g_audit_lookups,
      (unsigned long long)audit.requests,
      (unsigned long long)audit.relocations, audit.analytic_c,
      audit.measured_c, audit.max_relative_deviation, audit.slot_entropy,
      e2e.shape_uniform == 1.0 ? "true" : "false");
  report.AddSection("privacy_audit", audit_json);

  if (report.WriteJson(path)) {
    std::printf("\nwrote %s\n", path);
  }
}

}  // namespace

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--short") == 0) {
      g_build_keys = 50000;
      g_map_queries = 20000;
      g_e2e_queries = 120;
      g_audit_lookups = 1500;
    }
  }
  std::printf(
      "Keyword PIR front-end: %llu-key builds, %.0f%% hit Zipf(%.2f) "
      "workload, target c = %.1f.\n\n",
      (unsigned long long)g_build_keys, 100 * kHitRatio, kZipfExponent,
      kPrivacyC);

  std::printf("%-8s %10s %10s %8s %10s %8s %12s\n", "kind", "build s",
              "load/ovh", "attempts", "pages", "probes", "map q/s");
  const BuildRow cuckoo = RunCuckooBuild();
  std::printf("%-8s %10.3f %10.4f %8u %10llu %8zu %12.0f\n", cuckoo.name,
              cuckoo.build_s, cuckoo.load_factor, cuckoo.attempts,
              (unsigned long long)cuckoo.num_pages, cuckoo.probes,
              cuckoo.map_qps);
  const BuildRow fuse = RunFuseBuild();
  std::printf("%-8s %10.3f %10.4f %8u %10llu %8zu %12.0f\n", fuse.name,
              fuse.build_s, fuse.space_overhead, fuse.attempts,
              (unsigned long long)fuse.num_pages, fuse.probes,
              fuse.map_qps);

  KeywordRig e2e_rig = MakeKeywordRig(/*num_keys=*/400, /*seed=*/51);
  const E2eResult e2e = RunEndToEnd(e2e_rig);
  std::printf(
      "\nend-to-end (engine-backed, n = %llu pages): %.1f q/s, "
      "hit/miss shape uniform: %s\n",
      (unsigned long long)e2e_rig.store.map->num_pages(), e2e.qps,
      e2e.shape_uniform == 1.0 ? "yes" : "NO");

  KeywordRig audit_rig = MakeKeywordRig(/*num_keys=*/400, /*seed=*/52);
  const analysis::PrivacyReport audit = RunKeywordAudit(audit_rig);
  std::printf(
      "keyword-driven privacy audit: %llu page requests, analytic c = "
      "%.3f, measured c = %.3f, slot entropy = %.3f\n",
      (unsigned long long)audit.requests, audit.analytic_c,
      audit.measured_c, audit.slot_entropy);

  WriteJson("BENCH_keyword.json", cuckoo, fuse, e2e, audit);
  return 0;
}
