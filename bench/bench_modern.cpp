// Forward-looking extension: the paper's trade-off re-evaluated on a
// modern (c. 2026) TEE deployment — NVMe storage, PCIe link, AES-NI
// crypto, 16GB of enclave memory — versus the 2011 IBM 4764 profile.
// The scheme's structure is unchanged; only Table 2's constants move.

#include <cstdio>

#include "common/check.h"
#include "hardware/profile.h"
#include "model/cost_model.h"

int main() {
  using namespace shpir;
  using hardware::kKB;

  const auto old_hw = hardware::HardwareProfile::Ibm4764();
  const auto new_hw = hardware::HardwareProfile::ModernTee();

  std::printf(
      "c = 2 retrievals, 1KB pages: 2011 secure coprocessor vs 2026 TEE\n"
      "(modern cache sized at 1%% of the database, capped by 16GB)\n\n");
  std::printf("%-6s %14s %14s %16s %16s\n", "DB", "m (2011)", "m (2026)",
              "2011 resp (ms)", "2026 resp (ms)");

  struct Row {
    const char* db;
    uint64_t n;
    uint64_t m_2011;
  };
  const Row rows[] = {
      {"1GB", 1000000, 50000},
      {"10GB", 10000000, 20000},
      {"100GB", 100000000, 200000},
      {"1TB", 1000000000, 500000},
  };
  for (const Row& row : rows) {
    // Modern: 1% of pages cached, bounded by enclave memory for cache +
    // pageMap.
    uint64_t m_modern = row.n / 100;
    while (model::CostModel::SecureStorageBytes(row.n, m_modern, 1, kKB) >
           new_hw.secure_memory_bytes) {
      m_modern /= 2;
    }
    auto old_eval =
        model::CostModel::Evaluate(row.n, row.m_2011, kKB, 2.0, old_hw);
    auto new_eval =
        model::CostModel::Evaluate(row.n, m_modern, kKB, 2.0, new_hw);
    SHPIR_CHECK(old_eval.ok());
    SHPIR_CHECK(new_eval.ok());
    std::printf("%-6s %14llu %14llu %16.1f %16.3f\n", row.db,
                (unsigned long long)row.m_2011,
                (unsigned long long)m_modern,
                1000 * old_eval->query_seconds,
                1000 * new_eval->query_seconds);
  }

  std::printf(
      "\nAnd the privacy dial at 1TB on modern hardware (m = 1e7):\n");
  std::printf("%8s %10s %16s\n", "eps", "k", "resp (ms)");
  for (double eps : {0.01, 0.05, 0.1, 0.5, 1.0}) {
    auto eval = model::CostModel::Evaluate(1000000000, 10000000, kKB,
                                           1.0 + eps, new_hw);
    SHPIR_CHECK(eval.ok());
    std::printf("%8.2f %10llu %16.2f\n", eps, (unsigned long long)eval->k,
                1000 * eval->query_seconds);
  }
  std::printf(
      "\nReading: what needed 70 coprocessors and ~727ms in 2011 runs in\n"
      "well under 10ms inside one modern TEE — and even c = 1.01 becomes\n"
      "interactive. The trade-off the paper introduced is still the\n"
      "right dial; the hardware has just moved every point down.\n");
  return 0;
}
