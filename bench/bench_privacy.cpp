// Empirical privacy: measures the relocation distribution of the
// running engine and compares it with the analytic model (Eqs. 1-5) —
// evidence the paper argues analytically, here verified end-to-end.
// Also runs the two design-choice ablations from DESIGN.md to show the
// mechanism's randomization is load-bearing.

#include <cstdio>

#include "analysis/privacy_audit.h"
#include "bench/bench_util.h"
#include "crypto/secure_random.h"

namespace {

using namespace shpir;

void Audit(const char* label, core::CApproxPir::Options options,
           uint64_t seed, uint64_t requests) {
  auto rig = bench::MakeEngineRig(options, seed);
  crypto::SecureRandom workload(seed + 1000);
  const uint64_t n = options.num_pages;
  auto report = analysis::RunPrivacyAudit(
      *rig->engine, requests, [&]() { return workload.UniformInt(n); });
  SHPIR_CHECK(report.ok());
  std::printf("%-26s %6llu %6llu %10.3f %10.3f %8.3f %8.3f\n", label,
              (unsigned long long)rig->engine->block_size(),
              (unsigned long long)rig->engine->scan_period(),
              report->analytic_c, report->measured_c,
              report->max_relative_deviation, report->slot_entropy);
}

}  // namespace

int main() {
  std::printf(
      "Empirical privacy audit: measured relocation-frequency ratio vs\n"
      "the analytic c (Eq. 5), max per-bin deviation from the Eq. 2-4\n"
      "distribution, and within-block slot entropy (1.0 = uniform).\n\n");
  std::printf("%-26s %6s %6s %10s %10s %8s %8s\n", "configuration", "k", "T",
              "analytic", "measured", "maxdev", "slotent");

  core::CApproxPir::Options base;
  base.page_size = 32;

  // Healthy configurations at several privacy levels.
  {
    core::CApproxPir::Options o = base;
    o.num_pages = 64;
    o.cache_pages = 8;
    o.block_size = 16;  // T = 4, c ~ 1.49.
    Audit("n=64 m=8 k=16", o, 1, 30000);
  }
  {
    core::CApproxPir::Options o = base;
    o.num_pages = 128;
    o.cache_pages = 16;
    o.block_size = 16;  // T = 8, c ~ 1.57.
    Audit("n=128 m=16 k=16", o, 2, 50000);
  }
  {
    core::CApproxPir::Options o = base;
    o.num_pages = 128;
    o.cache_pages = 32;
    o.block_size = 8;  // T = 16, c ~ 1.61.
    Audit("n=128 m=32 k=8", o, 3, 80000);
  }

  // Ablations (DESIGN.md §5): each knob destroys a measured guarantee.
  {
    core::CApproxPir::Options o = base;
    o.num_pages = 64;
    o.cache_pages = 8;
    o.block_size = 16;
    o.ablation_skip_uniform_swap = true;
    Audit("ablate uniform swap", o, 4, 20000);
  }
  {
    core::CApproxPir::Options o = base;
    o.num_pages = 64;
    o.cache_pages = 8;
    o.block_size = 16;
    o.ablation_round_robin_eviction = true;
    Audit("ablate random eviction", o, 5, 20000);
  }

  std::printf(
      "\nReading: healthy rows show measured ~= analytic and slot entropy\n"
      "~1.0. 'ablate uniform swap' collapses slot entropy (evictions pile\n"
      "into one slot); 'ablate random eviction' makes residency times\n"
      "deterministic, so measured c is 0 (offsets never observed) or the\n"
      "deviation explodes — both randomizations are necessary.\n");
  return 0;
}
