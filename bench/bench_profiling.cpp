// Overhead and coverage of the continuous profiler (src/obs/profiler.h)
// on the Fig. 3 engine, plus a flame-graph artifact.
//
// Three configurations over ONE engine (same seed, same query stream,
// same memory layout — separate rigs pick up percent-level allocation
// bias, larger than the effect under test), toggled via
// EnableProfiling in rapidly cycled ~25-query chunks. Each config's
// total time is the sum over its chunks; overhead is the ratio of
// sums. Cycling on a ~15 ms period means every config samples a noisy
// shared machine's slow phases nearly equally — per-config passes or
// best-of floors do not, and gate on drift instead of the effect under
// test:
//
//   base      — no profiler attached (plain Retrieve);
//   disabled  — profiler attached with sample_every = 0: every query
//               pays only the head-sampling fetch_add (budget: <= 1%);
//   sampled   — sample_every = 16, the production default: 1-in-16
//               rounds record the full frame stack (budget: <= 5%).
//
// The sampled configuration's profile also yields the coverage check:
// at least 90% of the wall time inside sampled engine_round frames must
// be attributed to named child phases (otherwise the span vocabulary
// has a hole and flame graphs would show an unexplained root).
//
// Writes BENCH_profiling.json (bench_report.h schema; the overhead and
// coverage bounds ride along as budget metrics so shpir_benchdiff
// enforces them in CI) and BENCH_profile_collapsed.txt, a
// flame-graph-compatible collapsed profile of the sampled run.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_report.h"
#include "bench/bench_util.h"
#include "crypto/secure_random.h"
#include "obs/profiler.h"

namespace {

using namespace shpir;

constexpr uint64_t kNumPages = 4096;
constexpr size_t kPageSize = 1024;
constexpr uint64_t kCachePages = 256;
constexpr double kPrivacyC = 2.0;
constexpr int kChunkQueries = 25;  // ~15 ms per chunk on the Fig. 3 rig.
int g_chunks_per_config = 400;     // Reduced by --short.
constexpr uint64_t kSampleEvery = 16;
constexpr double kBudgetDisabledPct = 1.0;
constexpr double kBudgetSampledPct = 5.0;
constexpr double kMaxUncoveredFraction = 0.10;

std::unique_ptr<bench::EngineRig> MakeRig() {
  core::CApproxPir::Options options;
  options.num_pages = kNumPages;
  options.page_size = kPageSize;
  options.cache_pages = kCachePages;
  options.privacy_c = kPrivacyC;
  return bench::MakeEngineRig(options, 42);
}

/// One timed chunk of kChunkQueries retrieves drawn from `rng`;
/// returns seconds. Each config owns an identically seeded stream, so
/// all three issue the same queries in the same order.
double TimeChunkSeconds(core::CApproxPir& engine,
                        crypto::SecureRandom& rng) {
  const auto start = std::chrono::steady_clock::now();
  for (int q = 0; q < kChunkQueries; ++q) {
    auto data = engine.Retrieve(rng.UniformInt(kNumPages));
    SHPIR_CHECK(data.ok());
  }
  const auto end = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(end - start).count();
}

/// Fraction of profiled wall time NOT attributed to a named child
/// phase: root-frame self time / total attributed time. External
/// samples (none in this single-engine setup) would count as covered.
double UncoveredFraction(const obs::Profiler& profiler) {
  uint64_t total = 0;
  uint64_t root_self = 0;
  for (const obs::Profiler::StackSample& s : profiler.Snapshot()) {
    total += s.wall_ns;
    if (s.stack.find(';') == std::string::npos) {
      root_self += s.wall_ns;
    }
  }
  return total > 0 ? static_cast<double>(root_self) / total : 1.0;
}

}  // namespace

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--short") == 0) {
      g_chunks_per_config = 120;
    }
  }
  std::printf(
      "Profiler overhead on the c-approximate engine: n = %llu x %zuB, "
      "%d chunks x %d queries per config, fast-interleaved.\n\n",
      (unsigned long long)kNumPages, kPageSize, g_chunks_per_config,
      kChunkQueries);

  auto rig = MakeRig();
  core::CApproxPir& engine = *rig->engine;

  obs::Profiler::Options disabled_options;
  disabled_options.sample_every = 0;  // Attached but never samples.
  obs::Profiler disabled_profiler(disabled_options);

  obs::Profiler::Options sampled_options;
  sampled_options.sample_every = kSampleEvery;
  obs::Profiler sampled_profiler(sampled_options);

  // Warmup: a few untimed chunks fill the page cache and allocator.
  {
    crypto::SecureRandom warmup_rng(1000);
    for (int i = 0; i < 8; ++i) {
      (void)TimeChunkSeconds(engine, warmup_rng);
    }
  }

  // Per-chunk paired ratios, reduced by median: a scheduler stall
  // hitting one chunk (they are heavy-tailed on shared machines)
  // perturbs one ratio, not the aggregate.
  crypto::SecureRandom base_rng(2000);
  crypto::SecureRandom disabled_rng(2000);
  crypto::SecureRandom sampled_rng(2000);
  std::vector<double> base_chunks, disabled_ratios, sampled_ratios;
  for (int chunk = 0; chunk < g_chunks_per_config; ++chunk) {
    engine.EnableProfiling(nullptr);
    const double base = TimeChunkSeconds(engine, base_rng);
    engine.EnableProfiling(&disabled_profiler);
    const double disabled = TimeChunkSeconds(engine, disabled_rng);
    engine.EnableProfiling(&sampled_profiler);
    const double sampled = TimeChunkSeconds(engine, sampled_rng);
    base_chunks.push_back(base);
    disabled_ratios.push_back(disabled / base);
    sampled_ratios.push_back(sampled / base);
  }
  engine.EnableProfiling(nullptr);

  const auto median = [](std::vector<double> v) {
    std::nth_element(v.begin(), v.begin() + v.size() / 2, v.end());
    return v[v.size() / 2];
  };
  const double base_ns = median(base_chunks) * 1e9 / kChunkQueries;
  const double disabled_ns = base_ns * median(disabled_ratios);
  const double sampled_ns = base_ns * median(sampled_ratios);
  const double overhead_disabled_pct =
      100.0 * (median(disabled_ratios) - 1.0);
  const double overhead_sampled_pct =
      100.0 * (median(sampled_ratios) - 1.0);
  const double uncovered = UncoveredFraction(sampled_profiler);

  std::printf("%10s %16s %10s\n", "config", "ns/query", "overhead");
  std::printf("%10s %16.0f %10s\n", "base", base_ns, "-");
  std::printf("%10s %16.0f %9.2f%%\n", "disabled", disabled_ns,
              overhead_disabled_pct);
  std::printf("%10s %16.0f %9.2f%%\n", "sampled", sampled_ns,
              overhead_sampled_pct);
  std::printf(
      "\nprofiler: %llu queries seen, %llu sampled, backend %s, "
      "phase coverage %.1f%%\n\n",
      (unsigned long long)sampled_profiler.queries(),
      (unsigned long long)sampled_profiler.sampled(),
      sampled_profiler.backend(), 100.0 * (1.0 - uncovered));

  const std::string collapsed = sampled_profiler.ToCollapsed();
  std::FILE* folded = std::fopen("BENCH_profile_collapsed.txt", "w");
  if (folded != nullptr) {
    std::fwrite(collapsed.data(), 1, collapsed.size(), folded);
    std::fclose(folded);
    std::printf("wrote BENCH_profile_collapsed.txt (%zu bytes)\n",
                collapsed.size());
  }

  using bench::BenchReport;
  BenchReport report("bench_profiling");
  report.SetHardwareProfile(hardware::HardwareProfile::Ibm4764());
  report.SetParam("num_pages", kNumPages);
  report.SetParam("page_size", static_cast<uint64_t>(kPageSize));
  report.SetParam("cache_pages", kCachePages);
  report.SetParam("chunk_queries", static_cast<uint64_t>(kChunkQueries));
  report.SetParam("chunks_per_config",
                  static_cast<uint64_t>(g_chunks_per_config));
  report.SetParam("sample_every", kSampleEvery);
  report.SetParam("time_base", std::string("wall_clock"));
  report.SetParam("backend", std::string(sampled_profiler.backend()));
  report.SetParam("collapsed_profile_file",
                  std::string("BENCH_profile_collapsed.txt"));
  report.AddMetric("base_ns_per_query", base_ns,
                   BenchReport::Direction::kNone, 0.0);
  report.AddMetric("disabled_ns_per_query", disabled_ns,
                   BenchReport::Direction::kNone, 0.0);
  report.AddMetric("sampled_ns_per_query", sampled_ns,
                   BenchReport::Direction::kNone, 0.0);
  report.AddBudgetMetric("overhead_disabled_pct", overhead_disabled_pct,
                         kBudgetDisabledPct);
  report.AddBudgetMetric("overhead_sampled_pct", overhead_sampled_pct,
                         kBudgetSampledPct);
  report.AddBudgetMetric("phase_uncovered_fraction", uncovered,
                         kMaxUncoveredFraction);
  if (report.WriteJson("BENCH_profiling.json")) {
    std::printf("wrote BENCH_profiling.json\n");
  }

  std::printf(
      "\nReading: the unsampled path costs one atomic increment, so the\n"
      "disabled overhead sits inside the %.0f%% budget; a sampled round\n"
      "adds one clock/counter read per phase boundary (%.0f%% budget).\n"
      "Coverage below %.0f%% would mean a phase escaped the Fig. 3 span\n"
      "vocabulary.\n",
      kBudgetDisabledPct, kBudgetSampledPct,
      100.0 * (1.0 - kMaxUncoveredFraction));
  return overhead_disabled_pct <= kBudgetDisabledPct &&
                 overhead_sampled_pct <= kBudgetSampledPct &&
                 uncovered <= kMaxUncoveredFraction
             ? 0
             : 1;
}
