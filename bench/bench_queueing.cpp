// Client-perceived latency under load: feeds each engine's per-query
// *service* times into an M/G/1 FIFO queue. The paper's complaint about
// amortized schemes — "some queries may lead to excessive delays,
// essentially taking the database server offline for large periods of
// time" — is head-of-line blocking: a single reshuffle stalls every
// queued client. Constant-cost service keeps tail sojourn times tame at
// the same offered load.

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "baselines/pyramid_oram.h"
#include "baselines/wang_pir.h"
#include "bench/bench_report.h"
#include "bench/bench_util.h"
#include "model/queueing.h"
#include "workload/workload.h"

namespace {

using namespace shpir;

constexpr uint64_t kNumPages = 4096;
constexpr size_t kPageSize = 256;
int g_queries = 3000;  // Reduced by --short.

std::vector<double> ServiceTimes(core::PirEngine& engine,
                                 hardware::SecureCoprocessor& cpu,
                                 uint64_t seed) {
  workload::UniformWorkload wl(kNumPages, seed);
  std::vector<double> service;
  service.reserve(g_queries);
  for (int i = 0; i < g_queries; ++i) {
    const auto before = cpu.cost().Snapshot();
    SHPIR_CHECK(engine.Retrieve(wl.Next()).ok());
    const auto delta = cpu.cost().Snapshot() - before;
    service.push_back(
        hardware::CostAccountant::Seconds(delta, cpu.profile()));
  }
  return service;
}

struct EngineRow {
  const char* name;
  model::QueueStats stats;
};

std::vector<EngineRow> g_rows;

void Report(const char* name, const std::vector<double>& service,
            double arrival_rate) {
  const model::QueueStats stats =
      model::SimulateFifoQueue(service, arrival_rate, 42);
  std::printf("%-12s %8.3f %10.1f %10.1f %10.1f %12.1f\n", name,
              stats.utilization, 1000 * stats.p50_s, 1000 * stats.p95_s,
              1000 * stats.p99_s, 1000 * stats.max_s);
  g_rows.push_back({name, stats});
}

void WriteQueueingJson(const char* path, double arrival_rate) {
  using bench::BenchReport;
  BenchReport report("bench_queueing");
  report.SetHardwareProfile(hardware::HardwareProfile::Ibm4764());
  report.SetParam("model", std::string("mg1_fifo"));
  report.SetParam("num_pages", kNumPages);
  report.SetParam("page_size", static_cast<uint64_t>(kPageSize));
  report.SetParam("queries", static_cast<uint64_t>(g_queries));
  report.SetParam("arrival_rate_qps", arrival_rate);
  report.SetParam("time_base", std::string("simulated_ibm4764"));
  // Simulated-time sojourns off seeded workloads are deterministic; a
  // tail regression here means the engine's service-time distribution
  // changed (e.g. an accidental blocking phase), so gate tightly on the
  // paper engine's tail.
  for (const EngineRow& row : g_rows) {
    if (std::strcmp(row.name, "c-approx") == 0) {
      report.AddMetric("capprox_p99_s", row.stats.p99_s,
                       BenchReport::Direction::kLowerBetter, 2.0);
      report.AddMetric("capprox_utilization", row.stats.utilization,
                       BenchReport::Direction::kNone, 0.0);
    }
  }
  std::string engines = "[\n";
  for (size_t i = 0; i < g_rows.size(); ++i) {
    const model::QueueStats& s = g_rows[i].stats;
    char line[256];
    std::snprintf(line, sizeof(line),
                  "      {\"engine\": \"%s\", \"utilization\": %.6f, "
                  "\"mean_s\": %.9f, \"p50_s\": %.9f, \"p95_s\": %.9f, "
                  "\"p99_s\": %.9f, \"max_s\": %.9f}%s\n",
                  g_rows[i].name, s.utilization, s.mean_s, s.p50_s,
                  s.p95_s, s.p99_s, s.max_s,
                  i + 1 < g_rows.size() ? "," : "");
    engines += line;
  }
  engines += "    ]";
  report.AddSection("engines", engines);
  if (report.WriteJson(path)) {
    std::printf("\nwrote %s\n", path);
  }
}

}  // namespace

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--short") == 0) {
      g_queries = 800;
    }
  }
  const auto profile = hardware::HardwareProfile::Ibm4764();
  std::printf(
      "Client-perceived sojourn time (queueing + service) at a shared\n"
      "arrival rate, n = %llu x %zuB, %d queries, M/G/1 FIFO:\n\n",
      (unsigned long long)kNumPages, kPageSize, g_queries);

  // c-approximate engine sets the pace: load it to ~60%.
  std::vector<double> capprox_service;
  {
    core::CApproxPir::Options options;
    options.num_pages = kNumPages;
    options.page_size = kPageSize;
    options.cache_pages = 256;
    options.privacy_c = 2.0;
    auto rig = bench::MakeEngineRig(options, 1);
    capprox_service = ServiceTimes(*rig->engine, *rig->cpu, 100);
  }
  double mean = 0;
  for (double s : capprox_service) {
    mean += s;
  }
  mean /= capprox_service.size();
  const double arrival_rate = 0.6 / mean;
  std::printf("arrival rate: %.1f queries/s (60%% of the c-approx "
              "engine's capacity)\n\n",
              arrival_rate);
  std::printf("%-12s %8s %10s %10s %10s %12s\n", "engine", "load",
              "p50 ms", "p95 ms", "p99 ms", "max ms");
  Report("c-approx", capprox_service, arrival_rate);

  {
    storage::MemoryDisk disk(kNumPages, bench::SealedSize(kPageSize));
    auto cpu = hardware::SecureCoprocessor::Create(profile, &disk,
                                                   kPageSize, 2);
    SHPIR_CHECK(cpu.ok());
    baselines::WangPir::Options options;
    options.num_pages = kNumPages;
    options.page_size = kPageSize;
    options.cache_pages = 256;
    auto pir = baselines::WangPir::Create(cpu->get(), options);
    SHPIR_CHECK(pir.ok());
    SHPIR_CHECK_OK((*pir)->Initialize({}));
    Report("wang06", ServiceTimes(**pir, **cpu, 101), arrival_rate);
  }
  {
    baselines::PyramidOram::Options options;
    options.num_pages = kNumPages;
    options.page_size = kPageSize;
    options.stash_pages = 8;
    auto slots = baselines::PyramidOram::DiskSlots(options);
    SHPIR_CHECK(slots.ok());
    storage::MemoryDisk disk(*slots, bench::SealedSize(kPageSize));
    auto cpu = hardware::SecureCoprocessor::Create(profile, &disk,
                                                   kPageSize, 3);
    SHPIR_CHECK(cpu.ok());
    auto oram = baselines::PyramidOram::Create(cpu->get(), options);
    SHPIR_CHECK(oram.ok());
    SHPIR_CHECK_OK((*oram)->Initialize({}));
    Report("pyramid-oram", ServiceTimes(**oram, **cpu, 102), arrival_rate);
  }

  WriteQueueingJson("BENCH_queueing.json", arrival_rate);
  std::printf(
      "\nReading: identical arrivals, wildly different tails. The\n"
      "reshuffle-based engines may show lower medians (cheaper average\n"
      "service) but their p99/max sojourn explodes when a reshuffle\n"
      "blocks the queue — the paper's 'server offline' effect. The\n"
      "c-approximate engine's tail stays within normal Poisson queueing\n"
      "variation of its median (no service spikes to amplify).\n");
  return 0;
}
