// Reproduces the paper's §2 landscape: amortized vs worst-case costs of
// the secure-hardware PIR families (trivial, Wang [24], sqrt/pyramid
// ORAM [14, 25, 26]) against the c-approximate scheme, as closed forms
// over a common deployment. The paper's argument in one table: every
// perfect-privacy scheme that beats trivial amortized cost pays with a
// worst case proportional to n; the c-approximate scheme's worst case
// *is* its average, purchased with c > 1.

#include <cstdio>

#include "common/check.h"
#include "core/security_parameter.h"
#include "hardware/profile.h"
#include "model/related_work_model.h"

int main() {
  using namespace shpir;
  const auto profile = hardware::HardwareProfile::Ibm4764();
  const uint64_t page_size = hardware::kKB;

  for (uint64_t n : {1000000ull, 100000000ull}) {
    const uint64_t m = n / 100;  // 1% of the database in secure storage.
    auto k = core::SecurityParameter::BlockSize(n, m, 2.0);
    SHPIR_CHECK(k.ok());
    std::printf(
        "n = %llu pages (1KB), secure storage m = %llu, c = 2 -> k = "
        "%llu\n",
        (unsigned long long)n, (unsigned long long)m,
        (unsigned long long)*k);
    std::printf("%-14s %16s %16s %14s %14s %9s\n", "scheme",
                "amortized pages", "worst pages", "amortized s",
                "worst s", "privacy");
    for (const auto& scheme : model::CompareSchemes(n, m, *k)) {
      // Seek counts: 1 for sequential scans, 4 for the c-approx round;
      // use 4 uniformly as a fair upper bound for the per-query term.
      const double amortized_s =
          model::PagesToSeconds(scheme.amortized_pages, page_size, 4,
                                profile);
      const double worst_s = model::PagesToSeconds(
          scheme.worst_case_pages, page_size, 4, profile);
      std::printf("%-14s %16.1f %16.1f %14.3f %14.1f %9s\n",
                  scheme.name.c_str(), scheme.amortized_pages,
                  scheme.worst_case_pages, amortized_s, worst_s,
                  scheme.perfect_privacy ? "perfect" : "c=2");
    }
    std::printf("\n");
  }
  std::printf(
      "The c-approx row is the paper's contribution: constant worst case\n"
      "(equal to its amortized cost) and orders of magnitude below the\n"
      "perfect-privacy schemes' reshuffle spikes, in exchange for the\n"
      "bounded c-approximate guarantee.\n");
  return 0;
}
