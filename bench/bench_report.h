#ifndef SHPIR_BENCH_BENCH_REPORT_H_
#define SHPIR_BENCH_BENCH_REPORT_H_

// Shared schema-versioned reporter behind every BENCH_*.json artifact.
// Each report stamps provenance — schema version, git SHA (injected by
// CMake as SHPIR_GIT_SHA), UTC timestamp, the active
// hardware::HardwareProfile — next to two kinds of content:
//
//  - metrics: flat name/value pairs with a regression direction and a
//    noise tolerance (plus optional absolute budget bounds). This is
//    the surface tools/shpir_benchdiff gates CI on.
//  - sections: free-form JSON blobs (sweep tables, audit reports) kept
//    for humans and dashboards; benchdiff ignores them.
//
// Wall-clock metrics measured on shared CI machines should use
// direction "none" (informational) or a generous tolerance; the gate
// is for deterministic, simulated-time, and budgeted metrics.

#include <cstdint>
#include <cstdio>
#include <ctime>
#include <string>
#include <vector>

#include "hardware/profile.h"

#ifndef SHPIR_GIT_SHA
#define SHPIR_GIT_SHA "unknown"
#endif

namespace shpir::bench {

class BenchReport {
 public:
  static constexpr int kSchemaVersion = 1;

  /// Regression direction for a metric: which way is a failure.
  enum class Direction {
    kNone,          // Informational; never gated.
    kLowerBetter,   // Fails when value rises past tolerance.
    kHigherBetter,  // Fails when value drops past tolerance.
  };

  explicit BenchReport(std::string benchmark) : benchmark_(std::move(benchmark)) {}

  void SetHardwareProfile(const hardware::HardwareProfile& profile) {
    hardware_json_ =
        "{\"seek_time_s\":" + Num(profile.seek_time_s) +
        ",\"disk_rate\":" + Num(profile.disk_rate) +
        ",\"link_rate\":" + Num(profile.link_rate) +
        ",\"crypto_rate\":" + Num(profile.crypto_rate) +
        ",\"secure_memory_bytes\":" +
        std::to_string(profile.secure_memory_bytes) +
        ",\"network_rtt_s\":" + Num(profile.network_rtt_s) +
        ",\"network_rate\":" + Num(profile.network_rate) + "}";
  }

  void SetParam(const std::string& key, uint64_t value) {
    params_.push_back({key, std::to_string(value)});
  }
  void SetParam(const std::string& key, double value) {
    params_.push_back({key, Num(value)});
  }
  void SetParam(const std::string& key, const std::string& value) {
    params_.push_back({key, "\"" + value + "\""});
  }

  /// Gated metric: benchdiff fails when the value moved against
  /// `direction` by more than `tolerance_pct` percent of the baseline.
  void AddMetric(const std::string& name, double value,
                 Direction direction, double tolerance_pct) {
    metrics_.push_back({name, value, direction, tolerance_pct,
                        /*has_budget=*/false, 0.0});
  }

  /// Budgeted metric: fails whenever value > budget_max, baseline or
  /// not (used for the profiler's <=1% / <=5% overhead acceptance).
  void AddBudgetMetric(const std::string& name, double value,
                       double budget_max) {
    metrics_.push_back({name, value, Direction::kNone, 0.0,
                        /*has_budget=*/true, budget_max});
  }

  /// Free-form JSON passthrough under "sections" (must be valid JSON).
  void AddSection(const std::string& key, const std::string& raw_json) {
    sections_.push_back({key, raw_json});
  }

  std::string ToJson() const {
    std::string out = "{\n";
    out += "  \"schema_version\": " + std::to_string(kSchemaVersion) + ",\n";
    out += "  \"benchmark\": \"" + benchmark_ + "\",\n";
    out += "  \"git_sha\": \"" SHPIR_GIT_SHA "\",\n";
    out += "  \"timestamp_utc\": \"" + TimestampUtc() + "\",\n";
    if (!hardware_json_.empty()) {
      out += "  \"hardware_profile\": " + hardware_json_ + ",\n";
    }
    out += "  \"params\": {";
    for (size_t i = 0; i < params_.size(); ++i) {
      out += (i > 0 ? ", " : "") + ("\"" + params_[i].key + "\": ") +
             params_[i].value;
    }
    out += "},\n";
    out += "  \"metrics\": [\n";
    for (size_t i = 0; i < metrics_.size(); ++i) {
      const Metric& m = metrics_[i];
      out += "    {\"name\": \"" + m.name + "\", \"value\": " +
             Num(m.value) + ", \"direction\": \"" +
             DirectionName(m.direction) +
             "\", \"tolerance_pct\": " + Num(m.tolerance_pct);
      if (m.has_budget) {
        out += ", \"budget_max\": " + Num(m.budget_max);
      }
      out += "}";
      out += i + 1 < metrics_.size() ? ",\n" : "\n";
    }
    out += "  ]";
    if (!sections_.empty()) {
      out += ",\n  \"sections\": {\n";
      for (size_t i = 0; i < sections_.size(); ++i) {
        out += "    \"" + sections_[i].key + "\": " + sections_[i].value;
        out += i + 1 < sections_.size() ? ",\n" : "\n";
      }
      out += "  }";
    }
    out += "\n}\n";
    return out;
  }

  /// Writes the report; returns false (and prints to stderr) on I/O
  /// failure.
  bool WriteJson(const std::string& path) const {
    std::FILE* out = std::fopen(path.c_str(), "w");
    if (out == nullptr) {
      std::fprintf(stderr, "%s: cannot write %s\n", benchmark_.c_str(),
                   path.c_str());
      return false;
    }
    const std::string json = ToJson();
    std::fwrite(json.data(), 1, json.size(), out);
    std::fclose(out);
    return true;
  }

 private:
  struct Param {
    std::string key;
    std::string value;  // Pre-rendered JSON.
  };
  struct Metric {
    std::string name;
    double value;
    Direction direction;
    double tolerance_pct;
    bool has_budget;
    double budget_max;
  };

  static std::string Num(double value) {
    char buffer[64];
    std::snprintf(buffer, sizeof(buffer), "%.9g", value);
    return buffer;
  }

  static const char* DirectionName(Direction direction) {
    switch (direction) {
      case Direction::kLowerBetter:
        return "lower_better";
      case Direction::kHigherBetter:
        return "higher_better";
      default:
        return "none";
    }
  }

  static std::string TimestampUtc() {
    const std::time_t now = std::time(nullptr);
    std::tm utc{};
    gmtime_r(&now, &utc);
    char buffer[32];
    std::strftime(buffer, sizeof(buffer), "%Y-%m-%dT%H:%M:%SZ", &utc);
    return buffer;
  }

  std::string benchmark_;
  std::string hardware_json_;
  std::vector<Param> params_;
  std::vector<Metric> metrics_;
  std::vector<Param> sections_;
};

}  // namespace shpir::bench

#endif  // SHPIR_BENCH_BENCH_REPORT_H_
