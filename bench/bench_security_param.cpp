// Tabulates the security parameter k = f(n, m, c) of Eq. 6 and the
// analytic relocation distribution of Eqs. 1-5 — the paper's Definition
// 1 machinery.

#include <cstdio>

#include "common/check.h"
#include "core/security_parameter.h"

using shpir::core::SecurityParameter;

int main() {
  std::printf("Eq. 6: block size k for target privacy c\n");
  std::printf("%-12s %-10s", "n \\ c", "m");
  const double cs[] = {1.01, 1.1, 1.5, 2.0, 4.0};
  for (double c : cs) {
    std::printf(" %10.2f", c);
  }
  std::printf("\n");
  const uint64_t ns[] = {1000000, 10000000, 100000000, 1000000000};
  const uint64_t ms[] = {10000, 100000, 1000000};
  for (uint64_t n : ns) {
    for (uint64_t m : ms) {
      std::printf("%-12llu %-10llu", (unsigned long long)n,
                  (unsigned long long)m);
      for (double c : cs) {
        auto k = SecurityParameter::BlockSize(n, m, c);
        SHPIR_CHECK(k.ok());
        std::printf(" %10llu", (unsigned long long)*k);
      }
      std::printf("\n");
    }
  }

  std::printf("\nAnalytic relocation distribution (n=10000, m=100, k=500, "
              "T=20):\n");
  std::printf("%-8s %-14s\n", "offset b", "P(block b)");
  const auto dist = SecurityParameter::BlockDistribution(100, 500, 20);
  double sum = 0;
  for (size_t b = 0; b < dist.size(); ++b) {
    std::printf("%-8zu %-14.6f\n", b + 1, dist[b]);
    sum += dist[b];
  }
  auto c = SecurityParameter::PrivacyOf(10000, 100, 500);
  SHPIR_CHECK(c.ok());
  std::printf("sum = %.6f; max/min ratio = %.4f (analytic c = %.4f)\n",
              sum, dist.front() / dist.back(), *c);
  return 0;
}
