// Throughput and tail latency of the sharded serving runtime
// (src/shard/): S independent c-approximate engines, each its own
// secure device, behind a bounded-queue dispatcher with cover-query
// privacy (one real query + S-1 dummies per logical retrieve).
//
// Sharding shrinks the per-shard block to k_S ≈ k_1/S (Eq. 6 at n/S
// with a full per-device cache), so although every shard serves one
// query per logical request, each round costs ~1/S of the unsharded
// round and the S devices run in parallel: aggregate throughput grows
// ~S×. Throughput and sojourn times are reported in SIMULATED device
// time (CostAccountant under Table 2 hardware) — the same methodology
// as bench_queueing — so the numbers reflect the modeled deployment,
// not this machine's core count.
//
// Writes BENCH_sharding.json. The S = 1 fork-join simulation is
// validated against SimulateFifoQueue (they must agree exactly); the
// embedded audit checks the per-shard c bound and the cover-traffic
// invariant on a small sharded instance.

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "analysis/sharded_audit.h"
#include "bench/bench_report.h"
#include "bench/bench_util.h"
#include "model/queueing.h"
#include "shard/sharded_engine.h"
#include "workload/workload.h"

namespace {

using namespace shpir;

constexpr uint64_t kNumPages = 16384;
constexpr size_t kPageSize = 1024;
constexpr uint64_t kCachePerDevice = 64;
constexpr double kPrivacyC = 2.0;
int g_queries = 160;        // Reduced by --short.
int g_audit_queries = 12000;
constexpr int kSimTile = 12;  // Tile measured services for stable p99.

const uint64_t kShardCounts[] = {1, 2, 4, 8};

struct Row {
  uint64_t shards = 0;
  uint64_t block_size = 0;
  double worst_c = 0;
  double mean_service_s = 0;   // Bottleneck-shard mean, simulated.
  double sim_qps = 0;          // kQueries / simulated makespan.
  double speedup = 0;          // vs S = 1.
  model::QueueStats sojourn;   // Fork-join at the shared arrival rate.
};

/// Serially drives `queries` logical retrieves, attributing each one's
/// simulated device cost to every shard via cost-accountant deltas
/// (WaitIdle between queries keeps the attribution exact).
std::vector<std::vector<double>> MeasureServiceTimes(
    shard::ShardedPirEngine& engine, int queries, uint64_t seed) {
  workload::UniformWorkload wl(engine.num_pages(), seed);
  const uint64_t shards = engine.shards();
  std::vector<std::vector<double>> service(shards);
  for (auto& s : service) {
    s.reserve(queries);
  }
  for (int q = 0; q < queries; ++q) {
    std::vector<hardware::CostAccountant::Counters> before(shards);
    for (uint64_t s = 0; s < shards; ++s) {
      before[s] = engine.shard_device(s)->cost().Snapshot();
    }
    SHPIR_CHECK_OK(engine.Retrieve(wl.Next()).status());
    engine.WaitIdle();
    for (uint64_t s = 0; s < shards; ++s) {
      const auto delta =
          engine.shard_device(s)->cost().Snapshot() - before[s];
      service[s].push_back(hardware::CostAccountant::Seconds(
          delta, engine.shard_device(s)->profile()));
    }
  }
  return service;
}

/// Tiles each shard's measured service times kSimTile× so the queueing
/// simulation has enough samples for a stable p99.
std::vector<std::vector<double>> Tile(
    const std::vector<std::vector<double>>& service) {
  std::vector<std::vector<double>> tiled(service.size());
  for (size_t s = 0; s < service.size(); ++s) {
    tiled[s].reserve(service[s].size() * kSimTile);
    for (int t = 0; t < kSimTile; ++t) {
      tiled[s].insert(tiled[s].end(), service[s].begin(),
                      service[s].end());
    }
  }
  return tiled;
}

Row RunShardCount(uint64_t shards, double arrival_rate) {
  shard::ShardedPirEngine::Options options;
  options.num_pages = kNumPages;
  options.page_size = kPageSize;
  options.cache_pages = kCachePerDevice;
  options.privacy_c = kPrivacyC;
  options.shards = shards;
  options.queue_depth = 4 * g_queries;  // Measurement never trips admission.
  options.seed = 7;
  auto engine = shard::ShardedPirEngine::Create(options);
  SHPIR_CHECK(engine.ok());
  SHPIR_CHECK_OK((*engine)->Initialize({}));

  const auto service =
      MeasureServiceTimes(**engine, g_queries, 100 + shards);

  Row row;
  row.shards = shards;
  row.block_size = (*engine)->plan().spec(0).block_size;
  row.worst_c = (*engine)->plan().worst_c();
  double makespan = 0;
  double bottleneck_mean = 0;
  for (const auto& s : service) {
    double total = 0;
    for (double v : s) {
      total += v;
    }
    makespan = std::max(makespan, total);
    bottleneck_mean = std::max(bottleneck_mean, total / s.size());
  }
  row.mean_service_s = bottleneck_mean;
  row.sim_qps = g_queries / makespan;
  row.sojourn =
      model::SimulateShardedFanout(Tile(service), arrival_rate, 42);
  (*engine)->Drain();
  return row;
}

/// The S = 1 fork-join simulation must reproduce the plain M/G/1 FIFO
/// simulation exactly (same arrivals, owner draw is a no-op).
bool ValidateAgainstFifo(double arrival_rate) {
  shard::ShardedPirEngine::Options options;
  options.num_pages = 2048;
  options.page_size = 256;
  options.cache_pages = 32;
  options.privacy_c = kPrivacyC;
  options.shards = 1;
  options.queue_depth = 4 * g_queries;
  options.seed = 11;
  auto engine = shard::ShardedPirEngine::Create(options);
  SHPIR_CHECK(engine.ok());
  SHPIR_CHECK_OK((*engine)->Initialize({}));
  const auto service = MeasureServiceTimes(**engine, 400, 55);
  const model::QueueStats fanout =
      model::SimulateShardedFanout(service, arrival_rate, 42);
  const model::QueueStats fifo =
      model::SimulateFifoQueue(service[0], arrival_rate, 42);
  (*engine)->Drain();
  return fanout.mean_s == fifo.mean_s && fanout.p50_s == fifo.p50_s &&
         fanout.p95_s == fifo.p95_s && fanout.p99_s == fifo.p99_s &&
         fanout.max_s == fifo.max_s &&
         fanout.utilization == fifo.utilization;
}

/// Small sharded instance audited hard enough for the measured
/// per-shard c to converge (paper §4.2 empirics, per shard).
analysis::ShardedPrivacyReport RunAudit() {
  shard::ShardedPirEngine::Options options;
  options.num_pages = 256;
  options.page_size = 32;
  options.cache_pages = 8;
  options.privacy_c = kPrivacyC;
  options.shards = 4;
  options.queue_depth = 1024;
  options.seed = 13;
  auto engine = shard::ShardedPirEngine::Create(options);
  SHPIR_CHECK(engine.ok());
  SHPIR_CHECK_OK((*engine)->Initialize({}));
  workload::UniformWorkload wl(options.num_pages, 77);
  auto report = analysis::RunShardedPrivacyAudit(
      **engine, g_audit_queries, [&wl] { return wl.Next(); });
  SHPIR_CHECK(report.ok());
  (*engine)->Drain();
  return *report;
}

void WriteJson(const char* path, const std::vector<Row>& rows,
               double arrival_rate, bool fifo_ok,
               const analysis::ShardedPrivacyReport& audit) {
  using bench::BenchReport;
  BenchReport report("bench_sharding");
  report.SetHardwareProfile(hardware::HardwareProfile::Ibm4764());
  report.SetParam("num_pages", kNumPages);
  report.SetParam("page_size", static_cast<uint64_t>(kPageSize));
  report.SetParam("cache_per_device", kCachePerDevice);
  report.SetParam("target_c", kPrivacyC);
  report.SetParam("queries", static_cast<uint64_t>(g_queries));
  report.SetParam("time_base", std::string("simulated_ibm4764"));
  report.SetParam("arrival_rate_qps", arrival_rate);
  // Everything below runs in simulated device time off seeded RNGs, so
  // the values are deterministic: tight tolerances catch real cost
  // regressions (extra disk reads, larger blocks), not machine noise.
  report.AddMetric("fifo_validation_passed", fifo_ok ? 1.0 : 0.0,
                   BenchReport::Direction::kHigherBetter, 0.0);
  const Row& last = rows.back();
  report.AddMetric("sim_qps_s1", rows.front().sim_qps,
                   BenchReport::Direction::kHigherBetter, 2.0);
  report.AddMetric("sim_qps_max_shards", last.sim_qps,
                   BenchReport::Direction::kHigherBetter, 2.0);
  report.AddMetric("speedup_max_shards", last.speedup,
                   BenchReport::Direction::kHigherBetter, 5.0);
  report.AddMetric("sojourn_p99_s_max_shards", last.sojourn.p99_s,
                   BenchReport::Direction::kLowerBetter, 5.0);
  // Privacy bounds: the per-shard c must never drift above the target.
  report.AddBudgetMetric("worst_analytic_c", audit.worst_analytic_c,
                         audit.target_c);
  report.AddBudgetMetric("worst_measured_c", audit.worst_measured_c,
                         1.10 * audit.target_c);
  report.AddMetric("cover_uniform", audit.cover_uniform ? 1.0 : 0.0,
                   BenchReport::Direction::kHigherBetter, 0.0);

  std::string sweep = "[\n";
  for (size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    char line[320];
    std::snprintf(
        line, sizeof(line),
        "      {\"shards\": %llu, \"block_size_k\": %llu, "
        "\"worst_c\": %.6f, \"mean_service_s\": %.9f, "
        "\"sim_queries_per_s\": %.3f, \"speedup_vs_1\": %.3f, "
        "\"sojourn_p50_s\": %.9f, \"sojourn_p95_s\": %.9f, "
        "\"sojourn_p99_s\": %.9f, \"utilization\": %.6f}%s\n",
        (unsigned long long)r.shards, (unsigned long long)r.block_size,
        r.worst_c, r.mean_service_s, r.sim_qps, r.speedup,
        r.sojourn.p50_s, r.sojourn.p95_s, r.sojourn.p99_s,
        r.sojourn.utilization, i + 1 < rows.size() ? "," : "");
    sweep += line;
  }
  sweep += "    ]";
  report.AddSection("sweep", sweep);

  char audit_json[384];
  std::snprintf(
      audit_json, sizeof(audit_json),
      "{\"logical_requests\": %llu, \"shards\": %llu, "
      "\"target_c\": %.2f, \"worst_analytic_c\": %.6f, "
      "\"worst_measured_c\": %.6f, \"min_slot_entropy\": %.6f, "
      "\"cover_uniform\": %s}",
      (unsigned long long)audit.logical_requests,
      (unsigned long long)audit.shards, audit.target_c,
      audit.worst_analytic_c, audit.worst_measured_c,
      audit.min_slot_entropy, audit.cover_uniform ? "true" : "false");
  report.AddSection("privacy_audit", audit_json);

  if (report.WriteJson(path)) {
    std::printf("\nwrote %s\n", path);
  }
}

}  // namespace

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--short") == 0) {
      g_queries = 40;
      g_audit_queries = 4000;
    }
  }
  bench::PrintTable2(hardware::HardwareProfile::Ibm4764());
  std::printf(
      "Sharded serving runtime: n = %llu x %zuB, per-device cache m = "
      "%llu,\ntarget c = %.1f, %d logical queries per point, simulated "
      "device time.\n\n",
      (unsigned long long)kNumPages, kPageSize,
      (unsigned long long)kCachePerDevice, kPrivacyC, g_queries);

  // Arrival rate: 60% of the UNSHARDED engine's capacity, shared by
  // every sweep point so latency improvements show at equal load.
  Row base = RunShardCount(1, 1.0);  // Probe run for the mean.
  const double arrival_rate = 0.6 / base.mean_service_s;
  std::printf("arrival rate: %.2f queries/s (60%% of S = 1 capacity)\n\n",
              arrival_rate);

  std::printf("%7s %6s %8s %10s %9s %10s %10s %10s\n", "shards", "k",
              "worst c", "sim q/s", "speedup", "p50 ms", "p95 ms",
              "p99 ms");
  std::vector<Row> rows;
  for (uint64_t shards : kShardCounts) {
    Row row = RunShardCount(shards, arrival_rate);
    row.speedup = rows.empty() ? 1.0 : row.sim_qps / rows[0].sim_qps;
    std::printf("%7llu %6llu %8.4f %10.2f %8.2fx %10.1f %10.1f %10.1f\n",
                (unsigned long long)row.shards,
                (unsigned long long)row.block_size, row.worst_c,
                row.sim_qps, row.speedup, 1000 * row.sojourn.p50_s,
                1000 * row.sojourn.p95_s, 1000 * row.sojourn.p99_s);
    rows.push_back(row);
  }

  const bool fifo_ok = ValidateAgainstFifo(arrival_rate);
  std::printf("\nfork-join vs M/G/1 FIFO at S = 1: %s\n",
              fifo_ok ? "EXACT MATCH" : "MISMATCH");

  std::printf("\nsharded privacy audit (n = 256, S = 4, %d logical "
              "queries):\n", g_audit_queries);
  const analysis::ShardedPrivacyReport audit = RunAudit();
  std::printf("  worst analytic c %.4f, worst measured c %.4f "
              "(target %.1f)\n",
              audit.worst_analytic_c, audit.worst_measured_c,
              audit.target_c);
  std::printf("  min slot entropy %.4f, cover traffic uniform: %s "
              "(%llu..%llu queries/shard)\n",
              audit.min_slot_entropy,
              audit.cover_uniform ? "yes" : "NO",
              (unsigned long long)audit.min_shard_queries,
              (unsigned long long)audit.max_shard_queries);

  WriteJson("BENCH_sharding.json", rows, arrival_rate, fifo_ok, audit);

  std::printf(
      "\nReading: per-device caches shrink the per-shard block to\n"
      "k_S ~ k_1/S, so S devices in parallel serve ~S/2.5+ x the\n"
      "queries per second (seeks do not shrink with k, hence sublinear)\n"
      "while every shard individually keeps the c-approximate bound and\n"
      "cover queries make the shard choice itself target-independent.\n");
  return 0;
}
