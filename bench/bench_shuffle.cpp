// Oblivious initial shuffle: costs of the Batcher-network shuffle used
// to re-permute data already resident on the untrusted disk, versus the
// trusted bulk load (valid when the owner supplies plaintext). This is
// the DESIGN.md ablation on the initial permutation path.

#include <cstdio>

#include "bench/bench_util.h"
#include "core/oblivious_shuffle.h"

namespace {

using namespace shpir;

void ShuffleCost(uint64_t n) {
  constexpr size_t kPageSize = 256;
  storage::MemoryDisk disk(n, bench::SealedSize(kPageSize));
  auto cpu = hardware::SecureCoprocessor::Create(
      hardware::HardwareProfile::Ibm4764(), &disk, kPageSize, n);
  SHPIR_CHECK(cpu.ok());
  // Preload sealed pages.
  for (uint64_t i = 0; i < n; ++i) {
    auto sealed = (*cpu)->SealPage(storage::Page(i, Bytes(kPageSize, 0)));
    SHPIR_CHECK(sealed.ok());
    SHPIR_CHECK_OK((*cpu)->WriteSlot(i, *sealed));
  }
  (*cpu)->cost().Reset();

  uint64_t exchanges = 0;
  core::BatcherNetwork(n, [&](uint64_t, uint64_t) { ++exchanges; });
  auto perm = core::ObliviousShuffle(**cpu, n);
  SHPIR_CHECK(perm.ok());
  const double seconds = (*cpu)->ElapsedSeconds();

  // The trusted bulk load touches each slot once, sequentially.
  const double bulk_seconds =
      static_cast<double>(n) * bench::SealedSize(kPageSize) *
          (1.0 / 100e6 + 1.0 / 80e6) +
      static_cast<double>(n) * kPageSize / 10e6 + 0.005;

  std::printf("%10llu %14llu %14.2f %14.3f %10.1fx\n",
              (unsigned long long)n, (unsigned long long)exchanges, seconds,
              bulk_seconds, seconds / bulk_seconds);
}

}  // namespace

int main() {
  std::printf(
      "Oblivious shuffle (Batcher network over sealed pages, 256B pages)\n"
      "vs trusted bulk load. Column 'simulated s' uses the Table 2 "
      "profile.\n\n");
  std::printf("%10s %14s %14s %14s %10s\n", "n", "exchanges", "shuffle s",
              "bulk-load s", "ratio");
  for (uint64_t n : {256ull, 1024ull, 4096ull}) {
    ShuffleCost(n);
  }
  std::printf(
      "\nThe O(n log^2 n) oblivious shuffle is the price of re-permuting\n"
      "without trusting the loader; the paper's scheme needs it only for\n"
      "offline maintenance (e.g. purging deleted pages, §4.3).\n");
  return 0;
}
