// Overhead of the distributed-tracing subsystem (src/obs/trace.h) on
// the sharded serving runtime, plus a sample end-to-end trace.
//
// Three configurations over identical engines (same seed, same query
// stream), interleaved and scored best-of-kPasses to suppress machine
// noise:
//
//   base      — no tracer attached (plain Retrieve);
//   disabled  — tracer attached with sample_every = 0: every query pays
//               only the "is this sampled?" check (budget: <= 1%);
//   sampled   — sample_every = 64, the production default: 1-in-64
//               queries record the full span tree (budget: <= 5%).
//
// Wall-clock time is what matters here (the instrumentation itself runs
// on this machine, not on the simulated device), so unlike
// bench_sharding the per-query numbers are real nanoseconds.
//
// Writes BENCH_tracing.json with the measured overheads, and
// BENCH_trace_sample.json: a Perfetto-loadable Chrome trace of a few
// fully sampled queries through the in-process hub — client_query →
// service_handle → shard_fanout → per-shard queue_wait / shard_query →
// engine_round → coprocessor phases → disk I/O, covers included.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "common/check.h"
#include "crypto/secure_random.h"
#include "net/pir_service.h"
#include "net/service_hub.h"
#include "obs/trace.h"
#include "shard/sharded_engine.h"
#include "workload/workload.h"

namespace {

using namespace shpir;

constexpr uint64_t kNumPages = 2048;
constexpr size_t kPageSize = 256;
constexpr uint64_t kCachePerDevice = 32;
constexpr double kPrivacyC = 2.0;
constexpr uint64_t kShards = 2;
constexpr int kQueriesPerPass = 200;
constexpr int kPasses = 5;
constexpr uint64_t kSampleEvery = 64;
constexpr double kBudgetDisabledPct = 1.0;
constexpr double kBudgetSampledPct = 5.0;

std::unique_ptr<shard::ShardedPirEngine> MakeEngine() {
  shard::ShardedPirEngine::Options options;
  options.num_pages = kNumPages;
  options.page_size = kPageSize;
  options.cache_pages = kCachePerDevice;
  options.privacy_c = kPrivacyC;
  options.shards = kShards;
  options.queue_depth = 1024;
  options.seed = 7;  // Identical engine state across configurations.
  auto engine = shard::ShardedPirEngine::Create(options);
  SHPIR_CHECK(engine.ok());
  SHPIR_CHECK_OK((*engine)->Initialize({}));
  return std::move(engine).value();
}

/// One timed pass of kQueriesPerPass logical retrieves. With a tracer,
/// each query opens a root span and goes through TracedRetrieve — the
/// production client path; without, it is the plain Retrieve path.
double TimePassSeconds(shard::ShardedPirEngine& engine, obs::Tracer* tracer,
                       uint64_t workload_seed) {
  workload::UniformWorkload wl(kNumPages, workload_seed);
  const auto start = std::chrono::steady_clock::now();
  for (int q = 0; q < kQueriesPerPass; ++q) {
    if (tracer != nullptr) {
      obs::TraceSpan root(tracer, "client_query");
      SHPIR_CHECK_OK(engine.TracedRetrieve(wl.Next(), root.context()).status());
    } else {
      SHPIR_CHECK_OK(engine.Retrieve(wl.Next()).status());
    }
  }
  // Cover queries on the other shards finish asynchronously; wait so
  // every configuration pays for its full fan-out.
  engine.WaitIdle();
  const auto end = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(end - start).count();
}

/// Drives a few fully sampled queries through an in-process hub and
/// writes the resulting span tree as Chrome trace JSON. Returns the
/// span count (0 on failure).
size_t WriteSampleTrace(const char* path) {
  obs::Tracer::Options trace_options;
  trace_options.sample_every = 1;
  trace_options.seed = 99;
  obs::Tracer tracer(trace_options);

  auto engine = MakeEngine();
  engine->EnableTracing(&tracer);
  const Bytes psk = {'b', 'e', 'n', 'c', 'h'};
  net::ServiceHub hub(engine.get(), psk, /*rng_seed=*/5, nullptr, &tracer);

  constexpr uint64_t kClientId = 42;
  crypto::SecureRandom rng(9);
  Bytes nonce(net::SecureSession::kNonceSize);
  rng.Fill(nonce);
  Result<Bytes> reply =
      hub.HandleFrame(net::ServiceHub::MakeHello(kClientId, nonce));
  SHPIR_CHECK(reply.ok());
  Result<net::SecureSession> session =
      net::ServiceHub::CompleteHandshake(*reply, psk, kClientId, nonce);
  SHPIR_CHECK(session.ok());
  net::PirServiceClient client(
      std::move(session).value(), [&hub](ByteSpan record) {
        return hub.HandleFrame(net::ServiceHub::MakeData(kClientId, record));
      });
  client.set_tracer(&tracer);

  for (uint64_t i = 0; i < 4; ++i) {
    SHPIR_CHECK(client.Retrieve((i * 523) % kNumPages).ok());
  }
  engine->WaitIdle();
  const std::vector<obs::SpanRecord> spans = tracer.Snapshot();
  const std::string json = obs::ToChromeTraceJson(spans);
  engine->Drain();

  std::FILE* out = std::fopen(path, "w");
  if (out == nullptr) {
    std::fprintf(stderr, "bench_tracing: cannot write %s\n", path);
    return 0;
  }
  std::fwrite(json.data(), 1, json.size(), out);
  std::fclose(out);
  std::printf("wrote %s (%zu spans from 4 fully sampled queries)\n", path,
              spans.size());
  return spans.size();
}

void WriteJson(const char* path, double base_ns, double disabled_ns,
               double sampled_ns, double overhead_disabled_pct,
               double overhead_sampled_pct, uint64_t traces_sampled,
               size_t sample_spans) {
  std::FILE* out = std::fopen(path, "w");
  if (out == nullptr) {
    std::fprintf(stderr, "bench_tracing: cannot write %s\n", path);
    return;
  }
  std::fprintf(out, "{\n");
  std::fprintf(out, "  \"benchmark\": \"bench_tracing\",\n");
  std::fprintf(out, "  \"num_pages\": %llu,\n",
               (unsigned long long)kNumPages);
  std::fprintf(out, "  \"page_size\": %zu,\n", kPageSize);
  std::fprintf(out, "  \"shards\": %llu,\n", (unsigned long long)kShards);
  std::fprintf(out, "  \"queries_per_pass\": %d,\n", kQueriesPerPass);
  std::fprintf(out, "  \"passes_best_of\": %d,\n", kPasses);
  std::fprintf(out, "  \"sample_every\": %llu,\n",
               (unsigned long long)kSampleEvery);
  std::fprintf(out, "  \"time_base\": \"wall_clock\",\n");
  std::fprintf(out, "  \"base_ns_per_query\": %.1f,\n", base_ns);
  std::fprintf(out, "  \"disabled_ns_per_query\": %.1f,\n", disabled_ns);
  std::fprintf(out, "  \"sampled_ns_per_query\": %.1f,\n", sampled_ns);
  std::fprintf(out, "  \"overhead_disabled_pct\": %.3f,\n",
               overhead_disabled_pct);
  std::fprintf(out, "  \"overhead_sampled_pct\": %.3f,\n",
               overhead_sampled_pct);
  std::fprintf(out, "  \"budget_disabled_pct\": %.1f,\n",
               kBudgetDisabledPct);
  std::fprintf(out, "  \"budget_sampled_pct\": %.1f,\n", kBudgetSampledPct);
  std::fprintf(out, "  \"within_budget\": %s,\n",
               overhead_disabled_pct <= kBudgetDisabledPct &&
                       overhead_sampled_pct <= kBudgetSampledPct
                   ? "true"
                   : "false");
  std::fprintf(out, "  \"traces_sampled\": %llu,\n",
               (unsigned long long)traces_sampled);
  std::fprintf(out, "  \"sample_trace_file\": \"BENCH_trace_sample.json\",\n");
  std::fprintf(out, "  \"sample_trace_spans\": %zu\n", sample_spans);
  std::fprintf(out, "}\n");
  std::fclose(out);
  std::printf("wrote %s\n", path);
}

}  // namespace

int main() {
  std::printf(
      "Tracing overhead on the sharded runtime: n = %llu x %zuB, S = %llu, "
      "%d queries/pass, best of %d interleaved passes.\n\n",
      (unsigned long long)kNumPages, kPageSize, (unsigned long long)kShards,
      kQueriesPerPass, kPasses);

  auto base_engine = MakeEngine();
  auto disabled_engine = MakeEngine();
  auto sampled_engine = MakeEngine();

  obs::Tracer::Options disabled_options;
  disabled_options.sample_every = 0;  // Attached but never samples.
  disabled_options.seed = 1;
  obs::Tracer disabled_tracer(disabled_options);
  disabled_engine->EnableTracing(&disabled_tracer);

  obs::Tracer::Options sampled_options;
  sampled_options.sample_every = kSampleEvery;
  sampled_options.seed = 1;
  obs::Tracer sampled_tracer(sampled_options);
  sampled_engine->EnableTracing(&sampled_tracer);

  // Warmup: one untimed pass per configuration fills the caches.
  (void)TimePassSeconds(*base_engine, nullptr, 1000);
  (void)TimePassSeconds(*disabled_engine, &disabled_tracer, 1000);
  (void)TimePassSeconds(*sampled_engine, &sampled_tracer, 1000);

  // Interleave the configurations within each pass so slow machine
  // phases (thermal, noisy neighbors) hit all three equally.
  double base_s = 1e300, disabled_s = 1e300, sampled_s = 1e300;
  for (int pass = 0; pass < kPasses; ++pass) {
    const uint64_t seed = 2000 + pass;
    base_s = std::min(base_s, TimePassSeconds(*base_engine, nullptr, seed));
    disabled_s = std::min(
        disabled_s, TimePassSeconds(*disabled_engine, &disabled_tracer, seed));
    sampled_s = std::min(
        sampled_s, TimePassSeconds(*sampled_engine, &sampled_tracer, seed));
  }
  base_engine->Drain();
  disabled_engine->Drain();
  sampled_engine->Drain();

  const double base_ns = base_s * 1e9 / kQueriesPerPass;
  const double disabled_ns = disabled_s * 1e9 / kQueriesPerPass;
  const double sampled_ns = sampled_s * 1e9 / kQueriesPerPass;
  const double overhead_disabled_pct = 100.0 * (disabled_ns - base_ns) / base_ns;
  const double overhead_sampled_pct = 100.0 * (sampled_ns - base_ns) / base_ns;

  std::printf("%10s %16s %10s\n", "config", "ns/query", "overhead");
  std::printf("%10s %16.0f %10s\n", "base", base_ns, "-");
  std::printf("%10s %16.0f %9.2f%%\n", "disabled", disabled_ns,
              overhead_disabled_pct);
  std::printf("%10s %16.0f %9.2f%%\n", "sampled", sampled_ns,
              overhead_sampled_pct);
  std::printf("\ntracer: %llu started, %llu sampled, %llu spans recorded, "
              "%llu dropped\n\n",
              (unsigned long long)sampled_tracer.started(),
              (unsigned long long)sampled_tracer.sampled(),
              (unsigned long long)sampled_tracer.recorded(),
              (unsigned long long)sampled_tracer.dropped());

  const size_t sample_spans = WriteSampleTrace("BENCH_trace_sample.json");
  WriteJson("BENCH_tracing.json", base_ns, disabled_ns, sampled_ns,
            overhead_disabled_pct, overhead_sampled_pct,
            sampled_tracer.sampled(), sample_spans);

  std::printf(
      "\nReading: with head sampling the per-query cost of tracing is one\n"
      "counter increment on the unsampled path, so the disabled and\n"
      "1-in-%llu overheads should sit inside the %.0f%%/%.0f%% budgets;\n"
      "load BENCH_trace_sample.json in Perfetto to see the fan-out.\n",
      (unsigned long long)kSampleEvery, kBudgetDisabledPct,
      kBudgetSampledPct);
  return 0;
}
