// Overhead of the distributed-tracing subsystem (src/obs/trace.h) on
// the sharded serving runtime, plus a sample end-to-end trace.
//
// Three configurations over ONE engine (same seed, same query stream,
// same memory layout), toggled via EnableTracing in rapidly cycled
// ~12-query chunks; each overhead is the median of the per-chunk
// paired ratios. Fast cycling plus a median keeps a shared machine's
// heavy-tailed stalls out of the 1% budget — per-config passes and
// best-of floors gate on drift instead:
//
//   base      — no tracer attached (plain Retrieve);
//   disabled  — tracer attached with sample_every = 0: every query pays
//               only the "is this sampled?" check (budget: <= 1%);
//   sampled   — sample_every = 64, the production default: 1-in-64
//               queries record the full span tree (budget: <= 5%).
//
// Wall-clock time is what matters here (the instrumentation itself runs
// on this machine, not on the simulated device), so unlike
// bench_sharding the per-query numbers are real nanoseconds.
//
// Writes BENCH_tracing.json with the measured overheads, and
// BENCH_trace_sample.json: a Perfetto-loadable Chrome trace of a few
// fully sampled queries through the in-process hub — client_query →
// service_handle → shard_fanout → per-shard queue_wait / shard_query →
// engine_round → coprocessor phases → disk I/O, covers included.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_report.h"
#include "common/check.h"
#include "crypto/secure_random.h"
#include "net/pir_service.h"
#include "net/service_hub.h"
#include "obs/trace.h"
#include "shard/sharded_engine.h"
#include "workload/workload.h"

namespace {

using namespace shpir;

constexpr uint64_t kNumPages = 2048;
constexpr size_t kPageSize = 256;
constexpr uint64_t kCachePerDevice = 32;
constexpr double kPrivacyC = 2.0;
constexpr uint64_t kShards = 2;
constexpr int kChunkQueries = 12;  // ~10 ms per chunk on this rig.
int g_chunks_per_config = 250;     // Reduced by --short.
constexpr uint64_t kSampleEvery = 64;
constexpr double kBudgetDisabledPct = 1.0;
constexpr double kBudgetSampledPct = 5.0;

std::unique_ptr<shard::ShardedPirEngine> MakeEngine() {
  shard::ShardedPirEngine::Options options;
  options.num_pages = kNumPages;
  options.page_size = kPageSize;
  options.cache_pages = kCachePerDevice;
  options.privacy_c = kPrivacyC;
  options.shards = kShards;
  options.queue_depth = 1024;
  options.seed = 7;  // Identical engine state across configurations.
  auto engine = shard::ShardedPirEngine::Create(options);
  SHPIR_CHECK(engine.ok());
  SHPIR_CHECK_OK((*engine)->Initialize({}));
  return std::move(engine).value();
}

/// One timed chunk of kChunkQueries logical retrieves drawn from `wl`.
/// With a tracer, each query opens a root span and goes through
/// TracedRetrieve — the production client path; without, it is the
/// plain Retrieve path.
double TimeChunkSeconds(shard::ShardedPirEngine& engine, obs::Tracer* tracer,
                        workload::UniformWorkload& wl) {
  const auto start = std::chrono::steady_clock::now();
  for (int q = 0; q < kChunkQueries; ++q) {
    if (tracer != nullptr) {
      obs::TraceSpan root(tracer, "client_query");
      SHPIR_CHECK_OK(engine.TracedRetrieve(wl.Next(), root.context()).status());
    } else {
      SHPIR_CHECK_OK(engine.Retrieve(wl.Next()).status());
    }
  }
  // Cover queries on the other shards finish asynchronously; wait so
  // every configuration pays for its full fan-out.
  engine.WaitIdle();
  const auto end = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(end - start).count();
}

/// Drives a few fully sampled queries through an in-process hub and
/// writes the resulting span tree as Chrome trace JSON. Returns the
/// span count (0 on failure).
size_t WriteSampleTrace(const char* path) {
  obs::Tracer::Options trace_options;
  trace_options.sample_every = 1;
  trace_options.seed = 99;
  obs::Tracer tracer(trace_options);

  auto engine = MakeEngine();
  engine->EnableTracing(&tracer);
  const Bytes psk = {'b', 'e', 'n', 'c', 'h'};
  net::ServiceHub hub(engine.get(), psk, /*rng_seed=*/5, nullptr, &tracer);

  constexpr uint64_t kClientId = 42;
  crypto::SecureRandom rng(9);
  Bytes nonce(net::SecureSession::kNonceSize);
  rng.Fill(nonce);
  Result<Bytes> reply =
      hub.HandleFrame(net::ServiceHub::MakeHello(kClientId, nonce));
  SHPIR_CHECK(reply.ok());
  Result<net::SecureSession> session =
      net::ServiceHub::CompleteHandshake(*reply, psk, kClientId, nonce);
  SHPIR_CHECK(session.ok());
  net::PirServiceClient client(
      std::move(session).value(), [&hub](ByteSpan record) {
        return hub.HandleFrame(net::ServiceHub::MakeData(kClientId, record));
      });
  client.set_tracer(&tracer);

  for (uint64_t i = 0; i < 4; ++i) {
    SHPIR_CHECK(client.Retrieve((i * 523) % kNumPages).ok());
  }
  engine->WaitIdle();
  const std::vector<obs::SpanRecord> spans = tracer.Snapshot();
  const std::string json = obs::ToChromeTraceJson(spans);
  engine->Drain();

  std::FILE* out = std::fopen(path, "w");
  if (out == nullptr) {
    std::fprintf(stderr, "bench_tracing: cannot write %s\n", path);
    return 0;
  }
  std::fwrite(json.data(), 1, json.size(), out);
  std::fclose(out);
  std::printf("wrote %s (%zu spans from 4 fully sampled queries)\n", path,
              spans.size());
  return spans.size();
}

void WriteJson(const char* path, double base_ns, double disabled_ns,
               double sampled_ns, double overhead_disabled_pct,
               double overhead_sampled_pct, uint64_t traces_sampled,
               size_t sample_spans) {
  using bench::BenchReport;
  BenchReport report("bench_tracing");
  report.SetHardwareProfile(hardware::HardwareProfile::Ibm4764());
  report.SetParam("num_pages", kNumPages);
  report.SetParam("page_size", static_cast<uint64_t>(kPageSize));
  report.SetParam("shards", kShards);
  report.SetParam("chunk_queries", static_cast<uint64_t>(kChunkQueries));
  report.SetParam("chunks_per_config",
                  static_cast<uint64_t>(g_chunks_per_config));
  report.SetParam("sample_every", kSampleEvery);
  report.SetParam("time_base", std::string("wall_clock"));
  report.SetParam("sample_trace_file",
                  std::string("BENCH_trace_sample.json"));
  report.AddMetric("base_ns_per_query", base_ns,
                   BenchReport::Direction::kNone, 0.0);
  report.AddMetric("disabled_ns_per_query", disabled_ns,
                   BenchReport::Direction::kNone, 0.0);
  report.AddMetric("sampled_ns_per_query", sampled_ns,
                   BenchReport::Direction::kNone, 0.0);
  // The overhead ratios are machine-relative: both numerator and
  // denominator ran interleaved on the same machine, so the budget
  // bound is meaningful on any CI host.
  report.AddBudgetMetric("overhead_disabled_pct", overhead_disabled_pct,
                         kBudgetDisabledPct);
  report.AddBudgetMetric("overhead_sampled_pct", overhead_sampled_pct,
                         kBudgetSampledPct);
  report.AddMetric("traces_sampled", static_cast<double>(traces_sampled),
                   BenchReport::Direction::kNone, 0.0);
  // The sample trace must keep covering the full fan-out; a drop means
  // spans were lost or a subsystem stopped emitting.
  report.AddMetric("sample_trace_spans", static_cast<double>(sample_spans),
                   BenchReport::Direction::kHigherBetter, 25.0);
  if (report.WriteJson(path)) {
    std::printf("wrote %s\n", path);
  }
}

}  // namespace

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--short") == 0) {
      g_chunks_per_config = 60;
    }
  }
  std::printf(
      "Tracing overhead on the sharded runtime: n = %llu x %zuB, S = %llu, "
      "%d chunks x %d queries per config, fast-interleaved.\n\n",
      (unsigned long long)kNumPages, kPageSize, (unsigned long long)kShards,
      g_chunks_per_config, kChunkQueries);

  auto engine = MakeEngine();

  obs::Tracer::Options disabled_options;
  disabled_options.sample_every = 0;  // Attached but never samples.
  disabled_options.seed = 1;
  obs::Tracer disabled_tracer(disabled_options);

  obs::Tracer::Options sampled_options;
  sampled_options.sample_every = kSampleEvery;
  sampled_options.seed = 1;
  obs::Tracer sampled_tracer(sampled_options);

  // Warmup: a few untimed chunks fill the caches.
  {
    workload::UniformWorkload warmup(kNumPages, 1000);
    for (int i = 0; i < 8; ++i) {
      (void)TimeChunkSeconds(*engine, nullptr, warmup);
    }
  }

  // Per-chunk paired ratios, reduced by median.
  workload::UniformWorkload base_wl(kNumPages, 2000);
  workload::UniformWorkload disabled_wl(kNumPages, 2000);
  workload::UniformWorkload sampled_wl(kNumPages, 2000);
  std::vector<double> base_chunks, disabled_ratios, sampled_ratios;
  for (int chunk = 0; chunk < g_chunks_per_config; ++chunk) {
    engine->EnableTracing(nullptr);
    const double base = TimeChunkSeconds(*engine, nullptr, base_wl);
    engine->EnableTracing(&disabled_tracer);
    const double disabled =
        TimeChunkSeconds(*engine, &disabled_tracer, disabled_wl);
    engine->EnableTracing(&sampled_tracer);
    const double sampled =
        TimeChunkSeconds(*engine, &sampled_tracer, sampled_wl);
    base_chunks.push_back(base);
    disabled_ratios.push_back(disabled / base);
    sampled_ratios.push_back(sampled / base);
  }
  engine->EnableTracing(nullptr);
  engine->Drain();

  const auto median = [](std::vector<double> v) {
    std::nth_element(v.begin(), v.begin() + v.size() / 2, v.end());
    return v[v.size() / 2];
  };
  const double base_ns = median(base_chunks) * 1e9 / kChunkQueries;
  const double disabled_ns = base_ns * median(disabled_ratios);
  const double sampled_ns = base_ns * median(sampled_ratios);
  const double overhead_disabled_pct =
      100.0 * (median(disabled_ratios) - 1.0);
  const double overhead_sampled_pct =
      100.0 * (median(sampled_ratios) - 1.0);

  std::printf("%10s %16s %10s\n", "config", "ns/query", "overhead");
  std::printf("%10s %16.0f %10s\n", "base", base_ns, "-");
  std::printf("%10s %16.0f %9.2f%%\n", "disabled", disabled_ns,
              overhead_disabled_pct);
  std::printf("%10s %16.0f %9.2f%%\n", "sampled", sampled_ns,
              overhead_sampled_pct);
  std::printf("\ntracer: %llu started, %llu sampled, %llu spans recorded, "
              "%llu dropped\n\n",
              (unsigned long long)sampled_tracer.started(),
              (unsigned long long)sampled_tracer.sampled(),
              (unsigned long long)sampled_tracer.recorded(),
              (unsigned long long)sampled_tracer.dropped());

  const size_t sample_spans = WriteSampleTrace("BENCH_trace_sample.json");
  WriteJson("BENCH_tracing.json", base_ns, disabled_ns, sampled_ns,
            overhead_disabled_pct, overhead_sampled_pct,
            sampled_tracer.sampled(), sample_spans);

  std::printf(
      "\nReading: with head sampling the per-query cost of tracing is one\n"
      "counter increment on the unsampled path, so the disabled and\n"
      "1-in-%llu overheads should sit inside the %.0f%%/%.0f%% budgets;\n"
      "load BENCH_trace_sample.json in Perfetto to see the fan-out.\n",
      (unsigned long long)kSampleEvery, kBudgetDisabledPct,
      kBudgetSampledPct);
  return 0;
}
