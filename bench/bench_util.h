#ifndef SHPIR_BENCH_BENCH_UTIL_H_
#define SHPIR_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <memory>
#include <vector>

#include "common/check.h"
#include "core/capprox_pir.h"
#include "hardware/coprocessor.h"
#include "hardware/profile.h"
#include "storage/access_trace.h"
#include "storage/disk.h"

namespace shpir::bench {

/// Prints the paper's Table 2 so every bench is self-describing.
inline void PrintTable2(const hardware::HardwareProfile& profile) {
  std::printf("Table 2 system specification:\n");
  std::printf("  disk seek time (ts)          %.0f ms\n",
              profile.seek_time_s * 1000);
  std::printf("  disk read/write (rd)         %.0f MB/s\n",
              profile.disk_rate / 1e6);
  std::printf("  secure hw link (rl)          %.0f MB/s\n",
              profile.link_rate / 1e6);
  std::printf("  encryption/decryption (renc) %.0f MB/s\n",
              profile.crypto_rate / 1e6);
  std::printf("  secure storage               %.0f MB\n\n",
              static_cast<double>(profile.secure_memory_bytes) / 1e6);
}

inline size_t SealedSize(size_t page_size) {
  return 12 + 8 + page_size + 32;
}

/// A ready-to-query c-approximate PIR stack over an in-memory disk.
struct EngineRig {
  std::unique_ptr<storage::MemoryDisk> disk;
  std::unique_ptr<storage::TracingDisk> tracing_disk;
  storage::AccessTrace trace;
  std::unique_ptr<hardware::SecureCoprocessor> cpu;
  std::unique_ptr<core::CApproxPir> engine;
};

inline std::unique_ptr<EngineRig> MakeEngineRig(
    core::CApproxPir::Options options, uint64_t seed,
    hardware::HardwareProfile profile = hardware::HardwareProfile::Ibm4764()) {
  auto rig = std::make_unique<EngineRig>();
  Result<uint64_t> slots = core::CApproxPir::DiskSlots(options);
  SHPIR_CHECK(slots.ok());
  rig->disk = std::make_unique<storage::MemoryDisk>(
      *slots, SealedSize(options.page_size));
  rig->tracing_disk =
      std::make_unique<storage::TracingDisk>(rig->disk.get(), &rig->trace);
  auto cpu = hardware::SecureCoprocessor::Create(
      profile, rig->tracing_disk.get(), options.page_size, seed);
  SHPIR_CHECK(cpu.ok());
  rig->cpu = std::move(cpu).value();
  auto engine =
      core::CApproxPir::Create(rig->cpu.get(), options, &rig->trace);
  SHPIR_CHECK(engine.ok());
  rig->engine = std::move(engine).value();
  SHPIR_CHECK_OK(rig->engine->Initialize({}));
  return rig;
}

}  // namespace shpir::bench

#endif  // SHPIR_BENCH_BENCH_UTIL_H_
