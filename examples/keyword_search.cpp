// Private keyword search (the paper's web-search motivation, §1):
// a user looks up terms in an inverted index without the search engine
// learning the terms — no more "AOL searcher no. 4417749" incidents.
//
// The dictionary maps hashed keywords to posting-list heads stored in a
// B+-tree served over the c-approximate PIR engine.
//
//   ./keyword_search

#include <cstdio>
#include <string>
#include <vector>

#include "common/check.h"
#include "core/capprox_pir.h"
#include "crypto/sha256.h"
#include "hardware/coprocessor.h"
#include "index/bplus_tree.h"
#include "storage/disk.h"

namespace {

uint64_t KeywordKey(const std::string& word) {
  const auto digest = shpir::crypto::Sha256::Hash(shpir::ByteSpan(
      reinterpret_cast<const uint8_t*>(word.data()), word.size()));
  return shpir::LoadLE64(digest.data());
}

}  // namespace

int main() {
  using namespace shpir;

  // --- Owner: build the inverted index -------------------------------
  const std::vector<std::pair<std::string, uint64_t>> corpus = {
      {"arthritis", 1001}, {"bankruptcy", 1002}, {"chemotherapy", 1003},
      {"divorce", 1004},   {"epilepsy", 1005},   {"foreclosure", 1006},
      {"gambling", 1007},  {"hepatitis", 1008},  {"insomnia", 1009},
      {"jobless", 1010},   {"migraine", 1011},   {"pregnancy", 1012},
  };
  std::vector<std::pair<uint64_t, uint64_t>> entries;
  for (const auto& [word, doc] : corpus) {
    entries.emplace_back(KeywordKey(word), doc);
  }
  std::sort(entries.begin(), entries.end());

  constexpr size_t kPageSize = 128;
  index::BPlusTreeBuilder builder(kPageSize);
  auto pages = builder.Build(entries);
  SHPIR_CHECK(pages.ok());

  // --- Server: host behind the secure hardware -----------------------
  core::CApproxPir::Options options;
  options.num_pages = pages->size();
  options.page_size = kPageSize;
  options.cache_pages = 8;
  options.block_size = 4;
  auto slots = core::CApproxPir::DiskSlots(options);
  SHPIR_CHECK(slots.ok());
  storage::MemoryDisk disk(*slots, 12 + 8 + kPageSize + 32);
  auto cpu = hardware::SecureCoprocessor::Create(
      hardware::HardwareProfile::Ibm4764(), &disk, kPageSize);
  SHPIR_CHECK(cpu.ok());
  auto engine = core::CApproxPir::Create(cpu->get(), options);
  SHPIR_CHECK(engine.ok());
  SHPIR_CHECK_OK((*engine)->Initialize(*pages));

  auto tree = index::BPlusTree::Open(engine->get());
  SHPIR_CHECK(tree.ok());

  // --- Client: sensitive searches ------------------------------------
  for (const std::string query : {"chemotherapy", "foreclosure", "vacation"}) {
    auto result = (*tree)->Lookup(KeywordKey(query));
    SHPIR_CHECK(result.ok());
    if (result->has_value()) {
      std::printf("'%s' -> document %llu\n", query.c_str(),
                  (unsigned long long)**result);
    } else {
      std::printf("'%s' -> no results\n", query.c_str());
    }
  }

  std::printf("\nprivate retrievals: %llu (%llu per lookup — hits and "
              "misses cost the same)\n",
              (unsigned long long)(*tree)->retrievals(),
              (unsigned long long)(*tree)->height());
  std::printf("simulated server time: %.1f ms\n",
              1000.0 * (*cpu)->ElapsedSeconds());
  return 0;
}
