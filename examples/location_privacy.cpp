// Location privacy (the paper's motivating LBS scenario, cf. [23]):
// a mobile user asks "which points of interest are near me?" without
// the server learning where the user is.
//
// POIs are indexed by a Z-order (Morton) code of their grid cell in a
// B+-tree whose nodes are database pages; the client walks the index
// and scans the relevant cells with private page retrievals only.
//
//   ./location_privacy

#include <cstdio>
#include <vector>

#include "common/check.h"
#include "core/capprox_pir.h"
#include "crypto/secure_random.h"
#include "hardware/coprocessor.h"
#include "index/bplus_tree.h"
#include "storage/access_trace.h"
#include "storage/disk.h"

namespace {

// Interleaves the low 16 bits of x and y into a Z-order code.
uint64_t Morton(uint32_t x, uint32_t y) {
  uint64_t code = 0;
  for (int bit = 0; bit < 16; ++bit) {
    code |= static_cast<uint64_t>((x >> bit) & 1) << (2 * bit);
    code |= static_cast<uint64_t>((y >> bit) & 1) << (2 * bit + 1);
  }
  return code;
}

}  // namespace

int main() {
  using namespace shpir;

  // --- Owner side: build the POI index -------------------------------
  constexpr uint32_t kGrid = 64;           // 64x64 city grid.
  constexpr size_t kPageSize = 256;        // Index node size.
  crypto::SecureRandom poi_rng(2024);

  // One POI per busy cell: key = Morton(cell), value = POI id.
  std::vector<std::pair<uint64_t, uint64_t>> pois;
  for (uint32_t x = 0; x < kGrid; ++x) {
    for (uint32_t y = 0; y < kGrid; ++y) {
      if (poi_rng.UniformInt(4) == 0) {  // ~25% of cells have a POI.
        pois.emplace_back(Morton(x, y), (static_cast<uint64_t>(x) << 32) | y);
      }
    }
  }
  std::sort(pois.begin(), pois.end());

  index::BPlusTreeBuilder builder(kPageSize);
  auto tree_pages = builder.Build(pois);
  SHPIR_CHECK(tree_pages.ok());
  std::printf("indexed %zu POIs into %zu index pages\n", pois.size(),
              tree_pages->size());

  // --- Server side: host the index behind the secure hardware --------
  core::CApproxPir::Options options;
  options.num_pages = tree_pages->size();
  options.page_size = kPageSize;
  options.cache_pages = 32;
  options.privacy_c = 2.0;
  auto slots = core::CApproxPir::DiskSlots(options);
  SHPIR_CHECK(slots.ok());
  storage::MemoryDisk disk(*slots, 12 + 8 + kPageSize + 32);
  storage::AccessTrace trace;
  storage::TracingDisk tracing_disk(&disk, &trace);
  auto cpu = hardware::SecureCoprocessor::Create(
      hardware::HardwareProfile::Ibm4764(), &tracing_disk, kPageSize);
  SHPIR_CHECK(cpu.ok());
  auto engine = core::CApproxPir::Create(cpu->get(), options, &trace);
  SHPIR_CHECK(engine.ok());
  SHPIR_CHECK_OK((*engine)->Initialize(*tree_pages));

  auto tree = index::BPlusTree::Open(engine->get());
  SHPIR_CHECK(tree.ok());

  // --- Client side: "what's near (x, y)?" ----------------------------
  // The user's location is never sent anywhere: the client turns the
  // neighborhood into Morton ranges and privately scans them.
  const uint32_t user_x = 17, user_y = 42;
  std::printf("user at cell (%u, %u) — never disclosed\n\n", user_x, user_y);

  uint64_t found = 0;
  const uint64_t before = (*tree)->retrievals();
  for (int dx = -1; dx <= 1; ++dx) {
    for (int dy = -1; dy <= 1; ++dy) {
      const uint32_t cx = user_x + static_cast<uint32_t>(dx);
      const uint32_t cy = user_y + static_cast<uint32_t>(dy);
      const uint64_t code = Morton(cx, cy);
      auto hits = (*tree)->RangeScan(code, code);
      SHPIR_CHECK(hits.ok());
      for (const auto& [key, value] : *hits) {
        std::printf("  POI in cell (%llu, %llu)\n",
                    (unsigned long long)(value >> 32),
                    (unsigned long long)(value & 0xffffffff));
        ++found;
      }
    }
  }
  const uint64_t lookups = (*tree)->retrievals() - before;

  std::printf("\n%llu POIs found in the 3x3 neighborhood\n",
              (unsigned long long)found);
  std::printf("private page retrievals issued: %llu\n",
              (unsigned long long)lookups);
  std::printf("simulated server time: %.1f ms\n",
              1000.0 * (*cpu)->ElapsedSeconds());
  std::printf("server's view: %zu opaque accesses — every query reads the "
              "next round-robin block plus one page,\nso cells near the "
              "user are indistinguishable from cells anywhere else.\n",
              trace.events().size());
  return 0;
}
