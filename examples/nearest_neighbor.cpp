// Private k-nearest-neighbor search — the exact scenario of the
// paper's reference [23] (Papadopoulos et al., "Nearest neighbor search
// with strong location privacy"): the client walks a disk-resident
// R-tree with private page retrievals, so the LBS provider learns
// neither the query location nor the result.
//
//   ./nearest_neighbor

#include <cmath>
#include <cstdio>

#include "common/check.h"
#include "core/capprox_pir.h"
#include "crypto/secure_random.h"
#include "hardware/coprocessor.h"
#include "index/rtree.h"
#include "storage/access_trace.h"
#include "storage/disk.h"

int main() {
  using namespace shpir;

  // --- Owner: index 20,000 POIs into a packed R-tree -----------------
  constexpr size_t kPageSize = 1024;
  crypto::SecureRandom city(2026);
  std::vector<index::SpatialEntry> pois(20000);
  for (uint64_t i = 0; i < pois.size(); ++i) {
    pois[i] = index::SpatialEntry{
        static_cast<uint32_t>(city.UniformInt(1000000)),
        static_cast<uint32_t>(city.UniformInt(1000000)), i};
  }
  index::RTreeBuilder builder(kPageSize);
  auto pages = builder.Build(pois);
  SHPIR_CHECK(pages.ok());
  std::printf("%zu POIs packed into %zu R-tree pages "
              "(leaf cap %zu, fanout %zu)\n",
              pois.size(), pages->size(), builder.leaf_capacity(),
              builder.internal_capacity());

  // --- Server: host the index behind the secure hardware -------------
  core::CApproxPir::Options options;
  options.num_pages = pages->size();
  options.page_size = kPageSize;
  options.cache_pages = 64;
  options.privacy_c = 2.0;
  auto slots = core::CApproxPir::DiskSlots(options);
  SHPIR_CHECK(slots.ok());
  storage::MemoryDisk disk(*slots, 12 + 8 + kPageSize + 32);
  storage::AccessTrace trace;
  storage::TracingDisk tracing_disk(&disk, &trace);
  auto cpu = hardware::SecureCoprocessor::Create(
      hardware::HardwareProfile::Ibm4764(), &tracing_disk, kPageSize);
  SHPIR_CHECK(cpu.ok());
  auto engine = core::CApproxPir::Create(cpu->get(), options, &trace);
  SHPIR_CHECK(engine.ok());
  SHPIR_CHECK_OK((*engine)->Initialize(*pages));

  auto tree = index::RTree::Open(engine->get());
  SHPIR_CHECK(tree.ok());

  // --- Client: "the 5 POIs nearest to me" -----------------------------
  const uint32_t user_x = 424242, user_y = 777777;
  const uint64_t before_fetches = (*tree)->retrievals();
  const auto t0 = (*cpu)->ElapsedSeconds();
  auto nn = (*tree)->NearestNeighbors(user_x, user_y, 5);
  SHPIR_CHECK(nn.ok());
  const uint64_t fetches = (*tree)->retrievals() - before_fetches;
  const double seconds = (*cpu)->ElapsedSeconds() - t0;

  std::printf("\n5 nearest POIs to the (undisclosed) location:\n");
  for (const auto& poi : *nn) {
    const double dx = static_cast<double>(poi.x) - user_x;
    const double dy = static_cast<double>(poi.y) - user_y;
    std::printf("  POI %-6llu at (%u, %u), distance %.0f\n",
                (unsigned long long)poi.value, poi.x, poi.y,
                std::sqrt(dx * dx + dy * dy));
  }
  std::printf("\nprivate page fetches: %llu (tree height %llu)\n",
              (unsigned long long)fetches,
              (unsigned long long)(*tree)->height());
  std::printf("simulated server time: %.0f ms (constant %d ms per fetch)\n",
              1000 * seconds,
              static_cast<int>(1000 * seconds / fetches));
  std::printf("the server saw %zu opaque accesses; with c = 2, no disk\n"
              "location it observed is more than twice as likely as any\n"
              "other to hold any particular index page.\n",
              trace.events().size());
  return 0;
}
