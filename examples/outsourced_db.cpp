// The two-party model (paper §3.1/§5, Fig. 7): a data owner outsources
// its encrypted database to an untrusted storage provider and accesses
// it privately over a network. No secure hardware is needed — the
// owner's own machine plays that role.
//
//   ./outsourced_db

#include <cstdio>

#include "common/check.h"
#include "core/capprox_pir.h"
#include "crypto/secure_random.h"
#include "hardware/coprocessor.h"
#include "net/remote_disk.h"
#include "net/storage_server.h"
#include "storage/disk.h"

int main() {
  using namespace shpir;

  constexpr size_t kPageSize = 1024;
  constexpr size_t kSealedSize = 12 + 8 + kPageSize + 32;

  core::CApproxPir::Options options;
  options.num_pages = 2000;
  options.page_size = kPageSize;
  options.cache_pages = 100;
  options.privacy_c = 2.0;
  auto slots = core::CApproxPir::DiskSlots(options);
  SHPIR_CHECK(slots.ok());

  // --- Provider: a dumb block store, sees only ciphertext ------------
  storage::MemoryDisk provider_disk(*slots, kSealedSize);
  net::StorageServer server(&provider_disk);
  net::DirectTransport transport(&server);

  // --- Owner: coprocessor-less PIR stack over the network ------------
  auto remote = net::RemoteDisk::Connect(&transport);
  SHPIR_CHECK(remote.ok());
  // 50ms RTT WiFi-class link, as in the paper's experiment.
  const hardware::HardwareProfile profile =
      hardware::HardwareProfile::TwoPartyOwner(1ull * hardware::kGB);
  auto cpu = hardware::SecureCoprocessor::Create(profile, remote->get(),
                                                 kPageSize);
  SHPIR_CHECK(cpu.ok());
  (*remote)->set_accountant(&(*cpu)->cost());

  auto engine = core::CApproxPir::Create(cpu->get(), options);
  SHPIR_CHECK(engine.ok());

  std::vector<storage::Page> pages;
  for (uint64_t id = 0; id < options.num_pages; ++id) {
    pages.emplace_back(id, Bytes(kPageSize, static_cast<uint8_t>(id)));
  }
  SHPIR_CHECK_OK((*engine)->Initialize(pages));

  std::printf("outsourced %llu pages (k = %llu, achieved c = %.3f)\n\n",
              (unsigned long long)options.num_pages,
              (unsigned long long)(*engine)->block_size(),
              (*engine)->achieved_privacy());

  crypto::SecureRandom rng(3);
  const auto before = (*cpu)->cost().Snapshot();
  constexpr int kQueries = 50;
  for (int i = 0; i < kQueries; ++i) {
    const uint64_t id = rng.UniformInt(options.num_pages);
    auto data = (*engine)->Retrieve(id);
    SHPIR_CHECK(data.ok());
    SHPIR_CHECK((*data)[0] == static_cast<uint8_t>(id));
  }
  const auto delta = (*cpu)->cost().Snapshot() - before;
  const double seconds =
      hardware::CostAccountant::Seconds(delta, profile) / kQueries;

  std::printf("%d private queries, all verified.\n", kQueries);
  std::printf("per query: %llu network round trips, %.1f KB transferred\n",
              (unsigned long long)(delta.network_round_trips / kQueries),
              static_cast<double>(delta.network_bytes) / kQueries / 1000.0);
  std::printf("simulated response time: %.1f ms/query "
              "(network-dominated, as in Fig. 7)\n",
              1000.0 * seconds);
  std::printf("\nthe provider executed every request yet saw only sealed "
              "pages\nand a fixed-shape access pattern.\n");
  return 0;
}
