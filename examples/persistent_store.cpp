// Persistence: a private page store that survives process restarts.
// Session 1 creates a file-backed database, serves queries, then
// snapshots the engine's secure state (sealed under a passphrase).
// Session 2 reopens the disk file, restores the snapshot and continues
// exactly where session 1 left off.
//
//   ./persistent_store

#include <cstdio>
#include <string>

#include "common/check.h"
#include "core/capprox_pir.h"
#include "crypto/blob_cipher.h"
#include "crypto/secure_random.h"
#include "hardware/coprocessor.h"
#include "storage/file_disk.h"

namespace {

using namespace shpir;

constexpr size_t kPageSize = 256;
constexpr size_t kSealedSize = 12 + 8 + kPageSize + 32;
// In production the device seed is the coprocessor's internal key
// material; here it doubles as the restart escrow.
constexpr uint64_t kDeviceSeed = 0xC0FFEE;

core::CApproxPir::Options Options() {
  core::CApproxPir::Options options;
  options.num_pages = 500;
  options.page_size = kPageSize;
  options.cache_pages = 32;
  options.privacy_c = 2.0;
  return options;
}

Bytes Record(uint64_t id, const char* suffix) {
  std::string text = "record-" + std::to_string(id) + suffix;
  Bytes data(text.begin(), text.end());
  data.resize(kPageSize, 0);
  return data;
}

}  // namespace

int main() {
  const std::string disk_path = "/tmp/shpir_store.bin";
  const std::string passphrase = "owner-escrow-passphrase";
  const auto options = Options();
  auto slots = core::CApproxPir::DiskSlots(options);
  SHPIR_CHECK(slots.ok());

  Bytes sealed_state;

  // ---- Session 1: create, query, snapshot ----------------------------
  {
    auto disk = storage::FileDisk::Create(disk_path, *slots, kSealedSize);
    SHPIR_CHECK(disk.ok());
    auto cpu = hardware::SecureCoprocessor::Create(
        hardware::HardwareProfile::Ibm4764(), disk->get(), kPageSize,
        kDeviceSeed);
    SHPIR_CHECK(cpu.ok());
    auto engine = core::CApproxPir::Create(cpu->get(), options);
    SHPIR_CHECK(engine.ok());
    std::vector<storage::Page> pages;
    for (uint64_t id = 0; id < options.num_pages; ++id) {
      pages.emplace_back(id, Record(id, ""));
    }
    SHPIR_CHECK_OK((*engine)->Initialize(pages));

    crypto::SecureRandom rng(1);
    for (int i = 0; i < 300; ++i) {
      SHPIR_CHECK((*engine)->Retrieve(rng.UniformInt(500)).ok());
    }
    SHPIR_CHECK_OK((*engine)->Modify(42, Record(42, "-updated")));
    std::printf("session 1: %llu queries served, page 42 updated\n",
                (unsigned long long)(*engine)->stats().queries);

    // Snapshot the secure state, sealed under the owner's passphrase.
    auto state = (*engine)->SerializeState();
    SHPIR_CHECK(state.ok());
    auto cipher = crypto::BlobCipher::FromPassphrase(passphrase);
    SHPIR_CHECK(cipher.ok());
    auto sealed = cipher->Seal(*state, (*cpu)->rng());
    SHPIR_CHECK(sealed.ok());
    sealed_state = *sealed;
    std::printf("session 1: snapshot sealed (%zu bytes)\n\n",
                sealed_state.size());
  }

  // ---- Session 2: reopen, restore, continue --------------------------
  {
    auto disk = storage::FileDisk::Open(disk_path, *slots, kSealedSize);
    SHPIR_CHECK(disk.ok());
    auto cpu = hardware::SecureCoprocessor::Create(
        hardware::HardwareProfile::Ibm4764(), disk->get(), kPageSize,
        kDeviceSeed);
    SHPIR_CHECK(cpu.ok());
    auto engine = core::CApproxPir::Create(cpu->get(), options);
    SHPIR_CHECK(engine.ok());

    auto cipher = crypto::BlobCipher::FromPassphrase(passphrase);
    SHPIR_CHECK(cipher.ok());
    auto state = cipher->Open(sealed_state);
    SHPIR_CHECK(state.ok());
    SHPIR_CHECK_OK((*engine)->RestoreState(*state));

    std::printf("session 2: restored at query #%llu\n",
                (unsigned long long)(*engine)->stats().queries);
    auto updated = (*engine)->Retrieve(42);
    SHPIR_CHECK(updated.ok());
    std::printf("session 2: page 42 reads back '%s'\n",
                std::string(updated->begin(),
                            std::find(updated->begin(), updated->end(),
                                      uint8_t{0}))
                    .c_str());
    crypto::SecureRandom rng(2);
    for (int i = 0; i < 100; ++i) {
      const uint64_t id = rng.UniformInt(500);
      auto data = (*engine)->Retrieve(id);
      SHPIR_CHECK(data.ok());
    }
    std::printf("session 2: 100 more private queries served — state, "
                "permutation and cache all survived the restart.\n");
  }
  std::remove(disk_path.c_str());
  return 0;
}
