// Quickstart: build a small private page store, query it, and inspect
// what the scheme costs and what the adversary sees.
//
//   ./quickstart

#include <cstdio>

#include "common/check.h"
#include "core/capprox_pir.h"
#include "crypto/secure_random.h"
#include "hardware/coprocessor.h"
#include "storage/access_trace.h"
#include "storage/disk.h"

int main() {
  using namespace shpir;

  // 1. Describe the deployment: 4096 pages of 1KB, a cache of 256
  //    pages, and a privacy target of c = 2 (no disk location may be
  //    more than twice as likely as any other to receive a page).
  core::CApproxPir::Options options;
  options.num_pages = 4096;
  options.page_size = 1024;
  options.cache_pages = 256;
  options.privacy_c = 2.0;

  // 2. Assemble the stack: an (in-memory) untrusted disk, an access
  //    trace playing the role of the adversary's notebook, and the
  //    simulated tamper-resistant coprocessor holding all keys.
  Result<uint64_t> slots = core::CApproxPir::DiskSlots(options);
  SHPIR_CHECK(slots.ok());
  const size_t sealed_size = 12 + 8 + options.page_size + 32;
  storage::MemoryDisk disk(*slots, sealed_size);
  storage::AccessTrace trace;
  storage::TracingDisk tracing_disk(&disk, &trace);
  auto cpu = hardware::SecureCoprocessor::Create(
      hardware::HardwareProfile::Ibm4764(), &tracing_disk,
      options.page_size);
  SHPIR_CHECK(cpu.ok());

  auto engine = core::CApproxPir::Create(cpu->get(), options, &trace);
  SHPIR_CHECK(engine.ok());

  // 3. Load the database: page i holds a recognizable payload.
  std::vector<storage::Page> pages;
  for (uint64_t id = 0; id < options.num_pages; ++id) {
    Bytes data(options.page_size, static_cast<uint8_t>(id % 251));
    pages.emplace_back(id, std::move(data));
  }
  SHPIR_CHECK_OK((*engine)->Initialize(pages));

  std::printf("database:        %llu pages x %zu B\n",
              (unsigned long long)options.num_pages, options.page_size);
  std::printf("block size k:    %llu (scan period T = %llu)\n",
              (unsigned long long)(*engine)->block_size(),
              (unsigned long long)(*engine)->scan_period());
  std::printf("achieved c:      %.4f (requested %.1f)\n\n",
              (*engine)->achieved_privacy(), options.privacy_c);

  // 4. Query privately. Every call costs the same 4 seeks + 2(k+1)
  //    page transfers, no matter which page is asked or whether it was
  //    cached.
  crypto::SecureRandom rng(7);
  const auto before = (*cpu)->cost().Snapshot();
  constexpr int kQueries = 1000;
  for (int i = 0; i < kQueries; ++i) {
    const uint64_t id = rng.UniformInt(options.num_pages);
    Result<Bytes> data = (*engine)->Retrieve(id);
    SHPIR_CHECK(data.ok());
    SHPIR_CHECK((*data)[0] == static_cast<uint8_t>(id % 251));
  }
  const auto delta = (*cpu)->cost().Snapshot() - before;
  const double seconds = hardware::CostAccountant::Seconds(
      delta, (*cpu)->profile());

  std::printf("%d queries, all payloads verified.\n", kQueries);
  std::printf("simulated time:  %.3f s total, %.3f ms/query (constant)\n",
              seconds, 1000.0 * seconds / kQueries);
  std::printf("cache hits:      %llu, block hits: %llu\n",
              (unsigned long long)(*engine)->stats().cache_hits,
              (unsigned long long)(*engine)->stats().block_hits);
  std::printf("adversary saw:   %zu disk accesses, all ciphertext\n",
              trace.events().size());
  return 0;
}
