// The paper's Figure 1, end to end: clients query the database server,
// which merely *relays* end-to-end encrypted records between them and
// the tamper-resistant coprocessor plugged into it. The relay executes
// every request yet observes only ciphertext and a fixed access shape.
//
//   ./three_party_service

#include <cstdio>

#include "common/check.h"
#include "core/capprox_pir.h"
#include "crypto/secure_random.h"
#include "hardware/coprocessor.h"
#include "net/pir_service.h"
#include "net/secure_channel.h"
#include "storage/access_trace.h"
#include "storage/disk.h"

int main() {
  using namespace shpir;

  constexpr size_t kPageSize = 128;
  core::CApproxPir::Options options;
  options.num_pages = 1000;
  options.page_size = kPageSize;
  options.cache_pages = 64;
  options.privacy_c = 2.0;
  options.insert_reserve = 16;

  // --- Server site: untrusted host + trusted coprocessor -------------
  auto slots = core::CApproxPir::DiskSlots(options);
  SHPIR_CHECK(slots.ok());
  storage::MemoryDisk disk(*slots, 12 + 8 + kPageSize + 32);
  storage::AccessTrace trace;  // What the untrusted host can see.
  storage::TracingDisk tracing_disk(&disk, &trace);
  auto cpu = hardware::SecureCoprocessor::Create(
      hardware::HardwareProfile::Ibm4764(), &tracing_disk, kPageSize);
  SHPIR_CHECK(cpu.ok());
  auto engine = core::CApproxPir::Create(cpu->get(), options, &trace);
  SHPIR_CHECK(engine.ok());
  std::vector<storage::Page> pages;
  for (uint64_t id = 0; id < options.num_pages; ++id) {
    pages.emplace_back(id, Bytes(kPageSize, static_cast<uint8_t>(id % 251)));
  }
  SHPIR_CHECK_OK((*engine)->Initialize(pages));

  // --- Handshake: client and coprocessor share a key; the nonces are
  //     exchanged through the relay in the clear (they are public).
  const Bytes psk(32, 0x5A);
  crypto::SecureRandom nonce_rng;
  Bytes client_nonce(net::SecureSession::kNonceSize);
  Bytes server_nonce(net::SecureSession::kNonceSize);
  nonce_rng.Fill(client_nonce);
  nonce_rng.Fill(server_nonce);
  auto client_session = net::SecureSession::Establish(
      psk, net::SecureSession::Role::kClient, client_nonce, server_nonce);
  auto server_session = net::SecureSession::Establish(
      psk, net::SecureSession::Role::kServer, client_nonce, server_nonce);
  SHPIR_CHECK(client_session.ok());
  SHPIR_CHECK(server_session.ok());

  net::PirServiceServer service(engine->get(),
                                std::move(server_session).value());

  // The untrusted relay: forwards records, tallying what it "learns".
  uint64_t relayed_bytes = 0;
  uint64_t relayed_records = 0;
  net::PirServiceClient client(
      std::move(client_session).value(),
      [&](ByteSpan record) -> Result<Bytes> {
        relayed_bytes += record.size();
        ++relayed_records;
        Result<Bytes> response = service.HandleRecord(record);
        if (response.ok()) {
          relayed_bytes += response->size();
        }
        return response;
      });

  // --- Client: sensitive lookups --------------------------------------
  crypto::SecureRandom workload(17);
  constexpr int kQueries = 200;
  for (int i = 0; i < kQueries; ++i) {
    const uint64_t id = workload.UniformInt(options.num_pages);
    auto data = client.Retrieve(id);
    SHPIR_CHECK(data.ok());
    SHPIR_CHECK((*data)[0] == static_cast<uint8_t>(id % 251));
  }
  auto inserted = client.Insert(Bytes(kPageSize, 0xAB));
  SHPIR_CHECK(inserted.ok());
  SHPIR_CHECK_OK(client.Modify(*inserted, Bytes(kPageSize, 0xCD)));
  SHPIR_CHECK_OK(client.Remove(*inserted));

  std::printf("three-party run complete: %d retrieves + 3 updates, all "
              "verified.\n\n",
              kQueries);
  std::printf("what the untrusted server saw:\n");
  std::printf("  %llu sealed records (%0.1f KB) relayed — ciphertext only\n",
              (unsigned long long)relayed_records,
              relayed_bytes / 1000.0);
  std::printf("  %zu disk accesses — every request: one round-robin block "
              "+ one page,\n  re-encrypted on write-back\n",
              trace.events().size());
  std::printf("\nsimulated coprocessor time: %.2f s (%0.1f ms/op, constant; "
              "k = %llu, c = %.3f)\n",
              (*cpu)->ElapsedSeconds(),
              1000.0 * (*cpu)->ElapsedSeconds() / (kQueries + 3),
              (unsigned long long)(*engine)->block_size(),
              (*engine)->achieved_privacy());
  return 0;
}
