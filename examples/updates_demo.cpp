// Database updates (paper §4.3): insertions, deletions and in-place
// modifications all look exactly like queries to the server — same
// 4 seeks, same k+1 pages read and rewritten.
//
//   ./updates_demo

#include <cstdio>
#include <string>

#include "common/check.h"
#include "core/capprox_pir.h"
#include "hardware/coprocessor.h"
#include "storage/disk.h"

namespace {

shpir::Bytes Payload(const std::string& text, size_t page_size) {
  shpir::Bytes data(text.begin(), text.end());
  data.resize(page_size, 0);
  return data;
}

std::string Text(const shpir::Bytes& data) {
  return std::string(data.begin(),
                     std::find(data.begin(), data.end(), uint8_t{0}));
}

}  // namespace

int main() {
  using namespace shpir;

  constexpr size_t kPageSize = 64;
  core::CApproxPir::Options options;
  options.num_pages = 100;
  options.page_size = kPageSize;
  options.cache_pages = 16;
  options.block_size = 8;
  options.insert_reserve = 50;  // Spare dummy pages for future inserts.

  auto slots = core::CApproxPir::DiskSlots(options);
  SHPIR_CHECK(slots.ok());
  storage::MemoryDisk disk(*slots, 12 + 8 + kPageSize + 32);
  auto cpu = hardware::SecureCoprocessor::Create(
      hardware::HardwareProfile::Ibm4764(), &disk, kPageSize);
  SHPIR_CHECK(cpu.ok());
  auto engine = core::CApproxPir::Create(cpu->get(), options);
  SHPIR_CHECK(engine.ok());

  std::vector<storage::Page> pages;
  for (uint64_t id = 0; id < options.num_pages; ++id) {
    pages.emplace_back(id, Payload("record-" + std::to_string(id),
                                   kPageSize));
  }
  SHPIR_CHECK_OK((*engine)->Initialize(pages));

  auto cost_of = [&](const char* label, auto&& op) {
    const auto before = (*cpu)->cost().Snapshot();
    op();
    const auto delta = (*cpu)->cost().Snapshot() - before;
    std::printf("%-28s %llu seeks, %6.1f KB moved\n", label,
                (unsigned long long)delta.seeks,
                static_cast<double>(delta.disk_bytes) / 1000.0);
  };

  std::printf("every operation has the identical on-disk footprint:\n\n");
  cost_of("Retrieve(7)",
          [&] { SHPIR_CHECK((*engine)->Retrieve(7).ok()); });
  cost_of("Modify(7, new contents)", [&] {
    SHPIR_CHECK_OK((*engine)->Modify(7, Payload("record-7-v2", kPageSize)));
  });
  cost_of("Retrieve(7) again",
          [&] { SHPIR_CHECK((*engine)->Retrieve(7).ok()); });
  cost_of("Remove(13)", [&] { SHPIR_CHECK_OK((*engine)->Remove(13)); });
  storage::PageId new_id = 0;
  cost_of("Insert(fresh record)", [&] {
    auto id = (*engine)->Insert(Payload("record-new", kPageSize));
    SHPIR_CHECK(id.ok());
    new_id = *id;
  });

  std::printf("\nafter the updates:\n");
  std::printf("  page 7:  '%s'\n", Text(*(*engine)->Retrieve(7)).c_str());
  std::printf("  page 13: %s\n",
              (*engine)->Retrieve(13).ok() ? "still there?!" : "deleted");
  std::printf("  page %llu: '%s' (the inserted record)\n",
              (unsigned long long)new_id,
              Text(*(*engine)->Retrieve(new_id)).c_str());
  return 0;
}
