#include "analysis/frequency_attack.h"

#include <algorithm>
#include <unordered_map>

namespace shpir::analysis {

FrequencyAttackReport RunFrequencyAttack(
    const std::vector<storage::Location>& observed,
    const std::vector<storage::PageId>& ground_truth,
    const std::vector<double>& popularity) {
  FrequencyAttackReport report;
  if (observed.size() != ground_truth.size()) {
    return report;
  }
  // Frequency histogram over observed locations.
  std::unordered_map<storage::Location, uint64_t> counts;
  for (storage::Location loc : observed) {
    counts[loc]++;
  }
  // Locations ranked by observed frequency (desc, ties by location for
  // determinism).
  std::vector<std::pair<uint64_t, storage::Location>> by_freq;
  by_freq.reserve(counts.size());
  for (const auto& [loc, count] : counts) {
    by_freq.emplace_back(count, loc);
  }
  std::sort(by_freq.begin(), by_freq.end(), [](const auto& a, const auto& b) {
    return a.first != b.first ? a.first > b.first : a.second < b.second;
  });
  // Pages ranked by prior popularity (desc).
  std::vector<std::pair<double, storage::PageId>> by_pop;
  by_pop.reserve(popularity.size());
  for (storage::PageId id = 0; id < popularity.size(); ++id) {
    by_pop.emplace_back(popularity[id], id);
  }
  std::sort(by_pop.begin(), by_pop.end(), [](const auto& a, const auto& b) {
    return a.first != b.first ? a.first > b.first : a.second < b.second;
  });
  // Rank alignment: i-th most-touched location <-> i-th most popular
  // page.
  std::unordered_map<storage::Location, storage::PageId> guess;
  for (size_t i = 0; i < by_freq.size() && i < by_pop.size(); ++i) {
    guess[by_freq[i].second] = by_pop[i].second;
  }
  report.requests = observed.size();
  for (size_t i = 0; i < observed.size(); ++i) {
    auto it = guess.find(observed[i]);
    if (it != guess.end() && it->second == ground_truth[i]) {
      ++report.correct;
    }
  }
  return report;
}

}  // namespace shpir::analysis
