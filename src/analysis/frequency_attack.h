#ifndef SHPIR_ANALYSIS_FREQUENCY_ATTACK_H_
#define SHPIR_ANALYSIS_FREQUENCY_ATTACK_H_

#include <cstdint>
#include <vector>

#include "storage/page.h"

namespace shpir::analysis {

/// Outcome of a frequency-analysis attack.
struct FrequencyAttackReport {
  uint64_t requests = 0;
  uint64_t correct = 0;

  double accuracy() const {
    return requests == 0 ? 0.0
                         : static_cast<double>(correct) / requests;
  }
};

/// The paper's §1 argument against encryption-only defenses, made
/// executable: an adversary that knows the pages' relative popularities
/// ranks the observed (data-dependent) access locations by frequency,
/// aligns the two rankings, and names the page behind every request.
///
/// `observed[i]` is the data-dependent location touched by request i
/// (the only read for a static encrypted store; the extra read for the
/// c-approximate engine). `ground_truth[i]` is the page actually
/// requested. `popularity[id]` is the adversary's prior over pages.
/// Against a static layout the alignment is near-perfect for skewed
/// workloads; against the c-approximate engine pages keep moving, so
/// location frequencies decouple from page popularity.
FrequencyAttackReport RunFrequencyAttack(
    const std::vector<storage::Location>& observed,
    const std::vector<storage::PageId>& ground_truth,
    const std::vector<double>& popularity);

}  // namespace shpir::analysis

#endif  // SHPIR_ANALYSIS_FREQUENCY_ATTACK_H_
