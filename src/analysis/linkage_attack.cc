#include "analysis/linkage_attack.h"

#include <unordered_map>
#include <vector>

namespace shpir::analysis {

Result<LinkageAttackReport> RunLinkageAttack(
    core::CApproxPir& engine, storage::AccessTrace& trace,
    uint64_t num_requests,
    const std::function<storage::PageId()>& next_id) {
  // Ground truth: the eviction performed while serving each request.
  struct Eviction {
    storage::PageId page;
    storage::Location location;
  };
  std::unordered_map<uint64_t, Eviction> evictions;
  engine.set_relocation_observer(
      [&](storage::PageId page, storage::Location loc, uint64_t request) {
        evictions[request] = Eviction{page, loc};
      });

  // Adversary state: when was each location last written, and which
  // request wrote it. Built only from the public trace.
  std::unordered_map<storage::Location, uint64_t> last_write;

  LinkageAttackReport report;
  const uint64_t k = engine.block_size();
  size_t cursor = trace.events().size();

  for (uint64_t i = 0; i < num_requests; ++i) {
    const storage::PageId requested = next_id();
    SHPIR_RETURN_IF_ERROR(engine.Retrieve(requested).status());
    ++report.requests;

    // Parse this request's events from the trace: k block reads, one
    // extra read, then the writes.
    const auto& events = trace.events();
    uint64_t reads_seen = 0;
    storage::Location extra_read = 0;
    bool have_extra = false;
    std::vector<storage::Location> writes;
    for (; cursor < events.size(); ++cursor) {
      const storage::AccessEvent& event = events[cursor];
      if (event.op == storage::AccessEvent::Op::kRead) {
        ++reads_seen;
        if (reads_seen == k + 1) {
          extra_read = event.location;
          have_extra = true;
        }
      } else {
        writes.push_back(event.location);
      }
    }
    // Adversary guess, before updating its write log.
    if (have_extra) {
      auto it = last_write.find(extra_read);
      if (it != last_write.end()) {
        ++report.guesses;
        const uint64_t guessed_request = it->second;
        auto truth = evictions.find(guessed_request);
        if (truth != evictions.end() &&
            truth->second.location == extra_read &&
            truth->second.page == requested) {
          ++report.correct;
        }
      }
    }
    const uint64_t this_request = trace.num_requests() - 1;
    for (storage::Location loc : writes) {
      last_write[loc] = this_request;
    }
  }
  engine.set_relocation_observer(nullptr);
  return report;
}

}  // namespace shpir::analysis
