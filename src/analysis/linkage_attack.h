#ifndef SHPIR_ANALYSIS_LINKAGE_ATTACK_H_
#define SHPIR_ANALYSIS_LINKAGE_ATTACK_H_

#include <cstdint>
#include <functional>

#include "common/result.h"
#include "core/capprox_pir.h"
#include "storage/access_trace.h"

namespace shpir::analysis {

/// Result of the linkage attack experiment.
struct LinkageAttackReport {
  uint64_t requests = 0;
  /// Requests where the adversary ventured a guess (the extra read hit
  /// a location it had seen written before).
  uint64_t guesses = 0;
  /// Guesses that correctly identified the requested page as the one
  /// evicted by the guessed earlier request.
  uint64_t correct = 0;

  double coverage() const {
    return requests == 0 ? 0.0
                         : static_cast<double>(guesses) / requests;
  }
  double precision() const {
    return guesses == 0 ? 0.0 : static_cast<double>(correct) / guesses;
  }
};

/// Runs the strongest generic adversary the scheme's §3.2 threat model
/// admits: the server watches every disk access and tries to *link*
/// queries through relocated pages. Heuristic: each query reads one
/// extra (data-dependent) location L; if L was last rewritten while
/// serving request t', the adversary guesses that the current request
/// targets the page that was evicted from the cache at t'.
///
/// The run drives `engine` (which must have been created with `trace`
/// attached) for `num_requests` requests drawn from `next_id`, scores
/// the adversary against ground truth from the engine's relocation
/// observer, and reports coverage and precision. The analytic privacy
/// parameter c bounds how informative the relocation distribution can
/// be, so precision degrades toward the baseline as c approaches 1
/// (and the attack dissolves entirely at c = 1 / full-scan PIR).
Result<LinkageAttackReport> RunLinkageAttack(
    core::CApproxPir& engine, storage::AccessTrace& trace,
    uint64_t num_requests,
    const std::function<storage::PageId()>& next_id);

}  // namespace shpir::analysis

#endif  // SHPIR_ANALYSIS_LINKAGE_ATTACK_H_
