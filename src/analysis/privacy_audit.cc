#include "analysis/privacy_audit.h"

#include <unordered_map>

namespace shpir::analysis {

Result<PrivacyReport> RunPrivacyAudit(
    core::CApproxPir& engine, uint64_t num_requests,
    const std::function<storage::PageId()>& next_id) {
  RelocationAnalyzer analyzer(engine.scan_period(), engine.block_size());
  engine.set_cache_entry_observer(
      [&analyzer](storage::PageId id, uint64_t request) {
        analyzer.OnCacheEntry(id, request);
      });
  engine.set_relocation_observer(
      [&analyzer](storage::PageId id, storage::Location loc,
                  uint64_t request) {
        analyzer.OnRelocation(id, loc, request);
      });
  for (uint64_t i = 0; i < num_requests; ++i) {
    SHPIR_RETURN_IF_ERROR(engine.Retrieve(next_id()).status());
  }
  engine.set_cache_entry_observer(nullptr);
  engine.set_relocation_observer(nullptr);
  return BuildPrivacyReport(analyzer, num_requests, engine.cache_pages(),
                            engine.block_size(),
                            engine.achieved_privacy());
}

PrivacyReport BuildPrivacyReport(const RelocationAnalyzer& analyzer,
                                 uint64_t requests, uint64_t cache_pages,
                                 uint64_t block_size, double analytic_c) {
  PrivacyReport report;
  report.requests = requests;
  report.relocations = analyzer.samples();
  report.analytic_c = analytic_c;
  Result<double> measured = analyzer.MeasuredPrivacy();
  report.measured_c = measured.ok() ? *measured : 0.0;
  report.max_relative_deviation =
      analyzer.MaxRelativeDeviation(cache_pages);
  std::vector<uint64_t> slot_counts(block_size, 0);
  const std::vector<double> slot_dist = analyzer.MeasuredSlotDistribution();
  for (size_t i = 0; i < slot_dist.size(); ++i) {
    slot_counts[i] =
        static_cast<uint64_t>(slot_dist[i] * analyzer.samples() + 0.5);
  }
  report.slot_entropy = NormalizedEntropy(slot_counts);
  return report;
}

TraceStatistics AnalyzeTrace(const storage::AccessTrace& trace, uint64_t k,
                             uint64_t disk_slots) {
  TraceStatistics stats;
  std::vector<uint64_t> write_counts(disk_slots, 0);
  std::vector<uint64_t> extra_read_counts(disk_slots, 0);
  // Within each request, the first k reads are the round-robin block;
  // the remaining read is the extra page — the only data-dependent read.
  std::unordered_map<uint64_t, uint64_t> reads_in_request;
  for (const storage::AccessEvent& event : trace.events()) {
    if (event.op == storage::AccessEvent::Op::kRead) {
      ++stats.reads;
      const uint64_t seen = reads_in_request[event.request_index]++;
      if (seen >= k) {
        extra_read_counts[event.location]++;
      }
    } else {
      ++stats.writes;
      write_counts[event.location]++;
    }
  }
  stats.write_location_entropy = NormalizedEntropy(write_counts);
  stats.extra_read_entropy = NormalizedEntropy(extra_read_counts);
  return stats;
}

}  // namespace shpir::analysis
