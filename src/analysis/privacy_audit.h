#ifndef SHPIR_ANALYSIS_PRIVACY_AUDIT_H_
#define SHPIR_ANALYSIS_PRIVACY_AUDIT_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "analysis/relocation_analyzer.h"
#include "common/result.h"
#include "core/capprox_pir.h"
#include "storage/access_trace.h"

namespace shpir::analysis {

/// Summary of an empirical privacy run against a CApproxPir engine.
struct PrivacyReport {
  uint64_t requests = 0;
  uint64_t relocations = 0;
  /// Analytic privacy parameter (Eq. 5) for the engine's geometry.
  double analytic_c = 0.0;
  /// Measured max/min relocation-frequency ratio (converges to
  /// analytic_c); 0 when some offset was never observed.
  double measured_c = 0.0;
  /// Largest relative deviation of the measured block distribution from
  /// the analytic one.
  double max_relative_deviation = 0.0;
  /// Normalized entropy of the within-block slot choice (1.0 = uniform,
  /// the Fig. 3 line 18 guarantee).
  double slot_entropy = 0.0;
};

/// Drives `engine` with `num_requests` requests drawn by `next_id` while
/// recording relocations, then reports how closely the empirical
/// relocation distribution tracks the paper's analytic model. The
/// observers registered on the engine are replaced.
Result<PrivacyReport> RunPrivacyAudit(
    core::CApproxPir& engine, uint64_t num_requests,
    const std::function<storage::PageId()>& next_id);

/// Summarizes an already-fed analyzer into a PrivacyReport for an
/// engine with the given geometry. Shared by the single-engine audit
/// above and the sharded audit (analysis/sharded_audit.h), which feeds
/// one analyzer per shard.
PrivacyReport BuildPrivacyReport(const RelocationAnalyzer& analyzer,
                                 uint64_t requests, uint64_t cache_pages,
                                 uint64_t block_size, double analytic_c);

/// Adversary's-eye statistics over a disk access trace: what the server
/// actually observes.
struct TraceStatistics {
  uint64_t reads = 0;
  uint64_t writes = 0;
  /// Normalized entropy of the write-location histogram. Near 1.0 means
  /// writes are spread (almost) uniformly over the disk.
  double write_location_entropy = 0.0;
  /// Normalized entropy of the *non-round-robin* read locations (the
  /// extra page of each request). Near 1.0 means the extra reads do not
  /// concentrate anywhere.
  double extra_read_entropy = 0.0;
};

/// Computes adversary-view statistics for a trace produced by a
/// CApproxPir engine with block size `k` over `disk_slots` slots.
TraceStatistics AnalyzeTrace(const storage::AccessTrace& trace, uint64_t k,
                             uint64_t disk_slots);

}  // namespace shpir::analysis

#endif  // SHPIR_ANALYSIS_PRIVACY_AUDIT_H_
