#include "analysis/relocation_analyzer.h"

#include <algorithm>
#include <cmath>

#include "core/security_parameter.h"

namespace shpir::analysis {

RelocationAnalyzer::RelocationAnalyzer(uint64_t scan_period,
                                       uint64_t block_size)
    : scan_period_(scan_period),
      block_size_(block_size),
      offset_counts_(scan_period, 0),
      slot_counts_(block_size, 0) {}

void RelocationAnalyzer::OnCacheEntry(storage::PageId id,
                                      uint64_t request_index) {
  entry_request_[id] = request_index;
}

void RelocationAnalyzer::OnRelocation(storage::PageId id,
                                      storage::Location location,
                                      uint64_t request_index) {
  auto it = entry_request_.find(id);
  // shpir-lint-allow-next-line(secret-branch, secret-compare): offline adversary-model analysis; the relocation stream fed in here is exactly what the untrusted provider observes (Eq. 5), so nothing new is exposed
  if (it == entry_request_.end()) {
    // Page was placed during initialization, not via the cache; its
    // residency interval is unknown, so skip it.
    return;
  }
  const uint64_t delay = request_index - it->second;  // >= 1.
  entry_request_.erase(it);
  // shpir-lint-allow-next-line(secret-branch, secret-compare): same-request enter+evict filter on the provider-visible relocation stream
  if (delay == 0) {
    return;
  }
  // Offset within the scan: the block visited `delay` requests after
  // entry, folded onto [1, T].
  const uint64_t offset = (delay - 1) % scan_period_;  // b - 1.
  // shpir-lint-allow-next-line(secret-index): Eq. 5 residency histogram over the provider-visible stream; the histogram IS this analyzer's output
  offset_counts_[offset]++;
  // shpir-lint-allow-next-line(secret-index): slot-usage histogram over the same provider-visible stream
  slot_counts_[location % block_size_]++;
  ++samples_;
}

std::vector<double> RelocationAnalyzer::MeasuredBlockDistribution() const {
  std::vector<double> dist(scan_period_, 0.0);
  if (samples_ == 0) {
    return dist;
  }
  for (uint64_t i = 0; i < scan_period_; ++i) {
    dist[i] = static_cast<double>(offset_counts_[i]) /
              static_cast<double>(samples_);
  }
  return dist;
}

Result<double> RelocationAnalyzer::MeasuredPrivacy() const {
  uint64_t max_count = 0;
  uint64_t min_count = UINT64_MAX;
  for (uint64_t count : offset_counts_) {
    max_count = std::max(max_count, count);
    min_count = std::min(min_count, count);
  }
  if (min_count == 0) {
    return FailedPreconditionError(
        "not enough samples: some scan offsets never observed");
  }
  return static_cast<double>(max_count) / static_cast<double>(min_count);
}

std::vector<double> RelocationAnalyzer::MeasuredSlotDistribution() const {
  std::vector<double> dist(block_size_, 0.0);
  if (samples_ == 0) {
    return dist;
  }
  for (uint64_t i = 0; i < block_size_; ++i) {
    dist[i] =
        static_cast<double>(slot_counts_[i]) / static_cast<double>(samples_);
  }
  return dist;
}

double RelocationAnalyzer::MaxRelativeDeviation(uint64_t cache_pages) const {
  const std::vector<double> expected = core::SecurityParameter::
      BlockDistribution(cache_pages, block_size_, scan_period_);
  const std::vector<double> measured = MeasuredBlockDistribution();
  double worst = 0.0;
  for (uint64_t i = 0; i < scan_period_; ++i) {
    if (expected[i] <= 0) {
      continue;
    }
    worst = std::max(worst,
                     std::abs(measured[i] - expected[i]) / expected[i]);
  }
  return worst;
}

double ShannonEntropyBits(const std::vector<uint64_t>& counts) {
  uint64_t total = 0;
  for (uint64_t c : counts) {
    total += c;
  }
  if (total == 0) {
    return 0.0;
  }
  double entropy = 0.0;
  for (uint64_t c : counts) {
    if (c == 0) {
      continue;
    }
    const double p = static_cast<double>(c) / static_cast<double>(total);
    entropy -= p * std::log2(p);
  }
  return entropy;
}

double NormalizedEntropy(const std::vector<uint64_t>& counts) {
  if (counts.size() <= 1) {
    return 1.0;
  }
  return ShannonEntropyBits(counts) /
         std::log2(static_cast<double>(counts.size()));
}

}  // namespace shpir::analysis
