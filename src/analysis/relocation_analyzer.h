#ifndef SHPIR_ANALYSIS_RELOCATION_ANALYZER_H_
#define SHPIR_ANALYSIS_RELOCATION_ANALYZER_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "storage/page.h"

namespace shpir::analysis {

/// Measures the empirical page-relocation distribution of a running
/// c-approximate PIR engine and compares it against the analytic model
/// (paper §4.2). Attach via the engine's cache-entry and relocation
/// observers; the analyzer bins every eviction by how many requests the
/// page spent in the cache, mapped onto its offset within the
/// round-robin scan (b in [1, T]) — the quantity Eqs. 2-4 model.
class RelocationAnalyzer {
 public:
  /// `scan_period` is the engine's T = disk_slots / k; `block_size` its
  /// k (used for the within-block uniformity histogram).
  RelocationAnalyzer(uint64_t scan_period, uint64_t block_size);

  /// Observer hooks (wire to CApproxPir::set_cache_entry_observer /
  /// set_relocation_observer).
  void OnCacheEntry(storage::PageId id, uint64_t request_index);
  void OnRelocation(storage::PageId id, storage::Location location,
                    uint64_t request_index);

  /// Number of relocations recorded.
  uint64_t samples() const { return samples_; }

  /// Empirical distribution over scan offsets b in [1, T]: element b-1
  /// is the fraction of relocations that landed in the block visited b
  /// requests after the page entered the cache. Sums to 1.
  std::vector<double> MeasuredBlockDistribution() const;

  /// Empirical privacy parameter: the ratio of the largest to the
  /// smallest per-offset relocation frequency. With enough samples this
  /// converges to the analytic c of Eq. 5. Requires every offset bin to
  /// be non-empty (error otherwise: not enough samples).
  Result<double> MeasuredPrivacy() const;

  /// Empirical distribution over the k slot offsets within the target
  /// block (Fig. 3 line 18 uniformizes this; should be flat).
  std::vector<double> MeasuredSlotDistribution() const;

  /// Largest relative deviation between the measured block distribution
  /// and the analytic BlockDistribution for cache size `m`.
  double MaxRelativeDeviation(uint64_t cache_pages) const;

 private:
  uint64_t scan_period_;
  uint64_t block_size_;
  std::unordered_map<storage::PageId, uint64_t> entry_request_;
  std::vector<uint64_t> offset_counts_;  // T bins.
  std::vector<uint64_t> slot_counts_;    // k bins.
  uint64_t samples_ = 0;
};

/// Shannon entropy (bits) of a discrete distribution given as counts.
double ShannonEntropyBits(const std::vector<uint64_t>& counts);

/// Entropy normalized by log2(#bins); 1.0 = uniform.
double NormalizedEntropy(const std::vector<uint64_t>& counts);

}  // namespace shpir::analysis

#endif  // SHPIR_ANALYSIS_RELOCATION_ANALYZER_H_
