#include "analysis/sharded_audit.h"

#include <algorithm>
#include <memory>
#include <unordered_map>
#include <utility>

#include "analysis/relocation_analyzer.h"

namespace shpir::analysis {

namespace {

/// Per-logical-request driver with backpressure: a serially driven
/// audit can outrun a starved shard queue (admission control then
/// rejects the fan-out); draining and retrying once keeps the audit
/// lossless without disabling the bounded queues it exercises.
Status Drive(shard::ShardedPirEngine& engine, uint64_t num_logical_requests,
             const std::function<storage::PageId()>& next_id) {
  for (uint64_t i = 0; i < num_logical_requests; ++i) {
    const storage::PageId id = next_id();
    Result<Bytes> result = engine.Retrieve(id);
    // shpir-lint-allow-next-line(secret-branch, secret-compare): backpressure retry keyed on the status code — public control-plane metadata, not record content
    if (result.status().code() == StatusCode::kResourceExhausted) {
      engine.WaitIdle();
      result = engine.Retrieve(id);
    }
    SHPIR_RETURN_IF_ERROR(result.status());
  }
  return OkStatus();
}

/// What the target shard served in the observation window, in shard
/// request order (the same order the shard's trace stamps).
struct ShardObservation {
  uint64_t first_request = 0;  // Trace request index of window start.
  std::vector<storage::PageId> served;  // Local id per request.
  std::vector<uint8_t> dummy;           // 1 = cover query.
};

/// Drives `num_logical_requests` retrieves while recording the target
/// shard's ground truth via the shard-query observer.
Status DriveAndObserve(shard::ShardedPirEngine& engine,
                       uint64_t target_shard,
                       uint64_t num_logical_requests,
                       const std::function<storage::PageId()>& next_id,
                       ShardObservation* observation) {
  storage::AccessTrace* trace = engine.shard_trace(target_shard);
  if (trace == nullptr) {
    return FailedPreconditionError(
        "sharded engine was created without enable_traces");
  }
  observation->first_request = trace->num_requests();
  // Only the target shard's worker thread reaches the push_backs.
  engine.set_shard_query_observer(
      [observation, target_shard](uint64_t shard, uint64_t /*index*/,
                                  storage::PageId local, bool dummy) {
        if (shard != target_shard) {
          return;
        }
        observation->served.push_back(local);
        observation->dummy.push_back(dummy ? 1 : 0);
      });
  Status driven = Drive(engine, num_logical_requests, next_id);
  engine.WaitIdle();
  engine.set_shard_query_observer(nullptr);
  return driven;
}

/// The adversary's parse of one shard request: k round-robin block
/// reads, one extra (data-dependent) read, then the write-backs.
struct ParsedRequest {
  bool have_extra = false;
  storage::Location extra = 0;
  std::vector<storage::Location> writes;
};

/// Groups the shard's trace events from `first_request` onward by
/// request. Pure adversary view: only opcodes and locations are used.
std::vector<ParsedRequest> ParseRequests(const storage::AccessTrace& trace,
                                         uint64_t k,
                                         uint64_t first_request) {
  std::vector<ParsedRequest> requests;
  std::vector<uint64_t> reads_seen;
  for (const storage::AccessEvent& event : trace.events()) {
    if (event.request_index == storage::AccessEvent::kSetupIndex ||
        event.request_index < first_request) {
      continue;
    }
    const uint64_t r = event.request_index - first_request;
    if (r >= requests.size()) {
      requests.resize(r + 1);
      reads_seen.resize(r + 1, 0);
    }
    if (event.op == storage::AccessEvent::Op::kRead) {
      if (++reads_seen[r] == k + 1) {
        requests[r].have_extra = true;
        requests[r].extra = event.location;
      }
    } else {
      requests[r].writes.push_back(event.location);
    }
  }
  return requests;
}

}  // namespace

Result<ShardedPrivacyReport> RunShardedPrivacyAudit(
    shard::ShardedPirEngine& engine, uint64_t num_logical_requests,
    const std::function<storage::PageId()>& next_id) {
  const uint64_t shards = engine.shards();
  std::vector<std::unique_ptr<RelocationAnalyzer>> analyzers;
  analyzers.reserve(shards);
  for (uint64_t s = 0; s < shards; ++s) {
    core::CApproxPir* shard_engine = engine.shard_engine(s);
    analyzers.push_back(std::make_unique<RelocationAnalyzer>(
        shard_engine->scan_period(), shard_engine->block_size()));
    RelocationAnalyzer* analyzer = analyzers.back().get();
    // Each shard's observers fire only on that shard's worker thread,
    // so every analyzer has exactly one writer.
    shard_engine->set_cache_entry_observer(
        [analyzer](storage::PageId id, uint64_t request) {
          analyzer->OnCacheEntry(id, request);
        });
    shard_engine->set_relocation_observer(
        [analyzer](storage::PageId id, storage::Location loc,
                   uint64_t request) {
          analyzer->OnRelocation(id, loc, request);
        });
  }
  std::vector<uint64_t> real_queries(shards, 0);
  std::vector<uint64_t> dummy_queries(shards, 0);
  engine.set_shard_query_observer(
      [&real_queries, &dummy_queries](uint64_t shard, uint64_t /*index*/,
                                      storage::PageId /*local*/, bool dummy) {
        (dummy ? dummy_queries : real_queries)[shard]++;
      });

  Status driven = Drive(engine, num_logical_requests, next_id);
  engine.WaitIdle();
  engine.set_shard_query_observer(nullptr);
  for (uint64_t s = 0; s < shards; ++s) {
    engine.shard_engine(s)->set_cache_entry_observer(nullptr);
    engine.shard_engine(s)->set_relocation_observer(nullptr);
  }
  SHPIR_RETURN_IF_ERROR(driven);

  ShardedPrivacyReport report;
  report.logical_requests = num_logical_requests;
  report.shards = shards;
  report.target_c = engine.plan().target_c();
  report.min_slot_entropy = 1.0;
  report.min_shard_queries = UINT64_MAX;
  report.per_shard.reserve(shards);
  bool cover_uniform = true;
  uint64_t total_real = 0;
  for (uint64_t s = 0; s < shards; ++s) {
    core::CApproxPir* shard_engine = engine.shard_engine(s);
    PrivacyReport shard_report = BuildPrivacyReport(
        *analyzers[s], real_queries[s] + dummy_queries[s],
        shard_engine->cache_pages(), shard_engine->block_size(),
        shard_engine->achieved_privacy());
    report.worst_analytic_c =
        std::max(report.worst_analytic_c, shard_report.analytic_c);
    report.worst_measured_c =
        std::max(report.worst_measured_c, shard_report.measured_c);
    report.worst_max_relative_deviation =
        std::max(report.worst_max_relative_deviation,
                 shard_report.max_relative_deviation);
    report.min_slot_entropy =
        std::min(report.min_slot_entropy, shard_report.slot_entropy);
    const uint64_t total = real_queries[s] + dummy_queries[s];
    report.min_shard_queries = std::min(report.min_shard_queries, total);
    report.max_shard_queries = std::max(report.max_shard_queries, total);
    cover_uniform = cover_uniform && total == num_logical_requests;
    total_real += real_queries[s];
    report.per_shard.push_back(shard_report);
  }
  report.cover_uniform =
      cover_uniform && total_real == num_logical_requests;
  return report;
}

Result<LinkageAttackReport> RunShardedLinkageAttack(
    shard::ShardedPirEngine& engine, uint64_t target_shard,
    uint64_t num_logical_requests,
    const std::function<storage::PageId()>& next_id) {
  if (target_shard >= engine.shards()) {
    return InvalidArgumentError("no such shard");
  }
  // Ground truth: which page each request evicted, keyed by the shard's
  // trace request index (single writer: the shard's worker thread).
  struct Eviction {
    storage::PageId page;
    storage::Location location;
  };
  std::unordered_map<uint64_t, Eviction> evictions;
  core::CApproxPir* shard_engine = engine.shard_engine(target_shard);
  shard_engine->set_relocation_observer(
      [&evictions](storage::PageId page, storage::Location loc,
                   uint64_t request) {
        evictions[request] = Eviction{page, loc};
      });

  ShardObservation observation;
  Status driven = DriveAndObserve(engine, target_shard,
                                  num_logical_requests, next_id,
                                  &observation);
  shard_engine->set_relocation_observer(nullptr);
  SHPIR_RETURN_IF_ERROR(driven);

  const std::vector<ParsedRequest> parsed =
      ParseRequests(*engine.shard_trace(target_shard),
                    shard_engine->block_size(), observation.first_request);

  // Same heuristic as RunLinkageAttack, replayed offline: link the
  // extra read to the request that last rewrote its location and guess
  // that request's evicted page. Real and dummy requests are
  // indistinguishable in the trace, so both are scored — against the
  // local page the shard actually served.
  std::unordered_map<storage::Location, uint64_t> last_write;
  LinkageAttackReport report;
  for (size_t r = 0; r < parsed.size() && r < observation.served.size();
       ++r) {
    ++report.requests;
    if (parsed[r].have_extra) {
      auto it = last_write.find(parsed[r].extra);
      if (it != last_write.end()) {
        ++report.guesses;
        auto truth = evictions.find(it->second);
        if (truth != evictions.end() &&
            truth->second.location == parsed[r].extra &&
            truth->second.page == observation.served[r]) {
          ++report.correct;
        }
      }
    }
    const uint64_t this_request = observation.first_request + r;
    for (storage::Location loc : parsed[r].writes) {
      last_write[loc] = this_request;
    }
  }
  return report;
}

Result<FrequencyAttackReport> RunShardedFrequencyAttack(
    shard::ShardedPirEngine& engine, uint64_t target_shard,
    uint64_t num_logical_requests,
    const std::function<storage::PageId()>& next_id,
    const std::vector<double>& local_popularity) {
  if (target_shard >= engine.shards()) {
    return InvalidArgumentError("no such shard");
  }
  ShardObservation observation;
  SHPIR_RETURN_IF_ERROR(DriveAndObserve(engine, target_shard,
                                        num_logical_requests, next_id,
                                        &observation));
  const std::vector<ParsedRequest> parsed = ParseRequests(
      *engine.shard_trace(target_shard),
      engine.shard_engine(target_shard)->block_size(),
      observation.first_request);
  std::vector<storage::Location> observed;
  std::vector<storage::PageId> ground_truth;
  for (size_t r = 0; r < parsed.size() && r < observation.served.size();
       ++r) {
    if (!parsed[r].have_extra) {
      continue;
    }
    observed.push_back(parsed[r].extra);
    ground_truth.push_back(observation.served[r]);
  }
  return RunFrequencyAttack(observed, ground_truth, local_popularity);
}

}  // namespace shpir::analysis
