#ifndef SHPIR_ANALYSIS_SHARDED_AUDIT_H_
#define SHPIR_ANALYSIS_SHARDED_AUDIT_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "analysis/frequency_attack.h"
#include "analysis/linkage_attack.h"
#include "analysis/privacy_audit.h"
#include "common/result.h"
#include "shard/sharded_engine.h"
#include "storage/page.h"

namespace shpir::analysis {

/// Empirical privacy summary of the sharded serving runtime: the
/// single-engine audit run against every shard at once, plus the
/// cover-traffic invariants that make the shard choice itself leak
/// nothing.
struct ShardedPrivacyReport {
  uint64_t logical_requests = 0;
  uint64_t shards = 0;
  double target_c = 0.0;
  /// Worst per-shard values — the deployment's effective bound is the
  /// worst shard's.
  double worst_analytic_c = 0.0;
  double worst_measured_c = 0.0;
  double worst_max_relative_deviation = 0.0;
  double min_slot_entropy = 0.0;
  /// Queries (real + dummy) seen by the least/most loaded shard. Cover
  /// traffic makes these equal.
  uint64_t min_shard_queries = 0;
  uint64_t max_shard_queries = 0;
  /// True iff every shard served exactly one query per logical request
  /// (one real on the owner + one dummy on each other shard) — the
  /// adversary-visible load is target-independent.
  bool cover_uniform = false;
  /// Per-shard audits, indexed by shard.
  std::vector<PrivacyReport> per_shard;
};

/// Drives the sharded engine with `num_logical_requests` logical
/// retrieves drawn by `next_id` (global page ids), recording each
/// shard's relocations and the real/dummy query mix, then audits every
/// shard against the analytic model exactly like RunPrivacyAudit does
/// for one engine. Replaces the engine's shard-query observer and the
/// per-shard engines' relocation/cache-entry observers.
Result<ShardedPrivacyReport> RunShardedPrivacyAudit(
    shard::ShardedPirEngine& engine, uint64_t num_logical_requests,
    const std::function<storage::PageId()>& next_id);

/// The linkage attack (analysis/linkage_attack.h) mounted on ONE shard
/// of the sharded runtime: the adversary watches that shard's disk
/// trace — where real queries and cover dummies are indistinguishable —
/// and tries to link each query's extra read to an earlier eviction.
/// Guesses are scored against the local page the shard actually served
/// (real or dummy; the adversary cannot tell and the per-shard c bound
/// covers both). The engine must have been created with
/// Options::enable_traces; the run appends to the shard's trace.
Result<LinkageAttackReport> RunShardedLinkageAttack(
    shard::ShardedPirEngine& engine, uint64_t target_shard,
    uint64_t num_logical_requests,
    const std::function<storage::PageId()>& next_id);

/// The frequency-analysis attack mounted on one shard: ranks the
/// shard's observed extra-read locations by frequency and aligns them
/// with `local_popularity` (the adversary's prior over the shard's
/// local pages), scoring against the local ids actually served. Cover
/// dummies are uniform, so they flatten the observed frequencies on
/// non-owner traffic. Requires Options::enable_traces.
Result<FrequencyAttackReport> RunShardedFrequencyAttack(
    shard::ShardedPirEngine& engine, uint64_t target_shard,
    uint64_t num_logical_requests,
    const std::function<storage::PageId()>& next_id,
    const std::vector<double>& local_popularity);

}  // namespace shpir::analysis

#endif  // SHPIR_ANALYSIS_SHARDED_AUDIT_H_
