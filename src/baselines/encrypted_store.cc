#include "baselines/encrypted_store.h"

#include <algorithm>

#include "crypto/permutation.h"

namespace shpir::baselines {

using storage::Page;
using storage::PageId;

Result<std::unique_ptr<StaticEncryptedStore>> StaticEncryptedStore::Create(
    hardware::SecureCoprocessor* cpu, const Options& options,
    storage::AccessTrace* trace) {
  if (cpu == nullptr) {
    return InvalidArgumentError("coprocessor is required");
  }
  if (options.num_pages < 1) {
    return InvalidArgumentError("num_pages must be >= 1");
  }
  if (cpu->page_size() != options.page_size) {
    return InvalidArgumentError("coprocessor page size mismatch");
  }
  if (cpu->disk()->num_slots() != options.num_pages) {
    return InvalidArgumentError("disk must have exactly num_pages slots");
  }
  return std::unique_ptr<StaticEncryptedStore>(
      new StaticEncryptedStore(cpu, options, trace));
}

Status StaticEncryptedStore::Initialize(const std::vector<Page>& pages) {
  if (initialized_) {
    return FailedPreconditionError("already initialized");
  }
  if (pages.size() > options_.num_pages) {
    return InvalidArgumentError("more pages than num_pages");
  }
  const uint64_t n = options_.num_pages;
  const std::vector<uint64_t> perm =
      crypto::RandomPermutation(n, cpu_->rng());
  const std::vector<uint64_t> inv = crypto::InvertPermutation(perm);
  positions_.assign(perm.begin(), perm.end());
  constexpr uint64_t kChunk = 1024;
  for (uint64_t start = 0; start < n; start += kChunk) {
    const uint64_t count = std::min(kChunk, n - start);
    std::vector<Bytes> sealed(count);
    for (uint64_t i = 0; i < count; ++i) {
      const PageId id = inv[start + i];
      Page page = id < pages.size()
                      ? Page(id, pages[id].data)
                      : Page(id, Bytes(options_.page_size, 0));
      if (page.data.size() > options_.page_size) {
        return InvalidArgumentError("page payload exceeds page size");
      }
      SHPIR_ASSIGN_OR_RETURN(sealed[i], cpu_->SealPage(page));
    }
    SHPIR_RETURN_IF_ERROR(cpu_->WriteRun(start, sealed));
  }
  initialized_ = true;
  return OkStatus();
}

Result<Bytes> StaticEncryptedStore::Retrieve(PageId id) {
  if (!initialized_) {
    return FailedPreconditionError("engine not initialized");
  }
  if (id >= options_.num_pages) {
    return NotFoundError("no such page: " + std::to_string(id));
  }
  if (trace_ != nullptr) {
    trace_->BeginRequest();
  }
  // shpir-lint-allow-next-line(secret-index): non-private baseline by design; the position-map lookup is exactly the access-pattern leak this baseline exists to contrast (paper §7 comparison point)
  SHPIR_ASSIGN_OR_RETURN(Bytes sealed, cpu_->ReadSlot(positions_[id]));
  SHPIR_ASSIGN_OR_RETURN(Page page, cpu_->OpenPage(sealed));
  return std::move(page.data);
}

}  // namespace shpir::baselines
