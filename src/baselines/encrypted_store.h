#ifndef SHPIR_BASELINES_ENCRYPTED_STORE_H_
#define SHPIR_BASELINES_ENCRYPTED_STORE_H_

#include <memory>
#include <vector>

#include "common/result.h"
#include "core/pir_engine.h"
#include "hardware/coprocessor.h"
#include "storage/access_trace.h"

namespace shpir::baselines {

/// The paper's §1 strawman: the database is encrypted (and even
/// permuted once), but queries read the target page's fixed location
/// directly. Content is hidden; the *access pattern* is not — a server
/// that knows page popularities identifies queries by frequency
/// analysis. This engine exists to make that leak measurable
/// (bench_attack) and to serve as the "encryption-only" cost floor:
/// one seek + one page per query.
class StaticEncryptedStore : public core::PirEngine {
 public:
  struct Options {
    uint64_t num_pages = 0;
    size_t page_size = 0;
  };

  /// The coprocessor's disk must have exactly num_pages slots.
  static Result<std::unique_ptr<StaticEncryptedStore>> Create(
      hardware::SecureCoprocessor* cpu, const Options& options,
      storage::AccessTrace* trace = nullptr);

  /// Seals pages to disk under a one-time in-device permutation.
  Status Initialize(const std::vector<storage::Page>& pages);

  Result<Bytes> Retrieve(storage::PageId id) override;
  uint64_t num_pages() const override { return options_.num_pages; }
  size_t page_size() const override { return options_.page_size; }
  const char* name() const override { return "encrypted-static"; }

  /// Ground truth for the frequency-analysis experiment.
  storage::Location LocationOf(storage::PageId id) const {
    return positions_[id];
  }

 private:
  StaticEncryptedStore(hardware::SecureCoprocessor* cpu,
                       const Options& options, storage::AccessTrace* trace)
      : cpu_(cpu), options_(options), trace_(trace) {}

  hardware::SecureCoprocessor* cpu_;
  Options options_;
  storage::AccessTrace* trace_;
  std::vector<storage::Location> positions_;
  bool initialized_ = false;
};

}  // namespace shpir::baselines

#endif  // SHPIR_BASELINES_ENCRYPTED_STORE_H_
