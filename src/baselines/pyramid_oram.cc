#include "baselines/pyramid_oram.h"

#include <algorithm>
#include <unordered_set>

#include "crypto/hmac.h"

namespace shpir::baselines {

using storage::Location;
using storage::Page;
using storage::PageId;

namespace {

int CeilLog2(uint64_t value) {
  int bits = 0;
  while ((1ull << bits) < value) {
    ++bits;
  }
  return bits;
}

}  // namespace

Result<uint64_t> PyramidOram::DiskSlots(const Options& options) {
  if (options.num_pages < 2) {
    return InvalidArgumentError("num_pages must be >= 2");
  }
  if (options.stash_pages < 1) {
    return InvalidArgumentError("stash_pages must be >= 1");
  }
  if (options.bucket_slots < 2) {
    return InvalidArgumentError("bucket_slots must be >= 2");
  }
  const int top = std::max(1, CeilLog2(options.stash_pages));
  const int bottom = std::max(top, CeilLog2(options.num_pages));
  uint64_t slots = 0;
  for (int i = top; i <= bottom; ++i) {
    slots += (1ull << i) * options.bucket_slots;
  }
  return slots;
}

Result<std::unique_ptr<PyramidOram>> PyramidOram::Create(
    hardware::SecureCoprocessor* cpu, const Options& options,
    storage::AccessTrace* trace) {
  if (cpu == nullptr) {
    return InvalidArgumentError("coprocessor is required");
  }
  SHPIR_ASSIGN_OR_RETURN(const uint64_t slots, DiskSlots(options));
  if (cpu->page_size() != options.page_size) {
    return InvalidArgumentError("coprocessor page size mismatch");
  }
  if (cpu->disk()->num_slots() != slots) {
    return InvalidArgumentError(
        "disk must have exactly " + std::to_string(slots) + " slots");
  }
  const int top = std::max(1, CeilLog2(options.stash_pages));
  const int bottom = std::max(top, CeilLog2(options.num_pages));
  std::vector<Level> levels;
  Location offset = 0;
  for (int i = top; i <= bottom; ++i) {
    Level level;
    level.buckets = 1ull << i;
    level.offset = offset;
    offset += level.buckets * options.bucket_slots;
    levels.push_back(std::move(level));
  }
  uint64_t reserved = 0;
  if (options.enforce_secure_memory) {
    // Stash plus one bucket's worth of staging.
    reserved =
        (options.stash_pages + options.bucket_slots) * options.page_size;
    SHPIR_RETURN_IF_ERROR(
        cpu->ReserveSecureMemory(reserved, "pyramid ORAM structures"));
  }
  return std::unique_ptr<PyramidOram>(new PyramidOram(
      cpu, options, trace, reserved, top, bottom, std::move(levels)));
}

PyramidOram::PyramidOram(hardware::SecureCoprocessor* cpu,
                         const Options& options, storage::AccessTrace* trace,
                         uint64_t reserved_bytes, int top_level,
                         int bottom_level, std::vector<Level> levels)
    : cpu_(cpu),
      options_(options),
      trace_(trace),
      reserved_bytes_(reserved_bytes),
      top_level_(top_level),
      bottom_level_(bottom_level),
      levels_(std::move(levels)) {}

PyramidOram::~PyramidOram() {
  if (reserved_bytes_ > 0) {
    cpu_->ReleaseSecureMemory(reserved_bytes_);
  }
}

Status PyramidOram::Initialize(const std::vector<Page>& pages) {
  if (initialized_) {
    return FailedPreconditionError("already initialized");
  }
  if (pages.size() > options_.num_pages) {
    return InvalidArgumentError("more pages than num_pages");
  }
  std::vector<Page> all(options_.num_pages);
  for (PageId id = 0; id < options_.num_pages; ++id) {
    if (id < pages.size()) {
      if (pages[id].data.size() > options_.page_size) {
        return InvalidArgumentError("page payload exceeds page size");
      }
      all[id] = Page(id, pages[id].data);
      all[id].data.resize(options_.page_size, 0);
    } else {
      all[id] = Page(id, Bytes(options_.page_size, 0));
    }
  }
  SHPIR_RETURN_IF_ERROR(BuildLevel(levels_.back(), std::move(all)));
  stash_.clear();
  initialized_ = true;
  return OkStatus();
}

uint64_t PyramidOram::BucketOf(const Level& level, PageId id) const {
  crypto::HmacSha256 prf(level.hash_key);
  uint8_t msg[8];
  StoreLE64(id, msg);
  const crypto::HmacSha256::Tag tag = prf.Compute(ByteSpan(msg, 8));
  return LoadLE64(tag.data()) % level.buckets;
}

Status PyramidOram::ReadBucket(const Level& level, uint64_t bucket,
                               PageId want, bool* found, Page* out) {
  std::vector<Bytes> sealed;
  SHPIR_RETURN_IF_ERROR(
      cpu_->ReadRun(level.offset + bucket * options_.bucket_slots,
                    options_.bucket_slots, sealed));
  for (const Bytes& blob : sealed) {
    SHPIR_ASSIGN_OR_RETURN(Page page, cpu_->OpenPage(blob));
    // shpir-lint-allow-next-line(secret-compare): in-device latch-on-match over the full bucket; every slot of the probed bucket is read regardless
    if (!page.is_dummy() && page.id == want && !*found) {
      *found = true;
      *out = std::move(page);
    }
  }
  return OkStatus();
}

Result<Bytes> PyramidOram::Retrieve(PageId id) {
  if (!initialized_) {
    return FailedPreconditionError("engine not initialized");
  }
  if (id >= options_.num_pages) {
    return NotFoundError("no such page: " + std::to_string(id));
  }
  if (trace_ != nullptr) {
    trace_->BeginRequest();
  }
  bool found = false;
  bool stash_hit = false;
  Page page;
  for (const Page& stashed : stash_) {
    // shpir-lint-allow-next-line(secret-compare, secret-loop-bound): in-device stash scan; the provider-visible probe sequence is one bucket per level regardless of where (or whether) this matches
    if (stashed.id == id) {
      page = stashed;
      found = true;
      stash_hit = true;
      break;
    }
  }
  // One bucket probe per non-empty level: the real bucket until found,
  // uniformly random afterwards.
  for (Level& level : levels_) {
    if (level.items == 0) {
      continue;
    }
    const uint64_t bucket = found
                                ? cpu_->rng().UniformInt(level.buckets)
                                : BucketOf(level, id);
    SHPIR_RETURN_IF_ERROR(ReadBucket(level, bucket, id, &found, &page));
  }
  if (!found) {
    return InternalError("page lost in ORAM hierarchy");
  }
  Bytes result = page.data;
  if (!stash_hit) {
    stash_.push_back(std::move(page));
  }
  if (stash_.size() >= options_.stash_pages) {
    SHPIR_RETURN_IF_ERROR(FlushStash());
  }
  return result;
}

Status PyramidOram::FlushStash() {
  // Find the smallest empty level; if none, rebuild the bottom.
  size_t target = levels_.size() - 1;
  bool full_rebuild = true;
  for (size_t i = 0; i < levels_.size(); ++i) {
    if (levels_[i].items == 0) {
      target = i;
      full_rebuild = false;
      break;
    }
  }
  // Merge newest-first: stash, then levels top-down. First occurrence
  // of an id wins (it is the freshest copy).
  std::vector<Page> merged = std::move(stash_);
  stash_.clear();
  const size_t merge_end = full_rebuild ? levels_.size() : target;
  for (size_t i = 0; i < merge_end; ++i) {
    if (levels_[i].items == 0) {
      continue;
    }
    SHPIR_ASSIGN_OR_RETURN(std::vector<Page> drained,
                           DrainLevel(levels_[i]));
    for (Page& p : drained) {
      merged.push_back(std::move(p));
    }
    levels_[i].items = 0;
  }
  std::unordered_set<PageId> seen;
  std::vector<Page> deduped;
  deduped.reserve(merged.size());
  for (Page& p : merged) {
    if (seen.insert(p.id).second) {
      deduped.push_back(std::move(p));
    }
  }
  ++rebuilds_;
  return BuildLevel(levels_[target], std::move(deduped));
}

Status PyramidOram::BuildLevel(Level& level, std::vector<Page> pages) {
  const uint64_t capacity = level.buckets;  // Claimed item capacity 2^i.
  if (pages.size() > capacity) {
    return InternalError("level overflow: " + std::to_string(pages.size()) +
                         " items into level of " + std::to_string(capacity));
  }
  const uint64_t slots_per_bucket = options_.bucket_slots;
  std::vector<std::vector<const Page*>> buckets;
  for (int attempt = 0; attempt < 64; ++attempt) {
    level.hash_key.resize(32);
    cpu_->rng().Fill(level.hash_key);
    buckets.assign(level.buckets, {});
    bool overflow = false;
    for (const Page& page : pages) {
      const uint64_t b = BucketOf(level, page.id);
      if (buckets[b].size() == slots_per_bucket) {
        overflow = true;
        break;
      }
      buckets[b].push_back(&page);
    }
    if (!overflow) {
      break;
    }
    buckets.clear();
  }
  if (buckets.empty()) {
    return InternalError("could not hash level without bucket overflow");
  }
  // Stream the whole level out sequentially, bucket by bucket, padding
  // with freshly sealed dummies.
  constexpr uint64_t kChunkBuckets = 256;
  const Page dummy(storage::kDummyPageId, Bytes(options_.page_size, 0));
  for (uint64_t first = 0; first < level.buckets; first += kChunkBuckets) {
    const uint64_t count = std::min(kChunkBuckets, level.buckets - first);
    std::vector<Bytes> sealed;
    sealed.reserve(count * slots_per_bucket);
    for (uint64_t b = first; b < first + count; ++b) {
      for (uint64_t s = 0; s < slots_per_bucket; ++s) {
        const Page& page =
            s < buckets[b].size() ? *buckets[b][s] : dummy;
        SHPIR_ASSIGN_OR_RETURN(Bytes blob, cpu_->SealPage(page));
        sealed.push_back(std::move(blob));
      }
    }
    SHPIR_RETURN_IF_ERROR(
        cpu_->WriteRun(level.offset + first * slots_per_bucket, sealed));
  }
  level.items = pages.size();
  return OkStatus();
}

Result<std::vector<Page>> PyramidOram::DrainLevel(const Level& level) {
  std::vector<Page> pages;
  const uint64_t total = level.buckets * options_.bucket_slots;
  constexpr uint64_t kChunk = 1024;
  for (uint64_t start = 0; start < total; start += kChunk) {
    const uint64_t count = std::min(kChunk, total - start);
    std::vector<Bytes> sealed;
    SHPIR_RETURN_IF_ERROR(
        cpu_->ReadRun(level.offset + start, count, sealed));
    for (const Bytes& blob : sealed) {
      SHPIR_ASSIGN_OR_RETURN(Page page, cpu_->OpenPage(blob));
      if (!page.is_dummy()) {
        pages.push_back(std::move(page));
      }
    }
  }
  return pages;
}

}  // namespace shpir::baselines
