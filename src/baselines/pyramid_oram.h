#ifndef SHPIR_BASELINES_PYRAMID_ORAM_H_
#define SHPIR_BASELINES_PYRAMID_ORAM_H_

#include <memory>
#include <vector>

#include "common/result.h"
#include "core/pir_engine.h"
#include "hardware/coprocessor.h"
#include "storage/access_trace.h"

namespace shpir::baselines {

/// Hierarchical (pyramid) ORAM in the style of Goldreich–Ostrovsky as
/// deployed by Williams/Sion-class secure-hardware PIR [14, 25, 26 in
/// the paper].
///
/// The disk is organized as levels i = i0..L, level i holding 2^i hash
/// buckets of a fixed number of sealed slots. A lookup reads one bucket
/// per non-empty level — the real bucket H_i(id) until the page is
/// found, uniformly random buckets afterwards — so the adversary sees a
/// fixed-shape probe. Retrieved pages collect in a small secure stash;
/// when the stash fills it is flushed into the smallest empty level,
/// merging and rehashing (with a fresh per-epoch key) every smaller
/// level. Rebuild cost is proportional to the level size, producing the
/// geometric latency-spike pattern (fast queries punctuated by
/// increasingly expensive reshuffles) that the paper's §2 quotes as
/// "hundreds of milliseconds to thousands of seconds".
///
/// Simplification vs. [25]: level rebuilds stream through the device
/// rather than using an O(sqrt(n))-memory oblivious merge; the transfer
/// and crypto volumes (what the cost model prices) match a linear-pass
/// rebuild and the access pattern stays data-independent.
class PyramidOram : public core::PirEngine {
 public:
  struct Options {
    uint64_t num_pages = 0;
    size_t page_size = 0;
    /// Secure stash capacity (pages between flushes). >= 1.
    uint64_t stash_pages = 4;
    /// Sealed slots per hash bucket. Must cover the balls-in-bins max
    /// load of 2^i items hashed into 2^i buckets (~ln n / ln ln n); 8 is
    /// ample up to ~10^6 pages together with the rehash-on-overflow loop.
    uint64_t bucket_slots = 8;
    bool enforce_secure_memory = true;
  };

  static Result<std::unique_ptr<PyramidOram>> Create(
      hardware::SecureCoprocessor* cpu, const Options& options,
      storage::AccessTrace* trace = nullptr);

  ~PyramidOram() override;

  /// Total disk slots required for `options`' level pyramid.
  static Result<uint64_t> DiskSlots(const Options& options);

  /// Builds the bottom level from `pages`.
  Status Initialize(const std::vector<storage::Page>& pages);

  Result<Bytes> Retrieve(storage::PageId id) override;
  uint64_t num_pages() const override { return options_.num_pages; }
  size_t page_size() const override { return options_.page_size; }
  const char* name() const override { return "pyramid-oram"; }

  /// Number of level rebuilds performed so far.
  uint64_t rebuilds() const { return rebuilds_; }
  /// Index of the bottom level.
  int bottom_level() const { return bottom_level_; }
  int top_level() const { return top_level_; }

 private:
  struct Level {
    uint64_t buckets = 0;       // 2^i.
    storage::Location offset = 0;  // First disk slot.
    uint64_t items = 0;         // Live pages currently stored.
    Bytes hash_key;             // Per-epoch PRF key (empty = never built).
  };

  PyramidOram(hardware::SecureCoprocessor* cpu, const Options& options,
              storage::AccessTrace* trace, uint64_t reserved_bytes,
              int top_level, int bottom_level, std::vector<Level> levels);

  /// Bucket index of `id` in `level` under its current epoch key.
  uint64_t BucketOf(const Level& level, storage::PageId id) const;

  /// Reads one bucket; appends any real pages found to `out` when
  /// `collect` is set (dummy probes pass collect=false).
  Status ReadBucket(const Level& level, uint64_t bucket,
                    storage::PageId want, bool* found, storage::Page* out);

  /// Flushes the stash: merges levels top..j into the smallest level j
  /// that can absorb them, rehashing with a fresh key.
  Status FlushStash();

  /// Writes `pages` into `level` under a fresh hash key; retries with
  /// new keys on bucket overflow.
  Status BuildLevel(Level& level, std::vector<storage::Page> pages);

  /// Reads back every real page stored in `level`.
  Result<std::vector<storage::Page>> DrainLevel(const Level& level);

  hardware::SecureCoprocessor* cpu_;
  Options options_;
  storage::AccessTrace* trace_;
  uint64_t reserved_bytes_;

  int top_level_;
  int bottom_level_;
  std::vector<Level> levels_;  // Index 0 is top_level_.
  std::vector<storage::Page> stash_;
  uint64_t rebuilds_ = 0;
  bool initialized_ = false;
};

}  // namespace shpir::baselines

#endif  // SHPIR_BASELINES_PYRAMID_ORAM_H_
