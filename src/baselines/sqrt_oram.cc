#include "baselines/sqrt_oram.h"

#include <algorithm>
#include <cmath>

#include "crypto/permutation.h"

namespace shpir::baselines {

using storage::Page;
using storage::PageId;

namespace {

uint64_t DefaultShelter(uint64_t n) {
  const uint64_t s = static_cast<uint64_t>(
      std::ceil(std::sqrt(static_cast<double>(n))));
  return std::max<uint64_t>(s, 2);
}

}  // namespace

Result<uint64_t> SqrtOram::DiskSlots(const Options& options) {
  if (options.num_pages < 2) {
    return InvalidArgumentError("num_pages must be >= 2");
  }
  const uint64_t shelter = options.shelter_slots != 0
                               ? options.shelter_slots
                               : DefaultShelter(options.num_pages);
  if (shelter >= options.num_pages) {
    return InvalidArgumentError("shelter must be smaller than the database");
  }
  return options.num_pages + shelter;
}

Result<std::unique_ptr<SqrtOram>> SqrtOram::Create(
    hardware::SecureCoprocessor* cpu, const Options& options,
    storage::AccessTrace* trace) {
  if (cpu == nullptr) {
    return InvalidArgumentError("coprocessor is required");
  }
  SHPIR_ASSIGN_OR_RETURN(const uint64_t slots, DiskSlots(options));
  const uint64_t shelter = slots - options.num_pages;
  if (cpu->page_size() != options.page_size) {
    return InvalidArgumentError("coprocessor page size mismatch");
  }
  if (cpu->disk()->num_slots() != slots) {
    return InvalidArgumentError(
        "disk must have exactly " + std::to_string(slots) + " slots");
  }
  uint64_t reserved = 0;
  if (options.enforce_secure_memory) {
    reserved = core::PageMap::StorageBytes(options.num_pages) +
               options.page_size;
    SHPIR_RETURN_IF_ERROR(
        cpu->ReserveSecureMemory(reserved, "sqrt ORAM structures"));
  }
  return std::unique_ptr<SqrtOram>(
      new SqrtOram(cpu, options, trace, shelter, reserved));
}

SqrtOram::~SqrtOram() {
  if (reserved_bytes_ > 0) {
    cpu_->ReleaseSecureMemory(reserved_bytes_);
  }
}

Status SqrtOram::Initialize(const std::vector<Page>& pages) {
  if (initialized_) {
    return FailedPreconditionError("already initialized");
  }
  if (pages.size() > options_.num_pages) {
    return InvalidArgumentError("more pages than num_pages");
  }
  const uint64_t n = options_.num_pages;
  const std::vector<uint64_t> perm =
      crypto::RandomPermutation(n, cpu_->rng());
  const std::vector<uint64_t> inv = crypto::InvertPermutation(perm);
  constexpr uint64_t kChunk = 1024;
  for (uint64_t start = 0; start < n; start += kChunk) {
    const uint64_t count = std::min(kChunk, n - start);
    std::vector<Bytes> sealed(count);
    for (uint64_t i = 0; i < count; ++i) {
      const PageId id = inv[start + i];
      Page page = id < pages.size()
                      ? Page(id, pages[id].data)
                      : Page(id, Bytes(options_.page_size, 0));
      if (page.data.size() > options_.page_size) {
        return InvalidArgumentError("page payload exceeds page size");
      }
      SHPIR_ASSIGN_OR_RETURN(sealed[i], cpu_->SealPage(page));
      page_map_.SetDiskLocation(id, start + i);
    }
    SHPIR_RETURN_IF_ERROR(cpu_->WriteRun(start, sealed));
  }
  // Fill the shelter with sealed dummies.
  std::vector<Bytes> shelter(shelter_slots_);
  const Page dummy(storage::kDummyPageId, Bytes(options_.page_size, 0));
  for (uint64_t i = 0; i < shelter_slots_; ++i) {
    SHPIR_ASSIGN_OR_RETURN(shelter[i], cpu_->SealPage(dummy));
  }
  SHPIR_RETURN_IF_ERROR(cpu_->WriteRun(n, shelter));
  touched_.assign(n, false);
  shelter_used_ = 0;
  initialized_ = true;
  return OkStatus();
}

storage::PageId SqrtOram::RandomUntouchedId() {
  while (true) {
    const PageId p = cpu_->rng().UniformInt(options_.num_pages);
    if (!touched_[p]) {
      return p;
    }
  }
}

Result<Bytes> SqrtOram::Retrieve(PageId id) {
  if (!initialized_) {
    return FailedPreconditionError("engine not initialized");
  }
  if (id >= options_.num_pages) {
    return NotFoundError("no such page: " + std::to_string(id));
  }
  if (trace_ != nullptr) {
    trace_->BeginRequest();
  }
  const uint64_t n = options_.num_pages;
  // 1. Scan the whole shelter (fixed access pattern). The newest copy
  //    wins (later shelter slots are fresher).
  std::vector<Bytes> shelter;
  SHPIR_RETURN_IF_ERROR(cpu_->ReadRun(n, shelter_slots_, shelter));
  bool sheltered = false;
  Page target;
  for (const Bytes& blob : shelter) {
    SHPIR_ASSIGN_OR_RETURN(Page page, cpu_->OpenPage(blob));
    // shpir-lint-allow-next-line(secret-compare): in-device shelter scan with latch-on-match; the full shelter is read every query
    if (!page.is_dummy() && page.id == id) {
      sheltered = true;
      target = std::move(page);
    }
  }
  // 2. One main-area read: the real position, or a random untouched
  //    cover position on a shelter hit.
  const PageId to_read = sheltered ? RandomUntouchedId() : id;
  SHPIR_ASSIGN_OR_RETURN(Bytes sealed,
                         cpu_->ReadSlot(page_map_.DiskLocation(to_read)));
  SHPIR_ASSIGN_OR_RETURN(Page main_page, cpu_->OpenPage(sealed));
  // shpir-lint-allow-next-line(secret-index): bookkeeping keyed by the position just read; that position is the scheme's sanctioned public access (uniform by the square-root argument)
  touched_[to_read] = true;
  if (!sheltered) {
    target = std::move(main_page);
  }
  // 3. Append the accessed page to the shelter.
  Bytes result = target.data;
  SHPIR_ASSIGN_OR_RETURN(Bytes resealed, cpu_->SealPage(target));
  SHPIR_RETURN_IF_ERROR(cpu_->WriteSlot(n + shelter_used_, resealed));
  ++shelter_used_;
  if (shelter_used_ >= shelter_slots_) {
    SHPIR_RETURN_IF_ERROR(Reshuffle());
  }
  return result;
}

Status SqrtOram::Reshuffle() {
  ++reshuffles_;
  const uint64_t n = options_.num_pages;
  // Stream everything through the device: main area, then shelter
  // (fresher copies overwrite).
  std::vector<Page> all(n);
  constexpr uint64_t kChunk = 1024;
  for (uint64_t start = 0; start < n; start += kChunk) {
    const uint64_t count = std::min(kChunk, n - start);
    std::vector<Bytes> sealed;
    SHPIR_RETURN_IF_ERROR(cpu_->ReadRun(start, count, sealed));
    for (const Bytes& blob : sealed) {
      SHPIR_ASSIGN_OR_RETURN(Page page, cpu_->OpenPage(blob));
      all[page.id] = std::move(page);
    }
  }
  std::vector<Bytes> shelter;
  SHPIR_RETURN_IF_ERROR(cpu_->ReadRun(n, shelter_slots_, shelter));
  for (const Bytes& blob : shelter) {
    SHPIR_ASSIGN_OR_RETURN(Page page, cpu_->OpenPage(blob));
    if (!page.is_dummy()) {
      all[page.id] = std::move(page);
    }
  }
  // Re-permute and write back.
  const std::vector<uint64_t> perm =
      crypto::RandomPermutation(n, cpu_->rng());
  const std::vector<uint64_t> inv = crypto::InvertPermutation(perm);
  for (uint64_t start = 0; start < n; start += kChunk) {
    const uint64_t count = std::min(kChunk, n - start);
    std::vector<Bytes> sealed(count);
    for (uint64_t i = 0; i < count; ++i) {
      const PageId id = inv[start + i];
      SHPIR_ASSIGN_OR_RETURN(sealed[i], cpu_->SealPage(all[id]));
      page_map_.SetDiskLocation(id, start + i);
    }
    SHPIR_RETURN_IF_ERROR(cpu_->WriteRun(start, sealed));
  }
  // Reset the shelter to dummies.
  std::vector<Bytes> empty(shelter_slots_);
  const Page dummy(storage::kDummyPageId, Bytes(options_.page_size, 0));
  for (uint64_t i = 0; i < shelter_slots_; ++i) {
    SHPIR_ASSIGN_OR_RETURN(empty[i], cpu_->SealPage(dummy));
  }
  SHPIR_RETURN_IF_ERROR(cpu_->WriteRun(n, empty));
  touched_.assign(n, false);
  shelter_used_ = 0;
  return OkStatus();
}

}  // namespace shpir::baselines
