#ifndef SHPIR_BASELINES_SQRT_ORAM_H_
#define SHPIR_BASELINES_SQRT_ORAM_H_

#include <memory>
#include <vector>

#include "common/result.h"
#include "core/page_map.h"
#include "core/pir_engine.h"
#include "hardware/coprocessor.h"
#include "storage/access_trace.h"

namespace shpir::baselines {

/// Goldreich–Ostrovsky square-root ORAM, the classic external-shelter
/// construction underlying the hierarchical schemes the paper cites.
///
/// The disk holds the n permuted pages plus a `shelter` of s (~sqrt(n))
/// slots. A query scans the whole shelter (fixed pattern), then reads
/// one main-area slot: the target's permuted position if it was not
/// sheltered, a random not-yet-touched position otherwise. The
/// retrieved (or shadowed) page is appended to the shelter. After s
/// queries the shelter is merged back and the main area re-permuted.
/// Per-query cost is O(sqrt(n)); the epoch-end reshuffle is O(n) —
/// amortized O(sqrt(n)) with the same worst-case spikes as the other
/// baselines, but a much fatter constant than Wang et al. because of
/// the shelter scan.
class SqrtOram : public core::PirEngine {
 public:
  struct Options {
    uint64_t num_pages = 0;
    size_t page_size = 0;
    /// Shelter capacity; 0 = ceil(sqrt(num_pages)).
    uint64_t shelter_slots = 0;
    bool enforce_secure_memory = true;
  };

  /// Disk slots required: num_pages + shelter.
  static Result<uint64_t> DiskSlots(const Options& options);

  static Result<std::unique_ptr<SqrtOram>> Create(
      hardware::SecureCoprocessor* cpu, const Options& options,
      storage::AccessTrace* trace = nullptr);

  ~SqrtOram() override;

  Status Initialize(const std::vector<storage::Page>& pages);

  Result<Bytes> Retrieve(storage::PageId id) override;
  uint64_t num_pages() const override { return options_.num_pages; }
  size_t page_size() const override { return options_.page_size; }
  const char* name() const override { return "sqrt-oram"; }

  uint64_t shelter_slots() const { return shelter_slots_; }
  uint64_t reshuffles() const { return reshuffles_; }

 private:
  SqrtOram(hardware::SecureCoprocessor* cpu, const Options& options,
           storage::AccessTrace* trace, uint64_t shelter_slots,
           uint64_t reserved_bytes)
      : cpu_(cpu),
        options_(options),
        trace_(trace),
        shelter_slots_(shelter_slots),
        reserved_bytes_(reserved_bytes),
        page_map_(options.num_pages) {}

  /// Merges the shelter into the main area under a fresh permutation.
  Status Reshuffle();

  storage::PageId RandomUntouchedId();

  hardware::SecureCoprocessor* cpu_;
  Options options_;
  storage::AccessTrace* trace_;
  uint64_t shelter_slots_;
  uint64_t reserved_bytes_;

  core::PageMap page_map_;           // Main-area positions.
  std::vector<bool> touched_;        // Main slots read this epoch (by id).
  uint64_t shelter_used_ = 0;        // Occupied shelter slots.
  uint64_t reshuffles_ = 0;
  bool initialized_ = false;
};

}  // namespace shpir::baselines

#endif  // SHPIR_BASELINES_SQRT_ORAM_H_
