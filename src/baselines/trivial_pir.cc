#include "baselines/trivial_pir.h"

#include <algorithm>

namespace shpir::baselines {

using storage::Page;
using storage::PageId;

Result<std::unique_ptr<TrivialPir>> TrivialPir::Create(
    hardware::SecureCoprocessor* cpu, const Options& options,
    storage::AccessTrace* trace) {
  if (cpu == nullptr) {
    return InvalidArgumentError("coprocessor is required");
  }
  if (options.num_pages < 1) {
    return InvalidArgumentError("num_pages must be >= 1");
  }
  if (cpu->page_size() != options.page_size) {
    return InvalidArgumentError("coprocessor page size mismatch");
  }
  if (cpu->disk()->num_slots() != options.num_pages) {
    return InvalidArgumentError("disk must have exactly num_pages slots");
  }
  return std::unique_ptr<TrivialPir>(new TrivialPir(cpu, options, trace));
}

Status TrivialPir::Initialize(const std::vector<Page>& pages) {
  if (initialized_) {
    return FailedPreconditionError("already initialized");
  }
  if (pages.size() > options_.num_pages) {
    return InvalidArgumentError("more pages than num_pages");
  }
  constexpr uint64_t kChunk = 1024;
  for (uint64_t start = 0; start < options_.num_pages; start += kChunk) {
    const uint64_t count = std::min(kChunk, options_.num_pages - start);
    std::vector<Bytes> sealed(count);
    for (uint64_t i = 0; i < count; ++i) {
      const PageId id = start + i;
      Page page = id < pages.size()
                      ? Page(id, pages[id].data)
                      : Page(id, Bytes(options_.page_size, 0));
      if (page.data.size() > options_.page_size) {
        return InvalidArgumentError("page payload exceeds page size");
      }
      SHPIR_ASSIGN_OR_RETURN(sealed[i], cpu_->SealPage(page));
    }
    SHPIR_RETURN_IF_ERROR(cpu_->WriteRun(start, sealed));
  }
  initialized_ = true;
  return OkStatus();
}

Result<Bytes> TrivialPir::Retrieve(PageId id) {
  if (!initialized_) {
    return FailedPreconditionError("engine not initialized");
  }
  if (id >= options_.num_pages) {
    return NotFoundError("no such page: " + std::to_string(id));
  }
  if (trace_ != nullptr) {
    trace_->BeginRequest();
  }
  // Full sequential scan: one seek plus every page through the crypto
  // engine. Only the requested payload is retained.
  Bytes result;
  constexpr uint64_t kChunk = 1024;
  for (uint64_t start = 0; start < options_.num_pages; start += kChunk) {
    const uint64_t count = std::min(kChunk, options_.num_pages - start);
    std::vector<Bytes> sealed;
    SHPIR_RETURN_IF_ERROR(cpu_->ReadRun(start, count, sealed));
    for (uint64_t i = 0; i < count; ++i) {
      SHPIR_ASSIGN_OR_RETURN(Page page, cpu_->OpenPage(sealed[i]));
      // shpir-lint-allow-next-line(secret-compare): latch-on-match inside the full linear scan; every page is read on every query, so the provider learns nothing
      if (page.id == id) {
        result = std::move(page.data);
      }
    }
  }
  return result;
}

}  // namespace shpir::baselines
