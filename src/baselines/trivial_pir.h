#ifndef SHPIR_BASELINES_TRIVIAL_PIR_H_
#define SHPIR_BASELINES_TRIVIAL_PIR_H_

#include <memory>

#include "common/result.h"
#include "core/pir_engine.h"
#include "hardware/coprocessor.h"
#include "storage/access_trace.h"

namespace shpir::baselines {

/// Trivial PIR: the secure hardware streams the whole database through
/// its crypto engine on every query and keeps only the requested page.
/// Perfect privacy (the access pattern is a constant full scan — this is
/// the paper's c = 1 endpoint), O(n) cost per query.
class TrivialPir : public core::PirEngine {
 public:
  struct Options {
    uint64_t num_pages = 0;
    size_t page_size = 0;
  };

  /// The coprocessor's disk must have exactly num_pages slots.
  static Result<std::unique_ptr<TrivialPir>> Create(
      hardware::SecureCoprocessor* cpu, const Options& options,
      storage::AccessTrace* trace = nullptr);

  /// Seals `pages[i]` into slot i (no permutation needed: every query
  /// touches every slot).
  Status Initialize(const std::vector<storage::Page>& pages);

  Result<Bytes> Retrieve(storage::PageId id) override;
  uint64_t num_pages() const override { return options_.num_pages; }
  size_t page_size() const override { return options_.page_size; }
  const char* name() const override { return "trivial"; }

 private:
  TrivialPir(hardware::SecureCoprocessor* cpu, const Options& options,
             storage::AccessTrace* trace)
      : cpu_(cpu), options_(options), trace_(trace) {}

  hardware::SecureCoprocessor* cpu_;
  Options options_;
  storage::AccessTrace* trace_;
  bool initialized_ = false;
};

}  // namespace shpir::baselines

#endif  // SHPIR_BASELINES_TRIVIAL_PIR_H_
