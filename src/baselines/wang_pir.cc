#include "baselines/wang_pir.h"

#include <algorithm>

#include "crypto/permutation.h"

namespace shpir::baselines {

using storage::Page;
using storage::PageId;

Result<std::unique_ptr<WangPir>> WangPir::Create(
    hardware::SecureCoprocessor* cpu, const Options& options,
    storage::AccessTrace* trace) {
  if (cpu == nullptr) {
    return InvalidArgumentError("coprocessor is required");
  }
  if (options.num_pages < 2) {
    return InvalidArgumentError("num_pages must be >= 2");
  }
  if (options.cache_pages < 1 || options.cache_pages >= options.num_pages) {
    return InvalidArgumentError("cache_pages must be in [1, num_pages)");
  }
  if (cpu->page_size() != options.page_size) {
    return InvalidArgumentError("coprocessor page size mismatch");
  }
  if (cpu->disk()->num_slots() != options.num_pages) {
    return InvalidArgumentError("disk must have exactly num_pages slots");
  }
  uint64_t reserved = 0;
  if (options.enforce_secure_memory) {
    reserved = core::PageMap::StorageBytes(options.num_pages) +
               options.cache_pages * options.page_size;
    SHPIR_RETURN_IF_ERROR(
        cpu->ReserveSecureMemory(reserved, "Wang PIR structures"));
  }
  return std::unique_ptr<WangPir>(
      new WangPir(cpu, options, trace, reserved));
}

WangPir::~WangPir() {
  if (reserved_bytes_ > 0) {
    cpu_->ReleaseSecureMemory(reserved_bytes_);
  }
}

Status WangPir::Initialize(const std::vector<Page>& pages) {
  if (initialized_) {
    return FailedPreconditionError("already initialized");
  }
  if (pages.size() > options_.num_pages) {
    return InvalidArgumentError("more pages than num_pages");
  }
  const std::vector<uint64_t> perm =
      crypto::RandomPermutation(options_.num_pages, cpu_->rng());
  const std::vector<uint64_t> inv = crypto::InvertPermutation(perm);
  constexpr uint64_t kChunk = 1024;
  for (uint64_t start = 0; start < options_.num_pages; start += kChunk) {
    const uint64_t count = std::min(kChunk, options_.num_pages - start);
    std::vector<Bytes> sealed(count);
    for (uint64_t i = 0; i < count; ++i) {
      const PageId id = inv[start + i];
      Page page = id < pages.size()
                      ? Page(id, pages[id].data)
                      : Page(id, Bytes(options_.page_size, 0));
      if (page.data.size() > options_.page_size) {
        return InvalidArgumentError("page payload exceeds page size");
      }
      SHPIR_ASSIGN_OR_RETURN(sealed[i], cpu_->SealPage(page));
      page_map_.SetDiskLocation(id, start + i);
    }
    SHPIR_RETURN_IF_ERROR(cpu_->WriteRun(start, sealed));
  }
  accessed_.assign(options_.num_pages, false);
  cache_.clear();
  initialized_ = true;
  return OkStatus();
}

storage::PageId WangPir::RandomUnaccessedId() {
  while (true) {
    const PageId p = cpu_->rng().UniformInt(options_.num_pages);
    if (!accessed_[p]) {
      return p;
    }
  }
}

Result<Bytes> WangPir::Retrieve(PageId id) {
  if (!initialized_) {
    return FailedPreconditionError("engine not initialized");
  }
  if (id >= options_.num_pages) {
    return NotFoundError("no such page: " + std::to_string(id));
  }
  if (trace_ != nullptr) {
    trace_->BeginRequest();
  }
  // Hit: read a random fresh slot as cover traffic. Miss: read the page.
  Bytes result;
  bool hit = false;
  for (const Page& cached : cache_) {
    // shpir-lint-allow-next-line(secret-compare, secret-loop-bound): in-device cache scan (Wang et al. baseline); the disk sees one read either way
    if (cached.id == id) {
      result = cached.data;
      hit = true;
      break;
    }
  }
  const PageId to_read = hit ? RandomUnaccessedId() : id;
  SHPIR_ASSIGN_OR_RETURN(Bytes sealed,
                         cpu_->ReadSlot(page_map_.DiskLocation(to_read)));
  SHPIR_ASSIGN_OR_RETURN(Page page, cpu_->OpenPage(sealed));
  if (!hit) {
    result = page.data;
  }
  // shpir-lint-allow-next-line(secret-index): bookkeeping keyed by the position just read, the scheme's sanctioned public access
  accessed_[to_read] = true;
  cache_.push_back(std::move(page));
  if (cache_.size() >= options_.cache_pages) {
    SHPIR_RETURN_IF_ERROR(Reshuffle());
  }
  return result;
}

Status WangPir::Reshuffle() {
  ++reshuffles_;
  const uint64_t n = options_.num_pages;
  // Device-mediated linear re-permutation: stream every page in, apply
  // fresh copies from the secure storage, stream every page out in a
  // new permuted order. The adversary sees two full sequential passes
  // regardless of contents. (Wang et al. use an oblivious merge with
  // O(m) device memory; the transfer and crypto volumes — what our cost
  // model prices — are the same two passes.)
  std::vector<Page> all(n);
  constexpr uint64_t kChunk = 1024;
  for (uint64_t start = 0; start < n; start += kChunk) {
    const uint64_t count = std::min(kChunk, n - start);
    std::vector<Bytes> sealed;
    SHPIR_RETURN_IF_ERROR(cpu_->ReadRun(start, count, sealed));
    for (uint64_t i = 0; i < count; ++i) {
      SHPIR_ASSIGN_OR_RETURN(Page page, cpu_->OpenPage(sealed[i]));
      all[page.id] = std::move(page);
    }
  }
  // Fresh copies shadow stale disk copies.
  for (Page& cached : cache_) {
    all[cached.id] = std::move(cached);
  }
  cache_.clear();
  const std::vector<uint64_t> perm =
      crypto::RandomPermutation(n, cpu_->rng());
  const std::vector<uint64_t> inv = crypto::InvertPermutation(perm);
  for (uint64_t start = 0; start < n; start += kChunk) {
    const uint64_t count = std::min(kChunk, n - start);
    std::vector<Bytes> sealed(count);
    for (uint64_t i = 0; i < count; ++i) {
      // Page placed at slot start+i is the one whose perm target is it.
      const PageId id = inv[start + i];
      SHPIR_ASSIGN_OR_RETURN(sealed[i], cpu_->SealPage(all[id]));
      page_map_.SetDiskLocation(id, start + i);
    }
    SHPIR_RETURN_IF_ERROR(cpu_->WriteRun(start, sealed));
  }
  accessed_.assign(n, false);
  return OkStatus();
}

}  // namespace shpir::baselines
