#ifndef SHPIR_BASELINES_WANG_PIR_H_
#define SHPIR_BASELINES_WANG_PIR_H_

#include <memory>
#include <vector>

#include "common/result.h"
#include "core/page_map.h"
#include "core/pir_engine.h"
#include "hardware/coprocessor.h"
#include "storage/access_trace.h"

namespace shpir::baselines {

/// Wang et al. (ESORICS 2006) secure-hardware PIR.
///
/// The device's secure storage accumulates one page per query: the
/// requested page on a miss, a uniformly random un-accessed page on a
/// hit (so every query reads exactly one fresh disk location — the
/// adversary sees a sequence of distinct, uniformly distributed slots).
/// When the storage fills after m queries the entire database is
/// re-permuted and re-encrypted and the storage is emptied. Per-query
/// cost is O(1) but the reshuffle costs O(n), giving the amortized
/// O(n/m) cost and the periodic latency spikes the paper contrasts
/// against.
class WangPir : public core::PirEngine {
 public:
  struct Options {
    uint64_t num_pages = 0;
    size_t page_size = 0;
    /// Secure storage capacity m (pages accumulated between reshuffles).
    uint64_t cache_pages = 0;
    /// Reserve the cache + pageMap against the device budget.
    bool enforce_secure_memory = true;
  };

  /// The coprocessor's disk must have exactly num_pages slots.
  static Result<std::unique_ptr<WangPir>> Create(
      hardware::SecureCoprocessor* cpu, const Options& options,
      storage::AccessTrace* trace = nullptr);

  ~WangPir() override;

  /// Seals pages to disk under a fresh in-device permutation.
  Status Initialize(const std::vector<storage::Page>& pages);

  Result<Bytes> Retrieve(storage::PageId id) override;
  uint64_t num_pages() const override { return options_.num_pages; }
  size_t page_size() const override { return options_.page_size; }
  const char* name() const override { return "wang06"; }

  /// Queries served since the last reshuffle.
  uint64_t queries_since_reshuffle() const { return cache_.size(); }
  /// Total reshuffles performed.
  uint64_t reshuffles() const { return reshuffles_; }

 private:
  WangPir(hardware::SecureCoprocessor* cpu, const Options& options,
          storage::AccessTrace* trace, uint64_t reserved_bytes)
      : cpu_(cpu),
        options_(options),
        trace_(trace),
        reserved_bytes_(reserved_bytes),
        page_map_(options.num_pages) {}

  /// Re-permutes the whole database (device-mediated linear pass),
  /// merging cached (fresh) copies over stale disk copies.
  Status Reshuffle();

  /// Draws a uniformly random id whose slot has not been accessed since
  /// the last reshuffle.
  storage::PageId RandomUnaccessedId();

  hardware::SecureCoprocessor* cpu_;
  Options options_;
  storage::AccessTrace* trace_;
  uint64_t reserved_bytes_;

  core::PageMap page_map_;
  std::vector<storage::Page> cache_;      // Pages accessed this epoch.
  std::vector<bool> accessed_;            // Ids accessed this epoch.
  uint64_t reshuffles_ = 0;
  bool initialized_ = false;
};

}  // namespace shpir::baselines

#endif  // SHPIR_BASELINES_WANG_PIR_H_
