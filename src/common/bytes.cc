#include "common/bytes.h"

#include <cctype>

namespace shpir {

namespace {

int HexValue(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}

}  // namespace

std::string HexEncode(ByteSpan data) {
  static constexpr char kDigits[] = "0123456789abcdef";
  std::string out;
  out.reserve(data.size() * 2);
  for (uint8_t b : data) {
    out.push_back(kDigits[b >> 4]);
    out.push_back(kDigits[b & 0x0F]);
  }
  return out;
}

Bytes HexDecode(const std::string& hex) {
  if (hex.size() % 2 != 0) {
    return {};
  }
  Bytes out;
  out.reserve(hex.size() / 2);
  for (size_t i = 0; i < hex.size(); i += 2) {
    const int hi = HexValue(hex[i]);
    const int lo = HexValue(hex[i + 1]);
    if (hi < 0 || lo < 0) {
      return {};
    }
    out.push_back(static_cast<uint8_t>((hi << 4) | lo));
  }
  return out;
}

uint32_t LoadLE32(const uint8_t* p) {
  return static_cast<uint32_t>(p[0]) | (static_cast<uint32_t>(p[1]) << 8) |
         (static_cast<uint32_t>(p[2]) << 16) |
         (static_cast<uint32_t>(p[3]) << 24);
}

uint64_t LoadLE64(const uint8_t* p) {
  return static_cast<uint64_t>(LoadLE32(p)) |
         (static_cast<uint64_t>(LoadLE32(p + 4)) << 32);
}

void StoreLE32(uint32_t v, uint8_t* p) {
  p[0] = static_cast<uint8_t>(v);
  p[1] = static_cast<uint8_t>(v >> 8);
  p[2] = static_cast<uint8_t>(v >> 16);
  p[3] = static_cast<uint8_t>(v >> 24);
}

void StoreLE64(uint64_t v, uint8_t* p) {
  StoreLE32(static_cast<uint32_t>(v), p);
  StoreLE32(static_cast<uint32_t>(v >> 32), p + 4);
}

uint32_t LoadBE32(const uint8_t* p) {
  return (static_cast<uint32_t>(p[0]) << 24) |
         (static_cast<uint32_t>(p[1]) << 16) |
         (static_cast<uint32_t>(p[2]) << 8) | static_cast<uint32_t>(p[3]);
}

uint64_t LoadBE64(const uint8_t* p) {
  return (static_cast<uint64_t>(LoadBE32(p)) << 32) |
         static_cast<uint64_t>(LoadBE32(p + 4));
}

void StoreBE32(uint32_t v, uint8_t* p) {
  p[0] = static_cast<uint8_t>(v >> 24);
  p[1] = static_cast<uint8_t>(v >> 16);
  p[2] = static_cast<uint8_t>(v >> 8);
  p[3] = static_cast<uint8_t>(v);
}

void StoreBE64(uint64_t v, uint8_t* p) {
  StoreBE32(static_cast<uint32_t>(v >> 32), p);
  StoreBE32(static_cast<uint32_t>(v), p + 4);
}

}  // namespace shpir
