#ifndef SHPIR_COMMON_BYTES_H_
#define SHPIR_COMMON_BYTES_H_

#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace shpir {

/// Owned byte buffer used throughout the library for page payloads,
/// ciphertexts, keys and digests.
using Bytes = std::vector<uint8_t>;

/// Non-owning views over byte ranges.
using ByteSpan = std::span<const uint8_t>;
using MutableByteSpan = std::span<uint8_t>;

/// Encodes `data` as lowercase hex.
std::string HexEncode(ByteSpan data);

/// Decodes a hex string (case-insensitive). Returns an empty vector on
/// malformed input of odd length or non-hex characters.
Bytes HexDecode(const std::string& hex);

/// Little-endian load/store helpers (the library's on-disk integer format).
uint32_t LoadLE32(const uint8_t* p);
uint64_t LoadLE64(const uint8_t* p);
void StoreLE32(uint32_t v, uint8_t* p);
void StoreLE64(uint64_t v, uint8_t* p);

/// Big-endian helpers, used by SHA-256 and AES-CTR counters.
uint32_t LoadBE32(const uint8_t* p);
uint64_t LoadBE64(const uint8_t* p);
void StoreBE32(uint32_t v, uint8_t* p);
void StoreBE64(uint64_t v, uint8_t* p);

}  // namespace shpir

#endif  // SHPIR_COMMON_BYTES_H_
