#ifndef SHPIR_COMMON_CHECK_H_
#define SHPIR_COMMON_CHECK_H_

#include <cstdlib>
#include <iostream>

/// SHPIR_CHECK aborts the process when `cond` is false. It guards internal
/// invariants (programming errors), not user input — user input errors are
/// reported through Status/Result.
#define SHPIR_CHECK(cond)                                               \
  do {                                                                  \
    if (!(cond)) {                                                      \
      std::cerr << "CHECK failed at " << __FILE__ << ":" << __LINE__    \
                << ": " #cond "\n";                                     \
      std::abort();                                                     \
    }                                                                   \
  } while (false)

#define SHPIR_CHECK_OK(status_expr)                                     \
  do {                                                                  \
    const ::shpir::Status shpir_check_status_ = (status_expr);          \
    if (!shpir_check_status_.ok()) {                                    \
      std::cerr << "CHECK_OK failed at " << __FILE__ << ":" << __LINE__ \
                << ": " << shpir_check_status_.ToString() << "\n";      \
      std::abort();                                                     \
    }                                                                   \
  } while (false)

#endif  // SHPIR_COMMON_CHECK_H_
