#ifndef SHPIR_COMMON_MUTEX_H_
#define SHPIR_COMMON_MUTEX_H_

#include <chrono>
#include <condition_variable>
#include <mutex>

#include "common/thread_annotations.h"

namespace shpir::common {

/// std::mutex carrying the Clang `capability` attribute, so members can
/// be GUARDED_BY it and -Wthread-safety can prove lock discipline at
/// compile time. Same cost and semantics as std::mutex; native() exposes
/// the underlying handle for condition-variable waits.
class CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() ACQUIRE() { mutex_.lock(); }
  void unlock() RELEASE() { mutex_.unlock(); }
  bool try_lock() TRY_ACQUIRE(true) { return mutex_.try_lock(); }

  /// The analysis treats the capability as held for the scope that
  /// acquired it; waits that unlock/relock through native() (CondVar)
  /// preserve that invariant at wakeup, which is what the analysis
  /// actually relies on.
  std::mutex& native() { return mutex_; }

 private:
  std::mutex mutex_;
};

/// RAII lock for Mutex (scoped capability). Supports the mid-scope
/// Unlock()/Lock() pattern worker loops use around job execution.
class SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mutex) ACQUIRE(mutex) : lock_(mutex.native()) {}
  ~MutexLock() RELEASE() = default;  // unique_lock releases if held.

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

  void Unlock() RELEASE() { lock_.unlock(); }
  void Lock() ACQUIRE() { lock_.lock(); }

  /// For CondVar::Wait only.
  std::unique_lock<std::mutex>& native() { return lock_; }

 private:
  std::unique_lock<std::mutex> lock_;
};

/// Condition variable usable with MutexLock. Waits must be wrapped in an
/// explicit `while (!condition) cv.Wait(lock);` loop in the waiting
/// function itself — not a predicate lambda — so the guarded reads in
/// the condition stay inside the scope the analysis knows holds the
/// lock.
class CondVar {
 public:
  void Wait(MutexLock& lock) { cv_.wait(lock.native()); }
  /// Timed wait (periodic background loops); wakes on notify, timeout
  /// or spuriously — re-check the condition either way.
  template <class Rep, class Period>
  void WaitFor(MutexLock& lock,
               const std::chrono::duration<Rep, Period>& timeout) {
    cv_.wait_for(lock.native(), timeout);
  }
  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace shpir::common

#endif  // SHPIR_COMMON_MUTEX_H_
