#ifndef SHPIR_COMMON_RESULT_H_
#define SHPIR_COMMON_RESULT_H_

#include <cstdlib>
#include <iostream>
#include <optional>
#include <utility>

#include "common/status.h"

namespace shpir {

/// Holds either a value of type T or an error Status. A Result
/// constructed from an OK status is a programming error and aborts.
template <typename T>
class Result {
 public:
  /// Implicit construction from a value (success).
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)

  /// Implicit construction from an error status.
  Result(Status status)  // NOLINT(runtime/explicit)
      : status_(std::move(status)) {
    if (status_.ok()) {
      std::cerr << "Result<T> constructed from OK status\n";
      std::abort();
    }
  }

  bool ok() const { return value_.has_value(); }

  const Status& status() const { return status_; }

  /// Accessors. Calling value() on an error Result aborts with the error.
  T& value() & {
    CheckOk();
    return *value_;
  }
  const T& value() const& {
    CheckOk();
    return *value_;
  }
  T&& value() && {
    CheckOk();
    return *std::move(value_);
  }

  T& operator*() & { return value(); }
  const T& operator*() const& { return value(); }
  T* operator->() { return &value(); }
  const T* operator->() const { return &value(); }

 private:
  void CheckOk() const {
    if (!value_.has_value()) {
      std::cerr << "Result<T>::value() on error: " << status_.ToString()
                << "\n";
      std::abort();
    }
  }

  std::optional<T> value_;
  Status status_;
};

}  // namespace shpir

/// Evaluates `rexpr` (a Result<T> expression); on error returns the status
/// from the current function, otherwise moves the value into `lhs`.
#define SHPIR_ASSIGN_OR_RETURN(lhs, rexpr)              \
  SHPIR_ASSIGN_OR_RETURN_IMPL_(                         \
      SHPIR_RESULT_CONCAT_(shpir_result_, __LINE__), lhs, rexpr)

#define SHPIR_ASSIGN_OR_RETURN_IMPL_(tmp, lhs, rexpr) \
  auto tmp = (rexpr);                                 \
  if (!tmp.ok()) {                                    \
    return tmp.status();                              \
  }                                                   \
  lhs = std::move(tmp).value()

#define SHPIR_RESULT_CONCAT_INNER_(a, b) a##b
#define SHPIR_RESULT_CONCAT_(a, b) SHPIR_RESULT_CONCAT_INNER_(a, b)

#endif  // SHPIR_COMMON_RESULT_H_
