#ifndef SHPIR_COMMON_SECRET_H_
#define SHPIR_COMMON_SECRET_H_

#include <utility>

/// Secret-flow annotation layer for the trust boundary (the simulated
/// secure coprocessor and everything that runs inside it). The paper's
/// privacy guarantee (Def. 1 / Eq. 6) bounds what the adversary learns
/// from the *disk access pattern*; code inside the boundary must not
/// re-leak the secrets — the requested page id, pageMap contents, cache
/// membership — through side channels the model does not price:
/// branches or array indexing into adversary-visible state, logging,
/// metrics, early-exit comparisons, or predictable randomness.
///
/// `SHPIR_SECRET` marks a declaration (parameter, member, local) as
/// holding secret state. Under Clang it emits a [[clang::annotate]]
/// attribute (visible to AST tooling); under every compiler it is the
/// marker `tools/shpir_lint` keys on: any banned pattern involving a
/// secret-marked identifier — or one tainted by assignment from it — is
/// a lint error unless it carries an audited shpir-lint-allow
/// comment naming the rule list and a justification.
/// docs/STATIC_ANALYSIS.md documents the rules and suppression policy.

#if defined(__clang__)
#define SHPIR_SECRET [[clang::annotate("shpir::secret")]]
#else
#define SHPIR_SECRET
#endif

namespace shpir::common {

/// Thin wrapper forcing secret values through a loud, greppable access
/// point. A Secret<T> cannot be compared, streamed, or implicitly
/// converted; the only way out is ExposeSecret(), and shpir_lint
/// propagates secret taint to whatever the exposed value is stored in.
/// Used for the in-flight query index on its way into the engine round.
template <typename T>
class Secret {
 public:
  constexpr explicit Secret(T value) : value_(std::move(value)) {}

  Secret(const Secret&) = default;
  Secret(Secret&&) = default;
  Secret& operator=(const Secret&) = default;
  Secret& operator=(Secret&&) = default;

  /// Deliberate declassification point inside the trust boundary. The
  /// receiving identifier inherits the secret taint in shpir_lint.
  constexpr const T& ExposeSecret() const { return value_; }
  constexpr T& ExposeSecret() { return value_; }

  /// A secret must never feed an early-exit comparison; use
  /// crypto::ConstantTimeEquals on the exposed bytes if equality inside
  /// the boundary is genuinely needed.
  friend bool operator==(const Secret&, const Secret&) = delete;
  friend bool operator!=(const Secret&, const Secret&) = delete;

 private:
  T value_;
};

}  // namespace shpir::common

#endif  // SHPIR_COMMON_SECRET_H_
