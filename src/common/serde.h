#ifndef SHPIR_COMMON_SERDE_H_
#define SHPIR_COMMON_SERDE_H_

#include <cstring>
#include <string>

#include "common/bytes.h"
#include "common/result.h"

namespace shpir {

/// Append-only little-endian byte writer for state serialization.
class ByteWriter {
 public:
  void WriteU8(uint8_t v) { out_.push_back(v); }

  void WriteU64(uint64_t v) {
    uint8_t buf[8];
    StoreLE64(v, buf);
    out_.insert(out_.end(), buf, buf + 8);
  }

  void WriteBytes(ByteSpan data) {
    WriteU64(data.size());
    out_.insert(out_.end(), data.begin(), data.end());
  }

  /// Raw append without a length prefix.
  void WriteRaw(ByteSpan data) {
    out_.insert(out_.end(), data.begin(), data.end());
  }

  Bytes Take() { return std::move(out_); }
  size_t size() const { return out_.size(); }

 private:
  Bytes out_;
};

/// Bounds-checked reader matching ByteWriter.
class ByteReader {
 public:
  explicit ByteReader(ByteSpan data) : data_(data) {}

  // All bounds checks compare against the remaining byte count instead
  // of computing pos_ + len, which could wrap for an adversarial length
  // read out of a corrupt blob and defeat the check.

  Result<uint8_t> ReadU8() {
    if (remaining() < 1) {
      return DataLossError("truncated state: u8");
    }
    return data_[pos_++];
  }

  Result<uint64_t> ReadU64() {
    if (remaining() < 8) {
      return DataLossError("truncated state: u64");
    }
    const uint64_t v = LoadLE64(data_.data() + pos_);
    pos_ += 8;
    return v;
  }

  Result<Bytes> ReadBytes() {
    SHPIR_ASSIGN_OR_RETURN(const uint64_t len, ReadU64());
    if (len > remaining()) {
      return DataLossError("truncated state: bytes");
    }
    Bytes out(data_.begin() + static_cast<ptrdiff_t>(pos_),
              data_.begin() + static_cast<ptrdiff_t>(pos_ + len));
    pos_ += len;
    return out;
  }

  /// Raw read of exactly `len` bytes.
  Result<Bytes> ReadRaw(size_t len) {
    if (len > remaining()) {
      return DataLossError("truncated state: raw");
    }
    Bytes out(data_.begin() + static_cast<ptrdiff_t>(pos_),
              data_.begin() + static_cast<ptrdiff_t>(pos_ + len));
    pos_ += len;
    return out;
  }

  bool AtEnd() const { return pos_ == data_.size(); }
  size_t remaining() const { return data_.size() - pos_; }

 private:
  ByteSpan data_;
  size_t pos_ = 0;
};

}  // namespace shpir

#endif  // SHPIR_COMMON_SERDE_H_
