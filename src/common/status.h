#ifndef SHPIR_COMMON_STATUS_H_
#define SHPIR_COMMON_STATUS_H_

#include <ostream>
#include <string>
#include <utility>

namespace shpir {

/// Canonical error codes used across the library. Modeled after the
/// absl/gRPC canonical space, restricted to the codes we actually need.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument = 1,
  kNotFound = 2,
  kOutOfRange = 3,
  kFailedPrecondition = 4,
  kResourceExhausted = 5,
  kInternal = 6,
  kDataLoss = 7,
  kUnimplemented = 8,
  kAlreadyExists = 9,
  kDeadlineExceeded = 10,
};

/// Returns the canonical name of `code` (e.g. "INVALID_ARGUMENT").
const char* StatusCodeToString(StatusCode code);

/// A lightweight success-or-error value. The library does not throw
/// exceptions across public API boundaries; fallible operations return
/// Status (or Result<T>, see result.h).
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  /// Constructs a status with the given code and human-readable message.
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Renders "OK" or "CODE: message" for logs and test failures.
  std::string ToString() const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_ && a.message_ == b.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

inline std::ostream& operator<<(std::ostream& os, const Status& s) {
  return os << s.ToString();
}

/// Convenience factories mirroring the canonical codes.
Status OkStatus();
Status InvalidArgumentError(std::string message);
Status NotFoundError(std::string message);
Status OutOfRangeError(std::string message);
Status FailedPreconditionError(std::string message);
Status ResourceExhaustedError(std::string message);
Status InternalError(std::string message);
Status DataLossError(std::string message);
Status UnimplementedError(std::string message);
Status AlreadyExistsError(std::string message);
Status DeadlineExceededError(std::string message);

}  // namespace shpir

/// Evaluates `expr` (a Status expression) and returns it from the current
/// function if it is not OK.
#define SHPIR_RETURN_IF_ERROR(expr)                  \
  do {                                               \
    ::shpir::Status shpir_status_macro_ = (expr);    \
    if (!shpir_status_macro_.ok()) {                 \
      return shpir_status_macro_;                    \
    }                                                \
  } while (false)

#endif  // SHPIR_COMMON_STATUS_H_
