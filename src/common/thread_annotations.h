#ifndef SHPIR_COMMON_THREAD_ANNOTATIONS_H_
#define SHPIR_COMMON_THREAD_ANNOTATIONS_H_

/// Clang thread-safety-analysis attribute macros (the -Wthread-safety
/// vocabulary). Under Clang these let the compiler prove, per
/// translation unit, that every access to a GUARDED_BY member happens
/// with its mutex held — turning the lock-misuse class of races (the
/// kind TSan catches dynamically, when a test happens to interleave)
/// into compile errors on every build. Under other compilers they
/// expand to nothing, so GCC builds are unaffected.
///
/// The annotated capability types these attach to live in
/// common/mutex.h (shpir::common::Mutex / MutexLock); std::mutex itself
/// carries no capability attributes, so the analysis cannot see it.
///
/// Conventions (see docs/STATIC_ANALYSIS.md):
///  - Every member written or read under a mutex is GUARDED_BY(mu).
///  - Private helpers called with the lock held are REQUIRES(mu).
///  - Public entry points that take the lock themselves are
///    EXCLUDES(mu) when reentry would self-deadlock.

#if defined(__clang__) && defined(__has_attribute)
#define SHPIR_THREAD_ANNOTATION__(x) __attribute__((x))
#else
#define SHPIR_THREAD_ANNOTATION__(x)  // No-op outside Clang.
#endif

#define CAPABILITY(x) SHPIR_THREAD_ANNOTATION__(capability(x))
#define SCOPED_CAPABILITY SHPIR_THREAD_ANNOTATION__(scoped_lockable)

#define GUARDED_BY(x) SHPIR_THREAD_ANNOTATION__(guarded_by(x))
#define PT_GUARDED_BY(x) SHPIR_THREAD_ANNOTATION__(pt_guarded_by(x))

#define REQUIRES(...) \
  SHPIR_THREAD_ANNOTATION__(requires_capability(__VA_ARGS__))
#define REQUIRES_SHARED(...) \
  SHPIR_THREAD_ANNOTATION__(requires_shared_capability(__VA_ARGS__))
#define EXCLUDES(...) SHPIR_THREAD_ANNOTATION__(locks_excluded(__VA_ARGS__))

#define ACQUIRE(...) SHPIR_THREAD_ANNOTATION__(acquire_capability(__VA_ARGS__))
#define ACQUIRE_SHARED(...) \
  SHPIR_THREAD_ANNOTATION__(acquire_shared_capability(__VA_ARGS__))
#define RELEASE(...) SHPIR_THREAD_ANNOTATION__(release_capability(__VA_ARGS__))
#define RELEASE_SHARED(...) \
  SHPIR_THREAD_ANNOTATION__(release_shared_capability(__VA_ARGS__))
#define TRY_ACQUIRE(...) \
  SHPIR_THREAD_ANNOTATION__(try_acquire_capability(__VA_ARGS__))

#define ASSERT_CAPABILITY(x) SHPIR_THREAD_ANNOTATION__(assert_capability(x))
#define RETURN_CAPABILITY(x) SHPIR_THREAD_ANNOTATION__(lock_returned(x))
#define NO_THREAD_SAFETY_ANALYSIS \
  SHPIR_THREAD_ANNOTATION__(no_thread_safety_analysis)

#endif  // SHPIR_COMMON_THREAD_ANNOTATIONS_H_
