#include "control/controller.h"

#include <algorithm>
#include <cstdio>
#include <optional>
#include <utility>

#include "core/security_parameter.h"
#include "shard/sharded_engine.h"

namespace shpir::control {

namespace {

std::string Num(double value) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.6g", value);
  return buffer;
}

}  // namespace

// --- ShardedEnginePlant ----------------------------------------------------

uint64_t ShardedEnginePlant::shards() const { return engine_->shards(); }

uint64_t ShardedEnginePlant::disk_slots(uint64_t shard) const {
  return engine_->ShardControl(shard).disk_slots;
}

uint64_t ShardedEnginePlant::cache_pages(uint64_t shard) const {
  return engine_->ShardControl(shard).cache_pages;
}

ShardSignals ShardedEnginePlant::Read(uint64_t shard) {
  const shard::ShardedPirEngine::ShardControlState state =
      engine_->ShardControl(shard);
  ShardSignals signals;
  signals.block_size = state.block_size;
  signals.pending_block_size = state.pending_block_size;
  signals.c_estimate = state.c_estimate;
  signals.queue_fraction =
      state.queue_capacity > 0
          ? static_cast<double>(state.queue_depth) /
                static_cast<double>(state.queue_capacity)
          : 0.0;
  obs::SloTracker* slo = engine_->shard_slo(shard);
  if (slo != nullptr) {
    const obs::SloTracker::Snapshot snapshot = slo->Evaluate();
    for (const auto* sli : {&snapshot.availability, &snapshot.latency}) {
      for (size_t r = 0; r < obs::SloTracker::kNumRules; ++r) {
        const auto& rule = sli->rules[r];
        const double threshold =
            obs::SloTracker::kDefaultRules[r].burn_threshold;
        // A rule fires only when BOTH windows burn past its threshold,
        // so the pre-alert signal is the lesser of the two burns.
        const double burn =
            std::min(rule.short_burn, rule.long_burn) / threshold;
        signals.burn = std::max(signals.burn, burn);
        signals.slo_firing = signals.slo_firing || rule.firing;
      }
    }
  }
  return signals;
}

Status ShardedEnginePlant::RequestBlockSize(uint64_t shard, uint64_t new_k) {
  return engine_->RequestShardBlockSize(shard, new_k);
}

// --- PrivacyCostController -------------------------------------------------

const char* PrivacyCostController::OutcomeName(Outcome outcome) {
  switch (outcome) {
    case Outcome::kHold:
      return "hold";
    case Outcome::kApplied:
      return "applied";
    case Outcome::kDeferred:
      return "deferred";
    case Outcome::kSkipped:
      return "skipped";
    case Outcome::kClamped:
      return "clamped";
    case Outcome::kFrozen:
      return "frozen";
  }
  return "unknown";
}

std::vector<uint64_t> PrivacyCostController::ComputeLadder(
    uint64_t disk_slots, uint64_t cache_pages, uint64_t k_min,
    uint64_t k_max, double c_bound) {
  std::vector<uint64_t> ladder;
  for (uint64_t d = 1; d * d <= disk_slots; ++d) {
    if (disk_slots % d != 0) {
      continue;
    }
    for (const uint64_t k : {d, disk_slots / d}) {
      if (disk_slots < 2 * k) {
        continue;  // The protocol needs a location outside the block.
      }
      if (k < k_min || (k_max != 0 && k > k_max)) {
        continue;
      }
      const Result<double> c =
          core::SecurityParameter::PrivacyOf(disk_slots, cache_pages, k);
      if (!c.ok() || *c > c_bound) {
        continue;  // This rung would break the configured bound.
      }
      ladder.push_back(k);
    }
  }
  std::sort(ladder.begin(), ladder.end());
  ladder.erase(std::unique(ladder.begin(), ladder.end()), ladder.end());
  return ladder;
}

Result<std::unique_ptr<PrivacyCostController>> PrivacyCostController::Create(
    const Options& options, ControlPlant* plant) {
  if (plant == nullptr) {
    return InvalidArgumentError("control plant is required");
  }
  if (options.c_bound <= 1.0) {
    return InvalidArgumentError(
        "c_bound must be > 1 (c == 1 is full PIR; there is no headroom "
        "to trade)");
  }
  if (options.pressure_low < 0.0 ||
      options.pressure_low >= options.pressure_high) {
    return InvalidArgumentError(
        "hysteresis band requires 0 <= pressure_low < pressure_high");
  }
  if (options.k_max != 0 && options.k_min > options.k_max) {
    return InvalidArgumentError("k_min must be <= k_max");
  }
  if (plant->shards() == 0) {
    return InvalidArgumentError("plant has no shards");
  }
  std::vector<std::vector<uint64_t>> ladders;
  for (uint64_t s = 0; s < plant->shards(); ++s) {
    std::vector<uint64_t> ladder =
        ComputeLadder(plant->disk_slots(s), plant->cache_pages(s),
                      options.k_min, options.k_max, options.c_bound);
    if (ladder.empty()) {
      return InvalidArgumentError(
          "shard " + std::to_string(s) +
          " has no feasible block size within [k_min, k_max] under "
          "c_bound");
    }
    ladders.push_back(std::move(ladder));
  }
  return std::unique_ptr<PrivacyCostController>(
      new PrivacyCostController(options, plant, std::move(ladders)));
}

PrivacyCostController::PrivacyCostController(
    const Options& options, ControlPlant* plant,
    std::vector<std::vector<uint64_t>> ladders)
    : options_(options), plant_(plant) {
  common::MutexLock lock(mutex_);
  frozen_ = options.start_frozen;
  k_min_ = options.k_min;
  k_max_ = options.k_max;
  ladders_ = std::move(ladders);
  cooldown_.assign(ladders_.size(), 0);
}

PrivacyCostController::~PrivacyCostController() { Stop(); }

void PrivacyCostController::Start() {
  common::MutexLock lock(thread_mutex_);
  if (thread_.joinable()) {
    return;
  }
  stop_ = false;
  thread_ = std::thread([this] {
    common::MutexLock lock(thread_mutex_);
    while (!stop_) {
      lock.Unlock();
      TickNow();
      lock.Lock();
      if (stop_) {
        break;
      }
      thread_cv_.WaitFor(lock, options_.tick_interval);
    }
  });
}

void PrivacyCostController::Stop() {
  {
    common::MutexLock lock(thread_mutex_);
    if (!thread_.joinable()) {
      return;
    }
    stop_ = true;
    thread_cv_.NotifyAll();
  }
  thread_.join();
}

void PrivacyCostController::Freeze() {
  common::MutexLock lock(mutex_);
  frozen_ = true;
}

void PrivacyCostController::Unfreeze() {
  common::MutexLock lock(mutex_);
  frozen_ = false;
}

bool PrivacyCostController::frozen() const {
  common::MutexLock lock(mutex_);
  return frozen_;
}

Status PrivacyCostController::SetBounds(uint64_t k_min, uint64_t k_max) {
  if (k_min < 1) {
    return InvalidArgumentError("k_min must be >= 1");
  }
  if (k_max != 0 && k_min > k_max) {
    return InvalidArgumentError("k_min must be <= k_max");
  }
  std::vector<std::vector<uint64_t>> ladders;
  for (uint64_t s = 0; s < plant_->shards(); ++s) {
    std::vector<uint64_t> ladder =
        ComputeLadder(plant_->disk_slots(s), plant_->cache_pages(s), k_min,
                      k_max, options_.c_bound);
    if (ladder.empty()) {
      return InvalidArgumentError(
          "shard " + std::to_string(s) +
          " would have no feasible block size under the new bounds");
    }
    ladders.push_back(std::move(ladder));
  }
  common::MutexLock lock(mutex_);
  k_min_ = k_min;
  k_max_ = k_max;
  ladders_ = std::move(ladders);
  return OkStatus();
}

PrivacyCostController::Decision PrivacyCostController::DecideShard(
    uint64_t shard, uint64_t tick, const ShardSignals& signals) {
  Decision decision;
  decision.tick = tick;
  decision.shard = shard;
  decision.k_before = signals.block_size;
  decision.k_target = signals.block_size;
  decision.c_estimate = signals.c_estimate;
  decision.queue_fraction = signals.queue_fraction;
  decision.burn = signals.burn;
  decision.pressure =
      std::max({signals.queue_fraction, signals.burn,
                signals.slo_firing ? 1.0 : 0.0});
  const Result<double> c_theory = core::SecurityParameter::PrivacyOf(
      plant_->disk_slots(shard), plant_->cache_pages(shard),
      signals.block_size);
  decision.c_theory = c_theory.ok() ? *c_theory : 0.0;

  if (frozen_) {
    decision.outcome = Outcome::kFrozen;
    return decision;
  }

  const std::vector<uint64_t>& ladder = ladders_[shard];

  // Emergency clamp: the measured c broke the configured bound. Jump to
  // the most private feasible rung immediately — cooldown and bands do
  // not apply to a safety violation.
  if (signals.c_estimate > options_.c_bound) {
    const uint64_t target = ladder.back();
    if (signals.pending_block_size == target) {
      decision.outcome = Outcome::kDeferred;
      return decision;
    }
    if (signals.block_size >= target && signals.pending_block_size == 0) {
      decision.outcome = Outcome::kHold;  // Already at (or past) the top.
      return decision;
    }
    decision.k_target = target;
    const Status requested = plant_->RequestBlockSize(shard, target);
    if (requested.ok()) {
      decision.outcome = Outcome::kClamped;
      clamps_.fetch_add(1, std::memory_order_relaxed);
      cooldown_[shard] = options_.cooldown_ticks;
    } else {
      decision.outcome = Outcome::kSkipped;  // Retry next tick.
    }
    return decision;
  }

  if (signals.pending_block_size != 0) {
    decision.outcome = Outcome::kDeferred;  // Let the transition land.
    return decision;
  }
  if (cooldown_[shard] > 0) {
    --cooldown_[shard];
    decision.outcome = Outcome::kHold;
    return decision;
  }

  // Hysteresis-banded step decision along the feasible ladder.
  uint64_t target = signals.block_size;
  if (decision.pressure >= options_.pressure_high) {
    // Step DOWN one rung: cheaper rounds, weaker (but still bounded) c.
    for (auto it = ladder.rbegin(); it != ladder.rend(); ++it) {
      if (*it < signals.block_size) {
        target = *it;
        break;
      }
    }
  } else if (decision.pressure <= options_.pressure_low) {
    // Step UP one rung: reclaim privacy while the system is quiet.
    for (const uint64_t rung : ladder) {
      if (rung > signals.block_size) {
        target = rung;
        break;
      }
    }
  }
  if (target == signals.block_size) {
    decision.outcome = Outcome::kHold;
    return decision;
  }
  decision.k_target = target;
  const Status requested = plant_->RequestBlockSize(shard, target);
  if (requested.ok()) {
    decision.outcome = Outcome::kApplied;
    cooldown_[shard] = options_.cooldown_ticks;
  } else {
    decision.outcome = Outcome::kSkipped;
  }
  return decision;
}

void PrivacyCostController::RecordDecision(const Decision& decision) {
  trail_.push_back(decision);
  while (trail_.size() > options_.decision_trail) {
    trail_.pop_front();
  }
}

void PrivacyCostController::TickNow() {
  // The span covers the whole tick: reads, decisions, actuation.
  std::optional<obs::TraceSpan> span;
  if (tracer_ != nullptr) {
    span.emplace(tracer_, "control_tick");
  }
  const uint64_t tick =
      ticks_.fetch_add(1, std::memory_order_relaxed) + 1;

  bool clamped_this_tick = false;
  double worst_c = 0.0;
  double max_pressure = 0.0;
  uint64_t min_k = 0;
  bool was_frozen = false;
  {
    common::MutexLock lock(mutex_);
    was_frozen = frozen_;
    for (uint64_t s = 0; s < plant_->shards(); ++s) {
      const ShardSignals signals = plant_->Read(s);
      const Decision decision = DecideShard(s, tick, signals);
      RecordDecision(decision);
      worst_c = std::max(
          {worst_c, decision.c_theory, decision.c_estimate});
      max_pressure = std::max(max_pressure, decision.pressure);
      min_k = min_k == 0 ? decision.k_before
                         : std::min(min_k, decision.k_before);
      if (metered()) {
        switch (decision.outcome) {
          case Outcome::kHold:
            instruments_.held->Increment();
            break;
          case Outcome::kApplied:
            instruments_.applied->Increment();
            break;
          case Outcome::kDeferred:
            instruments_.deferred->Increment();
            break;
          case Outcome::kSkipped:
            instruments_.skipped->Increment();
            break;
          case Outcome::kClamped:
            instruments_.clamped->Increment();
            break;
          case Outcome::kFrozen:
            instruments_.frozen->Increment();
            break;
        }
      }
      if (eventlog_ != nullptr && decision.outcome != Outcome::kHold &&
          decision.outcome != Outcome::kFrozen) {
        // One event per acted-on decision. Shape (name, level, fields)
        // depends only on the outcome class — public control state.
        eventlog_->Emit(
            obs::EventLevel::kInfo, "control_decision",
            static_cast<int32_t>(s), /*trace_id=*/0,
            {{"outcome", static_cast<int>(decision.outcome)},
             {"k_before", decision.k_before},
             {"k_target", decision.k_target},
             {"pressure", decision.pressure}});
      }
      if (decision.outcome == Outcome::kClamped) {
        clamped_this_tick = true;
        if (eventlog_ != nullptr) {
          eventlog_->Emit(obs::EventLevel::kWarn, "control_privacy_clamp",
                          static_cast<int32_t>(s), /*trace_id=*/0,
                          {{"c_estimate", decision.c_estimate},
                           {"k_target", decision.k_target}});
        }
      }
    }
  }
  if (metered()) {
    instruments_.ticks->Increment();
    instruments_.block_size_k->Set(static_cast<double>(min_k));
    instruments_.effective_c->Set(worst_c);
    instruments_.headroom->Set(options_.c_bound - worst_c);
    instruments_.pressure->Set(max_pressure);
    instruments_.frozen_gauge->Set(was_frozen ? 1.0 : 0.0);
  }
  if (eventlog_ != nullptr) {
    eventlog_->Emit(obs::EventLevel::kDebug, "control_tick",
                    {{"shards", plant_->shards()},
                     {"worst_c", worst_c},
                     {"max_pressure", max_pressure},
                     {"frozen", was_frozen ? 1 : 0}});
  }
  if (clamped_this_tick && recorder_ != nullptr) {
    // The clamp is the edge the "privacy_clamp" trigger watches; poll
    // immediately so the incident bundle seals with fresh context.
    recorder_->Poll();
  }
}

std::string PrivacyCostController::StatusJson() {
  common::MutexLock lock(mutex_);
  std::string out = "{";
  out += "\"frozen\":" + std::string(frozen_ ? "true" : "false");
  out += ",\"k_min\":" + std::to_string(k_min_);
  out += ",\"k_max\":" + std::to_string(k_max_);
  out += ",\"c_bound\":" + Num(options_.c_bound);
  out += ",\"pressure_high\":" + Num(options_.pressure_high);
  out += ",\"pressure_low\":" + Num(options_.pressure_low);
  out +=
      ",\"ticks\":" + std::to_string(ticks_.load(std::memory_order_relaxed));
  out += ",\"clamps\":" +
         std::to_string(clamps_.load(std::memory_order_relaxed));
  out += ",\"shards\":[";
  for (uint64_t s = 0; s < plant_->shards(); ++s) {
    if (s > 0) {
      out += ',';
    }
    const ShardSignals signals = plant_->Read(s);
    const Result<double> c_theory = core::SecurityParameter::PrivacyOf(
        plant_->disk_slots(s), plant_->cache_pages(s), signals.block_size);
    out += "{\"shard\":" + std::to_string(s);
    out += ",\"k\":" + std::to_string(signals.block_size);
    out += ",\"pending_k\":" + std::to_string(signals.pending_block_size);
    out += ",\"c_theory\":" + Num(c_theory.ok() ? *c_theory : 0.0);
    out += ",\"c_estimate\":" + Num(signals.c_estimate);
    out += ",\"queue_fraction\":" + Num(signals.queue_fraction);
    out += ",\"burn\":" + Num(signals.burn);
    out += ",\"slo_firing\":" +
           std::string(signals.slo_firing ? "true" : "false");
    out += ",\"cooldown\":" + std::to_string(cooldown_[s]);
    out += ",\"ladder\":[";
    for (size_t i = 0; i < ladders_[s].size(); ++i) {
      if (i > 0) {
        out += ',';
      }
      out += std::to_string(ladders_[s][i]);
    }
    out += "]}";
  }
  out += "],\"decisions\":[";
  bool first = true;
  for (const Decision& d : trail_) {
    if (!first) {
      out += ',';
    }
    first = false;
    out += "{\"tick\":" + std::to_string(d.tick);
    out += ",\"shard\":" + std::to_string(d.shard);
    out += ",\"outcome\":\"" + std::string(OutcomeName(d.outcome)) + "\"";
    out += ",\"k_before\":" + std::to_string(d.k_before);
    out += ",\"k_target\":" + std::to_string(d.k_target);
    out += ",\"pressure\":" + Num(d.pressure);
    out += ",\"c_estimate\":" + Num(d.c_estimate);
    out += ",\"c_theory\":" + Num(d.c_theory);
    out += ",\"queue_fraction\":" + Num(d.queue_fraction);
    out += ",\"burn\":" + Num(d.burn);
    out += "}";
  }
  out += "]}";
  return out;
}

void PrivacyCostController::EnableMetrics(obs::MetricsRegistry* registry) {
  if (registry == nullptr) {
    instruments_ = Instruments{};
    return;
  }
  instruments_.ticks =
      registry->FindOrCreateCounter("shpir_control_ticks_total");
  instruments_.held =
      registry->FindOrCreateCounter("shpir_control_hold_total");
  instruments_.applied =
      registry->FindOrCreateCounter("shpir_control_applied_total");
  instruments_.deferred =
      registry->FindOrCreateCounter("shpir_control_deferred_total");
  instruments_.skipped =
      registry->FindOrCreateCounter("shpir_control_skipped_total");
  instruments_.clamped =
      registry->FindOrCreateCounter("shpir_control_clamped_total");
  instruments_.frozen =
      registry->FindOrCreateCounter("shpir_control_frozen_total");
  instruments_.block_size_k =
      registry->FindOrCreateGauge("shpir_control_block_size_k");
  instruments_.effective_c =
      registry->FindOrCreateGauge("shpir_control_effective_c");
  instruments_.headroom =
      registry->FindOrCreateGauge("shpir_control_privacy_headroom");
  instruments_.pressure =
      registry->FindOrCreateGauge("shpir_control_pressure");
  instruments_.frozen_gauge =
      registry->FindOrCreateGauge("shpir_control_frozen");
  instruments_.headroom->Set(options_.c_bound);
}

void PrivacyCostController::EnableEventLog(obs::EventLog* log) {
  eventlog_ = log;
}

void PrivacyCostController::EnableTracing(obs::Tracer* tracer) {
  tracer_ = tracer;
}

void PrivacyCostController::EnableFlightRecorder(
    obs::FlightRecorder* recorder) {
  if (recorder != nullptr && recorder != recorder_) {
    recorder->AddTrigger("privacy_clamp", [this] {
      return clamps_.load(std::memory_order_relaxed);
    });
  }
  recorder_ = recorder;
}

std::vector<uint64_t> PrivacyCostController::Ladder(uint64_t shard) const {
  common::MutexLock lock(mutex_);
  if (shard >= ladders_.size()) {
    return {};
  }
  return ladders_[shard];
}

std::vector<PrivacyCostController::Decision> PrivacyCostController::Trail()
    const {
  common::MutexLock lock(mutex_);
  return std::vector<Decision>(trail_.begin(), trail_.end());
}

}  // namespace shpir::control
