#ifndef SHPIR_CONTROL_CONTROLLER_H_
#define SHPIR_CONTROL_CONTROLLER_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/mutex.h"
#include "common/result.h"
#include "obs/eventlog.h"
#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace shpir::shard {
class ShardedPirEngine;
}  // namespace shpir::shard

namespace shpir::control {

/// Aggregate control inputs for one shard, read once per tick. Every
/// field is a fleet-level aggregate the trust boundary already exports
/// (published k, window c-estimate, queue occupancy, burn rates) — no
/// page ids, no request indices, nothing secret-derived.
struct ShardSignals {
  uint64_t block_size = 0;          // Applied k (published).
  uint64_t pending_block_size = 0;  // 0 when no transition in flight.
  double c_estimate = 0.0;          // Live Eq. 5 estimate; 0 = warming.
  double queue_fraction = 0.0;      // Dispatcher depth / capacity.
  double burn = 0.0;   // Worst SLO burn rate / its alert threshold.
  bool slo_firing = false;  // Any burn-rate rule currently firing.
};

/// What the controller observes and actuates: per-shard public geometry
/// (the feasible k ladder derives from it), live signals, and the
/// retune request. Implemented over ShardedPirEngine for serving
/// (ShardedEnginePlant) and by fakes/simulations in tests and benches.
class ControlPlant {
 public:
  virtual ~ControlPlant() = default;
  virtual uint64_t shards() const = 0;
  virtual uint64_t disk_slots(uint64_t shard) const = 0;
  virtual uint64_t cache_pages(uint64_t shard) const = 0;
  virtual ShardSignals Read(uint64_t shard) = 0;
  /// Requests an online block-size change; applied by the engine at its
  /// next scan-period boundary. ResourceExhausted = retry next tick.
  virtual Status RequestBlockSize(uint64_t shard, uint64_t new_k) = 0;
};

/// Production plant: reads PrivacyMonitor c-estimates, SloTracker burn
/// rates and dispatcher queue depth off a ShardedPirEngine, and routes
/// retunes through its per-shard worker queues.
class ShardedEnginePlant : public ControlPlant {
 public:
  explicit ShardedEnginePlant(shard::ShardedPirEngine* engine)
      : engine_(engine) {}

  uint64_t shards() const override;
  uint64_t disk_slots(uint64_t shard) const override;
  uint64_t cache_pages(uint64_t shard) const override;
  ShardSignals Read(uint64_t shard) override;
  Status RequestBlockSize(uint64_t shard, uint64_t new_k) override;

 private:
  shard::ShardedPirEngine* engine_;
};

/// Closed-loop privacy/cost controller: the paper's "adjustable
/// trade-off" (Eq. 5: smaller k → cheaper 2(k+1)-page rounds → larger
/// c) made operational. Once per tick it reads each shard's signals and
/// steps that shard's block size one rung along a precomputed feasible
/// ladder:
///
///  - pressure >= pressure_high  → step k DOWN one rung (spend privacy
///    headroom for latency; never below the ladder, whose every rung
///    satisfies c(k) <= c_bound);
///  - pressure <= pressure_low   → step k UP one rung (reclaim
///    privacy off-peak);
///  - in between                 → hold (the hysteresis band prevents
///    oscillation), and a change is followed by `cooldown_ticks` of
///    forced holds so one transition settles before the next.
///
/// Pressure is max(queue occupancy, SLO burn), both in [0, ~1+].
/// Independent of the bands, a live c-estimate above c_bound is an
/// emergency: the controller clamps straight to the most private
/// feasible rung (largest k), counts it in emergency_clamps(), and —
/// with a flight recorder attached — seals an incident bundle.
///
/// Safety invariants (see docs/CONTROL.md):
///  1. Every rung satisfies Eq. 5 c(disk_slots, m, k) <= c_bound, so no
///     decision can promise a weaker bound than configured.
///  2. Retunes land only at scan-period boundaries (engine-enforced),
///     keeping the round-robin schedule query-independent.
///  3. The controller consumes and emits only public aggregates; its
///     event/trace shapes are secret-independent (paired-rig tested).
///
/// Every tick is auditable: an input snapshot + decision + outcome per
/// shard lands in the decision trail (StatusJson / CONTROL_STATUS wire
/// op), structured events, shpir_control_* metrics, and one
/// "control_tick" trace span.
class PrivacyCostController {
 public:
  struct Options {
    /// Inclusive feasible range for k; k_max == 0 means unbounded.
    uint64_t k_min = 1;
    uint64_t k_max = 0;
    /// Hard privacy ceiling: every ladder rung keeps Eq. 5 c below it,
    /// and a live estimate above it triggers the emergency clamp.
    /// Required > 1.
    double c_bound = 0.0;
    /// Hysteresis band on the pressure signal.
    double pressure_high = 0.75;
    double pressure_low = 0.25;
    /// Forced-hold ticks after an applied change.
    uint64_t cooldown_ticks = 2;
    /// Decisions kept in the auditable trail (ring).
    size_t decision_trail = 64;
    /// Background tick period (Start()).
    std::chrono::milliseconds tick_interval{1000};
    /// Begin frozen: observe and record, but never actuate.
    bool start_frozen = false;
  };

  /// Decision outcome per shard per tick.
  enum class Outcome : uint8_t {
    kHold = 0,      // In band, in cooldown, or at the ladder edge.
    kApplied = 1,   // Step accepted; transition pending at the engine.
    kDeferred = 2,  // A previous transition is still pending.
    kSkipped = 3,   // Step wanted but the request was rejected.
    kClamped = 4,   // Emergency privacy clamp submitted.
    kFrozen = 5,    // Controller frozen; observed only.
  };
  static const char* OutcomeName(Outcome outcome);

  /// One auditable decision: the input snapshot it was taken on, what
  /// was decided, and what happened.
  struct Decision {
    uint64_t tick = 0;
    uint64_t shard = 0;
    Outcome outcome = Outcome::kHold;
    uint64_t k_before = 0;
    uint64_t k_target = 0;  // == k_before when nothing was requested.
    double pressure = 0.0;
    double c_estimate = 0.0;
    double c_theory = 0.0;
    double queue_fraction = 0.0;
    double burn = 0.0;
  };

  /// Validates options (c_bound > 1, 0 <= low < high), computes each
  /// shard's feasible ladder — the divisors k of its disk_slots with
  /// disk_slots >= 2k, k within [k_min, k_max] and Eq. 5 c(k) <=
  /// c_bound — and fails if any shard has no feasible rung. `plant` is
  /// unowned and must outlive the controller.
  static Result<std::unique_ptr<PrivacyCostController>> Create(
      const Options& options, ControlPlant* plant);

  ~PrivacyCostController();

  PrivacyCostController(const PrivacyCostController&) = delete;
  PrivacyCostController& operator=(const PrivacyCostController&) = delete;

  /// One synchronous control tick over all shards (deterministic tests
  /// and simulation benches drive this directly).
  void TickNow();

  /// Background ticking every Options::tick_interval. Idempotent.
  void Start();
  /// Stops and joins the background thread. Idempotent; also run by the
  /// destructor.
  void Stop();

  /// --- Operator verbs (shpir_ctl / CONTROL_STATUS wire op) -----------

  /// Freeze: keep observing and recording, stop actuating.
  void Freeze();
  void Unfreeze();
  bool frozen() const;

  /// Replaces [k_min, k_max] and recomputes every shard's ladder; fails
  /// (leaving the old bounds) if a shard would end up with no rung.
  Status SetBounds(uint64_t k_min, uint64_t k_max);

  /// Closed-schema status document: bounds, per-shard live state +
  /// ladder, and the decision trail. Served on the CONTROL_STATUS op.
  std::string StatusJson();

  /// --- Observability --------------------------------------------------

  /// Registers shpir_control_* instruments (tick/decision counters by
  /// outcome, current-k / effective-c / headroom / frozen gauges). Pass
  /// nullptr to detach.
  void EnableMetrics(obs::MetricsRegistry* registry);
  /// Structured decision events: "control_tick" per tick plus one
  /// "control_decision" per non-hold decision and a kWarn
  /// "control_privacy_clamp" per emergency clamp. Static names, numeric
  /// aggregate fields only.
  void EnableEventLog(obs::EventLog* log);
  /// One "control_tick" root span per tick (head-sampled).
  void EnableTracing(obs::Tracer* tracer);
  /// Registers the "privacy_clamp" edge trigger on `recorder` (debounced
  /// there like every trigger) and polls it after clamping ticks.
  void EnableFlightRecorder(obs::FlightRecorder* recorder);

  /// --- Introspection --------------------------------------------------

  uint64_t ticks() const { return ticks_.load(std::memory_order_relaxed); }
  uint64_t emergency_clamps() const {
    return clamps_.load(std::memory_order_relaxed);
  }
  /// Feasible ladder for `shard` under the current bounds, ascending.
  std::vector<uint64_t> Ladder(uint64_t shard) const;
  /// Most recent decisions, oldest first.
  std::vector<Decision> Trail() const;

 private:
  PrivacyCostController(const Options& options, ControlPlant* plant,
                        std::vector<std::vector<uint64_t>> ladders);

  /// Feasible rungs for one shard under [k_min, k_max] and c_bound.
  static std::vector<uint64_t> ComputeLadder(uint64_t disk_slots,
                                             uint64_t cache_pages,
                                             uint64_t k_min, uint64_t k_max,
                                             double c_bound);

  Decision DecideShard(uint64_t shard, uint64_t tick,
                       const ShardSignals& signals) REQUIRES(mutex_);
  void RecordDecision(const Decision& decision) REQUIRES(mutex_);

  Options options_;
  ControlPlant* plant_;

  mutable common::Mutex mutex_;
  bool frozen_ GUARDED_BY(mutex_);
  uint64_t k_min_ GUARDED_BY(mutex_);
  uint64_t k_max_ GUARDED_BY(mutex_);
  /// Per-shard ascending feasible k values under the current bounds.
  std::vector<std::vector<uint64_t>> ladders_ GUARDED_BY(mutex_);
  /// Per-shard forced-hold ticks remaining after an applied change.
  std::vector<uint64_t> cooldown_ GUARDED_BY(mutex_);
  std::deque<Decision> trail_ GUARDED_BY(mutex_);

  std::atomic<uint64_t> ticks_{0};
  std::atomic<uint64_t> clamps_{0};

  /// Background thread control.
  common::Mutex thread_mutex_;
  common::CondVar thread_cv_;
  bool stop_ GUARDED_BY(thread_mutex_) = false;
  std::thread thread_;

  obs::EventLog* eventlog_ = nullptr;
  obs::Tracer* tracer_ = nullptr;
  obs::FlightRecorder* recorder_ = nullptr;

  struct Instruments {
    obs::Counter* ticks = nullptr;
    obs::Counter* held = nullptr;
    obs::Counter* applied = nullptr;
    obs::Counter* deferred = nullptr;
    obs::Counter* skipped = nullptr;
    obs::Counter* clamped = nullptr;
    obs::Counter* frozen = nullptr;
    obs::Gauge* block_size_k = nullptr;
    obs::Gauge* effective_c = nullptr;
    obs::Gauge* headroom = nullptr;
    obs::Gauge* pressure = nullptr;
    obs::Gauge* frozen_gauge = nullptr;
  };
  Instruments instruments_;
  bool metered() const { return instruments_.ticks != nullptr; }
};

}  // namespace shpir::control

#endif  // SHPIR_CONTROL_CONTROLLER_H_
