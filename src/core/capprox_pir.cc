#include "core/capprox_pir.h"

#include <algorithm>
#include <optional>

#include "common/serde.h"
#include "core/security_parameter.h"
#include "crypto/permutation.h"

namespace shpir::core {

namespace {

using storage::Location;
using storage::Page;
using storage::PageId;

// Round `total` up to a multiple of `k`, with at least two blocks (the
// protocol needs a location outside the current block to exist).
uint64_t PadToBlocks(uint64_t total, uint64_t k) {
  uint64_t slots = (total + k - 1) / k * k;
  if (slots < 2 * k) {
    slots = 2 * k;
  }
  return slots;
}

}  // namespace

namespace {

struct Geometry {
  uint64_t block_size;  // k
  uint64_t disk_slots;  // Multiple of k, >= 2k.
};

// Validates options and resolves the block size k and padded disk size.
Result<Geometry> ResolveGeometry(const CApproxPir::Options& options) {
  if (options.num_pages < 1) {
    return InvalidArgumentError("num_pages must be >= 1");
  }
  if (options.page_size < 1) {
    return InvalidArgumentError("page_size must be >= 1");
  }
  if (options.cache_pages < 2) {
    return InvalidArgumentError("cache_pages must be >= 2");
  }
  const uint64_t target = options.num_pages + options.insert_reserve;
  uint64_t k = options.block_size;
  if (k == 0) {
    if (options.privacy_c <= 1.0) {
      return InvalidArgumentError(
          "privacy_c must be > 1 (use TrivialPir for c == 1)");
    }
    // Fixed point: k depends on the padded size, which depends on k.
    SHPIR_ASSIGN_OR_RETURN(
        k, SecurityParameter::BlockSize(target, options.cache_pages,
                                        options.privacy_c));
    for (int iter = 0; iter < 3; ++iter) {
      const uint64_t padded = PadToBlocks(target, k);
      SHPIR_ASSIGN_OR_RETURN(
          const uint64_t next,
          SecurityParameter::BlockSize(padded, options.cache_pages,
                                       options.privacy_c));
      if (next == k) {
        break;
      }
      k = next;
    }
  }
  const uint64_t slots = PadToBlocks(target, k);
  if (k >= slots) {
    return InvalidArgumentError(
        "block size covers the whole disk; use TrivialPir instead");
  }
  return Geometry{k, slots};
}

}  // namespace

Result<uint64_t> CApproxPir::DiskSlots(const Options& options) {
  SHPIR_ASSIGN_OR_RETURN(const Geometry geometry, ResolveGeometry(options));
  return geometry.disk_slots;
}

Result<std::unique_ptr<CApproxPir>> CApproxPir::Create(
    hardware::SecureCoprocessor* cpu, const Options& options,
    storage::AccessTrace* trace) {
  if (cpu == nullptr) {
    return InvalidArgumentError("coprocessor is required");
  }
  SHPIR_ASSIGN_OR_RETURN(const Geometry geometry, ResolveGeometry(options));
  const uint64_t disk_slots = geometry.disk_slots;
  const uint64_t k = geometry.block_size;
  if (cpu->page_size() != options.page_size) {
    return InvalidArgumentError("coprocessor page size mismatch");
  }
  if (cpu->disk()->num_slots() != disk_slots) {
    return InvalidArgumentError(
        "disk must have exactly " + std::to_string(disk_slots) + " slots");
  }

  const uint64_t id_space = disk_slots + options.cache_pages;
  uint64_t reserved = 0;
  if (options.enforce_secure_memory) {
    // Eq. 7: pageMap + pageCache + serverBlock.
    reserved = PageMap::StorageBytes(id_space) +
               (options.cache_pages + k + 1) * options.page_size;
    SHPIR_RETURN_IF_ERROR(
        cpu->ReserveSecureMemory(reserved, "c-approx PIR structures"));
  }
  return std::unique_ptr<CApproxPir>(
      new CApproxPir(cpu, options, trace, k, disk_slots, reserved));
}

CApproxPir::CApproxPir(hardware::SecureCoprocessor* cpu,
                       const Options& options, storage::AccessTrace* trace,
                       uint64_t block_size, uint64_t disk_slots,
                       uint64_t reserved_bytes)
    : cpu_(cpu),
      options_(options),
      trace_(trace),
      block_size_(block_size),
      disk_slots_(disk_slots),
      id_space_(disk_slots + options.cache_pages),
      reserved_bytes_(reserved_bytes),
      reserved_block_size_(block_size),
      published_block_size_(block_size),
      page_map_(id_space_),
      live_(id_space_, false) {}

CApproxPir::~CApproxPir() {
  if (reserved_bytes_ > 0) {
    cpu_->ReleaseSecureMemory(reserved_bytes_);
  }
}

void CApproxPir::EnableMetrics(obs::MetricsRegistry* registry) {
  if (registry == nullptr) {
    instruments_ = Instruments{};
    return;
  }
  instruments_.queries =
      registry->FindOrCreateCounter("shpir_engine_queries_total");
  instruments_.cache_hits =
      registry->FindOrCreateCounter("shpir_engine_cache_hits_total");
  instruments_.block_hits =
      registry->FindOrCreateCounter("shpir_engine_block_hits_total");
  instruments_.evictions =
      registry->FindOrCreateCounter("shpir_engine_evictions_total");
  instruments_.inserts =
      registry->FindOrCreateCounter("shpir_engine_inserts_total");
  instruments_.removes =
      registry->FindOrCreateCounter("shpir_engine_removes_total");
  instruments_.modifies =
      registry->FindOrCreateCounter("shpir_engine_modifies_total");
  instruments_.reshuffles =
      registry->FindOrCreateCounter("shpir_engine_reshuffles_total");
  instruments_.key_rotations =
      registry->FindOrCreateCounter("shpir_engine_key_rotations_total");
  instruments_.block_cursor =
      registry->FindOrCreateGauge("shpir_engine_block_cursor");
  instruments_.achieved_privacy_c =
      registry->FindOrCreateGauge("shpir_engine_achieved_privacy_c");
  instruments_.block_size_k =
      registry->FindOrCreateGauge("shpir_engine_block_size_k");
  instruments_.cache_pages_m =
      registry->FindOrCreateGauge("shpir_engine_cache_pages_m");
  instruments_.query_latency_ns =
      registry->FindOrCreateHistogram("shpir_engine_query_latency_ns");
  for (int i = 0; i < obs::kNumPhases; ++i) {
    instruments_.phases[static_cast<size_t>(i)] =
        registry->FindOrCreateHistogram(
            std::string("shpir_engine_phase_") +
            obs::PhaseName(static_cast<obs::Phase>(i)) + "_ns");
  }
  instruments_.block_cursor->Set(static_cast<double>(next_block_));
  instruments_.achieved_privacy_c->Set(achieved_privacy());
  instruments_.block_size_k->Set(static_cast<double>(block_size_));
  instruments_.cache_pages_m->Set(static_cast<double>(options_.cache_pages));
}

Status CApproxPir::RequestBlockSize(uint64_t new_k) {
  if (!initialized_) {
    return FailedPreconditionError("engine not initialized");
  }
  if (new_k < 1) {
    return InvalidArgumentError("block size must be >= 1");
  }
  if (disk_slots_ % new_k != 0) {
    return InvalidArgumentError(
        "block size " + std::to_string(new_k) + " does not divide the " +
        std::to_string(disk_slots_) +
        "-slot disk; online retuning cannot repad the disk");
  }
  if (disk_slots_ < 2 * new_k) {
    return InvalidArgumentError(
        "block size covers more than half the disk; the protocol needs "
        "a location outside the current block");
  }
  // The reservation must cover the larger of the applied and requested
  // k until the transition lands (the old block buffer is still in use
  // up to the boundary). Grow up front so the apply step cannot fail;
  // shrink back down as far as the new target allows.
  const uint64_t target_reserved = std::max(block_size_, new_k);
  if (options_.enforce_secure_memory) {
    if (target_reserved > reserved_block_size_) {
      const uint64_t delta =
          (target_reserved - reserved_block_size_) * options_.page_size;
      SHPIR_RETURN_IF_ERROR(
          cpu_->ReserveSecureMemory(delta, "c-approx retune block buffer"));
      reserved_bytes_ += delta;
      reserved_block_size_ = target_reserved;
    } else if (target_reserved < reserved_block_size_) {
      // A previously pending larger request is being replaced: give the
      // surplus back immediately.
      const uint64_t delta =
          (reserved_block_size_ - target_reserved) * options_.page_size;
      cpu_->ReleaseSecureMemory(delta);
      reserved_bytes_ -= delta;
      reserved_block_size_ = target_reserved;
    }
  }
  // Requesting the current size cancels any pending transition.
  pending_block_size_.store(new_k == block_size_ ? 0 : new_k,
                            std::memory_order_relaxed);
  return OkStatus();
}

void CApproxPir::ApplyPendingBlockSize() {
  const uint64_t new_k =
      pending_block_size_.load(std::memory_order_relaxed);
  pending_block_size_.store(0, std::memory_order_relaxed);
  block_size_ = new_k;
  published_block_size_.store(new_k, std::memory_order_relaxed);
  block_size_transitions_.fetch_add(1, std::memory_order_relaxed);
  if (options_.enforce_secure_memory && reserved_block_size_ > new_k) {
    const uint64_t delta =
        (reserved_block_size_ - new_k) * options_.page_size;
    cpu_->ReleaseSecureMemory(delta);
    reserved_bytes_ -= delta;
    reserved_block_size_ = new_k;
  }
  if (metered()) {
    instruments_.block_size_k->Set(static_cast<double>(block_size_));
    instruments_.achieved_privacy_c->Set(achieved_privacy());
  }
  // The scan period T = disk_slots / k changed: the privacy monitor's
  // residency bins are folded mod T, so it must rebase its window.
  if (privacy_monitor_ != nullptr) {
    privacy_monitor_->OnScanPeriodChange(scan_period());
  }
}

double CApproxPir::achieved_privacy() const {
  Result<double> c = SecurityParameter::PrivacyOf(
      disk_slots_, options_.cache_pages, block_size_);
  return c.ok() ? *c : 0.0;
}

Status CApproxPir::Initialize(const std::vector<Page>& pages) {
  if (initialized_) {
    return FailedPreconditionError("already initialized");
  }
  if (pages.size() > options_.num_pages) {
    return InvalidArgumentError("more pages than num_pages");
  }
  for (const Page& page : pages) {
    if (page.data.size() > options_.page_size) {
      return InvalidArgumentError("page payload exceeds page size");
    }
  }

  // Draw the initial oblivious permutation inside the device: position
  // perm[id] of page id; positions >= disk_slots_ denote cache slots.
  const std::vector<uint64_t> perm =
      crypto::RandomPermutation(id_space_, cpu_->rng());
  const std::vector<uint64_t> inv = crypto::InvertPermutation(perm);

  auto materialize = [&](PageId id) -> Page {
    if (id < pages.size()) {
      return Page(id, pages[id].data);
    }
    return Page(id, Bytes(options_.page_size, 0));
  };

  // Bulk-seal to disk in slot order (sequential write pattern), in
  // chunks to bound transient memory.
  constexpr uint64_t kChunk = 1024;
  for (uint64_t start = 0; start < disk_slots_; start += kChunk) {
    const uint64_t count = std::min(kChunk, disk_slots_ - start);
    std::vector<Bytes> sealed(count);
    for (uint64_t i = 0; i < count; ++i) {
      const PageId id = inv[start + i];
      SHPIR_ASSIGN_OR_RETURN(sealed[i], cpu_->SealPage(materialize(id)));
      page_map_.SetDiskLocation(id, start + i);
    }
    SHPIR_RETURN_IF_ERROR(cpu_->WriteRun(start, sealed));
  }

  // Cache holds the remaining m pages.
  page_cache_.resize(options_.cache_pages);
  for (uint64_t j = 0; j < options_.cache_pages; ++j) {
    const PageId id = inv[disk_slots_ + j];
    page_cache_[j] = materialize(id);
    page_map_.SetCacheIndex(id, j);
  }

  for (PageId id = 0; id < options_.num_pages; ++id) {
    live_[id] = true;
  }
  free_ids_.clear();
  for (PageId id = options_.num_pages; id < id_space_; ++id) {
    free_ids_.push_back(id);
  }
  initialized_ = true;
  return OkStatus();
}

storage::PageId CApproxPir::RandomUncachedOutsideBlock(
    Location block_start) {
  while (true) {
    const PageId p = cpu_->rng().UniformInt(id_space_);
    // Rejection sampling against the secret cache state runs inside the
    // device; only the accepted (uniform, non-revealing) draw is ever
    // turned into a disk access.
    // shpir-lint-allow-next-line(secret-loop-bound): in-enclave rejection sampling; each retry stays inside the device, no disk access is issued until the uniform draw is accepted
    if (page_map_.IsCached(p)) {
      continue;
    }
    // shpir-lint-allow-next-line(secret-loop-bound): in-enclave rejection sampling; the accepted draw is uniform over eligible pages by construction
    if (InBlock(page_map_.DiskLocation(p), block_start)) {
      continue;
    }
    return p;
  }
}

Result<CApproxPir::RoundOutcome> CApproxPir::RunRound(
    common::Secret<PageId> request_secret, const Bytes* replace_data,
    bool force_evict, bool insert_mode, PageId insert_id,
    const Bytes* insert_data) {
  // The query index is unwrapped only here: everything below runs
  // inside the device, and every secret-dependent branch the Fig. 3
  // protocol takes carries an audited shpir-lint-allow.
  const PageId request = request_secret.ExposeSecret();
  if (!initialized_) {
    return FailedPreconditionError("engine not initialized");
  }
  if (trace_ != nullptr) {
    trace_->BeginRequest();
  }
  const uint64_t request_index = stats_.queries++;
  // Destructors run last: the latency timer covers the whole round and
  // the trace flushes one sample per phase. Both are no-ops (no clock
  // reads, no allocations) when metrics are disabled.
  obs::ScopedLatencyTimer round_timer(instruments_.query_latency_ns);
  obs::QueryTrace qtrace(metered() ? &instruments_.phases : nullptr);
  // Distributed tracing: under a sampled context the round gets an
  // "engine_round" span and each protocol phase becomes a child span.
  // The context holds only public trace ids — never the request.
  std::optional<obs::TraceSpan> round_span;
  if (tracer_ != nullptr && pending_trace_.active()) {
    round_span.emplace(tracer_, pending_trace_, "engine_round",
                       trace_shard_);
    qtrace.SetSpanSink(tracer_, round_span->context(), trace_shard_);
  }
  // Continuous profiling: head-sampled rounds open an "engine_round"
  // root frame and every phase Span below pushes a child frame. The
  // sampling counter ticks for every round (target-independent) and
  // unsampled rounds never touch the profiler again.
  obs::ProfileScope profile_scope(
      profiler_ != nullptr && profiler_->SampleQuery() ? profiler_
                                                       : nullptr,
      "engine_round");
  if (profile_scope.active()) {
    qtrace.SetProfileSink(profiler_);
  }
  if (metered()) {
    instruments_.queries->Increment();
  }

  // A pending block-size change lands exactly at the scan-period
  // boundary: the previous scan completed at the old k, this scan
  // starts at slot 0 with the new k, and the schedule stays a pure
  // function of public state (cursor and the two public block sizes).
  if (next_block_ == 0 &&
      pending_block_size_.load(std::memory_order_relaxed) != 0) {
    ApplyPendingBlockSize();
  }

  // Step 1: read the next block of k pages, round-robin.
  const Location block_start = next_block_ * block_size_;
  next_block_ = (next_block_ + 1) % scan_period();
  if (metered()) {
    instruments_.block_cursor->Set(static_cast<double>(next_block_));
  }
  std::vector<Bytes> sealed_block;
  {
    obs::Span span(qtrace, obs::Phase::kBlockRead);
    SHPIR_RETURN_IF_ERROR(
        cpu_->ReadRun(block_start, block_size_, sealed_block));
  }
  // The decrypted block lives in device memory; it is a secret
  // container, so secret-indexed accesses into it stay inside the
  // boundary.
  SHPIR_SECRET std::vector<Page> block(block_size_ + 1);
  {
    obs::Span span(qtrace, obs::Phase::kDecrypt);
    for (uint64_t i = 0; i < block_size_; ++i) {
      SHPIR_ASSIGN_OR_RETURN(block[i], cpu_->OpenPage(sealed_block[i]));
    }
  }

  // Step 2: pick the (k+1)-th page and locate the requested page.
  // q indexes the requested page within `block` when it is not cached.
  PageId extra;
  uint64_t q = block_size_;
  SHPIR_SECRET bool request_cached = false;
  {
    obs::Span span(qtrace, obs::Phase::kPageMapLookup);
    if (insert_mode) {
      // The extra page is the chosen spare; its content is replaced by
      // the new page below.
      extra = insert_id;
      // The Fig. 3 case split below is the protocol's one deliberate
      // secret-dependent branch: which case ran decides the extra page,
      // and Eq. 5 is exactly the bound on what the resulting disk
      // access pattern reveals.
      // shpir-lint-allow-next-line(secret-branch): Fig. 3 cache-hit case split
    } else if (page_map_.IsCached(request)) {
      request_cached = true;
      stats_.cache_hits++;
      if (metered()) {
        instruments_.cache_hits->Increment();
      }
      extra = RandomUncachedOutsideBlock(block_start);
      // shpir-lint-allow-next-line(secret-branch): Fig. 3 block-hit case split
    } else if (InBlock(page_map_.DiskLocation(request), block_start)) {
      stats_.block_hits++;
      if (metered()) {
        instruments_.block_hits->Increment();
      }
      q = page_map_.DiskLocation(request) - block_start;
      extra = RandomUncachedOutsideBlock(block_start);
    } else {
      extra = request;
    }
  }
  const Location extra_loc = page_map_.DiskLocation(extra);
  Bytes sealed_extra;
  {
    obs::Span span(qtrace, obs::Phase::kBlockRead);
    SHPIR_ASSIGN_OR_RETURN(sealed_extra, cpu_->ReadSlot(extra_loc));
  }
  {
    obs::Span span(qtrace, obs::Phase::kDecrypt);
    SHPIR_ASSIGN_OR_RETURN(block[block_size_],
                           cpu_->OpenPage(sealed_extra));
  }

  // Step 3: extract the requested payload (before any modification).
  RoundOutcome outcome;
  if (insert_mode) {
    // Overwrite the spare's content with the new page (same id).
    block[block_size_] = Page(insert_id, *insert_data);
    // shpir-lint-allow-next-line(secret-branch): in-enclave payload extraction
  } else if (request_cached) {
    outcome.result = page_cache_[page_map_.CacheIndex(request)].data;
  } else {
    // shpir-lint-allow-next-line(secret-branch, secret-compare): in-enclave integrity check; aborts the whole round either way
    if (block[q].id != request) {
      return InternalError("pageMap/disk disagree on page position");
    }
    outcome.result = block[q].data;
  }

  // Apply Modify() semantics wherever the page currently lives.
  if (replace_data != nullptr && !insert_mode) {
    // shpir-lint-allow-next-line(secret-branch): in-enclave Modify placement
    if (request_cached) {
      page_cache_[page_map_.CacheIndex(request)].data = *replace_data;
    } else {
      block[q].data = *replace_data;
    }
  }

  // Step 4 (Fig. 3 lines 17-20): uniformize the target slot, then swap
  // with a random cache entry.
  uint64_t r;
  uint64_t s;
  {
    obs::Span span(qtrace, obs::Phase::kCacheEvict);
    r = options_.ablation_skip_uniform_swap
            ? 0
            : cpu_->rng().UniformInt(block_size_);
    std::swap(block[r], block[q]);
    if (force_evict) {
      s = page_map_.CacheIndex(request);
    } else if (options_.ablation_round_robin_eviction) {
      s = request_index % options_.cache_pages;
    } else {
      s = cpu_->rng().UniformInt(options_.cache_pages);
    }
    std::swap(page_cache_[s], block[r]);
    if (metered()) {
      instruments_.evictions->Increment();
    }
  }

  // Step 5: re-encrypt everything with fresh nonces and write back.
  std::vector<Bytes> sealed_out(block_size_);
  Bytes sealed_last;
  {
    obs::Span span(qtrace, obs::Phase::kReencrypt);
    for (uint64_t i = 0; i < block_size_; ++i) {
      SHPIR_ASSIGN_OR_RETURN(sealed_out[i], cpu_->SealPage(block[i]));
    }
    SHPIR_ASSIGN_OR_RETURN(sealed_last, cpu_->SealPage(block[block_size_]));
  }
  {
    obs::Span span(qtrace, obs::Phase::kWriteBack);
    SHPIR_RETURN_IF_ERROR(cpu_->WriteRun(block_start, sealed_out));
    SHPIR_RETURN_IF_ERROR(cpu_->WriteSlot(extra_loc, sealed_last));
  }

  // Step 6: update the look-up table for the three moved pages.
  obs::Span span(qtrace, obs::Phase::kPageMapLookup);
  page_map_.SetCacheIndex(page_cache_[s].id, s);
  if (cache_entry_observer_) {
    cache_entry_observer_(page_cache_[s].id, request_index);
  }
  if (privacy_monitor_ != nullptr) {
    privacy_monitor_->OnCacheEntry(page_cache_[s].id, request_index);
  }
  page_map_.SetDiskLocation(block[r].id, block_start + r);
  if (relocation_observer_) {
    relocation_observer_(block[r].id, block_start + r, request_index);
  }
  if (privacy_monitor_ != nullptr) {
    privacy_monitor_->OnRelocation(block[r].id, request_index);
  }
  // shpir-lint-allow-next-line(secret-branch, secret-compare): in-enclave pageMap bookkeeping for the swapped slots
  if (q != r) {
    // shpir-lint-allow-next-line(secret-branch): in-enclave location select
    const Location loc_q = q < block_size_ ? block_start + q : extra_loc;
    page_map_.SetDiskLocation(block[q].id, loc_q);
  }
  return outcome;
}

Result<Bytes> CApproxPir::Retrieve(PageId id) {
  if (!initialized_) {
    return FailedPreconditionError("engine not initialized");
  }
  if (!IsLive(id)) {
    return NotFoundError("no such page: " + std::to_string(id));
  }
  SHPIR_ASSIGN_OR_RETURN(
      RoundOutcome outcome,
      RunRound(common::Secret<PageId>(id), /*replace_data=*/nullptr,
               /*force_evict=*/false, /*insert_mode=*/false, 0, nullptr));
  return std::move(outcome.result);
}

Result<Bytes> CApproxPir::TracedRetrieve(PageId id,
                                         const obs::TraceContext& ctx) {
  // Park the context for the round; the engine is single-threaded per
  // instance so a plain member hand-off is safe. Cleared on every exit
  // path so an untraced follow-up query cannot inherit it.
  pending_trace_ = ctx;
  Result<Bytes> result = Retrieve(id);
  pending_trace_ = obs::TraceContext{};
  return result;
}

void CApproxPir::EnableTracing(obs::Tracer* tracer, int32_t trace_shard) {
  tracer_ = tracer;
  trace_shard_ = trace_shard;
}

Status CApproxPir::Modify(PageId id, Bytes data) {
  if (!initialized_) {
    return FailedPreconditionError("engine not initialized");
  }
  if (!IsLive(id)) {
    return NotFoundError("no such page: " + std::to_string(id));
  }
  if (data.size() > options_.page_size) {
    return InvalidArgumentError("page payload exceeds page size");
  }
  data.resize(options_.page_size, 0);
  stats_.modifies++;
  if (metered()) {
    instruments_.modifies->Increment();
  }
  SHPIR_ASSIGN_OR_RETURN(
      RoundOutcome outcome,
      RunRound(common::Secret<PageId>(id), &data, /*force_evict=*/false,
               /*insert_mode=*/false, 0, nullptr));
  (void)outcome;
  return OkStatus();
}

Status CApproxPir::Remove(PageId id) {
  if (!initialized_) {
    return FailedPreconditionError("engine not initialized");
  }
  if (!IsLive(id)) {
    return NotFoundError("no such page: " + std::to_string(id));
  }
  stats_.removes++;
  if (metered()) {
    instruments_.removes->Increment();
  }
  // §4.3: deletions run as cache hits (random (k+1)-th page); a cached
  // victim is forced out of the cache so the dead page never lingers in
  // secure memory.
  const bool cached = page_map_.IsCached(id);
  PageId round_target = id;
  // shpir-lint-allow-next-line(secret-branch): §4.3 delete case split runs in-enclave; both arms produce identical access patterns
  if (!cached) {
    // The page stays wherever it is on disk; run an ordinary-looking
    // round driven by a random page so the adversary sees nothing
    // special. A cache-hit-shaped round needs a cached page as target:
    // pick a uniformly random cache slot's resident.
    const uint64_t slot = cpu_->rng().UniformInt(options_.cache_pages);
    round_target = page_cache_[slot].id;
  }
  SHPIR_ASSIGN_OR_RETURN(
      RoundOutcome outcome,
      RunRound(common::Secret<PageId>(round_target),
               /*replace_data=*/nullptr, /*force_evict=*/cached,
               /*insert_mode=*/false, 0, nullptr));
  (void)outcome;
  live_[id] = false;
  free_ids_.push_back(id);
  return OkStatus();
}

Result<storage::PageId> CApproxPir::Insert(Bytes data) {
  if (!initialized_) {
    return FailedPreconditionError("engine not initialized");
  }
  if (data.size() > options_.page_size) {
    return InvalidArgumentError("page payload exceeds page size");
  }
  data.resize(options_.page_size, 0);
  if (free_ids_.empty()) {
    return ResourceExhaustedError("no spare pages left for insertion");
  }
  // Pick a spare that is currently on disk outside the block the next
  // round will scan (the round reads the block before the spare). A
  // pending block-size change applies at the boundary before that read,
  // so the prediction must use the next round's k, not the current one.
  const uint64_t next_k = NextRoundBlockSize();
  const Location next_block_start = next_block_ * block_size_;
  PageId spare = storage::kDummyPageId;
  size_t spare_pos = 0;
  const size_t start = cpu_->rng().UniformInt(free_ids_.size());
  for (size_t step = 0; step < free_ids_.size(); ++step) {
    const size_t pos = (start + step) % free_ids_.size();
    const PageId candidate = free_ids_[pos];
    // Spare selection consults the secret pageMap inside the device;
    // the adversary sees only the ordinary round the chosen spare
    // drives.
    // shpir-lint-allow-next-line(secret-loop-bound): in-enclave spare selection; the adversary sees only the ordinary round the chosen spare drives
    if (page_map_.IsCached(candidate)) {
      continue;
    }
    const Location candidate_loc = page_map_.DiskLocation(candidate);
    // shpir-lint-allow-next-line(secret-loop-bound): in-enclave spare selection retry inside the device
    if (candidate_loc >= next_block_start &&
        candidate_loc < next_block_start + next_k) {
      continue;
    }
    spare = candidate;
    spare_pos = pos;
    break;
  }
  if (spare == storage::kDummyPageId) {
    return FailedPreconditionError(
        "all spare pages are cached or in the next block; run a query "
        "and retry");
  }
  stats_.inserts++;
  if (metered()) {
    instruments_.inserts->Increment();
  }
  SHPIR_ASSIGN_OR_RETURN(
      RoundOutcome outcome,
      RunRound(common::Secret<PageId>(spare), /*replace_data=*/nullptr,
               /*force_evict=*/false, /*insert_mode=*/true, spare, &data));
  (void)outcome;
  free_ids_.erase(free_ids_.begin() + static_cast<ptrdiff_t>(spare_pos));
  live_[spare] = true;
  return spare;
}

Status CApproxPir::OfflineReshuffle() {
  return ReshuffleInternal(/*rotate_keys=*/false);
}

Status CApproxPir::RotateKeys() {
  return ReshuffleInternal(/*rotate_keys=*/true);
}

Status CApproxPir::ReshuffleInternal(bool rotate_keys) {
  if (!initialized_) {
    return FailedPreconditionError("engine not initialized");
  }
  // Stream every page in (disk + cache already in memory).
  std::vector<Page> all(id_space_);
  constexpr uint64_t kChunk = 1024;
  for (uint64_t start = 0; start < disk_slots_; start += kChunk) {
    const uint64_t count = std::min(kChunk, disk_slots_ - start);
    std::vector<Bytes> sealed;
    SHPIR_RETURN_IF_ERROR(cpu_->ReadRun(start, count, sealed));
    for (const Bytes& blob : sealed) {
      SHPIR_ASSIGN_OR_RETURN(Page page, cpu_->OpenPage(blob));
      all[page.id] = std::move(page);
    }
  }
  for (const Page& cached : page_cache_) {
    all[cached.id] = cached;
  }
  // Physically destroy dead contents.
  for (PageId id = 0; id < id_space_; ++id) {
    if (!live_[id]) {
      all[id].data.assign(options_.page_size, 0);
    }
  }
  // Everything is decrypted in device memory: safe to swap keys now.
  if (rotate_keys) {
    SHPIR_RETURN_IF_ERROR(cpu_->InstallFreshKeys());
  }
  // Fresh permutation of the full id space; positions >= disk_slots_
  // land in the cache.
  const std::vector<uint64_t> perm =
      crypto::RandomPermutation(id_space_, cpu_->rng());
  const std::vector<uint64_t> inv = crypto::InvertPermutation(perm);
  for (uint64_t start = 0; start < disk_slots_; start += kChunk) {
    const uint64_t count = std::min(kChunk, disk_slots_ - start);
    std::vector<Bytes> sealed(count);
    for (uint64_t i = 0; i < count; ++i) {
      const PageId id = inv[start + i];
      SHPIR_ASSIGN_OR_RETURN(sealed[i], cpu_->SealPage(all[id]));
      page_map_.SetDiskLocation(id, start + i);
    }
    SHPIR_RETURN_IF_ERROR(cpu_->WriteRun(start, sealed));
  }
  for (uint64_t j = 0; j < options_.cache_pages; ++j) {
    const PageId id = inv[disk_slots_ + j];
    page_cache_[j] = std::move(all[id]);
    page_map_.SetCacheIndex(id, j);
  }
  next_block_ = 0;
  if (metered()) {
    instruments_.reshuffles->Increment();
    if (rotate_keys) {
      instruments_.key_rotations->Increment();
    }
    instruments_.block_cursor->Set(0.0);
  }
  return OkStatus();
}

namespace {
constexpr uint64_t kStateMagic = 0x5348504952535431ull;  // "SHPIRST1".
constexpr uint64_t kStateVersion = 1;
}  // namespace

Result<Bytes> CApproxPir::SerializeState() const {
  if (!initialized_) {
    return FailedPreconditionError("engine not initialized");
  }
  ByteWriter writer;
  writer.WriteU64(kStateMagic);
  writer.WriteU64(kStateVersion);
  writer.WriteU64(options_.num_pages);
  writer.WriteU64(options_.page_size);
  writer.WriteU64(options_.cache_pages);
  writer.WriteU64(block_size_);
  writer.WriteU64(disk_slots_);
  writer.WriteU64(next_block_);
  writer.WriteU64(stats_.queries);
  writer.WriteU64(stats_.cache_hits);
  writer.WriteU64(stats_.block_hits);
  writer.WriteU64(stats_.inserts);
  writer.WriteU64(stats_.removes);
  writer.WriteU64(stats_.modifies);
  for (PageId id = 0; id < id_space_; ++id) {
    const bool cached = page_map_.IsCached(id);
    // shpir-lint-allow-next-line(secret-branch): serialization of the secret state itself; the blob never leaves the boundary unsealed
    uint8_t flags = cached ? 1 : 0;
    if (live_[id]) {
      flags |= 2;
    }
    // shpir-lint-allow-next-line(secret-wire): state snapshot written into an in-device buffer; the caller seals the blob before it crosses the trust boundary
    writer.WriteU8(flags);
    // shpir-lint-allow-next-line(secret-branch, secret-wire): serialization of the secret state itself; the blob never leaves the boundary unsealed
    writer.WriteU64(cached ? page_map_.CacheIndex(id)
                           : page_map_.DiskLocation(id));
  }
  writer.WriteU64(free_ids_.size());
  for (PageId id : free_ids_) {
    writer.WriteU64(id);
  }
  for (const Page& page : page_cache_) {
    // shpir-lint-allow-next-line(secret-wire): cached page ids are part of the sealed state snapshot
    writer.WriteU64(page.id);
    // shpir-lint-allow-next-line(secret-wire): cached page contents are part of the sealed state snapshot
    writer.WriteRaw(page.data);
  }
  return writer.Take();
}

Status CApproxPir::RestoreState(ByteSpan state) {
  if (initialized_) {
    return FailedPreconditionError("already initialized");
  }
  ByteReader reader(state);
  SHPIR_ASSIGN_OR_RETURN(const uint64_t magic, reader.ReadU64());
  SHPIR_ASSIGN_OR_RETURN(const uint64_t version, reader.ReadU64());
  if (magic != kStateMagic || version != kStateVersion) {
    return DataLossError("not a shpir engine state blob");
  }
  SHPIR_ASSIGN_OR_RETURN(const uint64_t num_pages, reader.ReadU64());
  SHPIR_ASSIGN_OR_RETURN(const uint64_t page_size, reader.ReadU64());
  SHPIR_ASSIGN_OR_RETURN(const uint64_t cache_pages, reader.ReadU64());
  SHPIR_ASSIGN_OR_RETURN(const uint64_t block_size, reader.ReadU64());
  SHPIR_ASSIGN_OR_RETURN(const uint64_t disk_slots, reader.ReadU64());
  if (num_pages != options_.num_pages || page_size != options_.page_size ||
      cache_pages != options_.cache_pages || block_size != block_size_ ||
      disk_slots != disk_slots_) {
    return InvalidArgumentError("state geometry does not match engine");
  }
  SHPIR_ASSIGN_OR_RETURN(next_block_, reader.ReadU64());
  if (next_block_ >= scan_period()) {
    return DataLossError("corrupt state: block cursor out of range");
  }
  SHPIR_ASSIGN_OR_RETURN(stats_.queries, reader.ReadU64());
  SHPIR_ASSIGN_OR_RETURN(stats_.cache_hits, reader.ReadU64());
  SHPIR_ASSIGN_OR_RETURN(stats_.block_hits, reader.ReadU64());
  SHPIR_ASSIGN_OR_RETURN(stats_.inserts, reader.ReadU64());
  SHPIR_ASSIGN_OR_RETURN(stats_.removes, reader.ReadU64());
  SHPIR_ASSIGN_OR_RETURN(stats_.modifies, reader.ReadU64());
  for (PageId id = 0; id < id_space_; ++id) {
    SHPIR_ASSIGN_OR_RETURN(const uint8_t entry_flags, reader.ReadU8());
    SHPIR_ASSIGN_OR_RETURN(const uint64_t position, reader.ReadU64());
    if (entry_flags & 1) {
      if (position >= options_.cache_pages) {
        return DataLossError("corrupt state: cache index out of range");
      }
      page_map_.SetCacheIndex(id, position);
    } else {
      if (position >= disk_slots_) {
        return DataLossError("corrupt state: disk location out of range");
      }
      page_map_.SetDiskLocation(id, position);
    }
    live_[id] = (entry_flags & 2) != 0;
  }
  SHPIR_ASSIGN_OR_RETURN(const uint64_t free_count, reader.ReadU64());
  if (free_count > id_space_) {
    return DataLossError("corrupt state: free list too long");
  }
  free_ids_.resize(free_count);
  for (uint64_t i = 0; i < free_count; ++i) {
    SHPIR_ASSIGN_OR_RETURN(free_ids_[i], reader.ReadU64());
    if (free_ids_[i] >= id_space_) {
      return DataLossError("corrupt state: free id out of range");
    }
  }
  page_cache_.resize(options_.cache_pages);
  for (Page& page : page_cache_) {
    SHPIR_ASSIGN_OR_RETURN(page.id, reader.ReadU64());
    SHPIR_ASSIGN_OR_RETURN(page.data, reader.ReadRaw(options_.page_size));
  }
  if (!reader.AtEnd()) {
    return DataLossError("corrupt state: trailing bytes");
  }
  initialized_ = true;
  return OkStatus();
}

Result<storage::Location> CApproxPir::DebugLocation(PageId id) const {
  if (id >= id_space_) {
    return NotFoundError("id out of range");
  }
  // shpir-lint-allow-next-line(secret-branch): test/analysis hook; a physical device would not expose this
  if (page_map_.IsCached(id)) {
    return FailedPreconditionError("page is cached");
  }
  return page_map_.DiskLocation(id);
}

bool CApproxPir::DebugIsCached(PageId id) const {
  return id < id_space_ && page_map_.IsCached(id);
}

}  // namespace shpir::core
