#ifndef SHPIR_CORE_CAPPROX_PIR_H_
#define SHPIR_CORE_CAPPROX_PIR_H_

#include <atomic>
#include <functional>
#include <memory>
#include <vector>

#include "common/result.h"
#include "common/secret.h"
#include "core/page_map.h"
#include "core/pir_engine.h"
#include "hardware/coprocessor.h"
#include "obs/privacy_monitor.h"
#include "obs/span.h"
#include "obs/trace.h"
#include "storage/access_trace.h"
#include "storage/page.h"

namespace shpir::core {

/// The paper's c-approximate PIR engine (Fig. 3 plus the §4.3 update
/// protocol).
///
/// Layout. The disk holds `disk_slots` sealed pages (the client's
/// `num_pages` real pages plus `insert_reserve` spares, padded with
/// dummies to a multiple of the block size k). The device's page cache
/// holds a further m pages, so the total id space is disk_slots + m.
/// Every page — real, spare or padding — carries a unique id and is
/// tracked in the pageMap; dummies are simply ids the client never sees.
///
/// Per query, the engine reads the next k-page block (round-robin), plus
/// one extra page (the requested page, or a uniformly random non-cached,
/// non-block page on a cache/block hit), moves the requested page into
/// the cache, evicts a uniformly random cached page into a uniformly
/// random slot of the block, re-encrypts all k+1 pages with fresh nonces
/// and writes them back. Cost is constant: 4 seeks + 2(k+1) pages over
/// the link and through the crypto engine (Eq. 8).
class CApproxPir : public PirEngine {
 public:
  struct Options {
    /// Number of client-addressable pages n.
    uint64_t num_pages = 0;
    /// Page payload size B (bytes).
    size_t page_size = 0;
    /// Cache capacity m (pages).
    uint64_t cache_pages = 0;
    /// Target privacy parameter c; used to derive k via Eq. 6 when
    /// block_size is 0. Must be > 1 (use TrivialPir for c == 1).
    double privacy_c = 2.0;
    /// Explicit block size k; overrides privacy_c when nonzero.
    uint64_t block_size = 0;
    /// Spare dummy pages reserved for future Insert() calls (§4.3).
    uint64_t insert_reserve = 0;
    /// When true, Create() reserves the engine's data structures
    /// (pageMap, pageCache, serverBlock) against the coprocessor's
    /// secure-memory budget and fails if they do not fit (Eq. 7).
    bool enforce_secure_memory = true;

    /// ABLATION (breaks privacy; for experiments only): skip the Fig. 3
    /// line 18 uniformization swap — the evicted cache page always lands
    /// in slot 0 of the scanned block instead of a uniformly random one.
    bool ablation_skip_uniform_swap = false;

    /// ABLATION (breaks privacy; for experiments only): evict cache
    /// slots round-robin instead of uniformly at random, destroying the
    /// geometric residency-time argument behind Eqs. 1-5.
    bool ablation_round_robin_eviction = false;
  };

  /// Per-relocation notification for privacy analysis: page `id` was
  /// written to disk location `loc` while serving request `request_index`.
  using RelocationObserver =
      std::function<void(storage::PageId id, storage::Location loc,
                         uint64_t request_index)>;

  /// Per-cache-entry notification: page `id` entered the secure cache
  /// while serving request `request_index`. Together with the relocation
  /// observer this gives analysis code the ground-truth cache residency
  /// intervals the privacy model (Eqs. 1-5) reasons about.
  using CacheEntryObserver =
      std::function<void(storage::PageId id, uint64_t request_index)>;

  /// Statistics over the engine's lifetime.
  struct Stats {
    uint64_t queries = 0;      // Retrieve + Modify + Remove + Insert.
    uint64_t cache_hits = 0;   // Requested page was cached.
    uint64_t block_hits = 0;   // Requested page sat in the scanned block.
    uint64_t inserts = 0;
    uint64_t removes = 0;
    uint64_t modifies = 0;
  };

  /// Creates an engine on `cpu` (unowned, must outlive the engine).
  /// The coprocessor's disk must have exactly DiskSlots(options) slots
  /// of cpu->sealed_size() bytes. `trace` (optional, unowned) is marked
  /// with one BeginRequest per client operation.
  static Result<std::unique_ptr<CApproxPir>> Create(
      hardware::SecureCoprocessor* cpu, const Options& options,
      storage::AccessTrace* trace = nullptr);

  /// Number of disk slots the engine needs for `options` (real pages +
  /// insert reserve + cache seed, padded to a multiple of k). Errors if
  /// the options are inconsistent.
  static Result<uint64_t> DiskSlots(const Options& options);

  /// Loads the database. `pages[i]` becomes page id i; fewer than
  /// num_pages entries is allowed (missing pages start zero-filled).
  /// Pages are sealed and placed under a fresh in-device permutation.
  /// This is the owner-side bulk load; see ObliviousShuffle for
  /// re-permuting data already resident on the untrusted disk.
  Status Initialize(const std::vector<storage::Page>& pages);

  /// --- PirEngine ---------------------------------------------------------

  /// Fig. 3 Retrieve. Constant cost per call.
  Result<Bytes> Retrieve(storage::PageId id) override;

  /// Retrieve under a distributed-tracing context: when tracing is
  /// enabled (EnableTracing) and `ctx` is active, the round emits an
  /// "engine_round" span with the protocol phases as children. The
  /// context carries only public trace/span ids — never the page id.
  Result<Bytes> TracedRetrieve(storage::PageId id,
                               const obs::TraceContext& ctx) override;

  uint64_t num_pages() const override { return options_.num_pages; }
  size_t page_size() const override { return options_.page_size; }
  const char* name() const override { return "c-approx"; }

  /// --- Updates (§4.3) ----------------------------------------------------

  /// Replaces the payload of page `id`. Indistinguishable from Retrieve.
  Status Modify(storage::PageId id, Bytes data) override;

  /// Deletes page `id`; its slot becomes a spare for Insert().
  /// Indistinguishable from Retrieve.
  Status Remove(storage::PageId id) override;

  /// Inserts a new page, consuming a spare (insert_reserve or previously
  /// Removed) slot; returns its id. Indistinguishable from Retrieve.
  Result<storage::PageId> Insert(Bytes data) override;

  /// §4.3's offline maintenance: "if there are numerous page deletions,
  /// the owner may choose to reshuffle (offline) the whole database in
  /// order to physically remove the deleted pages." Streams every page
  /// through the device, zeroes the payloads of dead/dummy pages (their
  /// stale contents are destroyed), draws a fresh permutation of the
  /// entire id space and rewrites disk and cache. O(n) — run it during
  /// a maintenance window, not per query.
  Status OfflineReshuffle();

  /// Offline key rotation: streams every page through the device,
  /// installs fresh encryption/MAC keys, and rewrites everything
  /// (re-permuted) under them. Combines with OfflineReshuffle's purge of
  /// dead contents. O(n); run during maintenance windows.
  Status RotateKeys();

  /// --- Online retuning (privacy/cost trade-off) --------------------------

  /// Requests an online block-size change to `new_k` — the paper's
  /// central dial (Eq. 5 trades c against the 2(k+1)-page round cost).
  /// The change is NOT applied here: it is deferred to the next
  /// scan-period boundary (block cursor back at slot 0), where swapping
  /// k keeps the round-robin schedule a pure function of public state —
  /// the adversary sees complete scans at the old k followed by
  /// complete scans at the new k, never a query-correlated seam.
  ///
  /// Constraints: `new_k` must divide disk_slots() (the disk is not
  /// repadded online) and satisfy disk_slots() >= 2 * new_k. Growing k
  /// reserves the extra (new_k - k) pages of secure block buffer up
  /// front (Eq. 7) and fails with ResourceExhausted if the device
  /// cannot fit it; shrinking releases the surplus when the transition
  /// applies. Requesting the current size cancels any pending request.
  /// Must be called on the engine's serving thread (like every other
  /// entry point); cross-thread readers use the published_* accessors.
  Status RequestBlockSize(uint64_t new_k);

  /// Pending requested k (0 when no transition is pending). Safe to
  /// read from any thread.
  uint64_t pending_block_size() const {
    return pending_block_size_.load(std::memory_order_relaxed);
  }
  /// Current k as last applied, readable from any thread (the plain
  /// block_size() accessor is serving-thread-only state).
  uint64_t published_block_size() const {
    return published_block_size_.load(std::memory_order_relaxed);
  }
  /// Number of applied block-size transitions over the engine lifetime.
  uint64_t block_size_transitions() const {
    return block_size_transitions_.load(std::memory_order_relaxed);
  }

  /// --- Introspection -----------------------------------------------------

  uint64_t block_size() const { return block_size_; }
  uint64_t scan_period() const { return disk_slots_ / block_size_; }
  uint64_t cache_pages() const { return options_.cache_pages; }
  uint64_t disk_slots() const { return disk_slots_; }
  /// Privacy parameter actually achieved (Eq. 5 with the engine's k).
  double achieved_privacy() const;
  const Stats& stats() const { return stats_; }

  /// --- Observability -----------------------------------------------------

  /// Registers the engine's aggregate instruments in `registry` (unowned;
  /// must outlive the engine) and starts per-query tracing: event
  /// counters, shuffle-epoch/block-cursor gauges, a whole-query latency
  /// histogram and one histogram per protocol phase (pageMap lookup,
  /// block read, decrypt, evict, re-encrypt, write-back). Everything
  /// exported is an aggregate over all requests — per-request page ids
  /// and request indices never reach the registry, so the stats surface
  /// adds nothing to what Eq. 5 already concedes to the adversary.
  ///
  /// All allocation happens here; the per-query cost is a handful of
  /// relaxed atomic ops and clock reads. Pass nullptr to disable, which
  /// restores the zero-overhead, zero-allocation path.
  void EnableMetrics(obs::MetricsRegistry* registry);

  /// Registers an observer called for every cache eviction to disk.
  void set_relocation_observer(RelocationObserver observer) {
    relocation_observer_ = std::move(observer);
  }

  /// Registers an observer called for every page entering the cache.
  void set_cache_entry_observer(CacheEntryObserver observer) {
    cache_entry_observer_ = std::move(observer);
  }

  /// Attaches a span collector (unowned; must outlive the engine, pass
  /// nullptr to detach). Rounds entered via TracedRetrieve with an
  /// active context then emit "engine_round" + per-phase spans labelled
  /// with `trace_shard` (-1 when the engine is not part of a fleet).
  void EnableTracing(obs::Tracer* tracer, int32_t trace_shard = -1);

  /// Attaches the sampling profiler (unowned; must outlive the engine,
  /// nullptr detaches). Head-sampled rounds then push an
  /// "engine_round" root frame with every protocol phase as a child,
  /// giving folded stacks for flame graphs. The sampling decision is
  /// counter-based and the Fig. 3 round has a constant span shape, so
  /// the profile is independent of which page was requested.
  void EnableProfiling(obs::Profiler* profiler) { profiler_ = profiler; }

  /// Attaches the online privacy monitor (unowned; must outlive the
  /// engine, nullptr detaches). The engine feeds it every cache entry
  /// and relocation — inside the trusted boundary, alongside the
  /// analysis observers — and the monitor publishes only window
  /// aggregates (the live c-estimate).
  void AttachPrivacyMonitor(obs::PrivacyMonitor* monitor) {
    privacy_monitor_ = monitor;
  }

  /// --- Persistence ---------------------------------------------------

  /// Serializes the engine's secure state (pageMap, cache contents,
  /// liveness, counters) so a deployment over a persistent disk can be
  /// resumed. The blob contains plaintext cache pages and the location
  /// map — it must stay inside the trusted boundary or be wrapped with
  /// crypto::BlobCipher before leaving it. The coprocessor keys are NOT
  /// included; recreate the device with the same seed (or key escrow).
  Result<Bytes> SerializeState() const;

  /// Restores a serialized state onto a freshly Create()d engine whose
  /// options and disk geometry match the snapshot. Replaces
  /// Initialize().
  Status RestoreState(ByteSpan state);

  /// Ground-truth location of a page (test/analysis hook; a physical
  /// device would never expose this).
  Result<storage::Location> DebugLocation(storage::PageId id) const;
  /// Whether the page currently sits in the secure cache (test hook).
  bool DebugIsCached(storage::PageId id) const;

  ~CApproxPir() override;

  CApproxPir(const CApproxPir&) = delete;
  CApproxPir& operator=(const CApproxPir&) = delete;

 private:
  CApproxPir(hardware::SecureCoprocessor* cpu, const Options& options,
             storage::AccessTrace* trace, uint64_t block_size,
             uint64_t disk_slots, uint64_t reserved_bytes);

  /// One round of the Fig. 3 protocol. `request` is the id driving the
  /// round (the real target, or a forced spare for Insert); it crosses
  /// into the round wrapped in Secret<> — the round is the trust
  /// boundary within which secret-dependent control flow is permitted
  /// (and audited via shpir-lint-allow). The hooks customize the update
  /// operations; see the .cc for the contract.
  struct RoundOutcome {
    Bytes result;  // Payload of the requested page (pre-modification).
  };
  Result<RoundOutcome> RunRound(common::Secret<storage::PageId> request,
                                const Bytes* replace_data, bool force_evict,
                                bool insert_mode, storage::PageId insert_id,
                                const Bytes* insert_data);

  /// Shared body of OfflineReshuffle()/RotateKeys().
  Status ReshuffleInternal(bool rotate_keys);

  /// Applies a pending block-size request. Called from RunRound only
  /// when the block cursor sits at a scan-period boundary.
  void ApplyPendingBlockSize();

  /// Block size the NEXT round will scan with: the pending size when
  /// the cursor is at a boundary (the transition applies before the
  /// read), the current size otherwise.
  uint64_t NextRoundBlockSize() const {
    const uint64_t pending =
        pending_block_size_.load(std::memory_order_relaxed);
    return (next_block_ == 0 && pending != 0) ? pending : block_size_;
  }

  /// Draws a uniformly random id that is neither cached nor located in
  /// the current block [block_start, block_start + k).
  storage::PageId RandomUncachedOutsideBlock(storage::Location block_start);

  bool InBlock(storage::Location loc, storage::Location block_start) const {
    return loc >= block_start && loc < block_start + block_size_;
  }

  bool IsLive(storage::PageId id) const {
    // shpir-lint-allow-next-line(secret-index): in-device liveness bitmap; only the presence or absence of the ensuing round is ever visible outside
    return id < live_.size() && live_[id];
  }

  hardware::SecureCoprocessor* cpu_;
  Options options_;
  storage::AccessTrace* trace_;

  uint64_t block_size_;   // k
  uint64_t disk_slots_;   // Padded disk size.
  uint64_t id_space_;     // disk_slots_ + m.
  uint64_t reserved_bytes_;  // Secure memory charged (Create + retunes).
  /// Largest k the current secure-memory reservation covers: max of the
  /// applied and any pending block size while a transition is in flight.
  uint64_t reserved_block_size_;

  /// Online retune state. Written on the serving thread only; the
  /// atomics exist so controllers/status paths on other threads can
  /// read k without racing the round (TSan-clean mirrors).
  std::atomic<uint64_t> pending_block_size_{0};
  std::atomic<uint64_t> published_block_size_;
  std::atomic<uint64_t> block_size_transitions_{0};

  /// The pageMap and pageCache are the secret state of the protocol:
  /// which ids are cached (and where anything lives) is exactly what
  /// Eq. 5 bounds the adversary's knowledge of.
  SHPIR_SECRET PageMap page_map_;
  SHPIR_SECRET std::vector<storage::Page> page_cache_;  // m pages.
  std::vector<bool> live_;                 // Client-visible ids.
  std::vector<storage::PageId> free_ids_;  // Spares available to Insert.
  uint64_t next_block_ = 0;                // Round-robin block cursor.
  bool initialized_ = false;

  Stats stats_;
  RelocationObserver relocation_observer_;
  CacheEntryObserver cache_entry_observer_;
  obs::PrivacyMonitor* privacy_monitor_ = nullptr;

  /// Distributed tracing: TracedRetrieve parks the caller's context
  /// here for the duration of the round (the engine is single-threaded
  /// per instance; see ThreadSafeEngine / the shard dispatcher).
  obs::Tracer* tracer_ = nullptr;
  int32_t trace_shard_ = -1;
  obs::TraceContext pending_trace_;

  /// Continuous profiling; null until EnableProfiling().
  obs::Profiler* profiler_ = nullptr;

  /// Aggregate instruments; all null until EnableMetrics().
  struct Instruments {
    obs::Counter* queries = nullptr;
    obs::Counter* cache_hits = nullptr;
    obs::Counter* block_hits = nullptr;
    obs::Counter* evictions = nullptr;
    obs::Counter* inserts = nullptr;
    obs::Counter* removes = nullptr;
    obs::Counter* modifies = nullptr;
    obs::Counter* reshuffles = nullptr;
    obs::Counter* key_rotations = nullptr;
    obs::Gauge* block_cursor = nullptr;
    obs::Gauge* achieved_privacy_c = nullptr;
    obs::Gauge* block_size_k = nullptr;
    obs::Gauge* cache_pages_m = nullptr;
    obs::Histogram* query_latency_ns = nullptr;
    obs::PhaseHistograms phases{};
  };
  Instruments instruments_;
  bool metered() const { return instruments_.queries != nullptr; }
};

}  // namespace shpir::core

#endif  // SHPIR_CORE_CAPPROX_PIR_H_
