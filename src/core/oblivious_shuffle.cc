#include "core/oblivious_shuffle.h"

#include <utility>

#include "crypto/permutation.h"

namespace shpir::core {

void BatcherNetwork(uint64_t n,
                    const std::function<void(uint64_t, uint64_t)>& visit) {
  if (n < 2) {
    return;
  }
  // Knuth TAOCP vol. 3, Algorithm 5.2.2M (Batcher's merge exchange),
  // valid for arbitrary n.
  uint64_t t = 1;
  while ((1ull << t) < n) {
    ++t;
  }
  for (uint64_t p = 1ull << (t - 1); p > 0; p >>= 1) {
    uint64_t q = 1ull << (t - 1);
    uint64_t r = 0;
    uint64_t d = p;
    while (true) {
      for (uint64_t i = 0; i + d < n; ++i) {
        if ((i & p) == r) {
          visit(i, i + d);
        }
      }
      if (q == p) {
        break;
      }
      d = q - p;
      q >>= 1;
      r = p;
    }
  }
}

Result<std::vector<uint64_t>> ObliviousShuffle(
    hardware::SecureCoprocessor& cpu, uint64_t n) {
  storage::Disk* disk = cpu.disk();
  if (n > disk->num_slots()) {
    return InvalidArgumentError("shuffle range exceeds disk size");
  }
  // Target slot for the page currently in each slot, drawn inside the
  // trusted boundary.
  std::vector<uint64_t> perm = crypto::RandomPermutation(n, cpu.rng());
  // slot_content[s] = original slot index of the page now held in slot s.
  std::vector<uint64_t> slot_content(n);
  for (uint64_t i = 0; i < n; ++i) {
    slot_content[i] = i;
  }

  Status status = OkStatus();
  BatcherNetwork(n, [&](uint64_t i, uint64_t j) {
    if (!status.ok()) {
      return;
    }
    // Identical I/O on both branches: read both, decrypt, conditionally
    // swap, re-encrypt with fresh nonces, write both back.
    Result<Bytes> sealed_i = cpu.ReadSlot(i);
    if (!sealed_i.ok()) {
      status = sealed_i.status();
      return;
    }
    Result<Bytes> sealed_j = cpu.ReadSlot(j);
    if (!sealed_j.ok()) {
      status = sealed_j.status();
      return;
    }
    Result<storage::Page> page_i = cpu.OpenPage(*sealed_i);
    Result<storage::Page> page_j = cpu.OpenPage(*sealed_j);
    if (!page_i.ok() || !page_j.ok()) {
      status = page_i.ok() ? page_j.status() : page_i.status();
      return;
    }
    const bool swap = perm[slot_content[i]] > perm[slot_content[j]];
    if (swap) {
      std::swap(*page_i, *page_j);
      std::swap(slot_content[i], slot_content[j]);
    }
    Result<Bytes> out_i = cpu.SealPage(*page_i);
    Result<Bytes> out_j = cpu.SealPage(*page_j);
    if (!out_i.ok() || !out_j.ok()) {
      status = out_i.ok() ? out_j.status() : out_i.status();
      return;
    }
    Status w = cpu.WriteSlot(i, *out_i);
    if (w.ok()) {
      w = cpu.WriteSlot(j, *out_j);
    }
    if (!w.ok()) {
      status = w;
    }
  });
  SHPIR_RETURN_IF_ERROR(status);
  return perm;
}

}  // namespace shpir::core
