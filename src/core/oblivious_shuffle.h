#ifndef SHPIR_CORE_OBLIVIOUS_SHUFFLE_H_
#define SHPIR_CORE_OBLIVIOUS_SHUFFLE_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "common/result.h"
#include "hardware/coprocessor.h"

namespace shpir::core {

/// Emits every compare-exchange pair (i, j), i < j, of Batcher's
/// odd-even merge sorting network for `n` elements (arbitrary n). The
/// sequence depends only on n — it is data-oblivious by construction.
void BatcherNetwork(uint64_t n,
                    const std::function<void(uint64_t, uint64_t)>& visit);

/// Obliviously permutes the `n` sealed slots of the coprocessor's disk.
///
/// The target permutation is drawn inside the device and kept in secure
/// memory (the same O(n log n)-bit budget class as the scheme's pageMap).
/// Physically, the slots are routed through Batcher's sorting network:
/// each compare-exchange reads two slots, decrypts, conditionally swaps
/// by permutation rank, re-encrypts both with fresh nonces and writes
/// them back. The adversary observes a fixed, data-independent access
/// pattern and unlinkable ciphertexts, so it learns nothing about the
/// permutation — this is the paper's "obliviously permutes the database
/// pages" step for data already resident on the untrusted disk.
///
/// Returns the permutation applied: result[slot_before] == slot_after.
Result<std::vector<uint64_t>> ObliviousShuffle(
    hardware::SecureCoprocessor& cpu, uint64_t n);

}  // namespace shpir::core

#endif  // SHPIR_CORE_OBLIVIOUS_SHUFFLE_H_
