#include "core/page_map.h"

#include <cmath>

namespace shpir::core {

uint64_t PageMap::StorageBytes(uint64_t num_ids) {
  if (num_ids == 0) {
    return 0;
  }
  uint64_t log2n = 0;
  while ((1ull << log2n) < num_ids) {
    ++log2n;
  }
  const uint64_t bits = num_ids * (log2n + 1);
  return (bits + 7) / 8;
}

}  // namespace shpir::core
