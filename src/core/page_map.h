#ifndef SHPIR_CORE_PAGE_MAP_H_
#define SHPIR_CORE_PAGE_MAP_H_

#include <cstdint>
#include <vector>

#include "common/check.h"
#include "common/secret.h"
#include "storage/page.h"

namespace shpir::core {

/// The look-up table kept inside the secure hardware (paper Fig. 2):
/// one entry per page id holding an inCache bit and a position whose
/// meaning depends on the bit — a pageCache index when cached, a disk
/// location otherwise.
class PageMap {
 public:
  /// Creates a map for `num_ids` page ids, all initially on disk at
  /// location 0 (callers must place every id before use).
  explicit PageMap(uint64_t num_ids)
      : in_cache_(num_ids, false), position_(num_ids, 0) {}

  uint64_t size() const { return position_.size(); }

  bool IsCached(storage::PageId id) const {
    SHPIR_CHECK(id < size());
    return in_cache_[id];
  }

  /// Disk location (valid only when !IsCached(id)).
  storage::Location DiskLocation(storage::PageId id) const {
    SHPIR_CHECK(id < size());
    SHPIR_CHECK(!in_cache_[id]);
    return position_[id];
  }

  /// pageCache index (valid only when IsCached(id)).
  uint64_t CacheIndex(storage::PageId id) const {
    SHPIR_CHECK(id < size());
    SHPIR_CHECK(in_cache_[id]);
    return position_[id];
  }

  void SetDiskLocation(storage::PageId id, storage::Location loc) {
    SHPIR_CHECK(id < size());
    in_cache_[id] = false;
    position_[id] = loc;
  }

  void SetCacheIndex(storage::PageId id, uint64_t index) {
    SHPIR_CHECK(id < size());
    in_cache_[id] = true;
    position_[id] = index;
  }

  /// Secure-memory footprint in bytes for `num_ids` entries: the paper's
  /// n*(log2(n) + 1) bits (Eq. 7), rounded up to whole bytes.
  static uint64_t StorageBytes(uint64_t num_ids);

 private:
  /// Both tables live in secure memory and key on the (secret) page id;
  /// their contents decide cache hits, so every read is secret-derived.
  SHPIR_SECRET std::vector<bool> in_cache_;
  SHPIR_SECRET std::vector<uint64_t> position_;
};

}  // namespace shpir::core

#endif  // SHPIR_CORE_PAGE_MAP_H_
