#ifndef SHPIR_CORE_PIR_ENGINE_H_
#define SHPIR_CORE_PIR_ENGINE_H_

#include <cstdint>
#include <string>

#include "common/bytes.h"
#include "common/result.h"
#include "obs/trace.h"
#include "storage/page.h"

namespace shpir::core {

/// Common interface for private page-retrieval engines: the paper's
/// c-approximate scheme and the baselines it is compared against
/// (trivial PIR, Wang et al., pyramid ORAM). Clients ask for a page id
/// and get its payload; every engine hides (to its own degree) *which*
/// id was asked from the adversary observing the disk.
class PirEngine {
 public:
  virtual ~PirEngine() = default;

  /// Retrieves the payload of page `id`.
  virtual Result<Bytes> Retrieve(storage::PageId id) = 0;

  /// Retrieve with a distributed-tracing context: engines that emit
  /// spans parent them under `ctx`. The default ignores the context so
  /// baselines stay trace-oblivious. The context is public metadata
  /// (trace/span ids, sampling flag) — never derived from `id`.
  virtual Result<Bytes> TracedRetrieve(storage::PageId id,
                                       const obs::TraceContext& ctx) {
    (void)ctx;
    return Retrieve(id);
  }

  /// --- Updates (§4.3; optional) ---------------------------------------
  ///
  /// Engines that support private updates override these; the defaults
  /// report Unimplemented so read-only baselines stay minimal. Every
  /// override must make updates indistinguishable from Retrieve on the
  /// adversary-visible access pattern.

  /// Replaces the payload of page `id`.
  virtual Status Modify(storage::PageId id, Bytes data) {
    (void)id;
    (void)data;
    return UnimplementedError(std::string(name()) +
                              " does not support Modify");
  }

  /// Deletes page `id`.
  virtual Status Remove(storage::PageId id) {
    (void)id;
    return UnimplementedError(std::string(name()) +
                              " does not support Remove");
  }

  /// Inserts a new page; returns its id.
  virtual Result<storage::PageId> Insert(Bytes data) {
    (void)data;
    return UnimplementedError(std::string(name()) +
                              " does not support Insert");
  }

  /// Number of client-addressable pages.
  virtual uint64_t num_pages() const = 0;

  /// Page payload size B in bytes.
  virtual size_t page_size() const = 0;

  /// Human-readable engine name for benchmark tables.
  virtual const char* name() const = 0;
};

}  // namespace shpir::core

#endif  // SHPIR_CORE_PIR_ENGINE_H_
