#include "core/security_parameter.h"

#include <cmath>

namespace shpir::core {

Result<uint64_t> SecurityParameter::BlockSize(uint64_t n, uint64_t m,
                                              double c) {
  if (n < 2) {
    return InvalidArgumentError("database must have at least 2 pages");
  }
  if (m < 2) {
    return InvalidArgumentError("cache must hold at least 2 pages");
  }
  if (c < 1.0) {
    return InvalidArgumentError("privacy parameter c must be >= 1");
  }
  if (c == 1.0) {
    // Perfect privacy: the whole database per request (trivial PIR).
    return n;
  }
  // Eq. 6 derives k = n / T* with the real-valued scan period
  // T* = log(1/c)/log(1-1/m) + 1. The achieved privacy depends on the
  // *integer* scan period, so take the largest integer T <= T* (every
  // T <= T* satisfies (1-1/m)^-(T-1) <= c) and read k off it. This
  // agrees with the paper's closed form up to rounding and never
  // delivers worse privacy than requested.
  const double t_real =
      std::log(1.0 / c) / std::log1p(-1.0 / static_cast<double>(m)) + 1.0;
  const uint64_t t = static_cast<uint64_t>(std::floor(t_real));
  if (t < 2) {
    // Even a two-block scan exceeds the privacy budget; only the trivial
    // full scan achieves this c.
    return n;
  }
  uint64_t k = (n + t - 1) / t;  // ceil(n / T).
  if (k < 1) {
    k = 1;
  }
  if (k > n) {
    k = n;
  }
  return k;
}

Result<double> SecurityParameter::PrivacyOf(uint64_t n, uint64_t m,
                                            uint64_t k) {
  if (k < 1 || k > n) {
    return InvalidArgumentError("block size k must be in [1, n]");
  }
  if (m < 2) {
    return InvalidArgumentError("cache must hold at least 2 pages");
  }
  const uint64_t T = ScanPeriod(n, k);
  // Eq. 5: c = (1 - 1/m)^-(T-1).
  return std::exp(-static_cast<double>(T - 1) *
                  std::log1p(-1.0 / static_cast<double>(m)));
}

uint64_t SecurityParameter::ScanPeriod(uint64_t n, uint64_t k) {
  return (n + k - 1) / k;
}

double SecurityParameter::EvictionProbability(uint64_t m, uint64_t t) {
  if (t < 1 || m < 1) {
    return 0.0;
  }
  // Eq. 1: (1 - 1/m)^(t-1) * 1/m.
  const double stay = 1.0 - 1.0 / static_cast<double>(m);
  return std::pow(stay, static_cast<double>(t - 1)) /
         static_cast<double>(m);
}

double SecurityParameter::LocationProbability(uint64_t m, uint64_t k,
                                              uint64_t T, uint64_t b) {
  if (b < 1 || b > T) {
    return 0.0;
  }
  // Sum over cycles x >= 0 of Eq. 1 at t = b + x*T, split over the k
  // locations of the block:
  //   (1/m)(1/k) (1-1/m)^(b-1) / (1 - (1-1/m)^T)    (Eqs. 3-4 closed form)
  const double stay = 1.0 - 1.0 / static_cast<double>(m);
  const double numer = std::pow(stay, static_cast<double>(b - 1));
  const double cycle = 1.0 - std::pow(stay, static_cast<double>(T));
  return numer / (static_cast<double>(m) * static_cast<double>(k) * cycle);
}

std::vector<double> SecurityParameter::BlockDistribution(uint64_t m,
                                                         uint64_t k,
                                                         uint64_t T) {
  std::vector<double> dist(T);
  for (uint64_t b = 1; b <= T; ++b) {
    dist[b - 1] = LocationProbability(m, k, T, b) * static_cast<double>(k);
  }
  return dist;
}

}  // namespace shpir::core
