#ifndef SHPIR_CORE_SECURITY_PARAMETER_H_
#define SHPIR_CORE_SECURITY_PARAMETER_H_

#include <cstdint>
#include <vector>

#include "common/result.h"

namespace shpir::core {

/// Analytic model of the scheme's privacy (paper §4.2, Eqs. 1–6).
///
/// A page entering the cache leaves it after a geometrically distributed
/// number of requests (randomized eviction over m slots). Because blocks
/// are scanned round-robin with period T = n/k, the page's relocation
/// target distribution over disk locations decays geometrically across
/// the scan, and the max/min probability ratio equals
///   c = (1 - 1/m)^-(T-1)            (Eq. 5)
/// which inverts to the security parameter
///   k = n / (log(1/c)/log(1-1/m) + 1)   (Eq. 6).
class SecurityParameter {
 public:
  /// Eq. 6: smallest block size k that achieves privacy parameter `c`
  /// for a database of `n` pages with a cache of `m` pages. Requires
  /// n >= 2, m >= 2 and c > 1 (c == 1 is trivial PIR: read everything).
  /// The result is clamped to [1, n].
  static Result<uint64_t> BlockSize(uint64_t n, uint64_t m, double c);

  /// Eq. 5 inverted: the privacy parameter c actually provided by block
  /// size `k` (the max/min location-probability ratio). T is computed as
  /// ceil(n/k). Requires k in [1, n], m >= 2.
  static Result<double> PrivacyOf(uint64_t n, uint64_t m, uint64_t k);

  /// Scan period T = ceil(n/k): number of requests to touch every disk
  /// location once.
  static uint64_t ScanPeriod(uint64_t n, uint64_t k);

  /// Eq. 1: probability that a page cached at t = 0 moves back to disk
  /// exactly at request t >= 1, with cache size m.
  static double EvictionProbability(uint64_t m, uint64_t t);

  /// Eqs. 2–4 summed over all scan cycles: probability that the page
  /// relocates to a *specific location* of the block visited b requests
  /// after it entered the cache (b in [1, T]). Locations in the first
  /// visited block (b = 1) are the most likely targets; b = T the least.
  static double LocationProbability(uint64_t m, uint64_t k, uint64_t T,
                                    uint64_t b);

  /// Full per-block relocation distribution: element b-1 is
  /// LocationProbability(m, k, T, b) * k, i.e. the probability of landing
  /// anywhere in the b-th visited block. Sums to 1.
  static std::vector<double> BlockDistribution(uint64_t m, uint64_t k,
                                               uint64_t T);
};

}  // namespace shpir::core

#endif  // SHPIR_CORE_SECURITY_PARAMETER_H_
