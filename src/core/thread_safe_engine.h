#ifndef SHPIR_CORE_THREAD_SAFE_ENGINE_H_
#define SHPIR_CORE_THREAD_SAFE_ENGINE_H_

#include <utility>

#include "common/mutex.h"
#include "core/pir_engine.h"

namespace shpir::core {

/// Serializing decorator for multi-client deployments: the engines are
/// inherently single-threaded (each query mutates the device cache and
/// the disk layout), so concurrent clients must take turns — exactly
/// like the physical coprocessor, which processes one request at a
/// time. Wrap any PirEngine to make Retrieve callable from multiple
/// threads; the queueing this induces under load is what
/// bench_queueing quantifies.
class ThreadSafeEngine : public PirEngine {
 public:
  /// `inner` is unowned and must outlive the wrapper.
  explicit ThreadSafeEngine(PirEngine* inner) : inner_(inner) {}

  Result<Bytes> Retrieve(storage::PageId id) override {
    common::MutexLock lock(mutex_);
    return inner_->Retrieve(id);
  }

  Result<Bytes> TracedRetrieve(storage::PageId id,
                               const obs::TraceContext& ctx) override {
    common::MutexLock lock(mutex_);
    return inner_->TracedRetrieve(id, ctx);
  }

  Status Modify(storage::PageId id, Bytes data) override {
    common::MutexLock lock(mutex_);
    return inner_->Modify(id, std::move(data));
  }

  Status Remove(storage::PageId id) override {
    common::MutexLock lock(mutex_);
    return inner_->Remove(id);
  }

  Result<storage::PageId> Insert(Bytes data) override {
    common::MutexLock lock(mutex_);
    return inner_->Insert(std::move(data));
  }

  uint64_t num_pages() const override {
    common::MutexLock lock(mutex_);
    return inner_->num_pages();
  }
  size_t page_size() const override {
    common::MutexLock lock(mutex_);
    return inner_->page_size();
  }
  const char* name() const override {
    common::MutexLock lock(mutex_);
    return inner_->name();
  }

 private:
  /// The pointer is fixed at construction; the engine behind it is what
  /// the mutex serializes.
  PirEngine* const inner_ PT_GUARDED_BY(mutex_);
  mutable common::Mutex mutex_;
};

}  // namespace shpir::core

#endif  // SHPIR_CORE_THREAD_SAFE_ENGINE_H_
