#include "crypto/aes.h"

#include <cstring>

namespace shpir::crypto {

namespace {

// FIPS 197 S-box.
constexpr uint8_t kSbox[256] = {
    0x63, 0x7c, 0x77, 0x7b, 0xf2, 0x6b, 0x6f, 0xc5, 0x30, 0x01, 0x67, 0x2b,
    0xfe, 0xd7, 0xab, 0x76, 0xca, 0x82, 0xc9, 0x7d, 0xfa, 0x59, 0x47, 0xf0,
    0xad, 0xd4, 0xa2, 0xaf, 0x9c, 0xa4, 0x72, 0xc0, 0xb7, 0xfd, 0x93, 0x26,
    0x36, 0x3f, 0xf7, 0xcc, 0x34, 0xa5, 0xe5, 0xf1, 0x71, 0xd8, 0x31, 0x15,
    0x04, 0xc7, 0x23, 0xc3, 0x18, 0x96, 0x05, 0x9a, 0x07, 0x12, 0x80, 0xe2,
    0xeb, 0x27, 0xb2, 0x75, 0x09, 0x83, 0x2c, 0x1a, 0x1b, 0x6e, 0x5a, 0xa0,
    0x52, 0x3b, 0xd6, 0xb3, 0x29, 0xe3, 0x2f, 0x84, 0x53, 0xd1, 0x00, 0xed,
    0x20, 0xfc, 0xb1, 0x5b, 0x6a, 0xcb, 0xbe, 0x39, 0x4a, 0x4c, 0x58, 0xcf,
    0xd0, 0xef, 0xaa, 0xfb, 0x43, 0x4d, 0x33, 0x85, 0x45, 0xf9, 0x02, 0x7f,
    0x50, 0x3c, 0x9f, 0xa8, 0x51, 0xa3, 0x40, 0x8f, 0x92, 0x9d, 0x38, 0xf5,
    0xbc, 0xb6, 0xda, 0x21, 0x10, 0xff, 0xf3, 0xd2, 0xcd, 0x0c, 0x13, 0xec,
    0x5f, 0x97, 0x44, 0x17, 0xc4, 0xa7, 0x7e, 0x3d, 0x64, 0x5d, 0x19, 0x73,
    0x60, 0x81, 0x4f, 0xdc, 0x22, 0x2a, 0x90, 0x88, 0x46, 0xee, 0xb8, 0x14,
    0xde, 0x5e, 0x0b, 0xdb, 0xe0, 0x32, 0x3a, 0x0a, 0x49, 0x06, 0x24, 0x5c,
    0xc2, 0xd3, 0xac, 0x62, 0x91, 0x95, 0xe4, 0x79, 0xe7, 0xc8, 0x37, 0x6d,
    0x8d, 0xd5, 0x4e, 0xa9, 0x6c, 0x56, 0xf4, 0xea, 0x65, 0x7a, 0xae, 0x08,
    0xba, 0x78, 0x25, 0x2e, 0x1c, 0xa6, 0xb4, 0xc6, 0xe8, 0xdd, 0x74, 0x1f,
    0x4b, 0xbd, 0x8b, 0x8a, 0x70, 0x3e, 0xb5, 0x66, 0x48, 0x03, 0xf6, 0x0e,
    0x61, 0x35, 0x57, 0xb9, 0x86, 0xc1, 0x1d, 0x9e, 0xe1, 0xf8, 0x98, 0x11,
    0x69, 0xd9, 0x8e, 0x94, 0x9b, 0x1e, 0x87, 0xe9, 0xce, 0x55, 0x28, 0xdf,
    0x8c, 0xa1, 0x89, 0x0d, 0xbf, 0xe6, 0x42, 0x68, 0x41, 0x99, 0x2d, 0x0f,
    0xb0, 0x54, 0xbb, 0x16};

// Inverse S-box.
constexpr uint8_t kInvSbox[256] = {
    0x52, 0x09, 0x6a, 0xd5, 0x30, 0x36, 0xa5, 0x38, 0xbf, 0x40, 0xa3, 0x9e,
    0x81, 0xf3, 0xd7, 0xfb, 0x7c, 0xe3, 0x39, 0x82, 0x9b, 0x2f, 0xff, 0x87,
    0x34, 0x8e, 0x43, 0x44, 0xc4, 0xde, 0xe9, 0xcb, 0x54, 0x7b, 0x94, 0x32,
    0xa6, 0xc2, 0x23, 0x3d, 0xee, 0x4c, 0x95, 0x0b, 0x42, 0xfa, 0xc3, 0x4e,
    0x08, 0x2e, 0xa1, 0x66, 0x28, 0xd9, 0x24, 0xb2, 0x76, 0x5b, 0xa2, 0x49,
    0x6d, 0x8b, 0xd1, 0x25, 0x72, 0xf8, 0xf6, 0x64, 0x86, 0x68, 0x98, 0x16,
    0xd4, 0xa4, 0x5c, 0xcc, 0x5d, 0x65, 0xb6, 0x92, 0x6c, 0x70, 0x48, 0x50,
    0xfd, 0xed, 0xb9, 0xda, 0x5e, 0x15, 0x46, 0x57, 0xa7, 0x8d, 0x9d, 0x84,
    0x90, 0xd8, 0xab, 0x00, 0x8c, 0xbc, 0xd3, 0x0a, 0xf7, 0xe4, 0x58, 0x05,
    0xb8, 0xb3, 0x45, 0x06, 0xd0, 0x2c, 0x1e, 0x8f, 0xca, 0x3f, 0x0f, 0x02,
    0xc1, 0xaf, 0xbd, 0x03, 0x01, 0x13, 0x8a, 0x6b, 0x3a, 0x91, 0x11, 0x41,
    0x4f, 0x67, 0xdc, 0xea, 0x97, 0xf2, 0xcf, 0xce, 0xf0, 0xb4, 0xe6, 0x73,
    0x96, 0xac, 0x74, 0x22, 0xe7, 0xad, 0x35, 0x85, 0xe2, 0xf9, 0x37, 0xe8,
    0x1c, 0x75, 0xdf, 0x6e, 0x47, 0xf1, 0x1a, 0x71, 0x1d, 0x29, 0xc5, 0x89,
    0x6f, 0xb7, 0x62, 0x0e, 0xaa, 0x18, 0xbe, 0x1b, 0xfc, 0x56, 0x3e, 0x4b,
    0xc6, 0xd2, 0x79, 0x20, 0x9a, 0xdb, 0xc0, 0xfe, 0x78, 0xcd, 0x5a, 0xf4,
    0x1f, 0xdd, 0xa8, 0x33, 0x88, 0x07, 0xc7, 0x31, 0xb1, 0x12, 0x10, 0x59,
    0x27, 0x80, 0xec, 0x5f, 0x60, 0x51, 0x7f, 0xa9, 0x19, 0xb5, 0x4a, 0x0d,
    0x2d, 0xe5, 0x7a, 0x9f, 0x93, 0xc9, 0x9c, 0xef, 0xa0, 0xe0, 0x3b, 0x4d,
    0xae, 0x2a, 0xf5, 0xb0, 0xc8, 0xeb, 0xbb, 0x3c, 0x83, 0x53, 0x99, 0x61,
    0x17, 0x2b, 0x04, 0x7e, 0xba, 0x77, 0xd6, 0x26, 0xe1, 0x69, 0x14, 0x63,
    0x55, 0x21, 0x0c, 0x7d};

// Round constants for the key schedule.
constexpr uint8_t kRcon[11] = {0x00, 0x01, 0x02, 0x04, 0x08, 0x10,
                               0x20, 0x40, 0x80, 0x1b, 0x36};

// GF(2^8) multiply modulo x^8+x^4+x^3+x+1, constexpr for table building.
constexpr uint8_t GfMul(uint8_t a, uint8_t b) {
  uint8_t result = 0;
  for (int i = 0; i < 8; ++i) {
    if (b & 1) {
      result ^= a;
    }
    const uint8_t high = static_cast<uint8_t>(a & 0x80);
    a = static_cast<uint8_t>(a << 1);
    if (high) {
      a ^= 0x1b;
    }
    b >>= 1;
  }
  return result;
}

// Encryption T-table: T0[x] packs MixColumns({02,01,01,03} * S(x)).
// T1..T3 are byte rotations of T0.
constexpr std::array<uint32_t, 256> MakeEncTable() {
  std::array<uint32_t, 256> table{};
  for (int x = 0; x < 256; ++x) {
    const uint8_t s = kSbox[x];
    table[x] = (static_cast<uint32_t>(GfMul(s, 2)) << 24) |
               (static_cast<uint32_t>(s) << 16) |
               (static_cast<uint32_t>(s) << 8) |
               static_cast<uint32_t>(GfMul(s, 3));
  }
  return table;
}

// Decryption T-table: D0[x] packs InvMixColumns({0e,09,0d,0b} * IS(x)).
constexpr std::array<uint32_t, 256> MakeDecTable() {
  std::array<uint32_t, 256> table{};
  for (int x = 0; x < 256; ++x) {
    const uint8_t s = kInvSbox[x];
    table[x] = (static_cast<uint32_t>(GfMul(s, 0x0e)) << 24) |
               (static_cast<uint32_t>(GfMul(s, 0x09)) << 16) |
               (static_cast<uint32_t>(GfMul(s, 0x0d)) << 8) |
               static_cast<uint32_t>(GfMul(s, 0x0b));
  }
  return table;
}

constexpr std::array<uint32_t, 256> kTe = MakeEncTable();
constexpr std::array<uint32_t, 256> kTd = MakeDecTable();

inline uint32_t Ror8(uint32_t x) { return (x >> 8) | (x << 24); }

inline uint32_t Te0(uint8_t x) { return kTe[x]; }
inline uint32_t Te1(uint8_t x) { return Ror8(kTe[x]); }
inline uint32_t Te2(uint8_t x) { return Ror8(Ror8(kTe[x])); }
inline uint32_t Te3(uint8_t x) { return Ror8(Ror8(Ror8(kTe[x]))); }
inline uint32_t Td0(uint8_t x) { return kTd[x]; }
inline uint32_t Td1(uint8_t x) { return Ror8(kTd[x]); }
inline uint32_t Td2(uint8_t x) { return Ror8(Ror8(kTd[x])); }
inline uint32_t Td3(uint8_t x) { return Ror8(Ror8(Ror8(kTd[x]))); }

// InvMixColumns on a packed big-endian column word (for the decryption
// key schedule of the equivalent inverse cipher).
uint32_t InvMixColumnsWord(uint32_t w) {
  const uint8_t a0 = static_cast<uint8_t>(w >> 24);
  const uint8_t a1 = static_cast<uint8_t>(w >> 16);
  const uint8_t a2 = static_cast<uint8_t>(w >> 8);
  const uint8_t a3 = static_cast<uint8_t>(w);
  const uint8_t b0 = static_cast<uint8_t>(GfMul(a0, 0x0e) ^ GfMul(a1, 0x0b) ^
                                          GfMul(a2, 0x0d) ^ GfMul(a3, 0x09));
  const uint8_t b1 = static_cast<uint8_t>(GfMul(a0, 0x09) ^ GfMul(a1, 0x0e) ^
                                          GfMul(a2, 0x0b) ^ GfMul(a3, 0x0d));
  const uint8_t b2 = static_cast<uint8_t>(GfMul(a0, 0x0d) ^ GfMul(a1, 0x09) ^
                                          GfMul(a2, 0x0e) ^ GfMul(a3, 0x0b));
  const uint8_t b3 = static_cast<uint8_t>(GfMul(a0, 0x0b) ^ GfMul(a1, 0x0d) ^
                                          GfMul(a2, 0x09) ^ GfMul(a3, 0x0e));
  return (static_cast<uint32_t>(b0) << 24) |
         (static_cast<uint32_t>(b1) << 16) |
         (static_cast<uint32_t>(b2) << 8) | static_cast<uint32_t>(b3);
}

inline uint32_t LoadWordBE(const uint8_t* p) {
  return (static_cast<uint32_t>(p[0]) << 24) |
         (static_cast<uint32_t>(p[1]) << 16) |
         (static_cast<uint32_t>(p[2]) << 8) | static_cast<uint32_t>(p[3]);
}

inline void StoreWordBE(uint32_t v, uint8_t* p) {
  p[0] = static_cast<uint8_t>(v >> 24);
  p[1] = static_cast<uint8_t>(v >> 16);
  p[2] = static_cast<uint8_t>(v >> 8);
  p[3] = static_cast<uint8_t>(v);
}

}  // namespace

Result<Aes> Aes::Create(ByteSpan key) {
  if (key.size() != 16 && key.size() != 24 && key.size() != 32) {
    return InvalidArgumentError("AES key must be 16, 24 or 32 bytes");
  }
  Aes aes;
  aes.rounds_ = static_cast<int>(key.size() / 4) + 6;
  aes.ExpandKey(key);
  return aes;
}

void Aes::ExpandKey(ByteSpan key) {
  const int nk = static_cast<int>(key.size() / 4);  // Key length in words.
  const int total_words = 4 * (rounds_ + 1);
  // Byte-oriented FIPS 197 schedule into a scratch buffer.
  uint8_t w[240];
  std::memcpy(w, key.data(), key.size());
  for (int i = nk; i < total_words; ++i) {
    uint8_t temp[4];
    std::memcpy(temp, w + 4 * (i - 1), 4);
    if (i % nk == 0) {
      // RotWord + SubWord + Rcon.
      const uint8_t t0 = temp[0];
      temp[0] = static_cast<uint8_t>(kSbox[temp[1]] ^ kRcon[i / nk]);
      temp[1] = kSbox[temp[2]];
      temp[2] = kSbox[temp[3]];
      temp[3] = kSbox[t0];
    } else if (nk > 6 && i % nk == 4) {
      // AES-256 extra SubWord.
      for (int j = 0; j < 4; ++j) {
        temp[j] = kSbox[temp[j]];
      }
    }
    for (int j = 0; j < 4; ++j) {
      w[4 * i + j] = static_cast<uint8_t>(w[4 * (i - nk) + j] ^ temp[j]);
    }
  }
  for (int i = 0; i < total_words; ++i) {
    enc_keys_[i] = LoadWordBE(w + 4 * i);
  }
  // Equivalent-inverse-cipher schedule: reversed round order, with
  // InvMixColumns applied to the middle round keys.
  for (int round = 0; round <= rounds_; ++round) {
    for (int j = 0; j < 4; ++j) {
      uint32_t word = enc_keys_[4 * (rounds_ - round) + j];
      if (round != 0 && round != rounds_) {
        word = InvMixColumnsWord(word);
      }
      dec_keys_[4 * round + j] = word;
    }
  }
}

void Aes::EncryptBlock(const uint8_t in[kBlockSize],
                       uint8_t out[kBlockSize]) const {
  const uint32_t* rk = enc_keys_.data();
  uint32_t w0 = LoadWordBE(in) ^ rk[0];
  uint32_t w1 = LoadWordBE(in + 4) ^ rk[1];
  uint32_t w2 = LoadWordBE(in + 8) ^ rk[2];
  uint32_t w3 = LoadWordBE(in + 12) ^ rk[3];
  rk += 4;
  for (int round = 1; round < rounds_; ++round, rk += 4) {
    const uint32_t e0 = Te0(w0 >> 24) ^ Te1((w1 >> 16) & 0xff) ^
                        Te2((w2 >> 8) & 0xff) ^ Te3(w3 & 0xff) ^ rk[0];
    const uint32_t e1 = Te0(w1 >> 24) ^ Te1((w2 >> 16) & 0xff) ^
                        Te2((w3 >> 8) & 0xff) ^ Te3(w0 & 0xff) ^ rk[1];
    const uint32_t e2 = Te0(w2 >> 24) ^ Te1((w3 >> 16) & 0xff) ^
                        Te2((w0 >> 8) & 0xff) ^ Te3(w1 & 0xff) ^ rk[2];
    const uint32_t e3 = Te0(w3 >> 24) ^ Te1((w0 >> 16) & 0xff) ^
                        Te2((w1 >> 8) & 0xff) ^ Te3(w2 & 0xff) ^ rk[3];
    w0 = e0;
    w1 = e1;
    w2 = e2;
    w3 = e3;
  }
  // Final round: SubBytes + ShiftRows + AddRoundKey.
  const uint32_t e0 = (static_cast<uint32_t>(kSbox[w0 >> 24]) << 24) |
                      (static_cast<uint32_t>(kSbox[(w1 >> 16) & 0xff]) << 16) |
                      (static_cast<uint32_t>(kSbox[(w2 >> 8) & 0xff]) << 8) |
                      static_cast<uint32_t>(kSbox[w3 & 0xff]);
  const uint32_t e1 = (static_cast<uint32_t>(kSbox[w1 >> 24]) << 24) |
                      (static_cast<uint32_t>(kSbox[(w2 >> 16) & 0xff]) << 16) |
                      (static_cast<uint32_t>(kSbox[(w3 >> 8) & 0xff]) << 8) |
                      static_cast<uint32_t>(kSbox[w0 & 0xff]);
  const uint32_t e2 = (static_cast<uint32_t>(kSbox[w2 >> 24]) << 24) |
                      (static_cast<uint32_t>(kSbox[(w3 >> 16) & 0xff]) << 16) |
                      (static_cast<uint32_t>(kSbox[(w0 >> 8) & 0xff]) << 8) |
                      static_cast<uint32_t>(kSbox[w1 & 0xff]);
  const uint32_t e3 = (static_cast<uint32_t>(kSbox[w3 >> 24]) << 24) |
                      (static_cast<uint32_t>(kSbox[(w0 >> 16) & 0xff]) << 16) |
                      (static_cast<uint32_t>(kSbox[(w1 >> 8) & 0xff]) << 8) |
                      static_cast<uint32_t>(kSbox[w2 & 0xff]);
  StoreWordBE(e0 ^ rk[0], out);
  StoreWordBE(e1 ^ rk[1], out + 4);
  StoreWordBE(e2 ^ rk[2], out + 8);
  StoreWordBE(e3 ^ rk[3], out + 12);
}

void Aes::DecryptBlock(const uint8_t in[kBlockSize],
                       uint8_t out[kBlockSize]) const {
  const uint32_t* rk = dec_keys_.data();
  uint32_t w0 = LoadWordBE(in) ^ rk[0];
  uint32_t w1 = LoadWordBE(in + 4) ^ rk[1];
  uint32_t w2 = LoadWordBE(in + 8) ^ rk[2];
  uint32_t w3 = LoadWordBE(in + 12) ^ rk[3];
  rk += 4;
  for (int round = 1; round < rounds_; ++round, rk += 4) {
    const uint32_t e0 = Td0(w0 >> 24) ^ Td1((w3 >> 16) & 0xff) ^
                        Td2((w2 >> 8) & 0xff) ^ Td3(w1 & 0xff) ^ rk[0];
    const uint32_t e1 = Td0(w1 >> 24) ^ Td1((w0 >> 16) & 0xff) ^
                        Td2((w3 >> 8) & 0xff) ^ Td3(w2 & 0xff) ^ rk[1];
    const uint32_t e2 = Td0(w2 >> 24) ^ Td1((w1 >> 16) & 0xff) ^
                        Td2((w0 >> 8) & 0xff) ^ Td3(w3 & 0xff) ^ rk[2];
    const uint32_t e3 = Td0(w3 >> 24) ^ Td1((w2 >> 16) & 0xff) ^
                        Td2((w1 >> 8) & 0xff) ^ Td3(w0 & 0xff) ^ rk[3];
    w0 = e0;
    w1 = e1;
    w2 = e2;
    w3 = e3;
  }
  // Final round: InvSubBytes + InvShiftRows + AddRoundKey.
  const uint32_t e0 =
      (static_cast<uint32_t>(kInvSbox[w0 >> 24]) << 24) |
      (static_cast<uint32_t>(kInvSbox[(w3 >> 16) & 0xff]) << 16) |
      (static_cast<uint32_t>(kInvSbox[(w2 >> 8) & 0xff]) << 8) |
      static_cast<uint32_t>(kInvSbox[w1 & 0xff]);
  const uint32_t e1 =
      (static_cast<uint32_t>(kInvSbox[w1 >> 24]) << 24) |
      (static_cast<uint32_t>(kInvSbox[(w0 >> 16) & 0xff]) << 16) |
      (static_cast<uint32_t>(kInvSbox[(w3 >> 8) & 0xff]) << 8) |
      static_cast<uint32_t>(kInvSbox[w2 & 0xff]);
  const uint32_t e2 =
      (static_cast<uint32_t>(kInvSbox[w2 >> 24]) << 24) |
      (static_cast<uint32_t>(kInvSbox[(w1 >> 16) & 0xff]) << 16) |
      (static_cast<uint32_t>(kInvSbox[(w0 >> 8) & 0xff]) << 8) |
      static_cast<uint32_t>(kInvSbox[w3 & 0xff]);
  const uint32_t e3 =
      (static_cast<uint32_t>(kInvSbox[w3 >> 24]) << 24) |
      (static_cast<uint32_t>(kInvSbox[(w2 >> 16) & 0xff]) << 16) |
      (static_cast<uint32_t>(kInvSbox[(w1 >> 8) & 0xff]) << 8) |
      static_cast<uint32_t>(kInvSbox[w0 & 0xff]);
  StoreWordBE(e0 ^ rk[0], out);
  StoreWordBE(e1 ^ rk[1], out + 4);
  StoreWordBE(e2 ^ rk[2], out + 8);
  StoreWordBE(e3 ^ rk[3], out + 12);
}

}  // namespace shpir::crypto
