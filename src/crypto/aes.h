#ifndef SHPIR_CRYPTO_AES_H_
#define SHPIR_CRYPTO_AES_H_

#include <array>
#include <cstdint>

#include "common/bytes.h"
#include "common/result.h"

namespace shpir::crypto {

/// AES block cipher (FIPS 197) supporting 128-, 192- and 256-bit keys.
///
/// Portable T-table implementation (the "equivalent inverse cipher" for
/// decryption) written for the secure-coprocessor simulator. It is
/// correct (validated against the FIPS 197 and NIST SP 800-38A vectors
/// in tests) but makes no claim of resistance to cache-timing side
/// channels; the simulated coprocessor is assumed physically shielded,
/// matching the paper's IBM 4764 threat model.
class Aes {
 public:
  static constexpr size_t kBlockSize = 16;

  /// Creates a cipher instance from a 16/24/32-byte key. Any other key
  /// length yields InvalidArgument.
  static Result<Aes> Create(ByteSpan key);

  /// Encrypts one 16-byte block in place (out may alias in).
  void EncryptBlock(const uint8_t in[kBlockSize],
                    uint8_t out[kBlockSize]) const;

  /// Decrypts one 16-byte block in place (out may alias in).
  void DecryptBlock(const uint8_t in[kBlockSize],
                    uint8_t out[kBlockSize]) const;

  /// Number of rounds for the configured key size (10/12/14).
  int rounds() const { return rounds_; }

 private:
  Aes() = default;

  void ExpandKey(ByteSpan key);

  // Round keys as packed big-endian column words, 4 per round plus the
  // initial AddRoundKey (max 60 for AES-256). dec_keys_ hold the
  // equivalent-inverse-cipher schedule.
  std::array<uint32_t, 60> enc_keys_{};
  std::array<uint32_t, 60> dec_keys_{};
  int rounds_ = 0;
};

}  // namespace shpir::crypto

#endif  // SHPIR_CRYPTO_AES_H_
