#include "crypto/blob_cipher.h"

#include <cstring>

#include "crypto/sha256.h"

namespace shpir::crypto {

Result<BlobCipher> BlobCipher::Create(ByteSpan enc_key, ByteSpan mac_key) {
  SHPIR_ASSIGN_OR_RETURN(AesCtr ctr, AesCtr::Create(enc_key));
  return BlobCipher(std::move(ctr), HmacSha256(mac_key));
}

Result<BlobCipher> BlobCipher::FromPassphrase(const std::string& passphrase) {
  const ByteSpan pass(reinterpret_cast<const uint8_t*>(passphrase.data()),
                      passphrase.size());
  HmacSha256 kdf(pass);
  const auto enc = kdf.Compute(ByteSpan(
      reinterpret_cast<const uint8_t*>("shpir-blob-enc"), 14));
  const auto mac = kdf.Compute(ByteSpan(
      reinterpret_cast<const uint8_t*>("shpir-blob-mac"), 14));
  return Create(ByteSpan(enc.data(), enc.size()),
                ByteSpan(mac.data(), mac.size()));
}

Result<Bytes> BlobCipher::Seal(ByteSpan plaintext,
                               SecureRandom& rng) const {
  Bytes out(kNonceSize + plaintext.size() + kTagSize);
  MutableByteSpan nonce(out.data(), kNonceSize);
  MutableByteSpan body(out.data() + kNonceSize, plaintext.size());
  rng.Fill(nonce);
  SHPIR_RETURN_IF_ERROR(ctr_.CryptWithNonce(nonce, plaintext, body));
  const HmacSha256::Tag tag =
      mac_.Compute(ByteSpan(out.data(), kNonceSize + plaintext.size()));
  std::memcpy(out.data() + kNonceSize + plaintext.size(), tag.data(),
              kTagSize);
  return out;
}

Result<Bytes> BlobCipher::Open(ByteSpan sealed) const {
  if (sealed.size() < kOverhead) {
    return InvalidArgumentError("sealed blob too short");
  }
  const size_t body_len = sealed.size() - kOverhead;
  const ByteSpan authed(sealed.data(), kNonceSize + body_len);
  const ByteSpan tag(sealed.data() + kNonceSize + body_len, kTagSize);
  if (!mac_.Verify(authed, tag)) {
    return DataLossError("blob MAC verification failed");
  }
  const ByteSpan nonce(sealed.data(), kNonceSize);
  Bytes body(sealed.begin() + kNonceSize,
             sealed.begin() + static_cast<ptrdiff_t>(kNonceSize + body_len));
  SHPIR_RETURN_IF_ERROR(ctr_.CryptWithNonce(nonce, body, body));
  return body;
}

}  // namespace shpir::crypto
