#ifndef SHPIR_CRYPTO_BLOB_CIPHER_H_
#define SHPIR_CRYPTO_BLOB_CIPHER_H_

#include "common/bytes.h"
#include "common/result.h"
#include "crypto/ctr.h"
#include "crypto/hmac.h"
#include "crypto/secure_random.h"

namespace shpir::crypto {

/// Authenticated encryption for variable-length blobs (AES-CTR with a
/// fresh random nonce, encrypt-then-MAC with HMAC-SHA-256). Used to
/// protect engine state snapshots and any other secrets that must leave
/// the trusted boundary.
class BlobCipher {
 public:
  static constexpr size_t kNonceSize = 12;
  static constexpr size_t kTagSize = HmacSha256::kTagSize;
  static constexpr size_t kOverhead = kNonceSize + kTagSize;

  /// Creates a cipher from an AES key (16/24/32 bytes) and a MAC key.
  static Result<BlobCipher> Create(ByteSpan enc_key, ByteSpan mac_key);

  /// Derives both keys from a single passphrase (HMAC-based KDF).
  static Result<BlobCipher> FromPassphrase(const std::string& passphrase);

  /// Encrypts and authenticates `plaintext`.
  Result<Bytes> Seal(ByteSpan plaintext, SecureRandom& rng) const;

  /// Verifies and decrypts a sealed blob.
  Result<Bytes> Open(ByteSpan sealed) const;

 private:
  BlobCipher(AesCtr ctr, HmacSha256 mac)
      : ctr_(std::move(ctr)), mac_(std::move(mac)) {}

  AesCtr ctr_;
  HmacSha256 mac_;
};

}  // namespace shpir::crypto

#endif  // SHPIR_CRYPTO_BLOB_CIPHER_H_
