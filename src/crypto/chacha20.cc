#include "crypto/chacha20.h"

#include <cstring>

namespace shpir::crypto {

namespace {

inline uint32_t Rotl(uint32_t x, int n) { return (x << n) | (x >> (32 - n)); }

inline void QuarterRound(uint32_t& a, uint32_t& b, uint32_t& c, uint32_t& d) {
  a += b;
  d = Rotl(d ^ a, 16);
  c += d;
  b = Rotl(b ^ c, 12);
  a += b;
  d = Rotl(d ^ a, 8);
  c += d;
  b = Rotl(b ^ c, 7);
}

// "expand 32-byte k"
constexpr uint32_t kSigma[4] = {0x61707865, 0x3320646e, 0x79622d32,
                                0x6b206574};

}  // namespace

Result<ChaCha20> ChaCha20::Create(ByteSpan key) {
  if (key.size() != kKeySize) {
    return InvalidArgumentError("ChaCha20 key must be 32 bytes");
  }
  ChaCha20 cipher;
  for (int i = 0; i < 8; ++i) {
    cipher.key_words_[i] = LoadLE32(key.data() + 4 * i);
  }
  return cipher;
}

Status ChaCha20::KeystreamBlock(ByteSpan nonce, uint32_t counter,
                                uint8_t out[kBlockSize]) const {
  if (nonce.size() != kNonceSize) {
    return InvalidArgumentError("ChaCha20 nonce must be 12 bytes");
  }
  uint32_t state[16];
  std::memcpy(state, kSigma, sizeof(kSigma));
  std::memcpy(state + 4, key_words_.data(), 32);
  state[12] = counter;
  state[13] = LoadLE32(nonce.data());
  state[14] = LoadLE32(nonce.data() + 4);
  state[15] = LoadLE32(nonce.data() + 8);

  uint32_t working[16];
  std::memcpy(working, state, sizeof(state));
  for (int i = 0; i < 10; ++i) {
    QuarterRound(working[0], working[4], working[8], working[12]);
    QuarterRound(working[1], working[5], working[9], working[13]);
    QuarterRound(working[2], working[6], working[10], working[14]);
    QuarterRound(working[3], working[7], working[11], working[15]);
    QuarterRound(working[0], working[5], working[10], working[15]);
    QuarterRound(working[1], working[6], working[11], working[12]);
    QuarterRound(working[2], working[7], working[8], working[13]);
    QuarterRound(working[3], working[4], working[9], working[14]);
  }
  for (int i = 0; i < 16; ++i) {
    StoreLE32(working[i] + state[i], out + 4 * i);
  }
  return OkStatus();
}

Status ChaCha20::Crypt(ByteSpan nonce, uint32_t counter, ByteSpan in,
                       MutableByteSpan out) const {
  if (in.size() != out.size()) {
    return InvalidArgumentError("ChaCha20 output size must match input size");
  }
  uint8_t keystream[kBlockSize];
  size_t offset = 0;
  while (offset < in.size()) {
    SHPIR_RETURN_IF_ERROR(KeystreamBlock(nonce, counter, keystream));
    const size_t chunk = std::min(in.size() - offset, kBlockSize);
    for (size_t i = 0; i < chunk; ++i) {
      out[offset + i] = in[offset + i] ^ keystream[i];
    }
    ++counter;
    offset += chunk;
  }
  return OkStatus();
}

}  // namespace shpir::crypto
