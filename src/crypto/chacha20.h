#ifndef SHPIR_CRYPTO_CHACHA20_H_
#define SHPIR_CRYPTO_CHACHA20_H_

#include <array>
#include <cstdint>

#include "common/bytes.h"
#include "common/result.h"
#include "common/secret.h"

namespace shpir::crypto {

/// ChaCha20 stream cipher (RFC 8439). Used as the core of the library's
/// deterministic random bit generator; also usable as a cipher.
class ChaCha20 {
 public:
  static constexpr size_t kKeySize = 32;
  static constexpr size_t kNonceSize = 12;
  static constexpr size_t kBlockSize = 64;

  /// Creates a cipher keyed with a 32-byte key.
  static Result<ChaCha20> Create(ByteSpan key);

  /// XORs `in` with the keystream for (`nonce`, starting `counter`) into
  /// `out`. out may alias in; sizes must match.
  Status Crypt(ByteSpan nonce, uint32_t counter, ByteSpan in,
               MutableByteSpan out) const;

  /// Generates one 64-byte keystream block for (`nonce`, `counter`).
  Status KeystreamBlock(ByteSpan nonce, uint32_t counter,
                        uint8_t out[kBlockSize]) const;

 private:
  ChaCha20() = default;

  /// The expanded cipher key.
  SHPIR_SECRET std::array<uint32_t, 8> key_words_{};
};

}  // namespace shpir::crypto

#endif  // SHPIR_CRYPTO_CHACHA20_H_
