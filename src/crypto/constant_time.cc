#include "crypto/constant_time.h"

namespace shpir::crypto {

bool ConstantTimeEquals(ByteSpan a, ByteSpan b) {
  if (a.size() != b.size()) {
    return false;
  }
  uint8_t diff = 0;
  for (size_t i = 0; i < a.size(); ++i) {
    diff |= static_cast<uint8_t>(a[i] ^ b[i]);
  }
  // shpir-lint-allow-next-line(secret-compare): accumulate-then-test over the full length; this is the sanctioned constant-time comparator the rule points callers at
  return diff == 0;
}

}  // namespace shpir::crypto
