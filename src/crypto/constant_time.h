#ifndef SHPIR_CRYPTO_CONSTANT_TIME_H_
#define SHPIR_CRYPTO_CONSTANT_TIME_H_

#include "common/bytes.h"

namespace shpir::crypto {

/// Compares two byte ranges without data-dependent early exit. Returns
/// false immediately only on length mismatch (lengths are public).
bool ConstantTimeEquals(ByteSpan a, ByteSpan b);

}  // namespace shpir::crypto

#endif  // SHPIR_CRYPTO_CONSTANT_TIME_H_
