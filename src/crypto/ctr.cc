#include "crypto/ctr.h"

#include <cstring>

namespace shpir::crypto {

namespace {

// Increments a 128-bit big-endian counter block.
void IncrementCounter(uint8_t block[16]) {
  for (int i = 15; i >= 0; --i) {
    if (++block[i] != 0) {
      break;
    }
  }
}

}  // namespace

Result<AesCtr> AesCtr::Create(ByteSpan key) {
  SHPIR_ASSIGN_OR_RETURN(Aes aes, Aes::Create(key));
  return AesCtr(std::move(aes));
}

Status AesCtr::Crypt(ByteSpan iv, ByteSpan in, MutableByteSpan out) const {
  if (iv.size() != Aes::kBlockSize) {
    return InvalidArgumentError("CTR IV must be 16 bytes");
  }
  if (in.size() != out.size()) {
    return InvalidArgumentError("CTR output size must match input size");
  }
  uint8_t counter[Aes::kBlockSize];
  std::memcpy(counter, iv.data(), Aes::kBlockSize);
  uint8_t keystream[Aes::kBlockSize];
  size_t offset = 0;
  while (offset < in.size()) {
    aes_.EncryptBlock(counter, keystream);
    const size_t chunk = std::min(in.size() - offset, Aes::kBlockSize);
    for (size_t i = 0; i < chunk; ++i) {
      out[offset + i] = in[offset + i] ^ keystream[i];
    }
    IncrementCounter(counter);
    offset += chunk;
  }
  return OkStatus();
}

Status AesCtr::CryptWithNonce(ByteSpan nonce12, ByteSpan in,
                              MutableByteSpan out) const {
  if (nonce12.size() != 12) {
    return InvalidArgumentError("CTR nonce must be 12 bytes");
  }
  uint8_t iv[Aes::kBlockSize] = {};
  std::memcpy(iv, nonce12.data(), 12);
  return Crypt(ByteSpan(iv, Aes::kBlockSize), in, out);
}

}  // namespace shpir::crypto
