#ifndef SHPIR_CRYPTO_CTR_H_
#define SHPIR_CRYPTO_CTR_H_

#include <array>
#include <cstdint>

#include "common/bytes.h"
#include "common/result.h"
#include "crypto/aes.h"

namespace shpir::crypto {

/// AES-CTR stream cipher (NIST SP 800-38A). The 16-byte counter block is
/// the concatenation of a caller-supplied nonce and a big-endian block
/// counter; encryption and decryption are the same operation.
class AesCtr {
 public:
  /// Creates a CTR context from a 16/24/32-byte AES key.
  static Result<AesCtr> Create(ByteSpan key);

  /// XORs `in` with the keystream derived from `iv` (16 bytes, the full
  /// initial counter block) into `out`. `out.size()` must equal
  /// `in.size()`; out may alias in. The counter increments over the whole
  /// 128-bit block, matching SP 800-38A's F.5 test vectors.
  Status Crypt(ByteSpan iv, ByteSpan in, MutableByteSpan out) const;

  /// Convenience wrapper building the initial counter block from a
  /// 12-byte nonce and a 4-byte big-endian initial counter of zero.
  Status CryptWithNonce(ByteSpan nonce12, ByteSpan in,
                        MutableByteSpan out) const;

 private:
  explicit AesCtr(Aes aes) : aes_(std::move(aes)) {}

  Aes aes_;
};

}  // namespace shpir::crypto

#endif  // SHPIR_CRYPTO_CTR_H_
