#include "crypto/hmac.h"

#include <cstring>

#include "crypto/constant_time.h"

namespace shpir::crypto {

HmacSha256::HmacSha256(ByteSpan key) {
  std::array<uint8_t, Sha256::kBlockSize> block_key = {};
  if (key.size() > Sha256::kBlockSize) {
    const Sha256::Digest digest = Sha256::Hash(key);
    std::memcpy(block_key.data(), digest.data(), digest.size());
  } else {
    std::memcpy(block_key.data(), key.data(), key.size());
  }
  for (size_t i = 0; i < Sha256::kBlockSize; ++i) {
    ipad_key_[i] = block_key[i] ^ 0x36;
    opad_key_[i] = block_key[i] ^ 0x5c;
  }
}

HmacSha256::Tag HmacSha256::Compute(ByteSpan data) const {
  Sha256 inner;
  inner.Update(ByteSpan(ipad_key_.data(), ipad_key_.size()));
  inner.Update(data);
  const Sha256::Digest inner_digest = inner.Finalize();
  Sha256 outer;
  outer.Update(ByteSpan(opad_key_.data(), opad_key_.size()));
  outer.Update(ByteSpan(inner_digest.data(), inner_digest.size()));
  return outer.Finalize();
}

bool HmacSha256::Verify(ByteSpan data, ByteSpan tag) const {
  const Tag expected = Compute(data);
  return ConstantTimeEquals(ByteSpan(expected.data(), expected.size()), tag);
}

}  // namespace shpir::crypto
