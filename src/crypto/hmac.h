#ifndef SHPIR_CRYPTO_HMAC_H_
#define SHPIR_CRYPTO_HMAC_H_

#include <array>

#include "common/bytes.h"
#include "common/secret.h"
#include "crypto/sha256.h"

namespace shpir::crypto {

/// HMAC-SHA-256 (RFC 2104 / FIPS 198-1).
class HmacSha256 {
 public:
  static constexpr size_t kTagSize = Sha256::kDigestSize;
  using Tag = Sha256::Digest;

  /// Creates an HMAC context keyed with `key` (any length; keys longer
  /// than the SHA-256 block size are hashed first, per the spec).
  explicit HmacSha256(ByteSpan key);

  /// Computes the tag of `data`.
  Tag Compute(ByteSpan data) const;

  /// Verifies `tag` against `data` in constant time.
  bool Verify(ByteSpan data, ByteSpan tag) const;

 private:
  /// Derived MAC key material: comparisons against anything computed
  /// from these must go through crypto::ConstantTimeEquals.
  SHPIR_SECRET std::array<uint8_t, Sha256::kBlockSize> ipad_key_;
  SHPIR_SECRET std::array<uint8_t, Sha256::kBlockSize> opad_key_;
};

}  // namespace shpir::crypto

#endif  // SHPIR_CRYPTO_HMAC_H_
