#include "crypto/permutation.h"

#include <numeric>

namespace shpir::crypto {

std::vector<uint64_t> RandomPermutation(uint64_t n, SecureRandom& rng) {
  std::vector<uint64_t> perm(n);
  std::iota(perm.begin(), perm.end(), 0);
  Shuffle(perm, rng);
  return perm;
}

std::vector<uint64_t> InvertPermutation(const std::vector<uint64_t>& perm) {
  std::vector<uint64_t> inv(perm.size());
  for (uint64_t i = 0; i < perm.size(); ++i) {
    inv[perm[i]] = i;
  }
  return inv;
}

bool IsPermutation(const std::vector<uint64_t>& perm) {
  std::vector<bool> seen(perm.size(), false);
  for (uint64_t v : perm) {
    if (v >= perm.size() || seen[v]) {
      return false;
    }
    seen[v] = true;
  }
  return true;
}

}  // namespace shpir::crypto
