#ifndef SHPIR_CRYPTO_PERMUTATION_H_
#define SHPIR_CRYPTO_PERMUTATION_H_

#include <cstdint>
#include <vector>

#include "crypto/secure_random.h"

namespace shpir::crypto {

/// Returns a uniformly random permutation of {0, ..., n-1} drawn with the
/// Fisher–Yates shuffle from `rng`.
std::vector<uint64_t> RandomPermutation(uint64_t n, SecureRandom& rng);

/// Returns the inverse permutation: inv[perm[i]] == i.
std::vector<uint64_t> InvertPermutation(const std::vector<uint64_t>& perm);

/// Returns true if `perm` is a permutation of {0, ..., perm.size()-1}.
bool IsPermutation(const std::vector<uint64_t>& perm);

/// Shuffles `values` in place with Fisher–Yates.
template <typename T>
void Shuffle(std::vector<T>& values, SecureRandom& rng) {
  for (size_t i = values.size(); i > 1; --i) {
    const size_t j = static_cast<size_t>(rng.UniformInt(i));
    std::swap(values[i - 1], values[j]);
  }
}

}  // namespace shpir::crypto

#endif  // SHPIR_CRYPTO_PERMUTATION_H_
