#include "crypto/secure_random.h"

#include <cstring>
#include <random>

#include "common/check.h"

namespace shpir::crypto {

SecureRandom::SecureRandom() {
  // shpir-lint-allow-next-line(insecure-rng): random_device only seeds the ChaCha20 DRBG; it is the OS entropy source, not the generator
  std::random_device rd;
  std::array<uint8_t, 32> seed;
  for (size_t i = 0; i < seed.size(); i += 4) {
    StoreLE32(rd(), seed.data() + i);
  }
  Reseed(seed);
}

SecureRandom::SecureRandom(uint64_t seed) {
  std::array<uint8_t, 32> key = {};
  StoreLE64(seed, key.data());
  // Differentiate the deterministic domain from the entropy-seeded one.
  key[31] = 0x5e;
  Reseed(key);
}

SecureRandom::SecureRandom(const std::array<uint8_t, 32>& seed) {
  Reseed(seed);
}

void SecureRandom::Reseed(const std::array<uint8_t, 32>& key) {
  Result<ChaCha20> cipher = ChaCha20::Create(ByteSpan(key.data(), key.size()));
  SHPIR_CHECK(cipher.ok());
  cipher_ = std::move(cipher).value();
  counter_ = 0;
  buffer_pos_ = buffer_.size();
}

void SecureRandom::RefillBuffer() {
  SHPIR_CHECK_OK(cipher_->KeystreamBlock(ByteSpan(nonce_.data(), nonce_.size()),
                                         counter_, buffer_.data()));
  ++counter_;
  if (counter_ == 0) {
    // 256 GiB of output exhausted the counter; roll the nonce forward.
    for (size_t i = 0; i < nonce_.size(); ++i) {
      if (++nonce_[i] != 0) {
        break;
      }
    }
  }
  buffer_pos_ = 0;
}

void SecureRandom::Fill(MutableByteSpan out) {
  size_t offset = 0;
  while (offset < out.size()) {
    if (buffer_pos_ == buffer_.size()) {
      RefillBuffer();
    }
    const size_t chunk =
        std::min(out.size() - offset, buffer_.size() - buffer_pos_);
    std::memcpy(out.data() + offset, buffer_.data() + buffer_pos_, chunk);
    buffer_pos_ += chunk;
    offset += chunk;
  }
}

uint64_t SecureRandom::NextUint64() {
  uint8_t bytes[8];
  Fill(MutableByteSpan(bytes, 8));
  return LoadLE64(bytes);
}

uint64_t SecureRandom::UniformInt(uint64_t bound) {
  SHPIR_CHECK(bound > 0);
  if ((bound & (bound - 1)) == 0) {
    return NextUint64() & (bound - 1);
  }
  // Rejection sampling over the largest multiple of bound below 2^64.
  const uint64_t limit = UINT64_MAX - UINT64_MAX % bound;
  uint64_t value;
  do {
    value = NextUint64();
  } while (value >= limit);
  return value % bound;
}

double SecureRandom::UniformDouble() {
  // 53 random bits scaled into [0, 1).
  return static_cast<double>(NextUint64() >> 11) * 0x1.0p-53;
}

}  // namespace shpir::crypto
