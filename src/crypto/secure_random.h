#ifndef SHPIR_CRYPTO_SECURE_RANDOM_H_
#define SHPIR_CRYPTO_SECURE_RANDOM_H_

#include <array>
#include <cstdint>
#include <optional>

#include "common/bytes.h"
#include "crypto/chacha20.h"

namespace shpir::crypto {

/// Cryptographically strong deterministic random bit generator built on
/// ChaCha20 keystream output. Seeded from the OS entropy source by
/// default; tests and reproducible simulations may seed explicitly.
///
/// The generator is the simulator's stand-in for the secure hardware's
/// internal RNG: all of the scheme's randomized choices (cache eviction,
/// block slot, random page) draw from it.
class SecureRandom {
 public:
  /// Seeds from std::random_device.
  SecureRandom();

  /// Seeds deterministically from a 64-bit value (for reproducible runs).
  explicit SecureRandom(uint64_t seed);

  /// Seeds from a full 32-byte key.
  explicit SecureRandom(const std::array<uint8_t, 32>& seed);

  /// Fills `out` with random bytes.
  void Fill(MutableByteSpan out);

  /// Returns a uniformly random 64-bit value.
  uint64_t NextUint64();

  /// Returns a uniformly random value in [0, bound) using rejection
  /// sampling (no modulo bias). bound must be > 0.
  uint64_t UniformInt(uint64_t bound);

  /// Returns a uniformly random double in [0, 1).
  double UniformDouble();

 private:
  void Reseed(const std::array<uint8_t, 32>& key);
  void RefillBuffer();

  std::optional<ChaCha20> cipher_;
  std::array<uint8_t, 12> nonce_{};
  uint32_t counter_ = 0;
  std::array<uint8_t, ChaCha20::kBlockSize> buffer_{};
  size_t buffer_pos_ = ChaCha20::kBlockSize;  // Empty.
};

}  // namespace shpir::crypto

#endif  // SHPIR_CRYPTO_SECURE_RANDOM_H_
