#ifndef SHPIR_CRYPTO_SHA256_H_
#define SHPIR_CRYPTO_SHA256_H_

#include <array>
#include <cstdint>

#include "common/bytes.h"

namespace shpir::crypto {

/// SHA-256 (FIPS 180-4), incremental interface.
class Sha256 {
 public:
  static constexpr size_t kDigestSize = 32;
  static constexpr size_t kBlockSize = 64;

  using Digest = std::array<uint8_t, kDigestSize>;

  Sha256();

  /// Absorbs `data` into the hash state.
  void Update(ByteSpan data);

  /// Finalizes and returns the digest. The object must be Reset() before
  /// further use.
  Digest Finalize();

  /// Restores the initial state.
  void Reset();

  /// One-shot convenience.
  static Digest Hash(ByteSpan data);

 private:
  void ProcessBlock(const uint8_t block[kBlockSize]);

  std::array<uint32_t, 8> state_;
  std::array<uint8_t, kBlockSize> buffer_;
  size_t buffer_len_;
  uint64_t total_len_;
};

}  // namespace shpir::crypto

#endif  // SHPIR_CRYPTO_SHA256_H_
