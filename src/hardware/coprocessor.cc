#include "hardware/coprocessor.h"

namespace shpir::hardware {

Result<std::unique_ptr<SecureCoprocessor>> SecureCoprocessor::Create(
    const HardwareProfile& profile, storage::Disk* disk, size_t page_size,
    std::optional<uint64_t> seed) {
  if (disk == nullptr) {
    return InvalidArgumentError("coprocessor requires a disk");
  }
  crypto::SecureRandom rng =
      seed.has_value() ? crypto::SecureRandom(*seed) : crypto::SecureRandom();
  Bytes enc_key(32), mac_key(32);
  rng.Fill(enc_key);
  rng.Fill(mac_key);
  SHPIR_ASSIGN_OR_RETURN(
      storage::PageCipher cipher,
      storage::PageCipher::Create(enc_key, mac_key, page_size));
  if (disk->slot_size() != cipher.sealed_size()) {
    return InvalidArgumentError(
        "disk slot size does not match sealed page size");
  }
  return std::unique_ptr<SecureCoprocessor>(new SecureCoprocessor(
      profile, disk, std::move(cipher), std::move(rng)));
}

void SecureCoprocessor::AttachMetrics(obs::MetricsRegistry* registry) {
  if (registry == nullptr) {
    instruments_ = Instruments{};
    return;
  }
  instruments_.seeks = registry->FindOrCreateCounter("shpir_hw_seeks_total");
  instruments_.disk_bytes =
      registry->FindOrCreateCounter("shpir_hw_disk_bytes_total");
  instruments_.link_bytes =
      registry->FindOrCreateCounter("shpir_hw_link_bytes_total");
  instruments_.crypto_bytes =
      registry->FindOrCreateCounter("shpir_hw_crypto_bytes_total");
  instruments_.pages_sealed =
      registry->FindOrCreateCounter("shpir_hw_pages_sealed_total");
  instruments_.pages_opened =
      registry->FindOrCreateCounter("shpir_hw_pages_opened_total");
  instruments_.simulated_seconds =
      registry->FindOrCreateGauge("shpir_hw_simulated_seconds");
  instruments_.secure_memory_used =
      registry->FindOrCreateGauge("shpir_hw_secure_memory_used_bytes");
  instruments_.secure_memory_capacity =
      registry->FindOrCreateGauge("shpir_hw_secure_memory_capacity_bytes");
  instruments_.simulated_seconds->Set(cost_.Seconds(profile_));
  instruments_.secure_memory_used->Set(
      static_cast<double>(secure_memory_used_));
  instruments_.secure_memory_capacity->Set(
      static_cast<double>(profile_.secure_memory_bytes));
}

void SecureCoprocessor::MeterIo(uint64_t bytes) {
  if (!metered()) {
    return;
  }
  instruments_.seeks->Increment();
  // shpir-lint-allow-next-line(secret-log): I/O byte volume is a slot-size multiple, a public parameter; metering it is the paper's computational-cost accounting (Eq. 5)
  instruments_.disk_bytes->Increment(bytes);
  // shpir-lint-allow-next-line(secret-log): same public byte volume mirrored to the link counter
  instruments_.link_bytes->Increment(bytes);
  instruments_.simulated_seconds->Set(cost_.Seconds(profile_));
}

Status SecureCoprocessor::ReserveSecureMemory(uint64_t bytes,
                                              const std::string& what) {
  if (secure_memory_used_ + bytes > profile_.secure_memory_bytes) {
    return ResourceExhaustedError(
        "secure memory exhausted reserving " + std::to_string(bytes) +
        " bytes for " + what + " (used " +
        std::to_string(secure_memory_used_) + " of " +
        std::to_string(profile_.secure_memory_bytes) + ")");
  }
  secure_memory_used_ += bytes;
  if (metered()) {
    instruments_.secure_memory_used->Set(
        static_cast<double>(secure_memory_used_));
  }
  return OkStatus();
}

void SecureCoprocessor::ReleaseSecureMemory(uint64_t bytes) {
  secure_memory_used_ = bytes > secure_memory_used_
                            ? 0
                            : secure_memory_used_ - bytes;
  if (metered()) {
    instruments_.secure_memory_used->Set(
        static_cast<double>(secure_memory_used_));
  }
}

Status SecureCoprocessor::ReadRun(storage::Location start, uint64_t count,
                                  std::vector<Bytes>& out) {
  cost_.AddSeeks(1);
  const uint64_t bytes = count * disk_->slot_size();
  cost_.AddDiskBytes(bytes);
  cost_.AddLinkBytes(bytes);
  MeterIo(bytes);
  return disk_->ReadRun(start, count, out);
}

Status SecureCoprocessor::WriteRun(storage::Location start,
                                   const std::vector<Bytes>& slots) {
  cost_.AddSeeks(1);
  const uint64_t bytes = slots.size() * disk_->slot_size();
  cost_.AddDiskBytes(bytes);
  cost_.AddLinkBytes(bytes);
  MeterIo(bytes);
  return disk_->WriteRun(start, slots);
}

Result<Bytes> SecureCoprocessor::ReadSlot(storage::Location loc) {
  cost_.AddSeeks(1);
  cost_.AddDiskBytes(disk_->slot_size());
  cost_.AddLinkBytes(disk_->slot_size());
  MeterIo(disk_->slot_size());
  Bytes out(disk_->slot_size());
  SHPIR_RETURN_IF_ERROR(disk_->Read(loc, out));
  return out;
}

Status SecureCoprocessor::WriteSlot(storage::Location loc, ByteSpan data) {
  cost_.AddSeeks(1);
  cost_.AddDiskBytes(disk_->slot_size());
  cost_.AddLinkBytes(disk_->slot_size());
  MeterIo(disk_->slot_size());
  return disk_->Write(loc, data);
}

Status SecureCoprocessor::InstallFreshKeys() {
  Bytes enc_key(32), mac_key(32);
  rng_.Fill(enc_key);
  rng_.Fill(mac_key);
  SHPIR_ASSIGN_OR_RETURN(
      storage::PageCipher cipher,
      storage::PageCipher::Create(enc_key, mac_key, cipher_.page_size()));
  cipher_ = std::move(cipher);
  return OkStatus();
}

Result<Bytes> SecureCoprocessor::SealPage(const storage::Page& page) {
  cost_.AddCryptoBytes(cipher_.page_size());
  if (metered()) {
    instruments_.crypto_bytes->Increment(cipher_.page_size());
    instruments_.pages_sealed->Increment();
    instruments_.simulated_seconds->Set(cost_.Seconds(profile_));
  }
  return cipher_.Seal(page, rng_);
}

Result<storage::Page> SecureCoprocessor::OpenPage(ByteSpan sealed) {
  cost_.AddCryptoBytes(cipher_.page_size());
  if (metered()) {
    instruments_.crypto_bytes->Increment(cipher_.page_size());
    instruments_.pages_opened->Increment();
    instruments_.simulated_seconds->Set(cost_.Seconds(profile_));
  }
  return cipher_.Open(sealed);
}

}  // namespace shpir::hardware
