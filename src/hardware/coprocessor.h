#ifndef SHPIR_HARDWARE_COPROCESSOR_H_
#define SHPIR_HARDWARE_COPROCESSOR_H_

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/result.h"
#include "crypto/secure_random.h"
#include "hardware/cost_accountant.h"
#include "hardware/profile.h"
#include "obs/metrics.h"
#include "storage/disk.h"
#include "storage/page.h"
#include "storage/page_cipher.h"

namespace shpir::hardware {

/// Simulated tamper-resistant coprocessor (the paper's IBM 4764).
///
/// The object models the *trusted boundary*: encryption keys and the RNG
/// live inside it; every interaction with the untrusted disk is accounted
/// (seeks, bytes over the device link, bytes through the crypto engine)
/// so that simulated query times can be derived from a HardwareProfile.
/// Secure memory is a budget: engines reserve what their data structures
/// need and creation fails when the device is too small, mirroring the
/// paper's capacity analysis (Eq. 7).
class SecureCoprocessor {
 public:
  /// Creates a coprocessor attached to `disk` (unowned; must outlive the
  /// device). Encryption and MAC keys are generated internally. `seed`
  /// makes all device randomness reproducible; nullopt seeds from OS
  /// entropy. `page_size` is the database page payload size B.
  static Result<std::unique_ptr<SecureCoprocessor>> Create(
      const HardwareProfile& profile, storage::Disk* disk, size_t page_size,
      std::optional<uint64_t> seed = std::nullopt);

  /// --- Secure memory budget -------------------------------------------

  /// Reserves `bytes` of secure memory; ResourceExhausted if it does not
  /// fit. `what` names the data structure for error messages.
  Status ReserveSecureMemory(uint64_t bytes, const std::string& what);

  /// Returns a reservation.
  void ReleaseSecureMemory(uint64_t bytes);

  uint64_t secure_memory_used() const { return secure_memory_used_; }
  uint64_t secure_memory_capacity() const {
    return profile_.secure_memory_bytes;
  }

  /// --- Accounted disk access -------------------------------------------

  /// Reads `count` consecutive slots starting at `start`: one seek plus a
  /// sequential transfer, all slots crossing the device link.
  Status ReadRun(storage::Location start, uint64_t count,
                 std::vector<Bytes>& out);

  /// Writes consecutive slots starting at `start`: one seek plus transfer.
  Status WriteRun(storage::Location start, const std::vector<Bytes>& slots);

  /// Reads a single slot (one seek).
  Result<Bytes> ReadSlot(storage::Location loc);

  /// Writes a single slot (one seek).
  Status WriteSlot(storage::Location loc, ByteSpan data);

  /// --- Accounted crypto -------------------------------------------------

  /// Encrypts a page with a fresh nonce; accounts crypto throughput.
  Result<Bytes> SealPage(const storage::Page& page);

  /// Verifies and decrypts a sealed page; accounts crypto throughput.
  Result<storage::Page> OpenPage(ByteSpan sealed);

  /// Ciphertext slot size for this device's page cipher.
  size_t sealed_size() const { return cipher_.sealed_size(); }
  size_t page_size() const { return cipher_.page_size(); }

  /// Replaces the device's page keys with fresh ones drawn from its
  /// RNG. Pages sealed under the old keys become unreadable — callers
  /// (CApproxPir::RotateKeys) must re-seal everything in the same pass.
  Status InstallFreshKeys();

  /// --- Observability -----------------------------------------------------

  /// Bridges the device's cost accounting into `registry` (unowned; must
  /// outlive the device): every accounted seek/byte also bumps aggregate
  /// shpir_hw_* counters, and shpir_hw_simulated_seconds is kept in sync
  /// with ElapsedSeconds(). Only volume aggregates leave the device —
  /// never locations, page ids or per-request data. Pass nullptr to
  /// detach.
  void AttachMetrics(obs::MetricsRegistry* registry);

  /// --- Device internals --------------------------------------------------

  crypto::SecureRandom& rng() { return rng_; }
  CostAccountant& cost() { return cost_; }
  const CostAccountant& cost() const { return cost_; }
  const HardwareProfile& profile() const { return profile_; }
  storage::Disk* disk() { return disk_; }

  /// Simulated seconds for everything the device has done so far.
  double ElapsedSeconds() const { return cost_.Seconds(profile_); }

 private:
  SecureCoprocessor(const HardwareProfile& profile, storage::Disk* disk,
                    storage::PageCipher cipher, crypto::SecureRandom rng)
      : profile_(profile),
        disk_(disk),
        cipher_(std::move(cipher)),
        rng_(std::move(rng)) {}

  /// Aggregate instruments mirroring the CostAccountant; all null until
  /// AttachMetrics().
  struct Instruments {
    obs::Counter* seeks = nullptr;
    obs::Counter* disk_bytes = nullptr;
    obs::Counter* link_bytes = nullptr;
    obs::Counter* crypto_bytes = nullptr;
    obs::Counter* pages_sealed = nullptr;
    obs::Counter* pages_opened = nullptr;
    obs::Gauge* simulated_seconds = nullptr;
    obs::Gauge* secure_memory_used = nullptr;
    obs::Gauge* secure_memory_capacity = nullptr;
  };

  bool metered() const { return instruments_.seeks != nullptr; }
  /// Mirrors one accounted disk access (a seek moving `bytes` over disk
  /// and link) into the instruments.
  void MeterIo(uint64_t bytes);

  HardwareProfile profile_;
  storage::Disk* disk_;
  storage::PageCipher cipher_;
  crypto::SecureRandom rng_;
  CostAccountant cost_;
  uint64_t secure_memory_used_ = 0;
  Instruments instruments_;
};

}  // namespace shpir::hardware

#endif  // SHPIR_HARDWARE_COPROCESSOR_H_
