#include "hardware/cost_accountant.h"

namespace shpir::hardware {

double CostAccountant::Seconds(const Counters& counters,
                               const HardwareProfile& profile) {
  double seconds = counters.seeks * profile.seek_time_s;
  if (profile.disk_rate > 0) {
    seconds += counters.disk_bytes / profile.disk_rate;
  }
  if (profile.link_rate > 0) {
    seconds += counters.link_bytes / profile.link_rate;
  }
  if (profile.crypto_rate > 0) {
    seconds += counters.crypto_bytes / profile.crypto_rate;
  }
  seconds += counters.network_round_trips * profile.network_rtt_s;
  if (profile.network_rate > 0) {
    seconds += counters.network_bytes / profile.network_rate;
  }
  return seconds;
}

}  // namespace shpir::hardware
