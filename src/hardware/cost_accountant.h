#ifndef SHPIR_HARDWARE_COST_ACCOUNTANT_H_
#define SHPIR_HARDWARE_COST_ACCOUNTANT_H_

#include <cstdint>

#include "hardware/profile.h"

namespace shpir::hardware {

/// Resource counters for the simulated deployment. PIR engines record
/// what the hardware *would* do (seeks, bytes moved, bytes enciphered);
/// Seconds() converts the counters into simulated wall-clock time under a
/// HardwareProfile. This is the discrete-event counterpart of the paper's
/// Eq. 8.
class CostAccountant {
 public:
  struct Counters {
    uint64_t seeks = 0;
    uint64_t disk_bytes = 0;
    uint64_t link_bytes = 0;
    uint64_t crypto_bytes = 0;
    uint64_t network_round_trips = 0;
    uint64_t network_bytes = 0;

    Counters operator-(const Counters& other) const {
      return Counters{seeks - other.seeks,
                      disk_bytes - other.disk_bytes,
                      link_bytes - other.link_bytes,
                      crypto_bytes - other.crypto_bytes,
                      network_round_trips - other.network_round_trips,
                      network_bytes - other.network_bytes};
    }
  };

  void AddSeeks(uint64_t count) { counters_.seeks += count; }
  void AddDiskBytes(uint64_t bytes) { counters_.disk_bytes += bytes; }
  void AddLinkBytes(uint64_t bytes) { counters_.link_bytes += bytes; }
  void AddCryptoBytes(uint64_t bytes) { counters_.crypto_bytes += bytes; }
  void AddNetworkRoundTrips(uint64_t count) {
    counters_.network_round_trips += count;
  }
  void AddNetworkBytes(uint64_t bytes) { counters_.network_bytes += bytes; }

  const Counters& counters() const { return counters_; }

  /// Takes a snapshot; combine with Seconds(delta) for per-query costs.
  Counters Snapshot() const { return counters_; }

  /// Simulated time for all recorded activity under `profile`.
  double Seconds(const HardwareProfile& profile) const {
    return Seconds(counters_, profile);
  }

  /// Simulated time for a counter delta under `profile`. Rates of zero
  /// mean "this resource does not exist in the deployment" and contribute
  /// no time.
  static double Seconds(const Counters& counters,
                        const HardwareProfile& profile);

  void Reset() { counters_ = Counters{}; }

 private:
  Counters counters_;
};

}  // namespace shpir::hardware

#endif  // SHPIR_HARDWARE_COST_ACCOUNTANT_H_
