#include "hardware/profile.h"

namespace shpir::hardware {

HardwareProfile HardwareProfile::Ibm4764() { return HardwareProfile{}; }

HardwareProfile HardwareProfile::ModernTee() {
  HardwareProfile profile;
  profile.seek_time_s = 0.0001;          // NVMe random access.
  profile.disk_rate = 3000.0 * kMB;      // NVMe sequential.
  profile.link_rate = 8000.0 * kMB;      // PCIe 4.0 x4-class.
  profile.crypto_rate = 5000.0 * kMB;    // AES-NI, single core.
  profile.secure_memory_bytes = 16ull * kGB;
  return profile;
}

HardwareProfile HardwareProfile::Ibm4764Array(int units) {
  HardwareProfile profile;
  profile.secure_memory_bytes = static_cast<uint64_t>(units) * 64 * kMB;
  return profile;
}

HardwareProfile HardwareProfile::TwoPartyOwner(uint64_t memory_bytes,
                                               double rtt_s, double rate) {
  HardwareProfile profile;
  profile.secure_memory_bytes = memory_bytes;
  // Commodity CPU: symmetric crypto is no longer the bottleneck.
  profile.crypto_rate = 100.0 * kMB;
  // There is no coprocessor link; the network replaces it.
  profile.link_rate = 0.0;
  profile.network_rtt_s = rtt_s;
  profile.network_rate = rate;
  return profile;
}

}  // namespace shpir::hardware
