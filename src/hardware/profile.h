#ifndef SHPIR_HARDWARE_PROFILE_H_
#define SHPIR_HARDWARE_PROFILE_H_

#include <cstdint>

namespace shpir::hardware {

/// Decimal units, matching the paper's figures (1KB page = 1000 bytes,
/// 1GB database = 1e9 bytes).
inline constexpr uint64_t kKB = 1000;
inline constexpr uint64_t kMB = 1000 * 1000;
inline constexpr uint64_t kGB = 1000 * 1000 * 1000;
inline constexpr uint64_t kTB = 1000ull * 1000 * 1000 * 1000;

/// Performance characteristics of the secure hardware deployment,
/// parameterized exactly as the paper's Table 2.
struct HardwareProfile {
  /// Disk seek time t_s (seconds).
  double seek_time_s = 0.005;
  /// Disk sequential read/write rate r_d (bytes/second).
  double disk_rate = 100.0 * kMB;
  /// Secure-hardware link bandwidth r_l (bytes/second).
  double link_rate = 80.0 * kMB;
  /// Encryption/decryption throughput r_enc (bytes/second).
  double crypto_rate = 10.0 * kMB;
  /// Secure memory capacity (bytes); 64MB for one IBM 4764.
  uint64_t secure_memory_bytes = 64 * kMB;

  /// Two-party model parameters (zero in the three-party model): network
  /// round-trip time and transfer rate between owner and provider.
  double network_rtt_s = 0.0;
  double network_rate = 0.0;

  /// The paper's Table 2 configuration: one IBM 4764 coprocessor.
  static HardwareProfile Ibm4764();

  /// A modern (c. 2026) trusted-execution deployment: NVMe storage
  /// (~100us access, 3 GB/s), PCIe-class link, AES-NI-rate crypto and
  /// 16GB of enclave-usable memory. Used by the extension benches to
  /// show how the scheme's trade-off shifts on current hardware.
  static HardwareProfile ModernTee();

  /// `units` coprocessors combined for secure storage (the paper's
  /// multi-coprocessor deployments for 100GB/1TB databases). Throughput
  /// characteristics are unchanged; only capacity scales.
  static HardwareProfile Ibm4764Array(int units);

  /// Two-party model (§5, Fig. 7): owner-side commodity server with
  /// `memory_bytes` of storage, talking to the provider over a network
  /// with the given RTT and rate. Crypto runs at commodity-CPU speed.
  /// The default rate (2.46 MB/s) is calibrated so the model reproduces
  /// the paper's measured WiFi numbers (0.737s at n = 1e9, m = 2e6).
  static HardwareProfile TwoPartyOwner(uint64_t memory_bytes,
                                       double rtt_s = 0.050,
                                       double rate = 2.46 * kMB);
};

}  // namespace shpir::hardware

#endif  // SHPIR_HARDWARE_PROFILE_H_
