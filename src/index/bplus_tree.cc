#include "index/bplus_tree.h"

#include <algorithm>

#include "common/bytes.h"

namespace shpir::index {

namespace {

using storage::Page;
using storage::PageId;

constexpr uint8_t kMetaNode = 0;
constexpr uint8_t kInternalNode = 1;
constexpr uint8_t kLeafNode = 2;
constexpr uint64_t kMagic = 0x5348504952425431ull;  // "SHPIRBT1".
constexpr uint64_t kNoLeaf = UINT64_MAX;

// Layout sizes.
constexpr size_t kLeafHeader = 1 + 2 + 8;    // type, count, next_leaf.
constexpr size_t kInternalHeader = 1 + 2;    // type, count.
constexpr size_t kMetaSize = 1 + 8 + 8 + 8 + 8;

struct LeafView {
  uint16_t count;
  uint64_t next_leaf;
  const uint8_t* entries;  // count * (key, value).
};

struct InternalView {
  uint16_t count;          // Number of keys; count+1 children follow.
  const uint8_t* keys;
  const uint8_t* children;
};

Result<LeafView> ParseLeaf(ByteSpan data) {
  // shpir-lint-allow-next-line(secret-branch, secret-compare): node-type tag check on a page already retrieved through the PIR engine; client-local format validation
  if (data.size() < kLeafHeader || data[0] != kLeafNode) {
    return DataLossError("malformed leaf node");
  }
  LeafView view;
  view.count = static_cast<uint16_t>(data[1] | (data[2] << 8));
  view.next_leaf = LoadLE64(data.data() + 3);
  if (kLeafHeader + view.count * 16u > data.size()) {
    return DataLossError("leaf count exceeds page");
  }
  view.entries = data.data() + kLeafHeader;
  return view;
}

Result<InternalView> ParseInternal(ByteSpan data) {
  // shpir-lint-allow-next-line(secret-branch, secret-compare): node-type tag check on a page already retrieved through the PIR engine; client-local format validation
  if (data.size() < kInternalHeader || data[0] != kInternalNode) {
    return DataLossError("malformed internal node");
  }
  InternalView view;
  view.count = static_cast<uint16_t>(data[1] | (data[2] << 8));
  if (kInternalHeader + view.count * 8u + (view.count + 1u) * 8u >
      data.size()) {
    return DataLossError("internal count exceeds page");
  }
  view.keys = data.data() + kInternalHeader;
  view.children = view.keys + view.count * 8;
  return view;
}

}  // namespace

BPlusTreeBuilder::BPlusTreeBuilder(size_t page_size)
    : page_size_(page_size),
      leaf_capacity_(page_size > kLeafHeader ? (page_size - kLeafHeader) / 16
                                             : 0),
      internal_capacity_(
          page_size > kInternalHeader + 8
              ? (page_size - kInternalHeader - 8) / 16
              : 0) {}

Result<std::vector<Page>> BPlusTreeBuilder::Build(
    const std::vector<std::pair<uint64_t, uint64_t>>& entries) const {
  if (leaf_capacity_ < 2 || internal_capacity_ < 2) {
    return InvalidArgumentError("page size too small for B+-tree nodes");
  }
  for (size_t i = 1; i < entries.size(); ++i) {
    if (entries[i - 1].first >= entries[i].first) {
      return InvalidArgumentError("entries must be sorted and unique");
    }
  }

  std::vector<Page> pages;
  pages.emplace_back(0, Bytes(page_size_, 0));  // Meta, filled last.
  auto alloc = [&]() -> Page& {
    pages.emplace_back(pages.size(), Bytes(page_size_, 0));
    return pages.back();
  };

  // Build the leaf level. Each element of `level` is (first key, page).
  std::vector<std::pair<uint64_t, PageId>> level;
  {
    size_t pos = 0;
    std::vector<PageId> leaf_ids;
    do {
      const size_t take = std::min(leaf_capacity_, entries.size() - pos);
      Page& page = alloc();
      page.data[0] = kLeafNode;
      page.data[1] = static_cast<uint8_t>(take & 0xff);
      page.data[2] = static_cast<uint8_t>(take >> 8);
      StoreLE64(kNoLeaf, page.data.data() + 3);
      for (size_t i = 0; i < take; ++i) {
        StoreLE64(entries[pos + i].first,
                  page.data.data() + kLeafHeader + i * 16);
        StoreLE64(entries[pos + i].second,
                  page.data.data() + kLeafHeader + i * 16 + 8);
      }
      const uint64_t first_key = take > 0 ? entries[pos].first : 0;
      level.emplace_back(first_key, page.id);
      leaf_ids.push_back(page.id);
      pos += take;
    } while (pos < entries.size());
    // Chain the leaves.
    for (size_t i = 0; i + 1 < leaf_ids.size(); ++i) {
      StoreLE64(leaf_ids[i + 1], pages[leaf_ids[i]].data.data() + 3);
    }
  }

  // Build internal levels until a single root remains.
  uint64_t height = 1;
  while (level.size() > 1) {
    std::vector<std::pair<uint64_t, PageId>> parent_level;
    size_t pos = 0;
    while (pos < level.size()) {
      // Children per node: up to internal_capacity_ + 1; avoid leaving a
      // lone child in the final node.
      size_t take = std::min(internal_capacity_ + 1, level.size() - pos);
      const size_t remaining = level.size() - pos - take;
      if (remaining == 1) {
        --take;
      }
      Page& page = alloc();
      const size_t num_keys = take - 1;
      page.data[0] = kInternalNode;
      page.data[1] = static_cast<uint8_t>(num_keys & 0xff);
      page.data[2] = static_cast<uint8_t>(num_keys >> 8);
      uint8_t* keys = page.data.data() + kInternalHeader;
      uint8_t* children = keys + num_keys * 8;
      for (size_t i = 0; i < take; ++i) {
        if (i > 0) {
          StoreLE64(level[pos + i].first, keys + (i - 1) * 8);
        }
        StoreLE64(level[pos + i].second, children + i * 8);
      }
      parent_level.emplace_back(level[pos].first, page.id);
      pos += take;
    }
    level = std::move(parent_level);
    ++height;
  }

  // Fill the metadata page.
  Bytes& meta = pages[0].data;
  meta[0] = kMetaNode;
  StoreLE64(kMagic, meta.data() + 1);
  StoreLE64(level[0].second, meta.data() + 9);   // Root.
  StoreLE64(height, meta.data() + 17);
  StoreLE64(entries.size(), meta.data() + 25);
  static_assert(kMetaSize <= 64, "meta layout");
  return pages;
}

Result<std::unique_ptr<BPlusTree>> BPlusTree::Open(core::PirEngine* engine) {
  if (engine == nullptr) {
    return InvalidArgumentError("engine is required");
  }
  SHPIR_ASSIGN_OR_RETURN(Bytes meta, engine->Retrieve(0));
  // shpir-lint-allow-next-line(secret-branch, secret-compare): magic/format validation of the meta page, a fixed public access made once at open time
  if (meta.size() < kMetaSize || meta[0] != kMetaNode ||
      LoadLE64(meta.data() + 1) != kMagic) {
    return DataLossError("not a B+-tree metadata page");
  }
  const uint64_t root = LoadLE64(meta.data() + 9);
  const uint64_t height = LoadLE64(meta.data() + 17);
  const uint64_t num_keys = LoadLE64(meta.data() + 25);
  std::unique_ptr<BPlusTree> tree(
      new BPlusTree(engine, root, height, num_keys));
  tree->retrievals_ = 1;
  return tree;
}

Result<Bytes> BPlusTree::FetchPage(PageId id) {
  ++retrievals_;
  return engine_->Retrieve(id);
}

Result<std::optional<uint64_t>> BPlusTree::Lookup(uint64_t key) {
  PageId node = root_;
  for (uint64_t depth = 1; depth < height_; ++depth) {
    SHPIR_ASSIGN_OR_RETURN(Bytes data, FetchPage(node));
    SHPIR_ASSIGN_OR_RETURN(InternalView view, ParseInternal(data));
    // Child i covers keys in [keys[i-1], keys[i]).
    size_t child = view.count;
    // shpir-lint-allow-next-line(secret-loop-bound): descent within one already-retrieved node; the provider sees exactly height_ fetches regardless of the key
    for (size_t i = 0; i < view.count; ++i) {
      // shpir-lint-allow-next-line(secret-loop-bound): client-local child pick; no fetch depends on where this loop stops
      if (key < LoadLE64(view.keys + i * 8)) {
        child = i;
        break;
      }
    }
    node = LoadLE64(view.children + child * 8);
  }
  SHPIR_ASSIGN_OR_RETURN(Bytes data, FetchPage(node));
  SHPIR_ASSIGN_OR_RETURN(LeafView view, ParseLeaf(data));
  std::optional<uint64_t> result;
  // shpir-lint-allow-next-line(secret-loop-bound): fixed scan over the retrieved leaf; the count is page metadata, not query-derived
  for (size_t i = 0; i < view.count; ++i) {
    // shpir-lint-allow-next-line(secret-branch, secret-compare): latch-on-match leaf scan with no early exit (see note below)
    if (LoadLE64(view.entries + i * 16) == key) {
      result = LoadLE64(view.entries + i * 16 + 8);
      // No break: fixed scan cost regardless of match position.
    }
  }
  return result;
}

Result<std::vector<std::pair<uint64_t, uint64_t>>> BPlusTree::RangeScan(
    uint64_t lo, uint64_t hi) {
  std::vector<std::pair<uint64_t, uint64_t>> results;
  if (lo > hi || num_keys_ == 0) {
    return results;
  }
  // Descend to the leaf that would contain lo.
  PageId node = root_;
  for (uint64_t depth = 1; depth < height_; ++depth) {
    SHPIR_ASSIGN_OR_RETURN(Bytes data, FetchPage(node));
    SHPIR_ASSIGN_OR_RETURN(InternalView view, ParseInternal(data));
    size_t child = view.count;
    // shpir-lint-allow-next-line(secret-loop-bound): descent within one already-retrieved node; exactly height_ fetches regardless of the bound
    for (size_t i = 0; i < view.count; ++i) {
      // shpir-lint-allow-next-line(secret-loop-bound): client-local child pick; no fetch depends on where this loop stops
      if (lo < LoadLE64(view.keys + i * 8)) {
        child = i;
        break;
      }
    }
    node = LoadLE64(view.children + child * 8);
  }
  // Walk the leaf chain.
  // shpir-lint-allow-next-line(secret-compare, secret-loop-bound): leaf-chain walk; the number of leaf fetches reveals only the result-set extent, the declared output size of a range scan
  while (node != kNoLeaf) {
    SHPIR_ASSIGN_OR_RETURN(Bytes data, FetchPage(node));
    SHPIR_ASSIGN_OR_RETURN(LeafView view, ParseLeaf(data));
    bool past_end = false;
    // shpir-lint-allow-next-line(secret-loop-bound): per-leaf entry scan; the count is page metadata on an already-retrieved page
    for (size_t i = 0; i < view.count; ++i) {
      const uint64_t key = LoadLE64(view.entries + i * 16);
      // shpir-lint-allow-next-line(secret-loop-bound): stop-past-hi latch; the walk length it bounds is the declared result-set extent
      if (key > hi) {
        past_end = true;
        break;
      }
      // shpir-lint-allow-next-line(secret-branch): in-range filter over the retrieved leaf; selection happens client-side after the fetch
      if (key >= lo) {
        results.emplace_back(key, LoadLE64(view.entries + i * 16 + 8));
      }
    }
    if (past_end) {
      break;
    }
    node = view.next_leaf;
  }
  return results;
}

}  // namespace shpir::index
