#ifndef SHPIR_INDEX_BPLUS_TREE_H_
#define SHPIR_INDEX_BPLUS_TREE_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <utility>
#include <vector>

#include "common/result.h"
#include "core/pir_engine.h"
#include "storage/page.h"

namespace shpir::index {

/// A disk-resident B+-tree whose nodes are database pages served through
/// a PirEngine. This is the paper's motivating workload ([23]: private
/// query processing over multi-level index structures): the client walks
/// the index with one private page retrieval per level, so the server
/// never learns the search key — only that *some* index traversal
/// happened.
///
/// Keys and values are uint64. The tree is built offline by the data
/// owner (BPlusTreeBuilder) into a flat vector of pages which is then
/// loaded into any PIR engine; BPlusTree issues the private lookups.

/// Builds the page-serialized tree bottom-up from sorted unique keys.
class BPlusTreeBuilder {
 public:
  /// `page_size` must fit at least two entries per node.
  explicit BPlusTreeBuilder(size_t page_size);

  /// Serializes a B+-tree over `entries` (must be sorted by key, unique)
  /// into pages. Page 0 is a metadata page; the root is recorded there.
  Result<std::vector<storage::Page>> Build(
      const std::vector<std::pair<uint64_t, uint64_t>>& entries) const;

  /// Maximum entries per leaf node for this page size.
  size_t leaf_capacity() const { return leaf_capacity_; }
  /// Maximum keys per internal node for this page size.
  size_t internal_capacity() const { return internal_capacity_; }

 private:
  size_t page_size_;
  size_t leaf_capacity_;
  size_t internal_capacity_;
};

/// Client-side reader: every node fetch is a private retrieval.
class BPlusTree {
 public:
  /// Opens a tree whose pages were loaded into `engine` (unowned). Reads
  /// the metadata page (one private retrieval).
  static Result<std::unique_ptr<BPlusTree>> Open(core::PirEngine* engine);

  /// Point lookup. Returns nullopt when the key is absent. Costs
  /// height+1 private retrievals... exactly the same number for hits and
  /// misses (no early exit), so the outcome is not observable.
  Result<std::optional<uint64_t>> Lookup(uint64_t key);

  /// Range scan over [lo, hi]: descends to the first leaf, then follows
  /// leaf links. Returns (key, value) pairs in key order.
  Result<std::vector<std::pair<uint64_t, uint64_t>>> RangeScan(uint64_t lo,
                                                               uint64_t hi);

  uint64_t height() const { return height_; }
  uint64_t num_keys() const { return num_keys_; }
  uint64_t root_page() const { return root_; }

  /// Private retrievals issued so far (for cost comparisons).
  uint64_t retrievals() const { return retrievals_; }

 private:
  BPlusTree(core::PirEngine* engine, uint64_t root, uint64_t height,
            uint64_t num_keys)
      : engine_(engine), root_(root), height_(height), num_keys_(num_keys) {}

  Result<Bytes> FetchPage(storage::PageId id);

  core::PirEngine* engine_;
  uint64_t root_;
  uint64_t height_;
  uint64_t num_keys_;
  uint64_t retrievals_ = 0;
};

}  // namespace shpir::index

#endif  // SHPIR_INDEX_BPLUS_TREE_H_
