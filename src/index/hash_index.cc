#include "index/hash_index.h"

#include <algorithm>

#include "common/bytes.h"
#include "crypto/sha256.h"

namespace shpir::index {

namespace {

using storage::Page;

constexpr uint8_t kMetaNode = 0;
constexpr uint8_t kBucketNode = 3;
constexpr uint64_t kMagic = 0x5348504952485831ull;  // "SHPIRHX1".
constexpr size_t kBucketHeader = 1 + 2;             // type, count.
constexpr size_t kMetaSize = 1 + 8 + 8 + 8 + 8 + 8;

uint64_t HashKey(uint64_t key, uint64_t seed, uint64_t buckets) {
  uint8_t msg[16];
  StoreLE64(key, msg);
  StoreLE64(seed, msg + 8);
  const auto digest = crypto::Sha256::Hash(ByteSpan(msg, 16));
  return LoadLE64(digest.data()) % buckets;
}

}  // namespace

HashIndexBuilder::HashIndexBuilder(size_t page_size, uint64_t probe_width)
    : page_size_(page_size),
      probe_width_(probe_width),
      bucket_capacity_(page_size > kBucketHeader
                           ? (page_size - kBucketHeader) / 16
                           : 0) {}

Result<std::vector<Page>> HashIndexBuilder::Build(
    std::vector<std::pair<uint64_t, uint64_t>> entries) const {
  if (bucket_capacity_ < 1) {
    return InvalidArgumentError("page size too small for hash buckets");
  }
  if (probe_width_ < 1) {
    return InvalidArgumentError("probe width must be >= 1");
  }
  {
    std::vector<uint64_t> keys;
    keys.reserve(entries.size());
    for (const auto& e : entries) {
      keys.push_back(e.first);
    }
    std::sort(keys.begin(), keys.end());
    if (std::adjacent_find(keys.begin(), keys.end()) != keys.end()) {
      return InvalidArgumentError("duplicate keys");
    }
  }
  // Size for a ~60% load factor, at least probe_width buckets.
  const uint64_t needed =
      (entries.size() * 10 + bucket_capacity_ * 6 - 1) /
      std::max<uint64_t>(1, bucket_capacity_ * 6);
  const uint64_t num_buckets = std::max<uint64_t>(needed, probe_width_);

  std::vector<std::vector<std::pair<uint64_t, uint64_t>>> buckets;
  uint64_t seed = 0;
  bool placed = false;
  for (uint64_t attempt = 0; attempt < 64 && !placed; ++attempt) {
    seed = 0x9e3779b97f4a7c15ull * (attempt + 1);
    buckets.assign(num_buckets, {});
    placed = true;
    for (const auto& entry : entries) {
      const uint64_t h = HashKey(entry.first, seed, num_buckets);
      bool stored = false;
      for (uint64_t w = 0; w < probe_width_; ++w) {
        auto& bucket = buckets[(h + w) % num_buckets];
        if (bucket.size() < bucket_capacity_) {
          bucket.push_back(entry);
          stored = true;
          break;
        }
      }
      if (!stored) {
        placed = false;
        break;
      }
    }
  }
  if (!placed) {
    return InternalError("could not place all keys; lower the load");
  }

  std::vector<Page> pages;
  pages.emplace_back(0, Bytes(page_size_, 0));
  Bytes& meta = pages[0].data;
  meta[0] = kMetaNode;
  StoreLE64(kMagic, meta.data() + 1);
  StoreLE64(num_buckets, meta.data() + 9);
  StoreLE64(probe_width_, meta.data() + 17);
  StoreLE64(seed, meta.data() + 25);
  StoreLE64(entries.size(), meta.data() + 33);
  static_assert(kMetaSize <= 64, "meta layout");

  for (uint64_t b = 0; b < num_buckets; ++b) {
    pages.emplace_back(1 + b, Bytes(page_size_, 0));
    Bytes& data = pages.back().data;
    data[0] = kBucketNode;
    data[1] = static_cast<uint8_t>(buckets[b].size() & 0xff);
    data[2] = static_cast<uint8_t>(buckets[b].size() >> 8);
    for (size_t i = 0; i < buckets[b].size(); ++i) {
      StoreLE64(buckets[b][i].first, data.data() + kBucketHeader + i * 16);
      StoreLE64(buckets[b][i].second,
                data.data() + kBucketHeader + i * 16 + 8);
    }
  }
  return pages;
}

Result<std::unique_ptr<HashIndex>> HashIndex::Open(core::PirEngine* engine) {
  if (engine == nullptr) {
    return InvalidArgumentError("engine is required");
  }
  SHPIR_ASSIGN_OR_RETURN(Bytes meta, engine->Retrieve(0));
  // shpir-lint-allow-next-line(secret-branch, secret-compare): magic/format validation of the meta page, a fixed public access made once at open time
  if (meta.size() < kMetaSize || meta[0] != kMetaNode ||
      LoadLE64(meta.data() + 1) != kMagic) {
    return DataLossError("not a hash index metadata page");
  }
  const uint64_t num_buckets = LoadLE64(meta.data() + 9);
  const uint64_t probe_width = LoadLE64(meta.data() + 17);
  const uint64_t seed = LoadLE64(meta.data() + 25);
  const uint64_t num_keys = LoadLE64(meta.data() + 33);
  std::unique_ptr<HashIndex> index(
      new HashIndex(engine, num_buckets, probe_width, seed, num_keys));
  index->retrievals_ = 1;
  return index;
}

Result<std::optional<uint64_t>> HashIndex::Lookup(uint64_t key) {
  const uint64_t h = HashKey(key, seed_, num_buckets_);
  std::optional<uint64_t> result;
  for (uint64_t w = 0; w < probe_width_; ++w) {
    const uint64_t bucket = (h + w) % num_buckets_;
    ++retrievals_;
    SHPIR_ASSIGN_OR_RETURN(Bytes data, engine_->Retrieve(1 + bucket));
    // shpir-lint-allow-next-line(secret-compare, secret-loop-bound): bucket-type tag check; fires only on corrupt data, and the probe shape is fixed at probe_width_ fetches either way
    if (data.size() < kBucketHeader || data[0] != kBucketNode) {
      return DataLossError("malformed bucket page");
    }
    const uint16_t count =
        static_cast<uint16_t>(data[1] | (data[2] << 8));
    // shpir-lint-allow-next-line(secret-loop-bound): bucket-capacity bound check; fires only on corrupt data
    if (kBucketHeader + count * 16u > data.size()) {
      return DataLossError("bucket count exceeds page");
    }
    // shpir-lint-allow-next-line(secret-loop-bound): per-bucket entry scan; the count is page metadata on an already-retrieved page
    for (uint16_t i = 0; i < count; ++i) {
      // shpir-lint-allow-next-line(secret-branch): latch-on-match scan; no early exit, fixed probe shape (see note below)
      if (LoadLE64(data.data() + kBucketHeader + i * 16) == key) {
        result = LoadLE64(data.data() + kBucketHeader + i * 16 + 8);
        // No early exit: fixed probe shape.
      }
    }
  }
  return result;
}

}  // namespace shpir::index
