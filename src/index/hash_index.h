#ifndef SHPIR_INDEX_HASH_INDEX_H_
#define SHPIR_INDEX_HASH_INDEX_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <utility>
#include <vector>

#include "common/result.h"
#include "core/pir_engine.h"
#include "storage/page.h"

namespace shpir::index {

/// A static hash index over pages with a *fixed* probe width: every
/// lookup privately fetches exactly `probe_width` bucket pages, so hits,
/// misses and bucket collisions are all indistinguishable in cost and
/// shape — one retrieval cheaper than a B+-tree for point lookups, at
/// the cost of no range scans.
///
/// The builder places each key into one of the `probe_width` consecutive
/// buckets starting at its hash, retrying with a fresh hash seed until
/// everything fits (load factor is kept moderate so a few attempts
/// suffice).
class HashIndexBuilder {
 public:
  /// `probe_width` >= 1 pages fetched per lookup.
  explicit HashIndexBuilder(size_t page_size, uint64_t probe_width = 2);

  /// Serializes the index over `entries` (unique keys, any order) into
  /// pages. Page 0 is the metadata page.
  Result<std::vector<storage::Page>> Build(
      std::vector<std::pair<uint64_t, uint64_t>> entries) const;

  /// Entries stored per bucket page.
  size_t bucket_capacity() const { return bucket_capacity_; }

 private:
  size_t page_size_;
  uint64_t probe_width_;
  size_t bucket_capacity_;
};

/// Client-side reader over any PirEngine.
class HashIndex {
 public:
  /// Opens an index whose pages were loaded into `engine` (unowned).
  static Result<std::unique_ptr<HashIndex>> Open(core::PirEngine* engine);

  /// Point lookup: exactly probe_width() private retrievals, hit or miss.
  Result<std::optional<uint64_t>> Lookup(uint64_t key);

  uint64_t num_keys() const { return num_keys_; }
  uint64_t num_buckets() const { return num_buckets_; }
  uint64_t probe_width() const { return probe_width_; }
  uint64_t retrievals() const { return retrievals_; }

 private:
  HashIndex(core::PirEngine* engine, uint64_t num_buckets,
            uint64_t probe_width, uint64_t seed, uint64_t num_keys)
      : engine_(engine),
        num_buckets_(num_buckets),
        probe_width_(probe_width),
        seed_(seed),
        num_keys_(num_keys) {}

  core::PirEngine* engine_;
  uint64_t num_buckets_;
  uint64_t probe_width_;
  uint64_t seed_;
  uint64_t num_keys_;
  uint64_t retrievals_ = 0;
};

}  // namespace shpir::index

#endif  // SHPIR_INDEX_HASH_INDEX_H_
