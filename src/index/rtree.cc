#include "index/rtree.h"

#include <algorithm>
#include <cmath>
#include <queue>

#include "common/bytes.h"

namespace shpir::index {

namespace {

using storage::Page;
using storage::PageId;

constexpr uint8_t kMetaNode = 0;
constexpr uint8_t kLeafNode = 4;
constexpr uint8_t kInternalNode = 5;
constexpr uint64_t kMagic = 0x5348504952525431ull;  // "SHPIRRT1".
constexpr size_t kHeader = 1 + 2;                   // type, count.
constexpr size_t kLeafEntry = 4 + 4 + 8;            // x, y, value.
constexpr size_t kInternalEntry = 8 + 16;           // child, rect.
constexpr size_t kMetaSize = 1 + 8 + 8 + 8 + 8;

// Squared Euclidean distance from (x, y) to the nearest point of
// `rect`; 128-bit to survive full 32-bit coordinates.
unsigned __int128 MinDist2(uint32_t x, uint32_t y, const Rect& rect) {
  uint64_t dx = 0, dy = 0;
  if (x < rect.min_x) {
    dx = rect.min_x - x;
  } else if (x > rect.max_x) {
    dx = x - rect.max_x;
  }
  if (y < rect.min_y) {
    dy = rect.min_y - y;
  } else if (y > rect.max_y) {
    dy = y - rect.max_y;
  }
  return static_cast<unsigned __int128>(dx) * dx +
         static_cast<unsigned __int128>(dy) * dy;
}

unsigned __int128 PointDist2(uint32_t x, uint32_t y, uint32_t px,
                             uint32_t py) {
  const uint64_t dx = x > px ? x - px : px - x;
  const uint64_t dy = y > py ? y - py : py - y;
  return static_cast<unsigned __int128>(dx) * dx +
         static_cast<unsigned __int128>(dy) * dy;
}

void WriteRect(const Rect& rect, uint8_t* out) {
  StoreLE32(rect.min_x, out);
  StoreLE32(rect.min_y, out + 4);
  StoreLE32(rect.max_x, out + 8);
  StoreLE32(rect.max_y, out + 12);
}

Rect ReadRect(const uint8_t* in) {
  return Rect{LoadLE32(in), LoadLE32(in + 4), LoadLE32(in + 8),
              LoadLE32(in + 12)};
}

struct NodeRef {
  PageId page;
  Rect mbr;
};

// Sort-Tile-Recursive packing of `items` into groups of at most
// `capacity`, keyed by the given center coordinates.
template <typename T, typename GetX, typename GetY>
std::vector<std::vector<T>> StrPack(std::vector<T> items, size_t capacity,
                                    GetX get_x, GetY get_y) {
  std::vector<std::vector<T>> groups;
  if (items.empty()) {
    return groups;
  }
  const size_t num_groups = (items.size() + capacity - 1) / capacity;
  const size_t num_slabs = static_cast<size_t>(
      std::ceil(std::sqrt(static_cast<double>(num_groups))));
  const size_t slab_size =
      ((num_groups + num_slabs - 1) / num_slabs) * capacity;
  std::sort(items.begin(), items.end(),
            [&](const T& a, const T& b) { return get_x(a) < get_x(b); });
  for (size_t start = 0; start < items.size(); start += slab_size) {
    const size_t end = std::min(start + slab_size, items.size());
    std::sort(items.begin() + static_cast<ptrdiff_t>(start),
              items.begin() + static_cast<ptrdiff_t>(end),
              [&](const T& a, const T& b) { return get_y(a) < get_y(b); });
    for (size_t pos = start; pos < end; pos += capacity) {
      const size_t group_end = std::min(pos + capacity, end);
      groups.emplace_back(
          items.begin() + static_cast<ptrdiff_t>(pos),
          items.begin() + static_cast<ptrdiff_t>(group_end));
    }
  }
  return groups;
}

}  // namespace

RTreeBuilder::RTreeBuilder(size_t page_size)
    : page_size_(page_size),
      leaf_capacity_(page_size > kHeader ? (page_size - kHeader) / kLeafEntry
                                         : 0),
      internal_capacity_(
          page_size > kHeader ? (page_size - kHeader) / kInternalEntry : 0) {}

Result<std::vector<Page>> RTreeBuilder::Build(
    std::vector<SpatialEntry> points) const {
  if (leaf_capacity_ < 2 || internal_capacity_ < 2) {
    return InvalidArgumentError("page size too small for R-tree nodes");
  }
  std::vector<Page> pages;
  pages.emplace_back(0, Bytes(page_size_, 0));  // Meta, filled last.
  auto alloc = [&]() -> Page& {
    pages.emplace_back(pages.size(), Bytes(page_size_, 0));
    return pages.back();
  };

  // Leaf level.
  std::vector<NodeRef> level;
  uint64_t height = 1;
  const auto leaf_groups =
      StrPack(std::move(points), leaf_capacity_,
              [](const SpatialEntry& e) { return e.x; },
              [](const SpatialEntry& e) { return e.y; });
  if (leaf_groups.empty()) {
    // Empty tree: a single empty leaf as root.
    Page& page = alloc();
    page.data[0] = kLeafNode;
    level.push_back(NodeRef{page.id, Rect{}});
  }
  for (const auto& group : leaf_groups) {
    Page& page = alloc();
    page.data[0] = kLeafNode;
    page.data[1] = static_cast<uint8_t>(group.size() & 0xff);
    page.data[2] = static_cast<uint8_t>(group.size() >> 8);
    Rect mbr{UINT32_MAX, UINT32_MAX, 0, 0};
    for (size_t i = 0; i < group.size(); ++i) {
      uint8_t* out = page.data.data() + kHeader + i * kLeafEntry;
      StoreLE32(group[i].x, out);
      StoreLE32(group[i].y, out + 4);
      StoreLE64(group[i].value, out + 8);
      mbr.min_x = std::min(mbr.min_x, group[i].x);
      mbr.min_y = std::min(mbr.min_y, group[i].y);
      mbr.max_x = std::max(mbr.max_x, group[i].x);
      mbr.max_y = std::max(mbr.max_y, group[i].y);
    }
    level.push_back(NodeRef{page.id, mbr});
  }

  // Internal levels until one root remains.
  while (level.size() > 1) {
    const auto groups = StrPack(
        std::move(level), internal_capacity_,
        [](const NodeRef& n) {
          return (static_cast<uint64_t>(n.mbr.min_x) + n.mbr.max_x) / 2;
        },
        [](const NodeRef& n) {
          return (static_cast<uint64_t>(n.mbr.min_y) + n.mbr.max_y) / 2;
        });
    level.clear();
    for (const auto& group : groups) {
      Page& page = alloc();
      page.data[0] = kInternalNode;
      page.data[1] = static_cast<uint8_t>(group.size() & 0xff);
      page.data[2] = static_cast<uint8_t>(group.size() >> 8);
      Rect mbr{UINT32_MAX, UINT32_MAX, 0, 0};
      for (size_t i = 0; i < group.size(); ++i) {
        uint8_t* out = page.data.data() + kHeader + i * kInternalEntry;
        StoreLE64(group[i].page, out);
        WriteRect(group[i].mbr, out + 8);
        mbr.min_x = std::min(mbr.min_x, group[i].mbr.min_x);
        mbr.min_y = std::min(mbr.min_y, group[i].mbr.min_y);
        mbr.max_x = std::max(mbr.max_x, group[i].mbr.max_x);
        mbr.max_y = std::max(mbr.max_y, group[i].mbr.max_y);
      }
      level.push_back(NodeRef{page.id, mbr});
    }
    ++height;
  }

  Bytes& meta = pages[0].data;
  meta[0] = kMetaNode;
  StoreLE64(kMagic, meta.data() + 1);
  StoreLE64(level[0].page, meta.data() + 9);
  StoreLE64(height, meta.data() + 17);
  uint64_t total = 0;
  for (const auto& group : leaf_groups) {
    total += group.size();
  }
  StoreLE64(total, meta.data() + 25);
  static_assert(kMetaSize <= 64, "meta layout");
  return pages;
}

Result<std::unique_ptr<RTree>> RTree::Open(core::PirEngine* engine) {
  if (engine == nullptr) {
    return InvalidArgumentError("engine is required");
  }
  SHPIR_ASSIGN_OR_RETURN(Bytes meta, engine->Retrieve(0));
  // shpir-lint-allow-next-line(secret-branch, secret-compare): magic/format validation of the meta page, a fixed public access made once at open time
  if (meta.size() < kMetaSize || meta[0] != kMetaNode ||
      LoadLE64(meta.data() + 1) != kMagic) {
    return DataLossError("not an R-tree metadata page");
  }
  std::unique_ptr<RTree> tree(
      new RTree(engine, LoadLE64(meta.data() + 9),
                LoadLE64(meta.data() + 17), LoadLE64(meta.data() + 25)));
  tree->retrievals_ = 1;
  return tree;
}

Result<Bytes> RTree::FetchPage(PageId id) {
  ++retrievals_;
  return engine_->Retrieve(id);
}

Result<std::vector<SpatialEntry>> RTree::RangeSearch(const Rect& window) {
  std::vector<SpatialEntry> results;
  std::vector<PageId> stack = {root_};
  while (!stack.empty()) {
    const PageId node = stack.back();
    stack.pop_back();
    SHPIR_ASSIGN_OR_RETURN(Bytes data, FetchPage(node));
    if (data.size() < kHeader) {
      return DataLossError("malformed R-tree node");
    }
    const uint16_t count = static_cast<uint16_t>(data[1] | (data[2] << 8));
    // shpir-lint-allow-next-line(secret-compare, secret-loop-bound): node-type dispatch on an already-retrieved page; the traversal's fetch sequence reveals only which subtrees intersect the window — the declared output shape of a spatial query
    if (data[0] == kLeafNode) {
      // shpir-lint-allow-next-line(secret-loop-bound): capacity bound check; fires only on corrupt data
      if (kHeader + count * kLeafEntry > data.size()) {
        return DataLossError("leaf count exceeds page");
      }
      // shpir-lint-allow-next-line(secret-loop-bound): per-node entry scan; the count is page metadata
      for (uint16_t i = 0; i < count; ++i) {
        const uint8_t* in = data.data() + kHeader + i * kLeafEntry;
        SpatialEntry entry{LoadLE32(in), LoadLE32(in + 4),
                           LoadLE64(in + 8)};
        if (window.Contains(entry.x, entry.y)) {
          results.push_back(entry);
        }
      }
    // shpir-lint-allow-next-line(secret-compare, secret-loop-bound): second arm of the same node-type dispatch
    } else if (data[0] == kInternalNode) {
      // shpir-lint-allow-next-line(secret-loop-bound): capacity bound check; fires only on corrupt data
      if (kHeader + count * kInternalEntry > data.size()) {
        return DataLossError("internal count exceeds page");
      }
      // shpir-lint-allow-next-line(secret-loop-bound): per-node entry scan; the count is page metadata
      for (uint16_t i = 0; i < count; ++i) {
        const uint8_t* in = data.data() + kHeader + i * kInternalEntry;
        const Rect mbr = ReadRect(in + 8);
        // shpir-lint-allow-next-line(secret-branch): MBR pruning determines which child pages are fetched; each fetch is PIR-protected, so only the (declared) result shape is visible
        if (window.Intersects(mbr)) {
          stack.push_back(LoadLE64(in));
        }
      }
    } else {
      return DataLossError("unknown R-tree node type");
    }
  }
  return results;
}

Result<std::vector<SpatialEntry>> RTree::NearestNeighbors(uint32_t x,
                                                          uint32_t y,
                                                          size_t k) {
  // Best-first search: a min-heap over both nodes (MBR min-dist) and
  // materialized points. When a point surfaces before any closer node,
  // it is a confirmed neighbor.
  struct HeapItem {
    unsigned __int128 dist2;
    bool is_point;
    PageId node;
    SpatialEntry entry;
  };
  struct Greater {
    bool operator()(const HeapItem& a, const HeapItem& b) const {
      return a.dist2 > b.dist2;
    }
  };
  std::priority_queue<HeapItem, std::vector<HeapItem>, Greater> heap;
  heap.push(HeapItem{0, false, root_, {}});
  std::vector<SpatialEntry> results;
  while (!heap.empty() && results.size() < k) {
    const HeapItem item = heap.top();
    heap.pop();
    if (item.is_point) {
      results.push_back(item.entry);
      continue;
    }
    SHPIR_ASSIGN_OR_RETURN(Bytes data, FetchPage(item.node));
    if (data.size() < kHeader) {
      return DataLossError("malformed R-tree node");
    }
    const uint16_t count = static_cast<uint16_t>(data[1] | (data[2] << 8));
    // shpir-lint-allow-next-line(secret-branch, secret-compare): node-type dispatch on an already-retrieved page; best-first kNN fetch order reveals only the declared result ordering, each fetch being PIR-protected
    if (data[0] == kLeafNode) {
      // shpir-lint-allow-next-line(secret-loop-bound): per-node entry scan; the count is page metadata
      for (uint16_t i = 0; i < count; ++i) {
        const uint8_t* in = data.data() + kHeader + i * kLeafEntry;
        SpatialEntry entry{LoadLE32(in), LoadLE32(in + 4),
                           LoadLE64(in + 8)};
        heap.push(HeapItem{PointDist2(x, y, entry.x, entry.y), true, 0,
                           entry});
      }
    // shpir-lint-allow-next-line(secret-branch, secret-compare): second arm of the same node-type dispatch
    } else if (data[0] == kInternalNode) {
      // shpir-lint-allow-next-line(secret-loop-bound): per-node entry scan; the count is page metadata
      for (uint16_t i = 0; i < count; ++i) {
        const uint8_t* in = data.data() + kHeader + i * kInternalEntry;
        const Rect mbr = ReadRect(in + 8);
        heap.push(HeapItem{MinDist2(x, y, mbr), false, LoadLE64(in), {}});
      }
    } else {
      return DataLossError("unknown R-tree node type");
    }
  }
  return results;
}

}  // namespace shpir::index
