#ifndef SHPIR_INDEX_RTREE_H_
#define SHPIR_INDEX_RTREE_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "common/result.h"
#include "core/pir_engine.h"
#include "storage/page.h"

namespace shpir::index {

/// A 2D point record stored in the tree.
struct SpatialEntry {
  uint32_t x = 0;
  uint32_t y = 0;
  uint64_t value = 0;

  friend bool operator==(const SpatialEntry& a, const SpatialEntry& b) {
    return a.x == b.x && a.y == b.y && a.value == b.value;
  }
};

/// Axis-aligned bounding rectangle (inclusive bounds).
struct Rect {
  uint32_t min_x = 0, min_y = 0, max_x = 0, max_y = 0;

  bool Contains(uint32_t x, uint32_t y) const {
    return x >= min_x && x <= max_x && y >= min_y && y <= max_y;
  }
  bool Intersects(const Rect& other) const {
    return min_x <= other.max_x && other.min_x <= max_x &&
           min_y <= other.max_y && other.min_y <= max_y;
  }
};

/// Static packed R-tree over database pages — the index structure the
/// paper's motivating work ([23], private nearest-neighbor search)
/// traverses with PIR retrievals. Bulk-loaded with Sort-Tile-Recursive
/// packing; nodes are fixed-size pages served through any PirEngine, so
/// range and k-NN queries run privately: the server sees only opaque
/// page fetches.
class RTreeBuilder {
 public:
  explicit RTreeBuilder(size_t page_size);

  /// Packs `points` (any order) into pages. Page 0 is metadata.
  Result<std::vector<storage::Page>> Build(
      std::vector<SpatialEntry> points) const;

  size_t leaf_capacity() const { return leaf_capacity_; }
  size_t internal_capacity() const { return internal_capacity_; }

 private:
  size_t page_size_;
  size_t leaf_capacity_;
  size_t internal_capacity_;
};

/// Client-side reader issuing private page retrievals.
class RTree {
 public:
  static Result<std::unique_ptr<RTree>> Open(core::PirEngine* engine);

  /// All entries inside `window` (inclusive).
  Result<std::vector<SpatialEntry>> RangeSearch(const Rect& window);

  /// The `k` entries nearest to (x, y) by Euclidean distance,
  /// best-first branch-and-bound over MBR distances. Ties broken
  /// arbitrarily.
  Result<std::vector<SpatialEntry>> NearestNeighbors(uint32_t x, uint32_t y,
                                                     size_t k);

  uint64_t height() const { return height_; }
  uint64_t num_entries() const { return num_entries_; }
  uint64_t retrievals() const { return retrievals_; }

 private:
  RTree(core::PirEngine* engine, uint64_t root, uint64_t height,
        uint64_t num_entries)
      : engine_(engine),
        root_(root),
        height_(height),
        num_entries_(num_entries) {}

  Result<Bytes> FetchPage(storage::PageId id);

  core::PirEngine* engine_;
  uint64_t root_;
  uint64_t height_;
  uint64_t num_entries_;
  uint64_t retrievals_ = 0;
};

}  // namespace shpir::index

#endif  // SHPIR_INDEX_RTREE_H_
