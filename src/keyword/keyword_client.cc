#include "keyword/keyword_client.h"

#include <utility>

namespace shpir::keyword {

Result<std::unique_ptr<KeywordClient>> KeywordClient::Create(
    ByteSpan manifest, Fetch fetch) {
  if (!fetch) {
    return InvalidArgumentError("keyword client needs a fetch function");
  }
  SHPIR_ASSIGN_OR_RETURN(std::unique_ptr<KeywordMap> parsed,
                         KeywordMap::Deserialize(manifest));
  return std::unique_ptr<KeywordClient>(
      new KeywordClient(std::move(parsed), std::move(fetch)));
}

Result<std::optional<Bytes>> KeywordClient::Get(
    common::Secret<Bytes> keyword_query) {
  // The key is secret from here on: the digest and the candidate-page
  // list inherit its taint under shpir_lint. Neither may influence the
  // NUMBER of fetches (a public constant of the map), feed a log or
  // metric, or index public state — only the PIR queries themselves,
  // which the engine's Eq. 5/6 guarantee prices.
  SHPIR_SECRET const Bytes& keyword_plain = keyword_query.ExposeSecret();
  const KeywordDigest keyword_digest = DigestKey(keyword_plain, map_->seed());
  const std::vector<storage::PageId> candidate_pages =
      map_->Probes(keyword_digest);
  std::vector<Bytes> fetched;
  fetched.reserve(map_->probes_per_lookup());
  for (const storage::PageId candidate : candidate_pages) {
    SHPIR_ASSIGN_OR_RETURN(Bytes page, fetch_(candidate));
    fetched.push_back(std::move(page));
  }
  ++lookups_;
  pages_fetched_ += map_->probes_per_lookup();
  return map_->Extract(keyword_digest, fetched);
}

KeywordClient::Fetch KeywordClient::EngineFetch(core::PirEngine* engine) {
  return [engine](storage::PageId id) { return engine->Retrieve(id); };
}

}  // namespace shpir::keyword
