#ifndef SHPIR_KEYWORD_KEYWORD_CLIENT_H_
#define SHPIR_KEYWORD_KEYWORD_CLIENT_H_

#include <functional>
#include <memory>
#include <optional>

#include "common/result.h"
#include "common/secret.h"
#include "core/pir_engine.h"
#include "keyword/keyword_map.h"

namespace shpir::keyword {

/// Client-side private key-value lookups over a keyword store.
///
/// Trust boundary: the map/manifest is PUBLIC (the server shipped it);
/// the looked-up KEY is SECRET. The client resolves key -> candidate
/// pages locally and issues one full c-approximate PIR query per
/// candidate, so the server observes probes_per_lookup() index queries
/// — each individually protected by the engine's Eq. 5/6 guarantee —
/// whose COUNT and SHAPE are key-independent constants of the map.
/// Negative lookups run the identical probe sequence and are therefore
/// indistinguishable from hits (tested at the trace level).
class KeywordClient {
 public:
  /// Issues one private retrieval for a store page. Backed by a local
  /// engine, a PirServiceClient, or anything else that hides the index.
  using Fetch = std::function<Result<Bytes>(storage::PageId)>;

  /// Parses the public manifest and wraps `fetch`. Fails cleanly on
  /// truncated or unknown-version manifests.
  static Result<std::unique_ptr<KeywordClient>> Create(ByteSpan manifest,
                                                       Fetch fetch);

  /// Private lookup. The key arrives wrapped in Secret<> — shpir_lint
  /// taints everything derived from it inside the implementation.
  /// Returns the value on a hit, nullopt on a miss; both paths issue
  /// exactly map().probes_per_lookup() PIR queries.
  Result<std::optional<Bytes>> Get(common::Secret<Bytes> keyword_query);

  const KeywordMap& map() const { return *map_; }

  /// Lifetime counters (public volume aggregates).
  uint64_t lookups() const { return lookups_; }
  uint64_t pages_fetched() const { return pages_fetched_; }

  /// Convenience Fetch over a local engine (unowned; must outlive the
  /// client).
  static Fetch EngineFetch(core::PirEngine* engine);

 private:
  KeywordClient(std::unique_ptr<KeywordMap> map, Fetch fetch)
      : map_(std::move(map)), fetch_(std::move(fetch)) {}

  std::unique_ptr<KeywordMap> map_;
  Fetch fetch_;
  uint64_t lookups_ = 0;
  uint64_t pages_fetched_ = 0;
};

}  // namespace shpir::keyword

#endif  // SHPIR_KEYWORD_KEYWORD_CLIENT_H_
