#include "keyword/keyword_cuckoo.h"

#include <algorithm>
#include <cmath>
#include <string>
#include <utility>

#include "crypto/secure_random.h"

namespace shpir::keyword {

namespace {

constexpr size_t kCuckooBodySize = 8 + 8 + 4 + 8 + 4;

/// Seed for build attempt `attempt` (golden-ratio stride keeps derived
/// seeds well separated even for adjacent base seeds).
uint64_t AttemptSeed(uint64_t base, uint32_t attempt) {
  return base + static_cast<uint64_t>(attempt) * 0x9E3779B97F4A7C15ULL;
}

struct Bucket {
  std::vector<BucketEntry> entries;
  size_t used_bytes = 0;
};

size_t EntryBytes(const BucketEntry& entry) {
  return kEntryOverhead + entry.value.size();
}

bool TryAdd(Bucket& bucket, BucketEntry entry, size_t capacity) {
  const size_t need = EntryBytes(entry);
  if (bucket.used_bytes + need > capacity) {
    return false;
  }
  bucket.used_bytes += need;
  bucket.entries.push_back(std::move(entry));
  return true;
}

}  // namespace

CuckooKeywordMap::CuckooKeywordMap(const Geometry& geometry,
                                   uint64_t build_version)
    : geometry_(geometry), build_version_(build_version) {}

std::pair<uint64_t, uint64_t> CuckooKeywordMap::Buckets(
    const KeywordDigest& digest) const {
  const uint64_t buckets = geometry_.num_buckets;
  const uint64_t first = LoadLE64(digest.data()) % buckets;
  uint64_t second = LoadLE64(digest.data() + 8) % buckets;
  // shpir-lint-allow-next-line(secret-compare): client-local probe derivation; the bucket fetches themselves go through the PIR engine, so the provider never learns which buckets a keyword hashes to
  if (second == first) {
    // Keep the two probes distinct so every lookup touches exactly two
    // bucket pages (requires num_buckets >= 2, enforced by the builder).
    second = (second + 1) % buckets;
  }
  return {first, second};
}

std::vector<storage::PageId> CuckooKeywordMap::Probes(
    const KeywordDigest& digest) const {
  const auto [first, second] = Buckets(digest);
  std::vector<storage::PageId> probes;
  probes.reserve(probes_per_lookup());
  probes.push_back(first);
  probes.push_back(second);
  // The stash pages sit at fixed ids and are fetched on EVERY lookup:
  // a stash hit must look exactly like a bucket hit or a miss.
  for (uint32_t s = 0; s < geometry_.stash_pages; ++s) {
    probes.push_back(geometry_.num_buckets + s);
  }
  return probes;
}

Result<std::optional<Bytes>> CuckooKeywordMap::Extract(
    const KeywordDigest& digest,
    const std::vector<Bytes>& fetched_pages) const {
  if (fetched_pages.size() != probes_per_lookup()) {
    return InvalidArgumentError("cuckoo extract: wrong page count");
  }
  // Scan every fetched page; latch the hit instead of returning early
  // so the work done is independent of where (or whether) the key sits.
  std::optional<Bytes> found;
  for (const Bytes& page : fetched_pages) {
    SHPIR_ASSIGN_OR_RETURN(std::optional<Bytes> hit,
                           ScanBucketPage(page, digest));
    if (hit.has_value()) {
      found = std::move(hit);
    }
  }
  return found;
}

Bytes CuckooKeywordMap::Serialize() const {
  Bytes manifest = MakeManifestHeader(Kind::kCuckoo, build_version_);
  const size_t base = manifest.size();
  manifest.resize(base + kCuckooBodySize);
  StoreLE64(geometry_.seed, manifest.data() + base);
  StoreLE64(geometry_.num_buckets, manifest.data() + base + 8);
  StoreLE32(geometry_.stash_pages, manifest.data() + base + 16);
  StoreLE64(geometry_.num_keys, manifest.data() + base + 20);
  StoreLE32(geometry_.page_size, manifest.data() + base + 28);
  return manifest;
}

Result<std::unique_ptr<KeywordMap>> CuckooKeywordMap::FromManifestBody(
    uint64_t build_version, ByteSpan body) {
  if (body.size() != kCuckooBodySize) {
    return DataLossError("truncated cuckoo keyword manifest body");
  }
  Geometry geometry;
  geometry.seed = LoadLE64(body.data());
  geometry.num_buckets = LoadLE64(body.data() + 8);
  geometry.stash_pages = LoadLE32(body.data() + 16);
  geometry.num_keys = LoadLE64(body.data() + 20);
  geometry.page_size = LoadLE32(body.data() + 28);
  if (geometry.num_buckets < 2) {
    return InvalidArgumentError("cuckoo keyword manifest: < 2 buckets");
  }
  if (geometry.page_size < kBucketPageHeader + kEntryOverhead) {
    return InvalidArgumentError("cuckoo keyword manifest: page too small");
  }
  return std::unique_ptr<KeywordMap>(
      std::make_unique<CuckooKeywordMap>(geometry, build_version));
}

Result<BuiltKeywordStore> BuildCuckooStore(
    const std::vector<KeyValue>& entries, const CuckooOptions& options,
    CuckooBuildStats* stats) {
  if (options.page_size < kBucketPageHeader + kEntryOverhead) {
    return InvalidArgumentError("cuckoo build: page_size too small");
  }
  const size_t capacity = options.page_size - kBucketPageHeader;
  size_t total_bytes = 0;
  for (const KeyValue& entry : entries) {
    const size_t need = BucketEntrySize(entry);
    if (need > capacity) {
      return InvalidArgumentError(
          "cuckoo build: entry of " + std::to_string(need) +
          " bytes exceeds the bucket capacity of " +
          std::to_string(capacity));
    }
    total_bytes += need;
  }
  // Duplicate keys are a caller bug: the same key mapping to two values
  // would make Get() nondeterministic.
  {
    std::vector<const KeyValue*> sorted;
    sorted.reserve(entries.size());
    for (const KeyValue& entry : entries) {
      sorted.push_back(&entry);
    }
    std::sort(sorted.begin(), sorted.end(),
              [](const KeyValue* a, const KeyValue* b) {
                return a->key < b->key;
              });
    for (size_t i = 1; i < sorted.size(); ++i) {
      if (sorted[i]->key == sorted[i - 1]->key) {
        return AlreadyExistsError("cuckoo build: duplicate key");
      }
    }
  }
  if (options.target_load <= 0.0 || options.target_load > 1.0) {
    return InvalidArgumentError("cuckoo build: target_load out of (0, 1]");
  }
  uint64_t num_buckets = options.forced_buckets;
  if (num_buckets == 0) {
    num_buckets = static_cast<uint64_t>(std::ceil(
        static_cast<double>(total_bytes) /
        (static_cast<double>(capacity) * options.target_load)));
    // Byte load alone undersizes the table when entries are large
    // relative to the bucket: with e.g. 2 entry slots per bucket, 85%
    // byte load means ~98% slot occupancy — past the 2-choice insertion
    // threshold. Also bound the ENTRY-slot occupancy, with headroom
    // that shrinks as buckets get smaller (the d=2 bucketized-cuckoo
    // threshold falls steeply below 4 slots per bucket).
    size_t max_need = 0;
    for (const KeyValue& entry : entries) {
      max_need = std::max(max_need, BucketEntrySize(entry));
    }
    const uint64_t slots_per_bucket =
        std::max<uint64_t>(1, capacity / max_need);
    double slot_target = 0.93;
    if (slots_per_bucket == 1) {
      slot_target = 0.40;
    } else if (slots_per_bucket == 2) {
      slot_target = 0.80;
    } else if (slots_per_bucket == 3) {
      slot_target = 0.88;
    }
    num_buckets = std::max(
        num_buckets,
        static_cast<uint64_t>(std::ceil(
            static_cast<double>(entries.size()) /
            (static_cast<double>(slots_per_bucket) * slot_target))));
  }
  num_buckets = std::max<uint64_t>(num_buckets, 2);
  const size_t stash_capacity =
      static_cast<size_t>(options.stash_pages) * capacity;

  CuckooBuildStats local_stats;
  crypto::SecureRandom rng(options.seed ^ 0xC0C0C0C0C0C0C0C0ULL);
  for (uint32_t attempt = 0; attempt < options.max_build_attempts;
       ++attempt) {
    local_stats.attempts = attempt + 1;
    if (attempt < options.simulate_failed_attempts) {
      continue;  // Test hook: pretend this seed overflowed the stash.
    }
    const uint64_t attempt_seed = AttemptSeed(options.seed, attempt);
    std::vector<Bucket> buckets(num_buckets);
    std::vector<BucketEntry> stash;
    size_t stash_bytes = 0;
    uint64_t kicks = 0;
    bool overflow = false;

    CuckooKeywordMap::Geometry geometry;
    geometry.seed = attempt_seed;
    geometry.num_buckets = num_buckets;
    geometry.stash_pages = options.stash_pages;
    geometry.num_keys = entries.size();
    geometry.page_size = static_cast<uint32_t>(options.page_size);
    CuckooKeywordMap map(geometry, options.build_version);

    for (const KeyValue& entry : entries) {
      BucketEntry current;
      current.digest = DigestKey(entry.key, attempt_seed);
      current.value = entry.value;
      bool placed = false;
      for (uint32_t kick = 0; kick <= options.max_kicks; ++kick) {
        const auto [first, second] = map.Buckets(current.digest);
        if (TryAdd(buckets[first], current, capacity) ||
            TryAdd(buckets[second], current, capacity)) {
          placed = true;
          break;
        }
        // Displace a random victim from a random candidate bucket and
        // carry it onwards (random-walk cuckoo).
        const uint64_t victim_bucket =
            rng.UniformInt(2) == 0 ? first : second;
        Bucket& home = buckets[victim_bucket];
        if (home.entries.empty()) {
          continue;  // Burn a kick; the other bucket may yield next time.
        }
        const size_t victim_index = rng.UniformInt(home.entries.size());
        BucketEntry victim = std::move(home.entries[victim_index]);
        home.entries.erase(home.entries.begin() +
                           static_cast<ptrdiff_t>(victim_index));
        home.used_bytes -= EntryBytes(victim);
        if (!TryAdd(home, current, capacity)) {
          // Still too big after one eviction (a smaller victim than the
          // incomer); undo and burn the kick.
          TryAdd(home, std::move(victim), capacity);
          continue;
        }
        current = std::move(victim);
        ++kicks;
      }
      if (!placed) {
        // Kick budget exhausted (an insertion cycle): stash the orphan.
        const size_t need = EntryBytes(current);
        if (stash_bytes + need > stash_capacity) {
          overflow = true;  // Stash overflow => rebuild with a new seed.
          break;
        }
        stash_bytes += need;
        stash.push_back(std::move(current));
      }
    }
    if (overflow) {
      continue;
    }

    // Success: materialize the pages.
    BuiltKeywordStore store;
    store.pages.reserve(num_buckets + options.stash_pages);
    size_t bucket_bytes = 0;
    for (uint64_t b = 0; b < num_buckets; ++b) {
      bucket_bytes += buckets[b].used_bytes;
      store.pages.emplace_back(
          b, EncodeBucketPage(buckets[b].entries, options.page_size));
    }
    // Pack the stash into its fixed pages (first-fit; entries are small
    // relative to a page, and the stash is tiny by construction).
    std::vector<std::vector<BucketEntry>> stash_pages(options.stash_pages);
    std::vector<size_t> stash_used(options.stash_pages, 0);
    for (BucketEntry& entry : stash) {
      const size_t need = EntryBytes(entry);
      bool stored = false;
      for (uint32_t s = 0; s < options.stash_pages; ++s) {
        if (stash_used[s] + need <= capacity) {
          stash_used[s] += need;
          stash_pages[s].push_back(std::move(entry));
          stored = true;
          break;
        }
      }
      if (!stored) {
        overflow = true;  // Fragmentation across stash pages.
        break;
      }
    }
    if (overflow) {
      continue;
    }
    for (uint32_t s = 0; s < options.stash_pages; ++s) {
      store.pages.emplace_back(
          num_buckets + s,
          EncodeBucketPage(stash_pages[s], options.page_size));
    }
    local_stats.num_buckets = num_buckets;
    local_stats.stash_entries = stash.size();
    local_stats.kicks = kicks;
    local_stats.load_factor =
        static_cast<double>(bucket_bytes) /
        (static_cast<double>(num_buckets) * static_cast<double>(capacity));
    if (stats != nullptr) {
      *stats = local_stats;
    }
    store.map = std::make_unique<CuckooKeywordMap>(geometry,
                                                   options.build_version);
    store.manifest = store.map->Serialize();
    return store;
  }
  if (stats != nullptr) {
    *stats = local_stats;
  }
  return ResourceExhaustedError(
      "cuckoo build: stash overflow after " +
      std::to_string(options.max_build_attempts) +
      " attempts; grow the table (lower target_load) or the stash");
}

}  // namespace shpir::keyword
