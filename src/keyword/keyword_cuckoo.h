#ifndef SHPIR_KEYWORD_KEYWORD_CUCKOO_H_
#define SHPIR_KEYWORD_KEYWORD_CUCKOO_H_

#include <memory>
#include <vector>

#include "keyword/keyword_map.h"

namespace shpir::keyword {

/// 2-choice bucketized cuckoo table over whole store pages. Each bucket
/// is one page holding several variable-size entries (plain capacity-1
/// cuckoo tops out near 50% load; page-size buckets with 2 hash choices
/// reach the >= 0.8 loads this front-end targets — see docs/KEYWORD.md
/// and SNIPPETS.md Snippet 1). Keys that still cannot be placed after
/// the kick budget land in a small stash of dedicated pages at fixed
/// ids; a stash overflow fails the build attempt and the builder
/// retries with fresh seeds. Every lookup probes both candidate buckets
/// AND every stash page, so the probe set size is a public constant.
class CuckooKeywordMap : public KeywordMap {
 public:
  /// Geometry of a built table; all fields are public manifest state.
  struct Geometry {
    uint64_t seed = 0;
    uint64_t num_buckets = 0;
    uint32_t stash_pages = 0;
    uint64_t num_keys = 0;
    uint32_t page_size = 0;
  };

  explicit CuckooKeywordMap(const Geometry& geometry,
                            uint64_t build_version);

  Kind kind() const override { return Kind::kCuckoo; }
  const char* name() const override { return "cuckoo"; }
  uint64_t seed() const override { return geometry_.seed; }
  uint64_t build_version() const override { return build_version_; }
  uint64_t num_keys() const override { return geometry_.num_keys; }
  uint64_t num_pages() const override {
    return geometry_.num_buckets + geometry_.stash_pages;
  }
  size_t page_size() const override { return geometry_.page_size; }
  size_t probes_per_lookup() const override {
    return 2 + geometry_.stash_pages;
  }

  std::vector<storage::PageId> Probes(
      const KeywordDigest& digest) const override;
  Result<std::optional<Bytes>> Extract(
      const KeywordDigest& digest,
      const std::vector<Bytes>& fetched_pages) const override;
  Bytes Serialize() const override;

  static Result<std::unique_ptr<KeywordMap>> FromManifestBody(
      uint64_t build_version, ByteSpan body);

  /// The two candidate buckets for a digest (always distinct; requires
  /// num_buckets >= 2).
  std::pair<uint64_t, uint64_t> Buckets(const KeywordDigest& digest) const;

  const Geometry& geometry() const { return geometry_; }

 private:
  Geometry geometry_;
  uint64_t build_version_;
};

/// Offline builder options.
struct CuckooOptions {
  /// Store page payload size; buckets are whole pages.
  size_t page_size = 256;
  /// Target byte load factor of the bucket array; table size is derived
  /// as total-entry-bytes / (bucket-capacity * target_load).
  double target_load = 0.85;
  /// Dedicated stash pages appended after the buckets. Every lookup
  /// fetches all of them, so keep this small (1-2).
  uint32_t stash_pages = 1;
  /// Displacement budget per insertion before an entry is stashed.
  uint32_t max_kicks = 500;
  /// Seed retries before the build fails (stash overflow triggers a
  /// full rebuild under the next derived seed).
  uint32_t max_build_attempts = 8;
  /// Base digest seed; attempt a uses a derived seed.
  uint64_t seed = 1;
  /// Owner's rebuild counter, embedded in the manifest.
  uint64_t build_version = 1;
  /// Test hook: force the bucket count instead of deriving it from the
  /// load target (0 = derive). Lets tests overload tiny tables
  /// deterministically.
  uint64_t forced_buckets = 0;
  /// Test hook: treat the first N attempts as failed before any
  /// insertion, exercising the rebuild-with-new-seeds path
  /// deterministically.
  uint32_t simulate_failed_attempts = 0;
};

/// Build statistics (reported by bench_keyword and asserted by tests).
struct CuckooBuildStats {
  uint32_t attempts = 0;
  uint64_t num_buckets = 0;
  size_t stash_entries = 0;
  uint64_t kicks = 0;
  /// Bytes stored in buckets / bucket byte capacity.
  double load_factor = 0.0;
};

/// Builds a cuckoo keyword store over `entries`. Rejects duplicate
/// keys; retries with fresh seeds on stash overflow; fails with
/// ResourceExhausted when max_build_attempts seeds all overflow.
Result<BuiltKeywordStore> BuildCuckooStore(
    const std::vector<KeyValue>& entries, const CuckooOptions& options,
    CuckooBuildStats* stats = nullptr);

}  // namespace shpir::keyword

#endif  // SHPIR_KEYWORD_KEYWORD_CUCKOO_H_
