#include "keyword/keyword_fuse.h"

#include <algorithm>
#include <string>
#include <utility>

#include "crypto/constant_time.h"
#include "crypto/secure_random.h"

namespace shpir::keyword {

namespace {

constexpr size_t kFuseBodySize = 8 + 8 + 4 + 8 + 4;

uint64_t AttemptSeed(uint64_t base, uint32_t attempt) {
  return base + static_cast<uint64_t>(attempt) * 0x9E3779B97F4A7C15ULL;
}

uint64_t Mix64(uint64_t x) {
  x ^= x >> 33;
  x *= 0xFF51AFD7ED558CCDULL;
  x ^= x >> 33;
  x *= 0xC4CEB9FE1A85EC53ULL;
  x ^= x >> 33;
  return x;
}

/// The three slot positions of a digest, one per segment third. Shared
/// by the builder and the client resolver, so it must stay stable.
std::array<uint64_t, 3> Positions(const KeywordDigest& digest,
                                  uint64_t segment_len) {
  const uint64_t a = LoadLE64(digest.data());
  const uint64_t b = LoadLE64(digest.data() + 8);
  return {a % segment_len, segment_len + (b % segment_len),
          2 * segment_len + (Mix64(a ^ (b << 1)) % segment_len)};
}

}  // namespace

FuseKeywordMap::FuseKeywordMap(const Geometry& geometry,
                               uint64_t build_version)
    : geometry_(geometry), build_version_(build_version) {}

std::vector<storage::PageId> FuseKeywordMap::Probes(
    const KeywordDigest& digest) const {
  const auto positions = Positions(digest, geometry_.num_slots / 3);
  return {positions[0], positions[1], positions[2]};
}

Result<std::optional<Bytes>> FuseKeywordMap::Extract(
    const KeywordDigest& digest,
    const std::vector<Bytes>& fetched_pages) const {
  if (fetched_pages.size() != 3) {
    return InvalidArgumentError("fuse extract: wrong page count");
  }
  const size_t record = slot_bytes();
  Bytes combined(record, 0);
  for (const Bytes& page : fetched_pages) {
    if (page.size() < record) {
      return DataLossError("fuse extract: page smaller than a slot");
    }
    for (size_t i = 0; i < record; ++i) {
      combined[i] ^= page[i];
    }
  }
  // A present key reconstructs digest | len | value; an absent one
  // reconstructs (at least one slot's worth of) uniform random bytes,
  // so the digest check fails except with probability 2^-128.
  if (!crypto::ConstantTimeEquals(ByteSpan(combined.data(), digest.size()),
                                  ByteSpan(digest.data(), digest.size()))) {
    return std::optional<Bytes>();
  }
  const size_t value_len =
      combined[16] | (static_cast<size_t>(combined[17]) << 8);
  if (value_len > geometry_.value_size) {
    return DataLossError("fuse extract: corrupt value length");
  }
  return std::optional<Bytes>(Bytes(
      combined.begin() + static_cast<ptrdiff_t>(kEntryOverhead),
      combined.begin() + static_cast<ptrdiff_t>(kEntryOverhead + value_len)));
}

Bytes FuseKeywordMap::Serialize() const {
  Bytes manifest = MakeManifestHeader(Kind::kFuse, build_version_);
  const size_t base = manifest.size();
  manifest.resize(base + kFuseBodySize);
  StoreLE64(geometry_.seed, manifest.data() + base);
  StoreLE64(geometry_.num_slots, manifest.data() + base + 8);
  StoreLE32(geometry_.value_size, manifest.data() + base + 16);
  StoreLE64(geometry_.num_keys, manifest.data() + base + 20);
  StoreLE32(geometry_.page_size, manifest.data() + base + 28);
  return manifest;
}

Result<std::unique_ptr<KeywordMap>> FuseKeywordMap::FromManifestBody(
    uint64_t build_version, ByteSpan body) {
  if (body.size() != kFuseBodySize) {
    return DataLossError("truncated fuse keyword manifest body");
  }
  Geometry geometry;
  geometry.seed = LoadLE64(body.data());
  geometry.num_slots = LoadLE64(body.data() + 8);
  geometry.value_size = LoadLE32(body.data() + 16);
  geometry.num_keys = LoadLE64(body.data() + 20);
  geometry.page_size = LoadLE32(body.data() + 28);
  if (geometry.num_slots < 3 || geometry.num_slots % 3 != 0) {
    return InvalidArgumentError(
        "fuse keyword manifest: slot count not a positive multiple of 3");
  }
  if (geometry.page_size < kEntryOverhead + geometry.value_size) {
    return InvalidArgumentError("fuse keyword manifest: page too small");
  }
  return std::unique_ptr<KeywordMap>(
      std::make_unique<FuseKeywordMap>(geometry, build_version));
}

Result<BuiltKeywordStore> BuildFuseStore(const std::vector<KeyValue>& entries,
                                         const FuseOptions& options,
                                         FuseBuildStats* stats) {
  const size_t record = kEntryOverhead + options.value_size;
  if (options.page_size < record) {
    return InvalidArgumentError("fuse build: page_size too small");
  }
  if (entries.empty()) {
    return InvalidArgumentError("fuse build: no entries");
  }
  for (const KeyValue& entry : entries) {
    if (entry.value.size() > options.value_size) {
      return InvalidArgumentError(
          "fuse build: value of " + std::to_string(entry.value.size()) +
          " bytes exceeds value_size " + std::to_string(options.value_size));
    }
  }
  {
    std::vector<const KeyValue*> sorted;
    sorted.reserve(entries.size());
    for (const KeyValue& entry : entries) {
      sorted.push_back(&entry);
    }
    std::sort(sorted.begin(), sorted.end(),
              [](const KeyValue* a, const KeyValue* b) {
                return a->key < b->key;
              });
    for (size_t i = 1; i < sorted.size(); ++i) {
      if (sorted[i]->key == sorted[i - 1]->key) {
        return AlreadyExistsError("fuse build: duplicate key");
      }
    }
  }
  // Classic XOR-filter sizing: 1.23x + slack, split into three equal
  // segments (the slack dominates for small key counts).
  const uint64_t m = entries.size();
  const uint64_t segment_len =
      (static_cast<uint64_t>(1.23 * static_cast<double>(m)) + 24 + 2) / 3 + 1;
  const uint64_t num_slots = 3 * segment_len;

  FuseBuildStats local_stats;
  for (uint32_t attempt = 0; attempt < options.max_build_attempts;
       ++attempt) {
    local_stats.attempts = attempt + 1;
    const uint64_t attempt_seed = AttemptSeed(options.seed, attempt);
    std::vector<KeywordDigest> digests(m);
    for (uint64_t i = 0; i < m; ++i) {
      digests[i] = DigestKey(entries[i].key, attempt_seed);
    }
    // Peel: track per-slot key counts and the XOR of incident key
    // indices; slots of degree 1 reveal their key, removing it may
    // expose more degree-1 slots.
    std::vector<uint32_t> degree(num_slots, 0);
    std::vector<uint64_t> incident_xor(num_slots, 0);
    for (uint64_t i = 0; i < m; ++i) {
      for (const uint64_t p : Positions(digests[i], segment_len)) {
        ++degree[p];
        incident_xor[p] ^= i;
      }
    }
    std::vector<uint64_t> queue;
    for (uint64_t s = 0; s < num_slots; ++s) {
      if (degree[s] == 1) {
        queue.push_back(s);
      }
    }
    // Peel order: (key, free slot) pairs; assignment replays them LIFO.
    std::vector<std::pair<uint64_t, uint64_t>> order;
    order.reserve(m);
    while (!queue.empty()) {
      const uint64_t slot = queue.back();
      queue.pop_back();
      if (degree[slot] != 1) {
        continue;
      }
      const uint64_t key_index = incident_xor[slot];
      order.emplace_back(key_index, slot);
      for (const uint64_t p : Positions(digests[key_index], segment_len)) {
        --degree[p];
        incident_xor[p] ^= key_index;
        if (degree[p] == 1) {
          queue.push_back(p);
        }
      }
    }
    if (order.size() != m) {
      continue;  // Peeling failed; rebuild with the next derived seed.
    }

    // Assign. Unassigned slots are pre-filled with cryptographically
    // random bytes so a miss XORs to uniform garbage; assigned slots
    // are then fixed up in reverse peel order, at which point the two
    // sibling slots of each key already hold their final values.
    crypto::SecureRandom fill_rng(attempt_seed ^ 0xF0F0F0F0F0F0F0F0ULL);
    std::vector<Bytes> slots(num_slots);
    for (uint64_t s = 0; s < num_slots; ++s) {
      slots[s].resize(record);
      fill_rng.Fill(slots[s]);
    }
    for (size_t i = order.size(); i-- > 0;) {
      const uint64_t key_index = order[i].first;
      const uint64_t free_slot = order[i].second;
      Bytes record_bytes(record, 0);
      std::copy(digests[key_index].begin(), digests[key_index].end(),
                record_bytes.begin());
      const Bytes& value = entries[key_index].value;
      record_bytes[16] = static_cast<uint8_t>(value.size() & 0xFF);
      record_bytes[17] = static_cast<uint8_t>((value.size() >> 8) & 0xFF);
      std::copy(value.begin(), value.end(),
                record_bytes.begin() + kEntryOverhead);
      for (const uint64_t p : Positions(digests[key_index], segment_len)) {
        if (p == free_slot) {
          continue;
        }
        for (size_t b = 0; b < record; ++b) {
          record_bytes[b] ^= slots[p][b];
        }
      }
      slots[free_slot] = std::move(record_bytes);
    }

    FuseKeywordMap::Geometry geometry;
    geometry.seed = attempt_seed;
    geometry.num_slots = num_slots;
    geometry.value_size = static_cast<uint32_t>(options.value_size);
    geometry.num_keys = m;
    geometry.page_size = static_cast<uint32_t>(options.page_size);

    BuiltKeywordStore store;
    store.pages.reserve(num_slots);
    for (uint64_t s = 0; s < num_slots; ++s) {
      Bytes page(options.page_size, 0);
      std::copy(slots[s].begin(), slots[s].end(), page.begin());
      store.pages.emplace_back(s, std::move(page));
    }
    local_stats.num_slots = num_slots;
    local_stats.space_overhead =
        static_cast<double>(num_slots) / static_cast<double>(m);
    if (stats != nullptr) {
      *stats = local_stats;
    }
    store.map =
        std::make_unique<FuseKeywordMap>(geometry, options.build_version);
    store.manifest = store.map->Serialize();
    return store;
  }
  if (stats != nullptr) {
    *stats = local_stats;
  }
  return ResourceExhaustedError(
      "fuse build: peeling failed after " +
      std::to_string(options.max_build_attempts) + " attempts");
}

}  // namespace shpir::keyword
