#ifndef SHPIR_KEYWORD_KEYWORD_FUSE_H_
#define SHPIR_KEYWORD_KEYWORD_FUSE_H_

#include <memory>
#include <vector>

#include "keyword/keyword_map.h"

namespace shpir::keyword {

/// Binary-fuse-style keyword map: a 3-wise XOR construction (one hash
/// per segment third, peeling-based assignment) storing, for key x with
/// record r(x) = digest(16) | value_len(2) | value padded to a fixed
/// value_size,
///
///   slots[h0(x)] ^ slots[h1(x)] ^ slots[h2(x)] = r(x).
///
/// Every slot is one store page; a lookup fetches exactly 3 pages,
/// XORs them and checks the digest — membership and value in one shot,
/// with a 2^-128 false-positive probability. Unassigned slots are
/// filled with cryptographically random bytes so misses decode to
/// uniform garbage. Space is ~1.23x the key count (versus the cuckoo
/// table's >= 0.8 byte load but 2+stash probes) — the classic
/// trade-off from SNIPPETS.md Snippet 1; see docs/KEYWORD.md.
class FuseKeywordMap : public KeywordMap {
 public:
  struct Geometry {
    uint64_t seed = 0;
    uint64_t num_slots = 0;  // Multiple of 3 (three equal segments).
    uint32_t value_size = 0;
    uint64_t num_keys = 0;
    uint32_t page_size = 0;
  };

  FuseKeywordMap(const Geometry& geometry, uint64_t build_version);

  Kind kind() const override { return Kind::kFuse; }
  const char* name() const override { return "fuse"; }
  uint64_t seed() const override { return geometry_.seed; }
  uint64_t build_version() const override { return build_version_; }
  uint64_t num_keys() const override { return geometry_.num_keys; }
  uint64_t num_pages() const override { return geometry_.num_slots; }
  size_t page_size() const override { return geometry_.page_size; }
  size_t probes_per_lookup() const override { return 3; }

  std::vector<storage::PageId> Probes(
      const KeywordDigest& digest) const override;
  Result<std::optional<Bytes>> Extract(
      const KeywordDigest& digest,
      const std::vector<Bytes>& fetched_pages) const override;
  Bytes Serialize() const override;

  static Result<std::unique_ptr<KeywordMap>> FromManifestBody(
      uint64_t build_version, ByteSpan body);

  /// Bytes of slot payload at the head of each page.
  size_t slot_bytes() const { return kEntryOverhead + geometry_.value_size; }

  const Geometry& geometry() const { return geometry_; }

 private:
  Geometry geometry_;
  uint64_t build_version_;
};

/// Offline builder options.
struct FuseOptions {
  /// Store page payload size; must fit digest + length + value_size.
  size_t page_size = 64;
  /// Fixed per-key value capacity (shorter values are padded; longer
  /// ones are rejected — use the cuckoo map for variable-size values).
  size_t value_size = 8;
  /// Seed retries before the build fails (peeling failure triggers a
  /// rebuild under the next derived seed; at 1.23x slots failures are
  /// rare).
  uint32_t max_build_attempts = 100;
  uint64_t seed = 1;
  uint64_t build_version = 1;
};

/// Build statistics.
struct FuseBuildStats {
  uint32_t attempts = 0;
  uint64_t num_slots = 0;
  /// num_slots / num_keys (~1.23).
  double space_overhead = 0.0;
};

/// Builds a fuse keyword store over `entries`. Rejects duplicate keys
/// and values longer than value_size.
Result<BuiltKeywordStore> BuildFuseStore(const std::vector<KeyValue>& entries,
                                         const FuseOptions& options,
                                         FuseBuildStats* stats = nullptr);

}  // namespace shpir::keyword

#endif  // SHPIR_KEYWORD_KEYWORD_FUSE_H_
