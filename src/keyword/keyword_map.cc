#include "keyword/keyword_map.h"

#include <algorithm>

#include "crypto/constant_time.h"
#include "crypto/sha256.h"
#include "keyword/keyword_cuckoo.h"
#include "keyword/keyword_fuse.h"

namespace shpir::keyword {

namespace {

/// Manifest magic: "SHPIRKWM" little-endian.
constexpr uint64_t kManifestMagic = 0x4D574B5249504853ULL;

}  // namespace

KeywordDigest DigestKey(ByteSpan key_bytes, uint64_t seed) {
  crypto::Sha256 hasher;
  uint8_t prefix[16] = {'s', 'h', 'p', 'i', 'r', '-', 'k', 'w'};
  StoreLE64(seed, prefix + 8);
  hasher.Update(ByteSpan(prefix, sizeof(prefix)));
  hasher.Update(key_bytes);
  const crypto::Sha256::Digest full = hasher.Finalize();
  KeywordDigest digest;
  std::copy(full.begin(), full.begin() + digest.size(), digest.begin());
  return digest;
}

Bytes MakeManifestHeader(KeywordMap::Kind map_kind, uint64_t build_version) {
  Bytes header(kManifestHeaderSize);
  StoreLE64(kManifestMagic, header.data());
  StoreLE32(kManifestFormatVersion, header.data() + 8);
  StoreLE64(build_version, header.data() + 12);
  header[20] = static_cast<uint8_t>(map_kind);
  return header;
}

Result<ManifestHeader> ParseManifestHeader(ByteSpan manifest) {
  if (manifest.size() < kManifestHeaderSize) {
    return DataLossError("truncated keyword manifest");
  }
  if (LoadLE64(manifest.data()) != kManifestMagic) {
    return InvalidArgumentError("not a keyword manifest (bad magic)");
  }
  const uint32_t format = LoadLE32(manifest.data() + 8);
  if (format != kManifestFormatVersion) {
    return InvalidArgumentError(
        "unsupported keyword manifest format version " +
        std::to_string(format));
  }
  ManifestHeader header;
  header.build_version = LoadLE64(manifest.data() + 12);
  const uint8_t kind_byte = manifest[20];
  if (kind_byte != static_cast<uint8_t>(KeywordMap::Kind::kCuckoo) &&
      kind_byte != static_cast<uint8_t>(KeywordMap::Kind::kFuse)) {
    return InvalidArgumentError("unknown keyword map kind " +
                                std::to_string(kind_byte));
  }
  header.map_kind = static_cast<KeywordMap::Kind>(kind_byte);
  return header;
}

Result<std::unique_ptr<KeywordMap>> KeywordMap::Deserialize(
    ByteSpan manifest) {
  SHPIR_ASSIGN_OR_RETURN(const ManifestHeader header,
                         ParseManifestHeader(manifest));
  const ByteSpan body = manifest.subspan(kManifestHeaderSize);
  switch (header.map_kind) {
    case Kind::kCuckoo:
      return CuckooKeywordMap::FromManifestBody(header.build_version, body);
    case Kind::kFuse:
      return FuseKeywordMap::FromManifestBody(header.build_version, body);
  }
  return InvalidArgumentError("unknown keyword map kind");
}

size_t BucketEntrySize(const KeyValue& entry) {
  return kEntryOverhead + entry.value.size();
}

Bytes EncodeBucketPage(const std::vector<BucketEntry>& entries,
                       size_t page_size) {
  Bytes page(page_size, 0);
  page[0] = kBucketPageTag;
  page[1] = static_cast<uint8_t>(entries.size() & 0xFF);
  page[2] = static_cast<uint8_t>((entries.size() >> 8) & 0xFF);
  size_t offset = kBucketPageHeader;
  for (const BucketEntry& entry : entries) {
    std::copy(entry.digest.begin(), entry.digest.end(),
              page.begin() + static_cast<ptrdiff_t>(offset));
    offset += entry.digest.size();
    page[offset] = static_cast<uint8_t>(entry.value.size() & 0xFF);
    page[offset + 1] = static_cast<uint8_t>((entry.value.size() >> 8) & 0xFF);
    offset += 2;
    std::copy(entry.value.begin(), entry.value.end(),
              page.begin() + static_cast<ptrdiff_t>(offset));
    offset += entry.value.size();
  }
  return page;
}

Result<std::optional<Bytes>> ScanBucketPage(ByteSpan page,
                                            const KeywordDigest& digest) {
  if (page.size() < kBucketPageHeader || page[0] != kBucketPageTag) {
    return DataLossError("malformed keyword bucket page");
  }
  const size_t count = page[1] | (static_cast<size_t>(page[2]) << 8);
  // Fixed-shape scan: every entry is visited and compared in constant
  // time; the hit (if any) is latched rather than returned early.
  std::optional<Bytes> found;
  size_t offset = kBucketPageHeader;
  for (size_t i = 0; i < count; ++i) {
    if (offset + kEntryOverhead > page.size()) {
      return DataLossError("keyword bucket page overruns its payload");
    }
    const ByteSpan entry_digest = page.subspan(offset, digest.size());
    const size_t value_len =
        page[offset + 16] | (static_cast<size_t>(page[offset + 17]) << 8);
    offset += kEntryOverhead;
    if (offset + value_len > page.size()) {
      return DataLossError("keyword bucket entry overruns its page");
    }
    if (crypto::ConstantTimeEquals(
            entry_digest, ByteSpan(digest.data(), digest.size()))) {
      found = Bytes(page.begin() + static_cast<ptrdiff_t>(offset),
                    page.begin() + static_cast<ptrdiff_t>(offset + value_len));
    }
    offset += value_len;
  }
  return found;
}

}  // namespace shpir::keyword
