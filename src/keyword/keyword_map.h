#ifndef SHPIR_KEYWORD_KEYWORD_MAP_H_
#define SHPIR_KEYWORD_KEYWORD_MAP_H_

#include <array>
#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "common/bytes.h"
#include "common/result.h"
#include "storage/page.h"

namespace shpir::keyword {

/// Keyword front-end for the c-approximate engine: a public, owner-built
/// structure mapping keys onto a fixed, key-count-independent set of
/// store pages. The map itself carries no secrets — it is shipped to
/// every client in the clear via the KEYWORD_MANIFEST op — while the key
/// a client looks up is secret and never leaves the client: the client
/// resolves key -> candidate pages locally and fetches each candidate
/// with one full c-approximate PIR query. Because the probe count is a
/// public constant of the map (probes_per_lookup()), hits, misses and
/// stash hits are indistinguishable to the server. See docs/KEYWORD.md.

/// Truncated SHA-256 of the seeded key; 128 bits keeps accidental and
/// adversarial collisions negligible while fitting 16 bytes per entry.
using KeywordDigest = std::array<uint8_t, 16>;

/// Digest of `key_bytes` under the map's seed. Builder and client must
/// agree on the seed (it is part of the public manifest).
KeywordDigest DigestKey(ByteSpan key_bytes, uint64_t seed);

/// One key/value pair handed to the offline builder.
struct KeyValue {
  Bytes key;
  Bytes value;
};

/// The size of the fixed manifest header (magic, format version, build
/// version, kind byte).
inline constexpr size_t kManifestHeaderSize = 8 + 4 + 8 + 1;

/// Wire format version of the serialized manifest. Bumped on
/// incompatible layout changes; clients reject unknown versions.
inline constexpr uint32_t kManifestFormatVersion = 1;

/// Client-side resolver from key digests to store pages. Both
/// implementations (cuckoo, binary fuse) are immutable after build.
class KeywordMap {
 public:
  enum class Kind : uint8_t {
    kCuckoo = 1,  // 2-choice bucketized cuckoo table + stash pages.
    kFuse = 2,    // 3-wise XOR (binary-fuse-style) filter.
  };

  virtual ~KeywordMap() = default;

  virtual Kind kind() const = 0;
  virtual const char* name() const = 0;

  /// Digest seed; changes on every rebuild attempt.
  virtual uint64_t seed() const = 0;

  /// Monotonic rebuild counter chosen by the owner; lets clients detect
  /// that a cached manifest is stale (KEYWORD_MANIFEST is versioned).
  virtual uint64_t build_version() const = 0;

  /// Number of keys the store was built over.
  virtual uint64_t num_keys() const = 0;

  /// Number of store pages ([0, num_pages) are valid PIR page ids).
  virtual uint64_t num_pages() const = 0;

  /// Store page payload size in bytes.
  virtual size_t page_size() const = 0;

  /// Fixed number of pages fetched per lookup. Key-independent by
  /// construction — this constant IS the privacy argument of the
  /// front-end (the server sees probes_per_lookup() PIR queries per
  /// Get, whatever the key and whether or not it exists).
  virtual size_t probes_per_lookup() const = 0;

  /// The candidate pages for `digest`, always exactly
  /// probes_per_lookup() entries.
  virtual std::vector<storage::PageId> Probes(
      const KeywordDigest& digest) const = 0;

  /// Resolves a lookup from the fetched candidate pages (same order as
  /// Probes()). Returns the value on a hit, nullopt on a miss, an error
  /// on malformed pages.
  virtual Result<std::optional<Bytes>> Extract(
      const KeywordDigest& digest,
      const std::vector<Bytes>& fetched_pages) const = 0;

  /// Serializes the public manifest (header + kind-specific body).
  virtual Bytes Serialize() const = 0;

  /// Parses a manifest produced by Serialize(), dispatching on the kind
  /// byte. Rejects truncated input, bad magic, unknown format versions
  /// and unknown kinds with a clean error.
  static Result<std::unique_ptr<KeywordMap>> Deserialize(ByteSpan manifest);
};

/// A built keyword store: the public map, the store pages to load into
/// the PIR engine (page i has id i), and the serialized manifest.
struct BuiltKeywordStore {
  std::unique_ptr<KeywordMap> map;
  std::vector<storage::Page> pages;
  Bytes manifest;
};

/// Serializes the shared manifest header.
Bytes MakeManifestHeader(KeywordMap::Kind map_kind, uint64_t build_version);

/// Parsed manifest header.
struct ManifestHeader {
  uint64_t build_version = 0;
  KeywordMap::Kind map_kind = KeywordMap::Kind::kCuckoo;
};

/// Validates and parses the shared header; on success the body starts
/// at offset kManifestHeaderSize.
Result<ManifestHeader> ParseManifestHeader(ByteSpan manifest);

/// --- Bucket page codec ------------------------------------------------
///
/// Cuckoo bucket pages and stash pages share one layout:
///   tag(1) | entry_count(2, LE) | entries...
/// where each entry is digest(16) | value_len(2, LE) | value bytes.
/// The remainder of the page is zero padding.

inline constexpr uint8_t kBucketPageTag = 0x4B;  // 'K'
inline constexpr size_t kBucketPageHeader = 3;
inline constexpr size_t kEntryOverhead = 16 + 2;

/// Serialized size of one bucket entry.
size_t BucketEntrySize(const KeyValue& entry);

/// Encodes entries (digests precomputed by the caller) into a page of
/// `page_size` bytes. The caller guarantees they fit.
struct BucketEntry {
  KeywordDigest digest{};
  Bytes value;
};
Bytes EncodeBucketPage(const std::vector<BucketEntry>& entries,
                       size_t page_size);

/// Scans a bucket page for `digest`. The scan visits every entry (no
/// early exit) and compares digests in constant time, mirroring the
/// fixed-probe discipline used across the index layer. Returns the
/// value on a hit, nullopt otherwise, an error on a malformed page.
Result<std::optional<Bytes>> ScanBucketPage(ByteSpan page,
                                            const KeywordDigest& digest);

}  // namespace shpir::keyword

#endif  // SHPIR_KEYWORD_KEYWORD_MAP_H_
