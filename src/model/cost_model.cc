#include "model/cost_model.h"

#include "core/page_map.h"
#include "core/security_parameter.h"

namespace shpir::model {

using hardware::HardwareProfile;
using hardware::kKB;
using hardware::kMB;

uint64_t CostModel::SecureStorageBytes(uint64_t n, uint64_t m, uint64_t k,
                                       uint64_t page_size) {
  return core::PageMap::StorageBytes(n) + (m + k + 1) * page_size;
}

double CostModel::QuerySeconds(uint64_t k, uint64_t page_size,
                               const HardwareProfile& profile) {
  const double bytes = 2.0 * static_cast<double>(k + 1) *
                       static_cast<double>(page_size);
  double seconds = 4.0 * profile.seek_time_s;
  if (profile.disk_rate > 0) {
    seconds += bytes / profile.disk_rate;
  }
  if (profile.link_rate > 0) {
    seconds += bytes / profile.link_rate;
  }
  if (profile.crypto_rate > 0) {
    seconds += bytes / profile.crypto_rate;
  }
  return seconds;
}

double CostModel::TwoPartyQuerySeconds(uint64_t k, uint64_t page_size,
                                       const HardwareProfile& profile) {
  const double bytes = 2.0 * static_cast<double>(k + 1) *
                       static_cast<double>(page_size);
  double seconds = 2.0 * profile.network_rtt_s + 4.0 * profile.seek_time_s;
  if (profile.network_rate > 0) {
    seconds += bytes / profile.network_rate;
  }
  if (profile.disk_rate > 0) {
    seconds += bytes / profile.disk_rate;
  }
  if (profile.crypto_rate > 0) {
    seconds += bytes / profile.crypto_rate;
  }
  return seconds;
}

namespace {

Result<CostModel::Evaluation> EvaluateImpl(uint64_t n, uint64_t m,
                                           uint64_t page_size, double c,
                                           const HardwareProfile& profile,
                                           bool two_party) {
  SHPIR_ASSIGN_OR_RETURN(const uint64_t k,
                         core::SecurityParameter::BlockSize(n, m, c));
  CostModel::Evaluation eval;
  eval.n = n;
  eval.m = m;
  eval.page_size = page_size;
  eval.k = k;
  eval.scan_period = core::SecurityParameter::ScanPeriod(n, k);
  SHPIR_ASSIGN_OR_RETURN(eval.privacy_c,
                         core::SecurityParameter::PrivacyOf(n, m, k));
  eval.query_seconds =
      two_party ? CostModel::TwoPartyQuerySeconds(k, page_size, profile)
                : CostModel::QuerySeconds(k, page_size, profile);
  eval.storage_bytes = CostModel::SecureStorageBytes(n, m, k, page_size);
  return eval;
}

void AppendSweep(std::vector<FigurePoint>& points, const std::string& label,
                 uint64_t n, uint64_t page_size,
                 const std::vector<uint64_t>& cache_sizes, double c,
                 const HardwareProfile& profile, bool two_party) {
  for (uint64_t m : cache_sizes) {
    Result<CostModel::Evaluation> eval =
        EvaluateImpl(n, m, page_size, c, profile, two_party);
    if (!eval.ok()) {
      continue;
    }
    FigurePoint point;
    point.database = label;
    point.n = n;
    point.m = m;
    point.response_seconds = eval->query_seconds;
    point.storage_mb =
        static_cast<double>(eval->storage_bytes) / static_cast<double>(kMB);
    points.push_back(point);
  }
}

}  // namespace

Result<CostModel::Evaluation> CostModel::Evaluate(
    uint64_t n, uint64_t m, uint64_t page_size, double c,
    const HardwareProfile& profile) {
  return EvaluateImpl(n, m, page_size, c, profile, /*two_party=*/false);
}

Result<CostModel::Evaluation> CostModel::EvaluateTwoParty(
    uint64_t n, uint64_t m, uint64_t page_size, double c,
    const HardwareProfile& profile) {
  return EvaluateImpl(n, m, page_size, c, profile, /*two_party=*/true);
}

std::vector<FigurePoint> GenerateFig4() {
  const HardwareProfile profile = HardwareProfile::Ibm4764();
  std::vector<FigurePoint> points;
  // Cache sweeps follow the paper's x axes (pages x1000).
  AppendSweep(points, "1GB", 1000000, kKB,
              {1000, 5000, 10000, 20000, 50000}, 2.0, profile, false);
  AppendSweep(points, "10GB", 10000000, kKB,
              {10000, 20000, 50000, 80000, 100000}, 2.0, profile, false);
  AppendSweep(points, "100GB", 100000000, kKB,
              {50000, 100000, 200000, 300000, 500000}, 2.0, profile, false);
  AppendSweep(points, "1TB", 1000000000, kKB,
              {100000, 200000, 300000, 400000, 500000}, 2.0, profile, false);
  return points;
}

std::vector<FigurePoint> GenerateFig5() {
  const HardwareProfile profile = HardwareProfile::Ibm4764();
  std::vector<FigurePoint> points;
  AppendSweep(points, "1GB", 100000, 10 * kKB, {1000, 2000, 3000, 4000, 5000},
              2.0, profile, false);
  AppendSweep(points, "10GB", 1000000, 10 * kKB,
              {2000, 5000, 10000, 20000, 50000}, 2.0, profile, false);
  AppendSweep(points, "100GB", 10000000, 10 * kKB,
              {10000, 20000, 40000, 60000, 80000}, 2.0, profile, false);
  AppendSweep(points, "1TB", 100000000, 10 * kKB,
              {50000, 100000, 200000, 300000, 400000}, 2.0, profile, false);
  return points;
}

std::vector<FigurePoint> GenerateFig6() {
  const HardwareProfile profile = HardwareProfile::Ibm4764();
  struct Config {
    const char* label;
    uint64_t n;
    uint64_t m;
  };
  const Config configs[] = {
      {"1GB", 1000000, 50000},
      {"10GB", 10000000, 100000},
      {"100GB", 100000000, 500000},
      {"1TB", 1000000000, 500000},
  };
  const double epsilons[] = {0.01, 0.05, 0.1, 0.5, 1.0};
  std::vector<FigurePoint> points;
  for (const Config& config : configs) {
    for (double eps : epsilons) {
      Result<CostModel::Evaluation> eval = CostModel::Evaluate(
          config.n, config.m, kKB, 1.0 + eps, profile);
      if (!eval.ok()) {
        continue;
      }
      FigurePoint point;
      point.database = config.label;
      point.n = config.n;
      point.m = config.m;
      point.epsilon = eps;
      point.response_seconds = eval->query_seconds;
      point.storage_mb =
          static_cast<double>(eval->storage_bytes) / static_cast<double>(kMB);
      points.push_back(point);
    }
  }
  return points;
}

std::vector<FigurePoint> GenerateFig7() {
  std::vector<FigurePoint> points;
  const HardwareProfile profile =
      HardwareProfile::TwoPartyOwner(/*memory_bytes=*/16 * hardware::kGB);
  // (a) 1KB pages, n = 1e9.
  AppendSweep(points, "1TB/1KB", 1000000000, kKB,
              {500000, 1000000, 1500000, 2000000}, 2.0, profile, true);
  // (b) 10KB pages, n = 1e8.
  AppendSweep(points, "1TB/10KB", 100000000, 10 * kKB,
              {300000, 500000, 700000, 1000000}, 2.0, profile, true);
  return points;
}

}  // namespace shpir::model
