#ifndef SHPIR_MODEL_COST_MODEL_H_
#define SHPIR_MODEL_COST_MODEL_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "hardware/profile.h"

namespace shpir::model {

/// Closed-form cost model of the scheme (paper §5, Eqs. 7-8), used to
/// regenerate the paper's figures and to cross-validate the simulator.
class CostModel {
 public:
  /// Eq. 7: secure storage (bytes) for a database of n pages of B bytes
  /// with cache size m and block size k:
  ///   n*(log2(n)+1)/8 + (m + k + 1) * B.
  static uint64_t SecureStorageBytes(uint64_t n, uint64_t m, uint64_t k,
                                     uint64_t page_size);

  /// Eq. 8: three-party query time (seconds):
  ///   4*ts + 2*(k+1)*B*(1/rd + 1/rl + 1/renc).
  static double QuerySeconds(uint64_t k, uint64_t page_size,
                             const hardware::HardwareProfile& profile);

  /// Two-party query time: the link is replaced by the network. The
  /// k+1 pages cross the network twice; reads are pipelined into one
  /// round trip and the write-back acknowledgment costs another:
  ///   2*rtt + 2*(k+1)*B/rnet + 4*ts + 2*(k+1)*B*(1/rd + 1/renc).
  static double TwoPartyQuerySeconds(uint64_t k, uint64_t page_size,
                                     const hardware::HardwareProfile& profile);

  /// A fully resolved configuration: inputs plus the derived security
  /// parameter and predicted costs.
  struct Evaluation {
    uint64_t n = 0;
    uint64_t m = 0;
    uint64_t page_size = 0;
    uint64_t k = 0;
    uint64_t scan_period = 0;
    double privacy_c = 0.0;       // Achieved c (Eq. 5).
    double query_seconds = 0.0;   // Eq. 8 (or two-party variant).
    uint64_t storage_bytes = 0;   // Eq. 7.
  };

  /// Evaluates a three-party deployment targeting privacy `c`.
  static Result<Evaluation> Evaluate(uint64_t n, uint64_t m,
                                     uint64_t page_size, double c,
                                     const hardware::HardwareProfile& profile);

  /// Evaluates a two-party deployment targeting privacy `c`.
  static Result<Evaluation> EvaluateTwoParty(
      uint64_t n, uint64_t m, uint64_t page_size, double c,
      const hardware::HardwareProfile& profile);
};

/// One series point of a reproduced paper figure.
struct FigurePoint {
  std::string database;   // e.g. "1GB".
  uint64_t n = 0;         // Pages.
  uint64_t m = 0;         // Cache size (x axis of Figs. 4/5/7).
  double epsilon = 0.0;   // Fig. 6 x axis (c = 1 + epsilon).
  double response_seconds = 0.0;
  double storage_mb = 0.0;
};

/// Fig. 4: page retrieval cost vs cache size, 1KB pages, c = 2, for
/// 1GB/10GB/100GB/1TB databases.
std::vector<FigurePoint> GenerateFig4();

/// Fig. 5: same sweep with 10KB pages.
std::vector<FigurePoint> GenerateFig5();

/// Fig. 6: response time vs privacy parameter c = 1 + eps, 1KB pages,
/// largest Fig. 4 cache per database.
std::vector<FigurePoint> GenerateFig6();

/// Fig. 7: two-party model, 1TB database, 50ms RTT: (a) 1KB pages,
/// (b) 10KB pages. Storage column is the owner-side requirement in GB.
std::vector<FigurePoint> GenerateFig7();

}  // namespace shpir::model

#endif  // SHPIR_MODEL_COST_MODEL_H_
