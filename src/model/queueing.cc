#include "model/queueing.h"

#include <algorithm>
#include <cmath>

#include "crypto/secure_random.h"

namespace shpir::model {

QueueStats SimulateFifoQueue(const std::vector<double>& service_times,
                             double arrival_rate, uint64_t seed) {
  QueueStats stats;
  if (service_times.empty() || arrival_rate <= 0) {
    return stats;
  }
  crypto::SecureRandom rng(seed);
  std::vector<double> sojourns;
  sojourns.reserve(service_times.size());
  double arrival = 0;
  double server_free = 0;
  double total_service = 0;
  for (double service : service_times) {
    // Exponential inter-arrival.
    const double u = rng.UniformDouble();
    arrival += -std::log1p(-u) / arrival_rate;
    const double start = std::max(arrival, server_free);
    server_free = start + service;
    sojourns.push_back(server_free - arrival);
    total_service += service;
  }
  std::sort(sojourns.begin(), sojourns.end());
  double sum = 0;
  for (double s : sojourns) {
    sum += s;
  }
  auto pct = [&](double p) {
    return sojourns[static_cast<size_t>(p * (sojourns.size() - 1))];
  };
  stats.mean_s = sum / sojourns.size();
  stats.p50_s = pct(0.50);
  stats.p95_s = pct(0.95);
  stats.p99_s = pct(0.99);
  stats.max_s = sojourns.back();
  stats.utilization =
      arrival_rate * total_service / service_times.size();
  return stats;
}

QueueStats SimulateShardedFanout(
    const std::vector<std::vector<double>>& shard_service_times,
    double arrival_rate, uint64_t seed) {
  QueueStats stats;
  if (shard_service_times.empty() || arrival_rate <= 0) {
    return stats;
  }
  const size_t shards = shard_service_times.size();
  const size_t queries = shard_service_times[0].size();
  if (queries == 0) {
    return stats;
  }
  for (const auto& service : shard_service_times) {
    if (service.size() != queries) {
      return stats;
    }
  }
  crypto::SecureRandom arrivals_rng(seed);
  // Separate stream so the S = 1 case reproduces SimulateFifoQueue
  // bit-for-bit (there the owner draw is a no-op).
  crypto::SecureRandom owner_rng(seed + 1);
  std::vector<double> server_free(shards, 0.0);
  std::vector<double> total_service(shards, 0.0);
  std::vector<double> sojourns;
  sojourns.reserve(queries);
  double arrival = 0;
  for (size_t i = 0; i < queries; ++i) {
    const double u = arrivals_rng.UniformDouble();
    arrival += -std::log1p(-u) / arrival_rate;
    const uint64_t owner =
        shards == 1 ? 0 : owner_rng.UniformInt(shards);
    double owner_done = 0;
    for (size_t s = 0; s < shards; ++s) {
      const double service = shard_service_times[s][i];
      const double start = std::max(arrival, server_free[s]);
      server_free[s] = start + service;
      total_service[s] += service;
      if (s == owner) {
        owner_done = server_free[s];
      }
    }
    sojourns.push_back(owner_done - arrival);
  }
  std::sort(sojourns.begin(), sojourns.end());
  double sum = 0;
  for (double s : sojourns) {
    sum += s;
  }
  auto pct = [&](double p) {
    return sojourns[static_cast<size_t>(p * (sojourns.size() - 1))];
  };
  stats.mean_s = sum / sojourns.size();
  stats.p50_s = pct(0.50);
  stats.p95_s = pct(0.95);
  stats.p99_s = pct(0.99);
  stats.max_s = sojourns.back();
  for (size_t s = 0; s < shards; ++s) {
    stats.utilization = std::max(
        stats.utilization, arrival_rate * total_service[s] / queries);
  }
  return stats;
}

}  // namespace shpir::model
