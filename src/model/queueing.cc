#include "model/queueing.h"

#include <algorithm>
#include <cmath>

#include "crypto/secure_random.h"

namespace shpir::model {

QueueStats SimulateFifoQueue(const std::vector<double>& service_times,
                             double arrival_rate, uint64_t seed) {
  QueueStats stats;
  if (service_times.empty() || arrival_rate <= 0) {
    return stats;
  }
  crypto::SecureRandom rng(seed);
  std::vector<double> sojourns;
  sojourns.reserve(service_times.size());
  double arrival = 0;
  double server_free = 0;
  double total_service = 0;
  for (double service : service_times) {
    // Exponential inter-arrival.
    const double u = rng.UniformDouble();
    arrival += -std::log1p(-u) / arrival_rate;
    const double start = std::max(arrival, server_free);
    server_free = start + service;
    sojourns.push_back(server_free - arrival);
    total_service += service;
  }
  std::sort(sojourns.begin(), sojourns.end());
  double sum = 0;
  for (double s : sojourns) {
    sum += s;
  }
  auto pct = [&](double p) {
    return sojourns[static_cast<size_t>(p * (sojourns.size() - 1))];
  };
  stats.mean_s = sum / sojourns.size();
  stats.p50_s = pct(0.50);
  stats.p95_s = pct(0.95);
  stats.p99_s = pct(0.99);
  stats.max_s = sojourns.back();
  stats.utilization =
      arrival_rate * total_service / service_times.size();
  return stats;
}

}  // namespace shpir::model
