#ifndef SHPIR_MODEL_QUEUEING_H_
#define SHPIR_MODEL_QUEUEING_H_

#include <cstdint>
#include <vector>

namespace shpir::model {

/// Sojourn-time statistics of a simulated FIFO queue.
struct QueueStats {
  double mean_s = 0;
  double p50_s = 0;
  double p95_s = 0;
  double p99_s = 0;
  double max_s = 0;
  /// Offered load: arrival_rate * mean service time.
  double utilization = 0;
};

/// Simulates an M/G/1 FIFO queue: Poisson arrivals at `arrival_rate`
/// (queries/second) served in order with the given per-query service
/// times. This turns per-query *service* costs into what clients
/// actually experience under load — the paper's "taking the database
/// server offline for large periods of time" is precisely the
/// head-of-line blocking a reshuffle causes here.
QueueStats SimulateFifoQueue(const std::vector<double>& service_times,
                             double arrival_rate, uint64_t seed);

/// Fork-join extension for the sharded runtime (src/shard/): each
/// logical query fans out one job to every shard's FIFO server (the
/// real query to a uniformly drawn owner, cover dummies elsewhere) and
/// the client's sojourn ends when the OWNER shard completes its job —
/// dummies drain in the background and only contribute queueing
/// pressure. `shard_service_times[s][i]` is shard s's service time for
/// logical query i; all shards must provide the same query count.
/// Arrivals are Poisson at `arrival_rate` drawn from `seed`, owners
/// from seed + 1, so with a single shard the output matches
/// SimulateFifoQueue(service_times[0], arrival_rate, seed) exactly.
/// Utilization reports the bottleneck (most loaded) shard.
QueueStats SimulateShardedFanout(
    const std::vector<std::vector<double>>& shard_service_times,
    double arrival_rate, uint64_t seed);

}  // namespace shpir::model

#endif  // SHPIR_MODEL_QUEUEING_H_
