#ifndef SHPIR_MODEL_QUEUEING_H_
#define SHPIR_MODEL_QUEUEING_H_

#include <cstdint>
#include <vector>

namespace shpir::model {

/// Sojourn-time statistics of a simulated FIFO queue.
struct QueueStats {
  double mean_s = 0;
  double p50_s = 0;
  double p95_s = 0;
  double p99_s = 0;
  double max_s = 0;
  /// Offered load: arrival_rate * mean service time.
  double utilization = 0;
};

/// Simulates an M/G/1 FIFO queue: Poisson arrivals at `arrival_rate`
/// (queries/second) served in order with the given per-query service
/// times. This turns per-query *service* costs into what clients
/// actually experience under load — the paper's "taking the database
/// server offline for large periods of time" is precisely the
/// head-of-line blocking a reshuffle causes here.
QueueStats SimulateFifoQueue(const std::vector<double>& service_times,
                             double arrival_rate, uint64_t seed);

}  // namespace shpir::model

#endif  // SHPIR_MODEL_QUEUEING_H_
