#include "model/related_work_model.h"

#include <cmath>

namespace shpir::model {

std::vector<SchemeCost> CompareSchemes(uint64_t n, uint64_t m, uint64_t k) {
  const double dn = static_cast<double>(n);
  const double dm = static_cast<double>(m);
  const double dk = static_cast<double>(k);
  const double sqrt_n = std::sqrt(dn);
  const double log2n = std::log2(dn);

  std::vector<SchemeCost> schemes;
  schemes.push_back({"trivial", dn, dn, true});
  // Wang: one page per query; every m queries a 2-pass reshuffle (2n).
  schemes.push_back({"wang06", 1.0 + 2.0 * dn / dm, 1.0 + 2.0 * dn, true});
  // sqrt ORAM: shelter scan (sqrt n) + 1 main read + shelter append per
  // query; every sqrt(n) queries a ~4n-page reshuffle (read main +
  // shelter, write main + shelter).
  const double shelter = sqrt_n;
  schemes.push_back({"sqrt-oram",
                     shelter + 2.0 +
                         (2.0 * (dn + shelter) + 2.0 * dn) / shelter,
                     shelter + 2.0 + 2.0 * (dn + shelter) + 2.0 * dn,
                     true});
  // Pyramid ORAM: Z slots per level probe, ~log2(n) levels; rebuild of
  // level i costs ~2 * 2^i * Z pages every 2^i queries -> amortized
  // ~2 Z log n on top of probes; worst case is the bottom rebuild.
  const double z = 8.0;
  schemes.push_back({"pyramid-oram", z * log2n + 2.0 * z * log2n,
                     z * log2n + 4.0 * z * dn, true});
  // This paper: k+1 pages read + written, every query.
  schemes.push_back({"c-approx", 2.0 * (dk + 1.0), 2.0 * (dk + 1.0),
                     false});
  return schemes;
}

double PagesToSeconds(double pages, uint64_t page_size, double seeks,
                      const hardware::HardwareProfile& profile) {
  const double bytes = pages * static_cast<double>(page_size);
  double seconds = seeks * profile.seek_time_s;
  if (profile.disk_rate > 0) {
    seconds += bytes / profile.disk_rate;
  }
  if (profile.link_rate > 0) {
    seconds += bytes / profile.link_rate;
  }
  if (profile.crypto_rate > 0) {
    seconds += bytes / profile.crypto_rate;
  }
  return seconds;
}

}  // namespace shpir::model
