#ifndef SHPIR_MODEL_RELATED_WORK_MODEL_H_
#define SHPIR_MODEL_RELATED_WORK_MODEL_H_

#include <cstdint>
#include <string>
#include <vector>

#include "hardware/profile.h"

namespace shpir::model {

/// Closed-form per-query costs (amortized and worst case, in pages
/// moved through the device) for the scheme families the paper's §2
/// surveys, under a common deployment (n pages of B bytes, m pages of
/// secure storage). These are the classic asymptotics instantiated with
/// concrete constants matching our implementations:
///
///   trivial        : n per query, worst = amortized.
///   Wang et al.    : 1 + 2n/m amortized; worst = 1 + 2n (reshuffle).
///   sqrt ORAM      : sqrt(n) + 1 + (4n + 2 sqrt(n))/sqrt(n) amortized;
///                    worst ~ 4n + 3 sqrt(n).
///   pyramid ORAM   : O(log^2 n) amortized; worst ~ 4n (bottom rebuild).
///   c-approx (this): 2(k+1) per query, worst = amortized.
struct SchemeCost {
  std::string name;
  double amortized_pages;   // Expected pages transferred per query.
  double worst_case_pages;  // Worst single query.
  bool perfect_privacy;     // True for the PIR-grade schemes.
};

/// Evaluates every scheme at one deployment point. `k` is the
/// c-approximate block size to use (from Eq. 6).
std::vector<SchemeCost> CompareSchemes(uint64_t n, uint64_t m, uint64_t k);

/// Converts pages-per-query into seconds under a profile (Eq. 8-style:
/// seeks + transfer + crypto, both directions where applicable).
double PagesToSeconds(double pages, uint64_t page_size, double seeks,
                      const hardware::HardwareProfile& profile);

}  // namespace shpir::model

#endif  // SHPIR_MODEL_RELATED_WORK_MODEL_H_
