#include "net/pir_service.h"

namespace shpir::net {

namespace {

constexpr uint8_t kOpRetrieve = 1;
constexpr uint8_t kOpModify = 2;
constexpr uint8_t kOpInsert = 3;
constexpr uint8_t kOpRemove = 4;
constexpr uint8_t kOpStats = 5;

constexpr uint8_t kStatusOk = 0;
constexpr uint8_t kStatusError = 1;

constexpr size_t kRequestHeader = 1 + 8;

Bytes OkResponse(ByteSpan payload = {}) {
  Bytes out(1 + payload.size());
  out[0] = kStatusOk;
  std::copy(payload.begin(), payload.end(), out.begin() + 1);
  return out;
}

Bytes ErrorResponse(const Status& status) {
  const std::string text = status.ToString();
  Bytes out(1 + text.size());
  out[0] = kStatusError;
  std::copy(text.begin(), text.end(), out.begin() + 1);
  return out;
}

}  // namespace

Result<Bytes> PirServiceServer::HandleRecord(ByteSpan record) {
  SHPIR_ASSIGN_OR_RETURN(Bytes request, session_.Open(record));
  Bytes response;
  if (request.size() < kRequestHeader) {
    response = ErrorResponse(InvalidArgumentError("truncated request"));
  } else {
    const uint8_t op = request[0];
    const storage::PageId id = LoadLE64(request.data() + 1);
    const ByteSpan payload(request.data() + kRequestHeader,
                           request.size() - kRequestHeader);
    switch (op) {
      case kOpRetrieve: {
        Result<Bytes> data = engine_->Retrieve(id);
        response = data.ok() ? OkResponse(*data)
                             : ErrorResponse(data.status());
        break;
      }
      case kOpModify: {
        const Status status =
            engine_->Modify(id, Bytes(payload.begin(), payload.end()));
        response = status.ok() ? OkResponse() : ErrorResponse(status);
        break;
      }
      case kOpInsert: {
        Result<storage::PageId> new_id =
            engine_->Insert(Bytes(payload.begin(), payload.end()));
        if (new_id.ok()) {
          uint8_t buf[8];
          StoreLE64(*new_id, buf);
          response = OkResponse(ByteSpan(buf, 8));
        } else {
          response = ErrorResponse(new_id.status());
        }
        break;
      }
      case kOpRemove: {
        const Status status = engine_->Remove(id);
        response = status.ok() ? OkResponse() : ErrorResponse(status);
        break;
      }
      case kOpStats: {
        if (stats_) {
          const Bytes snapshot = stats_();
          response = OkResponse(snapshot);
        } else {
          response = ErrorResponse(
              UnimplementedError("stats are not enabled on this service"));
        }
        break;
      }
      default:
        response = ErrorResponse(InvalidArgumentError("unknown op"));
    }
  }
  return session_.Seal(response);
}

Result<Bytes> PirServiceClient::Call(uint8_t op, storage::PageId id,
                                     ByteSpan payload) {
  Bytes request(kRequestHeader + payload.size());
  request[0] = op;
  StoreLE64(id, request.data() + 1);
  std::copy(payload.begin(), payload.end(),
            request.begin() + kRequestHeader);
  SHPIR_ASSIGN_OR_RETURN(Bytes sealed, session_.Seal(request));
  SHPIR_ASSIGN_OR_RETURN(Bytes response_record, deliver_(sealed));
  SHPIR_ASSIGN_OR_RETURN(Bytes response, session_.Open(response_record));
  if (response.empty()) {
    return DataLossError("empty service response");
  }
  if (response[0] == kStatusError) {
    return InternalError("service error: " +
                         std::string(response.begin() + 1, response.end()));
  }
  if (response[0] != kStatusOk) {
    return DataLossError("malformed service response");
  }
  return Bytes(response.begin() + 1, response.end());
}

Result<Bytes> PirServiceClient::Retrieve(storage::PageId id) {
  return Call(kOpRetrieve, id, {});
}

Status PirServiceClient::Modify(storage::PageId id, ByteSpan data) {
  Result<Bytes> response = Call(kOpModify, id, data);
  return response.ok() ? OkStatus() : response.status();
}

Result<storage::PageId> PirServiceClient::Insert(ByteSpan data) {
  SHPIR_ASSIGN_OR_RETURN(Bytes response, Call(kOpInsert, 0, data));
  if (response.size() != 8) {
    return DataLossError("malformed insert response");
  }
  return LoadLE64(response.data());
}

Status PirServiceClient::Remove(storage::PageId id) {
  Result<Bytes> response = Call(kOpRemove, id, {});
  return response.ok() ? OkStatus() : response.status();
}

Result<Bytes> PirServiceClient::Stats() { return Call(kOpStats, 0, {}); }

}  // namespace shpir::net
