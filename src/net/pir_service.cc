#include "net/pir_service.h"

namespace shpir::net {

namespace {

constexpr uint8_t kOpRetrieve = 1;
constexpr uint8_t kOpModify = 2;
constexpr uint8_t kOpInsert = 3;
constexpr uint8_t kOpRemove = 4;
constexpr uint8_t kOpStats = 5;
constexpr uint8_t kOpTraceDump = 6;
constexpr uint8_t kOpTraced = 7;  // Envelope: ctx(17) | inner request.
// Profiling dump; payload byte 0 selects the format (0 = JSON stack
// table, 1 = flame-graph collapsed text; absent = 0).
constexpr uint8_t kOpProfileDump = 8;
constexpr uint8_t kOpSloStatus = 9;  // SLO/error-budget state (JSON).
// Keyword-store manifest fetch; payload is the shared wire codec
// (EncodeKeywordManifestRequest / ...Response in net/wire.h).
constexpr uint8_t kOpKeywordManifest = 10;
constexpr uint8_t kOpEventDump = 11;  // Structured event log (JSON).
// Flight-recorder dump: payload byte 0 selects the mode (0 = list,
// 1 = show; id rides the request id field).
constexpr uint8_t kOpIncidentDump = 12;
constexpr uint8_t kOpHealth = 13;  // Health/readiness document (JSON).
// Privacy/cost controller status + operator verbs; payload is the
// shared EncodeControlRequest codec (wire.h).
constexpr uint8_t kOpControlStatus = 14;

constexpr uint8_t kStatusOk = 0;
constexpr uint8_t kStatusError = 1;

constexpr size_t kRequestHeader = 1 + 8;

Bytes OkResponse(ByteSpan payload = {}) {
  Bytes out(1 + payload.size());
  out[0] = kStatusOk;
  std::copy(payload.begin(), payload.end(), out.begin() + 1);
  return out;
}

Bytes ErrorResponse(const Status& status) {
  const std::string text = status.ToString();
  Bytes out(1 + text.size());
  out[0] = kStatusError;
  std::copy(text.begin(), text.end(), out.begin() + 1);
  return out;
}

}  // namespace

Result<Bytes> PirServiceServer::HandleRecord(ByteSpan record,
                                             const QueueTiming* timing) {
  SHPIR_ASSIGN_OR_RETURN(Bytes request, session_.Open(record));
  // Unwrap a TRACED envelope into the propagated context. A malformed
  // envelope fails the whole record (it is inside the authenticated
  // session, so garbage here means a broken peer, not line noise).
  obs::TraceContext trace_ctx;
  ByteSpan plaintext(request);
  if (!plaintext.empty() && plaintext[0] == kOpTraced) {
    if (plaintext.size() < 1 + obs::TraceContext::kWireSize) {
      return InvalidArgumentError("truncated traced envelope");
    }
    SHPIR_ASSIGN_OR_RETURN(trace_ctx,
                           obs::TraceContext::Decode(plaintext.subspan(1)));
    plaintext = plaintext.subspan(1 + obs::TraceContext::kWireSize);
    if (!plaintext.empty() && plaintext[0] == kOpTraced) {
      return InvalidArgumentError("nested traced envelope");
    }
  }
  // Retroactive queue-wait span: the relay recorded when the frame
  // arrived and when it was dequeued; with a sampled context that gap
  // becomes a "hub_queue_wait" span under the client's root.
  if (tracer_ != nullptr && trace_ctx.active() && timing != nullptr &&
      timing->dequeue_ns > timing->arrival_ns) {
    obs::SpanRecord wait;
    wait.trace_id = trace_ctx.trace_id;
    wait.span_id = tracer_->NewSpanId();
    wait.parent_span_id = trace_ctx.span_id;
    wait.name = "hub_queue_wait";
    wait.start_ns = timing->arrival_ns;
    wait.duration_ns = timing->dequeue_ns - timing->arrival_ns;
    tracer_->Record(wait);
  }
  // Service-side span covering decode + engine work; the engine parents
  // its own spans under this one.
  obs::TraceSpan service_span(tracer_, trace_ctx, "service_handle");
  Bytes response;
  if (plaintext.size() < kRequestHeader) {
    response = ErrorResponse(InvalidArgumentError("truncated request"));
  } else {
    const uint8_t op = plaintext[0];
    const storage::PageId id = LoadLE64(plaintext.data() + 1);
    const ByteSpan payload(plaintext.data() + kRequestHeader,
                           plaintext.size() - kRequestHeader);
    switch (op) {
      case kOpRetrieve: {
        Result<Bytes> data =
            service_span.context().active()
                ? engine_->TracedRetrieve(id, service_span.context())
                : engine_->Retrieve(id);
        response = data.ok() ? OkResponse(*data)
                             : ErrorResponse(data.status());
        break;
      }
      case kOpModify: {
        const Status status =
            engine_->Modify(id, Bytes(payload.begin(), payload.end()));
        response = status.ok() ? OkResponse() : ErrorResponse(status);
        break;
      }
      case kOpInsert: {
        Result<storage::PageId> new_id =
            engine_->Insert(Bytes(payload.begin(), payload.end()));
        if (new_id.ok()) {
          uint8_t buf[8];
          StoreLE64(*new_id, buf);
          response = OkResponse(ByteSpan(buf, 8));
        } else {
          response = ErrorResponse(new_id.status());
        }
        break;
      }
      case kOpRemove: {
        const Status status = engine_->Remove(id);
        response = status.ok() ? OkResponse() : ErrorResponse(status);
        break;
      }
      case kOpStats: {
        if (stats_) {
          const Bytes snapshot = stats_();
          response = OkResponse(snapshot);
        } else {
          response = ErrorResponse(
              UnimplementedError("stats are not enabled on this service"));
        }
        break;
      }
      case kOpTraceDump: {
        if (trace_dump_) {
          const Bytes dump = trace_dump_();
          response = OkResponse(dump);
        } else {
          response = ErrorResponse(UnimplementedError(
              "tracing is not enabled on this service"));
        }
        break;
      }
      case kOpProfileDump: {
        if (profile_dump_) {
          const bool folded = !payload.empty() && payload[0] == 1;
          const Bytes dump = profile_dump_(folded);
          response = OkResponse(dump);
        } else {
          response = ErrorResponse(UnimplementedError(
              "profiling is not enabled on this service"));
        }
        break;
      }
      case kOpSloStatus: {
        if (slo_status_) {
          const Bytes status_json = slo_status_();
          response = OkResponse(status_json);
        } else {
          response = ErrorResponse(UnimplementedError(
              "SLO tracking is not enabled on this service"));
        }
        break;
      }
      case kOpKeywordManifest: {
        if (!keyword_manifest_) {
          response = ErrorResponse(UnimplementedError(
              "no keyword manifest published on this service"));
          break;
        }
        Result<uint64_t> cached = DecodeKeywordManifestRequest(payload);
        if (!cached.ok()) {
          response = ErrorResponse(cached.status());
          break;
        }
        const KeywordManifest current = keyword_manifest_();
        response = OkResponse(EncodeKeywordManifestResponse(
            current, /*include_body=*/*cached != current.version));
        break;
      }
      case kOpEventDump: {
        if (event_dump_) {
          const Bytes dump = event_dump_();
          response = OkResponse(dump);
        } else {
          response = ErrorResponse(UnimplementedError(
              "event logging is not enabled on this service"));
        }
        break;
      }
      case kOpIncidentDump: {
        if (incident_dump_) {
          const bool show = !payload.empty() && payload[0] == 1;
          Result<Bytes> dump = incident_dump_(show, id);
          response = dump.ok() ? OkResponse(*dump)
                               : ErrorResponse(dump.status());
        } else {
          response = ErrorResponse(UnimplementedError(
              "incident recording is not enabled on this service"));
        }
        break;
      }
      case kOpControlStatus: {
        if (!control_) {
          response = ErrorResponse(UnimplementedError(
              "no privacy/cost controller attached to this service"));
          break;
        }
        Result<ControlRequest> control = DecodeControlRequest(payload);
        if (!control.ok()) {
          response = ErrorResponse(control.status());
          break;
        }
        Result<Bytes> doc = control_(*control);
        response =
            doc.ok() ? OkResponse(*doc) : ErrorResponse(doc.status());
        break;
      }
      case kOpHealth: {
        if (health_) {
          const Bytes doc = health_();
          response = OkResponse(doc);
        } else {
          response = ErrorResponse(UnimplementedError(
              "health reporting is not enabled on this service"));
        }
        break;
      }
      default:
        response = ErrorResponse(InvalidArgumentError("unknown op"));
    }
  }
  return session_.Seal(response);
}

Result<Bytes> PirServiceClient::Call(uint8_t op, storage::PageId id,
                                     ByteSpan payload) {
  // Root span for the whole logical query: the head sampling decision
  // made here is inherited by every downstream span. Unsampled queries
  // send no envelope and pay zero wire overhead.
  obs::TraceSpan root(tracer_, "client_query");
  Bytes request;
  if (root.context().active()) {
    request.push_back(kOpTraced);
    root.context().EncodeTo(request);
  }
  const size_t inner = request.size();
  request.resize(inner + kRequestHeader + payload.size());
  request[inner] = op;
  StoreLE64(id, request.data() + inner + 1);
  std::copy(payload.begin(), payload.end(),
            request.begin() + static_cast<ptrdiff_t>(inner) + kRequestHeader);
  Result<Bytes> sealed_or = [&]() -> Result<Bytes> {
    obs::TraceSpan encode(tracer_, root.context(), "client_encode");
    return session_.Seal(request);
  }();
  SHPIR_ASSIGN_OR_RETURN(Bytes sealed, std::move(sealed_or));
  SHPIR_ASSIGN_OR_RETURN(Bytes response_record, deliver_(sealed));
  SHPIR_ASSIGN_OR_RETURN(Bytes response, session_.Open(response_record));
  if (response.empty()) {
    return DataLossError("empty service response");
  }
  // shpir-lint-allow-next-line(secret-compare): the status byte is a public protocol header on the opened record
  if (response[0] == kStatusError) {
    return InternalError("service error: " +
                         std::string(response.begin() + 1, response.end()));
  }
  // shpir-lint-allow-next-line(secret-compare): the status byte is a public protocol header on the opened record
  if (response[0] != kStatusOk) {
    return DataLossError("malformed service response");
  }
  return Bytes(response.begin() + 1, response.end());
}

Result<Bytes> PirServiceClient::Retrieve(storage::PageId id) {
  return Call(kOpRetrieve, id, {});
}

Status PirServiceClient::Modify(storage::PageId id, ByteSpan data) {
  Result<Bytes> response = Call(kOpModify, id, data);
  return response.ok() ? OkStatus() : response.status();
}

Result<storage::PageId> PirServiceClient::Insert(ByteSpan data) {
  SHPIR_ASSIGN_OR_RETURN(Bytes response, Call(kOpInsert, 0, data));
  if (response.size() != 8) {
    return DataLossError("malformed insert response");
  }
  return LoadLE64(response.data());
}

Status PirServiceClient::Remove(storage::PageId id) {
  Result<Bytes> response = Call(kOpRemove, id, {});
  return response.ok() ? OkStatus() : response.status();
}

Result<Bytes> PirServiceClient::Stats() { return Call(kOpStats, 0, {}); }

Result<Bytes> PirServiceClient::TraceDump() {
  return Call(kOpTraceDump, 0, {});
}

Result<Bytes> PirServiceClient::ProfileDump(bool folded) {
  const uint8_t format = folded ? 1 : 0;
  return Call(kOpProfileDump, 0, ByteSpan(&format, 1));
}

Result<Bytes> PirServiceClient::SloStatus() {
  return Call(kOpSloStatus, 0, {});
}

Result<Bytes> PirServiceClient::EventDump() {
  return Call(kOpEventDump, 0, {});
}

Result<Bytes> PirServiceClient::IncidentList() {
  const uint8_t mode = 0;
  return Call(kOpIncidentDump, 0, ByteSpan(&mode, 1));
}

Result<Bytes> PirServiceClient::IncidentShow(uint64_t id) {
  const uint8_t mode = 1;
  return Call(kOpIncidentDump, id, ByteSpan(&mode, 1));
}

Result<Bytes> PirServiceClient::Health() { return Call(kOpHealth, 0, {}); }

Result<Bytes> PirServiceClient::ControlStatus() {
  ControlRequest request;
  request.verb = ControlVerb::kStatus;
  return Call(kOpControlStatus, 0, EncodeControlRequest(request));
}

Result<Bytes> PirServiceClient::ControlFreeze() {
  ControlRequest request;
  request.verb = ControlVerb::kFreeze;
  return Call(kOpControlStatus, 0, EncodeControlRequest(request));
}

Result<Bytes> PirServiceClient::ControlUnfreeze() {
  ControlRequest request;
  request.verb = ControlVerb::kUnfreeze;
  return Call(kOpControlStatus, 0, EncodeControlRequest(request));
}

Result<Bytes> PirServiceClient::ControlSetBounds(uint64_t k_min,
                                                 uint64_t k_max) {
  ControlRequest request;
  request.verb = ControlVerb::kSetBounds;
  request.k_min = k_min;
  request.k_max = k_max;
  return Call(kOpControlStatus, 0, EncodeControlRequest(request));
}

Result<KeywordManifest> PirServiceClient::FetchKeywordManifest(
    uint64_t cached_version) {
  const Bytes request = EncodeKeywordManifestRequest(cached_version);
  SHPIR_ASSIGN_OR_RETURN(Bytes response,
                         Call(kOpKeywordManifest, 0, request));
  return DecodeKeywordManifestResponse(response);
}

}  // namespace shpir::net
