#ifndef SHPIR_NET_PIR_SERVICE_H_
#define SHPIR_NET_PIR_SERVICE_H_

#include <functional>
#include <memory>

#include "common/result.h"
#include "core/pir_engine.h"
#include "net/secure_channel.h"

namespace shpir::net {

/// The three-party query protocol of Fig. 1: clients talk to the secure
/// hardware through end-to-end encrypted records that the database
/// server merely relays. Requests carry the operation and page id;
/// responses carry the page payload — all invisible to the relay.
///
/// Request plaintext:  op(1) | id(8) | payload...
/// Response plaintext: status(1) | payload...

/// Runs inside the trusted boundary next to the engine.
class PirServiceServer {
 public:
  /// Produces the service's observability snapshot (JSON). Because the
  /// STATS op travels inside the sealed session records, only
  /// authenticated clients can fetch it. The provider must return
  /// aggregate, request-index-free data only — it is the one sanctioned
  /// crossing of the trust boundary (see docs/OBSERVABILITY.md).
  using StatsProvider = std::function<Bytes()>;

  /// Neither pointer is owned. The session must be the server side of
  /// the handshake with this client. `stats` may be null, in which case
  /// STATS requests are answered with an error. Any PirEngine works —
  /// the paper's single engine, a ThreadSafeEngine wrapper, or the
  /// sharded serving runtime; engines without update support answer the
  /// update ops with Unimplemented.
  PirServiceServer(core::PirEngine* engine, SecureSession session,
                   StatsProvider stats = nullptr)
      : engine_(engine),
        session_(std::move(session)),
        stats_(std::move(stats)) {}

  /// Decrypts one request record, executes it, returns the sealed
  /// response record. Protocol-level failures (bad record) are errors;
  /// engine-level failures are encoded into the response.
  Result<Bytes> HandleRecord(ByteSpan record);

 private:
  core::PirEngine* engine_;
  SecureSession session_;
  StatsProvider stats_;
};

/// The client side. `deliver` sends a sealed request record through the
/// untrusted relay and returns the sealed response record.
class PirServiceClient {
 public:
  using Deliver = std::function<Result<Bytes>(ByteSpan record)>;

  PirServiceClient(SecureSession session, Deliver deliver)
      : session_(std::move(session)), deliver_(std::move(deliver)) {}

  /// Privately retrieves page `id`.
  Result<Bytes> Retrieve(storage::PageId id);

  /// Replaces page `id`'s payload.
  Status Modify(storage::PageId id, ByteSpan data);

  /// Inserts a new page; returns its id.
  Result<storage::PageId> Insert(ByteSpan data);

  /// Deletes page `id`.
  Status Remove(storage::PageId id);

  /// Fetches the service's observability snapshot as JSON (the
  /// obs::ToJson schema; parse with obs::ParseJsonSnapshot).
  Result<Bytes> Stats();

 private:
  Result<Bytes> Call(uint8_t op, storage::PageId id, ByteSpan payload);

  SecureSession session_;
  Deliver deliver_;
};

}  // namespace shpir::net

#endif  // SHPIR_NET_PIR_SERVICE_H_
