#ifndef SHPIR_NET_PIR_SERVICE_H_
#define SHPIR_NET_PIR_SERVICE_H_

#include <functional>
#include <memory>

#include "common/result.h"
#include "core/pir_engine.h"
#include "net/secure_channel.h"
#include "net/wire.h"
#include "obs/trace.h"

namespace shpir::net {

/// The three-party query protocol of Fig. 1: clients talk to the secure
/// hardware through end-to-end encrypted records that the database
/// server merely relays. Requests carry the operation and page id;
/// responses carry the page payload — all invisible to the relay.
///
/// Request plaintext:  op(1) | id(8) | payload...
/// Response plaintext: status(1) | payload...
///
/// Trace propagation: a client with tracing enabled wraps the request
/// plaintext in a TRACED envelope — op(1, kOpTraced) | context(17) |
/// inner request — inside the sealed record, so the relay sees nothing
/// and untraced requests stay byte-identical.

/// Runs inside the trusted boundary next to the engine.
class PirServiceServer {
 public:
  /// Produces the service's observability snapshot (JSON). Because the
  /// STATS op travels inside the sealed session records, only
  /// authenticated clients can fetch it. The provider must return
  /// aggregate, request-index-free data only — it is the one sanctioned
  /// crossing of the trust boundary (see docs/OBSERVABILITY.md).
  using StatsProvider = std::function<Bytes()>;

  /// Produces the trace dump (Chrome trace-event JSON) for the
  /// TRACE_DUMP op. Authenticated like StatsProvider; span payloads are
  /// public by construction (static names, shard indices, timing).
  using TraceProvider = std::function<Bytes()>;

  /// Produces the profiling dump for the PROFILE_DUMP op — folded
  /// flame-graph text when `folded`, else the JSON stack table.
  /// Authenticated like StatsProvider; profiles carry only static
  /// frame names and aggregate timing (target-independent by the
  /// constant-shape argument in obs/profiler.h).
  using ProfileProvider = std::function<Bytes(bool folded)>;

  /// Produces the SLO/error-budget status document (JSON) for the
  /// SLO_STATUS op. Authenticated like StatsProvider; the tracker
  /// stores only aggregate good/bad counts per time bucket.
  using SloProvider = std::function<Bytes()>;

  /// Produces the current keyword-store manifest for the
  /// KEYWORD_MANIFEST op. The manifest is public by design (every
  /// client receives the same artifact); versioning lets cached clients
  /// skip the body. Null means the op answers Unimplemented.
  using KeywordManifestProvider = std::function<KeywordManifest()>;

  /// Produces the structured event-log dump (JSON) for the EVENT_DUMP
  /// op. Authenticated like StatsProvider; events carry only static
  /// names and numeric aggregates (obs/eventlog.h's trust-boundary
  /// contract).
  using EventProvider = std::function<Bytes()>;

  /// Produces the flight-recorder dump for the INCIDENT_DUMP op:
  /// `show == false` lists bundle summaries, `show == true` returns
  /// the full bundle `id` (NotFound when evicted).
  using IncidentProvider =
      std::function<Result<Bytes>(bool show, uint64_t id)>;

  /// Produces the health/readiness document (JSON) for the HEALTH op —
  /// shard liveness + SLO + privacy state, the load-balancer surface.
  using HealthProvider = std::function<Bytes()>;

  /// Serves the CONTROL_STATUS op: takes one decoded operator verb and
  /// returns the privacy/cost controller's status JSON (the post-action
  /// state). Authenticated like StatsProvider; controller state is a
  /// public aggregate by design (k, c-estimates, decision outcomes).
  using ControlProvider =
      std::function<Result<Bytes>(const ControlRequest&)>;

  /// Relay-side timestamps for one request: when its frame arrived and
  /// when the hub dequeued it for handling. Used to reconstruct a
  /// retroactive "hub_queue_wait" span for sampled traces.
  struct QueueTiming {
    uint64_t arrival_ns = 0;
    uint64_t dequeue_ns = 0;
  };

  /// Neither pointer is owned. The session must be the server side of
  /// the handshake with this client. `stats` may be null, in which case
  /// STATS requests are answered with an error; likewise `trace_dump`
  /// for TRACE_DUMP. `tracer` (optional, unowned) records service-side
  /// spans for requests arriving in a sampled TRACED envelope. Any
  /// PirEngine works — the paper's single engine, a ThreadSafeEngine
  /// wrapper, or the sharded serving runtime; engines without update
  /// support answer the update ops with Unimplemented.
  PirServiceServer(core::PirEngine* engine, SecureSession session,
                   StatsProvider stats = nullptr,
                   TraceProvider trace_dump = nullptr,
                   obs::Tracer* tracer = nullptr,
                   ProfileProvider profile_dump = nullptr,
                   SloProvider slo_status = nullptr,
                   KeywordManifestProvider keyword_manifest = nullptr,
                   EventProvider event_dump = nullptr,
                   IncidentProvider incident_dump = nullptr,
                   HealthProvider health = nullptr,
                   ControlProvider control = nullptr)
      : engine_(engine),
        session_(std::move(session)),
        stats_(std::move(stats)),
        trace_dump_(std::move(trace_dump)),
        profile_dump_(std::move(profile_dump)),
        slo_status_(std::move(slo_status)),
        keyword_manifest_(std::move(keyword_manifest)),
        event_dump_(std::move(event_dump)),
        incident_dump_(std::move(incident_dump)),
        health_(std::move(health)),
        control_(std::move(control)),
        tracer_(tracer) {}

  /// Decrypts one request record, executes it, returns the sealed
  /// response record. Protocol-level failures (bad record) are errors;
  /// engine-level failures are encoded into the response. `timing`
  /// (optional) carries the relay-side queue timestamps.
  Result<Bytes> HandleRecord(ByteSpan record,
                             const QueueTiming* timing = nullptr);

 private:
  core::PirEngine* engine_;
  SecureSession session_;
  StatsProvider stats_;
  TraceProvider trace_dump_;
  ProfileProvider profile_dump_;
  SloProvider slo_status_;
  KeywordManifestProvider keyword_manifest_;
  EventProvider event_dump_;
  IncidentProvider incident_dump_;
  HealthProvider health_;
  ControlProvider control_;
  obs::Tracer* tracer_;
};

/// The client side. `deliver` sends a sealed request record through the
/// untrusted relay and returns the sealed response record.
class PirServiceClient {
 public:
  using Deliver = std::function<Result<Bytes>(ByteSpan record)>;

  PirServiceClient(SecureSession session, Deliver deliver)
      : session_(std::move(session)), deliver_(std::move(deliver)) {}

  /// Privately retrieves page `id`.
  Result<Bytes> Retrieve(storage::PageId id);

  /// Replaces page `id`'s payload.
  Status Modify(storage::PageId id, ByteSpan data);

  /// Inserts a new page; returns its id.
  Result<storage::PageId> Insert(ByteSpan data);

  /// Deletes page `id`.
  Status Remove(storage::PageId id);

  /// Fetches the service's observability snapshot as JSON (the
  /// obs::ToJson schema; parse with obs::ParseJsonSnapshot).
  Result<Bytes> Stats();

  /// Fetches the service's buffered spans as Chrome trace-event JSON.
  Result<Bytes> TraceDump();

  /// Fetches the service's continuous-profiling dump: folded
  /// flame-graph text when `folded`, else the JSON stack table.
  Result<Bytes> ProfileDump(bool folded = false);

  /// Fetches the service's SLO/error-budget status document (JSON).
  Result<Bytes> SloStatus();

  /// Fetches the keyword-store manifest. `cached_version` is the build
  /// version the client already holds (0 = none): when it is current
  /// the response carries the version but no body, so rebuild polling
  /// is one small sealed record.
  Result<KeywordManifest> FetchKeywordManifest(uint64_t cached_version = 0);

  /// Fetches the service's structured event-log dump (JSON).
  Result<Bytes> EventDump();

  /// Fetches the flight-recorder incident summaries (JSON).
  Result<Bytes> IncidentList();

  /// Fetches one full incident bundle by id (JSON; NotFound when the
  /// bundle has been evicted from the bounded store).
  Result<Bytes> IncidentShow(uint64_t id);

  /// Fetches the health/readiness document (JSON).
  Result<Bytes> Health();

  /// Privacy/cost controller surface (CONTROL_STATUS op). Every verb
  /// returns the controller's post-action status JSON.
  Result<Bytes> ControlStatus();
  Result<Bytes> ControlFreeze();
  Result<Bytes> ControlUnfreeze();
  /// k_max 0 = unbounded.
  Result<Bytes> ControlSetBounds(uint64_t k_min, uint64_t k_max);

  /// Attaches a span collector (unowned; nullptr detaches). Sampled
  /// calls then emit "client_query"/"client_encode" spans and propagate
  /// their context to the service inside the sealed record.
  void set_tracer(obs::Tracer* tracer) { tracer_ = tracer; }

 private:
  Result<Bytes> Call(uint8_t op, storage::PageId id, ByteSpan payload);

  SecureSession session_;
  Deliver deliver_;
  obs::Tracer* tracer_ = nullptr;
};

}  // namespace shpir::net

#endif  // SHPIR_NET_PIR_SERVICE_H_
