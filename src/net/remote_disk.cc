#include "net/remote_disk.h"

#include <cstring>

namespace shpir::net {

Result<std::unique_ptr<RemoteDisk>> RemoteDisk::Connect(
    Transport* transport) {
  if (transport == nullptr) {
    return InvalidArgumentError("transport is required");
  }
  Request request;
  request.op = Op::kGeometry;
  SHPIR_ASSIGN_OR_RETURN(Bytes response,
                         transport->RoundTrip(EncodeRequest(request)));
  SHPIR_ASSIGN_OR_RETURN(Bytes payload, DecodeResponse(response));
  if (payload.size() != 16) {
    return DataLossError("malformed geometry response");
  }
  const uint64_t num_slots = LoadLE64(payload.data());
  const uint64_t slot_size = LoadLE64(payload.data() + 8);
  return std::unique_ptr<RemoteDisk>(
      new RemoteDisk(transport, num_slots, slot_size));
}

Result<Bytes> RemoteDisk::Call(Request request) {
  // Wrap the round trip in a span and propagate its context so the
  // provider's spans nest under this RTT in the assembled trace.
  obs::TraceSpan rtt_span(tracer_, trace_ctx_, "remote_disk_rtt");
  if (rtt_span.context().active()) {
    request.trace = rtt_span.context();
  }
  const Bytes frame = EncodeRequest(request);
  // shpir-lint-allow-next-line(secret-arg): the request frame (op + slot location) is the scheme's priced observable: the provider is untrusted by design and privacy comes from the shuffle and cache policy (Eq. 5), while payloads cross only as sealed pages
  SHPIR_ASSIGN_OR_RETURN(Bytes response, transport_->RoundTrip(frame));
  if (accountant_ != nullptr) {
    accountant_->AddNetworkRoundTrips(1);
    accountant_->AddNetworkBytes(frame.size() + response.size());
  }
  return DecodeResponse(response);
}

Status RemoteDisk::Read(storage::Location loc, MutableByteSpan out) {
  if (out.size() != slot_size_) {
    return InvalidArgumentError("read buffer has wrong size");
  }
  Request request;
  request.op = Op::kRead;
  request.location = loc;
  SHPIR_ASSIGN_OR_RETURN(Bytes payload, Call(request));
  if (payload.size() != slot_size_) {
    return DataLossError("short remote read");
  }
  std::memcpy(out.data(), payload.data(), slot_size_);
  return OkStatus();
}

Status RemoteDisk::Write(storage::Location loc, ByteSpan data) {
  if (data.size() != slot_size_) {
    return InvalidArgumentError("write data has wrong size");
  }
  Request request;
  request.op = Op::kWrite;
  request.location = loc;
  request.payload.assign(data.begin(), data.end());
  Result<Bytes> response = Call(request);
  return response.ok() ? OkStatus() : response.status();
}

Status RemoteDisk::ReadRun(storage::Location start, uint64_t count,
                           std::vector<Bytes>& out) {
  Request request;
  request.op = Op::kReadRun;
  request.location = start;
  request.count = count;
  SHPIR_ASSIGN_OR_RETURN(Bytes payload, Call(request));
  // shpir-lint-allow-next-line(secret-compare): length check against the public run length and slot size
  if (payload.size() != count * slot_size_) {
    return DataLossError("short remote read-run");
  }
  // shpir-lint-allow-next-line(secret-alloc): run length is a public scheme parameter (c pages per round)
  out.resize(count);
  // shpir-lint-allow-next-line(secret-loop-bound): iteration count equals the public run length
  for (uint64_t i = 0; i < count; ++i) {
    out[i].assign(
        payload.begin() + static_cast<ptrdiff_t>(i * slot_size_),
        payload.begin() + static_cast<ptrdiff_t>((i + 1) * slot_size_));
  }
  return OkStatus();
}

Status RemoteDisk::WriteRun(storage::Location start,
                            const std::vector<Bytes>& slots) {
  Request request;
  request.op = Op::kWriteRun;
  request.location = start;
  request.count = slots.size();
  request.payload.reserve(slots.size() * slot_size_);
  for (const Bytes& slot : slots) {
    if (slot.size() != slot_size_) {
      return InvalidArgumentError("write slot has wrong size");
    }
    request.payload.insert(request.payload.end(), slot.begin(), slot.end());
  }
  Result<Bytes> response = Call(request);
  return response.ok() ? OkStatus() : response.status();
}

Result<KeywordManifest> FetchKeywordManifest(Transport& transport,
                                             uint64_t cached_version) {
  Request request;
  request.op = Op::kKeywordManifest;
  request.payload = EncodeKeywordManifestRequest(cached_version);
  SHPIR_ASSIGN_OR_RETURN(Bytes frame,
                         transport.RoundTrip(EncodeRequest(request)));
  SHPIR_ASSIGN_OR_RETURN(Bytes payload, DecodeResponse(frame));
  return DecodeKeywordManifestResponse(payload);
}

}  // namespace shpir::net
