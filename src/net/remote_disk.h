#ifndef SHPIR_NET_REMOTE_DISK_H_
#define SHPIR_NET_REMOTE_DISK_H_

#include <memory>

#include "hardware/cost_accountant.h"
#include "net/transport.h"
#include "net/wire.h"
#include "obs/trace.h"
#include "storage/disk.h"

namespace shpir::net {

/// Owner-side view of the provider's disk. Implements the storage::Disk
/// interface over a Transport, so the whole PIR stack (coprocessor +
/// engine) runs unchanged at the owner in the two-party model — every
/// slot access becomes a network round trip carrying sealed pages.
///
/// Network usage (one RTT and request+response bytes per call, with run
/// operations batched into a single round trip) is recorded into an
/// optional CostAccountant so simulated response times under a
/// HardwareProfile include the network term.
class RemoteDisk : public storage::Disk {
 public:
  /// Fetches the geometry from the remote end. `transport` is unowned.
  static Result<std::unique_ptr<RemoteDisk>> Connect(Transport* transport);

  /// Registers the accountant that receives network counters (e.g. the
  /// owner-side coprocessor's). Pass nullptr to disable.
  void set_accountant(hardware::CostAccountant* accountant) {
    accountant_ = accountant;
  }

  /// Attaches a span collector (unowned; nullptr detaches): each round
  /// trip under an active context then emits a "remote_disk_rtt" span
  /// and forwards the context to the provider via the kTraced envelope.
  void set_tracer(obs::Tracer* tracer) { tracer_ = tracer; }

  /// Parents subsequent round trips under `ctx`. Like SpanDisk, the
  /// context hand-off relies on the caller serializing queries.
  void set_trace_context(const obs::TraceContext& ctx) { trace_ctx_ = ctx; }
  void clear_trace_context() { trace_ctx_ = obs::TraceContext{}; }

  uint64_t num_slots() const override { return num_slots_; }
  size_t slot_size() const override { return slot_size_; }
  Status Read(storage::Location loc, MutableByteSpan out) override;
  Status Write(storage::Location loc, ByteSpan data) override;
  Status ReadRun(storage::Location start, uint64_t count,
                 std::vector<Bytes>& out) override;
  Status WriteRun(storage::Location start,
                  const std::vector<Bytes>& slots) override;

 private:
  RemoteDisk(Transport* transport, uint64_t num_slots, size_t slot_size)
      : transport_(transport), num_slots_(num_slots), slot_size_(slot_size) {}

  /// Sends one frame, accounting the RTT and bytes both ways.
  Result<Bytes> Call(Request request);

  Transport* transport_;
  uint64_t num_slots_;
  size_t slot_size_;
  hardware::CostAccountant* accountant_ = nullptr;
  obs::Tracer* tracer_ = nullptr;
  obs::TraceContext trace_ctx_;
};

/// Owner-side helper: fetches the provider's published keyword-store
/// manifest over the storage protocol (Op::kKeywordManifest). Pass the
/// build version already held to get a body-less "not modified" answer
/// when it is current; 0 always fetches.
Result<KeywordManifest> FetchKeywordManifest(Transport& transport,
                                             uint64_t cached_version = 0);

}  // namespace shpir::net

#endif  // SHPIR_NET_REMOTE_DISK_H_
