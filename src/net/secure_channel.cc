#include "net/secure_channel.h"

#include <cstring>

namespace shpir::net {

namespace {

constexpr size_t kSeqSize = 8;
constexpr size_t kTagSize = crypto::HmacSha256::kTagSize;

// Directional key derivation: HMAC(psk, label || client_nonce ||
// server_nonce) for each of the four keys.
crypto::HmacSha256::Tag DeriveKey(const crypto::HmacSha256& kdf,
                                  const char* label, ByteSpan client_nonce,
                                  ByteSpan server_nonce) {
  Bytes input;
  const size_t label_len = std::strlen(label);
  input.reserve(label_len + client_nonce.size() + server_nonce.size());
  input.insert(input.end(), label, label + label_len);
  input.insert(input.end(), client_nonce.begin(), client_nonce.end());
  input.insert(input.end(), server_nonce.begin(), server_nonce.end());
  return kdf.Compute(input);
}

// The 128-bit initial counter block for a record: the sequence number
// occupies the high-order 8 bytes, so per-record keystreams never
// overlap (a record would need 2^64 blocks to collide).
void SequenceIv(uint64_t seq, uint8_t iv[16]) {
  std::memset(iv, 0, 16);
  StoreBE64(seq, iv);
}

}  // namespace

Result<SecureSession> SecureSession::Establish(ByteSpan pre_shared_key,
                                               Role role,
                                               ByteSpan client_nonce,
                                               ByteSpan server_nonce) {
  if (client_nonce.size() != kNonceSize ||
      server_nonce.size() != kNonceSize) {
    return InvalidArgumentError("handshake nonces must be 16 bytes");
  }
  if (pre_shared_key.empty()) {
    return InvalidArgumentError("pre-shared key must not be empty");
  }
  const crypto::HmacSha256 kdf(pre_shared_key);
  const auto c2s_enc = DeriveKey(kdf, "c2s-enc", client_nonce, server_nonce);
  const auto c2s_mac = DeriveKey(kdf, "c2s-mac", client_nonce, server_nonce);
  const auto s2c_enc = DeriveKey(kdf, "s2c-enc", client_nonce, server_nonce);
  const auto s2c_mac = DeriveKey(kdf, "s2c-mac", client_nonce, server_nonce);

  const ByteSpan c2s_enc_span(c2s_enc.data(), c2s_enc.size());
  const ByteSpan s2c_enc_span(s2c_enc.data(), s2c_enc.size());
  SHPIR_ASSIGN_OR_RETURN(crypto::AesCtr c2s_ctr,
                         crypto::AesCtr::Create(c2s_enc_span));
  SHPIR_ASSIGN_OR_RETURN(crypto::AesCtr s2c_ctr,
                         crypto::AesCtr::Create(s2c_enc_span));
  crypto::HmacSha256 c2s_hmac(ByteSpan(c2s_mac.data(), c2s_mac.size()));
  crypto::HmacSha256 s2c_hmac(ByteSpan(s2c_mac.data(), s2c_mac.size()));

  if (role == Role::kClient) {
    return SecureSession(std::move(c2s_ctr), std::move(c2s_hmac),
                         std::move(s2c_ctr), std::move(s2c_hmac));
  }
  return SecureSession(std::move(s2c_ctr), std::move(s2c_hmac),
                       std::move(c2s_ctr), std::move(c2s_hmac));
}

Result<Bytes> SecureSession::Seal(ByteSpan plaintext) {
  Bytes record(kSeqSize + plaintext.size() + kTagSize);
  StoreLE64(send_seq_, record.data());
  uint8_t iv[16];
  SequenceIv(send_seq_, iv);
  MutableByteSpan body(record.data() + kSeqSize, plaintext.size());
  SHPIR_RETURN_IF_ERROR(
      send_ctr_.Crypt(ByteSpan(iv, 16), plaintext, body));
  const crypto::HmacSha256::Tag tag = send_mac_.Compute(
      ByteSpan(record.data(), kSeqSize + plaintext.size()));
  std::memcpy(record.data() + kSeqSize + plaintext.size(), tag.data(),
              kTagSize);
  ++send_seq_;
  return record;
}

Result<Bytes> SecureSession::Open(ByteSpan record) {
  if (record.size() < kSeqSize + kTagSize) {
    return DataLossError("record too short");
  }
  const uint64_t seq = LoadLE64(record.data());
  // shpir-lint-allow-next-line(secret-compare): the sequence number is a public transport header (authenticated, not confidential); the taint is field-insensitive over the record
  if (seq != recv_seq_) {
    return DataLossError("record sequence mismatch (replay or loss)");
  }
  const size_t body_len = record.size() - kSeqSize - kTagSize;
  const ByteSpan authed(record.data(), kSeqSize + body_len);
  const ByteSpan tag(record.data() + kSeqSize + body_len, kTagSize);
  if (!recv_mac_.Verify(authed, tag)) {
    return DataLossError("record MAC verification failed");
  }
  uint8_t iv[16];
  SequenceIv(seq, iv);
  Bytes plaintext(body_len);
  SHPIR_RETURN_IF_ERROR(recv_ctr_.Crypt(
      ByteSpan(iv, 16), ByteSpan(record.data() + kSeqSize, body_len),
      plaintext));
  ++recv_seq_;
  return plaintext;
}

}  // namespace shpir::net
