#ifndef SHPIR_NET_SECURE_CHANNEL_H_
#define SHPIR_NET_SECURE_CHANNEL_H_

#include <array>
#include <cstdint>
#include <memory>

#include "common/bytes.h"
#include "common/result.h"
#include "crypto/ctr.h"
#include "crypto/hmac.h"
#include "crypto/secure_random.h"

namespace shpir::net {

/// The client <-> secure-hardware encrypted channel of the paper's
/// Fig. 1 ("secure SSL connection"). A lightweight record protocol:
/// pre-shared-key handshake (both ends contribute a nonce; directional
/// session keys are derived with HMAC-SHA-256), then records protected
/// with AES-256-CTR + HMAC-SHA-256 and strictly increasing sequence
/// numbers (replay and reordering are rejected). The database server
/// relaying these records learns nothing but lengths and timing.
class SecureSession {
 public:
  static constexpr size_t kNonceSize = 16;

  enum class Role : uint8_t { kClient = 0, kServer = 1 };

  /// Derives a session from the pre-shared key and both handshake
  /// nonces. Each side calls this with its own role after the nonce
  /// exchange; the two sides end up with mirrored directional keys.
  static Result<SecureSession> Establish(ByteSpan pre_shared_key, Role role,
                                         ByteSpan client_nonce,
                                         ByteSpan server_nonce);

  /// Encrypts and authenticates `plaintext` into a record for the peer.
  Result<Bytes> Seal(ByteSpan plaintext);

  /// Verifies, replay-checks and decrypts a record from the peer.
  Result<Bytes> Open(ByteSpan record);

  /// Records sealed / opened so far (sequence numbers).
  uint64_t send_sequence() const { return send_seq_; }
  uint64_t recv_sequence() const { return recv_seq_; }

 private:
  SecureSession(crypto::AesCtr send_ctr, crypto::HmacSha256 send_mac,
                crypto::AesCtr recv_ctr, crypto::HmacSha256 recv_mac)
      : send_ctr_(std::move(send_ctr)),
        send_mac_(std::move(send_mac)),
        recv_ctr_(std::move(recv_ctr)),
        recv_mac_(std::move(recv_mac)) {}

  crypto::AesCtr send_ctr_;
  crypto::HmacSha256 send_mac_;
  crypto::AesCtr recv_ctr_;
  crypto::HmacSha256 recv_mac_;
  uint64_t send_seq_ = 0;
  uint64_t recv_seq_ = 0;
};

}  // namespace shpir::net

#endif  // SHPIR_NET_SECURE_CHANNEL_H_
