#include "net/service_hub.h"

#include "crypto/hmac.h"
#include "obs/export.h"

namespace shpir::net {

namespace {
constexpr uint8_t kHelloTag = 'H';
constexpr uint8_t kDataTag = 'D';
constexpr size_t kNonce = SecureSession::kNonceSize;
}  // namespace

ServiceHub::ServiceHub(
    core::PirEngine* engine, Bytes pre_shared_key, uint64_t rng_seed,
    obs::MetricsRegistry* metrics, obs::Tracer* tracer,
    PirServiceServer::ProfileProvider profile_dump,
    PirServiceServer::SloProvider slo_status,
    PirServiceServer::KeywordManifestProvider keyword_manifest,
    PirServiceServer::EventProvider event_dump,
    PirServiceServer::IncidentProvider incident_dump,
    PirServiceServer::HealthProvider health,
    PirServiceServer::ControlProvider control)
    : engine_(engine),
      pre_shared_key_(std::move(pre_shared_key)),
      metrics_(metrics),
      tracer_(tracer),
      profile_dump_(std::move(profile_dump)),
      slo_status_(std::move(slo_status)),
      keyword_manifest_(std::move(keyword_manifest)),
      event_dump_(std::move(event_dump)),
      incident_dump_(std::move(incident_dump)),
      health_(std::move(health)),
      control_(std::move(control)),
      rng_(rng_seed == 0 ? crypto::SecureRandom()
                         : crypto::SecureRandom(rng_seed)) {
  if (metrics_ != nullptr) {
    instruments_.hellos =
        metrics_->FindOrCreateCounter("shpir_net_hellos_total");
    instruments_.handshake_failures =
        metrics_->FindOrCreateCounter("shpir_net_handshake_failures_total");
    instruments_.data_frames =
        metrics_->FindOrCreateCounter("shpir_net_data_frames_total");
    instruments_.frames_rejected =
        metrics_->FindOrCreateCounter("shpir_net_frames_rejected_total");
    instruments_.frame_bytes_in =
        metrics_->FindOrCreateCounter("shpir_net_frame_bytes_in_total");
    instruments_.frame_bytes_out =
        metrics_->FindOrCreateCounter("shpir_net_frame_bytes_out_total");
    instruments_.sessions = metrics_->FindOrCreateGauge("shpir_net_sessions");
    instruments_.sessions->Set(0.0);
  }
}

Bytes ServiceHub::SnapshotJson() const {
  const std::string json = obs::ToJson(metrics_->Snapshot());
  return Bytes(json.begin(), json.end());
}

Bytes ServiceHub::ClientKey(ByteSpan pre_shared_key, uint64_t client_id) {
  crypto::HmacSha256 kdf(pre_shared_key);
  uint8_t msg[14] = {'c', 'l', 'i', 'e', 'n', 't'};
  StoreLE64(client_id, msg + 6);
  const auto tag = kdf.Compute(ByteSpan(msg, sizeof(msg)));
  return Bytes(tag.begin(), tag.end());
}

Bytes ServiceHub::MakeHello(uint64_t client_id, ByteSpan client_nonce) {
  Bytes frame(1 + 8 + kNonce);
  frame[0] = kHelloTag;
  StoreLE64(client_id, frame.data() + 1);
  std::copy(client_nonce.begin(), client_nonce.end(), frame.begin() + 9);
  return frame;
}

Result<SecureSession> ServiceHub::CompleteHandshake(ByteSpan reply,
                                                    ByteSpan pre_shared_key,
                                                    uint64_t client_id,
                                                    ByteSpan client_nonce) {
  if (reply.size() != 1 + kNonce || reply[0] != kHelloTag) {
    return DataLossError("malformed handshake reply");
  }
  const Bytes key = ClientKey(pre_shared_key, client_id);
  return SecureSession::Establish(
      key, SecureSession::Role::kClient, client_nonce,
      ByteSpan(reply.data() + 1, kNonce));
}

Bytes ServiceHub::MakeData(uint64_t client_id, ByteSpan record) {
  Bytes frame(1 + 8 + record.size());
  frame[0] = kDataTag;
  StoreLE64(client_id, frame.data() + 1);
  std::copy(record.begin(), record.end(), frame.begin() + 9);
  return frame;
}

Result<Bytes> ServiceHub::HandleFrame(ByteSpan frame) {
  // Arrival timestamp for the queue-wait span: taken before the hub
  // lock, so the measured gap covers lock contention (the hub's queue).
  // Only read when a tracer is attached — the clock read is the whole
  // cost for untraced hubs.
  const uint64_t arrival_ns = tracer_ != nullptr ? obs::Tracer::NowNs() : 0;
  if (metered()) {
    instruments_.frame_bytes_in->Increment(frame.size());
  }
  if (frame.size() < 9) {
    if (metered()) {
      instruments_.frames_rejected->Increment();
    }
    return DataLossError("truncated hub frame");
  }
  const uint64_t client_id = LoadLE64(frame.data() + 1);
  common::MutexLock lock(mutex_);
  if (frame[0] == kHelloTag) {
    if (metered()) {
      instruments_.hellos->Increment();
    }
    if (frame.size() != 1 + 8 + kNonce) {
      if (metered()) {
        instruments_.handshake_failures->Increment();
      }
      return DataLossError("malformed HELLO frame");
    }
    const ByteSpan client_nonce(frame.data() + 9, kNonce);
    Bytes server_nonce(kNonce);
    rng_.Fill(server_nonce);
    const Bytes key = ClientKey(pre_shared_key_, client_id);
    Result<SecureSession> session = SecureSession::Establish(
        key, SecureSession::Role::kServer, client_nonce, server_nonce);
    if (!session.ok()) {
      if (metered()) {
        instruments_.handshake_failures->Increment();
      }
      return session.status();
    }
    // STATS travels inside the sealed session, so only authenticated
    // clients reach the snapshot; the snapshot itself is aggregate-only
    // by construction of the registry.
    PirServiceServer::StatsProvider stats;
    if (metrics_ != nullptr) {
      stats = [this] { return SnapshotJson(); };
    }
    // TRACE_DUMP likewise travels inside the session; span payloads are
    // public by construction (static names, shard indices, timing).
    PirServiceServer::TraceProvider trace_dump;
    if (tracer_ != nullptr) {
      trace_dump = [this] {
        const std::string json = obs::ToChromeTraceJson(tracer_->Snapshot());
        return Bytes(json.begin(), json.end());
      };
    }
    servers_[client_id] = std::make_unique<PirServiceServer>(
        engine_, std::move(session).value(), std::move(stats),
        std::move(trace_dump), tracer_, profile_dump_, slo_status_,
        keyword_manifest_, event_dump_, incident_dump_, health_,
        control_);
    if (metered()) {
      instruments_.sessions->Set(static_cast<double>(servers_.size()));
    }
    Bytes reply(1 + kNonce);
    reply[0] = kHelloTag;
    std::copy(server_nonce.begin(), server_nonce.end(), reply.begin() + 1);
    if (metered()) {
      instruments_.frame_bytes_out->Increment(reply.size());
    }
    return reply;
  }
  if (frame[0] == kDataTag) {
    if (metered()) {
      instruments_.data_frames->Increment();
    }
    auto it = servers_.find(client_id);
    if (it == servers_.end()) {
      if (metered()) {
        instruments_.frames_rejected->Increment();
      }
      return FailedPreconditionError("unknown client; handshake first");
    }
    PirServiceServer::QueueTiming timing;
    const PirServiceServer::QueueTiming* timing_ptr = nullptr;
    if (tracer_ != nullptr) {
      timing.arrival_ns = arrival_ns;
      timing.dequeue_ns = obs::Tracer::NowNs();  // Past the hub lock.
      timing_ptr = &timing;
    }
    Result<Bytes> reply = it->second->HandleRecord(
        ByteSpan(frame.data() + 9, frame.size() - 9), timing_ptr);
    if (metered()) {
      if (reply.ok()) {
        instruments_.frame_bytes_out->Increment(reply->size());
      } else {
        instruments_.frames_rejected->Increment();
      }
    }
    return reply;
  }
  if (metered()) {
    instruments_.frames_rejected->Increment();
  }
  return InvalidArgumentError("unknown hub frame tag");
}

}  // namespace shpir::net
