#include "net/service_hub.h"

#include "crypto/hmac.h"

namespace shpir::net {

namespace {
constexpr uint8_t kHelloTag = 'H';
constexpr uint8_t kDataTag = 'D';
constexpr size_t kNonce = SecureSession::kNonceSize;
}  // namespace

ServiceHub::ServiceHub(core::CApproxPir* engine, Bytes pre_shared_key,
                       uint64_t rng_seed)
    : engine_(engine),
      pre_shared_key_(std::move(pre_shared_key)),
      rng_(rng_seed == 0 ? crypto::SecureRandom()
                         : crypto::SecureRandom(rng_seed)) {}

Bytes ServiceHub::ClientKey(ByteSpan pre_shared_key, uint64_t client_id) {
  crypto::HmacSha256 kdf(pre_shared_key);
  uint8_t msg[14] = {'c', 'l', 'i', 'e', 'n', 't'};
  StoreLE64(client_id, msg + 6);
  const auto tag = kdf.Compute(ByteSpan(msg, sizeof(msg)));
  return Bytes(tag.begin(), tag.end());
}

Bytes ServiceHub::MakeHello(uint64_t client_id, ByteSpan client_nonce) {
  Bytes frame(1 + 8 + kNonce);
  frame[0] = kHelloTag;
  StoreLE64(client_id, frame.data() + 1);
  std::copy(client_nonce.begin(), client_nonce.end(), frame.begin() + 9);
  return frame;
}

Result<SecureSession> ServiceHub::CompleteHandshake(ByteSpan reply,
                                                    ByteSpan pre_shared_key,
                                                    uint64_t client_id,
                                                    ByteSpan client_nonce) {
  if (reply.size() != 1 + kNonce || reply[0] != kHelloTag) {
    return DataLossError("malformed handshake reply");
  }
  const Bytes key = ClientKey(pre_shared_key, client_id);
  return SecureSession::Establish(
      key, SecureSession::Role::kClient, client_nonce,
      ByteSpan(reply.data() + 1, kNonce));
}

Bytes ServiceHub::MakeData(uint64_t client_id, ByteSpan record) {
  Bytes frame(1 + 8 + record.size());
  frame[0] = kDataTag;
  StoreLE64(client_id, frame.data() + 1);
  std::copy(record.begin(), record.end(), frame.begin() + 9);
  return frame;
}

Result<Bytes> ServiceHub::HandleFrame(ByteSpan frame) {
  if (frame.size() < 9) {
    return DataLossError("truncated hub frame");
  }
  const uint64_t client_id = LoadLE64(frame.data() + 1);
  std::lock_guard<std::mutex> lock(mutex_);
  if (frame[0] == kHelloTag) {
    if (frame.size() != 1 + 8 + kNonce) {
      return DataLossError("malformed HELLO frame");
    }
    const ByteSpan client_nonce(frame.data() + 9, kNonce);
    Bytes server_nonce(kNonce);
    rng_.Fill(server_nonce);
    const Bytes key = ClientKey(pre_shared_key_, client_id);
    SHPIR_ASSIGN_OR_RETURN(
        SecureSession session,
        SecureSession::Establish(key, SecureSession::Role::kServer,
                                 client_nonce, server_nonce));
    servers_[client_id] =
        std::make_unique<PirServiceServer>(engine_, std::move(session));
    Bytes reply(1 + kNonce);
    reply[0] = kHelloTag;
    std::copy(server_nonce.begin(), server_nonce.end(), reply.begin() + 1);
    return reply;
  }
  if (frame[0] == kDataTag) {
    auto it = servers_.find(client_id);
    if (it == servers_.end()) {
      return FailedPreconditionError("unknown client; handshake first");
    }
    return it->second->HandleRecord(
        ByteSpan(frame.data() + 9, frame.size() - 9));
  }
  return InvalidArgumentError("unknown hub frame tag");
}

}  // namespace shpir::net
