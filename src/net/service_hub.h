#ifndef SHPIR_NET_SERVICE_HUB_H_
#define SHPIR_NET_SERVICE_HUB_H_

#include <memory>
#include <unordered_map>

#include "common/mutex.h"
#include "common/result.h"
#include "core/pir_engine.h"
#include "crypto/secure_random.h"
#include "net/pir_service.h"
#include "net/secure_channel.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace shpir::net {

/// Multi-client front end for the Fig. 1 service: manages one
/// SecureSession per client over a shared engine, with a wire-level
/// handshake. The relay (untrusted server) passes opaque frames:
///
///   HELLO frame:   'H' | client_id(8) | client_nonce(16)
///   HELLO reply:   'H' | server_nonce(16)
///   DATA frame:    'D' | client_id(8) | sealed record
///   DATA reply:    sealed response record
///
/// Client ids are chosen by clients (e.g. random); per-client keys are
/// derived from the pre-shared key, both nonces *and* the client id, so
/// clients cannot impersonate each other's streams. Requests are
/// serialized onto the engine (the coprocessor serves one at a time).
class ServiceHub {
 public:
  /// `engine` is unowned; `pre_shared_key` is the key clients hold.
  /// Any PirEngine serves: the single paper engine (requests serialize
  /// on the coprocessor) or the sharded runtime in src/shard/ (requests
  /// fan out across shard workers). `metrics` (optional, unowned, must
  /// outlive the hub) enables the hub's shpir_net_* instruments and
  /// turns on the authenticated STATS op: sessions established by the
  /// hub answer PirServiceClient::Stats() with a JSON snapshot of the
  /// registry. `tracer` (optional, unowned, must outlive the hub)
  /// enables distributed tracing: sampled requests get hub_queue_wait /
  /// service_handle spans and the authenticated TRACE_DUMP op returns
  /// the buffered spans as Chrome trace JSON.
  /// `profile_dump` / `slo_status` (optional) back the authenticated
  /// PROFILE_DUMP / SLO_STATUS ops for every session the hub
  /// establishes; both must be thread-safe and return aggregate,
  /// target-independent data only (see obs/profiler.h, obs/slo.h).
  /// `keyword_manifest` (optional) backs the KEYWORD_MANIFEST op — it
  /// returns the current public keyword-store manifest and its build
  /// version (see src/keyword/); must be thread-safe.
  /// `event_dump` / `incident_dump` / `health` (optional) back the
  /// authenticated EVENT_DUMP / INCIDENT_DUMP / HEALTH ops; all must be
  /// thread-safe and return aggregate, target-independent data only
  /// (see obs/eventlog.h, obs/flight_recorder.h).
  ServiceHub(core::PirEngine* engine, Bytes pre_shared_key,
             uint64_t rng_seed = 0,
             obs::MetricsRegistry* metrics = nullptr,
             obs::Tracer* tracer = nullptr,
             PirServiceServer::ProfileProvider profile_dump = nullptr,
             PirServiceServer::SloProvider slo_status = nullptr,
             PirServiceServer::KeywordManifestProvider keyword_manifest =
                 nullptr,
             PirServiceServer::EventProvider event_dump = nullptr,
             PirServiceServer::IncidentProvider incident_dump = nullptr,
             PirServiceServer::HealthProvider health = nullptr,
             PirServiceServer::ControlProvider control = nullptr);

  /// Handles one wire frame from any client; returns the reply frame.
  Result<Bytes> HandleFrame(ByteSpan frame);

  /// Number of established client sessions. Thread-safe.
  size_t sessions() const {
    common::MutexLock lock(mutex_);
    return servers_.size();
  }

  /// Client-side helper: builds the HELLO frame for `client_id`.
  static Bytes MakeHello(uint64_t client_id, ByteSpan client_nonce);

  /// Client-side helper: parses the HELLO reply and derives the
  /// client's session.
  static Result<SecureSession> CompleteHandshake(ByteSpan reply,
                                                 ByteSpan pre_shared_key,
                                                 uint64_t client_id,
                                                 ByteSpan client_nonce);

  /// Client-side helper: wraps a sealed record into a DATA frame.
  static Bytes MakeData(uint64_t client_id, ByteSpan record);

  /// Derives the per-client key psk' = HMAC(psk, "client" || id).
  static Bytes ClientKey(ByteSpan pre_shared_key, uint64_t client_id);

 private:
  /// Snapshot of the attached registry as JSON; called with mutex_ held
  /// by the serving thread.
  Bytes SnapshotJson() const;

  /// Aggregate instruments; all null when the hub has no registry.
  struct Instruments {
    obs::Counter* hellos = nullptr;
    obs::Counter* handshake_failures = nullptr;
    obs::Counter* data_frames = nullptr;
    obs::Counter* frames_rejected = nullptr;
    obs::Counter* frame_bytes_in = nullptr;
    obs::Counter* frame_bytes_out = nullptr;
    obs::Gauge* sessions = nullptr;
  };
  bool metered() const { return instruments_.hellos != nullptr; }

  core::PirEngine* engine_;
  Bytes pre_shared_key_;
  obs::MetricsRegistry* metrics_;
  obs::Tracer* tracer_;
  PirServiceServer::ProfileProvider profile_dump_;
  PirServiceServer::SloProvider slo_status_;
  PirServiceServer::KeywordManifestProvider keyword_manifest_;
  PirServiceServer::EventProvider event_dump_;
  PirServiceServer::IncidentProvider incident_dump_;
  PirServiceServer::HealthProvider health_;
  PirServiceServer::ControlProvider control_;
  Instruments instruments_;  // Written by the ctor only; const afterwards.
  mutable common::Mutex mutex_;
  /// Server-nonce generator; drawn from under mutex_ in HandleFrame.
  crypto::SecureRandom rng_ GUARDED_BY(mutex_);
  std::unordered_map<uint64_t, std::unique_ptr<PirServiceServer>> servers_
      GUARDED_BY(mutex_);
};

}  // namespace shpir::net

#endif  // SHPIR_NET_SERVICE_HUB_H_
