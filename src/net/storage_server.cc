#include "net/storage_server.h"

#include <chrono>
#include <sstream>
#include <utility>

#include "obs/build_info.h"
#include "obs/export.h"

namespace shpir::net {

namespace {

/// Static span name for a provider-side request (span names must have
/// static storage). The op is public wire metadata.
const char* ProviderSpanName(Op op) {
  switch (op) {
    case Op::kRead:
      return "provider_read";
    case Op::kWrite:
      return "provider_write";
    case Op::kReadRun:
      return "provider_read_run";
    case Op::kWriteRun:
      return "provider_write_run";
    default:
      return "provider_request";
  }
}

}  // namespace

StorageServer::StorageServer(storage::Disk* disk,
                             obs::MetricsRegistry* metrics,
                             obs::Tracer* tracer, obs::Profiler* profiler,
                             obs::SloTracker* slo, obs::EventLog* eventlog,
                             obs::FlightRecorder* recorder)
    : disk_(disk),
      metrics_(metrics),
      tracer_(tracer),
      profiler_(profiler),
      slo_(slo),
      eventlog_(eventlog),
      recorder_(recorder) {
  if (eventlog_ != nullptr) {
    eventlog_->Emit(obs::EventLevel::kInfo, "provider_started",
                    {{"num_slots", disk_->num_slots()},
                     {"slot_size", disk_->slot_size()}});
  }
  if (metrics_ != nullptr) {
    instruments_.requests =
        metrics_->FindOrCreateCounter("shpir_provider_requests_total");
    instruments_.read_slots =
        metrics_->FindOrCreateCounter("shpir_provider_read_slots_total");
    instruments_.write_slots =
        metrics_->FindOrCreateCounter("shpir_provider_write_slots_total");
    instruments_.errors =
        metrics_->FindOrCreateCounter("shpir_provider_errors_total");
  }
}

Bytes StorageServer::Handle(ByteSpan request_frame) {
  if (metered()) {
    instruments_.requests->Increment();
  }
  Result<Request> decoded = DecodeRequest(request_frame);
  if (!decoded.ok()) {
    if (metered()) {
      instruments_.errors->Increment();
    }
    if (slo_ != nullptr) {
      slo_->Record(0, /*ok=*/false);
    }
    if (eventlog_ != nullptr) {
      // Frame-level metadata only: the size of a hostile frame is
      // something the provider observes anyway.
      eventlog_->Emit(obs::EventLevel::kWarn, "provider_bad_frame",
                      {{"frame_bytes", request_frame.size()}});
    }
    if (recorder_ != nullptr) {
      recorder_->Poll();
    }
    return EncodeErrorResponse(decoded.status());
  }
  const Request& request = *decoded;
  const auto start = std::chrono::steady_clock::now();
  // Provider-side span, parented on the propagated context (inert when
  // no tracer is attached or the request was not sampled).
  obs::TraceSpan span(tracer_, request.trace, ProviderSpanName(request.op));
  Bytes response;
  {
    // Head-sampled requests profile as provider_handle;<op-name> —
    // both frames name wire metadata the provider observes anyway.
    obs::ProfileScope handle_scope(
        profiler_ != nullptr && profiler_->SampleQuery() ? profiler_
                                                         : nullptr,
        "provider_handle");
    obs::ProfileScope op_scope(
        handle_scope.active() ? profiler_ : nullptr,
        ProviderSpanName(request.op));
    response = Dispatch(request);
  }
  if (slo_ != nullptr) {
    // Response byte 0 is the wire status (0 = OK).
    const bool ok = !response.empty() && response[0] == 0;
    slo_->Record(
        static_cast<uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(
                std::chrono::steady_clock::now() - start)
                .count()),
        ok);
  }
  return response;
}

void StorageServer::SetControlProvider(
    std::function<Result<std::string>(const ControlRequest&)> provider) {
  control_provider_ = std::move(provider);
}

void StorageServer::PublishKeywordManifest(Bytes manifest,
                                           uint64_t version) {
  keyword_manifest_.manifest = std::move(manifest);
  keyword_manifest_.version = version;
  keyword_manifest_published_ = true;
}

Bytes StorageServer::Dispatch(const Request& request) {
  const size_t slot_size = disk_->slot_size();
  switch (request.op) {
    case Op::kKeywordManifest: {
      if (!keyword_manifest_published_) {
        return EncodeErrorResponse(UnimplementedError(
            "no keyword manifest published on this provider"));
      }
      Result<uint64_t> cached =
          DecodeKeywordManifestRequest(request.payload);
      if (!cached.ok()) {
        if (metered()) {
          instruments_.errors->Increment();
        }
        return EncodeErrorResponse(cached.status());
      }
      const bool include_body = *cached != keyword_manifest_.version;
      return EncodeOkResponse(
          EncodeKeywordManifestResponse(keyword_manifest_, include_body));
    }
    case Op::kTraceDump: {
      if (tracer_ == nullptr) {
        return EncodeErrorResponse(
            UnimplementedError("tracing is not enabled on this provider"));
      }
      const std::string json = obs::ToChromeTraceJson(tracer_->Snapshot());
      return EncodeOkResponse(
          ByteSpan(reinterpret_cast<const uint8_t*>(json.data()),
                   json.size()));
    }
    case Op::kProfileDump: {
      if (profiler_ == nullptr) {
        return EncodeErrorResponse(UnimplementedError(
            "profiling is not enabled on this provider"));
      }
      const bool folded =
          !request.payload.empty() && request.payload[0] == 1;
      const std::string text =
          folded ? profiler_->ToCollapsed() : profiler_->ToJson();
      return EncodeOkResponse(
          ByteSpan(reinterpret_cast<const uint8_t*>(text.data()),
                   text.size()));
    }
    case Op::kSloStatus: {
      if (slo_ == nullptr) {
        return EncodeErrorResponse(UnimplementedError(
            "SLO tracking is not enabled on this provider"));
      }
      const std::string json = slo_->ToJson();
      return EncodeOkResponse(
          ByteSpan(reinterpret_cast<const uint8_t*>(json.data()),
                   json.size()));
    }
    case Op::kEventDump: {
      if (eventlog_ == nullptr) {
        return EncodeErrorResponse(UnimplementedError(
            "event logging is not enabled on this provider"));
      }
      const std::string json = obs::EventLogJson(*eventlog_);
      return EncodeOkResponse(
          ByteSpan(reinterpret_cast<const uint8_t*>(json.data()),
                   json.size()));
    }
    case Op::kIncidentDump: {
      if (recorder_ == nullptr) {
        return EncodeErrorResponse(UnimplementedError(
            "incident recording is not enabled on this provider"));
      }
      // Catch up on trigger edges before answering, so a dump taken
      // right after a breach sees its bundle.
      recorder_->Poll();
      const bool show = !request.payload.empty() && request.payload[0] == 1;
      std::string json;
      if (show) {
        json = recorder_->ShowJson(request.location);
        if (json.empty()) {
          return EncodeErrorResponse(
              NotFoundError("no such incident in the store"));
        }
      } else {
        json = recorder_->ListJson();
      }
      return EncodeOkResponse(
          ByteSpan(reinterpret_cast<const uint8_t*>(json.data()),
                   json.size()));
    }
    case Op::kControlStatus: {
      if (!control_provider_) {
        return EncodeErrorResponse(UnimplementedError(
            "no privacy/cost controller attached to this provider"));
      }
      Result<ControlRequest> control =
          DecodeControlRequest(request.payload);
      if (!control.ok()) {
        if (metered()) {
          instruments_.errors->Increment();
        }
        return EncodeErrorResponse(control.status());
      }
      Result<std::string> json = control_provider_(*control);
      if (!json.ok()) {
        if (metered()) {
          instruments_.errors->Increment();
        }
        return EncodeErrorResponse(json.status());
      }
      return EncodeOkResponse(
          ByteSpan(reinterpret_cast<const uint8_t*>(json->data()),
                   json->size()));
    }
    case Op::kHealth: {
      const std::string json = HealthJson();
      return EncodeOkResponse(
          ByteSpan(reinterpret_cast<const uint8_t*>(json.data()),
                   json.size()));
    }
    case Op::kStats: {
      if (metrics_ == nullptr) {
        return EncodeErrorResponse(
            UnimplementedError("stats are not enabled on this provider"));
      }
      const std::string json = obs::ToJson(metrics_->Snapshot());
      return EncodeOkResponse(
          ByteSpan(reinterpret_cast<const uint8_t*>(json.data()),
                   json.size()));
    }
    case Op::kGeometry: {
      Bytes payload(16);
      StoreLE64(disk_->num_slots(), payload.data());
      StoreLE64(slot_size, payload.data() + 8);
      return EncodeOkResponse(payload);
    }
    case Op::kRead: {
      Bytes slot(slot_size);
      const Status status = disk_->Read(request.location, slot);
      if (!status.ok()) {
        if (metered()) {
          instruments_.errors->Increment();
        }
        return EncodeErrorResponse(status);
      }
      if (metered()) {
        instruments_.read_slots->Increment();
      }
      return EncodeOkResponse(slot);
    }
    case Op::kWrite: {
      if (request.payload.size() != slot_size) {
        if (metered()) {
          instruments_.errors->Increment();
        }
        return EncodeErrorResponse(
            InvalidArgumentError("write payload size mismatch"));
      }
      const Status status = disk_->Write(request.location, request.payload);
      if (!status.ok()) {
        if (metered()) {
          instruments_.errors->Increment();
        }
        return EncodeErrorResponse(status);
      }
      if (metered()) {
        instruments_.write_slots->Increment();
      }
      return EncodeOkResponse({});
    }
    case Op::kReadRun: {
      std::vector<Bytes> slots;
      const Status status =
          disk_->ReadRun(request.location, request.count, slots);
      if (!status.ok()) {
        if (metered()) {
          instruments_.errors->Increment();
        }
        return EncodeErrorResponse(status);
      }
      if (metered()) {
        instruments_.read_slots->Increment(request.count);
      }
      Bytes payload;
      payload.reserve(request.count * slot_size);
      for (const Bytes& slot : slots) {
        payload.insert(payload.end(), slot.begin(), slot.end());
      }
      return EncodeOkResponse(payload);
    }
    case Op::kWriteRun: {
      if (request.payload.size() != request.count * slot_size) {
        if (metered()) {
          instruments_.errors->Increment();
        }
        return EncodeErrorResponse(
            InvalidArgumentError("write-run payload size mismatch"));
      }
      std::vector<Bytes> slots(request.count);
      for (uint64_t i = 0; i < request.count; ++i) {
        slots[i].assign(
            request.payload.begin() + static_cast<ptrdiff_t>(i * slot_size),
            request.payload.begin() +
                static_cast<ptrdiff_t>((i + 1) * slot_size));
      }
      const Status status = disk_->WriteRun(request.location, slots);
      if (!status.ok()) {
        if (metered()) {
          instruments_.errors->Increment();
        }
        return EncodeErrorResponse(status);
      }
      if (metered()) {
        instruments_.write_slots->Increment(request.count);
      }
      return EncodeOkResponse({});
    }
    case Op::kTraced:
      break;  // DecodeRequest unwraps envelopes; never surfaces here.
  }
  return EncodeErrorResponse(InternalError("unhandled op"));
}

std::string StorageServer::HealthJson() const {
  // A storage provider is stateless, so it is ready whenever it can
  // answer at all; "degraded" reflects a firing SLO burn rule.
  bool degraded = false;
  std::string slo_json = "null";
  if (slo_ != nullptr) {
    const obs::SloTracker::Snapshot snapshot = slo_->Evaluate();
    for (const auto* sli : {&snapshot.availability, &snapshot.latency}) {
      for (const auto& rule : sli->rules) {
        degraded = degraded || rule.firing;
      }
    }
    slo_json = obs::SloTracker::SnapshotJson(snapshot);
  }
  std::ostringstream out;
  out << "{\"ready\":true,\"degraded\":" << (degraded ? "true" : "false")
      << ",\"role\":\"storage\",\"build\":\""
      << obs::EscapeJsonString(obs::BuildInfoSummary())
      << "\",\"slo\":" << slo_json << ",\"eventlog_dropped\":"
      << (eventlog_ != nullptr ? std::to_string(eventlog_->dropped())
                               : "null")
      << ",\"incidents_sealed\":"
      << (recorder_ != nullptr ? std::to_string(recorder_->sealed())
                               : "null")
      << "}";
  return out.str();
}

}  // namespace shpir::net
