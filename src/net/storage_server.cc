#include "net/storage_server.h"

namespace shpir::net {

Bytes StorageServer::Handle(ByteSpan request_frame) {
  Result<Request> decoded = DecodeRequest(request_frame);
  if (!decoded.ok()) {
    return EncodeErrorResponse(decoded.status());
  }
  const Request& request = *decoded;
  const size_t slot_size = disk_->slot_size();
  switch (request.op) {
    case Op::kGeometry: {
      Bytes payload(16);
      StoreLE64(disk_->num_slots(), payload.data());
      StoreLE64(slot_size, payload.data() + 8);
      return EncodeOkResponse(payload);
    }
    case Op::kRead: {
      Bytes slot(slot_size);
      const Status status = disk_->Read(request.location, slot);
      if (!status.ok()) {
        return EncodeErrorResponse(status);
      }
      return EncodeOkResponse(slot);
    }
    case Op::kWrite: {
      if (request.payload.size() != slot_size) {
        return EncodeErrorResponse(
            InvalidArgumentError("write payload size mismatch"));
      }
      const Status status = disk_->Write(request.location, request.payload);
      if (!status.ok()) {
        return EncodeErrorResponse(status);
      }
      return EncodeOkResponse({});
    }
    case Op::kReadRun: {
      std::vector<Bytes> slots;
      const Status status =
          disk_->ReadRun(request.location, request.count, slots);
      if (!status.ok()) {
        return EncodeErrorResponse(status);
      }
      Bytes payload;
      payload.reserve(request.count * slot_size);
      for (const Bytes& slot : slots) {
        payload.insert(payload.end(), slot.begin(), slot.end());
      }
      return EncodeOkResponse(payload);
    }
    case Op::kWriteRun: {
      if (request.payload.size() != request.count * slot_size) {
        return EncodeErrorResponse(
            InvalidArgumentError("write-run payload size mismatch"));
      }
      std::vector<Bytes> slots(request.count);
      for (uint64_t i = 0; i < request.count; ++i) {
        slots[i].assign(
            request.payload.begin() + static_cast<ptrdiff_t>(i * slot_size),
            request.payload.begin() +
                static_cast<ptrdiff_t>((i + 1) * slot_size));
      }
      const Status status = disk_->WriteRun(request.location, slots);
      if (!status.ok()) {
        return EncodeErrorResponse(status);
      }
      return EncodeOkResponse({});
    }
  }
  return EncodeErrorResponse(InternalError("unhandled op"));
}

}  // namespace shpir::net
