#ifndef SHPIR_NET_STORAGE_SERVER_H_
#define SHPIR_NET_STORAGE_SERVER_H_

#include <functional>
#include <string>

#include "common/result.h"
#include "net/transport.h"
#include "net/wire.h"
#include "obs/eventlog.h"
#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "obs/profiler.h"
#include "obs/slo.h"
#include "obs/trace.h"
#include "storage/disk.h"

namespace shpir::net {

/// The service provider of the two-party model: a dumb block store that
/// executes wire-protocol requests against its local disk. It only ever
/// sees sealed pages; all intelligence (and all secrets) stay with the
/// owner.
class StorageServer {
 public:
  /// `disk` is unowned and must outlive the server. `metrics` (optional,
  /// unowned) enables the shpir_provider_* instruments and the kStats
  /// wire op, which returns a JSON snapshot of the registry. The
  /// provider is untrusted, so everything in its registry is public by
  /// assumption; it must only ever hold volume aggregates. `tracer`
  /// (optional, unowned) records one provider_* span per request that
  /// arrives in a sampled kTraced envelope and enables the kTraceDump
  /// op, which returns the buffered spans as Chrome trace JSON.
  /// `profiler` (optional, unowned) head-samples provider requests into
  /// provider_* folded stacks and enables the kProfileDump op; `slo`
  /// (optional, unowned) records every request's handle latency and
  /// outcome and enables the kSloStatus op. Both observe only wire-level
  /// metadata the provider already sees. `eventlog` (optional, unowned)
  /// records provider lifecycle events and enables the kEventDump op;
  /// `recorder` (optional, unowned) enables the kIncidentDump op and is
  /// polled on every error so trigger edges seal bundles promptly.
  explicit StorageServer(storage::Disk* disk,
                         obs::MetricsRegistry* metrics = nullptr,
                         obs::Tracer* tracer = nullptr,
                         obs::Profiler* profiler = nullptr,
                         obs::SloTracker* slo = nullptr,
                         obs::EventLog* eventlog = nullptr,
                         obs::FlightRecorder* recorder = nullptr);

  /// Executes one request frame and returns the response frame. Errors
  /// are encoded into the response (the transport never fails).
  Bytes Handle(ByteSpan request_frame);

  /// Attaches the privacy/cost controller surface served by the
  /// kControlStatus op. The provider takes one decoded operator verb and
  /// returns the controller's status JSON (the post-action state) or an
  /// error. Controller state is a public aggregate by design — k,
  /// c-estimates, decision outcomes — never request-derived data. Until
  /// attached, the op answers Unimplemented.
  void SetControlProvider(
      std::function<Result<std::string>(const ControlRequest&)> provider);

  /// Publishes the keyword-store manifest served by the kKeywordManifest
  /// op. The manifest is a PUBLIC artifact (the owner ships it to every
  /// client); `version` must increase across rebuilds so cached clients
  /// refetch. Until published, the op answers Unimplemented.
  void PublishKeywordManifest(Bytes manifest, uint64_t version);

 private:
  struct Instruments {
    obs::Counter* requests = nullptr;
    obs::Counter* read_slots = nullptr;
    obs::Counter* write_slots = nullptr;
    obs::Counter* errors = nullptr;
  };
  bool metered() const { return instruments_.requests != nullptr; }

  /// Dispatches one decoded request (the body of Handle, so the
  /// profiling/SLO wrapper can observe the outcome uniformly).
  Bytes Dispatch(const Request& request);

  /// Health/readiness JSON for the kHealth op (load-balancer surface).
  std::string HealthJson() const;

  storage::Disk* disk_;
  obs::MetricsRegistry* metrics_;
  obs::Tracer* tracer_;
  obs::Profiler* profiler_;
  obs::SloTracker* slo_;
  obs::EventLog* eventlog_;
  obs::FlightRecorder* recorder_;
  Instruments instruments_;
  /// Published keyword manifest (empty until PublishKeywordManifest).
  KeywordManifest keyword_manifest_;
  bool keyword_manifest_published_ = false;
  /// Controller surface (empty until SetControlProvider).
  std::function<Result<std::string>(const ControlRequest&)>
      control_provider_;
};

/// Transport that dispatches directly into an in-process StorageServer.
/// Latency and bandwidth are modeled by the owner-side cost accounting,
/// not by real sleeping, so simulations are fast and deterministic.
class DirectTransport : public Transport {
 public:
  explicit DirectTransport(StorageServer* server) : server_(server) {}

  Result<Bytes> RoundTrip(ByteSpan request) override {
    return server_->Handle(request);
  }

 private:
  StorageServer* server_;
};

}  // namespace shpir::net

#endif  // SHPIR_NET_STORAGE_SERVER_H_
