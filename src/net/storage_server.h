#ifndef SHPIR_NET_STORAGE_SERVER_H_
#define SHPIR_NET_STORAGE_SERVER_H_

#include "common/result.h"
#include "net/transport.h"
#include "net/wire.h"
#include "storage/disk.h"

namespace shpir::net {

/// The service provider of the two-party model: a dumb block store that
/// executes wire-protocol requests against its local disk. It only ever
/// sees sealed pages; all intelligence (and all secrets) stay with the
/// owner.
class StorageServer {
 public:
  /// `disk` is unowned and must outlive the server.
  explicit StorageServer(storage::Disk* disk) : disk_(disk) {}

  /// Executes one request frame and returns the response frame. Errors
  /// are encoded into the response (the transport never fails).
  Bytes Handle(ByteSpan request_frame);

 private:
  storage::Disk* disk_;
};

/// Transport that dispatches directly into an in-process StorageServer.
/// Latency and bandwidth are modeled by the owner-side cost accounting,
/// not by real sleeping, so simulations are fast and deterministic.
class DirectTransport : public Transport {
 public:
  explicit DirectTransport(StorageServer* server) : server_(server) {}

  Result<Bytes> RoundTrip(ByteSpan request) override {
    return server_->Handle(request);
  }

 private:
  StorageServer* server_;
};

}  // namespace shpir::net

#endif  // SHPIR_NET_STORAGE_SERVER_H_
