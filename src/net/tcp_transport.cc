#include "net/tcp_transport.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "common/bytes.h"
#include "obs/metrics.h"

namespace shpir::net {

namespace {

// Largest frame we will accept: geometry-independent safety bound.
constexpr uint32_t kMaxFrame = 1u << 30;

// Process-wide socket instruments in the global registry. Everything is
// a plain volume aggregate; the frames themselves are opaque to this
// layer (sealed pages, sealed records).
struct TcpInstruments {
  obs::Counter* connections;
  obs::Counter* frames;
  obs::Counter* bytes_in;
  obs::Counter* bytes_out;
  obs::Counter* round_trips;
};

const TcpInstruments& TcpMetrics() {
  static const TcpInstruments instruments = [] {
    obs::MetricsRegistry& registry = obs::MetricsRegistry::Global();
    return TcpInstruments{
        registry.FindOrCreateCounter("shpir_tcp_connections_total"),
        registry.FindOrCreateCounter("shpir_tcp_frames_total"),
        registry.FindOrCreateCounter("shpir_tcp_bytes_in_total"),
        registry.FindOrCreateCounter("shpir_tcp_bytes_out_total"),
        registry.FindOrCreateCounter("shpir_tcp_client_round_trips_total"),
    };
  }();
  return instruments;
}

Status SendAll(int fd, const uint8_t* data, size_t size) {
  size_t sent = 0;
  while (sent < size) {
    const ssize_t n = ::send(fd, data + sent, size - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      return InternalError(std::string("send failed: ") +
                           std::strerror(errno));
    }
    sent += static_cast<size_t>(n);
  }
  return OkStatus();
}

Status RecvAll(int fd, uint8_t* data, size_t size) {
  size_t received = 0;
  while (received < size) {
    const ssize_t n = ::recv(fd, data + received, size - received, 0);
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      return InternalError(std::string("recv failed: ") +
                           std::strerror(errno));
    }
    if (n == 0) {
      return DataLossError("peer closed the connection");
    }
    received += static_cast<size_t>(n);
  }
  return OkStatus();
}

Status SendFrame(int fd, ByteSpan payload) {
  uint8_t header[4];
  StoreLE32(static_cast<uint32_t>(payload.size()), header);
  SHPIR_RETURN_IF_ERROR(SendAll(fd, header, 4));
  SHPIR_RETURN_IF_ERROR(SendAll(fd, payload.data(), payload.size()));
  const TcpInstruments& m = TcpMetrics();
  m.frames->Increment();
  m.bytes_out->Increment(4 + payload.size());
  return OkStatus();
}

Result<Bytes> RecvFrame(int fd) {
  uint8_t header[4];
  SHPIR_RETURN_IF_ERROR(RecvAll(fd, header, 4));
  const uint32_t length = LoadLE32(header);
  if (length > kMaxFrame) {
    return DataLossError("oversized frame");
  }
  Bytes payload(length);
  if (length > 0) {
    SHPIR_RETURN_IF_ERROR(RecvAll(fd, payload.data(), length));
  }
  const TcpInstruments& m = TcpMetrics();
  m.frames->Increment();
  m.bytes_in->Increment(4 + static_cast<uint64_t>(length));
  return payload;
}

}  // namespace

Result<std::unique_ptr<TcpTransport>> TcpTransport::Connect(
    const std::string& host, uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return InternalError("socket() failed");
  }
  sockaddr_in addr = {};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  const std::string resolved = host == "localhost" ? "127.0.0.1" : host;
  if (::inet_pton(AF_INET, resolved.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return InvalidArgumentError("cannot parse host address: " + host);
  }
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return InternalError(std::string("connect failed: ") +
                         std::strerror(errno));
  }
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  TcpMetrics().connections->Increment();
  return std::unique_ptr<TcpTransport>(new TcpTransport(fd));
}

TcpTransport::~TcpTransport() {
  if (fd_ >= 0) {
    ::close(fd_);
  }
}

Result<Bytes> TcpTransport::RoundTrip(ByteSpan request) {
  SHPIR_RETURN_IF_ERROR(SendFrame(fd_, request));
  Result<Bytes> response = RecvFrame(fd_);
  if (response.ok()) {
    TcpMetrics().round_trips->Increment();
  }
  return response;
}

Result<std::unique_ptr<TcpFrameListener>> TcpFrameListener::Listen(
    Handler handler, uint16_t port) {
  if (!handler) {
    return InvalidArgumentError("handler is required");
  }
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return InternalError("socket() failed");
  }
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr = {};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return InternalError(std::string("bind failed: ") +
                         std::strerror(errno));
  }
  if (::listen(fd, 1) != 0) {
    ::close(fd);
    return InternalError("listen failed");
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
    ::close(fd);
    return InternalError("getsockname failed");
  }
  return std::unique_ptr<TcpFrameListener>(new TcpFrameListener(
      std::move(handler), fd, ntohs(addr.sin_port)));
}

TcpFrameListener::~TcpFrameListener() {
  Stop();
}

Status TcpFrameListener::ServeOneConnection() {
  const int conn = ::accept(listen_fd_.load(), nullptr, nullptr);
  if (conn < 0) {
    return InternalError(std::string("accept failed: ") +
                         std::strerror(errno));
  }
  const int one = 1;
  ::setsockopt(conn, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  TcpMetrics().connections->Increment();
  while (true) {
    Result<Bytes> request = RecvFrame(conn);
    if (!request.ok()) {
      break;  // Peer closed (normal) or I/O error.
    }
    Result<Bytes> response = handler_(*request);
    if (!response.ok()) {
      // Handler-level failures close the connection; protocol-level
      // errors are encoded into responses by the handlers themselves.
      ::close(conn);
      return response.status();
    }
    const Status sent = SendFrame(conn, *response);
    if (!sent.ok()) {
      ::close(conn);
      return sent;
    }
  }
  ::close(conn);
  return OkStatus();
}

void TcpFrameListener::Run() {
  while (!stopping_.load()) {
    (void)ServeOneConnection();
  }
}

void TcpFrameListener::Stop() {
  stopping_.store(true);
  const int fd = listen_fd_.exchange(-1);
  if (fd >= 0) {
    ::shutdown(fd, SHUT_RDWR);
    ::close(fd);
  }
}

Result<std::unique_ptr<TcpStorageListener>> TcpStorageListener::Listen(
    StorageServer* server, uint16_t port) {
  if (server == nullptr) {
    return InvalidArgumentError("server is required");
  }
  SHPIR_ASSIGN_OR_RETURN(
      std::unique_ptr<TcpFrameListener> inner,
      TcpFrameListener::Listen(
          [server](ByteSpan frame) -> Result<Bytes> {
            return server->Handle(frame);
          },
          port));
  return std::unique_ptr<TcpStorageListener>(
      new TcpStorageListener(std::move(inner)));
}

}  // namespace shpir::net
