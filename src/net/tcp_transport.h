#ifndef SHPIR_NET_TCP_TRANSPORT_H_
#define SHPIR_NET_TCP_TRANSPORT_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>

#include "common/result.h"
#include "net/storage_server.h"
#include "net/transport.h"

namespace shpir::net {

/// Real TCP transport for the two- and three-party models:
/// length-prefixed frames (4-byte little-endian length, then the
/// payload) over a blocking socket. This is the production counterpart
/// of DirectTransport — same protocols, real network.
class TcpTransport : public Transport {
 public:
  /// Connects to `host:port` (IPv4 dotted quad or "localhost").
  static Result<std::unique_ptr<TcpTransport>> Connect(
      const std::string& host, uint16_t port);

  ~TcpTransport() override;

  TcpTransport(const TcpTransport&) = delete;
  TcpTransport& operator=(const TcpTransport&) = delete;

  Result<Bytes> RoundTrip(ByteSpan request) override;

 private:
  explicit TcpTransport(int fd) : fd_(fd) {}

  int fd_;
};

/// Generic frame server: accepts connections and feeds each received
/// frame to a handler, writing its result back. Serves the block-store
/// protocol (StorageServer), the multi-client hub (ServiceHub), or any
/// other request/response endpoint. Single-threaded, one connection at
/// a time; run it on its own thread.
class TcpFrameListener {
 public:
  using Handler = std::function<Result<Bytes>(ByteSpan frame)>;

  /// Binds to 127.0.0.1:`port` (0 = ephemeral).
  static Result<std::unique_ptr<TcpFrameListener>> Listen(Handler handler,
                                                          uint16_t port);

  ~TcpFrameListener();

  TcpFrameListener(const TcpFrameListener&) = delete;
  TcpFrameListener& operator=(const TcpFrameListener&) = delete;

  /// The bound port (useful with port 0).
  uint16_t port() const { return port_; }

  /// Accepts one connection and serves requests until the peer closes.
  Status ServeOneConnection();

  /// Serves connections until Stop() is called from another thread.
  void Run();

  /// Makes Run() return after the current connection finishes; also
  /// unblocks a pending accept by closing the listen socket.
  void Stop();

 private:
  TcpFrameListener(Handler handler, int listen_fd, uint16_t port)
      : handler_(std::move(handler)),
        listen_fd_(listen_fd),
        port_(port) {}

  Handler handler_;
  // Written by Stop() from another thread while the serving thread
  // accepts on it, so reads and the close handoff must be atomic.
  std::atomic<int> listen_fd_;
  uint16_t port_;
  std::atomic<bool> stopping_{false};
};

/// Backward-compatible block-store listener: serves a StorageServer.
class TcpStorageListener {
 public:
  /// Binds to 127.0.0.1:`port` (0 = ephemeral). The server is unowned.
  static Result<std::unique_ptr<TcpStorageListener>> Listen(
      StorageServer* server, uint16_t port);

  uint16_t port() const { return inner_->port(); }
  Status ServeOneConnection() { return inner_->ServeOneConnection(); }
  void Run() { inner_->Run(); }
  void Stop() { inner_->Stop(); }

 private:
  explicit TcpStorageListener(std::unique_ptr<TcpFrameListener> inner)
      : inner_(std::move(inner)) {}

  std::unique_ptr<TcpFrameListener> inner_;
};

}  // namespace shpir::net

#endif  // SHPIR_NET_TCP_TRANSPORT_H_
