#ifndef SHPIR_NET_TRANSPORT_H_
#define SHPIR_NET_TRANSPORT_H_

#include "common/bytes.h"
#include "common/result.h"

namespace shpir::net {

/// A request/response message transport between the data owner and the
/// storage provider (the paper's two-party model, §3.1/§5). One
/// RoundTrip is one network RTT.
class Transport {
 public:
  virtual ~Transport() = default;

  /// Sends `request` and blocks for the response.
  virtual Result<Bytes> RoundTrip(ByteSpan request) = 0;
};

}  // namespace shpir::net

#endif  // SHPIR_NET_TRANSPORT_H_
