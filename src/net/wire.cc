#include "net/wire.h"

namespace shpir::net {

namespace {
constexpr size_t kRequestHeader = 1 + 8 + 8;
constexpr uint8_t kStatusOk = 0;
constexpr uint8_t kStatusError = 1;
}  // namespace

Bytes EncodeRequest(const Request& request) {
  Bytes frame(kRequestHeader + request.payload.size());
  frame[0] = static_cast<uint8_t>(request.op);
  StoreLE64(request.location, frame.data() + 1);
  StoreLE64(request.count, frame.data() + 9);
  std::copy(request.payload.begin(), request.payload.end(),
            frame.begin() + kRequestHeader);
  return frame;
}

Result<Request> DecodeRequest(ByteSpan frame) {
  if (frame.size() < kRequestHeader) {
    return DataLossError("truncated request frame");
  }
  Request request;
  switch (frame[0]) {
    case static_cast<uint8_t>(Op::kRead):
    case static_cast<uint8_t>(Op::kWrite):
    case static_cast<uint8_t>(Op::kReadRun):
    case static_cast<uint8_t>(Op::kWriteRun):
    case static_cast<uint8_t>(Op::kGeometry):
    case static_cast<uint8_t>(Op::kStats):
      request.op = static_cast<Op>(frame[0]);
      break;
    default:
      return InvalidArgumentError("unknown wire op");
  }
  request.location = LoadLE64(frame.data() + 1);
  request.count = LoadLE64(frame.data() + 9);
  request.payload.assign(frame.begin() + kRequestHeader, frame.end());
  return request;
}

Bytes EncodeOkResponse(ByteSpan payload) {
  Bytes frame(1 + payload.size());
  frame[0] = kStatusOk;
  std::copy(payload.begin(), payload.end(), frame.begin() + 1);
  return frame;
}

Bytes EncodeErrorResponse(const Status& status) {
  const std::string text = status.ToString();
  Bytes frame(1 + text.size());
  frame[0] = kStatusError;
  std::copy(text.begin(), text.end(), frame.begin() + 1);
  return frame;
}

Result<Bytes> DecodeResponse(ByteSpan frame) {
  if (frame.empty()) {
    return DataLossError("empty response frame");
  }
  if (frame[0] == kStatusError) {
    return InternalError("remote error: " +
                         std::string(frame.begin() + 1, frame.end()));
  }
  if (frame[0] != kStatusOk) {
    return DataLossError("malformed response frame");
  }
  return Bytes(frame.begin() + 1, frame.end());
}

}  // namespace shpir::net
