#include "net/wire.h"

namespace shpir::net {

namespace {
constexpr size_t kRequestHeader = 1 + 8 + 8;
constexpr uint8_t kStatusOk = 0;
constexpr uint8_t kStatusError = 1;
}  // namespace

namespace {

constexpr uint8_t kTraceFlagSampled = 0x01;

Bytes EncodeFrame(const Request& request) {
  Bytes frame(kRequestHeader + request.payload.size());
  frame[0] = static_cast<uint8_t>(request.op);
  StoreLE64(request.location, frame.data() + 1);
  StoreLE64(request.count, frame.data() + 9);
  std::copy(request.payload.begin(), request.payload.end(),
            frame.begin() + kRequestHeader);
  return frame;
}

}  // namespace

Bytes EncodeRequest(const Request& request) {
  Bytes inner = EncodeFrame(request);
  // shpir-lint-allow-next-line(secret-compare): op and trace-envelope fields are public protocol headers; the taint is field-insensitive over the partially-secret Request
  if (!request.trace.valid() || request.op == Op::kTraced) {
    return inner;
  }
  // Wrap in the kTraced envelope: the context rides the header fields
  // and one flags byte, the inner frame is carried verbatim.
  Bytes frame(kRequestHeader + 1 + inner.size());
  frame[0] = static_cast<uint8_t>(Op::kTraced);
  StoreLE64(request.trace.trace_id, frame.data() + 1);
  StoreLE64(request.trace.span_id, frame.data() + 9);
  frame[kRequestHeader] = request.trace.sampled ? kTraceFlagSampled : 0;
  std::copy(inner.begin(), inner.end(), frame.begin() + kRequestHeader + 1);
  return frame;
}

Result<Request> DecodeRequest(ByteSpan frame) {
  if (frame.size() < kRequestHeader) {
    return DataLossError("truncated request frame");
  }
  obs::TraceContext trace;
  if (frame[0] == static_cast<uint8_t>(Op::kTraced)) {
    trace.trace_id = LoadLE64(frame.data() + 1);
    trace.span_id = LoadLE64(frame.data() + 9);
    if (trace.trace_id == 0) {
      return InvalidArgumentError("traced envelope with zero trace id");
    }
    if (frame.size() < kRequestHeader + 1 + kRequestHeader) {
      return DataLossError("truncated traced envelope");
    }
    const uint8_t flags = frame[kRequestHeader];
    if ((flags & ~kTraceFlagSampled) != 0) {
      return InvalidArgumentError("unknown trace flags");
    }
    trace.sampled = (flags & kTraceFlagSampled) != 0;
    frame = frame.subspan(kRequestHeader + 1);
    if (frame[0] == static_cast<uint8_t>(Op::kTraced)) {
      return InvalidArgumentError("nested traced envelope");
    }
  }
  Request request;
  switch (frame[0]) {
    case static_cast<uint8_t>(Op::kRead):
    case static_cast<uint8_t>(Op::kWrite):
    case static_cast<uint8_t>(Op::kReadRun):
    case static_cast<uint8_t>(Op::kWriteRun):
    case static_cast<uint8_t>(Op::kGeometry):
    case static_cast<uint8_t>(Op::kStats):
    case static_cast<uint8_t>(Op::kTraceDump):
    case static_cast<uint8_t>(Op::kProfileDump):
    case static_cast<uint8_t>(Op::kSloStatus):
    case static_cast<uint8_t>(Op::kKeywordManifest):
    case static_cast<uint8_t>(Op::kEventDump):
    case static_cast<uint8_t>(Op::kIncidentDump):
    case static_cast<uint8_t>(Op::kHealth):
    case static_cast<uint8_t>(Op::kControlStatus):
      request.op = static_cast<Op>(frame[0]);
      break;
    default:
      return InvalidArgumentError("unknown wire op");
  }
  request.location = LoadLE64(frame.data() + 1);
  request.count = LoadLE64(frame.data() + 9);
  request.payload.assign(frame.begin() + kRequestHeader, frame.end());
  request.trace = trace;
  return request;
}

Bytes EncodeOkResponse(ByteSpan payload) {
  Bytes frame(1 + payload.size());
  frame[0] = kStatusOk;
  std::copy(payload.begin(), payload.end(), frame.begin() + 1);
  return frame;
}

Bytes EncodeErrorResponse(const Status& status) {
  const std::string text = status.ToString();
  Bytes frame(1 + text.size());
  frame[0] = kStatusError;
  std::copy(text.begin(), text.end(), frame.begin() + 1);
  return frame;
}

Result<Bytes> DecodeResponse(ByteSpan frame) {
  if (frame.empty()) {
    return DataLossError("empty response frame");
  }
  // shpir-lint-allow-next-line(secret-compare): the status byte is a public protocol header; response payloads cross the wire sealed
  if (frame[0] == kStatusError) {
    return InternalError("remote error: " +
                         std::string(frame.begin() + 1, frame.end()));
  }
  // shpir-lint-allow-next-line(secret-compare): the status byte is a public protocol header; response payloads cross the wire sealed
  if (frame[0] != kStatusOk) {
    return DataLossError("malformed response frame");
  }
  return Bytes(frame.begin() + 1, frame.end());
}

namespace {
constexpr size_t kKeywordManifestRequestSize = 1 + 8;
constexpr size_t kKeywordManifestResponseHeader = 8 + 1;
}  // namespace

Bytes EncodeKeywordManifestRequest(uint64_t cached_version) {
  Bytes payload(kKeywordManifestRequestSize);
  payload[0] = kKeywordManifestRequestVersion;
  StoreLE64(cached_version, payload.data() + 1);
  return payload;
}

Result<uint64_t> DecodeKeywordManifestRequest(ByteSpan payload) {
  if (payload.size() != kKeywordManifestRequestSize) {
    return DataLossError("malformed keyword-manifest request payload");
  }
  if (payload[0] != kKeywordManifestRequestVersion) {
    return InvalidArgumentError(
        "unknown keyword-manifest request version");
  }
  return LoadLE64(payload.data() + 1);
}

Bytes EncodeKeywordManifestResponse(const KeywordManifest& manifest,
                                    bool include_body) {
  Bytes payload(kKeywordManifestResponseHeader +
                (include_body ? manifest.manifest.size() : 0));
  StoreLE64(manifest.version, payload.data());
  payload[8] = include_body ? 1 : 0;
  if (include_body) {
    std::copy(manifest.manifest.begin(), manifest.manifest.end(),
              payload.begin() + kKeywordManifestResponseHeader);
  }
  return payload;
}

Result<KeywordManifest> DecodeKeywordManifestResponse(ByteSpan payload) {
  if (payload.size() < kKeywordManifestResponseHeader) {
    return DataLossError("truncated keyword-manifest response");
  }
  if (payload[8] > 1) {
    return InvalidArgumentError("malformed keyword-manifest response flag");
  }
  KeywordManifest manifest;
  manifest.version = LoadLE64(payload.data());
  if (payload[8] == 1) {
    manifest.manifest.assign(
        payload.begin() + kKeywordManifestResponseHeader, payload.end());
  } else if (payload.size() != kKeywordManifestResponseHeader) {
    return DataLossError(
        "keyword-manifest response carries bytes after an absent body");
  }
  return manifest;
}

namespace {
constexpr size_t kControlRequestSize = 1 + 1 + 8 + 8;
}  // namespace

Bytes EncodeControlRequest(const ControlRequest& request) {
  Bytes payload(kControlRequestSize);
  payload[0] = kControlRequestVersion;
  payload[1] = static_cast<uint8_t>(request.verb);
  StoreLE64(request.k_min, payload.data() + 2);
  StoreLE64(request.k_max, payload.data() + 10);
  return payload;
}

Result<ControlRequest> DecodeControlRequest(ByteSpan payload) {
  if (payload.size() != kControlRequestSize) {
    return DataLossError("malformed control request payload");
  }
  if (payload[0] != kControlRequestVersion) {
    return InvalidArgumentError("unknown control request version");
  }
  if (payload[1] > static_cast<uint8_t>(ControlVerb::kSetBounds)) {
    return InvalidArgumentError("unknown control verb");
  }
  ControlRequest request;
  request.verb = static_cast<ControlVerb>(payload[1]);
  request.k_min = LoadLE64(payload.data() + 2);
  request.k_max = LoadLE64(payload.data() + 10);
  return request;
}

}  // namespace shpir::net
