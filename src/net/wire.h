#ifndef SHPIR_NET_WIRE_H_
#define SHPIR_NET_WIRE_H_

#include <cstdint>
#include <vector>

#include "common/bytes.h"
#include "common/result.h"
#include "obs/trace.h"
#include "storage/page.h"

namespace shpir::net {

/// Wire protocol between the owner-side RemoteDisk and the provider-side
/// StorageServer. All integers little-endian.
///
/// Request:  op(1) | location(8) | count(8) | payload (count * slot_size)
/// Response: status(1) | payload
///
/// Trace propagation: a request carrying a valid TraceContext is sent as
/// a kTraced wrapper — location := trace_id, count := span_id, payload
/// := flags(1) | inner frame — so existing ops stay byte-identical when
/// tracing is off. DecodeRequest unwraps the envelope back into
/// Request::trace; nested envelopes are rejected.
enum class Op : uint8_t {
  kRead = 1,      // Read one slot.
  kWrite = 2,     // Write one slot.
  kReadRun = 3,   // Read count consecutive slots.
  kWriteRun = 4,  // Write count consecutive slots.
  kGeometry = 5,  // Query (num_slots, slot_size).
  kStats = 6,     // Fetch the provider's metrics snapshot (JSON).
  kTraceDump = 7, // Fetch the provider's span buffer (Chrome trace JSON).
  kTraced = 8,    // Envelope: a traced inner request (see above).
  // Continuous-profiling dump: payload byte 0 selects the format
  // (0 = JSON stack table, 1 = flame-graph collapsed text; absent = 0).
  kProfileDump = 9,
  kSloStatus = 10,  // Fetch the provider's SLO/error-budget state (JSON).
};

struct Request {
  Op op;
  storage::Location location = 0;
  uint64_t count = 0;
  Bytes payload;
  /// Distributed-tracing context; propagated on the wire when valid().
  /// Carries only public trace/span ids — never request-derived data.
  obs::TraceContext trace;
};

/// Serializes a request.
Bytes EncodeRequest(const Request& request);

/// Parses a request; rejects truncated or unknown frames.
Result<Request> DecodeRequest(ByteSpan frame);

/// Serializes an OK response carrying `payload`.
Bytes EncodeOkResponse(ByteSpan payload);

/// Serializes an error response carrying the status message.
Bytes EncodeErrorResponse(const Status& status);

/// Parses a response into its payload, converting wire errors back into
/// a Status.
Result<Bytes> DecodeResponse(ByteSpan frame);

}  // namespace shpir::net

#endif  // SHPIR_NET_WIRE_H_
