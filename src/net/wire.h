#ifndef SHPIR_NET_WIRE_H_
#define SHPIR_NET_WIRE_H_

#include <cstdint>
#include <vector>

#include "common/bytes.h"
#include "common/result.h"
#include "obs/trace.h"
#include "storage/page.h"

namespace shpir::net {

/// Wire protocol between the owner-side RemoteDisk and the provider-side
/// StorageServer. All integers little-endian.
///
/// Request:  op(1) | location(8) | count(8) | payload (count * slot_size)
/// Response: status(1) | payload
///
/// Trace propagation: a request carrying a valid TraceContext is sent as
/// a kTraced wrapper — location := trace_id, count := span_id, payload
/// := flags(1) | inner frame — so existing ops stay byte-identical when
/// tracing is off. DecodeRequest unwraps the envelope back into
/// Request::trace; nested envelopes are rejected.
enum class Op : uint8_t {
  kRead = 1,      // Read one slot.
  kWrite = 2,     // Write one slot.
  kReadRun = 3,   // Read count consecutive slots.
  kWriteRun = 4,  // Write count consecutive slots.
  kGeometry = 5,  // Query (num_slots, slot_size).
  kStats = 6,     // Fetch the provider's metrics snapshot (JSON).
  kTraceDump = 7, // Fetch the provider's span buffer (Chrome trace JSON).
  kTraced = 8,    // Envelope: a traced inner request (see above).
  // Continuous-profiling dump: payload byte 0 selects the format
  // (0 = JSON stack table, 1 = flame-graph collapsed text; absent = 0).
  kProfileDump = 9,
  kSloStatus = 10,  // Fetch the provider's SLO/error-budget state (JSON).
  // Fetch the public keyword-store manifest (versioned for rebuilds).
  // Payload: EncodeKeywordManifestRequest / ...Response below.
  kKeywordManifest = 11,
  kEventDump = 12,  // Fetch the provider's event log (JSON).
  // Incident flight-recorder dump. Payload byte 0 selects the mode
  // (0 = list summaries, 1 = show one bundle, id in location; absent
  // = 0).
  kIncidentDump = 13,
  kHealth = 14,  // Fetch the provider's health/readiness state (JSON).
  // Privacy/cost controller status + operator verbs. Payload:
  // EncodeControlRequest / response is the controller status JSON.
  kControlStatus = 15,
};

struct Request {
  Op op;
  storage::Location location = 0;
  uint64_t count = 0;
  Bytes payload;
  /// Distributed-tracing context; propagated on the wire when valid().
  /// Carries only public trace/span ids — never request-derived data.
  obs::TraceContext trace;
};

/// Serializes a request.
Bytes EncodeRequest(const Request& request);

/// Parses a request; rejects truncated or unknown frames.
Result<Request> DecodeRequest(ByteSpan frame);

/// Serializes an OK response carrying `payload`.
Bytes EncodeOkResponse(ByteSpan payload);

/// Serializes an error response carrying the status message.
Bytes EncodeErrorResponse(const Status& status);

/// Parses a response into its payload, converting wire errors back into
/// a Status.
Result<Bytes> DecodeResponse(ByteSpan frame);

/// A published keyword-store manifest: the serialized KeywordMap (a
/// public artifact — the owner built it, the client needs it to resolve
/// keys to pages) plus a monotonically increasing build version so
/// clients can detect rebuilds without re-downloading the body.
struct KeywordManifest {
  Bytes manifest;
  uint64_t version = 0;
};

/// Version of the KEYWORD_MANIFEST request payload format. Servers
/// reject unknown versions so the payload can grow fields later.
inline constexpr uint8_t kKeywordManifestRequestVersion = 1;

/// Request payload: format(1) | cached_version(8). A server whose
/// current version equals `cached_version` answers with no body
/// ("not modified"); pass 0 to always fetch. Exactly 9 bytes — both
/// protocols reject anything else.
Bytes EncodeKeywordManifestRequest(uint64_t cached_version);
Result<uint64_t> DecodeKeywordManifestRequest(ByteSpan payload);

/// Response payload: current_version(8) | body_present(1) | [manifest].
/// The body is absent exactly when the requester's cached version is
/// current. The codec is shared by the storage protocol and the sealed
/// service protocol so both speak the same manifest format.
Bytes EncodeKeywordManifestResponse(const KeywordManifest& manifest,
                                    bool include_body);
Result<KeywordManifest> DecodeKeywordManifestResponse(ByteSpan payload);

/// Operator verbs carried by the CONTROL_STATUS op. Every verb's
/// response is the controller's status JSON, so an operator action
/// always returns the post-action state.
enum class ControlVerb : uint8_t {
  kStatus = 0,     // Read-only status fetch.
  kFreeze = 1,     // Stop actuating (keep observing).
  kUnfreeze = 2,   // Resume actuating.
  kSetBounds = 3,  // Replace [k_min, k_max]; ladders recompute.
};

/// One decoded control request.
struct ControlRequest {
  ControlVerb verb = ControlVerb::kStatus;
  /// Bounds; meaningful only for kSetBounds (k_max 0 = unbounded).
  uint64_t k_min = 0;
  uint64_t k_max = 0;
};

/// Version of the CONTROL_STATUS request payload format. Servers reject
/// unknown versions so the payload can grow fields later.
inline constexpr uint8_t kControlRequestVersion = 1;

/// Request payload: version(1) | verb(1) | k_min(8) | k_max(8) — exactly
/// 18 bytes; both protocols reject anything else. The codec is shared by
/// the storage protocol and the sealed service protocol.
Bytes EncodeControlRequest(const ControlRequest& request);
Result<ControlRequest> DecodeControlRequest(ByteSpan payload);

}  // namespace shpir::net

#endif  // SHPIR_NET_WIRE_H_
