#include "obs/build_info.h"

#include "obs/metrics.h"

#if !defined(SHPIR_BUILD_GIT_SHA)
#define SHPIR_BUILD_GIT_SHA "unknown"
#endif
#if !defined(SHPIR_BUILD_TYPE)
#define SHPIR_BUILD_TYPE "unknown"
#endif
#if !defined(SHPIR_BUILD_FLAGS)
#define SHPIR_BUILD_FLAGS ""
#endif

namespace shpir::obs {

namespace {

// The repo has no release tags yet; the minor component tracks the PR
// sequence the same way CHANGES.md does.
constexpr const char* kVersion = "0.8.0";

const char* CompilerString() {
#if defined(__clang__)
  return "clang " __VERSION__;
#elif defined(__GNUC__)
  return "gcc " __VERSION__;
#else
  return "unknown";
#endif
}

}  // namespace

const BuildInfo& GetBuildInfo() {
  static const BuildInfo info = {
      kVersion,
      SHPIR_BUILD_GIT_SHA,
      CompilerString(),
      SHPIR_BUILD_TYPE,
      SHPIR_BUILD_FLAGS,
  };
  return info;
}

void PublishBuildInfo(MetricsRegistry* registry) {
  if (registry == nullptr) {
    return;
  }
  const BuildInfo& info = GetBuildInfo();
  registry->RegisterInfo("shpir_build_info",
                         {{"version", info.version},
                          {"git_sha", info.git_sha},
                          {"compiler", info.compiler},
                          {"build_type", info.build_type},
                          {"flags", info.flags}});
}

std::string BuildInfoSummary() {
  const BuildInfo& info = GetBuildInfo();
  std::string out = "shpir ";
  out += info.version;
  out += " (";
  out += info.git_sha;
  out += ", ";
  out += info.compiler;
  out += ", ";
  out += info.build_type;
  out += ")";
  return out;
}

}  // namespace shpir::obs
