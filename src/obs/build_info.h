#ifndef SHPIR_OBS_BUILD_INFO_H_
#define SHPIR_OBS_BUILD_INFO_H_

#include <string>

namespace shpir::obs {

class MetricsRegistry;

/// Build identity: which binary is actually serving. All values are
/// compile-time constants (public by definition). The git sha and
/// build type arrive as compile definitions from src/obs/CMakeLists;
/// the compiler string comes from predefined macros.
struct BuildInfo {
  const char* version;
  const char* git_sha;
  const char* compiler;
  const char* build_type;
  const char* flags;
};

const BuildInfo& GetBuildInfo();

/// Registers the shpir_build_info info metric (value-1 gauge with
/// version/git_sha/compiler/build_type/flags labels) on `registry`.
/// Both exporters render it; shpir_stats prints it as a header line.
void PublishBuildInfo(MetricsRegistry* registry);

/// One-line human form: "shpir <version> (<sha>, <compiler>, <type>)".
std::string BuildInfoSummary();

}  // namespace shpir::obs

#endif  // SHPIR_OBS_BUILD_INFO_H_
