#include "obs/eventlog.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <sstream>

#include "obs/export.h"
#include "obs/metrics.h"

namespace shpir::obs {

namespace {

uint64_t NowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace

const char* EventLevelName(EventLevel level) {
  switch (level) {
    case EventLevel::kDebug:
      return "debug";
    case EventLevel::kInfo:
      return "info";
    case EventLevel::kWarn:
      return "warn";
    case EventLevel::kError:
      return "error";
  }
  return "unknown";
}

EventLog::EventLog(const Options& options)
    : options_(options),
      lane_capacity_(std::max<size_t>(
          1, (options.capacity == 0 ? 1024 : options.capacity) /
                 std::max<size_t>(1, options.lanes))),
      lanes_(std::max<size_t>(1, options.lanes)) {
  for (Lane& lane : lanes_) {
    common::MutexLock lock(lane.mutex);
    lane.ring.resize(lane_capacity_);
  }
}

void EventLog::Emit(EventLevel level, const char* name, int32_t shard,
                    uint64_t trace_id,
                    std::initializer_list<EventField> fields) {
  emitted_.fetch_add(1, std::memory_order_relaxed);
  if (level < options_.min_level) {
    filtered_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  const uint64_t now = NowNs();
  const auto level_index = static_cast<size_t>(level);
  if (options_.max_per_sec[level_index] > 0) {
    common::MutexLock lock(rate_mutex_);
    RateBucket& bucket = rate_[level_index];
    if (now - bucket.window_start_ns >= 1000000000ULL) {
      bucket.window_start_ns = now;
      bucket.count = 0;
    }
    if (bucket.count >= options_.max_per_sec[level_index]) {
      rate_limited_.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    ++bucket.count;
  }

  EventRecord record;
  record.seq = seq_.fetch_add(1, std::memory_order_relaxed);
  record.ts_ns = now;
  record.level = level;
  record.name = name;
  record.shard = shard;
  record.trace_id = trace_id;
  for (const EventField& field : fields) {
    if (record.num_fields == EventRecord::kMaxFields) {
      break;  // Closed vocabulary; events carry at most kMaxFields.
    }
    record.fields[record.num_fields++] = field;
  }

  Lane& lane = lanes_[record.seq % lanes_.size()];
  bool overwrote = false;
  {
    common::MutexLock lock(lane.mutex);
    lane.ring[lane.next] = record;
    lane.next = (lane.next + 1) % lane_capacity_;
    if (lane.count < lane_capacity_) {
      ++lane.count;
    } else {
      overwrote = true;
    }
  }
  recorded_.fetch_add(1, std::memory_order_relaxed);
  if (overwrote) {
    dropped_.fetch_add(1, std::memory_order_relaxed);
  }
}

std::vector<EventRecord> EventLog::Snapshot() const {
  std::vector<EventRecord> out;
  out.reserve(lanes_.size() * lane_capacity_);
  for (const Lane& lane : lanes_) {
    common::MutexLock lock(lane.mutex);
    const size_t start = lane.count == lane_capacity_ ? lane.next : 0;
    for (size_t i = 0; i < lane.count; ++i) {
      out.push_back(lane.ring[(start + i) % lane_capacity_]);
    }
  }
  std::sort(out.begin(), out.end(),
            [](const EventRecord& a, const EventRecord& b) {
              return a.seq < b.seq;
            });
  return out;
}

void EventLog::Clear() {
  for (Lane& lane : lanes_) {
    common::MutexLock lock(lane.mutex);
    lane.next = 0;
    lane.count = 0;
  }
}

void EventLog::PublishMetrics(MetricsRegistry* registry) {
  if (registry == nullptr) {
    return;
  }
  registry->RegisterCallbackGauge(
      "shpir_eventlog_emitted_total",
      [this] { return static_cast<double>(emitted()); });
  registry->RegisterCallbackGauge(
      "shpir_eventlog_recorded_total",
      [this] { return static_cast<double>(recorded()); });
  registry->RegisterCallbackGauge(
      "shpir_eventlog_dropped_total",
      [this] { return static_cast<double>(dropped()); });
  registry->RegisterCallbackGauge(
      "shpir_eventlog_rate_limited_total",
      [this] { return static_cast<double>(rate_limited()); });
  registry->RegisterCallbackGauge(
      "shpir_eventlog_filtered_total",
      [this] { return static_cast<double>(filtered()); });
}

std::string EventLogJson(const EventLog& log) {
  std::ostringstream out;
  out << "{\"emitted\":" << log.emitted()
      << ",\"recorded\":" << log.recorded()
      << ",\"dropped\":" << log.dropped()
      << ",\"rate_limited\":" << log.rate_limited()
      << ",\"filtered\":" << log.filtered() << ",\"events\":[";
  bool first = true;
  char buf[64];
  for (const EventRecord& event : log.Snapshot()) {
    if (!first) {
      out << ',';
    }
    first = false;
    std::snprintf(buf, sizeof(buf), "%016llx",
                  static_cast<unsigned long long>(event.trace_id));
    // Event and field names come from the closed static vocabulary
    // but are escaped anyway — the dump crosses the wire.
    out << "{\"seq\":" << event.seq << ",\"ts_ns\":" << event.ts_ns
        << ",\"level\":\"" << EventLevelName(event.level) << "\",\"name\":\""
        << EscapeJsonString(event.name) << "\",\"shard\":" << event.shard
        << ",\"trace_id\":\"" << buf << "\",\"fields\":{";
    for (size_t i = 0; i < event.num_fields; ++i) {
      if (i > 0) {
        out << ',';
      }
      std::snprintf(buf, sizeof(buf), "%.17g", event.fields[i].value);
      out << "\"" << EscapeJsonString(event.fields[i].name)
          << "\":" << buf;
    }
    out << "}}";
  }
  out << "]}";
  return out.str();
}

std::string EventShape(const std::vector<EventRecord>& events) {
  std::vector<std::string> lines;
  lines.reserve(events.size());
  for (const EventRecord& event : events) {
    std::string line = EventLevelName(event.level);
    line += ':';
    line += event.name;
    line += ':';
    line += std::to_string(event.shard);
    line += ':';
    for (size_t i = 0; i < event.num_fields; ++i) {
      if (i > 0) {
        line += ',';
      }
      line += event.fields[i].name;
    }
    lines.push_back(std::move(line));
  }
  std::sort(lines.begin(), lines.end());
  std::string out;
  for (const std::string& line : lines) {
    out += line;
    out += '\n';
  }
  return out;
}

}  // namespace shpir::obs
