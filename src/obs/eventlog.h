#ifndef SHPIR_OBS_EVENTLOG_H_
#define SHPIR_OBS_EVENTLOG_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <initializer_list>
#include <string>
#include <type_traits>
#include <vector>

#include "common/mutex.h"
#include "common/secret.h"

namespace shpir::obs {

class MetricsRegistry;

/// Leveled, structured, secret-safe event log — the fourth
/// observability pillar next to metrics (aggregate distributions),
/// tracing (sampled timelines) and profiling (where the cycles go).
/// Events answer "what happened, in order": a shard drained, an SLO
/// rule fired, the privacy monitor counted a breach, an admission
/// decision rejected a query.
///
/// Trust boundary (same rule as every other pillar): event names and
/// field names are static string literals from a closed vocabulary,
/// and field VALUES are numeric aggregates only. A
/// `common::Secret<T>` cannot be used as a field value — the
/// EventField constructor rejects it at compile time — and an exposed
/// secret flowing into Emit() is flagged by shpir_lint's secret-log
/// rule (Emit is a registered sink). Cover and real queries must emit
/// identical event shapes; tests/incident_shape_test.cc pins that
/// down with the paired-rig methodology.

enum class EventLevel : uint8_t {
  kDebug = 0,
  kInfo = 1,
  kWarn = 2,
  kError = 3,
};

constexpr int kNumEventLevels = 4;

/// Lowercase level name ("debug", "info", "warn", "error").
const char* EventLevelName(EventLevel level);

namespace internal {
template <typename T>
struct IsSecretType : std::false_type {};
template <typename T>
struct IsSecretType<common::Secret<T>> : std::true_type {};
}  // namespace internal

/// One key/value field. The name must be a string literal (static
/// storage — records outlive the emitting scope); the value must be a
/// plain arithmetic type. Passing a common::Secret<T> is a compile
/// error by design: secrets do not get a logging accessor, and the
/// only escape hatch (ExposeSecret) leaves a taint shpir_lint tracks
/// into this constructor.
struct EventField {
  const char* name = "";
  double value = 0;

  EventField() = default;

  template <typename T>
  EventField(const char* field_name, T field_value) : name(field_name) {
    static_assert(!internal::IsSecretType<std::decay_t<T>>::value,
                  "common::Secret<T> must never be logged as an event "
                  "field; see docs/OBSERVABILITY.md");
    static_assert(std::is_arithmetic_v<std::decay_t<T>>,
                  "event field values must be numeric aggregates "
                  "(no strings, no pointers)");
    value = static_cast<double>(field_value);
  }
};

/// One recorded event. Fixed footprint (no allocation) so the ring
/// write is a memcpy-sized critical section.
struct EventRecord {
  static constexpr size_t kMaxFields = 4;

  uint64_t seq = 0;         // Global emission order.
  uint64_t ts_ns = 0;       // steady_clock, process-local epoch.
  EventLevel level = EventLevel::kInfo;
  const char* name = "";    // Static string literal.
  int32_t shard = -1;       // -1 when not shard-specific.
  uint64_t trace_id = 0;    // 0 when not correlated with a trace.
  std::array<EventField, kMaxFields> fields{};
  size_t num_fields = 0;
};

/// Bounded, lock-sharded event collector. Emit() from S shard workers
/// does not serialize on one mutex; when a lane wraps, the oldest
/// event is overwritten and counted in dropped(). Per-level token
/// buckets (steady-clock seconds) bound the emit rate under overload;
/// over-budget events are counted in rate_limited() and discarded —
/// the counters themselves are the back-pressure signal.
class EventLog {
 public:
  struct Options {
    /// Events below this level are counted in filtered() and dropped
    /// before any lock or clock read — the "attached but quiet" mode
    /// bench_eventlog prices as the disabled configuration.
    EventLevel min_level = EventLevel::kInfo;
    /// Total event capacity across all lanes.
    size_t capacity = 1024;
    /// Number of independently locked ring lanes.
    size_t lanes = 4;
    /// Per-level emit budget per steady-clock second; 0 = unlimited.
    /// Indexed by EventLevel.
    std::array<uint64_t, kNumEventLevels> max_per_sec = {0, 0, 0, 0};
  };

  explicit EventLog(const Options& options);
  EventLog() : EventLog(Options{}) {}

  EventLog(const EventLog&) = delete;
  EventLog& operator=(const EventLog&) = delete;

  /// Records one event. `name` and every field name must be string
  /// literals; field values must be public aggregates (never a page
  /// id, request index, or anything derived from one).
  void Emit(EventLevel level, const char* name,
            std::initializer_list<EventField> fields = {}) {
    Emit(level, name, /*shard=*/-1, /*trace_id=*/0, fields);
  }

  /// Shard- and trace-correlated form. `trace_id` is the public
  /// sampled-trace id (0 when untraced).
  void Emit(EventLevel level, const char* name, int32_t shard,
            uint64_t trace_id, std::initializer_list<EventField> fields = {});

  /// Copies the buffered events in emission (seq) order.
  std::vector<EventRecord> Snapshot() const;

  /// Discards buffered events (counters are kept).
  void Clear();

  /// Emit() calls observed (including filtered and rate-limited ones).
  uint64_t emitted() const { return emitted_.load(std::memory_order_relaxed); }
  /// Events actually written to a ring lane.
  uint64_t recorded() const {
    return recorded_.load(std::memory_order_relaxed);
  }
  /// Events overwritten by ring wraparound.
  uint64_t dropped() const { return dropped_.load(std::memory_order_relaxed); }
  /// Events discarded by a per-level token bucket.
  uint64_t rate_limited() const {
    return rate_limited_.load(std::memory_order_relaxed);
  }
  /// Events below min_level.
  uint64_t filtered() const {
    return filtered_.load(std::memory_order_relaxed);
  }

  const Options& options() const { return options_; }

  /// Registers shpir_eventlog_* callback gauges on `registry`
  /// (including shpir_eventlog_dropped_total). The log must outlive
  /// the registry's last Snapshot().
  void PublishMetrics(MetricsRegistry* registry);

 private:
  struct Lane {
    mutable common::Mutex mutex;
    std::vector<EventRecord> ring GUARDED_BY(mutex);  // Fixed capacity.
    size_t next GUARDED_BY(mutex) = 0;
    size_t count GUARDED_BY(mutex) = 0;
  };

  struct RateBucket {
    uint64_t window_start_ns = 0;
    uint64_t count = 0;
  };

  Options options_;
  size_t lane_capacity_;
  std::vector<Lane> lanes_;
  std::atomic<uint64_t> seq_{0};
  std::atomic<uint64_t> emitted_{0};
  std::atomic<uint64_t> recorded_{0};
  std::atomic<uint64_t> dropped_{0};
  std::atomic<uint64_t> rate_limited_{0};
  std::atomic<uint64_t> filtered_{0};
  mutable common::Mutex rate_mutex_;
  std::array<RateBucket, kNumEventLevels> rate_ GUARDED_BY(rate_mutex_);
};

/// Closed-schema JSON for the EVENT_DUMP wire op:
///   {"emitted":...,"recorded":...,"dropped":...,"rate_limited":...,
///    "filtered":...,"events":[{"seq":...,"ts_ns":...,"level":"info",
///    "name":"...","shard":...,"trace_id":"0016-hex","fields":{...}}]}
std::string EventLogJson(const EventLog& log);

/// Secret-independence digest: one "level:name:shard:field,field"
/// line per event, sorted (thread interleaving is timing, not
/// secret-dependent, so sorting makes the digest deterministic). No
/// values, timestamps, seqs or trace ids — two runs over different
/// secret targets must produce byte-identical shapes.
std::string EventShape(const std::vector<EventRecord>& events);

}  // namespace shpir::obs

#endif  // SHPIR_OBS_EVENTLOG_H_
