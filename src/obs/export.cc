#include "obs/export.h"

#include <cctype>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <sstream>

namespace shpir::obs {

namespace {

// Shortest round-tripping representation of a double.
std::string FormatDouble(double value) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", value);
  // Prefer a shorter form when it round-trips.
  for (int precision = 1; precision < 17; ++precision) {
    char shorter[64];
    std::snprintf(shorter, sizeof(shorter), "%.*g", precision, value);
    if (std::strtod(shorter, nullptr) == value) {
      return shorter;
    }
  }
  return buf;
}

std::string TraceIdHex(uint64_t trace_id) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(trace_id));
  return buf;
}

}  // namespace

std::string EscapeJsonString(std::string_view value) {
  std::string out;
  out.reserve(value.size());
  for (const char c : value) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\b':
        out += "\\b";
        break;
      case '\f':
        out += "\\f";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string EscapePrometheusLabelValue(std::string_view value) {
  std::string out;
  out.reserve(value.size());
  for (const char c : value) {
    switch (c) {
      case '\\':
        out += "\\\\";
        break;
      case '"':
        out += "\\\"";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        out += c;
    }
  }
  return out;
}

std::string ToPrometheusText(const MetricsSnapshot& snapshot) {
  std::ostringstream out;
  for (const SnapshotCounter& counter : snapshot.counters) {
    out << "# TYPE " << counter.name << " counter\n";
    out << counter.name << " " << counter.value << "\n";
  }
  for (const SnapshotGauge& gauge : snapshot.gauges) {
    out << "# TYPE " << gauge.name << " gauge\n";
    out << gauge.name << " " << FormatDouble(gauge.value) << "\n";
  }
  for (const SnapshotInfo& info : snapshot.infos) {
    out << "# TYPE " << info.name << " gauge\n";
    out << info.name << "{";
    bool first = true;
    for (const auto& [key, value] : info.labels) {
      if (!first) {
        out << ",";
      }
      first = false;
      out << key << "=\"" << EscapePrometheusLabelValue(value) << "\"";
    }
    out << "} 1\n";
  }
  for (const SnapshotHistogram& histogram : snapshot.histograms) {
    out << "# TYPE " << histogram.name << " summary\n";
    out << histogram.name << "{quantile=\"0.5\"} "
        << FormatDouble(histogram.p50) << "\n";
    out << histogram.name << "{quantile=\"0.95\"} "
        << FormatDouble(histogram.p95) << "\n";
    out << histogram.name << "{quantile=\"0.99\"} "
        << FormatDouble(histogram.p99) << "\n";
    out << histogram.name << "_sum " << histogram.sum << "\n";
    out << histogram.name << "_count " << histogram.count;
    if (!histogram.exemplars.empty()) {
      // OpenMetrics exemplar syntax on the count sample; the
      // highest-value (outlier) exemplar is the interesting one.
      const SnapshotExemplar& exemplar = histogram.exemplars.back();
      char ts[32];
      std::snprintf(ts, sizeof(ts), "%.3f",
                    static_cast<double>(exemplar.ts_ns) / 1e9);
      out << " # {trace_id=\"" << TraceIdHex(exemplar.trace_id) << "\"} "
          << exemplar.value << " " << ts;
    }
    out << "\n";
  }
  return out.str();
}

std::string ToJson(const MetricsSnapshot& snapshot) {
  std::ostringstream out;
  out << "{\"counters\":[";
  for (size_t i = 0; i < snapshot.counters.size(); ++i) {
    if (i > 0) {
      out << ",";
    }
    out << "{\"name\":\"" << EscapeJsonString(snapshot.counters[i].name)
        << "\",\"value\":" << snapshot.counters[i].value << "}";
  }
  out << "],\"gauges\":[";
  for (size_t i = 0; i < snapshot.gauges.size(); ++i) {
    if (i > 0) {
      out << ",";
    }
    out << "{\"name\":\"" << EscapeJsonString(snapshot.gauges[i].name)
        << "\",\"value\":" << FormatDouble(snapshot.gauges[i].value) << "}";
  }
  out << "],\"histograms\":[";
  for (size_t i = 0; i < snapshot.histograms.size(); ++i) {
    const SnapshotHistogram& h = snapshot.histograms[i];
    if (i > 0) {
      out << ",";
    }
    out << "{\"name\":\"" << EscapeJsonString(h.name)
        << "\",\"count\":" << h.count
        << ",\"sum\":" << h.sum << ",\"min\":" << h.min << ",\"max\":"
        << h.max << ",\"p50\":" << FormatDouble(h.p50) << ",\"p95\":"
        << FormatDouble(h.p95) << ",\"p99\":" << FormatDouble(h.p99);
    if (!h.exemplars.empty()) {
      out << ",\"exemplars\":[";
      for (size_t j = 0; j < h.exemplars.size(); ++j) {
        if (j > 0) {
          out << ",";
        }
        out << "{\"value\":" << h.exemplars[j].value << ",\"trace_id\":\""
            << TraceIdHex(h.exemplars[j].trace_id)
            << "\",\"ts_ns\":" << h.exemplars[j].ts_ns << "}";
      }
      out << "]";
    }
    out << "}";
  }
  out << "]";
  if (!snapshot.infos.empty()) {
    out << ",\"infos\":[";
    for (size_t i = 0; i < snapshot.infos.size(); ++i) {
      const SnapshotInfo& info = snapshot.infos[i];
      if (i > 0) {
        out << ",";
      }
      out << "{\"name\":\"" << EscapeJsonString(info.name)
          << "\",\"labels\":{";
      for (size_t j = 0; j < info.labels.size(); ++j) {
        if (j > 0) {
          out << ",";
        }
        out << "\"" << EscapeJsonString(info.labels[j].first) << "\":\""
            << EscapeJsonString(info.labels[j].second) << "\"";
      }
      out << "}}";
    }
    out << "]";
  }
  out << "}";
  return out.str();
}

namespace {

/// Tiny recursive-descent parser for the closed snapshot schema.
/// Strings decode the escape sequences ToJson can emit (remote peers
/// are not trusted to stick to registry-legal names).
class SnapshotParser {
 public:
  explicit SnapshotParser(const std::string& text) : text_(text) {}

  Result<MetricsSnapshot> Parse() {
    MetricsSnapshot snapshot;
    SHPIR_RETURN_IF_ERROR(Expect('{'));
    SHPIR_RETURN_IF_ERROR(ExpectKey("counters"));
    SHPIR_RETURN_IF_ERROR(ParseArray([&]() -> Status {
      SnapshotCounter counter;
      SHPIR_RETURN_IF_ERROR(Expect('{'));
      SHPIR_RETURN_IF_ERROR(ExpectKey("name"));
      SHPIR_ASSIGN_OR_RETURN(counter.name, ParseString());
      SHPIR_RETURN_IF_ERROR(Expect(','));
      SHPIR_RETURN_IF_ERROR(ExpectKey("value"));
      SHPIR_ASSIGN_OR_RETURN(counter.value, ParseU64());
      SHPIR_RETURN_IF_ERROR(Expect('}'));
      snapshot.counters.push_back(std::move(counter));
      return OkStatus();
    }));
    SHPIR_RETURN_IF_ERROR(Expect(','));
    SHPIR_RETURN_IF_ERROR(ExpectKey("gauges"));
    SHPIR_RETURN_IF_ERROR(ParseArray([&]() -> Status {
      SnapshotGauge gauge;
      SHPIR_RETURN_IF_ERROR(Expect('{'));
      SHPIR_RETURN_IF_ERROR(ExpectKey("name"));
      SHPIR_ASSIGN_OR_RETURN(gauge.name, ParseString());
      SHPIR_RETURN_IF_ERROR(Expect(','));
      SHPIR_RETURN_IF_ERROR(ExpectKey("value"));
      SHPIR_ASSIGN_OR_RETURN(gauge.value, ParseDouble());
      SHPIR_RETURN_IF_ERROR(Expect('}'));
      snapshot.gauges.push_back(std::move(gauge));
      return OkStatus();
    }));
    SHPIR_RETURN_IF_ERROR(Expect(','));
    SHPIR_RETURN_IF_ERROR(ExpectKey("histograms"));
    SHPIR_RETURN_IF_ERROR(ParseArray([&]() -> Status {
      SnapshotHistogram h;
      SHPIR_RETURN_IF_ERROR(Expect('{'));
      SHPIR_RETURN_IF_ERROR(ExpectKey("name"));
      SHPIR_ASSIGN_OR_RETURN(h.name, ParseString());
      SHPIR_RETURN_IF_ERROR(Expect(','));
      SHPIR_RETURN_IF_ERROR(ExpectKey("count"));
      SHPIR_ASSIGN_OR_RETURN(h.count, ParseU64());
      SHPIR_RETURN_IF_ERROR(Expect(','));
      SHPIR_RETURN_IF_ERROR(ExpectKey("sum"));
      SHPIR_ASSIGN_OR_RETURN(h.sum, ParseU64());
      SHPIR_RETURN_IF_ERROR(Expect(','));
      SHPIR_RETURN_IF_ERROR(ExpectKey("min"));
      SHPIR_ASSIGN_OR_RETURN(h.min, ParseU64());
      SHPIR_RETURN_IF_ERROR(Expect(','));
      SHPIR_RETURN_IF_ERROR(ExpectKey("max"));
      SHPIR_ASSIGN_OR_RETURN(h.max, ParseU64());
      SHPIR_RETURN_IF_ERROR(Expect(','));
      SHPIR_RETURN_IF_ERROR(ExpectKey("p50"));
      SHPIR_ASSIGN_OR_RETURN(h.p50, ParseDouble());
      SHPIR_RETURN_IF_ERROR(Expect(','));
      SHPIR_RETURN_IF_ERROR(ExpectKey("p95"));
      SHPIR_ASSIGN_OR_RETURN(h.p95, ParseDouble());
      SHPIR_RETURN_IF_ERROR(Expect(','));
      SHPIR_RETURN_IF_ERROR(ExpectKey("p99"));
      SHPIR_ASSIGN_OR_RETURN(h.p99, ParseDouble());
      if (ConsumeCommaIfPresent()) {
        SHPIR_RETURN_IF_ERROR(ExpectKey("exemplars"));
        SHPIR_RETURN_IF_ERROR(ParseArray([&]() -> Status {
          SnapshotExemplar exemplar;
          SHPIR_RETURN_IF_ERROR(Expect('{'));
          SHPIR_RETURN_IF_ERROR(ExpectKey("value"));
          SHPIR_ASSIGN_OR_RETURN(exemplar.value, ParseU64());
          SHPIR_RETURN_IF_ERROR(Expect(','));
          SHPIR_RETURN_IF_ERROR(ExpectKey("trace_id"));
          SHPIR_ASSIGN_OR_RETURN(exemplar.trace_id, ParseTraceIdHex());
          SHPIR_RETURN_IF_ERROR(Expect(','));
          SHPIR_RETURN_IF_ERROR(ExpectKey("ts_ns"));
          SHPIR_ASSIGN_OR_RETURN(exemplar.ts_ns, ParseU64());
          SHPIR_RETURN_IF_ERROR(Expect('}'));
          h.exemplars.push_back(exemplar);
          return OkStatus();
        }));
      }
      SHPIR_RETURN_IF_ERROR(Expect('}'));
      snapshot.histograms.push_back(std::move(h));
      return OkStatus();
    }));
    if (ConsumeCommaIfPresent()) {
      SHPIR_RETURN_IF_ERROR(ExpectKey("infos"));
      SHPIR_RETURN_IF_ERROR(ParseArray([&]() -> Status {
        SnapshotInfo info;
        SHPIR_RETURN_IF_ERROR(Expect('{'));
        SHPIR_RETURN_IF_ERROR(ExpectKey("name"));
        SHPIR_ASSIGN_OR_RETURN(info.name, ParseString());
        SHPIR_RETURN_IF_ERROR(Expect(','));
        SHPIR_RETURN_IF_ERROR(ExpectKey("labels"));
        SHPIR_RETURN_IF_ERROR(Expect('{'));
        SkipSpace();
        if (pos_ < text_.size() && text_[pos_] == '}') {
          ++pos_;
        } else {
          while (true) {
            std::pair<std::string, std::string> label;
            SHPIR_ASSIGN_OR_RETURN(label.first, ParseString());
            SHPIR_RETURN_IF_ERROR(Expect(':'));
            SHPIR_ASSIGN_OR_RETURN(label.second, ParseString());
            info.labels.push_back(std::move(label));
            if (ConsumeCommaIfPresent()) {
              continue;
            }
            SHPIR_RETURN_IF_ERROR(Expect('}'));
            break;
          }
        }
        SHPIR_RETURN_IF_ERROR(Expect('}'));
        snapshot.infos.push_back(std::move(info));
        return OkStatus();
      }));
    }
    SHPIR_RETURN_IF_ERROR(Expect('}'));
    SkipSpace();
    if (pos_ != text_.size()) {
      return DataLossError("trailing bytes after snapshot JSON");
    }
    return snapshot;
  }

 private:
  void SkipSpace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_])) != 0) {
      ++pos_;
    }
  }

  /// Consumes a ',' when it is the next token; used for the optional
  /// trailing keys ("exemplars", "infos") that older snapshots omit.
  bool ConsumeCommaIfPresent() {
    SkipSpace();
    if (pos_ < text_.size() && text_[pos_] == ',') {
      ++pos_;
      return true;
    }
    return false;
  }

  /// A 1..16 lowercase-hex-digit string, as TraceIdHex produces.
  Result<uint64_t> ParseTraceIdHex() {
    SHPIR_ASSIGN_OR_RETURN(const std::string hex, ParseString());
    if (hex.empty() || hex.size() > 16) {
      return DataLossError("snapshot JSON: bad trace id length");
    }
    uint64_t value = 0;
    for (const char c : hex) {
      value <<= 4;
      if (c >= '0' && c <= '9') {
        value |= static_cast<uint64_t>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        value |= static_cast<uint64_t>(c - 'a' + 10);
      } else {
        return DataLossError("snapshot JSON: bad trace id digit");
      }
    }
    return value;
  }

  Status Expect(char c) {
    SkipSpace();
    if (pos_ >= text_.size() || text_[pos_] != c) {
      return DataLossError(std::string("snapshot JSON: expected '") + c +
                           "' at offset " + std::to_string(pos_));
    }
    ++pos_;
    return OkStatus();
  }

  Status ExpectKey(const std::string& key) {
    SHPIR_ASSIGN_OR_RETURN(const std::string got, ParseString());
    if (got != key) {
      return DataLossError("snapshot JSON: expected key \"" + key +
                           "\", got \"" + got + "\"");
    }
    return Expect(':');
  }

  Result<std::string> ParseString() {
    SHPIR_RETURN_IF_ERROR(Expect('"'));
    std::string value;
    while (pos_ < text_.size() && text_[pos_] != '"') {
      char c = text_[pos_];
      if (c != '\\') {
        value += c;
        ++pos_;
        continue;
      }
      ++pos_;  // Backslash.
      if (pos_ >= text_.size()) {
        break;  // Unterminated; fall through to the error below.
      }
      const char escape = text_[pos_++];
      switch (escape) {
        case '"':
          value += '"';
          break;
        case '\\':
          value += '\\';
          break;
        case '/':
          value += '/';
          break;
        case 'b':
          value += '\b';
          break;
        case 'f':
          value += '\f';
          break;
        case 'n':
          value += '\n';
          break;
        case 'r':
          value += '\r';
          break;
        case 't':
          value += '\t';
          break;
        case 'u': {
          if (pos_ + 4 > text_.size()) {
            return DataLossError("snapshot JSON: truncated \\u escape");
          }
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_ + static_cast<size_t>(i)];
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code |= static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code |= static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code |= static_cast<unsigned>(h - 'A' + 10);
            } else {
              return DataLossError("snapshot JSON: bad \\u escape");
            }
          }
          pos_ += 4;
          if (code > 0x7f) {
            // ToJson only \u-escapes control characters; anything wider
            // is outside the closed schema.
            return DataLossError(
                "snapshot JSON: non-ASCII \\u escape not supported");
          }
          value += static_cast<char>(code);
          break;
        }
        default:
          return DataLossError("snapshot JSON: unknown escape");
      }
    }
    if (pos_ >= text_.size()) {
      return DataLossError("snapshot JSON: unterminated string");
    }
    ++pos_;  // Closing quote.
    return value;
  }

  Result<uint64_t> ParseU64() {
    SkipSpace();
    const size_t start = pos_;
    while (pos_ < text_.size() &&
           std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0) {
      ++pos_;
    }
    if (pos_ == start) {
      return DataLossError("snapshot JSON: expected integer at offset " +
                           std::to_string(start));
    }
    return std::strtoull(text_.c_str() + start, nullptr, 10);
  }

  Result<double> ParseDouble() {
    SkipSpace();
    const char* begin = text_.c_str() + pos_;
    char* end = nullptr;
    const double value = std::strtod(begin, &end);
    if (end == begin) {
      return DataLossError("snapshot JSON: expected number at offset " +
                           std::to_string(pos_));
    }
    pos_ += static_cast<size_t>(end - begin);
    return value;
  }

  template <typename ElementFn>
  Status ParseArray(ElementFn element) {
    SHPIR_RETURN_IF_ERROR(Expect('['));
    SkipSpace();
    if (pos_ < text_.size() && text_[pos_] == ']') {
      ++pos_;
      return OkStatus();
    }
    while (true) {
      SHPIR_RETURN_IF_ERROR(element());
      SkipSpace();
      if (pos_ < text_.size() && text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      return Expect(']');
    }
  }

  const std::string& text_;
  size_t pos_ = 0;
};

}  // namespace

Result<MetricsSnapshot> ParseJsonSnapshot(const std::string& json) {
  return SnapshotParser(json).Parse();
}

std::string RenderTable(const MetricsSnapshot& snapshot) {
  std::ostringstream out;
  if (!snapshot.counters.empty()) {
    out << "counters:\n";
    for (const SnapshotCounter& counter : snapshot.counters) {
      char line[192];
      std::snprintf(line, sizeof(line), "  %-48s %" PRIu64 "\n",
                    counter.name.c_str(), counter.value);
      out << line;
    }
  }
  if (!snapshot.gauges.empty()) {
    out << "gauges:\n";
    for (const SnapshotGauge& gauge : snapshot.gauges) {
      char line[192];
      std::snprintf(line, sizeof(line), "  %-48s %s\n", gauge.name.c_str(),
                    FormatDouble(gauge.value).c_str());
      out << line;
    }
  }
  if (!snapshot.histograms.empty()) {
    out << "histograms:\n";
    for (const SnapshotHistogram& h : snapshot.histograms) {
      char line[256];
      std::snprintf(line, sizeof(line),
                    "  %-48s count=%" PRIu64 " p50=%.0f p95=%.0f p99=%.0f"
                    " min=%" PRIu64 " max=%" PRIu64 "\n",
                    h.name.c_str(), h.count, h.p50, h.p95, h.p99, h.min,
                    h.max);
      out << line;
    }
  }
  if (out.str().empty()) {
    return "(no metrics)\n";
  }
  return out.str();
}

}  // namespace shpir::obs
