#ifndef SHPIR_OBS_EXPORT_H_
#define SHPIR_OBS_EXPORT_H_

#include <string>
#include <string_view>

#include "common/result.h"
#include "obs/metrics.h"

namespace shpir::obs {

/// Prometheus text exposition (version 0.0.4): counters and gauges as
/// single samples, histograms as summaries with precomputed quantiles.
/// Info metrics render as value-1 gauges with escaped label values;
/// histogram exemplars append OpenMetrics exemplar syntax
/// (` # {trace_id="<16-hex>"} <value> <ts-seconds>`) to the _count
/// sample.
std::string ToPrometheusText(const MetricsSnapshot& snapshot);

/// Compact JSON snapshot — the wire format of the STATS ops:
///   {"counters":[{"name":...,"value":...}],
///    "gauges":[...],
///    "histograms":[{"name":...,"count":...,"sum":...,"min":...,
///                   "max":...,"p50":...,"p95":...,"p99":...,
///                   "exemplars":[{"value":...,"trace_id":"<16-hex>",
///                                 "ts_ns":...}]}],   // when non-empty
///    "infos":[{"name":...,"labels":{...}}]}          // when non-empty
std::string ToJson(const MetricsSnapshot& snapshot);

/// Parses a snapshot produced by ToJson (unknown keys are rejected; the
/// format is a closed schema, not general JSON).
Result<MetricsSnapshot> ParseJsonSnapshot(const std::string& json);

/// Escapes `value` for embedding inside a JSON string literal: quotes,
/// backslashes, and control characters become their escape sequences.
/// Registry names are already [a-z0-9_]-restricted, but values that
/// originate elsewhere (trace span names, remote snapshots) must not be
/// able to break the produced JSON.
std::string EscapeJsonString(std::string_view value);

/// Escapes `value` for a Prometheus/OpenMetrics label value position:
/// backslash, double quote, and newline become \\, \", and \n (the
/// full escape set the exposition formats define). Needed for info
/// metric labels (compiler strings, build flags) and exemplar labels.
std::string EscapePrometheusLabelValue(std::string_view value);

/// Human-readable table for the shpir_stats CLI.
std::string RenderTable(const MetricsSnapshot& snapshot);

}  // namespace shpir::obs

#endif  // SHPIR_OBS_EXPORT_H_
