#include "obs/flight_recorder.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <set>
#include <sstream>
#include <utility>

#include "obs/eventlog.h"
#include "obs/export.h"
#include "obs/metrics.h"
#include "obs/profiler.h"
#include "obs/trace.h"

namespace shpir::obs {

namespace {

uint64_t NowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

std::string RenderIncidentJson(const FlightRecorder::Incident& incident) {
  std::ostringstream out;
  out << "{\"id\":" << incident.id << ",\"sealed_ns\":" << incident.sealed_ns
      << ",\"reason\":\"" << EscapeJsonString(incident.reason)
      << "\",\"trigger_value\":" << incident.trigger_value
      << ",\"config\":\"" << EscapeJsonString(incident.config_fingerprint)
      << "\",\"shape\":\"" << EscapeJsonString(incident.shape)
      << "\",\"events\":" << incident.events_json
      << ",\"spans\":" << incident.spans_json
      << ",\"metrics\":" << incident.metrics_json
      << ",\"profile_collapsed\":\""
      << EscapeJsonString(incident.profile_collapsed) << "\"}";
  return out.str();
}

}  // namespace

FlightRecorder::FlightRecorder(const Options& options) : options_(options) {
  if (options_.spill_dir.empty()) {
    const char* env = std::getenv("SHPIR_INCIDENT_DIR");
    if (env != nullptr && env[0] != '\0') {
      options_.spill_dir = env;
    }
  }
  if (options_.max_incidents == 0) {
    options_.max_incidents = 1;
  }
}

void FlightRecorder::SetConfigFingerprint(std::string fingerprint) {
  common::MutexLock lock(mutex_);
  config_fingerprint_ = std::move(fingerprint);
}

void FlightRecorder::AddTrigger(const char* reason,
                                std::function<uint64_t()> counter) {
  TriggerSource source;
  source.reason = reason;
  source.counter = std::move(counter);
  source.last_value = source.counter ? source.counter() : 0;
  common::MutexLock lock(mutex_);
  triggers_.push_back(std::move(source));
}

size_t FlightRecorder::Poll() {
  polls_.fetch_add(1, std::memory_order_relaxed);
  const char* fire_reason = nullptr;
  uint64_t fire_value = 0;
  std::string fingerprint;
  {
    common::MutexLock lock(mutex_);
    const uint64_t now = NowNs();
    for (TriggerSource& trigger : triggers_) {
      if (!trigger.counter) {
        continue;
      }
      const uint64_t value = trigger.counter();
      const bool edge = value > trigger.last_value;
      trigger.last_value = value;
      if (!edge || fire_reason != nullptr) {
        continue;
      }
      if (now - last_seal_ns_ < options_.min_interval_ns) {
        debounced_.fetch_add(1, std::memory_order_relaxed);
        continue;
      }
      fire_reason = trigger.reason;
      fire_value = value;
    }
    if (fire_reason != nullptr) {
      fingerprint = config_fingerprint_;
    }
  }
  if (fire_reason == nullptr) {
    return 0;
  }
  Store(Capture(fire_reason, fire_value, fingerprint));
  return 1;
}

uint64_t FlightRecorder::Trigger(const char* reason) {
  std::string fingerprint;
  {
    common::MutexLock lock(mutex_);
    fingerprint = config_fingerprint_;
  }
  return Store(Capture(reason, 0, fingerprint));
}

FlightRecorder::Incident FlightRecorder::Capture(
    const char* reason, uint64_t trigger_value,
    const std::string& fingerprint) const {
  Incident incident;
  incident.sealed_ns = NowNs();
  incident.reason = reason;
  incident.trigger_value = trigger_value;
  incident.config_fingerprint = fingerprint;

  // The shape digest aggregates only the secret-independent views of
  // each surface: event shapes, span/stack/metric NAMES — no values,
  // no timings, no counts.
  std::string shape = "reason:";
  shape += reason;
  shape += '\n';

  if (eventlog_ != nullptr) {
    incident.events_json = EventLogJson(*eventlog_);
    shape += EventShape(eventlog_->Snapshot());
  } else {
    incident.events_json = "{}";
  }

  if (tracer_ != nullptr) {
    const std::vector<SpanRecord> spans = tracer_->Snapshot();
    incident.spans_json = ToChromeTraceJson(spans);
    std::set<std::string> names;
    for (const SpanRecord& span : spans) {
      names.insert(span.name);
    }
    for (const std::string& name : names) {
      shape += "span:";
      shape += name;
      shape += '\n';
    }
  } else {
    incident.spans_json = "{}";
  }

  if (metrics_ != nullptr) {
    const MetricsSnapshot snapshot = metrics_->Snapshot();
    incident.metrics_json = ToJson(snapshot);
    for (const SnapshotCounter& c : snapshot.counters) {
      shape += "metric:" + c.name + '\n';
    }
    for (const SnapshotGauge& g : snapshot.gauges) {
      shape += "metric:" + g.name + '\n';
    }
    for (const SnapshotHistogram& h : snapshot.histograms) {
      shape += "metric:" + h.name + '\n';
    }
  } else {
    incident.metrics_json = "{}";
  }

  if (profiler_ != nullptr) {
    incident.profile_collapsed = profiler_->ToCollapsed();
    for (const Profiler::StackSample& sample : profiler_->Snapshot()) {
      shape += "stack:" + sample.stack + '\n';
    }
  }

  incident.shape = std::move(shape);
  return incident;
}

uint64_t FlightRecorder::Store(Incident incident) {
  {
    common::MutexLock lock(mutex_);
    incident.id = next_id_++;
    last_seal_ns_ = incident.sealed_ns;
    incidents_.push_back(incident);
    while (incidents_.size() > options_.max_incidents) {
      incidents_.pop_front();
    }
  }
  sealed_.fetch_add(1, std::memory_order_relaxed);
  Spill(incident);
  return incident.id;
}

void FlightRecorder::Spill(const Incident& incident) const {
  if (options_.spill_dir.empty()) {
    return;
  }
  std::error_code ec;
  std::filesystem::create_directories(options_.spill_dir, ec);
  const std::string path = options_.spill_dir + "/incident_" +
                           std::to_string(incident.id) + ".json";
  std::FILE* file = std::fopen(path.c_str(), "w");
  if (file == nullptr) {
    return;  // Spilling is best-effort; the in-memory store is truth.
  }
  const std::string json = RenderIncidentJson(incident);
  std::fwrite(json.data(), 1, json.size(), file);
  std::fclose(file);
}

std::vector<FlightRecorder::Incident> FlightRecorder::List() const {
  common::MutexLock lock(mutex_);
  return std::vector<Incident>(incidents_.begin(), incidents_.end());
}

std::string FlightRecorder::ListJson() const {
  std::ostringstream out;
  out << "{\"sealed\":" << sealed() << ",\"debounced\":" << debounced()
      << ",\"incidents\":[";
  bool first = true;
  for (const Incident& incident : List()) {
    if (!first) {
      out << ',';
    }
    first = false;
    out << "{\"id\":" << incident.id << ",\"sealed_ns\":"
        << incident.sealed_ns << ",\"reason\":\""
        << EscapeJsonString(incident.reason) << "\",\"trigger_value\":"
        << incident.trigger_value << "}";
  }
  out << "]}";
  return out.str();
}

std::string FlightRecorder::ShowJson(uint64_t id) const {
  Incident incident;
  bool found = false;
  {
    common::MutexLock lock(mutex_);
    for (const Incident& stored : incidents_) {
      if (stored.id == id) {
        incident = stored;
        found = true;
        break;
      }
    }
  }
  if (!found) {
    return "";
  }
  return RenderIncidentJson(incident);
}

void FlightRecorder::PublishMetrics(MetricsRegistry* registry) {
  if (registry == nullptr) {
    return;
  }
  registry->RegisterCallbackGauge(
      "shpir_incident_sealed_total",
      [this] { return static_cast<double>(sealed()); });
  registry->RegisterCallbackGauge(
      "shpir_incident_debounced_total",
      [this] { return static_cast<double>(debounced()); });
  registry->RegisterCallbackGauge(
      "shpir_incident_polls_total",
      [this] { return static_cast<double>(polls()); });
  registry->RegisterCallbackGauge("shpir_incident_stored", [this] {
    common::MutexLock lock(mutex_);
    return static_cast<double>(incidents_.size());
  });
}

}  // namespace shpir::obs
