#ifndef SHPIR_OBS_FLIGHT_RECORDER_H_
#define SHPIR_OBS_FLIGHT_RECORDER_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <string>
#include <vector>

#include "common/mutex.h"

namespace shpir::obs {

class EventLog;
class MetricsRegistry;
class Profiler;
class Tracer;

/// Black-box incident recorder. The other pillars answer "how is the
/// system doing"; the flight recorder answers "what was happening when
/// it went wrong". Edge-triggered signals — a privacy-monitor breach,
/// an SLO burn alert, a dispatcher overload spike, or a manual
/// trigger — seal an *incident bundle*: the recent event log, the
/// recent span buffer, a full metrics snapshot, a profiler fold, and
/// the config fingerprint, all captured at the moment of the trigger.
/// Bundles live in a bounded store of the last K incidents (oldest
/// evicted) and can optionally be spilled to disk for CI artifact
/// upload (SHPIR_INCIDENT_DIR).
///
/// Trust boundary: a bundle is an aggregation of surfaces that are
/// each already secret-independent (event shapes, span shapes,
/// aggregate metrics, profile folds, public config), so the bundle
/// itself is — tests/incident_shape_test.cc proves bundles are
/// shape-identical across secret targets.
class FlightRecorder {
 public:
  struct Options {
    /// Bounded store: only the most recent `max_incidents` bundles are
    /// kept.
    size_t max_incidents = 8;
    /// Debounce between automatic seals; a trigger edge inside the
    /// window is counted in debounced() but seals nothing. Manual
    /// Trigger() ignores the debounce.
    uint64_t min_interval_ns = 1000000000ULL;
    /// Directory to also write each bundle to as
    /// incident_<id>.json; empty = use $SHPIR_INCIDENT_DIR, and skip
    /// spilling when that is unset too.
    std::string spill_dir;
  };

  explicit FlightRecorder(const Options& options);
  FlightRecorder() : FlightRecorder(Options{}) {}

  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;

  /// Attach the surfaces a bundle captures. All optional; attach
  /// before the first Poll()/Trigger() and keep alive for the
  /// recorder's lifetime.
  void AttachEventLog(const EventLog* log) { eventlog_ = log; }
  void AttachTracer(const Tracer* tracer) { tracer_ = tracer; }
  void AttachMetrics(const MetricsRegistry* metrics) { metrics_ = metrics; }
  void AttachProfiler(const Profiler* profiler) { profiler_ = profiler; }
  /// Public build/config description ("pages=4096 k=16 c=2.0 ...").
  void SetConfigFingerprint(std::string fingerprint);

  /// Registers an edge trigger: `counter` is read on every Poll() and
  /// an increase over its last-seen value seals a bundle (subject to
  /// the debounce). `reason` must be a string literal.
  void AddTrigger(const char* reason, std::function<uint64_t()> counter);

  /// Reads every trigger counter; seals at most one bundle per call
  /// (the first fired trigger wins; later edges fire on the next
  /// poll). Returns the number of bundles sealed (0 or 1). Cheap when
  /// nothing fired: one mutex and one counter read per trigger.
  size_t Poll();

  /// Seals a bundle unconditionally. Returns the incident id.
  uint64_t Trigger(const char* reason);

  /// One sealed bundle. `shape` is the secret-independence digest
  /// computed at seal time (reason + event shape + sorted span names +
  /// metric names) — byte-identical across secret targets.
  struct Incident {
    uint64_t id = 0;
    uint64_t sealed_ns = 0;
    std::string reason;
    uint64_t trigger_value = 0;
    std::string config_fingerprint;
    std::string events_json;
    std::string spans_json;
    std::string metrics_json;
    std::string profile_collapsed;
    std::string shape;
  };

  /// Copies of the stored bundles, oldest first.
  std::vector<Incident> List() const;

  /// Summary JSON for INCIDENT_DUMP list mode:
  ///   {"sealed":N,"debounced":N,"incidents":[{"id":..,"sealed_ns":..,
  ///    "reason":"..","trigger_value":..}]}
  std::string ListJson() const;

  /// Full bundle JSON for show mode; empty string when `id` is not in
  /// the store (evicted or never sealed).
  std::string ShowJson(uint64_t id) const;

  uint64_t sealed() const { return sealed_.load(std::memory_order_relaxed); }
  uint64_t debounced() const {
    return debounced_.load(std::memory_order_relaxed);
  }
  uint64_t polls() const { return polls_.load(std::memory_order_relaxed); }

  const Options& options() const { return options_; }

  /// Registers shpir_incident_* callback gauges on `registry`.
  void PublishMetrics(MetricsRegistry* registry);

 private:
  struct TriggerSource {
    const char* reason = "";
    std::function<uint64_t()> counter;
    uint64_t last_value = 0;
  };

  Incident Capture(const char* reason, uint64_t trigger_value,
                   const std::string& fingerprint) const;
  uint64_t Store(Incident incident) EXCLUDES(mutex_);
  void Spill(const Incident& incident) const;

  Options options_;
  const EventLog* eventlog_ = nullptr;
  const Tracer* tracer_ = nullptr;
  const MetricsRegistry* metrics_ = nullptr;
  const Profiler* profiler_ = nullptr;

  mutable common::Mutex mutex_;
  std::string config_fingerprint_ GUARDED_BY(mutex_);
  std::vector<TriggerSource> triggers_ GUARDED_BY(mutex_);
  std::deque<Incident> incidents_ GUARDED_BY(mutex_);
  uint64_t next_id_ GUARDED_BY(mutex_) = 1;
  uint64_t last_seal_ns_ GUARDED_BY(mutex_) = 0;
  std::atomic<uint64_t> sealed_{0};
  std::atomic<uint64_t> debounced_{0};
  std::atomic<uint64_t> polls_{0};
};

}  // namespace shpir::obs

#endif  // SHPIR_OBS_FLIGHT_RECORDER_H_
