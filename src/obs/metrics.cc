#include "obs/metrics.h"

#include <algorithm>
#include <chrono>

#include "common/check.h"

namespace shpir::obs {

namespace {

// CAS loop updating an atomic with min/max semantics.
template <typename Cmp>
void AtomicExtreme(std::atomic<uint64_t>& slot, uint64_t value, Cmp better) {
  uint64_t observed = slot.load(std::memory_order_relaxed);
  while (better(value, observed) &&
         !slot.compare_exchange_weak(observed, value,
                                     std::memory_order_relaxed)) {
  }
}

}  // namespace

void Histogram::Record(uint64_t value) {
  buckets_[static_cast<size_t>(BucketIndex(value))].fetch_add(
      1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(value, std::memory_order_relaxed);
  AtomicExtreme(min_, value, std::less<uint64_t>());
  AtomicExtreme(max_, value, std::greater<uint64_t>());
}

void Histogram::RecordWithExemplar(uint64_t value, uint64_t trace_id) {
  Record(value);
  if (trace_id == 0) {
    return;
  }
  const int slot = BucketIndex(value) * kExemplarSlots / kNumBuckets;
  const uint64_t now_ns = static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
  common::MutexLock lock(exemplar_mutex_);
  ExemplarSlot& exemplar = exemplar_slots_[static_cast<size_t>(slot)];
  exemplar.value = value;
  exemplar.trace_id = trace_id;
  exemplar.ts_ns = now_ns;
  exemplar.used = true;
}

uint64_t Histogram::Min() const {
  const uint64_t v = min_.load(std::memory_order_relaxed);
  return v == UINT64_MAX ? 0 : v;
}

uint64_t Histogram::Max() const {
  return max_.load(std::memory_order_relaxed);
}

int Histogram::BucketIndex(uint64_t value) {
  if (value < kLinearBuckets) {
    return static_cast<int>(value);
  }
  const int exponent = 63 - std::countl_zero(value);  // >= 4.
  const int sub = static_cast<int>((value >> (exponent - 2)) & 3);
  return kLinearBuckets + (exponent - 4) * kSubBuckets + sub;
}

uint64_t Histogram::BucketLowerBound(int index) {
  if (index < kLinearBuckets) {
    return static_cast<uint64_t>(index);
  }
  const int exponent = 4 + (index - kLinearBuckets) / kSubBuckets;
  const int sub = (index - kLinearBuckets) % kSubBuckets;
  return (uint64_t{1} << exponent) +
         static_cast<uint64_t>(sub) * (uint64_t{1} << (exponent - 2));
}

uint64_t Histogram::BucketUpperBound(int index) {
  if (index < kLinearBuckets) {
    return static_cast<uint64_t>(index);
  }
  const int exponent = 4 + (index - kLinearBuckets) / kSubBuckets;
  const int sub = (index - kLinearBuckets) % kSubBuckets;
  return (uint64_t{1} << exponent) +
         static_cast<uint64_t>(sub + 1) * (uint64_t{1} << (exponent - 2)) - 1;
}

double Histogram::Quantile(double q) const {
  q = std::clamp(q, 0.0, 1.0);
  // Use the bucket totals themselves so the scan is self-consistent even
  // while other threads record.
  std::array<uint64_t, kNumBuckets> copy;
  uint64_t total = 0;
  for (int i = 0; i < kNumBuckets; ++i) {
    copy[static_cast<size_t>(i)] =
        buckets_[static_cast<size_t>(i)].load(std::memory_order_relaxed);
    total += copy[static_cast<size_t>(i)];
  }
  if (total == 0) {
    return 0.0;
  }
  // Rank of the q-quantile order statistic (nearest-rank definition).
  uint64_t rank = static_cast<uint64_t>(q * static_cast<double>(total - 1));
  for (int i = 0; i < kNumBuckets; ++i) {
    const uint64_t in_bucket = copy[static_cast<size_t>(i)];
    if (rank < in_bucket) {
      const double mid = (static_cast<double>(BucketLowerBound(i)) +
                          static_cast<double>(BucketUpperBound(i))) /
                         2.0;
      return std::clamp(mid, static_cast<double>(Min()),
                        static_cast<double>(Max()));
    }
    rank -= in_bucket;
  }
  return static_cast<double>(Max());
}

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

bool MetricsRegistry::IsValidName(std::string_view name) {
  if (name.empty() || name.size() > 120) {
    return false;
  }
  if (name.front() < 'a' || name.front() > 'z') {
    return false;
  }
  for (const char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') ||
                    c == '_';
    if (!ok) {
      return false;
    }
  }
  // Aggregate-only vocabulary: identifier-bearing names are the easiest
  // way to leak a per-request value through the stats surface.
  for (const std::string_view forbidden :
       {"page_id", "request_index", "client_id"}) {
    if (name.find(forbidden) != std::string_view::npos) {
      return false;
    }
  }
  return true;
}

Counter* MetricsRegistry::FindOrCreateCounter(std::string_view name) {
  SHPIR_CHECK(IsValidName(name));
  common::MutexLock lock(mutex_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string(name),
                           std::unique_ptr<Counter>(new Counter()))
             .first;
  }
  return it->second.get();
}

Gauge* MetricsRegistry::FindOrCreateGauge(std::string_view name) {
  SHPIR_CHECK(IsValidName(name));
  common::MutexLock lock(mutex_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(std::string(name),
                         std::unique_ptr<Gauge>(new Gauge()))
             .first;
  }
  return it->second.get();
}

Histogram* MetricsRegistry::FindOrCreateHistogram(std::string_view name) {
  SHPIR_CHECK(IsValidName(name));
  common::MutexLock lock(mutex_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_.emplace(std::string(name),
                             std::unique_ptr<Histogram>(new Histogram()))
             .first;
  }
  return it->second.get();
}

void MetricsRegistry::RegisterCallbackGauge(std::string_view name,
                                            std::function<double()> callback) {
  SHPIR_CHECK(IsValidName(name));
  SHPIR_CHECK(callback != nullptr);
  common::MutexLock lock(mutex_);
  callback_gauges_[std::string(name)] = std::move(callback);
}

void MetricsRegistry::RegisterInfo(
    std::string_view name,
    std::vector<std::pair<std::string, std::string>> labels) {
  SHPIR_CHECK(IsValidName(name));
  for (const auto& [key, value] : labels) {
    SHPIR_CHECK(IsValidName(key));
    (void)value;  // Free-form; exporters escape it.
  }
  common::MutexLock lock(mutex_);
  infos_[std::string(name)] = std::move(labels);
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  common::MutexLock lock(mutex_);
  MetricsSnapshot snapshot;
  snapshot.counters.reserve(counters_.size());
  for (const auto& [name, counter] : counters_) {
    snapshot.counters.push_back({name, counter->Value()});
  }
  snapshot.gauges.reserve(gauges_.size() + callback_gauges_.size());
  for (const auto& [name, gauge] : gauges_) {
    snapshot.gauges.push_back({name, gauge->Value()});
  }
  for (const auto& [name, callback] : callback_gauges_) {
    snapshot.gauges.push_back({name, callback()});
  }
  std::sort(snapshot.gauges.begin(), snapshot.gauges.end(),
            [](const SnapshotGauge& a, const SnapshotGauge& b) {
              return a.name < b.name;
            });
  snapshot.histograms.reserve(histograms_.size());
  for (const auto& [name, histogram] : histograms_) {
    SnapshotHistogram h;
    h.name = name;
    h.count = histogram->Count();
    h.sum = histogram->Sum();
    h.min = histogram->Min();
    h.max = histogram->Max();
    h.p50 = histogram->Quantile(0.50);
    h.p95 = histogram->Quantile(0.95);
    h.p99 = histogram->Quantile(0.99);
    {
      common::MutexLock exemplar_lock(histogram->exemplar_mutex_);
      for (const Histogram::ExemplarSlot& slot : histogram->exemplar_slots_) {
        if (slot.used) {
          h.exemplars.push_back({slot.value, slot.trace_id, slot.ts_ns});
        }
      }
    }
    std::sort(h.exemplars.begin(), h.exemplars.end(),
              [](const SnapshotExemplar& a, const SnapshotExemplar& b) {
                return a.value < b.value;
              });
    snapshot.histograms.push_back(std::move(h));
  }
  snapshot.infos.reserve(infos_.size());
  for (const auto& [name, labels] : infos_) {
    snapshot.infos.push_back({name, labels});
  }
  return snapshot;
}

}  // namespace shpir::obs
