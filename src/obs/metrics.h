#ifndef SHPIR_OBS_METRICS_H_
#define SHPIR_OBS_METRICS_H_

#include <array>
#include <atomic>
#include <bit>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/mutex.h"

namespace shpir::obs {

/// Monotonic event counter. Increment is a single relaxed atomic add, so
/// instrumented hot paths pay a few nanoseconds and never block.
class Counter {
 public:
  void Increment(uint64_t delta = 1) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  uint64_t Value() const { return value_.load(std::memory_order_relaxed); }

 private:
  friend class MetricsRegistry;
  Counter() = default;
  std::atomic<uint64_t> value_{0};
};

/// Last-value gauge (double). Stored as bit-cast uint64 so Set/Value work
/// on any platform without atomic<double> arithmetic support.
class Gauge {
 public:
  void Set(double value) {
    bits_.store(std::bit_cast<uint64_t>(value), std::memory_order_relaxed);
  }
  void Add(double delta) {
    uint64_t observed = bits_.load(std::memory_order_relaxed);
    while (!bits_.compare_exchange_weak(
        observed, std::bit_cast<uint64_t>(std::bit_cast<double>(observed) + delta),
        std::memory_order_relaxed)) {
    }
  }
  double Value() const {
    return std::bit_cast<double>(bits_.load(std::memory_order_relaxed));
  }

 private:
  friend class MetricsRegistry;
  Gauge() = default;
  std::atomic<uint64_t> bits_{0};  // bit_cast of 0.0.
};

/// Fixed-footprint log-linear histogram over uint64 values (HdrHistogram
/// style): values below 16 get exact buckets; every power-of-two octave
/// above is split into 4 sub-buckets, so any estimate is within 25% of
/// the recorded value. Record() is a handful of relaxed atomic ops — no
/// allocation, no locks — which is what lets it sit on the query hot
/// path.
class Histogram {
 public:
  static constexpr int kLinearBuckets = 16;
  static constexpr int kSubBuckets = 4;
  static constexpr int kNumBuckets =
      kLinearBuckets + (64 - 4) * kSubBuckets;  // 256.
  /// Exemplar slots, one per quarter of the bucket range, so both
  /// typical and outlier observations keep a representative.
  static constexpr int kExemplarSlots = 4;

  void Record(uint64_t value);

  /// Record() plus exemplar retention: remembers (value, trace_id) in
  /// the slot covering the value's bucket zone, overwriting the slot's
  /// previous exemplar. Call only for traced observations — trace ids
  /// are public (they name sampled spans), and the slot update takes a
  /// mutex the plain Record() path never touches.
  void RecordWithExemplar(uint64_t value, uint64_t trace_id);

  uint64_t Count() const { return count_.load(std::memory_order_relaxed); }
  /// Sum of recorded values (saturating at 2^64 like any counter).
  uint64_t Sum() const { return sum_.load(std::memory_order_relaxed); }
  uint64_t Min() const;  // 0 when empty.
  uint64_t Max() const;  // 0 when empty.

  /// Estimated q-quantile (q in [0,1]): the midpoint of the bucket
  /// holding the rank-q value, clamped to [Min, Max]. Within one bucket
  /// (<= 25% relative error) of the exact order statistic.
  double Quantile(double q) const;

  /// Bucket geometry, exposed for tests.
  static int BucketIndex(uint64_t value);
  static uint64_t BucketLowerBound(int index);
  static uint64_t BucketUpperBound(int index);

 private:
  friend class MetricsRegistry;
  Histogram() = default;

  struct ExemplarSlot {
    uint64_t value = 0;
    uint64_t trace_id = 0;
    uint64_t ts_ns = 0;
    bool used = false;
  };

  std::array<std::atomic<uint64_t>, kNumBuckets> buckets_{};
  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> sum_{0};
  std::atomic<uint64_t> min_{UINT64_MAX};
  std::atomic<uint64_t> max_{0};
  mutable common::Mutex exemplar_mutex_;
  std::array<ExemplarSlot, kExemplarSlots> exemplar_slots_
      GUARDED_BY(exemplar_mutex_);
};

/// One exported counter/gauge/histogram, aggregate-only by construction:
/// the snapshot model has no labels, so per-request values (page ids,
/// request indices, client ids) cannot be attached to a metric even by
/// accident. This is the mechanism behind the trust-boundary rule in
/// docs/OBSERVABILITY.md.
struct SnapshotCounter {
  std::string name;
  uint64_t value = 0;
};

struct SnapshotGauge {
  std::string name;
  double value = 0;
};

/// One retained observation with the public trace id that produced it
/// — the handle that closes the metric → trace loop
/// (`shpir_trace --lookup <trace-id>`). Values are aggregates and
/// trace ids name sampled spans; nothing here is per-request secret
/// state.
struct SnapshotExemplar {
  uint64_t value = 0;
  uint64_t trace_id = 0;
  uint64_t ts_ns = 0;
};

struct SnapshotHistogram {
  std::string name;
  uint64_t count = 0;
  uint64_t sum = 0;
  uint64_t min = 0;
  uint64_t max = 0;
  double p50 = 0;
  double p95 = 0;
  double p99 = 0;
  std::vector<SnapshotExemplar> exemplars;  // Ascending by value.
};

/// A constant "info" metric: a value-1 gauge whose labels carry
/// build/deploy identity (version, git sha, compiler). Label values
/// are free-form strings, so exporters must escape them.
struct SnapshotInfo {
  std::string name;
  std::vector<std::pair<std::string, std::string>> labels;
};

struct MetricsSnapshot {
  std::vector<SnapshotCounter> counters;
  std::vector<SnapshotGauge> gauges;
  std::vector<SnapshotHistogram> histograms;
  std::vector<SnapshotInfo> infos;
};

/// Thread-safe registry of named instruments. Lookups (FindOrCreate*)
/// take a mutex and should happen once at attach time; the returned
/// pointers are stable for the registry's lifetime and are lock-free to
/// update. Metric names must match [a-z][a-z0-9_]* and must not carry
/// per-request identifier names (see IsValidName) — the registry aborts
/// on violation, because a bad name is a programming error that could
/// widen the side channel the c-approximate guarantee bounds.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Process-wide default registry (what the CLI tools export).
  static MetricsRegistry& Global();

  Counter* FindOrCreateCounter(std::string_view name);
  Gauge* FindOrCreateGauge(std::string_view name);
  Histogram* FindOrCreateHistogram(std::string_view name);

  /// Registers a gauge whose value is computed at snapshot time. The
  /// callback must stay valid for the registry's lifetime and must be
  /// safe to call from the snapshotting thread.
  void RegisterCallbackGauge(std::string_view name,
                             std::function<double()> callback);

  /// Registers a constant info metric (value-1 gauge with identity
  /// labels, e.g. shpir_build_info). Name and label keys must pass
  /// IsValidName; label values are arbitrary but must be build/deploy
  /// constants, never per-request state. Re-registering a name
  /// replaces its labels.
  void RegisterInfo(std::string_view name,
                    std::vector<std::pair<std::string, std::string>> labels);

  /// Consistent-enough point-in-time copy of every instrument, sorted by
  /// name. Counters/histograms are read with relaxed atomics; callback
  /// gauges are evaluated inline.
  MetricsSnapshot Snapshot() const;

  /// True for names matching [a-z][a-z0-9_]* that do not embed
  /// per-request identifier vocabulary ("page_id", "request_index",
  /// "client_id").
  static bool IsValidName(std::string_view name);

 private:
  mutable common::Mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_
      GUARDED_BY(mutex_);
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_
      GUARDED_BY(mutex_);
  std::map<std::string, std::function<double()>, std::less<>> callback_gauges_
      GUARDED_BY(mutex_);
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_
      GUARDED_BY(mutex_);
  std::map<std::string, std::vector<std::pair<std::string, std::string>>,
           std::less<>>
      infos_ GUARDED_BY(mutex_);
};

}  // namespace shpir::obs

#endif  // SHPIR_OBS_METRICS_H_
