#include "obs/privacy_monitor.h"

#include <algorithm>

#include "common/check.h"

namespace shpir::obs {

PrivacyMonitor::PrivacyMonitor(const Options& options)
    : options_(options), scan_period_(options.scan_period) {
  SHPIR_CHECK(options_.scan_period > 0);
  SHPIR_CHECK(options_.window > 0);
  common::MutexLock lock(mutex_);
  offset_counts_.assign(scan_period_, 0);
  window_ring_.assign(options_.window, 0);
}

void PrivacyMonitor::OnCacheEntry(uint64_t id, uint64_t request_index) {
  common::MutexLock lock(mutex_);
  entry_request_[id] = request_index;
}

void PrivacyMonitor::OnRelocation(uint64_t id, uint64_t request_index) {
  common::MutexLock lock(mutex_);
  auto it = entry_request_.find(id);
  // shpir-lint-allow-next-line(secret-branch, secret-compare): the monitor audits the provider-visible relocation stream (Eq. 5); per-id bookkeeping here observes nothing the adversary cannot
  if (it == entry_request_.end()) {
    return;  // Entered the cache before monitoring began.
  }
  const uint64_t delay = request_index - it->second;
  entry_request_.erase(it);
  // shpir-lint-allow-next-line(secret-branch, secret-compare): same-request enter+evict filter, mirrored from the offline RelocationAnalyzer
  if (delay == 0) {
    // Same-request enter+evict: the page never resided across requests,
    // so it contributes nothing to the residency distribution (the
    // offline RelocationAnalyzer skips these identically).
    return;
  }
  // The binning of Eq. 5: residency delay folded onto the scan period.
  // The delay is secret-derived; the audited aggregation below is the
  // monitor's entire purpose — per-sample data never leaves this class,
  // only >= window-sized bin statistics do.
  const uint64_t offset = (delay - 1) % scan_period_;
  if (windowed_ == options_.window) {
    // Slide: the oldest sample leaves its bin.
    // shpir-lint-allow-next-line(secret-index): sliding-window eviction of the same audited histogram
    --offset_counts_[window_ring_[window_pos_]];
  } else {
    ++windowed_;
  }
  // shpir-lint-allow-next-line(secret-index): Eq. 5 residency histogram bin update; only window aggregates are ever published
  ++offset_counts_[offset];
  window_ring_[window_pos_] = offset;
  window_pos_ = (window_pos_ + 1) % options_.window;
  ++total_;
  if (relocation_counter_ != nullptr) {
    relocation_counter_->Increment();
  }
  if (total_ % options_.check_interval == 0) {
    CheckLocked();
  }
}

void PrivacyMonitor::OnScanPeriodChange(uint64_t new_scan_period) {
  SHPIR_CHECK(new_scan_period > 0);
  common::MutexLock lock(mutex_);
  if (new_scan_period == scan_period_) {
    return;
  }
  scan_period_ = new_scan_period;
  ++rebases_;
  // Samples binned mod the old T say nothing about the new residency
  // distribution: restart the window. `entry_request_` survives — the
  // pages still resident will relocate later and their delays fold
  // correctly under the new period.
  offset_counts_.assign(scan_period_, 0);
  window_ring_.assign(options_.window, 0);
  window_pos_ = 0;
  windowed_ = 0;
  // An estimate computed over the old bins must neither linger on the
  // gauge nor hold the breach latch: reset both so the first
  // post-retune breach is a genuine edge.
  in_breach_ = false;
  if (c_gauge_ != nullptr) {
    c_gauge_->Set(0.0);
  }
}

uint64_t PrivacyMonitor::scan_period() const {
  common::MutexLock lock(mutex_);
  return scan_period_;
}

uint64_t PrivacyMonitor::rebases() const {
  common::MutexLock lock(mutex_);
  return rebases_;
}

double PrivacyMonitor::EstimateLocked() const {
  uint64_t min_count = 0;
  uint64_t max_count = 0;
  bool first = true;
  for (const uint64_t count : offset_counts_) {
    if (first) {
      min_count = max_count = count;
      first = false;
    } else {
      min_count = std::min(min_count, count);
      max_count = std::max(max_count, count);
    }
  }
  if (min_count == 0) {
    return 0.0;  // Some bin is empty: not enough data yet.
  }
  return static_cast<double>(max_count) / static_cast<double>(min_count);
}

void PrivacyMonitor::CheckLocked() {
  const double estimate = EstimateLocked();
  if (c_gauge_ != nullptr) {
    // The estimate aggregates >= check_interval (typically >= window)
    // relocations; publishing it is this monitor's contract.
    c_gauge_->Set(estimate);
  }
  if (options_.configured_c > 0.0 && estimate > 0.0) {
    if (estimate > options_.configured_c) {
      if (!in_breach_) {
        in_breach_ = true;
        ++breaches_;
        if (breach_counter_ != nullptr) {
          breach_counter_->Increment();
        }
      }
    } else {
      in_breach_ = false;
    }
  }
}

Result<double> PrivacyMonitor::Estimate() const {
  common::MutexLock lock(mutex_);
  const double estimate = EstimateLocked();
  if (estimate == 0.0) {
    return FailedPreconditionError(
        "privacy monitor: window does not yet cover every residency bin");
  }
  return estimate;
}

double PrivacyMonitor::EstimateOrZero() const {
  common::MutexLock lock(mutex_);
  return EstimateLocked();
}

void PrivacyMonitor::EnableMetrics(MetricsRegistry* registry) {
  common::MutexLock lock(mutex_);
  if (registry == nullptr) {
    c_gauge_ = nullptr;
    breach_counter_ = nullptr;
    relocation_counter_ = nullptr;
    return;
  }
  c_gauge_ = registry->FindOrCreateGauge("shpir_privacy_c_estimate");
  breach_counter_ =
      registry->FindOrCreateCounter("shpir_privacy_breaches_total");
  relocation_counter_ =
      registry->FindOrCreateCounter("shpir_privacy_relocations_total");
  c_gauge_->Set(0.0);
}

void PrivacyMonitor::PublishNow() {
  common::MutexLock lock(mutex_);
  CheckLocked();
}

uint64_t PrivacyMonitor::relocations() const {
  common::MutexLock lock(mutex_);
  return total_;
}

uint64_t PrivacyMonitor::breaches() const {
  common::MutexLock lock(mutex_);
  return breaches_;
}

}  // namespace shpir::obs
