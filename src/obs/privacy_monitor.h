#ifndef SHPIR_OBS_PRIVACY_MONITOR_H_
#define SHPIR_OBS_PRIVACY_MONITOR_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/mutex.h"
#include "common/result.h"
#include "common/secret.h"
#include "obs/metrics.h"

namespace shpir::obs {

/// Online privacy monitor: the runtime counterpart of the offline
/// privacy audit (src/analysis/relocation_analyzer.h). The engine's
/// statically configured c (Eq. 6 picks k from it) is a *promise*; this
/// monitor measures what the running system actually delivers, live.
///
/// It maintains a sliding window over the engine's relocations. For
/// each relocated page it bins the cache residency delay — the number
/// of requests between the page entering the cache and being evicted
/// back to disk — by `offset = (delay - 1) mod T` (T = scan period),
/// exactly the statistic whose max/min ratio Eq. 5 bounds by c. The
/// ratio over the current window is the empirical c-estimate published
/// as the `shpir_privacy_c_estimate` gauge; crossing the configured c
/// bumps `shpir_privacy_breaches_total`.
///
/// Trust boundary: the monitor runs INSIDE the coprocessor boundary —
/// its inputs (page ids, request indices) are secrets and its
/// `entry_request_` map is secret state. Only window aggregates leave:
/// the c-estimate and breach count summarize >= `window` relocations
/// and reveal nothing about any single request (they are statistics of
/// the very distribution Eq. 5 already publishes a bound on).
///
/// Thread safety: all entry points lock, so one monitor can serve an
/// engine whose observers fire on a shard worker while another thread
/// snapshots the estimate.
class PrivacyMonitor {
 public:
  struct Options {
    /// The engine's scan period T = disk_slots / k. Required non-zero.
    uint64_t scan_period = 0;
    /// Sliding window size in relocations. Smaller windows react faster
    /// but need ~window >= 50 * T samples for a stable estimate.
    uint64_t window = 1 << 16;
    /// Configured privacy parameter c; estimates above it count as
    /// breaches. 0 disables breach detection.
    double configured_c = 0.0;
    /// Breach detection and gauge refresh run every `check_interval`
    /// relocations (the estimate scan is O(T); amortize it).
    uint64_t check_interval = 256;
  };

  explicit PrivacyMonitor(const Options& options);

  PrivacyMonitor(const PrivacyMonitor&) = delete;
  PrivacyMonitor& operator=(const PrivacyMonitor&) = delete;

  /// Wire these to CApproxPir::AttachPrivacyMonitor (or call them from
  /// analysis observers). `id`/`request_index` stay inside the monitor.
  void OnCacheEntry(uint64_t id, uint64_t request_index);
  void OnRelocation(uint64_t id, uint64_t request_index);

  /// Rebase after an online block-size retune changed the engine's scan
  /// period T. The residency histogram folds delays mod T, so samples
  /// binned under the old T are meaningless under the new one: the bins
  /// and the sliding window are discarded (Estimate() returns
  /// FailedPrecondition again until every new bin has a sample) and the
  /// breach latch resets — a retune must never manufacture a spurious
  /// breach or serve a stale estimate. Pages currently resident in the
  /// cache are kept: their entry indices stay valid and their eventual
  /// relocations are binned under the new period. No-op when the period
  /// is unchanged.
  void OnScanPeriodChange(uint64_t new_scan_period);

  /// Scan period currently in effect (tracks OnScanPeriodChange).
  uint64_t scan_period() const;
  /// Number of scan-period rebases over the monitor's lifetime.
  uint64_t rebases() const;

  /// Empirical c over the current window: max/min of the offset bins.
  /// FailedPrecondition until every bin has at least one sample.
  Result<double> Estimate() const;

  /// Estimate(), or 0.0 while there is not yet enough data.
  double EstimateOrZero() const;

  /// Registers `shpir_privacy_c_estimate` (gauge, refreshed every
  /// check_interval relocations and on PublishNow) plus the
  /// `shpir_privacy_breaches_total` and
  /// `shpir_privacy_relocations_total` counters. Pass nullptr to
  /// detach. For a fleet of per-shard monitors sharing the instruments,
  /// attach the same registry to each: the gauge then tracks the most
  /// recently refreshed shard and the counters aggregate.
  void EnableMetrics(MetricsRegistry* registry);

  /// Forces a gauge refresh + breach check now (deterministic tests,
  /// pre-snapshot refresh).
  void PublishNow();

  uint64_t relocations() const;
  uint64_t breaches() const;
  const Options& options() const { return options_; }

 private:
  double EstimateLocked() const REQUIRES(mutex_);
  void CheckLocked() REQUIRES(mutex_);

  const Options options_;
  mutable common::Mutex mutex_;
  /// Live scan period; starts at options_.scan_period and tracks
  /// OnScanPeriodChange.
  uint64_t scan_period_ GUARDED_BY(mutex_);
  uint64_t rebases_ GUARDED_BY(mutex_) = 0;
  /// Secret state: when each page entered the cache. Everything derived
  /// from it stays under the lock until aggregated over the window.
  SHPIR_SECRET std::unordered_map<uint64_t, uint64_t> entry_request_
      GUARDED_BY(mutex_);
  std::vector<uint64_t> offset_counts_ GUARDED_BY(mutex_);  // T bins.
  std::vector<uint64_t> window_ring_ GUARDED_BY(mutex_);    // Offsets.
  size_t window_pos_ GUARDED_BY(mutex_) = 0;
  uint64_t windowed_ GUARDED_BY(mutex_) = 0;  // Samples currently held.
  uint64_t total_ GUARDED_BY(mutex_) = 0;
  uint64_t breaches_ GUARDED_BY(mutex_) = 0;
  bool in_breach_ GUARDED_BY(mutex_) = false;

  Gauge* c_gauge_ GUARDED_BY(mutex_) = nullptr;
  Counter* breach_counter_ GUARDED_BY(mutex_) = nullptr;
  Counter* relocation_counter_ GUARDED_BY(mutex_) = nullptr;
};

}  // namespace shpir::obs

#endif  // SHPIR_OBS_PRIVACY_MONITOR_H_
