#include "obs/profiler.h"

#include <algorithm>
#include <chrono>
#include <cstring>
#include <sstream>

#include "obs/metrics.h"

#if defined(__linux__)
#include <linux/perf_event.h>
#include <sys/ioctl.h>
#include <sys/syscall.h>
#include <unistd.h>
#endif

namespace shpir::obs {

namespace {

uint64_t WallNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// One boundary reading: wall clock plus, when the hardware backend is
/// open, the calling thread's cycle/instruction counts.
struct Reading {
  uint64_t wall_ns = 0;
  uint64_t cycles = 0;
  uint64_t instructions = 0;
};

/// Per-thread cycle/instruction counters. On Linux this is a
/// perf_event_open group — cycles as leader, retired instructions as a
/// sibling — so one read(2) returns both atomically. Opening can fail
/// for unprivileged processes (kernel.perf_event_paranoid) or absent
/// PMUs (VMs, containers); the fallback reports zeros and the profiler
/// keeps wall-time attribution only.
class CpuCounters {
 public:
  ~CpuCounters() { Close(); }

  /// Attempts the hardware backend once per thread; returns true when
  /// hardware counters are live.
  bool EnsureOpen(bool use_hw) {
#if defined(__linux__)
    if (!attempted_) {
      attempted_ = true;
      if (use_hw) {
        Open();
      }
    }
#else
    (void)use_hw;
    attempted_ = true;
#endif
    return leader_fd_ >= 0;
  }

  Reading Read() {
    Reading reading;
    reading.wall_ns = WallNs();
#if defined(__linux__)
    if (leader_fd_ >= 0) {
      // PERF_FORMAT_GROUP layout: nr, then one value per member in
      // group order (cycles first, instructions second).
      uint64_t buffer[3] = {0, 0, 0};
      const ssize_t got = read(leader_fd_, buffer, sizeof(buffer));
      if (got == static_cast<ssize_t>(sizeof(buffer)) && buffer[0] == 2) {
        reading.cycles = buffer[1];
        reading.instructions = buffer[2];
      }
    }
#endif
    return reading;
  }

 private:
#if defined(__linux__)
  static int PerfOpen(uint32_t config, int group_fd) {
    perf_event_attr attr;
    std::memset(&attr, 0, sizeof(attr));
    attr.type = PERF_TYPE_HARDWARE;
    attr.size = sizeof(attr);
    attr.config = config;
    attr.read_format = PERF_FORMAT_GROUP;
    attr.disabled = group_fd == -1 ? 1 : 0;
    attr.exclude_kernel = 1;
    attr.exclude_hv = 1;
    return static_cast<int>(syscall(__NR_perf_event_open, &attr,
                                    /*pid=*/0, /*cpu=*/-1, group_fd,
                                    /*flags=*/0));
  }

  void Open() {
    leader_fd_ = PerfOpen(PERF_COUNT_HW_CPU_CYCLES, -1);
    if (leader_fd_ < 0) {
      leader_fd_ = -1;
      return;
    }
    instr_fd_ = PerfOpen(PERF_COUNT_HW_INSTRUCTIONS, leader_fd_);
    if (instr_fd_ < 0) {
      Close();
      return;
    }
    ioctl(leader_fd_, PERF_EVENT_IOC_RESET, PERF_IOC_FLAG_GROUP);
    if (ioctl(leader_fd_, PERF_EVENT_IOC_ENABLE, PERF_IOC_FLAG_GROUP) != 0) {
      Close();
    }
  }
#endif

  void Close() {
#if defined(__linux__)
    if (instr_fd_ >= 0) {
      close(instr_fd_);
      instr_fd_ = -1;
    }
    if (leader_fd_ >= 0) {
      close(leader_fd_);
      leader_fd_ = -1;
    }
#endif
  }

  bool attempted_ = false;
  int leader_fd_ = -1;
  int instr_fd_ = -1;
};

/// Per-thread frame stack. Threads profile for one Profiler at a time;
/// the owner pointer pairs pushes from a second instance with their
/// pops without attributing anything to it.
struct ThreadState {
  Profiler* owner = nullptr;
  std::array<const char*, Profiler::kMaxDepth> frames{};
  size_t depth = 0;       // Logical depth (may exceed kMaxDepth).
  size_t foreign = 0;     // Open pushes from a non-owner profiler.
  Reading last{};
  CpuCounters counters;
};

thread_local ThreadState tls_state;

}  // namespace

Profiler::Profiler(const Options& options) : options_(options) {}

bool Profiler::SampleQuery() {
  queries_.fetch_add(1, std::memory_order_relaxed);
  if (options_.sample_every == 0) {
    return false;
  }
  const uint64_t n =
      sample_counter_.fetch_add(1, std::memory_order_relaxed);
  if (n % options_.sample_every != 0) {
    return false;
  }
  sampled_.fetch_add(1, std::memory_order_relaxed);
  return true;
}

void Profiler::Push(const char* frame) {
  ThreadState& t = tls_state;
  if (t.depth == 0) {
    t.owner = this;
    const bool hw = t.counters.EnsureOpen(options_.use_hw_counters);
    int expected = 0;
    backend_state_.compare_exchange_strong(expected, hw ? 1 : 2,
                                           std::memory_order_relaxed);
    if (hw) {
      // A later thread may get hardware counters after an earlier one
      // failed; prefer reporting the stronger backend.
      backend_state_.store(1, std::memory_order_relaxed);
    }
    t.last = t.counters.Read();
  } else {
    if (t.owner != this) {
      ++t.foreign;
      return;
    }
    const Reading now = t.counters.Read();
    PathKey key;
    key.depth = t.depth < kMaxDepth ? t.depth : kMaxDepth;
    for (size_t i = 0; i < key.depth; ++i) {
      key.frames[i] = t.frames[i];
    }
    Attribute(key, now.wall_ns - t.last.wall_ns,
              now.cycles - t.last.cycles,
              now.instructions - t.last.instructions, /*samples=*/0);
    t.last = now;
  }
  if (t.depth < kMaxDepth) {
    t.frames[t.depth] = frame;
  } else {
    frames_dropped_.fetch_add(1, std::memory_order_relaxed);
  }
  ++t.depth;
}

void Profiler::Pop() {
  ThreadState& t = tls_state;
  if (t.owner != this) {
    if (t.foreign > 0) {
      --t.foreign;
    }
    return;
  }
  if (t.depth == 0) {
    return;
  }
  const Reading now = t.counters.Read();
  PathKey key;
  key.depth = t.depth < kMaxDepth ? t.depth : kMaxDepth;
  for (size_t i = 0; i < key.depth; ++i) {
    key.frames[i] = t.frames[i];
  }
  // Frames beyond kMaxDepth fold into their deepest kept ancestor, so
  // only a pop that closes a kept frame counts a completed sample.
  const uint64_t samples = t.depth <= kMaxDepth ? 1 : 0;
  Attribute(key, now.wall_ns - t.last.wall_ns, now.cycles - t.last.cycles,
            now.instructions - t.last.instructions, samples);
  t.last = now;
  --t.depth;
  if (t.depth == 0) {
    t.owner = nullptr;
  }
}

void Profiler::AddExternalSample(
    std::initializer_list<const char*> frames, uint64_t wall_ns) {
  PathKey key;
  for (const char* frame : frames) {
    if (key.depth == kMaxDepth) {
      break;
    }
    key.frames[key.depth++] = frame;
  }
  if (key.depth == 0) {
    return;
  }
  Attribute(key, wall_ns, /*cycles=*/0, /*instructions=*/0, /*samples=*/1);
}

void Profiler::Attribute(const PathKey& key, uint64_t wall_ns,
                         uint64_t cycles, uint64_t instructions,
                         uint64_t samples) {
  common::MutexLock lock(mutex_);
  PathTotals& totals = paths_[key];
  totals.samples += samples;
  totals.wall_ns += wall_ns;
  totals.cycles += cycles;
  totals.instructions += instructions;
}

std::vector<Profiler::StackSample> Profiler::Snapshot() const {
  std::vector<StackSample> out;
  {
    common::MutexLock lock(mutex_);
    out.reserve(paths_.size());
    for (const auto& [key, totals] : paths_) {
      StackSample sample;
      for (size_t i = 0; i < key.depth; ++i) {
        if (i > 0) {
          sample.stack += ';';
        }
        sample.stack += key.frames[i];
      }
      sample.samples = totals.samples;
      sample.wall_ns = totals.wall_ns;
      sample.cycles = totals.cycles;
      sample.instructions = totals.instructions;
      out.push_back(std::move(sample));
    }
  }
  // The map orders by pointer identity; exports must not depend on
  // allocation addresses, so order by the joined name instead.
  std::sort(out.begin(), out.end(),
            [](const StackSample& a, const StackSample& b) {
              return a.stack < b.stack;
            });
  return out;
}

std::string Profiler::ToCollapsed() const {
  std::string out;
  for (const StackSample& sample : Snapshot()) {
    out += sample.stack;
    out += ' ';
    out += std::to_string(sample.wall_ns);
    out += '\n';
  }
  return out;
}

std::string Profiler::ToCollapsedShape() const {
  std::string out;
  for (const StackSample& sample : Snapshot()) {
    out += sample.stack;
    out += ' ';
    out += std::to_string(sample.samples);
    out += '\n';
  }
  return out;
}

std::string Profiler::ToJson() const {
  std::ostringstream out;
  out << "{\"backend\":\"" << backend() << "\",\"sample_every\":"
      << options_.sample_every << ",\"queries\":" << queries()
      << ",\"sampled\":" << sampled() << ",\"stacks\":[";
  bool first = true;
  for (const StackSample& sample : Snapshot()) {
    if (!first) {
      out << ',';
    }
    first = false;
    // Stack names come from the closed static vocabulary
    // ([a-z_;] only), so no JSON escaping is required.
    out << "{\"stack\":\"" << sample.stack
        << "\",\"samples\":" << sample.samples
        << ",\"wall_ns\":" << sample.wall_ns
        << ",\"cycles\":" << sample.cycles
        << ",\"instructions\":" << sample.instructions << "}";
  }
  out << "]}";
  return out.str();
}

void Profiler::PublishMetrics(MetricsRegistry* registry) {
  if (registry == nullptr) {
    return;
  }
  registry->RegisterCallbackGauge(
      "shpir_profile_queries_total",
      [this] { return static_cast<double>(queries()); });
  registry->RegisterCallbackGauge(
      "shpir_profile_sampled_total",
      [this] { return static_cast<double>(sampled()); });
  registry->RegisterCallbackGauge(
      "shpir_profile_frames_dropped_total",
      [this] { return static_cast<double>(frames_dropped()); });
  registry->RegisterCallbackGauge("shpir_profile_stacks", [this] {
    common::MutexLock lock(mutex_);
    return static_cast<double>(paths_.size());
  });
  registry->RegisterCallbackGauge("shpir_profile_wall_ns_total", [this] {
    common::MutexLock lock(mutex_);
    uint64_t total = 0;
    for (const auto& [key, totals] : paths_) {
      total += totals.wall_ns;
    }
    return static_cast<double>(total);
  });
  registry->RegisterCallbackGauge("shpir_profile_cycles_total", [this] {
    common::MutexLock lock(mutex_);
    uint64_t total = 0;
    for (const auto& [key, totals] : paths_) {
      total += totals.cycles;
    }
    return static_cast<double>(total);
  });
  registry->RegisterCallbackGauge(
      "shpir_profile_instructions_total", [this] {
        common::MutexLock lock(mutex_);
        uint64_t total = 0;
        for (const auto& [key, totals] : paths_) {
          total += totals.instructions;
        }
        return static_cast<double>(total);
      });
  registry->RegisterCallbackGauge("shpir_profile_hw_backend", [this] {
    return backend_state_.load(std::memory_order_relaxed) == 1 ? 1.0 : 0.0;
  });
}

const char* Profiler::backend() const {
  switch (backend_state_.load(std::memory_order_relaxed)) {
    case 1:
      return "perf_event";
    case 2:
      return "steady_clock";
    default:
      return "unattempted";
  }
}

void Profiler::Clear() {
  common::MutexLock lock(mutex_);
  paths_.clear();
}

}  // namespace shpir::obs
