#ifndef SHPIR_OBS_PROFILER_H_
#define SHPIR_OBS_PROFILER_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <functional>
#include <initializer_list>
#include <map>
#include <string>
#include <vector>

#include "common/mutex.h"

namespace shpir::obs {

class MetricsRegistry;

/// Sampling profiler with phase attribution: the third observability
/// leg next to metrics (aggregate distributions) and tracing (sampled
/// per-request timelines). It answers the ROADMAP question the other
/// two cannot — *where inside a query the cycles go* — by piggybacking
/// on the same RAII spans QueryTrace already times: a counter-sampled
/// round pushes an "engine_round" root frame and every phase Span
/// becomes a child frame, so the folded stacks read
/// `engine_round;reencrypt 123456` and load directly into any
/// flame-graph renderer.
///
/// Cost model: unsampled rounds pay one relaxed fetch_add (the head
/// sampling decision); sampled rounds additionally pay one counter
/// read per frame boundary. On Linux the reads come from a per-thread
/// `perf_event_open` group (CPU cycles + retired instructions, one
/// read(2) for both); where the syscall is unavailable (containers
/// with perf_event_paranoid, non-Linux) the profiler degrades to
/// steady-clock wall time only and reports `backend() ==
/// "steady_clock"`.
///
/// Trust boundary (same rule as metrics/tracing/privacy monitor):
/// frames are static string literals from a closed vocabulary, the
/// sampling decision is counter-based (target-independent), and the
/// Fig. 3 round executes the same span sequence for every request —
/// so the *shape* of a profile (stack set + sample counts) is
/// byte-identical whatever secret page was queried. tests/
/// profiler_test.cc asserts exactly that.
class Profiler {
 public:
  /// Frames deeper than this still pair push/pop correctly but are
  /// attributed to their deepest kept ancestor.
  static constexpr size_t kMaxDepth = 8;

  struct Options {
    /// Head sampling: every `sample_every`-th SampleQuery() returns
    /// true (counter-based, so exactly 1-in-N and target-independent).
    /// 1 samples everything; 0 samples nothing (profiler attached but
    /// disabled).
    uint64_t sample_every = 16;
    /// Try the perf_event_open backend first (Linux only). Tests that
    /// need deterministic "steady_clock" output set this to false.
    bool use_hw_counters = true;
  };

  explicit Profiler(const Options& options);
  Profiler() : Profiler(Options{}) {}
  ~Profiler() = default;

  Profiler(const Profiler&) = delete;
  Profiler& operator=(const Profiler&) = delete;

  /// Head sampling decision, one per logical query. Counts every call
  /// in queries(); returns true for exactly 1-in-sample_every of them.
  bool SampleQuery();

  /// Opens a frame on the calling thread's stack. `frame` must be a
  /// string literal (static storage): aggregation keys on the pointer.
  /// Self-time since the previous boundary is attributed to the
  /// enclosing path. A thread profiles for one Profiler at a time;
  /// pushes for a second instance while a stack is open are dropped
  /// (and still pair with their pops).
  void Push(const char* frame);

  /// Closes the top frame, attributing its self-time and counting one
  /// completed sample for its path.
  void Pop();

  /// Folds an externally measured duration into the profile — used for
  /// time spent where no thread of ours runs, e.g. the dispatcher
  /// queue wait between submit and worker pickup. Wall time only (no
  /// cycle counters cross threads).
  void AddExternalSample(std::initializer_list<const char*> frames,
                         uint64_t wall_ns);

  /// One aggregated call path. `stack` is the semicolon-joined frame
  /// path ("engine_round;reencrypt"); `samples` counts completed
  /// occurrences; counters are totals attributed to the path's self
  /// time.
  struct StackSample {
    std::string stack;
    uint64_t samples = 0;
    uint64_t wall_ns = 0;
    uint64_t cycles = 0;
    uint64_t instructions = 0;
  };

  /// Aggregated paths sorted by stack name (deterministic order).
  std::vector<StackSample> Snapshot() const;

  /// Flame-graph-compatible collapsed output, one "path weight" line
  /// per stack, weighted by self wall-nanoseconds.
  std::string ToCollapsed() const;

  /// Timing-free view of the same stacks weighted by sample count.
  /// Because the Fig. 3 round is constant-shape, this string is
  /// byte-identical for any two query sequences of the same length,
  /// whatever their secret targets — the property the trust-boundary
  /// test pins down.
  std::string ToCollapsedShape() const;

  /// Closed-schema JSON dump (what the PROFILE_DUMP wire op serves):
  /// backend + sampling config + the stack table.
  std::string ToJson() const;

  /// Registers shpir_profile_* callback gauges on `registry`. The
  /// profiler must outlive the registry's last Snapshot().
  void PublishMetrics(MetricsRegistry* registry);

  /// "perf_event" once any thread opened hardware counters,
  /// "steady_clock" after a failed attempt, "unattempted" before the
  /// first sampled frame.
  const char* backend() const;

  /// Logical queries observed (every SampleQuery() call).
  uint64_t queries() const {
    return queries_.load(std::memory_order_relaxed);
  }
  /// Queries that were sampled.
  uint64_t sampled() const {
    return sampled_.load(std::memory_order_relaxed);
  }
  /// Frames pushed beyond kMaxDepth (attributed to their deepest kept
  /// ancestor rather than recorded at their own depth).
  uint64_t frames_dropped() const {
    return frames_dropped_.load(std::memory_order_relaxed);
  }

  /// Discards aggregated stacks (counters are kept).
  void Clear();

  const Options& options() const { return options_; }

 private:
  struct PathKey {
    std::array<const char*, kMaxDepth> frames{};
    size_t depth = 0;

    bool operator<(const PathKey& other) const {
      if (depth != other.depth) {
        return depth < other.depth;
      }
      for (size_t i = 0; i < depth; ++i) {
        if (frames[i] != other.frames[i]) {
          return std::less<const char*>()(frames[i], other.frames[i]);
        }
      }
      return false;
    }
  };

  struct PathTotals {
    uint64_t samples = 0;
    uint64_t wall_ns = 0;
    uint64_t cycles = 0;
    uint64_t instructions = 0;
  };

  void Attribute(const PathKey& key, uint64_t wall_ns, uint64_t cycles,
                 uint64_t instructions, uint64_t samples);

  Options options_;
  std::atomic<uint64_t> sample_counter_{0};
  std::atomic<uint64_t> queries_{0};
  std::atomic<uint64_t> sampled_{0};
  std::atomic<uint64_t> frames_dropped_{0};
  // 0 = unattempted, 1 = hardware, 2 = steady-clock fallback.
  std::atomic<int> backend_state_{0};

  mutable common::Mutex mutex_;
  std::map<PathKey, PathTotals> paths_ GUARDED_BY(mutex_);
};

/// RAII root frame: pushes `frame` when `profiler` is non-null (pass
/// null for unsampled rounds so the scope is a strict no-op).
class ProfileScope {
 public:
  ProfileScope(Profiler* profiler, const char* frame)
      : profiler_(profiler) {
    if (profiler_ != nullptr) {
      profiler_->Push(frame);
    }
  }

  ProfileScope(const ProfileScope&) = delete;
  ProfileScope& operator=(const ProfileScope&) = delete;

  ~ProfileScope() {
    if (profiler_ != nullptr) {
      profiler_->Pop();
    }
  }

  bool active() const { return profiler_ != nullptr; }

 private:
  Profiler* profiler_;
};

}  // namespace shpir::obs

#endif  // SHPIR_OBS_PROFILER_H_
