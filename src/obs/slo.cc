#include "obs/slo.h"

#include <algorithm>
#include <chrono>
#include <sstream>

#include "obs/metrics.h"

namespace shpir::obs {

namespace {

uint64_t NowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

constexpr uint64_t kNsPerSec = 1'000'000'000ull;

double BurnRate(uint64_t bad, uint64_t total, double objective) {
  if (total == 0) {
    return 0.0;
  }
  const double budget = 1.0 - objective;
  if (budget <= 0.0) {
    return bad > 0 ? 1e18 : 0.0;  // A zero-budget SLO burns instantly.
  }
  return (static_cast<double>(bad) / static_cast<double>(total)) / budget;
}

void AppendJsonDouble(std::ostringstream& out, double value) {
  // Burn rates can be the 1e18 sentinel; keep the emitted text finite
  // and parseable.
  out << std::min(value, 1e18);
}

}  // namespace

constexpr std::array<SloTracker::BurnRule, SloTracker::kNumRules>
    SloTracker::kDefaultRules;

SloTracker::SloTracker(const Objectives& objectives)
    : objectives_(objectives) {
  if (objectives_.bucket_seconds == 0) {
    objectives_.bucket_seconds = 1;
  }
  if (objectives_.num_buckets == 0) {
    objectives_.num_buckets = 1;
  }
  common::MutexLock lock(mutex_);
  buckets_.resize(objectives_.num_buckets);
}

void SloTracker::Record(uint64_t latency_ns, bool ok) {
  RecordAt(NowNs(), latency_ns, ok);
}

void SloTracker::RecordAt(uint64_t now_ns, uint64_t latency_ns, bool ok) {
  common::MutexLock lock(mutex_);
  Bucket& bucket = BucketFor(now_ns);
  bucket.total += 1;
  requests_total_ += 1;
  if (!ok) {
    bucket.errors += 1;
    errors_total_ += 1;
  } else if (latency_ns > objectives_.latency_threshold_ns) {
    bucket.slow += 1;
    slow_total_ += 1;
  }
}

SloTracker::Bucket& SloTracker::BucketFor(uint64_t now_ns) {
  // Epoch 0 marks an unused slot, so bucket indices start at 1.
  const uint64_t epoch =
      now_ns / (objectives_.bucket_seconds * kNsPerSec) + 1;
  Bucket& bucket = buckets_[epoch % buckets_.size()];
  if (bucket.epoch != epoch) {
    bucket = Bucket{};
    bucket.epoch = epoch;
  }
  return bucket;
}

SloTracker::WindowCounts SloTracker::CountWindow(
    uint64_t now_ns, uint64_t window_s) const {
  const uint64_t now_epoch =
      now_ns / (objectives_.bucket_seconds * kNsPerSec) + 1;
  // Windows shorter than one bucket still cover the current bucket;
  // windows longer than the horizon clamp to it.
  uint64_t span = (window_s + objectives_.bucket_seconds - 1) /
                  objectives_.bucket_seconds;
  span = std::max<uint64_t>(1, std::min<uint64_t>(span, buckets_.size()));
  WindowCounts counts;
  for (const Bucket& bucket : buckets_) {
    if (bucket.epoch == 0 || bucket.epoch > now_epoch ||
        bucket.epoch + span <= now_epoch) {
      continue;
    }
    counts.total += bucket.total;
    counts.errors += bucket.errors;
    counts.slow += bucket.slow;
  }
  return counts;
}

SloTracker::Snapshot SloTracker::EvaluateLocked(uint64_t now_ns) {
  Snapshot snapshot;
  snapshot.requests_total = requests_total_;
  snapshot.errors_total = errors_total_;
  snapshot.slow_total = slow_total_;

  const uint64_t horizon_s =
      objectives_.bucket_seconds * buckets_.size();
  const WindowCounts horizon = CountWindow(now_ns, horizon_s);

  // sli 0 = availability (bad = errors, denominator = all requests);
  // sli 1 = latency (bad = slow, denominator = successful requests).
  for (int sli = 0; sli < 2; ++sli) {
    SliState& state = sli == 0 ? snapshot.availability : snapshot.latency;
    state.sli = sli == 0 ? "availability" : "latency";
    state.objective = sli == 0 ? objectives_.availability_objective
                               : objectives_.latency_objective;
    state.total = sli == 0 ? horizon.total : horizon.total - horizon.errors;
    state.bad = sli == 0 ? horizon.errors : horizon.slow;
    const double horizon_burn =
        BurnRate(state.bad, state.total, state.objective);
    state.budget_remaining = std::max(0.0, 1.0 - horizon_burn);

    for (size_t r = 0; r < kNumRules; ++r) {
      const BurnRule& rule = kDefaultRules[r];
      RuleState& rule_state = state.rules[r];
      rule_state.rule = rule.name;
      const WindowCounts short_w = CountWindow(now_ns, rule.short_window_s);
      const WindowCounts long_w = CountWindow(now_ns, rule.long_window_s);
      const uint64_t short_bad = sli == 0 ? short_w.errors : short_w.slow;
      const uint64_t short_total =
          sli == 0 ? short_w.total : short_w.total - short_w.errors;
      const uint64_t long_bad = sli == 0 ? long_w.errors : long_w.slow;
      const uint64_t long_total =
          sli == 0 ? long_w.total : long_w.total - long_w.errors;
      rule_state.short_burn =
          BurnRate(short_bad, short_total, state.objective);
      rule_state.long_burn = BurnRate(long_bad, long_total, state.objective);
      rule_state.firing = rule_state.short_burn >= rule.burn_threshold &&
                          rule_state.long_burn >= rule.burn_threshold;
      bool& latch = firing_[static_cast<size_t>(sli)][r];
      if (rule_state.firing && !latch) {
        alert_transitions_ += 1;  // Edge-triggered: fire once per episode.
      }
      latch = rule_state.firing;
    }
  }
  snapshot.alert_transitions = alert_transitions_;
  return snapshot;
}

SloTracker::Snapshot SloTracker::Evaluate() { return EvaluateAt(NowNs()); }

SloTracker::Snapshot SloTracker::EvaluateAt(uint64_t now_ns) {
  common::MutexLock lock(mutex_);
  return EvaluateLocked(now_ns);
}

std::string SloTracker::SnapshotJson(const Snapshot& snapshot) {
  std::ostringstream out;
  out << "{\"requests_total\":" << snapshot.requests_total
      << ",\"errors_total\":" << snapshot.errors_total
      << ",\"slow_total\":" << snapshot.slow_total
      << ",\"alert_transitions\":" << snapshot.alert_transitions;
  for (const SliState* state :
       {&snapshot.availability, &snapshot.latency}) {
    out << ",\"" << state->sli << "\":{\"objective\":";
    AppendJsonDouble(out, state->objective);
    out << ",\"window_total\":" << state->total
        << ",\"window_bad\":" << state->bad << ",\"budget_remaining\":";
    AppendJsonDouble(out, state->budget_remaining);
    out << ",\"rules\":[";
    for (size_t r = 0; r < kNumRules; ++r) {
      if (r > 0) {
        out << ',';
      }
      const RuleState& rule = state->rules[r];
      out << "{\"rule\":\"" << rule.rule << "\",\"short_burn\":";
      AppendJsonDouble(out, rule.short_burn);
      out << ",\"long_burn\":";
      AppendJsonDouble(out, rule.long_burn);
      out << ",\"firing\":" << (rule.firing ? "true" : "false") << "}";
    }
    out << "]}";
  }
  out << "}";
  return out.str();
}

std::string SloTracker::ToJson() { return ToJsonAt(NowNs()); }

std::string SloTracker::ToJsonAt(uint64_t now_ns) {
  return SnapshotJson(EvaluateAt(now_ns));
}

void SloTracker::PublishMetrics(MetricsRegistry* registry,
                                const std::string& prefix) {
  if (registry == nullptr) {
    return;
  }
  const std::string base =
      prefix.empty() ? "shpir_slo_" : "shpir_slo_" + prefix + "_";
  registry->RegisterCallbackGauge(base + "requests_total", [this] {
    return static_cast<double>(Evaluate().requests_total);
  });
  registry->RegisterCallbackGauge(base + "errors_total", [this] {
    return static_cast<double>(Evaluate().errors_total);
  });
  registry->RegisterCallbackGauge(base + "slow_total", [this] {
    return static_cast<double>(Evaluate().slow_total);
  });
  registry->RegisterCallbackGauge(base + "alert_transitions_total", [this] {
    return static_cast<double>(Evaluate().alert_transitions);
  });
  struct GaugeSpec {
    const char* name;
    int sli;  // 0 = availability, 1 = latency.
    int rule;  // -1 = budget remaining.
    bool firing;
  };
  static constexpr GaugeSpec kSpecs[] = {
      {"availability_budget_remaining", 0, -1, false},
      {"latency_budget_remaining", 1, -1, false},
      {"availability_fast_burn_short", 0, 0, false},
      {"availability_slow_burn_short", 0, 1, false},
      {"latency_fast_burn_short", 1, 0, false},
      {"latency_slow_burn_short", 1, 1, false},
      {"availability_fast_firing", 0, 0, true},
      {"availability_slow_firing", 0, 1, true},
      {"latency_fast_firing", 1, 0, true},
      {"latency_slow_firing", 1, 1, true},
  };
  for (const GaugeSpec& spec : kSpecs) {
    registry->RegisterCallbackGauge(base + spec.name, [this, spec] {
      const Snapshot snapshot = Evaluate();
      const SliState& state =
          spec.sli == 0 ? snapshot.availability : snapshot.latency;
      if (spec.rule < 0) {
        return state.budget_remaining;
      }
      const RuleState& rule = state.rules[static_cast<size_t>(spec.rule)];
      if (spec.firing) {
        return rule.firing ? 1.0 : 0.0;
      }
      return std::min(rule.short_burn, 1e18);
    });
  }
}

}  // namespace shpir::obs
