#ifndef SHPIR_OBS_SLO_H_
#define SHPIR_OBS_SLO_H_

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "common/mutex.h"

namespace shpir::obs {

class MetricsRegistry;

/// SLO / error-budget tracker for one serving unit (a shard, or a
/// storage server). Tracks two SLIs over a ring of coarse time
/// buckets:
///
///  - availability: fraction of requests that succeeded;
///  - latency: fraction of *successful* requests faster than the
///    configured threshold.
///
/// Each SLI gets SRE-style multi-window burn-rate alerting: a rule
/// fires only when both its short and long windows burn error budget
/// faster than the threshold — the short window makes alerts recent,
/// the long window makes them significant. Alert transitions are
/// edge-triggered: re-evaluating a firing rule is idempotent and only
/// the inactive→firing edge increments the transition counter.
///
/// Trust boundary: the tracker stores only per-bucket counts of
/// {total, error, slow} — no page ids, no per-request records — and
/// every request (real or cover; see docs/SHARDING.md) is recorded
/// identically, so SLO state is independent of any secret target.
///
/// Recording is mutex-protected bucket arithmetic (the serving path
/// already pays a dispatcher mutex per request); evaluation scans the
/// ring, O(buckets).
class SloTracker {
 public:
  struct Objectives {
    /// A successful request slower than this counts against the
    /// latency SLI.
    uint64_t latency_threshold_ns = 50'000'000;  // 50 ms.
    /// Target fraction of successful requests under the threshold.
    double latency_objective = 0.999;
    /// Target fraction of requests that succeed.
    double availability_objective = 0.999;
    /// Ring geometry: horizon = bucket_seconds * num_buckets must
    /// cover the longest burn-rule window (defaults: 60 s x 360 = 6 h).
    uint64_t bucket_seconds = 60;
    size_t num_buckets = 360;
  };

  /// Multi-window burn-rate rule: fires when the error-budget burn
  /// rate exceeds `burn_threshold` over BOTH windows.
  struct BurnRule {
    const char* name;  // Static literal ("fast"/"slow").
    uint64_t short_window_s;
    uint64_t long_window_s;
    double burn_threshold;
  };

  static constexpr size_t kNumRules = 2;
  /// Google SRE workbook defaults: page on 14.4x burn over 5m/1h,
  /// ticket on 6x burn over 30m/6h.
  static constexpr std::array<BurnRule, kNumRules> kDefaultRules = {
      BurnRule{"fast", 300, 3600, 14.4},
      BurnRule{"slow", 1800, 21600, 6.0},
  };

  /// Evaluated state of one (SLI, rule) pair.
  struct RuleState {
    const char* rule = "";
    double short_burn = 0.0;
    double long_burn = 0.0;
    bool firing = false;
  };

  /// Evaluated state of one SLI.
  struct SliState {
    const char* sli = "";          // "availability" | "latency".
    double objective = 0.0;
    uint64_t total = 0;            // Requests in the horizon.
    uint64_t bad = 0;              // Budget-consuming requests.
    /// Fraction of the horizon's error budget still unspent, in
    /// [0, 1]; 0 when overspent.
    double budget_remaining = 1.0;
    std::array<RuleState, kNumRules> rules{};
  };

  struct Snapshot {
    uint64_t requests_total = 0;   // Lifetime, not windowed.
    uint64_t errors_total = 0;
    uint64_t slow_total = 0;
    uint64_t alert_transitions = 0;
    SliState availability;
    SliState latency;
  };

  explicit SloTracker(const Objectives& objectives);
  SloTracker() : SloTracker(Objectives{}) {}

  SloTracker(const SloTracker&) = delete;
  SloTracker& operator=(const SloTracker&) = delete;

  /// Records one finished request at the steady clock's now.
  void Record(uint64_t latency_ns, bool ok);

  /// Deterministic variant for tests: `now_ns` must be monotonically
  /// non-decreasing across calls.
  void RecordAt(uint64_t now_ns, uint64_t latency_ns, bool ok);

  /// Evaluates burn rates and steps the alert state machines.
  Snapshot Evaluate();
  Snapshot EvaluateAt(uint64_t now_ns);

  /// Closed-schema JSON for the SLO_STATUS wire op.
  std::string ToJson();
  std::string ToJsonAt(uint64_t now_ns);

  /// Registers shpir_slo_* callback gauges on `registry`, prefixed so
  /// several trackers can share one registry (`prefix` must be a valid
  /// metric-name fragment, e.g. "shard" -> shpir_slo_shard_...; empty
  /// for none). The tracker must outlive the registry's last
  /// Snapshot().
  void PublishMetrics(MetricsRegistry* registry,
                      const std::string& prefix = "");

  const Objectives& objectives() const { return objectives_; }

  /// Renders an evaluated snapshot as JSON (shared by ToJson and the
  /// sharded engine's fleet-level status document).
  static std::string SnapshotJson(const Snapshot& snapshot);

 private:
  struct Bucket {
    uint64_t epoch = 0;  // Bucket index since time zero; 0 = unused.
    uint64_t total = 0;
    uint64_t errors = 0;
    uint64_t slow = 0;   // Successful but over the latency threshold.
  };

  struct WindowCounts {
    uint64_t total = 0;
    uint64_t errors = 0;
    uint64_t slow = 0;
  };

  Bucket& BucketFor(uint64_t now_ns) REQUIRES(mutex_);
  WindowCounts CountWindow(uint64_t now_ns, uint64_t window_s) const
      REQUIRES(mutex_);
  Snapshot EvaluateLocked(uint64_t now_ns) REQUIRES(mutex_);

  Objectives objectives_;

  mutable common::Mutex mutex_;
  std::vector<Bucket> buckets_ GUARDED_BY(mutex_);
  uint64_t requests_total_ GUARDED_BY(mutex_) = 0;
  uint64_t errors_total_ GUARDED_BY(mutex_) = 0;
  uint64_t slow_total_ GUARDED_BY(mutex_) = 0;
  uint64_t alert_transitions_ GUARDED_BY(mutex_) = 0;
  // Alert latches: [sli][rule], sli 0 = availability, 1 = latency.
  std::array<std::array<bool, kNumRules>, 2> firing_ GUARDED_BY(mutex_){};
};

}  // namespace shpir::obs

#endif  // SHPIR_OBS_SLO_H_
