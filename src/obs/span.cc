#include "obs/span.h"

namespace shpir::obs {

const char* PhaseName(Phase phase) {
  switch (phase) {
    case Phase::kPageMapLookup:
      return "pagemap";
    case Phase::kBlockRead:
      return "block_read";
    case Phase::kDecrypt:
      return "decrypt";
    case Phase::kCacheEvict:
      return "evict";
    case Phase::kReencrypt:
      return "reencrypt";
    case Phase::kWriteBack:
      return "writeback";
  }
  return "unknown";
}

}  // namespace shpir::obs
