#ifndef SHPIR_OBS_SPAN_H_
#define SHPIR_OBS_SPAN_H_

#include <array>
#include <chrono>
#include <cstdint>

#include "obs/metrics.h"
#include "obs/profiler.h"
#include "obs/trace.h"

namespace shpir::obs {

/// Phases of one c-approximate PIR round, in protocol order (Fig. 3).
enum class Phase : uint8_t {
  kPageMapLookup = 0,  // Locating the request + pageMap updates.
  kBlockRead,          // Disk reads (k-page block + extra page).
  kDecrypt,            // OpenPage over the fetched pages.
  kCacheEvict,         // Uniformization + cache eviction swaps.
  kReencrypt,          // SealPage with fresh nonces.
  kWriteBack,          // Disk write-back of the k+1 pages.
};
inline constexpr int kNumPhases = 6;

const char* PhaseName(Phase phase);

/// Per-phase latency histograms a QueryTrace flushes into.
using PhaseHistograms = std::array<Histogram*, kNumPhases>;

/// Accumulates per-phase wall-clock nanoseconds for one query and
/// flushes one histogram sample per phase at destruction. Lives on the
/// stack: when constructed with a null histogram array (and no span
/// sink attached) the trace — and every Span opened on it — is a no-op
/// that never reads the clock and never allocates, which is what keeps
/// the disabled-tracing hot path at zero overhead and zero allocations.
///
/// With SetSpanSink() attached, each Span additionally emits one
/// distributed-tracing SpanRecord (obs/trace.h) per phase occurrence,
/// parented under the enclosing engine-round span — the histograms stay
/// aggregate while the sampled trace gets the per-occurrence timeline.
class QueryTrace {
 public:
  explicit QueryTrace(const PhaseHistograms* phases) : phases_(phases) {}

  QueryTrace(const QueryTrace&) = delete;
  QueryTrace& operator=(const QueryTrace&) = delete;

  ~QueryTrace() {
    if (phases_ == nullptr) {
      return;
    }
    for (int i = 0; i < kNumPhases; ++i) {
      Histogram* histogram = (*phases_)[static_cast<size_t>(i)];
      if (histogram != nullptr) {
        histogram->Record(elapsed_ns_[static_cast<size_t>(i)]);
      }
    }
  }

  bool enabled() const {
    return phases_ != nullptr || tracer_ != nullptr || profiler_ != nullptr;
  }

  /// Routes each phase occurrence to `tracer` as a span under `parent`.
  /// Only call with an active (sampled) parent context.
  void SetSpanSink(Tracer* tracer, const TraceContext& parent,
                   int32_t shard) {
    tracer_ = tracer;
    parent_ = parent;
    shard_ = shard;
  }

  /// Routes each phase occurrence to `profiler` as a pushed/popped
  /// frame under the caller's current stack (the engine's
  /// "engine_round" root scope). Only call for head-sampled rounds.
  void SetProfileSink(Profiler* profiler) { profiler_ = profiler; }

  /// Span start: opens the phase frame on the profiler stack (no-op
  /// without a profile sink).
  void OnSpanBegin(Phase phase) {
    if (profiler_ != nullptr) {
      profiler_->Push(PhaseName(phase));
    }
  }

  /// Adds `ns` to the phase's running total; phases re-entered several
  /// times in a round (e.g. the two disk reads) aggregate into one
  /// sample.
  void Add(Phase phase, uint64_t ns) {
    elapsed_ns_[static_cast<size_t>(phase)] += ns;
  }

  /// Span completion: aggregates into the phase histogram and, with a
  /// sink attached, records one trace span for this occurrence.
  void OnSpanEnd(Phase phase, std::chrono::steady_clock::time_point start,
                 std::chrono::steady_clock::time_point end) {
    const uint64_t ns = static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(end - start)
            .count());
    Add(phase, ns);
    if (tracer_ != nullptr) {
      SpanRecord record;
      record.trace_id = parent_.trace_id;
      record.span_id = tracer_->NewSpanId();
      record.parent_span_id = parent_.span_id;
      record.name = PhaseName(phase);
      record.start_ns = static_cast<uint64_t>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(
              start.time_since_epoch())
              .count());
      record.duration_ns = ns;
      record.shard = shard_;
      tracer_->Record(record);
    }
    if (profiler_ != nullptr) {
      profiler_->Pop();
    }
  }

 private:
  const PhaseHistograms* phases_;
  std::array<uint64_t, kNumPhases> elapsed_ns_{};
  Tracer* tracer_ = nullptr;
  TraceContext parent_;
  int32_t shard_ = -1;
  Profiler* profiler_ = nullptr;
};

/// RAII phase timer on a QueryTrace. Disabled traces make this a no-op.
class Span {
 public:
  Span(QueryTrace& trace, Phase phase)
      : trace_(trace.enabled() ? &trace : nullptr), phase_(phase) {
    if (trace_ != nullptr) {
      trace_->OnSpanBegin(phase_);
      start_ = std::chrono::steady_clock::now();
    }
  }

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  ~Span() {
    if (trace_ != nullptr) {
      trace_->OnSpanEnd(phase_, start_, std::chrono::steady_clock::now());
    }
  }

 private:
  QueryTrace* trace_;
  Phase phase_;
  std::chrono::steady_clock::time_point start_;
};

/// RAII timer recording elapsed nanoseconds straight into a histogram
/// (or nothing when the histogram is null).
class ScopedLatencyTimer {
 public:
  explicit ScopedLatencyTimer(Histogram* histogram) : histogram_(histogram) {
    if (histogram_ != nullptr) {
      start_ = std::chrono::steady_clock::now();
    }
  }

  ScopedLatencyTimer(const ScopedLatencyTimer&) = delete;
  ScopedLatencyTimer& operator=(const ScopedLatencyTimer&) = delete;

  ~ScopedLatencyTimer() {
    if (histogram_ != nullptr) {
      const auto elapsed = std::chrono::steady_clock::now() - start_;
      histogram_->Record(static_cast<uint64_t>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed)
              .count()));
    }
  }

 private:
  Histogram* histogram_;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace shpir::obs

#endif  // SHPIR_OBS_SPAN_H_
