#include "obs/trace.h"

#include <algorithm>
#include <chrono>

#include "obs/export.h"
#include "obs/metrics.h"

namespace shpir::obs {

namespace {

constexpr uint8_t kFlagSampled = 0x01;

/// splitmix64: a fixed, well-mixed id stream. Trace/span ids name
/// public spans and carry no secret material, so a deterministic
/// non-cryptographic generator is deliberate — it keeps the sampler
/// test-reproducible and the hot path free of crypto.
uint64_t SplitMix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace

void TraceContext::EncodeTo(Bytes& out) const {
  const size_t base = out.size();
  out.resize(base + kWireSize);
  StoreLE64(trace_id, out.data() + base);
  StoreLE64(span_id, out.data() + base + 8);
  out[base + 16] = sampled ? kFlagSampled : 0;
}

Bytes TraceContext::Encode() const {
  Bytes out;
  EncodeTo(out);
  return out;
}

Result<TraceContext> TraceContext::Decode(ByteSpan bytes) {
  if (bytes.size() < kWireSize) {
    return DataLossError("truncated trace context");
  }
  TraceContext ctx;
  ctx.trace_id = LoadLE64(bytes.data());
  ctx.span_id = LoadLE64(bytes.data() + 8);
  const uint8_t flags = bytes[16];
  if ((flags & ~kFlagSampled) != 0) {
    return InvalidArgumentError("unknown trace context flags");
  }
  ctx.sampled = (flags & kFlagSampled) != 0;
  if (ctx.trace_id == 0) {
    return InvalidArgumentError("zero trace id");
  }
  return ctx;
}

Tracer::Tracer(const Options& options)
    : options_(options),
      lane_capacity_(std::max<size_t>(
          1, (options.buffer_capacity == 0 ? 4096 : options.buffer_capacity) /
                 std::max<size_t>(1, options.buffer_lanes))),
      lanes_(std::max<size_t>(1, options.buffer_lanes)),
      id_state_(options.seed != 0 ? options.seed
                                  : NowNs() ^ 0x5851f42d4c957f2dULL) {
  for (Lane& lane : lanes_) {
    common::MutexLock lock(lane.mutex);
    lane.ring.resize(lane_capacity_);
  }
}

uint64_t Tracer::NewSpanId() {
  uint64_t id =
      SplitMix64(id_state_.fetch_add(1, std::memory_order_relaxed));
  if (id == 0) {
    id = 1;  // 0 is the "no trace / no parent" sentinel.
  }
  return id;
}

TraceContext Tracer::StartTrace() {
  started_.fetch_add(1, std::memory_order_relaxed);
  TraceContext ctx;
  ctx.trace_id = NewSpanId();
  ctx.span_id = NewSpanId();
  const uint64_t every = options_.sample_every;
  bool sample =
      every != 0 &&
      sample_counter_.fetch_add(1, std::memory_order_relaxed) % every == 0;
  if (sample && options_.max_sampled_per_sec > 0) {
    // Token bucket over steady-clock seconds: a sampled head beyond the
    // budget is demoted to unsampled (its whole tree stays silent).
    const uint64_t now = NowNs();
    common::MutexLock lock(rate_mutex_);
    if (now - rate_window_start_ns_ >= 1000000000ULL) {
      rate_window_start_ns_ = now;
      rate_window_count_ = 0;
    }
    if (rate_window_count_ >= options_.max_sampled_per_sec) {
      sample = false;
    } else {
      ++rate_window_count_;
    }
  }
  ctx.sampled = sample;
  if (sample) {
    sampled_.fetch_add(1, std::memory_order_relaxed);
  }
  return ctx;
}

void Tracer::Record(const SpanRecord& record) {
  Lane& lane = lanes_[record.span_id % lanes_.size()];
  bool overwrote = false;
  {
    common::MutexLock lock(lane.mutex);
    lane.ring[lane.next] = record;
    lane.next = (lane.next + 1) % lane_capacity_;
    if (lane.count < lane_capacity_) {
      ++lane.count;
    } else {
      overwrote = true;
    }
  }
  recorded_.fetch_add(1, std::memory_order_relaxed);
  if (overwrote) {
    dropped_.fetch_add(1, std::memory_order_relaxed);
  }
}

std::vector<SpanRecord> Tracer::Snapshot() const {
  std::vector<SpanRecord> out;
  out.reserve(lanes_.size() * lane_capacity_);
  for (const Lane& lane : lanes_) {
    common::MutexLock lock(lane.mutex);
    // Oldest-first within the lane: the ring's logical start is `next`
    // once it has wrapped, 0 before.
    const size_t start = lane.count == lane_capacity_ ? lane.next : 0;
    for (size_t i = 0; i < lane.count; ++i) {
      out.push_back(lane.ring[(start + i) % lane_capacity_]);
    }
  }
  std::stable_sort(out.begin(), out.end(),
                   [](const SpanRecord& a, const SpanRecord& b) {
                     return a.start_ns < b.start_ns;
                   });
  return out;
}

void Tracer::Clear() {
  for (Lane& lane : lanes_) {
    common::MutexLock lock(lane.mutex);
    lane.next = 0;
    lane.count = 0;
  }
}

void Tracer::PublishMetrics(MetricsRegistry* registry) {
  if (registry == nullptr) {
    return;
  }
  registry->RegisterCallbackGauge(
      "shpir_trace_started_total",
      [this] { return static_cast<double>(started()); });
  registry->RegisterCallbackGauge(
      "shpir_trace_sampled_total",
      [this] { return static_cast<double>(sampled()); });
  registry->RegisterCallbackGauge(
      "shpir_trace_spans_recorded_total",
      [this] { return static_cast<double>(recorded()); });
  registry->RegisterCallbackGauge(
      "shpir_trace_spans_dropped_total",
      [this] { return static_cast<double>(dropped()); });
}

uint64_t Tracer::NowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

std::string ToChromeTraceJson(const std::vector<SpanRecord>& spans) {
  // Complete ("X") events, ts/dur in microseconds as doubles. Shards
  // map to tids (shard s -> tid s+2; non-shard spans on tid 1) so the
  // per-shard fan-out renders as parallel tracks under one process.
  std::string out = "{\"displayTimeUnit\":\"ns\",\"traceEvents\":[";
  char buf[512];
  bool first = true;
  for (const SpanRecord& span : spans) {
    if (!first) {
      out += ",";
    }
    first = false;
    const int64_t tid = span.shard >= 0 ? span.shard + 2 : 1;
    std::snprintf(
        buf, sizeof(buf),
        "{\"name\":\"%s\",\"cat\":\"shpir\",\"ph\":\"X\",\"ts\":%.3f,"
        "\"dur\":%.3f,\"pid\":1,\"tid\":%lld,\"args\":{"
        "\"trace_id\":\"%016llx\",\"span_id\":\"%016llx\","
        "\"parent_span_id\":\"%016llx\",\"shard\":%d}}",
        EscapeJsonString(span.name).c_str(),
        static_cast<double>(span.start_ns) / 1000.0,
        static_cast<double>(span.duration_ns) / 1000.0,
        static_cast<long long>(tid),
        static_cast<unsigned long long>(span.trace_id),
        static_cast<unsigned long long>(span.span_id),
        static_cast<unsigned long long>(span.parent_span_id), span.shard);
    out += buf;
  }
  out += "]}";
  return out;
}

}  // namespace shpir::obs
