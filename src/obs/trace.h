#ifndef SHPIR_OBS_TRACE_H_
#define SHPIR_OBS_TRACE_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "common/bytes.h"
#include "common/mutex.h"
#include "common/result.h"

namespace shpir::obs {

class MetricsRegistry;

/// Distributed request tracing for the sharded serving pipeline: one
/// logical query produces a tree of spans — client encode, hub
/// queue-wait, per-shard fan-out (real and cover queries are
/// deliberately indistinguishable), coprocessor phases and disk I/O —
/// stitched together by a 64-bit trace id that rides the wire protocols
/// (net::Op::kTraced, the kOpTraced service record) next to the sealed
/// payload.
///
/// Trust boundary: spans carry ONLY public data — a static phase name,
/// a shard index and wall-clock timing. No page ids, no request
/// indices, no real-vs-cover flag (which cover query is the real one
/// would reveal the owning shard and thereby bits of the page id). The
/// same whole-round timing is already conceded to the network adversary
/// by Eq. 8's constant per-query cost; see docs/OBSERVABILITY.md.

/// Propagated context: which trace a unit of work belongs to and which
/// span is its parent. `trace_id == 0` means "no trace"; only sampled
/// contexts cause any recording or wire overhead.
struct TraceContext {
  uint64_t trace_id = 0;
  uint64_t span_id = 0;
  bool sampled = false;

  /// Wire encoding: trace_id(8) | span_id(8) | flags(1), little-endian;
  /// flag bit 0 = sampled, all other bits must be zero.
  static constexpr size_t kWireSize = 8 + 8 + 1;

  bool valid() const { return trace_id != 0; }
  /// True when downstream components should record spans for this work.
  bool active() const { return trace_id != 0 && sampled; }

  /// Appends the kWireSize-byte encoding to `out`.
  void EncodeTo(Bytes& out) const;
  Bytes Encode() const;

  /// Parses a context from the first kWireSize bytes of `bytes`.
  /// Rejects truncated input, a zero trace id, and unknown flag bits —
  /// frames are hostile until proven otherwise.
  static Result<TraceContext> Decode(ByteSpan bytes);
};

/// One finished span. `name` must be a string literal (static storage):
/// records are moved around buffers long after the emitting scope died.
struct SpanRecord {
  uint64_t trace_id = 0;
  uint64_t span_id = 0;
  uint64_t parent_span_id = 0;  // 0 for a root span.
  const char* name = "";
  uint64_t start_ns = 0;     // steady_clock, process-local epoch.
  uint64_t duration_ns = 0;
  int32_t shard = -1;        // -1 when not shard-specific.
};

/// Span collector: deterministic id generation, head-based sampling
/// (the decision is made once per logical query and inherited by every
/// child span), and a lock-sharded bounded ring buffer so recording
/// from S shard workers does not serialize on one mutex. When the
/// buffer wraps, the oldest spans in that lane are overwritten and
/// counted in dropped().
class Tracer {
 public:
  struct Options {
    /// Head sampling: every `sample_every`-th StartTrace() is sampled
    /// (counter-based, so exactly 1-in-N and reproducible). 1 samples
    /// everything; 0 samples nothing (tracing attached but disabled).
    uint64_t sample_every = 64;
    /// Total span capacity across all buffer lanes.
    size_t buffer_capacity = 4096;
    /// Number of independently locked buffer lanes.
    size_t buffer_lanes = 8;
    /// Seed for the id generator; 0 derives one from the clock. Ids are
    /// NOT secrets (they name public spans) so a deterministic splitmix
    /// stream is fine — and required for reproducible tests.
    uint64_t seed = 0;
    /// Rate limit on sampled traces (token bucket, per steady-clock
    /// second); 0 = unlimited. Protects the buffer from a burst of
    /// sampled roots under overload.
    uint64_t max_sampled_per_sec = 0;
  };

  explicit Tracer(const Options& options);
  Tracer() : Tracer(Options{}) {}

  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  /// Begins a new trace: fresh trace id, a root span id, and the head
  /// sampling decision for the whole tree.
  TraceContext StartTrace();

  /// Allocates a span id (for callers assembling SpanRecords manually,
  /// e.g. retroactive queue-wait spans).
  uint64_t NewSpanId();

  /// Appends one finished span to the buffer. Unsampled contexts must
  /// be filtered by the caller (TraceSpan does).
  void Record(const SpanRecord& record);

  /// Copies the buffered spans, ordered by start time.
  std::vector<SpanRecord> Snapshot() const;

  /// Discards all buffered spans (counters are kept).
  void Clear();

  uint64_t started() const { return started_.load(std::memory_order_relaxed); }
  uint64_t sampled() const { return sampled_.load(std::memory_order_relaxed); }
  uint64_t recorded() const {
    return recorded_.load(std::memory_order_relaxed);
  }
  /// Spans overwritten by ring wraparound.
  uint64_t dropped() const { return dropped_.load(std::memory_order_relaxed); }
  const Options& options() const { return options_; }

  /// Registers shpir_trace_* callback gauges on `registry`, including
  /// shpir_trace_spans_dropped_total (ring overwrites) so span loss is
  /// observable without a TRACE_DUMP. The tracer must outlive the
  /// registry's last Snapshot().
  void PublishMetrics(MetricsRegistry* registry);

  /// Nanoseconds on the steady clock — the time base of every span.
  static uint64_t NowNs();

 private:
  struct Lane {
    mutable common::Mutex mutex;
    std::vector<SpanRecord> ring GUARDED_BY(mutex);  // Fixed capacity.
    size_t next GUARDED_BY(mutex) = 0;
    size_t count GUARDED_BY(mutex) = 0;
  };

  Options options_;
  size_t lane_capacity_;
  std::vector<Lane> lanes_;
  std::atomic<uint64_t> id_state_;
  std::atomic<uint64_t> sample_counter_{0};
  std::atomic<uint64_t> started_{0};
  std::atomic<uint64_t> sampled_{0};
  std::atomic<uint64_t> recorded_{0};
  std::atomic<uint64_t> dropped_{0};
  mutable common::Mutex rate_mutex_;
  uint64_t rate_window_start_ns_ GUARDED_BY(rate_mutex_) = 0;
  uint64_t rate_window_count_ GUARDED_BY(rate_mutex_) = 0;
};

/// RAII span. Two forms:
///  - root: starts a new trace (and makes the sampling decision);
///  - child: continues `parent`, a no-op unless the parent is active.
/// The span is recorded at destruction; context() is what children and
/// wire propagation should carry.
class TraceSpan {
 public:
  /// Root span: begins a new trace on `tracer` (null tracer = no-op).
  TraceSpan(Tracer* tracer, const char* name, int32_t shard = -1)
      : tracer_(tracer), name_(name), shard_(shard) {
    if (tracer_ == nullptr) {
      return;
    }
    ctx_ = tracer_->StartTrace();
    if (!ctx_.active()) {
      tracer_ = nullptr;  // Unsampled: children see an inactive context.
      return;
    }
    start_ns_ = Tracer::NowNs();
  }

  /// Child span under `parent`; inert when the parent is not active.
  TraceSpan(Tracer* tracer, const TraceContext& parent, const char* name,
            int32_t shard = -1)
      : name_(name), shard_(shard) {
    if (tracer == nullptr || !parent.active()) {
      return;
    }
    tracer_ = tracer;
    ctx_.trace_id = parent.trace_id;
    ctx_.span_id = tracer->NewSpanId();
    ctx_.sampled = true;
    parent_span_id_ = parent.span_id;
    start_ns_ = Tracer::NowNs();
  }

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

  ~TraceSpan() {
    if (tracer_ == nullptr) {
      return;
    }
    SpanRecord record;
    record.trace_id = ctx_.trace_id;
    record.span_id = ctx_.span_id;
    record.parent_span_id = parent_span_id_;
    record.name = name_;
    record.start_ns = start_ns_;
    const uint64_t now = Tracer::NowNs();
    record.duration_ns = now > start_ns_ ? now - start_ns_ : 0;
    record.shard = shard_;
    tracer_->Record(record);
  }

  /// Context for children of this span (inactive when unsampled).
  const TraceContext& context() const { return ctx_; }

 private:
  Tracer* tracer_ = nullptr;
  TraceContext ctx_;
  uint64_t parent_span_id_ = 0;
  const char* name_;
  int32_t shard_;
  uint64_t start_ns_ = 0;
};

/// Renders spans as Chrome trace-event JSON ("traceEvents" array of
/// ph:"X" complete events, microsecond timestamps) — loadable directly
/// in Perfetto / chrome://tracing. Shards map to tids so the fan-out
/// reads as parallel tracks.
std::string ToChromeTraceJson(const std::vector<SpanRecord>& spans);

}  // namespace shpir::obs

#endif  // SHPIR_OBS_TRACE_H_
