#include "shard/dispatcher.h"

#include <utility>

namespace shpir::shard {

Dispatcher::Dispatcher(const Options& options)
    : queue_depth_(options.queue_depth == 0 ? 1 : options.queue_depth),
      queues_(options.queues == 0 ? 1 : options.queues),
      ready_(queues_.size()) {
  workers_.reserve(queues_.size());
  for (size_t i = 0; i < queues_.size(); ++i) {
    workers_.emplace_back([this, i] { WorkerLoop(i); });
  }
}

Dispatcher::~Dispatcher() { Drain(); }

Status Dispatcher::Submit(size_t queue, Job job,
                          std::chrono::steady_clock::time_point deadline) {
  {
    common::MutexLock lock(mutex_);
    if (queue >= queues_.size()) {
      return InvalidArgumentError("no such dispatcher queue");
    }
    if (draining_) {
      return FailedPreconditionError("dispatcher is draining");
    }
    if (queues_[queue].size() >= queue_depth_) {
      rejections_.fetch_add(1, std::memory_order_relaxed);
      if (metered()) {
        instruments_.rejections->Increment();
        RecordRejectedWaitLocked(queues_[queue]);
      }
      return ResourceExhaustedError("shard queue full");
    }
    queues_[queue].push_back(
        {std::move(job), deadline, std::chrono::steady_clock::now()});
    UpdateDepthGauge();
  }
  ready_[queue].NotifyOne();
  return OkStatus();
}

Status Dispatcher::SubmitAll(std::vector<Job> jobs,
                             std::chrono::steady_clock::time_point deadline) {
  {
    common::MutexLock lock(mutex_);
    if (jobs.size() != queues_.size()) {
      return InvalidArgumentError("SubmitAll needs one job per queue");
    }
    if (draining_) {
      return FailedPreconditionError("dispatcher is draining");
    }
    for (const auto& queue : queues_) {
      if (queue.size() >= queue_depth_) {
        rejections_.fetch_add(1, std::memory_order_relaxed);
        if (metered()) {
          instruments_.rejections->Increment();
          RecordRejectedWaitLocked(queue);
        }
        return ResourceExhaustedError("shard queue full");
      }
    }
    const auto enqueue = std::chrono::steady_clock::now();
    for (size_t i = 0; i < jobs.size(); ++i) {
      queues_[i].push_back({std::move(jobs[i]), deadline, enqueue});
    }
    UpdateDepthGauge();
  }
  for (auto& cv : ready_) {
    cv.NotifyOne();
  }
  return OkStatus();
}

void Dispatcher::WorkerLoop(size_t queue) {
  common::MutexLock lock(mutex_);
  for (;;) {
    while (queues_[queue].empty() && !draining_) {
      ready_[queue].Wait(lock);
    }
    if (queues_[queue].empty()) {
      return;  // Draining and nothing left.
    }
    Entry entry = std::move(queues_[queue].front());
    queues_[queue].pop_front();
    ++in_flight_;
    UpdateDepthGauge();
    // Snapshot the instrument pointers while the lock is held; the job
    // itself runs unlocked.
    obs::Counter* const expirations =
        metered() ? instruments_.expirations : nullptr;
    obs::Histogram* const queue_wait =
        metered() ? instruments_.queue_wait_ns : nullptr;
    lock.Unlock();
    const auto now = std::chrono::steady_clock::now();
    if (queue_wait != nullptr) {
      // Recorded for expired jobs too: an expired request waited, and
      // hiding its wait would bias the histogram low exactly when the
      // system is overloaded.
      queue_wait->Record(static_cast<uint64_t>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(
              now - entry.enqueue)
              .count()));
    }
    Status admission = OkStatus();
    if (entry.deadline != kNoDeadline && now > entry.deadline) {
      admission = DeadlineExceededError("request expired in shard queue");
      expirations_.fetch_add(1, std::memory_order_relaxed);
      if (expirations != nullptr) {
        expirations->Increment();
      }
    }
    entry.job(admission);
    lock.Lock();
    --in_flight_;
    idle_.NotifyAll();
  }
}

bool Dispatcher::IdleLocked() const {
  if (in_flight_ != 0) {
    return false;
  }
  for (const auto& queue : queues_) {
    if (!queue.empty()) {
      return false;
    }
  }
  return true;
}

void Dispatcher::WaitIdle() {
  common::MutexLock lock(mutex_);
  while (!IdleLocked()) {
    idle_.Wait(lock);
  }
}

void Dispatcher::Drain() {
  {
    common::MutexLock lock(mutex_);
    if (joined_) {
      return;
    }
    draining_ = true;
    joined_ = true;
  }
  for (auto& cv : ready_) {
    cv.NotifyAll();
  }
  for (auto& worker : workers_) {
    worker.join();
  }
}

size_t Dispatcher::depth(size_t queue) const {
  common::MutexLock lock(mutex_);
  return queue < queues_.size() ? queues_[queue].size() : 0;
}

void Dispatcher::EnableMetrics(obs::MetricsRegistry* registry) {
  common::MutexLock lock(mutex_);
  if (registry == nullptr) {
    instruments_ = Instruments{};
    return;
  }
  instruments_.depth = registry->FindOrCreateGauge("shpir_shard_queue_depth");
  instruments_.capacity =
      registry->FindOrCreateGauge("shpir_shard_queue_capacity");
  instruments_.rejections =
      registry->FindOrCreateCounter("shpir_shard_admission_rejections_total");
  instruments_.expirations =
      registry->FindOrCreateCounter("shpir_shard_deadline_expirations_total");
  instruments_.queue_wait_ns =
      registry->FindOrCreateHistogram("shpir_shard_queue_wait_ns");
  instruments_.capacity->Set(static_cast<double>(queue_depth_));
  instruments_.depth->Set(0.0);
}

void Dispatcher::RecordRejectedWaitLocked(const std::deque<Entry>& queue) {
  if (instruments_.queue_wait_ns == nullptr || queue.empty()) {
    return;
  }
  instruments_.queue_wait_ns->Record(static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - queue.front().enqueue)
          .count()));
}

void Dispatcher::UpdateDepthGauge() {
  if (!metered()) {
    return;
  }
  size_t total = 0;
  for (const auto& queue : queues_) {
    total += queue.size();
  }
  instruments_.depth->Set(static_cast<double>(total));
}

}  // namespace shpir::shard
