#ifndef SHPIR_SHARD_DISPATCHER_H_
#define SHPIR_SHARD_DISPATCHER_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <functional>
#include <thread>
#include <vector>

#include "common/mutex.h"
#include "common/result.h"
#include "obs/metrics.h"

namespace shpir::shard {

/// Bounded-queue dispatcher for the sharded runtime: one worker thread
/// and one FIFO queue per shard, mirroring the physical deployment of
/// one secure device per shard. Admission is all-or-nothing across the
/// fan-out (SubmitAll) and rejects with ResourceExhausted when any
/// queue is full, so overload surfaces as an immediate typed error
/// instead of unbounded queueing — the serving-side complement to the
/// offered-load analysis in src/model/queueing.h.
///
/// Jobs carry an optional deadline. A job whose deadline has passed by
/// the time its worker pops it is still invoked — with
/// DeadlineExceeded — so it can fail its waiter without doing the disk
/// work; jobs popped in time run with OkStatus.
class Dispatcher {
 public:
  /// Invoked by the queue's worker exactly once: with OkStatus to run,
  /// or with DeadlineExceeded if the job expired while queued.
  using Job = std::function<void(const Status& admission)>;

  /// Sentinel for "no deadline".
  static constexpr std::chrono::steady_clock::time_point kNoDeadline =
      std::chrono::steady_clock::time_point::max();

  struct Options {
    size_t queues = 1;       // One worker + FIFO per shard.
    size_t queue_depth = 64; // Bounded capacity of each queue.
  };

  explicit Dispatcher(const Options& options);

  /// Drains: stops admissions, runs everything already queued, joins.
  ~Dispatcher();

  Dispatcher(const Dispatcher&) = delete;
  Dispatcher& operator=(const Dispatcher&) = delete;

  /// Enqueues one job on `queue`. ResourceExhausted if the queue is
  /// full, FailedPrecondition after Drain() began.
  Status Submit(size_t queue, Job job,
                std::chrono::steady_clock::time_point deadline = kNoDeadline);

  /// Enqueues jobs[i] on queue i — the fan-out primitive; requires
  /// jobs.size() == queues. All-or-nothing: if any queue lacks room,
  /// nothing is enqueued and ResourceExhausted is returned, so a
  /// rejected logical request leaves no partial (privacy-skewing)
  /// residue on any shard.
  Status SubmitAll(std::vector<Job> jobs,
                   std::chrono::steady_clock::time_point deadline = kNoDeadline);

  /// Blocks until every queue is empty and no job is running.
  void WaitIdle();

  /// Graceful shutdown: stops admissions, lets workers finish all
  /// queued jobs, joins the workers. Idempotent.
  void Drain();

  size_t queues() const { return workers_.size(); }
  size_t queue_depth() const { return queue_depth_; }

  /// Jobs currently queued (not yet popped) on `queue`.
  size_t depth(size_t queue) const;

  /// True once Drain() began (admissions are refused). Thread-safe.
  bool draining() const {
    common::MutexLock lock(mutex_);
    return draining_;
  }

  /// Lifetime admission rejections / deadline expirations. Counted
  /// unconditionally (independent of EnableMetrics) so overload can
  /// feed edge-triggered consumers like the flight recorder.
  uint64_t rejections() const {
    return rejections_.load(std::memory_order_relaxed);
  }
  uint64_t expirations() const {
    return expirations_.load(std::memory_order_relaxed);
  }

  /// Registers the dispatcher's aggregate instruments in `registry`
  /// (unowned; must outlive the dispatcher): total queued jobs across
  /// all queues (gauge), configured capacity (gauge), admission
  /// rejections and deadline expirations (counters), and the queue-wait
  /// histogram (shpir_shard_queue_wait_ns). The histogram covers EVERY
  /// fate a request can meet: jobs that ran, jobs that expired in the
  /// queue, and — as the age of the oldest entry in the full queue, a
  /// lower bound on the wait a rejected request observed — admission
  /// rejections, so overload does not silently censor the latency tail.
  /// Aggregates only — no per-request data (docs/OBSERVABILITY.md).
  void EnableMetrics(obs::MetricsRegistry* registry);

 private:
  struct Entry {
    Job job;
    std::chrono::steady_clock::time_point deadline;
    std::chrono::steady_clock::time_point enqueue;
  };

  void WorkerLoop(size_t queue);
  bool metered() const REQUIRES(mutex_) {
    return instruments_.rejections != nullptr;
  }
  void UpdateDepthGauge() REQUIRES(mutex_);
  bool IdleLocked() const REQUIRES(mutex_);

  const size_t queue_depth_;
  mutable common::Mutex mutex_;
  std::vector<std::deque<Entry>> queues_ GUARDED_BY(mutex_);
  std::vector<common::CondVar> ready_;  // One per queue.
  common::CondVar idle_;
  size_t in_flight_ GUARDED_BY(mutex_) = 0;
  bool draining_ GUARDED_BY(mutex_) = false;
  bool joined_ GUARDED_BY(mutex_) = false;
  std::atomic<uint64_t> rejections_{0};
  std::atomic<uint64_t> expirations_{0};

  struct Instruments {
    obs::Gauge* depth = nullptr;
    obs::Gauge* capacity = nullptr;
    obs::Counter* rejections = nullptr;
    obs::Counter* expirations = nullptr;
    obs::Histogram* queue_wait_ns = nullptr;
  };
  /// Records the age of the oldest entry of the (full) queue into the
  /// wait histogram — the lower bound on the rejected request's wait.
  void RecordRejectedWaitLocked(const std::deque<Entry>& queue)
      REQUIRES(mutex_);
  /// The instrument pointers are re-pointed by EnableMetrics, which can
  /// race the workers: reads outside the lock must copy under it first.
  Instruments instruments_ GUARDED_BY(mutex_);

  std::vector<std::thread> workers_;  // Last: joined before the rest dies.
};

}  // namespace shpir::shard

#endif  // SHPIR_SHARD_DISPATCHER_H_
