#include "shard/shard_plan.h"

#include <algorithm>

#include "core/security_parameter.h"

namespace shpir::shard {

Result<ShardPlan> ShardPlan::Compute(uint64_t total_pages,
                                     uint64_t cache_pages, double c,
                                     uint64_t shards, CacheMode mode) {
  if (shards == 0) {
    return InvalidArgumentError("shard count must be >= 1");
  }
  if (total_pages < shards) {
    return InvalidArgumentError("need at least one page per shard");
  }
  if (c <= 1.0) {
    return InvalidArgumentError(
        "target privacy c must be > 1 (c == 1 is trivial PIR)");
  }
  uint64_t per_shard_cache = cache_pages;
  if (mode == CacheMode::kSplitSingleDevice) {
    per_shard_cache = cache_pages / shards;
  }
  if (per_shard_cache < 2) {
    return InvalidArgumentError(
        "per-shard cache must hold at least 2 pages");
  }

  ShardPlan plan;
  plan.total_pages_ = total_pages;
  plan.pages_per_shard_ = (total_pages + shards - 1) / shards;
  plan.cache_mode_ = mode;
  plan.target_c_ = c;
  plan.specs_.reserve(shards);
  uint64_t first = 0;
  for (uint64_t i = 0; i < shards; ++i) {
    ShardSpec spec;
    spec.first_page = first;
    spec.num_pages =
        std::min(plan.pages_per_shard_, total_pages - first);
    spec.cache_pages = per_shard_cache;
    if (spec.num_pages < 2) {
      // A one-page shard is trivially private: every query reads the
      // whole shard (T = 1, c = 1).
      spec.block_size = 1;
      spec.achieved_c = 1.0;
    } else {
      SHPIR_ASSIGN_OR_RETURN(
          spec.block_size,
          core::SecurityParameter::BlockSize(spec.num_pages,
                                             spec.cache_pages, c));
      SHPIR_ASSIGN_OR_RETURN(
          spec.achieved_c,
          core::SecurityParameter::PrivacyOf(
              spec.num_pages, spec.cache_pages, spec.block_size));
    }
    plan.worst_c_ = std::max(plan.worst_c_, spec.achieved_c);
    first += spec.num_pages;
    plan.specs_.push_back(spec);
  }
  return plan;
}

}  // namespace shpir::shard
