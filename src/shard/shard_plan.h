#ifndef SHPIR_SHARD_SHARD_PLAN_H_
#define SHPIR_SHARD_SHARD_PLAN_H_

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "storage/page.h"

namespace shpir::shard {

/// Static sizing of a sharded deployment: how a database of n pages with
/// target privacy parameter c maps onto S independent c-approximate
/// engines (paper §4, Eqs. 5–6, applied per shard).
///
/// Each shard runs the Fig. 3 protocol over its own n_i = n/S slice, so
/// its per-query cost is 4 seeks + 2(k_i + 1) pages with k_i derived
/// from Eq. 6 at (n_i, m_i, c). How the cache budget m is assigned
/// decides whether sharding buys throughput:
///
///  - kPerDevice (default): every shard is its own secure device with
///    its own m-page cache (cache is per-device hardware, so S devices
///    bring S caches). Eq. 6 gives k_i ≈ n_i/(m·ln c) ≈ k_1/S — the
///    per-query block shrinks with S and aggregate throughput grows
///    ~linearly, at unchanged per-shard privacy c.
///
///  - kSplitSingleDevice: one device's m-page cache is partitioned
///    m_i = m/S. Because k ≈ n/(m·ln c), dividing both n and m by S
///    leaves k_i ≈ k_1: there is NO speedup — this mode exists to
///    demonstrate exactly that trade-off (and for deployments where a
///    single device hosts all shards). See docs/SHARDING.md.
class ShardPlan {
 public:
  enum class CacheMode {
    kPerDevice,
    kSplitSingleDevice,
  };

  /// Geometry and privacy of one shard.
  struct ShardSpec {
    uint64_t first_page = 0;   // Global id of the shard's first page.
    uint64_t num_pages = 0;    // n_i: client pages owned by this shard.
    uint64_t cache_pages = 0;  // m_i.
    uint64_t block_size = 0;   // k_i from Eq. 6 at (n_i, m_i, c).
    double achieved_c = 1.0;   // Eq. 5 at (n_i, m_i, k_i).
  };

  /// Computes the plan for `total_pages` pages, cache budget
  /// `cache_pages` (per device or to split, per `mode`), target privacy
  /// `c` and `shards` shards. Requires shards >= 1, total_pages >=
  /// shards, c > 1, and a per-shard cache of at least 2 pages.
  static Result<ShardPlan> Compute(uint64_t total_pages,
                                   uint64_t cache_pages, double c,
                                   uint64_t shards,
                                   CacheMode mode = CacheMode::kPerDevice);

  /// Shard owning global page id `id` (contiguous range partition).
  uint64_t OwnerOf(storage::PageId id) const {
    return id / pages_per_shard_;
  }

  /// Local id of `id` inside its owning shard.
  storage::PageId LocalId(storage::PageId id) const {
    // shpir-lint-allow-next-line(secret-index): client-side plan arithmetic; the owning shard is never disclosed — the fan-out sends one query to every shard regardless
    return id - specs_[OwnerOf(id)].first_page;
  }

  uint64_t total_pages() const { return total_pages_; }
  uint64_t shards() const { return specs_.size(); }
  uint64_t pages_per_shard() const { return pages_per_shard_; }
  CacheMode cache_mode() const { return cache_mode_; }
  double target_c() const { return target_c_; }
  /// Worst (largest) achieved c over all shards; the deployment's bound.
  double worst_c() const { return worst_c_; }
  const std::vector<ShardSpec>& specs() const { return specs_; }
  const ShardSpec& spec(uint64_t shard) const { return specs_[shard]; }

 private:
  ShardPlan() = default;

  uint64_t total_pages_ = 0;
  uint64_t pages_per_shard_ = 0;
  CacheMode cache_mode_ = CacheMode::kPerDevice;
  double target_c_ = 0;
  double worst_c_ = 1.0;
  std::vector<ShardSpec> specs_;
};

}  // namespace shpir::shard

#endif  // SHPIR_SHARD_SHARD_PLAN_H_
