#include "shard/sharded_engine.h"

#include <algorithm>
#include <cstdio>
#include <utility>

#include "common/mutex.h"
#include "core/security_parameter.h"
#include "obs/build_info.h"
#include "obs/export.h"
#include "storage/page_cipher.h"

namespace shpir::shard {

namespace {

/// Ciphertext slot size for payload size B: nonce + (id + payload) + tag.
size_t SealedSlotSize(size_t page_size) {
  return storage::PageCipher::kNonceSize + 8 + page_size +
         storage::PageCipher::kTagSize;
}

/// Offset for deriving per-shard dummy-generator seeds, far from the
/// per-shard device seeds (seed + i) so the streams never collide for
/// any realistic shard count.
constexpr uint64_t kDummySeedOffset = 1000000;

uint64_t ElapsedNs(std::chrono::steady_clock::time_point start) {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - start)
          .count());
}

}  // namespace

ShardedPirEngine::ShardedPirEngine(ShardPlan plan, size_t page_size,
                                   Options options)
    : plan_(std::move(plan)),
      page_size_(page_size),
      options_(std::move(options)) {}

Result<std::unique_ptr<ShardedPirEngine>> ShardedPirEngine::Create(
    const Options& options) {
  if (options.page_size == 0) {
    return InvalidArgumentError("page_size must be nonzero");
  }
  SHPIR_ASSIGN_OR_RETURN(
      ShardPlan plan,
      ShardPlan::Compute(options.num_pages, options.cache_pages,
                         options.privacy_c, options.shards,
                         options.cache_mode));
  std::unique_ptr<ShardedPirEngine> engine(
      new ShardedPirEngine(std::move(plan), options.page_size, options));
  const ShardPlan& p = engine->plan_;
  for (uint64_t i = 0; i < p.shards(); ++i) {
    const ShardPlan::ShardSpec& spec = p.spec(i);
    core::CApproxPir::Options eopts;
    eopts.num_pages = spec.num_pages;
    eopts.page_size = options.page_size;
    eopts.cache_pages = spec.cache_pages;
    eopts.privacy_c = options.privacy_c;
    eopts.block_size = spec.block_size;  // From the plan (Eq. 6 at n_i).
    eopts.enforce_secure_memory = options.enforce_secure_memory;
    SHPIR_ASSIGN_OR_RETURN(uint64_t slots,
                           core::CApproxPir::DiskSlots(eopts));

    auto shard = std::make_unique<Shard>(
        options.seed.has_value()
            ? crypto::SecureRandom(*options.seed + kDummySeedOffset + i)
            : crypto::SecureRandom());
    shard->disk = std::make_unique<storage::MemoryDisk>(
        slots, SealedSlotSize(options.page_size));
    storage::Disk* target = shard->disk.get();
    if (options.enable_traces) {
      shard->trace = std::make_unique<storage::AccessTrace>();
      shard->traced_disk = std::make_unique<storage::TracingDisk>(
          shard->disk.get(), shard->trace.get());
      target = shard->traced_disk.get();
    }
    // Always in the stack: a pure pass-through until EnableTracing
    // attaches a collector.
    shard->span_disk = std::make_unique<storage::SpanDisk>(target);
    target = shard->span_disk.get();
    SHPIR_ASSIGN_OR_RETURN(
        shard->device,
        hardware::SecureCoprocessor::Create(
            options.profile, target, options.page_size,
            options.seed.has_value()
                ? std::optional<uint64_t>(*options.seed + i)
                : std::nullopt));
    SHPIR_ASSIGN_OR_RETURN(shard->engine,
                           core::CApproxPir::Create(shard->device.get(),
                                                    eopts,
                                                    shard->trace.get()));
    engine->shards_.push_back(std::move(shard));
  }
  Dispatcher::Options dopts;
  dopts.queues = p.shards();
  dopts.queue_depth = options.queue_depth;
  engine->dispatcher_ = std::make_unique<Dispatcher>(dopts);
  return engine;
}

Status ShardedPirEngine::Initialize(const std::vector<storage::Page>& pages) {
  if (pages.size() > plan_.total_pages()) {
    return InvalidArgumentError("more pages than the plan holds");
  }
  for (uint64_t i = 0; i < plan_.shards(); ++i) {
    const ShardPlan::ShardSpec& spec = plan_.spec(i);
    std::vector<storage::Page> local;
    local.reserve(spec.num_pages);
    for (uint64_t g = spec.first_page;
         g < spec.first_page + spec.num_pages && g < pages.size(); ++g) {
      local.emplace_back(g - spec.first_page, pages[g].data);
    }
    SHPIR_RETURN_IF_ERROR(shards_[i]->engine->Initialize(local));
  }
  return OkStatus();
}

Result<Bytes> ShardedPirEngine::Retrieve(storage::PageId id) {
  return TracedRetrieve(id, obs::TraceContext{});
}

Result<Bytes> ShardedPirEngine::TracedRetrieve(storage::PageId id,
                                               const obs::TraceContext& ctx) {
  return FanOut(id, ctx,
                [](core::CApproxPir* engine, storage::PageId local,
                   const obs::TraceContext& qctx) {
                  return engine->TracedRetrieve(local, qctx);
                });
}

Status ShardedPirEngine::Modify(storage::PageId id, Bytes data) {
  Result<Bytes> result = FanOut(
      id, obs::TraceContext{},
      [data = std::move(data)](
          core::CApproxPir* engine, storage::PageId local,
          const obs::TraceContext& qctx) -> Result<Bytes> {
        (void)qctx;
        SHPIR_RETURN_IF_ERROR(engine->Modify(local, data));
        return Bytes();
      });
  return result.status();
}

Status ShardedPirEngine::Remove(storage::PageId id) {
  Result<Bytes> result = FanOut(
      id, obs::TraceContext{},
      [](core::CApproxPir* engine, storage::PageId local,
         const obs::TraceContext& qctx) -> Result<Bytes> {
        (void)qctx;
        SHPIR_RETURN_IF_ERROR(engine->Remove(local));
        return Bytes();
      });
  return result.status();
}

Result<Bytes> ShardedPirEngine::FanOut(
    storage::PageId id, const obs::TraceContext& ctx,
    std::function<Result<Bytes>(core::CApproxPir*, storage::PageId,
                                const obs::TraceContext&)>
        real) {
  if (id >= plan_.total_pages()) {
    return NotFoundError("page id out of range");
  }
  const uint64_t owner = plan_.OwnerOf(id);
  const storage::PageId local = plan_.LocalId(id);

  // Span covering the whole fan-out (inert without an active context).
  // Its context is copied into every shard job by value: the jobs may
  // outlive nothing here — the join below blocks — but copying keeps
  // the capture self-contained.
  obs::TraceSpan fan_span(tracer_, ctx, "shard_fanout");
  const obs::TraceContext fan_ctx = fan_span.context();
  // The submit timestamp feeds both the retroactive queue-wait trace
  // span and the profiler's queue-wait attribution.
  const uint64_t submit_ns = fan_ctx.active() || profiler_ != nullptr
                                 ? obs::Tracer::NowNs()
                                 : 0;

  // The caller blocks on `join` until the owner shard's worker fulfills
  // it, so stack storage is safe: no job referencing it can outlive this
  // frame (queued jobs always run, even during Drain).
  struct Join {
    common::Mutex mutex;
    common::CondVar cv;
    std::optional<Result<Bytes>> result GUARDED_BY(mutex);
  } join;

  const auto start = std::chrono::steady_clock::now();
  const auto deadline = options_.deadline.count() > 0
                            ? start + options_.deadline
                            : Dispatcher::kNoDeadline;

  std::vector<Dispatcher::Job> jobs(plan_.shards());
  for (uint64_t s = 0; s < plan_.shards(); ++s) {
    // shpir-lint-allow-next-line(secret-compare, secret-loop-bound): cover fan-out: every shard receives exactly one query; this branch only picks which closure runs, invisible in the emitted traffic and trace
    if (s == owner) {
      continue;
    }
    jobs[s] = [this, s, fan_ctx, submit_ns](const Status& admission) {
      // The wait span is recorded even for expired admissions: the
      // request *did* wait, and that wait is the interesting part.
      RecordShardQueueWait(fan_ctx, submit_ns, static_cast<int32_t>(s));
      if (admission.ok()) {
        RunDummy(s, fan_ctx);
      } else if (shards_[s]->slo != nullptr) {
        // Expired covers burn this shard's availability budget exactly
        // like an expired real query would.
        shards_[s]->slo->Record(0, /*ok=*/false);
      }
    };
  }
  // shpir-lint-allow-next-line(secret-index): slot assignment in the per-shard job array; all shards are submitted identically
  jobs[owner] = [this, owner, local, fan_ctx, submit_ns, &join,
                 &real](const Status& admission) {
    RecordShardQueueWait(fan_ctx, submit_ns, static_cast<int32_t>(owner));
    const auto query_start = std::chrono::steady_clock::now();
    Result<Bytes> outcome =
        admission.ok()
            ? [&]() -> Result<Bytes> {
                // shpir-lint-allow-next-line(secret-index): owner-shard dispatch inside the per-shard job; every shard runs an identical job this round
                Shard* shard = shards_[owner].get();
                // Same span name as the covers: real-vs-dummy must stay
                // invisible in the trace (it would name the owner).
                obs::TraceSpan query_span(tracer_, fan_ctx, "shard_query",
                                          static_cast<int32_t>(owner));
                shard->span_disk->set_context(query_span.context());
                if (observer_) {
                  observer_(owner, shard->requests_served, local,
                            /*dummy=*/false);
                }
                ++shard->requests_served;
                Result<Bytes> r =
                    real(shard->engine.get(), local, query_span.context());
                shard->span_disk->clear_context();
                return r;
              }()
            : Result<Bytes>(admission);
    // shpir-lint-allow-next-line(secret-index): owner-shard SLO handle lookup; every cover shard's job does the identical lookup for its own index
    if (shards_[owner]->slo != nullptr) {
      // shpir-lint-allow-next-line(secret-index, secret-log): per-shard SLO sample for the owner, recorded exactly as RunDummy records for every cover shard; real-vs-dummy stays indistinguishable
      shards_[owner]->slo->Record(ElapsedNs(query_start), outcome.ok());
    }
    {
      common::MutexLock lock(join.mutex);
      join.result = std::move(outcome);
      // Notify under the lock: the waiter owns `join`'s stack frame and
      // may destroy it the instant it observes `result` unlocked.
      join.cv.NotifyOne();
    }
  };

  const Status submitted = dispatcher_->SubmitAll(std::move(jobs), deadline);
  if (!submitted.ok()) {
    // Admission rejection is the availability failure the SLO exists to
    // catch (the queue was full; no shard ever saw the request).
    if (logical_slo_ != nullptr) {
      logical_slo_->Record(ElapsedNs(start), /*ok=*/false);
    }
    if (eventlog_ != nullptr) {
      // Rejection happens before any shard sees the request, so the
      // event carries only fleet-level facts.
      eventlog_->Emit(obs::EventLevel::kWarn, "fanout_rejected",
                      {{"shards", plan_.shards()}});
    }
    if (recorder_ != nullptr) {
      // Poll immediately: the rejection itself is a trigger edge.
      recorder_->Poll();
    }
    return submitted;
  }

  common::MutexLock lock(join.mutex);
  // shpir-lint-allow-next-line(secret-loop-bound): completion join; blocks until the fanned-out round finishes
  while (!join.result.has_value()) {
    join.cv.Wait(lock);
  }
  if (logical_slo_ != nullptr) {
    // shpir-lint-allow-next-line(secret-log): logical-query SLO sample; success bit and latency of the whole fan-out, identical in shape for every query
    logical_slo_->Record(ElapsedNs(start), join.result->ok());
  }
  const uint64_t latency_ns = ElapsedNs(start);
  if (metered()) {
    instruments_.logical_queries->Increment();
    // Traced queries pin a trace-id exemplar to the latency histogram,
    // so a p99 spike links straight to an example trace. The trace id
    // is sampling metadata, independent of the target page.
    if (fan_ctx.active()) {
      instruments_.fanout_latency_ns->RecordWithExemplar(latency_ns,
                                                         fan_ctx.trace_id);
    } else {
      instruments_.fanout_latency_ns->Record(latency_ns);
    }
  }
  if (eventlog_ != nullptr) {
    // One event per LOGICAL query, never per shard query: identical
    // emission — level, name, field names — whichever shard owns the
    // target, so event shapes are target-independent by construction.
    // shpir-lint-allow-next-line(secret-branch, secret-log): one event per logical query with target-independent shape; only whole-fan-out latency and the success bit are emitted
    eventlog_->Emit(obs::EventLevel::kDebug, "fanout_complete", /*shard=*/-1,
                    fan_ctx.trace_id,
                    {{"latency_ns", latency_ns},
                     {"ok", join.result->ok() ? 1 : 0}});
  }
  if (recorder_ != nullptr &&
      (fanout_count_.fetch_add(1, std::memory_order_relaxed) + 1) %
              kRecorderPollPeriod ==
          0) {
    recorder_->Poll();
  }
  return *std::move(join.result);
}

void ShardedPirEngine::RunDummy(uint64_t shard_index,
                                const obs::TraceContext& fan_ctx) {
  Shard* shard = shards_[shard_index].get();
  const storage::PageId local =
      shard->dummy_rng.UniformInt(plan_.spec(shard_index).num_pages);
  // Identical span name to the real query (see FanOut).
  obs::TraceSpan query_span(tracer_, fan_ctx, "shard_query",
                            static_cast<int32_t>(shard_index));
  shard->span_disk->set_context(query_span.context());
  if (observer_) {
    observer_(shard_index, shard->requests_served, local, /*dummy=*/true);
  }
  ++shard->requests_served;
  if (metered()) {
    instruments_.dummy_queries->Increment();
  }
  const auto query_start = std::chrono::steady_clock::now();
  const Result<Bytes> discarded =
      shard->engine->TracedRetrieve(local, query_span.context());
  if (shard->slo != nullptr) {
    // Covers record into the shard SLO exactly like real queries —
    // skipping them would make the tracker's counts a function of
    // where the real targets live.
    // shpir-lint-allow-next-line(secret-log): only the success bit of the cover round enters the SLO tracker, recorded identically for covers and real queries
    shard->slo->Record(ElapsedNs(query_start), discarded.ok());
  }
  shard->span_disk->clear_context();
  // shpir-lint-allow-next-line(secret-branch): status-only check to meter failed covers; the payload is discarded either way
  if (!discarded.ok() && metered()) {
    // A dummy can hit a Removed id; the round still ran, the payload is
    // discarded either way.
    instruments_.dummy_failures->Increment();
  }
}

void ShardedPirEngine::RecordShardQueueWait(const obs::TraceContext& fan_ctx,
                                            uint64_t submit_ns,
                                            int32_t shard) {
  if (submit_ns == 0) {
    return;
  }
  if (profiler_ != nullptr) {
    const uint64_t picked_up = obs::Tracer::NowNs();
    profiler_->AddExternalSample(
        {"shard_fanout", "queue_wait"},
        picked_up > submit_ns ? picked_up - submit_ns : 0);
  }
  if (tracer_ == nullptr || !fan_ctx.active()) {
    return;
  }
  obs::SpanRecord wait;
  wait.trace_id = fan_ctx.trace_id;
  wait.span_id = tracer_->NewSpanId();
  wait.parent_span_id = fan_ctx.span_id;
  wait.name = "queue_wait";
  wait.start_ns = submit_ns;
  const uint64_t now = obs::Tracer::NowNs();
  wait.duration_ns = now > submit_ns ? now - submit_ns : 0;
  wait.shard = shard;
  tracer_->Record(wait);
}

void ShardedPirEngine::EnableTracing(obs::Tracer* tracer) {
  tracer_ = tracer;
  for (uint64_t i = 0; i < shards_.size(); ++i) {
    shards_[i]->engine->EnableTracing(tracer, static_cast<int32_t>(i));
    shards_[i]->span_disk->set_tracer(tracer, static_cast<int32_t>(i));
  }
}

void ShardedPirEngine::EnableProfiling(obs::Profiler* profiler) {
  profiler_ = profiler;
  for (auto& shard : shards_) {
    shard->engine->EnableProfiling(profiler);
  }
}

void ShardedPirEngine::EnableSlo(const obs::SloTracker::Objectives& objectives,
                                 obs::MetricsRegistry* registry) {
  logical_slo_ = std::make_unique<obs::SloTracker>(objectives);
  for (auto& shard : shards_) {
    shard->slo = std::make_unique<obs::SloTracker>(objectives);
  }
  if (registry != nullptr) {
    // Only the logical tracker exports gauges: per-shard trackers
    // would collide on the flat name space, and the fleet view plus
    // the worst-shard indicator below is what alerting needs. Shard
    // detail stays on the SLO_STATUS wire op.
    logical_slo_->PublishMetrics(registry);
    registry->RegisterCallbackGauge("shpir_slo_shards_firing", [this] {
      double firing = 0;
      for (auto& shard : shards_) {
        const obs::SloTracker::Snapshot snapshot = shard->slo->Evaluate();
        bool any = false;
        for (const auto& rule : snapshot.availability.rules) {
          any = any || rule.firing;
        }
        for (const auto& rule : snapshot.latency.rules) {
          any = any || rule.firing;
        }
        if (any) {
          firing += 1.0;
        }
      }
      return firing;
    });
  }
}

std::string ShardedPirEngine::SloStatusJson() {
  if (logical_slo_ == nullptr) {
    return "{}";
  }
  std::string out = "{\"logical\":";
  out += logical_slo_->ToJson();
  out += ",\"shards\":[";
  for (size_t i = 0; i < shards_.size(); ++i) {
    if (i > 0) {
      out += ',';
    }
    out += shards_[i]->slo->ToJson();
  }
  out += "]}";
  return out;
}

void ShardedPirEngine::EnablePrivacyMonitor(obs::MetricsRegistry* registry,
                                            uint64_t window) {
  for (auto& shard : shards_) {
    obs::PrivacyMonitor::Options mopts;
    mopts.scan_period = shard->engine->scan_period();
    mopts.window = window;
    mopts.configured_c = shard->engine->achieved_privacy();
    shard->monitor = std::make_unique<obs::PrivacyMonitor>(mopts);
    shard->monitor->EnableMetrics(registry);
    shard->engine->AttachPrivacyMonitor(shard->monitor.get());
  }
}

void ShardedPirEngine::PublishPrivacyEstimates() {
  for (auto& shard : shards_) {
    if (shard->monitor != nullptr) {
      shard->monitor->PublishNow();
    }
  }
}

Status ShardedPirEngine::RequestShardBlockSize(uint64_t shard,
                                               uint64_t new_k) {
  if (shard >= shards_.size()) {
    return InvalidArgumentError("shard index out of range");
  }
  // The shard engine is single-threaded on its worker: the request
  // must run there, between rounds, like every other engine mutation.
  struct Join {
    common::Mutex mutex;
    common::CondVar cv;
    std::optional<Status> result GUARDED_BY(mutex);
  } join;
  const Status submitted = dispatcher_->Submit(
      shard, [this, shard, new_k, &join](const Status& admission) {
        Status outcome =
            admission.ok()
                ? shards_[shard]->engine->RequestBlockSize(new_k)
                : admission;
        common::MutexLock lock(join.mutex);
        join.result = std::move(outcome);
        join.cv.NotifyOne();
      });
  if (!submitted.ok()) {
    return submitted;  // Queue full / draining: nothing was enqueued.
  }
  common::MutexLock lock(join.mutex);
  while (!join.result.has_value()) {
    join.cv.Wait(lock);
  }
  return *join.result;
}

ShardedPirEngine::ShardControlState ShardedPirEngine::ShardControl(
    uint64_t shard) const {
  ShardControlState state;
  if (shard >= shards_.size()) {
    return state;
  }
  const Shard* s = shards_[shard].get();
  state.block_size = s->engine->published_block_size();
  state.pending_block_size = s->engine->pending_block_size();
  state.transitions = s->engine->block_size_transitions();
  state.disk_slots = s->engine->disk_slots();
  state.cache_pages = s->engine->cache_pages();
  const Result<double> c = core::SecurityParameter::PrivacyOf(
      state.disk_slots, state.cache_pages, state.block_size);
  state.c_theory = c.ok() ? *c : 0.0;
  if (s->monitor != nullptr) {
    state.c_estimate = s->monitor->EstimateOrZero();
  }
  state.queue_depth = dispatcher_->depth(shard);
  state.queue_capacity = dispatcher_->queue_depth();
  return state;
}

void ShardedPirEngine::EnableEventLog(obs::EventLog* log) {
  eventlog_ = log;
  if (eventlog_ != nullptr) {
    eventlog_->Emit(obs::EventLevel::kInfo, "shard_runtime_started",
                    {{"shards", plan_.shards()},
                     {"total_pages", plan_.total_pages()},
                     {"queue_depth", options_.queue_depth}});
  }
}

std::string ShardedPirEngine::ConfigFingerprint() const {
  uint64_t max_k = 0;
  for (const auto& spec : plan_.specs()) {
    max_k = std::max(max_k, spec.block_size);
  }
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "shards=%llu pages=%llu page_size=%zu k=%llu c=%.2f "
                "queue_depth=%zu",
                static_cast<unsigned long long>(plan_.shards()),
                static_cast<unsigned long long>(plan_.total_pages()),
                page_size_, static_cast<unsigned long long>(max_k),
                plan_.worst_c(), options_.queue_depth);
  return std::string(buf) + " | " + obs::BuildInfoSummary();
}

void ShardedPirEngine::EnableFlightRecorder(obs::FlightRecorder* recorder) {
  recorder_ = recorder;
  if (recorder_ == nullptr) {
    return;
  }
  recorder_->SetConfigFingerprint(ConfigFingerprint());
  // Register the triggers once per recorder: re-attaching the same
  // recorder (config reload, bench toggling) must not accumulate
  // duplicate trigger sources.
  if (recorder_ == trigger_host_) {
    return;
  }
  trigger_host_ = recorder_;
  // Edge triggers read aggregate counters only; every callback is
  // thread-safe and target-independent.
  recorder_->AddTrigger("privacy_breach", [this] {
    uint64_t breaches = 0;
    for (auto& shard : shards_) {
      if (shard->monitor != nullptr) {
        breaches += shard->monitor->breaches();
      }
    }
    return breaches;
  });
  if (logical_slo_ != nullptr) {
    recorder_->AddTrigger("slo_burn_alert", [this] {
      return logical_slo_->Evaluate().alert_transitions;
    });
  }
  recorder_->AddTrigger("dispatcher_overload", [this] {
    return dispatcher_->rejections() + dispatcher_->expirations();
  });
}

std::string ShardedPirEngine::HealthJson() {
  const bool draining = dispatcher_->draining();
  size_t depth = 0;
  for (size_t q = 0; q < dispatcher_->queues(); ++q) {
    depth += dispatcher_->depth(q);
  }
  uint64_t breaches = 0;
  bool monitored = false;
  for (auto& shard : shards_) {
    if (shard->monitor != nullptr) {
      monitored = true;
      breaches += shard->monitor->breaches();
    }
  }
  bool degraded = false;
  std::string slo_json = "null";
  if (logical_slo_ != nullptr) {
    const obs::SloTracker::Snapshot snapshot = logical_slo_->Evaluate();
    for (const auto* sli : {&snapshot.availability, &snapshot.latency}) {
      for (const auto& rule : sli->rules) {
        degraded = degraded || rule.firing;
      }
    }
    slo_json = obs::SloTracker::SnapshotJson(snapshot);
  }
  degraded = degraded || (monitored && breaches > 0);
  std::string out = "{\"ready\":";
  out += draining ? "false" : "true";
  out += ",\"degraded\":";
  out += degraded ? "true" : "false";
  out += ",\"role\":\"shard\",\"build\":\"";
  out += obs::EscapeJsonString(obs::BuildInfoSummary());
  out += "\",\"dispatcher\":{\"queues\":";
  out += std::to_string(dispatcher_->queues());
  out += ",\"depth\":";
  out += std::to_string(depth);
  out += ",\"capacity\":";
  out += std::to_string(dispatcher_->queue_depth());
  out += ",\"draining\":";
  out += draining ? "true" : "false";
  out += ",\"rejections\":";
  out += std::to_string(dispatcher_->rejections());
  out += ",\"expirations\":";
  out += std::to_string(dispatcher_->expirations());
  out += "},\"privacy_breaches\":";
  out += monitored ? std::to_string(breaches) : "null";
  out += ",\"slo\":";
  out += slo_json;
  out += ",\"eventlog_dropped\":";
  out += eventlog_ != nullptr ? std::to_string(eventlog_->dropped()) : "null";
  out += ",\"incidents_sealed\":";
  out += recorder_ != nullptr ? std::to_string(recorder_->sealed()) : "null";
  out += "}";
  return out;
}

void ShardedPirEngine::EnableMetrics(obs::MetricsRegistry* registry) {
  if (registry == nullptr) {
    instruments_ = Instruments{};
    dispatcher_->EnableMetrics(nullptr);
    for (auto& shard : shards_) {
      shard->engine->EnableMetrics(nullptr);
    }
    return;
  }
  instruments_.logical_queries =
      registry->FindOrCreateCounter("shpir_shard_logical_queries_total");
  instruments_.dummy_queries =
      registry->FindOrCreateCounter("shpir_shard_dummy_queries_total");
  instruments_.dummy_failures =
      registry->FindOrCreateCounter("shpir_shard_dummy_failures_total");
  instruments_.fanout_latency_ns =
      registry->FindOrCreateHistogram("shpir_shard_fanout_latency_ns");
  instruments_.shard_count =
      registry->FindOrCreateGauge("shpir_shard_count");
  instruments_.block_size_k =
      registry->FindOrCreateGauge("shpir_shard_block_size_k");
  instruments_.achieved_privacy_c =
      registry->FindOrCreateGauge("shpir_shard_achieved_privacy_c");
  instruments_.shard_count->Set(static_cast<double>(plan_.shards()));
  uint64_t max_k = 0;
  for (const auto& spec : plan_.specs()) {
    max_k = std::max(max_k, spec.block_size);
  }
  instruments_.block_size_k->Set(static_cast<double>(max_k));
  instruments_.achieved_privacy_c->Set(plan_.worst_c());
  dispatcher_->EnableMetrics(registry);
  // Shard engines share one set of shpir_engine_* instruments: their
  // counters and histograms export fleet-wide aggregates, never a
  // per-shard breakdown.
  for (auto& shard : shards_) {
    shard->engine->EnableMetrics(registry);
  }
}

}  // namespace shpir::shard
