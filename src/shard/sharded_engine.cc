#include "shard/sharded_engine.h"

#include <algorithm>
#include <utility>

#include "common/mutex.h"
#include "storage/page_cipher.h"

namespace shpir::shard {

namespace {

/// Ciphertext slot size for payload size B: nonce + (id + payload) + tag.
size_t SealedSlotSize(size_t page_size) {
  return storage::PageCipher::kNonceSize + 8 + page_size +
         storage::PageCipher::kTagSize;
}

/// Offset for deriving per-shard dummy-generator seeds, far from the
/// per-shard device seeds (seed + i) so the streams never collide for
/// any realistic shard count.
constexpr uint64_t kDummySeedOffset = 1000000;

}  // namespace

ShardedPirEngine::ShardedPirEngine(ShardPlan plan, size_t page_size,
                                   Options options)
    : plan_(std::move(plan)),
      page_size_(page_size),
      options_(std::move(options)) {}

Result<std::unique_ptr<ShardedPirEngine>> ShardedPirEngine::Create(
    const Options& options) {
  if (options.page_size == 0) {
    return InvalidArgumentError("page_size must be nonzero");
  }
  SHPIR_ASSIGN_OR_RETURN(
      ShardPlan plan,
      ShardPlan::Compute(options.num_pages, options.cache_pages,
                         options.privacy_c, options.shards,
                         options.cache_mode));
  std::unique_ptr<ShardedPirEngine> engine(
      new ShardedPirEngine(std::move(plan), options.page_size, options));
  const ShardPlan& p = engine->plan_;
  for (uint64_t i = 0; i < p.shards(); ++i) {
    const ShardPlan::ShardSpec& spec = p.spec(i);
    core::CApproxPir::Options eopts;
    eopts.num_pages = spec.num_pages;
    eopts.page_size = options.page_size;
    eopts.cache_pages = spec.cache_pages;
    eopts.privacy_c = options.privacy_c;
    eopts.block_size = spec.block_size;  // From the plan (Eq. 6 at n_i).
    eopts.enforce_secure_memory = options.enforce_secure_memory;
    SHPIR_ASSIGN_OR_RETURN(uint64_t slots,
                           core::CApproxPir::DiskSlots(eopts));

    auto shard = std::make_unique<Shard>(
        options.seed.has_value()
            ? crypto::SecureRandom(*options.seed + kDummySeedOffset + i)
            : crypto::SecureRandom());
    shard->disk = std::make_unique<storage::MemoryDisk>(
        slots, SealedSlotSize(options.page_size));
    storage::Disk* target = shard->disk.get();
    if (options.enable_traces) {
      shard->trace = std::make_unique<storage::AccessTrace>();
      shard->traced_disk = std::make_unique<storage::TracingDisk>(
          shard->disk.get(), shard->trace.get());
      target = shard->traced_disk.get();
    }
    SHPIR_ASSIGN_OR_RETURN(
        shard->device,
        hardware::SecureCoprocessor::Create(
            options.profile, target, options.page_size,
            options.seed.has_value()
                ? std::optional<uint64_t>(*options.seed + i)
                : std::nullopt));
    SHPIR_ASSIGN_OR_RETURN(shard->engine,
                           core::CApproxPir::Create(shard->device.get(),
                                                    eopts,
                                                    shard->trace.get()));
    engine->shards_.push_back(std::move(shard));
  }
  Dispatcher::Options dopts;
  dopts.queues = p.shards();
  dopts.queue_depth = options.queue_depth;
  engine->dispatcher_ = std::make_unique<Dispatcher>(dopts);
  return engine;
}

Status ShardedPirEngine::Initialize(const std::vector<storage::Page>& pages) {
  if (pages.size() > plan_.total_pages()) {
    return InvalidArgumentError("more pages than the plan holds");
  }
  for (uint64_t i = 0; i < plan_.shards(); ++i) {
    const ShardPlan::ShardSpec& spec = plan_.spec(i);
    std::vector<storage::Page> local;
    local.reserve(spec.num_pages);
    for (uint64_t g = spec.first_page;
         g < spec.first_page + spec.num_pages && g < pages.size(); ++g) {
      local.emplace_back(g - spec.first_page, pages[g].data);
    }
    SHPIR_RETURN_IF_ERROR(shards_[i]->engine->Initialize(local));
  }
  return OkStatus();
}

Result<Bytes> ShardedPirEngine::Retrieve(storage::PageId id) {
  return FanOut(id,
                [](core::CApproxPir* engine, storage::PageId local) {
                  return engine->Retrieve(local);
                });
}

Status ShardedPirEngine::Modify(storage::PageId id, Bytes data) {
  Result<Bytes> result = FanOut(
      id, [data = std::move(data)](core::CApproxPir* engine,
                                   storage::PageId local) -> Result<Bytes> {
        SHPIR_RETURN_IF_ERROR(engine->Modify(local, data));
        return Bytes();
      });
  return result.status();
}

Status ShardedPirEngine::Remove(storage::PageId id) {
  Result<Bytes> result = FanOut(
      id, [](core::CApproxPir* engine,
             storage::PageId local) -> Result<Bytes> {
        SHPIR_RETURN_IF_ERROR(engine->Remove(local));
        return Bytes();
      });
  return result.status();
}

Result<Bytes> ShardedPirEngine::FanOut(
    storage::PageId id,
    std::function<Result<Bytes>(core::CApproxPir*, storage::PageId)> real) {
  if (id >= plan_.total_pages()) {
    return NotFoundError("page id out of range");
  }
  const uint64_t owner = plan_.OwnerOf(id);
  const storage::PageId local = plan_.LocalId(id);

  // The caller blocks on `join` until the owner shard's worker fulfills
  // it, so stack storage is safe: no job referencing it can outlive this
  // frame (queued jobs always run, even during Drain).
  struct Join {
    common::Mutex mutex;
    common::CondVar cv;
    std::optional<Result<Bytes>> result GUARDED_BY(mutex);
  } join;

  const auto start = std::chrono::steady_clock::now();
  const auto deadline = options_.deadline.count() > 0
                            ? start + options_.deadline
                            : Dispatcher::kNoDeadline;

  std::vector<Dispatcher::Job> jobs(plan_.shards());
  for (uint64_t s = 0; s < plan_.shards(); ++s) {
    if (s == owner) {
      continue;
    }
    jobs[s] = [this, s](const Status& admission) {
      if (admission.ok()) {
        RunDummy(s);
      }
    };
  }
  jobs[owner] = [this, owner, local, &join, &real](const Status& admission) {
    Result<Bytes> outcome = admission.ok()
                                ? [&]() -> Result<Bytes> {
                                    Shard* shard = shards_[owner].get();
                                    if (observer_) {
                                      observer_(owner, shard->requests_served,
                                                local, /*dummy=*/false);
                                    }
                                    ++shard->requests_served;
                                    return real(shard->engine.get(), local);
                                  }()
                                : Result<Bytes>(admission);
    {
      common::MutexLock lock(join.mutex);
      join.result = std::move(outcome);
      // Notify under the lock: the waiter owns `join`'s stack frame and
      // may destroy it the instant it observes `result` unlocked.
      join.cv.NotifyOne();
    }
  };

  SHPIR_RETURN_IF_ERROR(dispatcher_->SubmitAll(std::move(jobs), deadline));

  common::MutexLock lock(join.mutex);
  while (!join.result.has_value()) {
    join.cv.Wait(lock);
  }
  if (metered()) {
    instruments_.logical_queries->Increment();
    instruments_.fanout_latency_ns->Record(static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - start)
            .count()));
  }
  return *std::move(join.result);
}

void ShardedPirEngine::RunDummy(uint64_t shard_index) {
  Shard* shard = shards_[shard_index].get();
  const storage::PageId local =
      shard->dummy_rng.UniformInt(plan_.spec(shard_index).num_pages);
  if (observer_) {
    observer_(shard_index, shard->requests_served, local, /*dummy=*/true);
  }
  ++shard->requests_served;
  if (metered()) {
    instruments_.dummy_queries->Increment();
  }
  const Result<Bytes> discarded = shard->engine->Retrieve(local);
  if (!discarded.ok() && metered()) {
    // A dummy can hit a Removed id; the round still ran, the payload is
    // discarded either way.
    instruments_.dummy_failures->Increment();
  }
}

void ShardedPirEngine::EnableMetrics(obs::MetricsRegistry* registry) {
  if (registry == nullptr) {
    instruments_ = Instruments{};
    dispatcher_->EnableMetrics(nullptr);
    for (auto& shard : shards_) {
      shard->engine->EnableMetrics(nullptr);
    }
    return;
  }
  instruments_.logical_queries =
      registry->FindOrCreateCounter("shpir_shard_logical_queries_total");
  instruments_.dummy_queries =
      registry->FindOrCreateCounter("shpir_shard_dummy_queries_total");
  instruments_.dummy_failures =
      registry->FindOrCreateCounter("shpir_shard_dummy_failures_total");
  instruments_.fanout_latency_ns =
      registry->FindOrCreateHistogram("shpir_shard_fanout_latency_ns");
  instruments_.shard_count =
      registry->FindOrCreateGauge("shpir_shard_count");
  instruments_.block_size_k =
      registry->FindOrCreateGauge("shpir_shard_block_size_k");
  instruments_.achieved_privacy_c =
      registry->FindOrCreateGauge("shpir_shard_achieved_privacy_c");
  instruments_.shard_count->Set(static_cast<double>(plan_.shards()));
  uint64_t max_k = 0;
  for (const auto& spec : plan_.specs()) {
    max_k = std::max(max_k, spec.block_size);
  }
  instruments_.block_size_k->Set(static_cast<double>(max_k));
  instruments_.achieved_privacy_c->Set(plan_.worst_c());
  dispatcher_->EnableMetrics(registry);
  // Shard engines share one set of shpir_engine_* instruments: their
  // counters and histograms export fleet-wide aggregates, never a
  // per-shard breakdown.
  for (auto& shard : shards_) {
    shard->engine->EnableMetrics(registry);
  }
}

}  // namespace shpir::shard
