#ifndef SHPIR_SHARD_SHARDED_ENGINE_H_
#define SHPIR_SHARD_SHARDED_ENGINE_H_

#include <atomic>
#include <chrono>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/result.h"
#include "core/capprox_pir.h"
#include "core/pir_engine.h"
#include "crypto/secure_random.h"
#include "hardware/coprocessor.h"
#include "hardware/profile.h"
#include "obs/eventlog.h"
#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "obs/privacy_monitor.h"
#include "obs/profiler.h"
#include "obs/slo.h"
#include "obs/trace.h"
#include "shard/dispatcher.h"
#include "shard/shard_plan.h"
#include "storage/access_trace.h"
#include "storage/disk.h"
#include "storage/span_disk.h"

namespace shpir::shard {

/// Sharded serving runtime: n pages range-partitioned across S
/// independent c-approximate engines (one secure device, disk and
/// worker thread each), behind a bounded-queue Dispatcher.
///
/// Privacy. Every logical Retrieve fans out one query to EVERY shard:
/// the real (local) id to the owning shard and an independently uniform
/// dummy id to each other shard. The adversary watching all S disks
/// therefore sees one Fig. 3 round per shard per logical request,
/// regardless of which shard owns the target — the *choice of shard*
/// leaks nothing, and within each shard the relocation distribution
/// stays bounded by that shard's c (Eq. 5 at (n_i, m_i, k_i)). Updates
/// fan out the same way and are indistinguishable from Retrieve on
/// every shard.
///
/// Cost. With per-device caches (ShardPlan::CacheMode::kPerDevice),
/// k_i ≈ k_1/S, so even though all S shards do work per logical query,
/// each shard's round costs ~1/S of the unsharded round and the shards
/// run in parallel: aggregate throughput grows ~S× (bench_sharding
/// measures this in simulated device time).
class ShardedPirEngine : public core::PirEngine {
 public:
  struct Options {
    /// Client-addressable pages n, payload size B.
    uint64_t num_pages = 0;
    size_t page_size = 0;
    /// Cache budget m: per shard device (kPerDevice) or split across
    /// shards (kSplitSingleDevice) — see ShardPlan.
    uint64_t cache_pages = 0;
    double privacy_c = 2.0;
    uint64_t shards = 1;
    ShardPlan::CacheMode cache_mode = ShardPlan::CacheMode::kPerDevice;
    /// Admission control: per-shard FIFO capacity.
    size_t queue_depth = 64;
    /// Per-request deadline measured from submission; zero disables.
    std::chrono::nanoseconds deadline{0};
    /// Hardware simulated per shard device.
    hardware::HardwareProfile profile = hardware::HardwareProfile::Ibm4764();
    /// Deterministic seed; shard i's device seeds with seed + i and its
    /// dummy generator with seed + 1e6 + i. nullopt draws OS entropy.
    std::optional<uint64_t> seed;
    /// Record each shard's adversary-visible access trace (analysis
    /// builds; costs memory per access).
    bool enable_traces = false;
    /// Forwarded to each shard's CApproxPir (Eq. 7 accounting).
    bool enforce_secure_memory = true;
  };

  /// Ground-truth hook for privacy analysis: shard `shard` served its
  /// `shard_request_index`-th query for local page `local_id`;
  /// `dummy` distinguishes cover traffic from real queries. Invoked on
  /// the shard's worker thread — the callback must be thread-safe
  /// across shards. This is an analysis-side oracle, NOT part of the
  /// adversary's view.
  using ShardQueryObserver =
      std::function<void(uint64_t shard, uint64_t shard_request_index,
                         storage::PageId local_id, bool dummy)>;

  static Result<std::unique_ptr<ShardedPirEngine>> Create(
      const Options& options);

  /// Owner-side bulk load; `pages[i]` becomes global id i. Splits the
  /// pages across shards and initializes each engine.
  Status Initialize(const std::vector<storage::Page>& pages);

  /// --- PirEngine ------------------------------------------------------

  /// Fans out to every shard (real query + S-1 dummies), blocks on the
  /// real result. ResourceExhausted when any shard queue is full;
  /// DeadlineExceeded when the real query expired in its queue.
  Result<Bytes> Retrieve(storage::PageId id) override;

  /// Retrieve under a distributed-tracing context: with tracing enabled
  /// (EnableTracing) and an active `ctx`, the fan-out emits a
  /// "shard_fanout" span whose children are, per shard, a retroactive
  /// "queue_wait" span and a "shard_query" span — identical in name for
  /// the real and cover queries, because distinguishing them would
  /// reveal the owning shard and thereby bits of the page id.
  Result<Bytes> TracedRetrieve(storage::PageId id,
                               const obs::TraceContext& ctx) override;

  /// §4.3 update, fanned out like Retrieve (dummies on other shards).
  Status Modify(storage::PageId id, Bytes data) override;
  Status Remove(storage::PageId id) override;
  // Insert is not supported (global id allocation across shards would
  // need an owner-side directory); inherits Unimplemented.

  uint64_t num_pages() const override { return plan_.total_pages(); }
  size_t page_size() const override { return page_size_; }
  const char* name() const override { return "sharded-c-approx"; }

  /// --- Runtime --------------------------------------------------------

  /// Blocks until all shard queues are empty and workers idle.
  void WaitIdle() { dispatcher_->WaitIdle(); }

  /// Graceful shutdown: stop admissions, run queued work, join workers.
  /// Subsequent Retrieves fail with FailedPrecondition.
  void Drain() { dispatcher_->Drain(); }

  /// --- Online retuning ------------------------------------------------

  /// Requests an online block-size change on one shard's engine (see
  /// CApproxPir::RequestBlockSize for the safety argument; the change
  /// lands at that shard's next scan-period boundary). The engine is
  /// single-threaded per shard worker, so the request is submitted as a
  /// job on the shard's dispatcher queue and this call blocks until the
  /// worker ran it: ResourceExhausted when the queue is full (the
  /// caller — typically the controller — retries next tick),
  /// FailedPrecondition after Drain, otherwise the engine's verdict.
  Status RequestShardBlockSize(uint64_t shard, uint64_t new_k);

  /// Aggregate control-plane view of one shard, safe to read from any
  /// thread: published (atomic) engine state, the live c-estimate, and
  /// the shard's queue depth. Everything here is an aggregate the trust
  /// boundary already exports — no page ids, no request indices.
  struct ShardControlState {
    uint64_t block_size = 0;          // Applied k (published).
    uint64_t pending_block_size = 0;  // 0 when no transition pending.
    uint64_t transitions = 0;         // Applied retunes, lifetime.
    uint64_t disk_slots = 0;
    uint64_t cache_pages = 0;
    double c_theory = 0.0;    // Eq. 5 at the published k.
    double c_estimate = 0.0;  // Live monitor estimate; 0 while warming.
    size_t queue_depth = 0;
    size_t queue_capacity = 0;
  };
  ShardControlState ShardControl(uint64_t shard) const;

  /// --- Introspection --------------------------------------------------

  const ShardPlan& plan() const { return plan_; }
  uint64_t shards() const { return plan_.shards(); }
  Dispatcher& dispatcher() { return *dispatcher_; }

  /// Per-shard internals, exposed for analysis and benches (ground
  /// truth a deployment would keep inside each device).
  core::CApproxPir* shard_engine(uint64_t shard) {
    return shards_[shard]->engine.get();
  }
  hardware::SecureCoprocessor* shard_device(uint64_t shard) {
    return shards_[shard]->device.get();
  }
  /// Null unless Options::enable_traces.
  storage::AccessTrace* shard_trace(uint64_t shard) {
    return shards_[shard]->trace.get();
  }

  void set_shard_query_observer(ShardQueryObserver observer) {
    observer_ = std::move(observer);
  }

  /// --- Observability --------------------------------------------------

  /// Registers shard-level aggregate instruments (queue depth,
  /// admission rejections, dummy/logical query counters, fan-out
  /// latency) plus each shard engine's instruments in `registry`
  /// (unowned; must outlive the engine). Per-shard engine counters
  /// share names, so they export as fleet-wide totals — no per-shard
  /// (let alone per-request) breakdown leaves the trust boundary.
  void EnableMetrics(obs::MetricsRegistry* registry);

  /// Attaches a span collector (unowned; must outlive the engine, pass
  /// nullptr to detach) to the fan-out path, every shard engine and
  /// every shard disk: sampled queries entered via TracedRetrieve then
  /// produce the full span tree down to per-shard disk I/O.
  void EnableTracing(obs::Tracer* tracer);

  /// Creates one online PrivacyMonitor per shard (scan period and
  /// configured c taken from that shard's engine) and attaches the
  /// monitors' aggregate instruments to `registry` (may be null: the
  /// monitors still run, for Estimate()/breaches() polling). The shared
  /// gauge tracks the most recently refreshed shard; the counters
  /// aggregate fleet-wide. `window` is the per-shard sliding window in
  /// relocations.
  void EnablePrivacyMonitor(obs::MetricsRegistry* registry,
                            uint64_t window = 1 << 16);

  /// Forces every shard monitor to refresh its gauge and breach check
  /// now (deterministic reads before a snapshot).
  void PublishPrivacyEstimates();

  /// Null until EnablePrivacyMonitor.
  obs::PrivacyMonitor* shard_monitor(uint64_t shard) {
    return shards_[shard]->monitor.get();
  }

  /// Attaches the sampling profiler (unowned; must outlive the engine)
  /// to every shard engine, and folds dispatcher queue waits in as
  /// "shard_fanout;queue_wait" external samples. Real and cover
  /// queries profile identically — same head-sampling counter, same
  /// frame vocabulary — so the profile stays target-independent.
  void EnableProfiling(obs::Profiler* profiler);

  /// Creates one SloTracker per shard plus a logical-request tracker
  /// at the fan-out level. Every shard query — real or cover — records
  /// into its shard's tracker identically; admission rejections and
  /// deadline expiries count against availability. Only the logical
  /// tracker exports shpir_slo_* gauges on `registry` (may be null);
  /// per-shard state is served by SloStatusJson() / the SLO_STATUS
  /// wire op, keyed by public shard index.
  void EnableSlo(const obs::SloTracker::Objectives& objectives,
                 obs::MetricsRegistry* registry = nullptr);

  /// Closed-schema status document: logical tracker plus one entry per
  /// shard. Empty "{}" until EnableSlo.
  std::string SloStatusJson();

  /// Null until EnableSlo.
  obs::SloTracker* shard_slo(uint64_t shard) {
    return shards_[shard]->slo.get();
  }
  obs::SloTracker* logical_slo() { return logical_slo_.get(); }

  /// Attaches the structured event log (unowned; must outlive the
  /// engine, nullptr detaches). The fan-out then emits one event per
  /// logical query at kDebug plus kWarn events on admission rejection —
  /// always at the logical level, never per real-vs-cover shard query,
  /// so the emitted event *shapes* are identical whichever shard owns
  /// the target (tests/incident_shape_test.cc).
  void EnableEventLog(obs::EventLog* log);

  /// Attaches the flight recorder (unowned; must outlive the engine,
  /// nullptr detaches) and registers the runtime's edge triggers on it:
  /// privacy-monitor breaches (summed across shards), logical SLO
  /// alert transitions, and dispatcher overload (admission rejections +
  /// deadline expirations). Also sets the recorder's config fingerprint
  /// from the public plan parameters. The fan-out polls the recorder
  /// every kRecorderPollPeriod logical queries and on every rejection.
  void EnableFlightRecorder(obs::FlightRecorder* recorder);

  /// Public plan/build description used as the incident config
  /// fingerprint ("shards=4 pages=4096 k=16 c=2.00 ...").
  std::string ConfigFingerprint() const;

  /// Health/readiness JSON for the HEALTH op (load-balancer surface):
  /// dispatcher liveness and depth, SLO/privacy state, build identity.
  /// Aggregate-only, like every exported surface.
  std::string HealthJson();

 private:
  /// One shard's stack, in destruction-order-sensitive member order.
  struct Shard {
    std::unique_ptr<storage::MemoryDisk> disk;
    std::unique_ptr<storage::AccessTrace> trace;        // Optional.
    std::unique_ptr<storage::TracingDisk> traced_disk;  // Optional.
    std::unique_ptr<storage::SpanDisk> span_disk;
    std::unique_ptr<hardware::SecureCoprocessor> device;
    std::unique_ptr<obs::PrivacyMonitor> monitor;  // Optional; pre-engine.
    std::unique_ptr<obs::SloTracker> slo;          // Optional.
    std::unique_ptr<core::CApproxPir> engine;
    /// Touched only by this shard's worker thread.
    crypto::SecureRandom dummy_rng;
    uint64_t requests_served = 0;

    explicit Shard(crypto::SecureRandom rng) : dummy_rng(std::move(rng)) {}
  };

  ShardedPirEngine(ShardPlan plan, size_t page_size, Options options);

  /// Shared fan-out body for Retrieve/Modify/Remove. `real` runs on the
  /// owner shard's worker with the local id and that shard's
  /// "shard_query" span context; its Status/payload is joined on.
  /// Dummies run everywhere else. `ctx` parents the fan-out spans
  /// (inactive context = no tracing).
  Result<Bytes> FanOut(
      storage::PageId id, const obs::TraceContext& ctx,
      std::function<Result<Bytes>(core::CApproxPir*, storage::PageId,
                                  const obs::TraceContext&)>
          real);

  /// Runs one dummy query on shard `shard` (worker thread), with its
  /// spans parented under `fan_ctx`.
  void RunDummy(uint64_t shard, const obs::TraceContext& fan_ctx);

  /// Records the retroactive per-shard "queue_wait" span (submission to
  /// worker pickup). No-op without an active context.
  void RecordShardQueueWait(const obs::TraceContext& fan_ctx,
                            uint64_t submit_ns, int32_t shard);

  bool metered() const { return instruments_.logical_queries != nullptr; }

  ShardPlan plan_;
  size_t page_size_;
  Options options_;
  std::vector<std::unique_ptr<Shard>> shards_;
  ShardQueryObserver observer_;
  obs::Tracer* tracer_ = nullptr;
  obs::Profiler* profiler_ = nullptr;
  obs::EventLog* eventlog_ = nullptr;
  obs::FlightRecorder* recorder_ = nullptr;
  /// Recorder that already holds this engine's triggers (registration
  /// is once per recorder; re-attaching must not duplicate sources).
  obs::FlightRecorder* trigger_host_ = nullptr;
  /// Logical queries between recorder polls on the fan-out path.
  static constexpr uint64_t kRecorderPollPeriod = 64;
  std::atomic<uint64_t> fanout_count_{0};
  std::unique_ptr<obs::SloTracker> logical_slo_;

  struct Instruments {
    obs::Counter* logical_queries = nullptr;
    obs::Counter* dummy_queries = nullptr;
    obs::Counter* dummy_failures = nullptr;
    obs::Histogram* fanout_latency_ns = nullptr;
    obs::Gauge* shard_count = nullptr;
    obs::Gauge* block_size_k = nullptr;
    obs::Gauge* achieved_privacy_c = nullptr;
  };
  Instruments instruments_;

  /// Declared last: its destructor drains and joins the workers while
  /// the shard stacks above are still alive.
  std::unique_ptr<Dispatcher> dispatcher_;
};

}  // namespace shpir::shard

#endif  // SHPIR_SHARD_SHARDED_ENGINE_H_
