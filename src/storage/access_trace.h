#ifndef SHPIR_STORAGE_ACCESS_TRACE_H_
#define SHPIR_STORAGE_ACCESS_TRACE_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "storage/disk.h"

namespace shpir::storage {

/// One adversary-observable disk access. The server (adversary) sees the
/// operation type and slot index of every access the secure hardware
/// makes — nothing else (contents are ciphertext).
struct AccessEvent {
  enum class Op : uint8_t { kRead, kWrite };

  /// request_index value for accesses made before any BeginRequest()
  /// (bulk load, reshuffles, other setup I/O). Setup accesses are part
  /// of no client request; analysis code must not attribute them to one.
  static constexpr uint64_t kSetupIndex = UINT64_MAX;

  Op op;
  Location location;
  /// Index of the client request during which this access happened,
  /// stamped by the PIR engine via AccessTrace::BeginRequest(), or
  /// kSetupIndex for accesses preceding the first request.
  uint64_t request_index;

  friend bool operator==(const AccessEvent& a, const AccessEvent& b) {
    return a.op == b.op && a.location == b.location &&
           a.request_index == b.request_index;
  }
};

/// Records the adversary's view of the disk. PIR engines call
/// BeginRequest() once per client query so analysis code can correlate
/// accesses with request instants (the paper's t = 0, 1, 2, ...).
class AccessTrace {
 public:
  /// Marks the start of a new client request; subsequent events are
  /// stamped with its index. Returns that index.
  uint64_t BeginRequest() { return current_request_++; }

  void RecordRead(Location loc) {
    events_.push_back({AccessEvent::Op::kRead, loc, CurrentIndex()});
  }
  void RecordWrite(Location loc) {
    events_.push_back({AccessEvent::Op::kWrite, loc, CurrentIndex()});
  }

  const std::vector<AccessEvent>& events() const { return events_; }
  uint64_t num_requests() const { return current_request_; }

  void Clear() {
    events_.clear();
    current_request_ = 0;
  }

 private:
  /// Index to stamp on an access happening now. Before the first
  /// BeginRequest() the subtraction below would underflow to an
  /// arbitrary-looking huge index; such setup accesses get the explicit
  /// kSetupIndex sentinel instead.
  uint64_t CurrentIndex() const {
    return current_request_ == 0 ? AccessEvent::kSetupIndex
                                 : current_request_ - 1;
  }

  std::vector<AccessEvent> events_;
  uint64_t current_request_ = 0;
};

/// Disk decorator that reports every access to an AccessTrace. Wrap the
/// server disk with this to obtain the adversary's transcript.
class TracingDisk : public Disk {
 public:
  /// Neither pointer is owned; both must outlive the TracingDisk.
  TracingDisk(Disk* inner, AccessTrace* trace)
      : inner_(inner), trace_(trace) {}

  uint64_t num_slots() const override { return inner_->num_slots(); }
  size_t slot_size() const override { return inner_->slot_size(); }

  Status Read(Location loc, MutableByteSpan out) override {
    trace_->RecordRead(loc);
    return inner_->Read(loc, out);
  }

  Status Write(Location loc, ByteSpan data) override {
    trace_->RecordWrite(loc);
    return inner_->Write(loc, data);
  }

 private:
  Disk* inner_;
  AccessTrace* trace_;
};

}  // namespace shpir::storage

#endif  // SHPIR_STORAGE_ACCESS_TRACE_H_
