#include "storage/disk.h"

#include <cstring>

namespace shpir::storage {

Status Disk::ReadRun(Location start, uint64_t count, std::vector<Bytes>& out) {
  if (start + count > num_slots()) {
    return OutOfRangeError("run extends past end of disk");
  }
  // shpir-lint-allow-next-line(secret-alloc): run length is a public scheme parameter (c pages per round), not secret content
  out.resize(count);
  // shpir-lint-allow-next-line(secret-loop-bound): iteration count equals the public run length; the run's start location is the priced observable (Eq. 5)
  for (uint64_t i = 0; i < count; ++i) {
    out[i].resize(slot_size());
    SHPIR_RETURN_IF_ERROR(Read(start + i, out[i]));
  }
  return OkStatus();
}

Status Disk::WriteRun(Location start, const std::vector<Bytes>& slots) {
  if (start + slots.size() > num_slots()) {
    return OutOfRangeError("run extends past end of disk");
  }
  for (uint64_t i = 0; i < slots.size(); ++i) {
    SHPIR_RETURN_IF_ERROR(Write(start + i, slots[i]));
  }
  return OkStatus();
}

MemoryDisk::MemoryDisk(uint64_t num_slots, size_t slot_size)
    : num_slots_(num_slots),
      slot_size_(slot_size),
      storage_(num_slots * slot_size, 0) {}

Status MemoryDisk::Read(Location loc, MutableByteSpan out) {
  if (loc >= num_slots_) {
    return OutOfRangeError("read past end of disk");
  }
  if (out.size() != slot_size_) {
    return InvalidArgumentError("read buffer has wrong size");
  }
  std::memcpy(out.data(), storage_.data() + loc * slot_size_, slot_size_);
  return OkStatus();
}

Status MemoryDisk::Write(Location loc, ByteSpan data) {
  if (loc >= num_slots_) {
    return OutOfRangeError("write past end of disk");
  }
  if (data.size() != slot_size_) {
    return InvalidArgumentError("write data has wrong size");
  }
  std::memcpy(storage_.data() + loc * slot_size_, data.data(), slot_size_);
  return OkStatus();
}

}  // namespace shpir::storage
