#ifndef SHPIR_STORAGE_DISK_H_
#define SHPIR_STORAGE_DISK_H_

#include <cstdint>
#include <vector>

#include "common/bytes.h"
#include "common/result.h"
#include "storage/page.h"

namespace shpir::storage {

/// A block device holding `num_slots` fixed-size slots. This is the
/// untrusted server disk: everything written here is visible to the
/// adversary, so callers store only ciphertext.
class Disk {
 public:
  virtual ~Disk() = default;

  /// Number of slots.
  virtual uint64_t num_slots() const = 0;

  /// Size in bytes of each slot.
  virtual size_t slot_size() const = 0;

  /// Reads the slot at `loc` into `out` (must be slot_size() bytes).
  virtual Status Read(Location loc, MutableByteSpan out) = 0;

  /// Overwrites the slot at `loc` with `data` (must be slot_size() bytes).
  virtual Status Write(Location loc, ByteSpan data) = 0;

  /// Reads `count` consecutive slots starting at `start`. The default
  /// implementation loops over Read(); devices with faster sequential
  /// paths may override. Returns the slots concatenated.
  virtual Status ReadRun(Location start, uint64_t count,
                         std::vector<Bytes>& out);

  /// Writes `slots` consecutively starting at `start`.
  virtual Status WriteRun(Location start, const std::vector<Bytes>& slots);
};

/// RAM-backed disk, the default substrate for tests and simulations.
class MemoryDisk : public Disk {
 public:
  /// Creates a zero-initialized disk of `num_slots` x `slot_size` bytes.
  MemoryDisk(uint64_t num_slots, size_t slot_size);

  uint64_t num_slots() const override { return num_slots_; }
  size_t slot_size() const override { return slot_size_; }
  Status Read(Location loc, MutableByteSpan out) override;
  Status Write(Location loc, ByteSpan data) override;

 private:
  uint64_t num_slots_;
  size_t slot_size_;
  Bytes storage_;
};

}  // namespace shpir::storage

#endif  // SHPIR_STORAGE_DISK_H_
