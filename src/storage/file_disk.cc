#include "storage/file_disk.h"

#include <cstdio>

namespace shpir::storage {

Result<std::unique_ptr<FileDisk>> FileDisk::Create(const std::string& path,
                                                   uint64_t num_slots,
                                                   size_t slot_size) {
  std::FILE* file = std::fopen(path.c_str(), "wb+");
  if (file == nullptr) {
    return InternalError("cannot create disk file: " + path);
  }
  // Size the file by writing the final byte.
  const uint64_t total = num_slots * slot_size;
  if (total > 0) {
    if (std::fseek(file, static_cast<long>(total - 1), SEEK_SET) != 0 ||
        std::fputc(0, file) == EOF) {
      std::fclose(file);
      return InternalError("cannot size disk file: " + path);
    }
  }
  return std::unique_ptr<FileDisk>(new FileDisk(file, num_slots, slot_size));
}

Result<std::unique_ptr<FileDisk>> FileDisk::Open(const std::string& path,
                                                 uint64_t num_slots,
                                                 size_t slot_size) {
  std::FILE* file = std::fopen(path.c_str(), "rb+");
  if (file == nullptr) {
    return NotFoundError("cannot open disk file: " + path);
  }
  if (std::fseek(file, 0, SEEK_END) != 0) {
    std::fclose(file);
    return InternalError("cannot stat disk file: " + path);
  }
  const long size = std::ftell(file);
  if (size < 0 ||
      static_cast<uint64_t>(size) != num_slots * slot_size) {
    std::fclose(file);
    return InvalidArgumentError("disk file geometry mismatch: " + path);
  }
  return std::unique_ptr<FileDisk>(new FileDisk(file, num_slots, slot_size));
}

FileDisk::~FileDisk() {
  if (file_ != nullptr) {
    std::fclose(file_);
  }
}

Status FileDisk::Read(Location loc, MutableByteSpan out) {
  if (loc >= num_slots_) {
    return OutOfRangeError("read past end of disk");
  }
  if (out.size() != slot_size_) {
    return InvalidArgumentError("read buffer has wrong size");
  }
  if (std::fseek(file_, static_cast<long>(loc * slot_size_), SEEK_SET) != 0) {
    return InternalError("seek failed");
  }
  if (std::fread(out.data(), 1, slot_size_, file_) != slot_size_) {
    return DataLossError("short read from disk file");
  }
  return OkStatus();
}

Status FileDisk::Write(Location loc, ByteSpan data) {
  if (loc >= num_slots_) {
    return OutOfRangeError("write past end of disk");
  }
  if (data.size() != slot_size_) {
    return InvalidArgumentError("write data has wrong size");
  }
  if (std::fseek(file_, static_cast<long>(loc * slot_size_), SEEK_SET) != 0) {
    return InternalError("seek failed");
  }
  // shpir-lint-allow-next-line(secret-log): fwrite here is the provider-side disk write, not logging (name-matched seed); pages reach this layer sealed
  if (std::fwrite(data.data(), 1, slot_size_, file_) != slot_size_) {
    return DataLossError("short write to disk file");
  }
  return OkStatus();
}

}  // namespace shpir::storage
