#ifndef SHPIR_STORAGE_FILE_DISK_H_
#define SHPIR_STORAGE_FILE_DISK_H_

#include <cstdio>
#include <memory>
#include <string>

#include "storage/disk.h"

namespace shpir::storage {

/// File-backed disk, for databases larger than RAM or for persistence
/// across runs. Slots are stored contiguously in a single flat file.
class FileDisk : public Disk {
 public:
  /// Creates (or truncates) a file sized for `num_slots` x `slot_size`.
  static Result<std::unique_ptr<FileDisk>> Create(const std::string& path,
                                                  uint64_t num_slots,
                                                  size_t slot_size);

  /// Opens an existing file created by Create() with matching geometry.
  static Result<std::unique_ptr<FileDisk>> Open(const std::string& path,
                                                uint64_t num_slots,
                                                size_t slot_size);

  ~FileDisk() override;

  FileDisk(const FileDisk&) = delete;
  FileDisk& operator=(const FileDisk&) = delete;

  uint64_t num_slots() const override { return num_slots_; }
  size_t slot_size() const override { return slot_size_; }
  Status Read(Location loc, MutableByteSpan out) override;
  Status Write(Location loc, ByteSpan data) override;

 private:
  FileDisk(std::FILE* file, uint64_t num_slots, size_t slot_size)
      : file_(file), num_slots_(num_slots), slot_size_(slot_size) {}

  std::FILE* file_;
  uint64_t num_slots_;
  size_t slot_size_;
};

}  // namespace shpir::storage

#endif  // SHPIR_STORAGE_FILE_DISK_H_
