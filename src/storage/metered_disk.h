#ifndef SHPIR_STORAGE_METERED_DISK_H_
#define SHPIR_STORAGE_METERED_DISK_H_

#include <atomic>

#include "obs/metrics.h"
#include "storage/disk.h"

namespace shpir::storage {

/// Disk decorator that exports aggregate I/O metrics (operation counts,
/// bytes moved, head seeks) to an obs::MetricsRegistry. Safe outside the
/// trusted boundary: it observes only what the untrusted server already
/// sees — operation type and volume — never slot indices or contents.
///
/// A "seek" is counted whenever an access does not continue sequentially
/// from the previous one, mirroring how the paper's cost model charges
/// t_s per discontiguous access.
class MeteredDisk : public Disk {
 public:
  /// `inner` and `registry` are unowned and must outlive the decorator.
  MeteredDisk(Disk* inner, obs::MetricsRegistry* registry)
      : inner_(inner),
        reads_(registry->FindOrCreateCounter("shpir_disk_reads_total")),
        writes_(registry->FindOrCreateCounter("shpir_disk_writes_total")),
        read_bytes_(
            registry->FindOrCreateCounter("shpir_disk_read_bytes_total")),
        write_bytes_(
            registry->FindOrCreateCounter("shpir_disk_write_bytes_total")),
        seeks_(registry->FindOrCreateCounter("shpir_disk_seeks_total")) {}

  uint64_t num_slots() const override { return inner_->num_slots(); }
  size_t slot_size() const override { return inner_->slot_size(); }

  Status Read(Location loc, MutableByteSpan out) override {
    Account(loc, 1, reads_, read_bytes_);
    return inner_->Read(loc, out);
  }

  Status Write(Location loc, ByteSpan data) override {
    Account(loc, 1, writes_, write_bytes_);
    return inner_->Write(loc, data);
  }

  Status ReadRun(Location start, uint64_t count,
                 std::vector<Bytes>& out) override {
    Account(start, count, reads_, read_bytes_);
    return inner_->ReadRun(start, count, out);
  }

  Status WriteRun(Location start, const std::vector<Bytes>& slots) override {
    Account(start, slots.size(), writes_, write_bytes_);
    return inner_->WriteRun(start, slots);
  }

 private:
  void Account(Location loc, uint64_t count, obs::Counter* ops,
               obs::Counter* bytes) {
    // shpir-lint-allow-next-line(secret-log): run length is a public scheme parameter (c pages per round); metering it is the paper's cost accounting
    ops->Increment(count);
    // shpir-lint-allow-next-line(secret-log): byte volume is count * slot_size, both public parameters
    bytes->Increment(count * inner_->slot_size());
    const uint64_t expected = next_sequential_.exchange(
        loc + count, std::memory_order_relaxed);
    // shpir-lint-allow-next-line(secret-compare): seek detection over the provider-visible location stream; this decorator sits below the trust boundary where accesses are the priced observable (Eq. 5)
    if (loc != expected) {
      seeks_->Increment();
    }
  }

  Disk* inner_;
  obs::Counter* reads_;
  obs::Counter* writes_;
  obs::Counter* read_bytes_;
  obs::Counter* write_bytes_;
  obs::Counter* seeks_;
  // Location the head would reach next if access stayed sequential.
  std::atomic<uint64_t> next_sequential_{UINT64_MAX};
};

}  // namespace shpir::storage

#endif  // SHPIR_STORAGE_METERED_DISK_H_
