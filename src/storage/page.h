#ifndef SHPIR_STORAGE_PAGE_H_
#define SHPIR_STORAGE_PAGE_H_

#include <cstdint>
#include <limits>
#include <utility>

#include "common/bytes.h"

namespace shpir::storage {

/// Logical page identifier; the paper assigns ids 0..n-1.
using PageId = uint64_t;

/// Physical slot index on the server's disk under the current permutation.
using Location = uint64_t;

/// Reserved id marking dummy / deleted pages (the paper's "all 1's"
/// reserved value, §4.3).
inline constexpr PageId kDummyPageId = std::numeric_limits<PageId>::max();

/// A database page: a (id, data) tuple (§3.1). `data` has the fixed
/// database page size B.
struct Page {
  PageId id = kDummyPageId;
  Bytes data;

  Page() = default;
  Page(PageId id_in, Bytes data_in) : id(id_in), data(std::move(data_in)) {}

  bool is_dummy() const { return id == kDummyPageId; }

  friend bool operator==(const Page& a, const Page& b) {
    return a.id == b.id && a.data == b.data;
  }
};

}  // namespace shpir::storage

#endif  // SHPIR_STORAGE_PAGE_H_
