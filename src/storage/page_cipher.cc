#include "storage/page_cipher.h"

#include <cstring>

namespace shpir::storage {

Result<PageCipher> PageCipher::Create(ByteSpan enc_key, ByteSpan mac_key,
                                      size_t page_size) {
  if (page_size == 0) {
    return InvalidArgumentError("page size must be positive");
  }
  SHPIR_ASSIGN_OR_RETURN(crypto::AesCtr ctr, crypto::AesCtr::Create(enc_key));
  crypto::HmacSha256 mac(mac_key);
  return PageCipher(std::move(ctr), std::move(mac), page_size);
}

Result<Bytes> PageCipher::Seal(const Page& page,
                               crypto::SecureRandom& rng) const {
  Bytes out(sealed_size());
  MutableByteSpan nonce(out.data(), kNonceSize);
  MutableByteSpan body(out.data() + kNonceSize, codec_.serialized_size());
  rng.Fill(nonce);
  SHPIR_RETURN_IF_ERROR(codec_.Serialize(page, body));
  SHPIR_RETURN_IF_ERROR(ctr_.CryptWithNonce(nonce, body, body));
  const crypto::HmacSha256::Tag tag =
      mac_.Compute(ByteSpan(out.data(), kNonceSize + body.size()));
  std::memcpy(out.data() + kNonceSize + body.size(), tag.data(), kTagSize);
  return out;
}

Result<Page> PageCipher::Open(ByteSpan sealed) const {
  if (sealed.size() != sealed_size()) {
    return InvalidArgumentError("sealed page has wrong size");
  }
  const size_t body_len = codec_.serialized_size();
  const ByteSpan authed(sealed.data(), kNonceSize + body_len);
  const ByteSpan tag(sealed.data() + kNonceSize + body_len, kTagSize);
  if (!mac_.Verify(authed, tag)) {
    return DataLossError("page MAC verification failed");
  }
  const ByteSpan nonce(sealed.data(), kNonceSize);
  Bytes body(sealed.begin() + kNonceSize,
             sealed.begin() + kNonceSize + body_len);
  SHPIR_RETURN_IF_ERROR(ctr_.CryptWithNonce(nonce, body, body));
  return codec_.Deserialize(body);
}

}  // namespace shpir::storage
