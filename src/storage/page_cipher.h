#ifndef SHPIR_STORAGE_PAGE_CIPHER_H_
#define SHPIR_STORAGE_PAGE_CIPHER_H_

#include <cstddef>

#include "common/bytes.h"
#include "common/result.h"
#include "crypto/ctr.h"
#include "crypto/hmac.h"
#include "crypto/secure_random.h"
#include "storage/page.h"
#include "storage/page_codec.h"

namespace shpir::storage {

/// Authenticated page encryption: AES-CTR with a fresh random nonce per
/// write plus HMAC-SHA-256 over nonce||ciphertext (encrypt-then-MAC).
///
/// Re-encrypting the same page twice yields unlinkable ciphertexts (fresh
/// nonce), which is what lets the scheme rewrite k+1 pages without the
/// adversary learning which of them changed — the core "new random nonce"
/// step of Fig. 3, line 21.
class PageCipher {
 public:
  static constexpr size_t kNonceSize = 12;
  static constexpr size_t kTagSize = crypto::HmacSha256::kTagSize;

  /// Creates a cipher for pages of `page_size` payload bytes. `enc_key`
  /// must be a valid AES key (16/24/32 bytes); `mac_key` any length.
  static Result<PageCipher> Create(ByteSpan enc_key, ByteSpan mac_key,
                                   size_t page_size);

  /// Ciphertext slot size: nonce + encrypted (id + payload) + tag.
  size_t sealed_size() const {
    return kNonceSize + codec_.serialized_size() + kTagSize;
  }

  size_t page_size() const { return codec_.page_size(); }

  /// Encrypts `page` under a fresh nonce drawn from `rng`.
  Result<Bytes> Seal(const Page& page, crypto::SecureRandom& rng) const;

  /// Verifies and decrypts a sealed page. Returns DataLoss on MAC
  /// failure (the "curious but not malicious" server should never trigger
  /// this; it guards against corruption).
  Result<Page> Open(ByteSpan sealed) const;

 private:
  PageCipher(crypto::AesCtr ctr, crypto::HmacSha256 mac, size_t page_size)
      : ctr_(std::move(ctr)), mac_(std::move(mac)), codec_(page_size) {}

  crypto::AesCtr ctr_;
  crypto::HmacSha256 mac_;
  PageCodec codec_;
};

}  // namespace shpir::storage

#endif  // SHPIR_STORAGE_PAGE_CIPHER_H_
