#include "storage/page_codec.h"

#include <cstring>

namespace shpir::storage {

Status PageCodec::Serialize(const Page& page, MutableByteSpan out) const {
  if (out.size() != serialized_size()) {
    return InvalidArgumentError("serialize buffer has wrong size");
  }
  if (page.data.size() > page_size_) {
    return InvalidArgumentError("page payload exceeds page size");
  }
  StoreLE64(page.id, out.data());
  std::memcpy(out.data() + kHeaderSize, page.data.data(), page.data.size());
  if (page.data.size() < page_size_) {
    std::memset(out.data() + kHeaderSize + page.data.size(), 0,
                page_size_ - page.data.size());
  }
  return OkStatus();
}

Result<Page> PageCodec::Deserialize(ByteSpan in) const {
  if (in.size() != serialized_size()) {
    return InvalidArgumentError("serialized page has wrong size");
  }
  Page page;
  page.id = LoadLE64(in.data());
  page.data.assign(in.begin() + kHeaderSize, in.end());
  return page;
}

}  // namespace shpir::storage
