#ifndef SHPIR_STORAGE_PAGE_CODEC_H_
#define SHPIR_STORAGE_PAGE_CODEC_H_

#include <cstddef>

#include "common/result.h"
#include "storage/page.h"

namespace shpir::storage {

/// Fixed-size plaintext serialization of a Page: 8-byte little-endian id
/// followed by exactly `page_size` payload bytes. All pages in a database
/// share one codec so every serialized page has identical length — a
/// requirement for the oblivious layout (ciphertext length must not leak
/// which page is which).
class PageCodec {
 public:
  static constexpr size_t kHeaderSize = 8;

  /// Creates a codec for pages whose payload is `page_size` bytes.
  explicit PageCodec(size_t page_size) : page_size_(page_size) {}

  size_t page_size() const { return page_size_; }

  /// Serialized (plaintext) length: header + payload.
  size_t serialized_size() const { return kHeaderSize + page_size_; }

  /// Serializes `page` into `out` (must be serialized_size() bytes).
  /// Payloads shorter than page_size are zero-padded; longer payloads are
  /// rejected.
  Status Serialize(const Page& page, MutableByteSpan out) const;

  /// Parses a serialized page. The payload always comes back with exactly
  /// page_size bytes.
  Result<Page> Deserialize(ByteSpan in) const;

 private:
  size_t page_size_;
};

}  // namespace shpir::storage

#endif  // SHPIR_STORAGE_PAGE_CODEC_H_
