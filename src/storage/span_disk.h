#ifndef SHPIR_STORAGE_SPAN_DISK_H_
#define SHPIR_STORAGE_SPAN_DISK_H_

#include "obs/trace.h"
#include "storage/disk.h"

namespace shpir::storage {

/// Disk decorator emitting one distributed-tracing span per I/O batch
/// ("disk_read" / "disk_write", obs/trace.h) when a sampled trace
/// context is attached. Like MeteredDisk it lives outside the trusted
/// boundary and observes only what the untrusted server already sees —
/// operation type, batch size and timing — never slot indices in the
/// span payload.
///
/// Context handling: set_context() attaches the current query's context
/// before the engine round and clear_context() detaches it after. The
/// decorator is NOT internally synchronized — it relies on the caller
/// serializing queries per disk, which CApproxPir (single logical
/// thread per engine, enforced upstream by ThreadSafePirEngine or the
/// shard dispatcher's per-shard serialization) already guarantees.
class SpanDisk : public Disk {
 public:
  /// `inner` is unowned and must outlive the decorator.
  explicit SpanDisk(Disk* inner) : inner_(inner) {}

  /// Attaches the span sink; `shard` labels the emitted spans (-1 when
  /// not shard-specific). Null detaches.
  void set_tracer(obs::Tracer* tracer, int32_t shard = -1) {
    tracer_ = tracer;
    shard_ = shard;
  }

  /// Parents subsequent I/O spans under `ctx` (no-op spans unless the
  /// context is active AND a tracer is attached).
  void set_context(const obs::TraceContext& ctx) { ctx_ = ctx; }
  void clear_context() { ctx_ = obs::TraceContext{}; }

  uint64_t num_slots() const override { return inner_->num_slots(); }
  size_t slot_size() const override { return inner_->slot_size(); }

  Status Read(Location loc, MutableByteSpan out) override {
    obs::TraceSpan span(tracer_, ctx_, "disk_read", shard_);
    return inner_->Read(loc, out);
  }

  Status Write(Location loc, ByteSpan data) override {
    obs::TraceSpan span(tracer_, ctx_, "disk_write", shard_);
    return inner_->Write(loc, data);
  }

  Status ReadRun(Location start, uint64_t count,
                 std::vector<Bytes>& out) override {
    obs::TraceSpan span(tracer_, ctx_, "disk_read", shard_);
    return inner_->ReadRun(start, count, out);
  }

  Status WriteRun(Location start, const std::vector<Bytes>& slots) override {
    obs::TraceSpan span(tracer_, ctx_, "disk_write", shard_);
    return inner_->WriteRun(start, slots);
  }

 private:
  Disk* inner_;
  obs::Tracer* tracer_ = nullptr;
  int32_t shard_ = -1;
  obs::TraceContext ctx_;
};

}  // namespace shpir::storage

#endif  // SHPIR_STORAGE_SPAN_DISK_H_
