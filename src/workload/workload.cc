#include "workload/workload.h"

#include <algorithm>
#include <cmath>

namespace shpir::workload {

UniformWorkload::UniformWorkload(uint64_t num_pages, uint64_t seed)
    : num_pages_(num_pages), rng_(seed) {}

storage::PageId UniformWorkload::Next() {
  return rng_.UniformInt(num_pages_);
}

std::vector<double> UniformWorkload::Distribution() const {
  return std::vector<double>(num_pages_,
                             1.0 / static_cast<double>(num_pages_));
}

ZipfWorkload::ZipfWorkload(uint64_t num_pages, double exponent,
                           uint64_t seed)
    : rng_(seed) {
  probability_.resize(num_pages);
  double total = 0;
  for (uint64_t i = 0; i < num_pages; ++i) {
    probability_[i] =
        1.0 / std::pow(static_cast<double>(i + 1), exponent);
    total += probability_[i];
  }
  cumulative_.resize(num_pages);
  double acc = 0;
  for (uint64_t i = 0; i < num_pages; ++i) {
    probability_[i] /= total;
    acc += probability_[i];
    cumulative_[i] = acc;
  }
}

storage::PageId ZipfWorkload::Next() {
  const double x = rng_.UniformDouble();
  const auto it =
      std::lower_bound(cumulative_.begin(), cumulative_.end(), x);
  return static_cast<storage::PageId>(
      std::min<size_t>(it - cumulative_.begin(), cumulative_.size() - 1));
}

std::vector<double> ZipfWorkload::Distribution() const {
  return probability_;
}

HotspotWorkload::HotspotWorkload(uint64_t num_pages, uint64_t hot_pages,
                                 double hot_ratio, uint64_t seed)
    : num_pages_(num_pages),
      hot_pages_(std::min(hot_pages, num_pages)),
      hot_ratio_(hot_ratio),
      rng_(seed) {}

storage::PageId HotspotWorkload::Next() {
  if (rng_.UniformDouble() < hot_ratio_) {
    return rng_.UniformInt(hot_pages_);
  }
  return rng_.UniformInt(num_pages_);
}

std::vector<double> HotspotWorkload::Distribution() const {
  std::vector<double> dist(num_pages_,
                           (1.0 - hot_ratio_) /
                               static_cast<double>(num_pages_));
  for (uint64_t i = 0; i < hot_pages_; ++i) {
    dist[i] += hot_ratio_ / static_cast<double>(hot_pages_);
  }
  return dist;
}

}  // namespace shpir::workload
