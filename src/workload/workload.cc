#include "workload/workload.h"

#include <algorithm>
#include <cmath>
#include <string>

namespace shpir::workload {

UniformWorkload::UniformWorkload(uint64_t num_pages, uint64_t seed)
    : num_pages_(num_pages), rng_(seed) {}

storage::PageId UniformWorkload::Next() {
  return rng_.UniformInt(num_pages_);
}

std::vector<double> UniformWorkload::Distribution() const {
  return std::vector<double>(num_pages_,
                             1.0 / static_cast<double>(num_pages_));
}

ZipfWorkload::ZipfWorkload(uint64_t num_pages, double exponent,
                           uint64_t seed)
    : rng_(seed) {
  probability_.resize(num_pages);
  double total = 0;
  for (uint64_t i = 0; i < num_pages; ++i) {
    probability_[i] =
        1.0 / std::pow(static_cast<double>(i + 1), exponent);
    total += probability_[i];
  }
  cumulative_.resize(num_pages);
  double acc = 0;
  for (uint64_t i = 0; i < num_pages; ++i) {
    probability_[i] /= total;
    acc += probability_[i];
    cumulative_[i] = acc;
  }
}

storage::PageId ZipfWorkload::Next() {
  const double x = rng_.UniformDouble();
  const auto it =
      std::lower_bound(cumulative_.begin(), cumulative_.end(), x);
  return static_cast<storage::PageId>(
      std::min<size_t>(it - cumulative_.begin(), cumulative_.size() - 1));
}

std::vector<double> ZipfWorkload::Distribution() const {
  return probability_;
}

HotspotWorkload::HotspotWorkload(uint64_t num_pages, uint64_t hot_pages,
                                 double hot_ratio, uint64_t seed)
    : num_pages_(num_pages),
      hot_pages_(std::min(hot_pages, num_pages)),
      hot_ratio_(hot_ratio),
      rng_(seed) {}

storage::PageId HotspotWorkload::Next() {
  if (rng_.UniformDouble() < hot_ratio_) {
    return rng_.UniformInt(hot_pages_);
  }
  return rng_.UniformInt(num_pages_);
}

std::vector<double> HotspotWorkload::Distribution() const {
  std::vector<double> dist(num_pages_,
                           (1.0 - hot_ratio_) /
                               static_cast<double>(num_pages_));
  for (uint64_t i = 0; i < hot_pages_; ++i) {
    dist[i] += hot_ratio_ / static_cast<double>(hot_pages_);
  }
  return dist;
}

DiurnalBurstyWorkload::DiurnalBurstyWorkload(const Options& options)
    : options_(options), rng_(options.seed) {
  ScheduleNextBurst();
}

void DiurnalBurstyWorkload::ScheduleNextBurst() {
  // Exponential gap from the end of the previous burst (or stream
  // start). UniformDouble() < 1, so the log argument stays positive.
  const double gap = -std::log(1.0 - rng_.UniformDouble()) *
                     options_.mean_burst_interval_s;
  burst_start_s_ = burst_end_s_ + gap;
  burst_end_s_ = burst_start_s_ + options_.burst_duration_s;
}

bool DiurnalBurstyWorkload::in_burst() const {
  return clock_s_ >= burst_start_s_ && clock_s_ < burst_end_s_;
}

double DiurnalBurstyWorkload::CurrentRate() const {
  constexpr double kTwoPi = 6.283185307179586;
  const double diurnal =
      1.0 + options_.diurnal_amplitude *
                std::sin(kTwoPi * clock_s_ / options_.day_seconds);
  // Floor keeps the process alive even with amplitude >= 1.
  double rate = options_.base_qps * std::max(0.05, diurnal);
  if (in_burst()) {
    rate *= options_.burst_factor;
  }
  return rate;
}

TimedRequest DiurnalBurstyWorkload::Next() {
  if (clock_s_ >= burst_end_s_) {
    ScheduleNextBurst();
  }
  // Piecewise Poisson: draw the inter-arrival at the rate in effect
  // now. Bursts/diurnal phase shift at most one arrival late, which is
  // negligible at these rates and keeps the draw count per arrival
  // fixed (2) so replay is schedule-stable.
  const double rate = CurrentRate();
  const double dt = -std::log(1.0 - rng_.UniformDouble()) / rate;
  clock_s_ += dt;
  TimedRequest request;
  request.arrival_ns = static_cast<uint64_t>(clock_s_ * 1e9);
  request.page = rng_.UniformInt(options_.num_pages);
  return request;
}

Bytes KeyForIndex(uint64_t index) {
  const std::string text = "key-" + std::to_string(index);
  return Bytes(text.begin(), text.end());
}

ZipfKeyWorkload::ZipfKeyWorkload(uint64_t num_keys, double exponent,
                                 double hit_ratio, uint64_t seed)
    : index_source_(num_keys, exponent, seed),
      hit_ratio_(hit_ratio),
      rng_(seed ^ 0xA5A5A5A5A5A5A5A5ULL) {}

KeyRequest ZipfKeyWorkload::Next() {
  KeyRequest request;
  if (rng_.UniformDouble() < hit_ratio_) {
    request.hit = true;
    request.key = KeyForIndex(index_source_.Next());
    return request;
  }
  // Misses live in the "miss-" namespace, disjoint from KeyForIndex, so
  // a fabricated key can never accidentally be present in the store.
  request.hit = false;
  const std::string text = "miss-" + std::to_string(rng_.UniformInt(
                               0xFFFFFFFFFFFFULL));
  request.key = Bytes(text.begin(), text.end());
  return request;
}

}  // namespace shpir::workload
