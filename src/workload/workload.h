#ifndef SHPIR_WORKLOAD_WORKLOAD_H_
#define SHPIR_WORKLOAD_WORKLOAD_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "common/bytes.h"
#include "common/result.h"
#include "crypto/secure_random.h"
#include "storage/page.h"

namespace shpir::workload {

/// A stream of page requests. Generators are deterministic given their
/// RNG seed, so experiments are reproducible.
class Workload {
 public:
  virtual ~Workload() = default;

  /// The next requested page id.
  virtual storage::PageId Next() = 0;

  /// The request distribution over ids [0, n) — the adversary's prior
  /// in frequency-analysis experiments. Sums to 1.
  virtual std::vector<double> Distribution() const = 0;

  virtual const char* name() const = 0;
};

/// Uniform requests over [0, n).
class UniformWorkload : public Workload {
 public:
  UniformWorkload(uint64_t num_pages, uint64_t seed);

  storage::PageId Next() override;
  std::vector<double> Distribution() const override;
  const char* name() const override { return "uniform"; }

 private:
  uint64_t num_pages_;
  crypto::SecureRandom rng_;
};

/// Zipf(s)-distributed requests: page i has weight 1/(i+1)^s. The
/// classic model for web/page popularity skew.
class ZipfWorkload : public Workload {
 public:
  ZipfWorkload(uint64_t num_pages, double exponent, uint64_t seed);

  storage::PageId Next() override;
  std::vector<double> Distribution() const override;
  const char* name() const override { return "zipf"; }

 private:
  std::vector<double> cumulative_;
  std::vector<double> probability_;
  crypto::SecureRandom rng_;
};

/// Hotspot: a fraction `hot_ratio` of requests hit the first
/// `hot_pages` ids; the rest are uniform over everything.
class HotspotWorkload : public Workload {
 public:
  HotspotWorkload(uint64_t num_pages, uint64_t hot_pages, double hot_ratio,
                  uint64_t seed);

  storage::PageId Next() override;
  std::vector<double> Distribution() const override;
  const char* name() const override { return "hotspot"; }

 private:
  uint64_t num_pages_;
  uint64_t hot_pages_;
  double hot_ratio_;
  crypto::SecureRandom rng_;
};

/// Sequential scan with wraparound (worst case for schemes that exploit
/// locality; a natural pattern for range processing).
class ScanWorkload : public Workload {
 public:
  explicit ScanWorkload(uint64_t num_pages) : num_pages_(num_pages) {}

  storage::PageId Next() override { return cursor_++ % num_pages_; }
  std::vector<double> Distribution() const override {
    return std::vector<double>(num_pages_,
                               1.0 / static_cast<double>(num_pages_));
  }
  const char* name() const override { return "scan"; }

 private:
  uint64_t num_pages_;
  uint64_t cursor_ = 0;
};

/// One arrival in a timed request stream: when it arrives (simulated
/// nanoseconds from stream start) and which page it asks for.
struct TimedRequest {
  uint64_t arrival_ns = 0;
  storage::PageId page = 0;
};

/// Open-loop arrival process for controller/capacity experiments: a
/// diurnal sinusoid over a compressed "day" with superimposed bursts
/// (burst_factor x rate for burst_duration_s, recurring at
/// exponentially distributed intervals). Arrivals are a piecewise
/// Poisson process; pages are uniform over [0, num_pages). Fully
/// deterministic given the seed — the same seed replays the identical
/// (arrival_ns, page) schedule.
class DiurnalBurstyWorkload {
 public:
  struct Options {
    uint64_t num_pages = 0;
    /// Mean request rate at the diurnal midpoint.
    double base_qps = 8.0;
    /// Diurnal swing: rate spans base*(1 +- amplitude) over a day.
    double diurnal_amplitude = 0.5;
    /// Compressed day length (simulated seconds).
    double day_seconds = 600.0;
    /// Burst multiplier applied on top of the diurnal rate.
    double burst_factor = 5.0;
    /// Mean gap between burst starts (exponential), and burst length.
    double mean_burst_interval_s = 120.0;
    double burst_duration_s = 30.0;
    uint64_t seed = 1;
  };

  explicit DiurnalBurstyWorkload(const Options& options);

  /// The next arrival; arrival_ns is monotonically non-decreasing.
  TimedRequest Next();

  /// Whether the stream clock currently sits inside a burst window
  /// (state as of the last Next()).
  bool in_burst() const;
  /// Stream clock after the last Next(), in simulated seconds.
  double clock_seconds() const { return clock_s_; }

  const char* name() const { return "diurnal-bursty"; }

 private:
  /// Instantaneous rate at the current stream clock.
  double CurrentRate() const;
  void ScheduleNextBurst();

  Options options_;
  crypto::SecureRandom rng_;
  double clock_s_ = 0.0;
  double burst_start_s_ = 0.0;
  double burst_end_s_ = 0.0;
};

/// One keyword-store request: a key plus whether the generator drew it
/// from the store's key set (hit) or fabricated it (miss). The flag is
/// generator-side ground truth for verification — a private client
/// never reveals it.
struct KeyRequest {
  Bytes key;
  bool hit = false;
};

/// A stream of keyword requests for the keyword PIR front-end
/// (src/keyword/). Deterministic given the seed, like Workload.
class KeyedWorkload {
 public:
  virtual ~KeyedWorkload() = default;

  /// The next requested key.
  virtual KeyRequest Next() = 0;

  virtual const char* name() const = 0;
};

/// The canonical key for store index i ("key-<i>"): benches and tests
/// build stores whose key set is KeyForIndex(0..num_keys) and the keyed
/// generators draw hits from the same space.
Bytes KeyForIndex(uint64_t index);

/// Zipf(s)-skewed keys over KeyForIndex(0..num_keys), mixed with
/// fabricated miss keys at rate (1 - hit_ratio). exponent 0 = uniform
/// over the key set. Miss keys are drawn from a disjoint namespace so
/// they never collide with store keys.
class ZipfKeyWorkload : public KeyedWorkload {
 public:
  ZipfKeyWorkload(uint64_t num_keys, double exponent, double hit_ratio,
                  uint64_t seed);

  KeyRequest Next() override;
  const char* name() const override { return "zipf-keys"; }

 private:
  ZipfWorkload index_source_;
  double hit_ratio_;
  crypto::SecureRandom rng_;
};

}  // namespace shpir::workload

#endif  // SHPIR_WORKLOAD_WORKLOAD_H_
