#include "storage/access_trace.h"

#include <gtest/gtest.h>

#include "storage/disk.h"

namespace shpir::storage {
namespace {

TEST(AccessTrace, StampsRequestIndices) {
  AccessTrace trace;
  EXPECT_EQ(trace.BeginRequest(), 0u);
  trace.RecordRead(10);
  trace.RecordWrite(11);
  EXPECT_EQ(trace.BeginRequest(), 1u);
  trace.RecordRead(20);
  ASSERT_EQ(trace.events().size(), 3u);
  EXPECT_EQ(trace.events()[0].request_index, 0u);
  EXPECT_EQ(trace.events()[1].request_index, 0u);
  EXPECT_EQ(trace.events()[2].request_index, 1u);
  EXPECT_EQ(trace.num_requests(), 2u);
}

// Regression: accesses recorded before any BeginRequest() (bulk load,
// offline reshuffles) used to compute `current_request_ - 1`, which
// underflowed to an arbitrary-looking huge index. They must carry the
// explicit kSetupIndex sentinel so analysis code can recognize and
// exclude them instead of attributing them to a phantom request.
TEST(AccessTrace, SetupAccessesCarrySentinelIndex) {
  AccessTrace trace;
  trace.RecordRead(5);
  trace.RecordWrite(6);
  ASSERT_EQ(trace.events().size(), 2u);
  EXPECT_EQ(trace.events()[0].request_index, AccessEvent::kSetupIndex);
  EXPECT_EQ(trace.events()[1].request_index, AccessEvent::kSetupIndex);
  // Once requests begin, the sentinel no longer appears.
  trace.BeginRequest();
  trace.RecordRead(7);
  EXPECT_EQ(trace.events()[2].request_index, 0u);
  EXPECT_NE(trace.events()[2].request_index, AccessEvent::kSetupIndex);
}

TEST(AccessTrace, ClearResetsToSetupState) {
  AccessTrace trace;
  trace.BeginRequest();
  trace.RecordRead(1);
  trace.Clear();
  EXPECT_TRUE(trace.events().empty());
  EXPECT_EQ(trace.num_requests(), 0u);
  trace.RecordRead(2);
  EXPECT_EQ(trace.events()[0].request_index, AccessEvent::kSetupIndex);
}

TEST(TracingDisk, ReportsAccessesToTrace) {
  MemoryDisk inner(8, 16);
  AccessTrace trace;
  TracingDisk disk(&inner, &trace);
  Bytes buffer(16, 0xAB);
  ASSERT_TRUE(disk.Write(3, buffer).ok());
  trace.BeginRequest();
  ASSERT_TRUE(disk.Read(3, buffer).ok());
  ASSERT_EQ(trace.events().size(), 2u);
  EXPECT_EQ(trace.events()[0].op, AccessEvent::Op::kWrite);
  EXPECT_EQ(trace.events()[0].location, 3u);
  EXPECT_EQ(trace.events()[0].request_index, AccessEvent::kSetupIndex);
  EXPECT_EQ(trace.events()[1].op, AccessEvent::Op::kRead);
  EXPECT_EQ(trace.events()[1].request_index, 0u);
}

}  // namespace
}  // namespace shpir::storage
