#include "crypto/aes.h"

#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

#include "common/bytes.h"

namespace shpir::crypto {
namespace {

struct AesVector {
  std::string name;
  std::string key_hex;
  std::string plaintext_hex;
  std::string ciphertext_hex;
};

class AesKnownAnswerTest : public ::testing::TestWithParam<AesVector> {};

TEST_P(AesKnownAnswerTest, Encrypt) {
  const AesVector& v = GetParam();
  const Bytes key = HexDecode(v.key_hex);
  const Bytes pt = HexDecode(v.plaintext_hex);
  const Bytes ct = HexDecode(v.ciphertext_hex);
  Result<Aes> aes = Aes::Create(key);
  ASSERT_TRUE(aes.ok()) << aes.status();
  uint8_t out[Aes::kBlockSize];
  aes->EncryptBlock(pt.data(), out);
  EXPECT_EQ(HexEncode(ByteSpan(out, 16)), v.ciphertext_hex);
  (void)ct;
}

TEST_P(AesKnownAnswerTest, Decrypt) {
  const AesVector& v = GetParam();
  const Bytes key = HexDecode(v.key_hex);
  const Bytes ct = HexDecode(v.ciphertext_hex);
  Result<Aes> aes = Aes::Create(key);
  ASSERT_TRUE(aes.ok()) << aes.status();
  uint8_t out[Aes::kBlockSize];
  aes->DecryptBlock(ct.data(), out);
  EXPECT_EQ(HexEncode(ByteSpan(out, 16)), v.plaintext_hex);
}

TEST_P(AesKnownAnswerTest, RoundTripInPlace) {
  const AesVector& v = GetParam();
  const Bytes key = HexDecode(v.key_hex);
  Bytes block = HexDecode(v.plaintext_hex);
  Result<Aes> aes = Aes::Create(key);
  ASSERT_TRUE(aes.ok());
  aes->EncryptBlock(block.data(), block.data());
  EXPECT_EQ(HexEncode(block), v.ciphertext_hex);
  aes->DecryptBlock(block.data(), block.data());
  EXPECT_EQ(HexEncode(block), v.plaintext_hex);
}

INSTANTIATE_TEST_SUITE_P(
    Fips197, AesKnownAnswerTest,
    ::testing::Values(
        // FIPS 197 Appendix C.1.
        AesVector{"Aes128", "000102030405060708090a0b0c0d0e0f",
                  "00112233445566778899aabbccddeeff",
                  "69c4e0d86a7b0430d8cdb78070b4c55a"},
        // FIPS 197 Appendix C.2.
        AesVector{"Aes192",
                  "000102030405060708090a0b0c0d0e0f1011121314151617",
                  "00112233445566778899aabbccddeeff",
                  "dda97ca4864cdfe06eaf70a0ec0d7191"},
        // FIPS 197 Appendix C.3.
        AesVector{"Aes256",
                  "000102030405060708090a0b0c0d0e0f101112131415161718191a1b1c"
                  "1d1e1f",
                  "00112233445566778899aabbccddeeff",
                  "8ea2b7ca516745bfeafc49904b496089"},
        // NIST SP 800-38A ECB-AES128 block #1.
        AesVector{"Sp80038aEcb128", "2b7e151628aed2a6abf7158809cf4f3c",
                  "6bc1bee22e409f96e93d7e117393172a",
                  "3ad77bb40d7a3660a89ecaf32466ef97"},
        // NIST SP 800-38A ECB-AES256 block #1.
        AesVector{"Sp80038aEcb256",
                  "603deb1015ca71be2b73aef0857d77811f352c073b6108d72d9810a30914"
                  "dff4",
                  "6bc1bee22e409f96e93d7e117393172a",
                  "f3eed1bdb5d2a03c064b5a7e3db181f8"}),
    [](const ::testing::TestParamInfo<AesVector>& info) {
      return info.param.name;
    });

TEST(AesTest, RejectsBadKeySizes) {
  for (size_t len : {0u, 1u, 15u, 17u, 23u, 31u, 33u, 64u}) {
    Bytes key(len, 0x42);
    Result<Aes> aes = Aes::Create(key);
    EXPECT_FALSE(aes.ok()) << "key length " << len;
    EXPECT_EQ(aes.status().code(), StatusCode::kInvalidArgument);
  }
}

TEST(AesTest, RoundCounts) {
  Bytes key16(16, 0), key24(24, 0), key32(32, 0);
  EXPECT_EQ(Aes::Create(key16)->rounds(), 10);
  EXPECT_EQ(Aes::Create(key24)->rounds(), 12);
  EXPECT_EQ(Aes::Create(key32)->rounds(), 14);
}

TEST(AesTest, DifferentKeysGiveDifferentCiphertexts) {
  Bytes key_a(16, 0x00), key_b(16, 0x01);
  Bytes pt(16, 0xab);
  uint8_t ct_a[16], ct_b[16];
  Aes::Create(key_a)->EncryptBlock(pt.data(), ct_a);
  Aes::Create(key_b)->EncryptBlock(pt.data(), ct_b);
  EXPECT_NE(HexEncode(ByteSpan(ct_a, 16)), HexEncode(ByteSpan(ct_b, 16)));
}

TEST(AesTest, EncryptDecryptRandomBlocks) {
  Bytes key = HexDecode("2b7e151628aed2a6abf7158809cf4f3c");
  Result<Aes> aes = Aes::Create(key);
  ASSERT_TRUE(aes.ok());
  uint8_t block[16];
  uint8_t ct[16];
  uint8_t back[16];
  for (int trial = 0; trial < 256; ++trial) {
    for (int i = 0; i < 16; ++i) {
      block[i] = static_cast<uint8_t>(trial * 17 + i * 31);
    }
    aes->EncryptBlock(block, ct);
    aes->DecryptBlock(ct, back);
    EXPECT_EQ(std::memcmp(block, back, 16), 0) << "trial " << trial;
  }
}

}  // namespace
}  // namespace shpir::crypto
