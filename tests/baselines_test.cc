#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <vector>

#include "baselines/pyramid_oram.h"
#include "baselines/trivial_pir.h"
#include "baselines/wang_pir.h"
#include "common/check.h"
#include "crypto/secure_random.h"
#include "hardware/coprocessor.h"
#include "storage/access_trace.h"
#include "storage/disk.h"

namespace shpir::baselines {
namespace {

using storage::Page;
using storage::PageId;

constexpr size_t kPageSize = 24;
constexpr size_t kSealedSize = 12 + 8 + kPageSize + 32;

Bytes PayloadFor(PageId id) {
  Bytes data(kPageSize);
  for (size_t i = 0; i < kPageSize; ++i) {
    data[i] = static_cast<uint8_t>(id * 13 + i * 3 + 5);
  }
  return data;
}

std::vector<Page> MakePages(uint64_t n) {
  std::vector<Page> pages;
  for (PageId id = 0; id < n; ++id) {
    pages.emplace_back(id, PayloadFor(id));
  }
  return pages;
}

struct Rig {
  std::unique_ptr<storage::MemoryDisk> disk;
  std::unique_ptr<storage::TracingDisk> tracing_disk;
  storage::AccessTrace trace;
  std::unique_ptr<hardware::SecureCoprocessor> cpu;

  static Rig Make(uint64_t slots, uint64_t seed) {
    Rig rig;
    rig.disk = std::make_unique<storage::MemoryDisk>(slots, kSealedSize);
    rig.tracing_disk =
        std::make_unique<storage::TracingDisk>(rig.disk.get(), &rig.trace);
    Result<std::unique_ptr<hardware::SecureCoprocessor>> cpu =
        hardware::SecureCoprocessor::Create(
            hardware::HardwareProfile::Ibm4764(), rig.tracing_disk.get(),
            kPageSize, seed);
    SHPIR_CHECK(cpu.ok());
    rig.cpu = std::move(cpu).value();
    return rig;
  }
};

// ---------------------------------------------------------------- Trivial

TEST(TrivialPirTest, RetrievesCorrectPages) {
  Rig rig = Rig::Make(20, 1);
  TrivialPir::Options options{.num_pages = 20, .page_size = kPageSize};
  Result<std::unique_ptr<TrivialPir>> pir =
      TrivialPir::Create(rig.cpu.get(), options, &rig.trace);
  ASSERT_TRUE(pir.ok());
  ASSERT_TRUE((*pir)->Initialize(MakePages(20)).ok());
  for (PageId id = 0; id < 20; ++id) {
    EXPECT_EQ(*(*pir)->Retrieve(id), PayloadFor(id));
  }
}

TEST(TrivialPirTest, EveryQueryScansWholeDatabase) {
  Rig rig = Rig::Make(16, 2);
  TrivialPir::Options options{.num_pages = 16, .page_size = kPageSize};
  Result<std::unique_ptr<TrivialPir>> pir =
      TrivialPir::Create(rig.cpu.get(), options, &rig.trace);
  ASSERT_TRUE(pir.ok());
  ASSERT_TRUE((*pir)->Initialize(MakePages(16)).ok());
  rig.trace.Clear();
  ASSERT_TRUE((*pir)->Retrieve(3).ok());
  ASSERT_TRUE((*pir)->Retrieve(9).ok());
  // Identical full-scan trace per query regardless of the target.
  const auto& events = rig.trace.events();
  ASSERT_EQ(events.size(), 32u);
  for (uint64_t q = 0; q < 2; ++q) {
    for (uint64_t i = 0; i < 16; ++i) {
      EXPECT_EQ(events[q * 16 + i].location, i);
      EXPECT_EQ(events[q * 16 + i].op, storage::AccessEvent::Op::kRead);
      EXPECT_EQ(events[q * 16 + i].request_index, q);
    }
  }
}

TEST(TrivialPirTest, CostIsLinearInN) {
  Rig rig = Rig::Make(32, 3);
  TrivialPir::Options options{.num_pages = 32, .page_size = kPageSize};
  Result<std::unique_ptr<TrivialPir>> pir =
      TrivialPir::Create(rig.cpu.get(), options);
  ASSERT_TRUE(pir.ok());
  ASSERT_TRUE((*pir)->Initialize(MakePages(32)).ok());
  const auto before = rig.cpu->cost().Snapshot();
  ASSERT_TRUE((*pir)->Retrieve(0).ok());
  const auto delta = rig.cpu->cost().Snapshot() - before;
  EXPECT_EQ(delta.disk_bytes, 32u * kSealedSize);
  EXPECT_EQ(delta.crypto_bytes, 32u * kPageSize);
  EXPECT_EQ(delta.seeks, 1u);
}

TEST(TrivialPirTest, Validation) {
  Rig rig = Rig::Make(8, 4);
  TrivialPir::Options options{.num_pages = 9, .page_size = kPageSize};
  EXPECT_FALSE(TrivialPir::Create(rig.cpu.get(), options).ok());
  options.num_pages = 8;
  Result<std::unique_ptr<TrivialPir>> pir =
      TrivialPir::Create(rig.cpu.get(), options);
  ASSERT_TRUE(pir.ok());
  EXPECT_FALSE((*pir)->Retrieve(0).ok());  // Not initialized.
  ASSERT_TRUE((*pir)->Initialize({}).ok());
  EXPECT_FALSE((*pir)->Retrieve(8).ok());  // Out of range.
}

// ------------------------------------------------------------------- Wang

TEST(WangPirTest, RetrievesCorrectPagesAcrossReshuffles) {
  Rig rig = Rig::Make(30, 5);
  WangPir::Options options{
      .num_pages = 30, .page_size = kPageSize, .cache_pages = 5};
  Result<std::unique_ptr<WangPir>> pir =
      WangPir::Create(rig.cpu.get(), options, &rig.trace);
  ASSERT_TRUE(pir.ok());
  ASSERT_TRUE((*pir)->Initialize(MakePages(30)).ok());
  crypto::SecureRandom rng(6);
  for (int i = 0; i < 200; ++i) {
    const PageId id = rng.UniformInt(30);
    ASSERT_EQ(*(*pir)->Retrieve(id), PayloadFor(id)) << "query " << i;
  }
  EXPECT_GE((*pir)->reshuffles(), 200u / 5 - 1);
}

TEST(WangPirTest, ReshuffleEveryMQueries) {
  Rig rig = Rig::Make(20, 7);
  WangPir::Options options{
      .num_pages = 20, .page_size = kPageSize, .cache_pages = 4};
  Result<std::unique_ptr<WangPir>> pir =
      WangPir::Create(rig.cpu.get(), options);
  ASSERT_TRUE(pir.ok());
  ASSERT_TRUE((*pir)->Initialize(MakePages(20)).ok());
  for (int i = 0; i < 12; ++i) {
    ASSERT_TRUE((*pir)->Retrieve(0).ok());
  }
  EXPECT_EQ((*pir)->reshuffles(), 3u);
  EXPECT_EQ((*pir)->queries_since_reshuffle(), 0u);
}

TEST(WangPirTest, PerQueryCostIsOnePageUntilReshuffle) {
  Rig rig = Rig::Make(40, 8);
  WangPir::Options options{
      .num_pages = 40, .page_size = kPageSize, .cache_pages = 10};
  Result<std::unique_ptr<WangPir>> pir =
      WangPir::Create(rig.cpu.get(), options);
  ASSERT_TRUE(pir.ok());
  ASSERT_TRUE((*pir)->Initialize(MakePages(40)).ok());
  // First m-1 queries are cheap; the m-th triggers an O(n) reshuffle.
  for (int i = 0; i < 9; ++i) {
    const auto before = rig.cpu->cost().Snapshot();
    ASSERT_TRUE((*pir)->Retrieve(static_cast<PageId>(i)).ok());
    const auto delta = rig.cpu->cost().Snapshot() - before;
    EXPECT_EQ(delta.disk_bytes, kSealedSize) << i;
    EXPECT_EQ(delta.seeks, 1u) << i;
  }
  const auto before = rig.cpu->cost().Snapshot();
  ASSERT_TRUE((*pir)->Retrieve(20).ok());
  const auto delta = rig.cpu->cost().Snapshot() - before;
  // Query + full read pass + full write pass.
  EXPECT_GT(delta.disk_bytes, 2u * 40u * kSealedSize);
}

TEST(WangPirTest, EachEpochTouchesDistinctSlots) {
  Rig rig = Rig::Make(25, 9);
  WangPir::Options options{
      .num_pages = 25, .page_size = kPageSize, .cache_pages = 10};
  Result<std::unique_ptr<WangPir>> pir =
      WangPir::Create(rig.cpu.get(), options, &rig.trace);
  ASSERT_TRUE(pir.ok());
  ASSERT_TRUE((*pir)->Initialize(MakePages(25)).ok());
  rig.trace.Clear();
  // Repeatedly request the same page: each query must still read a
  // distinct location (random cover reads on hits).
  for (int i = 0; i < 9; ++i) {
    ASSERT_TRUE((*pir)->Retrieve(7).ok());
  }
  std::set<storage::Location> locations;
  for (const auto& e : rig.trace.events()) {
    EXPECT_EQ(e.op, storage::AccessEvent::Op::kRead);
    EXPECT_TRUE(locations.insert(e.location).second)
        << "repeated location " << e.location;
  }
  EXPECT_EQ(locations.size(), 9u);
}

TEST(WangPirTest, Validation) {
  Rig rig = Rig::Make(10, 10);
  WangPir::Options options{
      .num_pages = 10, .page_size = kPageSize, .cache_pages = 10};
  EXPECT_FALSE(WangPir::Create(rig.cpu.get(), options).ok());  // m == n.
  options.cache_pages = 0;
  EXPECT_FALSE(WangPir::Create(rig.cpu.get(), options).ok());
}

// ----------------------------------------------------------------- ORAM

struct OramRig {
  Rig rig;
  std::unique_ptr<PyramidOram> oram;

  static OramRig Make(uint64_t n, uint64_t stash, uint64_t seed) {
    PyramidOram::Options options;
    options.num_pages = n;
    options.page_size = kPageSize;
    options.stash_pages = stash;
    Result<uint64_t> slots = PyramidOram::DiskSlots(options);
    SHPIR_CHECK(slots.ok());
    OramRig out{Rig::Make(*slots, seed), nullptr};
    Result<std::unique_ptr<PyramidOram>> oram =
        PyramidOram::Create(out.rig.cpu.get(), options, &out.rig.trace);
    SHPIR_CHECK(oram.ok());
    out.oram = std::move(oram).value();
    SHPIR_CHECK_OK(out.oram->Initialize(MakePages(n)));
    return out;
  }
};

TEST(PyramidOramTest, RetrievesCorrectPages) {
  OramRig rig = OramRig::Make(32, 4, 11);
  for (PageId id = 0; id < 32; ++id) {
    Result<Bytes> data = rig.oram->Retrieve(id);
    ASSERT_TRUE(data.ok()) << "id " << id << ": " << data.status();
    EXPECT_EQ(*data, PayloadFor(id));
  }
}

TEST(PyramidOramTest, CorrectUnderHeavyChurn) {
  OramRig rig = OramRig::Make(64, 4, 12);
  crypto::SecureRandom rng(13);
  for (int i = 0; i < 1000; ++i) {
    const PageId id = rng.UniformInt(64);
    Result<Bytes> data = rig.oram->Retrieve(id);
    ASSERT_TRUE(data.ok()) << "query " << i << ": " << data.status();
    ASSERT_EQ(*data, PayloadFor(id)) << "query " << i;
  }
  EXPECT_GT(rig.oram->rebuilds(), 100u);
}

TEST(PyramidOramTest, RepeatedSamePageStaysCorrect) {
  OramRig rig = OramRig::Make(32, 4, 14);
  for (int i = 0; i < 200; ++i) {
    ASSERT_EQ(*rig.oram->Retrieve(5), PayloadFor(5)) << i;
  }
}

TEST(PyramidOramTest, LatencySpikesAtRebuilds) {
  OramRig rig = OramRig::Make(128, 4, 15);
  crypto::SecureRandom rng(16);
  uint64_t max_bytes = 0, min_bytes = UINT64_MAX;
  for (int i = 0; i < 64; ++i) {
    const auto before = rig.rig.cpu->cost().Snapshot();
    ASSERT_TRUE(rig.oram->Retrieve(rng.UniformInt(128)).ok());
    const auto delta = rig.rig.cpu->cost().Snapshot() - before;
    max_bytes = std::max(max_bytes, delta.disk_bytes);
    min_bytes = std::min(min_bytes, delta.disk_bytes);
  }
  // Rebuild queries must be far more expensive than plain lookups —
  // the amortized-vs-worst-case gap the paper targets.
  EXPECT_GT(max_bytes, 10 * min_bytes);
}

TEST(PyramidOramTest, ProbeShapeIndependentOfTarget) {
  // Two fresh ORAMs, different query targets: the number of slots read
  // per query before any rebuild must match.
  OramRig a = OramRig::Make(32, 8, 17);
  OramRig b = OramRig::Make(32, 8, 18);
  a.rig.trace.Clear();
  b.rig.trace.Clear();
  ASSERT_TRUE(a.oram->Retrieve(1).ok());
  ASSERT_TRUE(b.oram->Retrieve(30).ok());
  EXPECT_EQ(a.rig.trace.events().size(), b.rig.trace.events().size());
}

TEST(PyramidOramTest, Validation) {
  PyramidOram::Options options;
  options.num_pages = 1;
  options.page_size = kPageSize;
  EXPECT_FALSE(PyramidOram::DiskSlots(options).ok());
  options.num_pages = 16;
  options.bucket_slots = 1;
  EXPECT_FALSE(PyramidOram::DiskSlots(options).ok());
  options.bucket_slots = 8;
  options.stash_pages = 0;
  EXPECT_FALSE(PyramidOram::DiskSlots(options).ok());
}

TEST(PyramidOramTest, OutOfRangeAndUninitialized) {
  PyramidOram::Options options;
  options.num_pages = 16;
  options.page_size = kPageSize;
  Result<uint64_t> slots = PyramidOram::DiskSlots(options);
  ASSERT_TRUE(slots.ok());
  Rig rig = Rig::Make(*slots, 19);
  Result<std::unique_ptr<PyramidOram>> oram =
      PyramidOram::Create(rig.cpu.get(), options);
  ASSERT_TRUE(oram.ok());
  EXPECT_EQ((*oram)->Retrieve(0).status().code(),
            StatusCode::kFailedPrecondition);
  ASSERT_TRUE((*oram)->Initialize(MakePages(16)).ok());
  EXPECT_EQ((*oram)->Retrieve(16).status().code(), StatusCode::kNotFound);
}

}  // namespace
}  // namespace shpir::baselines
