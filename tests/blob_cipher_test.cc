#include "crypto/blob_cipher.h"

#include <gtest/gtest.h>

#include "common/check.h"

namespace shpir::crypto {
namespace {

BlobCipher MakeCipher() {
  Result<BlobCipher> cipher =
      BlobCipher::Create(Bytes(32, 0x01), Bytes(32, 0x02));
  SHPIR_CHECK(cipher.ok());
  return std::move(cipher).value();
}

TEST(BlobCipherTest, RoundTripVariousSizes) {
  BlobCipher cipher = MakeCipher();
  SecureRandom rng(1);
  for (size_t len : {0u, 1u, 15u, 16u, 1000u, 65536u}) {
    Bytes plaintext(len);
    rng.Fill(plaintext);
    Result<Bytes> sealed = cipher.Seal(plaintext, rng);
    ASSERT_TRUE(sealed.ok());
    EXPECT_EQ(sealed->size(), len + BlobCipher::kOverhead);
    Result<Bytes> opened = cipher.Open(*sealed);
    ASSERT_TRUE(opened.ok());
    EXPECT_EQ(*opened, plaintext) << "len " << len;
  }
}

TEST(BlobCipherTest, TamperingDetected) {
  BlobCipher cipher = MakeCipher();
  SecureRandom rng(2);
  Bytes sealed = *cipher.Seal(Bytes(100, 0x55), rng);
  for (size_t pos : {size_t{0}, size_t{50}, sealed.size() - 1}) {
    Bytes tampered = sealed;
    tampered[pos] ^= 1;
    Result<Bytes> opened = cipher.Open(tampered);
    EXPECT_FALSE(opened.ok()) << pos;
    EXPECT_EQ(opened.status().code(), StatusCode::kDataLoss);
  }
}

TEST(BlobCipherTest, TruncatedBlobRejected) {
  BlobCipher cipher = MakeCipher();
  EXPECT_FALSE(cipher.Open(Bytes(BlobCipher::kOverhead - 1, 0)).ok());
}

TEST(BlobCipherTest, FreshNoncePerSeal) {
  BlobCipher cipher = MakeCipher();
  SecureRandom rng(3);
  const Bytes plaintext(64, 0x42);
  EXPECT_NE(*cipher.Seal(plaintext, rng), *cipher.Seal(plaintext, rng));
}

TEST(BlobCipherTest, PassphraseDerivation) {
  SecureRandom rng(4);
  Result<BlobCipher> a = BlobCipher::FromPassphrase("correct horse");
  Result<BlobCipher> b = BlobCipher::FromPassphrase("correct horse");
  Result<BlobCipher> c = BlobCipher::FromPassphrase("wrong horse");
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ASSERT_TRUE(c.ok());
  const Bytes secret = {1, 2, 3};
  Bytes sealed = *a->Seal(secret, rng);
  EXPECT_EQ(*b->Open(sealed), secret);   // Same passphrase opens.
  EXPECT_FALSE(c->Open(sealed).ok());    // Different passphrase fails.
}

TEST(BlobCipherTest, RejectsBadKeys) {
  EXPECT_FALSE(BlobCipher::Create(Bytes(10, 0), Bytes(32, 0)).ok());
}

}  // namespace
}  // namespace shpir::crypto
