#include "index/bplus_tree.h"

#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <vector>

#include "common/check.h"
#include "core/capprox_pir.h"
#include "crypto/secure_random.h"
#include "hardware/coprocessor.h"
#include "storage/disk.h"

namespace shpir::index {
namespace {

using storage::Page;

constexpr size_t kPageSize = 128;
constexpr size_t kSealedSize = 12 + 8 + kPageSize + 32;

std::vector<std::pair<uint64_t, uint64_t>> MakeEntries(uint64_t n,
                                                       uint64_t stride = 3) {
  std::vector<std::pair<uint64_t, uint64_t>> entries;
  for (uint64_t i = 0; i < n; ++i) {
    entries.emplace_back(i * stride + 10, i * 1000 + 1);
  }
  return entries;
}

/// In-memory PirEngine for testing the tree logic in isolation.
class PlainEngine : public core::PirEngine {
 public:
  explicit PlainEngine(std::vector<Page> pages) : pages_(std::move(pages)) {}

  Result<Bytes> Retrieve(storage::PageId id) override {
    if (id >= pages_.size()) {
      return NotFoundError("no such page");
    }
    return pages_[id].data;
  }
  uint64_t num_pages() const override { return pages_.size(); }
  size_t page_size() const override { return kPageSize; }
  const char* name() const override { return "plain"; }

 private:
  std::vector<Page> pages_;
};

TEST(BPlusTreeBuilderTest, CapacitiesFitPageSize) {
  BPlusTreeBuilder builder(kPageSize);
  EXPECT_GE(builder.leaf_capacity(), 2u);
  EXPECT_GE(builder.internal_capacity(), 2u);
  // Leaf: header 11 + 16 per entry.
  EXPECT_EQ(builder.leaf_capacity(), (kPageSize - 11) / 16);
}

TEST(BPlusTreeBuilderTest, RejectsTinyPagesAndUnsortedInput) {
  BPlusTreeBuilder tiny(16);
  EXPECT_FALSE(tiny.Build({}).ok());
  BPlusTreeBuilder builder(kPageSize);
  EXPECT_FALSE(builder.Build({{5, 0}, {3, 0}}).ok());
  EXPECT_FALSE(builder.Build({{5, 0}, {5, 1}}).ok());
}

TEST(BPlusTreeBuilderTest, PagesFitAndIdsAreSequential) {
  BPlusTreeBuilder builder(kPageSize);
  Result<std::vector<Page>> pages = builder.Build(MakeEntries(500));
  ASSERT_TRUE(pages.ok());
  for (size_t i = 0; i < pages->size(); ++i) {
    EXPECT_EQ((*pages)[i].id, i);
    EXPECT_EQ((*pages)[i].data.size(), kPageSize);
  }
  EXPECT_GT(pages->size(), 500 / builder.leaf_capacity());
}

TEST(BPlusTreeTest, LookupFindsEveryKey) {
  BPlusTreeBuilder builder(kPageSize);
  const auto entries = MakeEntries(1000);
  Result<std::vector<Page>> pages = builder.Build(entries);
  ASSERT_TRUE(pages.ok());
  PlainEngine engine(*pages);
  Result<std::unique_ptr<BPlusTree>> tree = BPlusTree::Open(&engine);
  ASSERT_TRUE(tree.ok()) << tree.status();
  EXPECT_EQ((*tree)->num_keys(), 1000u);
  for (const auto& [key, value] : entries) {
    Result<std::optional<uint64_t>> found = (*tree)->Lookup(key);
    ASSERT_TRUE(found.ok());
    ASSERT_TRUE(found->has_value()) << "key " << key;
    EXPECT_EQ(**found, value) << "key " << key;
  }
}

TEST(BPlusTreeTest, LookupMissesReturnNullopt) {
  BPlusTreeBuilder builder(kPageSize);
  Result<std::vector<Page>> pages = builder.Build(MakeEntries(200));
  ASSERT_TRUE(pages.ok());
  PlainEngine engine(*pages);
  Result<std::unique_ptr<BPlusTree>> tree = BPlusTree::Open(&engine);
  ASSERT_TRUE(tree.ok());
  // Keys are 10, 13, 16, ...; 11/12 are absent, as is anything < 10.
  for (uint64_t key : {0ull, 9ull, 11ull, 12ull, 10000000ull}) {
    Result<std::optional<uint64_t>> found = (*tree)->Lookup(key);
    ASSERT_TRUE(found.ok());
    EXPECT_FALSE(found->has_value()) << "key " << key;
  }
}

TEST(BPlusTreeTest, LookupCostIsHeightRegardlessOfOutcome) {
  BPlusTreeBuilder builder(kPageSize);
  Result<std::vector<Page>> pages = builder.Build(MakeEntries(1000));
  ASSERT_TRUE(pages.ok());
  PlainEngine engine(*pages);
  Result<std::unique_ptr<BPlusTree>> tree = BPlusTree::Open(&engine);
  ASSERT_TRUE(tree.ok());
  const uint64_t height = (*tree)->height();
  const uint64_t before_hit = (*tree)->retrievals();
  ASSERT_TRUE((*tree)->Lookup(10).ok());
  const uint64_t hit_cost = (*tree)->retrievals() - before_hit;
  const uint64_t before_miss = (*tree)->retrievals();
  ASSERT_TRUE((*tree)->Lookup(11).ok());
  const uint64_t miss_cost = (*tree)->retrievals() - before_miss;
  EXPECT_EQ(hit_cost, height);
  EXPECT_EQ(miss_cost, height);
}

TEST(BPlusTreeTest, RangeScan) {
  BPlusTreeBuilder builder(kPageSize);
  const auto entries = MakeEntries(300);
  Result<std::vector<Page>> pages = builder.Build(entries);
  ASSERT_TRUE(pages.ok());
  PlainEngine engine(*pages);
  Result<std::unique_ptr<BPlusTree>> tree = BPlusTree::Open(&engine);
  ASSERT_TRUE(tree.ok());

  Result<std::vector<std::pair<uint64_t, uint64_t>>> scan =
      (*tree)->RangeScan(100, 200);
  ASSERT_TRUE(scan.ok());
  std::vector<std::pair<uint64_t, uint64_t>> expected;
  for (const auto& e : entries) {
    if (e.first >= 100 && e.first <= 200) {
      expected.push_back(e);
    }
  }
  EXPECT_EQ(*scan, expected);
}

TEST(BPlusTreeTest, RangeScanEdgeCases) {
  BPlusTreeBuilder builder(kPageSize);
  const auto entries = MakeEntries(50);
  Result<std::vector<Page>> pages = builder.Build(entries);
  ASSERT_TRUE(pages.ok());
  PlainEngine engine(*pages);
  Result<std::unique_ptr<BPlusTree>> tree = BPlusTree::Open(&engine);
  ASSERT_TRUE(tree.ok());
  // Empty range.
  EXPECT_TRUE((*tree)->RangeScan(5, 3)->empty());
  // Range before all keys.
  EXPECT_TRUE((*tree)->RangeScan(0, 9)->empty());
  // Range past all keys.
  EXPECT_TRUE((*tree)->RangeScan(100000, 200000)->empty());
  // Full range.
  EXPECT_EQ((*tree)->RangeScan(0, UINT64_MAX)->size(), entries.size());
}

TEST(BPlusTreeTest, EmptyTree) {
  BPlusTreeBuilder builder(kPageSize);
  Result<std::vector<Page>> pages = builder.Build({});
  ASSERT_TRUE(pages.ok());
  PlainEngine engine(*pages);
  Result<std::unique_ptr<BPlusTree>> tree = BPlusTree::Open(&engine);
  ASSERT_TRUE(tree.ok());
  EXPECT_EQ((*tree)->num_keys(), 0u);
  EXPECT_FALSE((*tree)->Lookup(10)->has_value());
  EXPECT_TRUE((*tree)->RangeScan(0, UINT64_MAX)->empty());
}

TEST(BPlusTreeTest, SingleEntry) {
  BPlusTreeBuilder builder(kPageSize);
  Result<std::vector<Page>> pages = builder.Build({{7, 77}});
  ASSERT_TRUE(pages.ok());
  PlainEngine engine(*pages);
  Result<std::unique_ptr<BPlusTree>> tree = BPlusTree::Open(&engine);
  ASSERT_TRUE(tree.ok());
  EXPECT_EQ(**(*tree)->Lookup(7), 77u);
  EXPECT_FALSE((*tree)->Lookup(8)->has_value());
}

TEST(BPlusTreeTest, OpenRejectsNonTreeData) {
  std::vector<Page> pages = {Page(0, Bytes(kPageSize, 0xab))};
  PlainEngine engine(std::move(pages));
  EXPECT_FALSE(BPlusTree::Open(&engine).ok());
  EXPECT_FALSE(BPlusTree::Open(nullptr).ok());
}

TEST(BPlusTreeTest, WorksOverCApproxPir) {
  // End-to-end: the tree pages served through the paper's engine.
  BPlusTreeBuilder builder(kPageSize);
  const auto entries = MakeEntries(200);
  Result<std::vector<Page>> pages = builder.Build(entries);
  ASSERT_TRUE(pages.ok());

  core::CApproxPir::Options options;
  options.num_pages = pages->size();
  options.page_size = kPageSize;
  options.cache_pages = 8;
  options.block_size = 4;
  Result<uint64_t> slots = core::CApproxPir::DiskSlots(options);
  ASSERT_TRUE(slots.ok());
  storage::MemoryDisk disk(*slots, kSealedSize);
  Result<std::unique_ptr<hardware::SecureCoprocessor>> cpu =
      hardware::SecureCoprocessor::Create(
          hardware::HardwareProfile::Ibm4764(), &disk, kPageSize, 42);
  ASSERT_TRUE(cpu.ok());
  Result<std::unique_ptr<core::CApproxPir>> engine =
      core::CApproxPir::Create(cpu->get(), options);
  ASSERT_TRUE(engine.ok());
  ASSERT_TRUE((*engine)->Initialize(*pages).ok());

  Result<std::unique_ptr<BPlusTree>> tree = BPlusTree::Open(engine->get());
  ASSERT_TRUE(tree.ok()) << tree.status();
  crypto::SecureRandom rng(1);
  for (int i = 0; i < 50; ++i) {
    const auto& [key, value] = entries[rng.UniformInt(entries.size())];
    Result<std::optional<uint64_t>> found = (*tree)->Lookup(key);
    ASSERT_TRUE(found.ok());
    ASSERT_TRUE(found->has_value());
    EXPECT_EQ(**found, value);
  }
  // Range scans also work through the private engine.
  Result<std::vector<std::pair<uint64_t, uint64_t>>> scan =
      (*tree)->RangeScan(10, 100);
  ASSERT_TRUE(scan.ok());
  EXPECT_FALSE(scan->empty());
}

}  // namespace
}  // namespace shpir::index
