#include "common/bytes.h"

#include <gtest/gtest.h>

namespace shpir {
namespace {

TEST(BytesTest, HexEncodeBasic) {
  const Bytes data = {0x00, 0x01, 0xab, 0xff};
  EXPECT_EQ(HexEncode(data), "0001abff");
  EXPECT_EQ(HexEncode(Bytes{}), "");
}

TEST(BytesTest, HexDecodeBasic) {
  EXPECT_EQ(HexDecode("0001abff"), (Bytes{0x00, 0x01, 0xab, 0xff}));
  EXPECT_EQ(HexDecode("ABCD"), (Bytes{0xab, 0xcd}));
  EXPECT_EQ(HexDecode(""), Bytes{});
}

TEST(BytesTest, HexDecodeRejectsMalformed) {
  EXPECT_TRUE(HexDecode("abc").empty());   // Odd length.
  EXPECT_TRUE(HexDecode("zz").empty());    // Non-hex chars.
  EXPECT_TRUE(HexDecode("0g").empty());
}

TEST(BytesTest, HexRoundTrip) {
  Bytes data(256);
  for (int i = 0; i < 256; ++i) {
    data[i] = static_cast<uint8_t>(i);
  }
  EXPECT_EQ(HexDecode(HexEncode(data)), data);
}

TEST(BytesTest, LittleEndianRoundTrip) {
  uint8_t buf[8];
  StoreLE32(0x12345678u, buf);
  EXPECT_EQ(buf[0], 0x78);
  EXPECT_EQ(buf[3], 0x12);
  EXPECT_EQ(LoadLE32(buf), 0x12345678u);
  StoreLE64(0x0123456789abcdefull, buf);
  EXPECT_EQ(LoadLE64(buf), 0x0123456789abcdefull);
}

TEST(BytesTest, BigEndianRoundTrip) {
  uint8_t buf[8];
  StoreBE32(0x12345678u, buf);
  EXPECT_EQ(buf[0], 0x12);
  EXPECT_EQ(buf[3], 0x78);
  EXPECT_EQ(LoadBE32(buf), 0x12345678u);
  StoreBE64(0x0123456789abcdefull, buf);
  EXPECT_EQ(LoadBE64(buf), 0x0123456789abcdefull);
  EXPECT_EQ(buf[0], 0x01);
  EXPECT_EQ(buf[7], 0xef);
}

TEST(BytesTest, EndianExtremes) {
  uint8_t buf[8];
  StoreLE64(0, buf);
  EXPECT_EQ(LoadLE64(buf), 0u);
  StoreLE64(UINT64_MAX, buf);
  EXPECT_EQ(LoadLE64(buf), UINT64_MAX);
  StoreBE64(UINT64_MAX, buf);
  EXPECT_EQ(LoadBE64(buf), UINT64_MAX);
}

}  // namespace
}  // namespace shpir
