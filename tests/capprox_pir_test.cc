#include "core/capprox_pir.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "common/check.h"
#include "crypto/secure_random.h"
#include "hardware/coprocessor.h"
#include "obs/metrics.h"
#include "storage/access_trace.h"
#include "storage/disk.h"

namespace shpir::core {
namespace {

using storage::Page;
using storage::PageId;

constexpr size_t kPageSize = 24;
constexpr size_t kSealedSize = 12 + 8 + kPageSize + 32;

Bytes PayloadFor(PageId id) {
  Bytes data(kPageSize);
  for (size_t i = 0; i < kPageSize; ++i) {
    data[i] = static_cast<uint8_t>(id * 31 + i * 7 + 1);
  }
  return data;
}

/// Test harness holding a disk + coprocessor + engine.
struct Rig {
  std::unique_ptr<storage::MemoryDisk> disk;
  std::unique_ptr<storage::TracingDisk> tracing_disk;
  storage::AccessTrace trace;
  std::unique_ptr<hardware::SecureCoprocessor> cpu;
  std::unique_ptr<CApproxPir> engine;

  static Rig Make(CApproxPir::Options options, uint64_t seed = 42,
                  bool load = true) {
    Rig rig;
    Result<uint64_t> slots = CApproxPir::DiskSlots(options);
    SHPIR_CHECK(slots.ok());
    rig.disk = std::make_unique<storage::MemoryDisk>(*slots, kSealedSize);
    rig.tracing_disk =
        std::make_unique<storage::TracingDisk>(rig.disk.get(), &rig.trace);
    hardware::HardwareProfile profile = hardware::HardwareProfile::Ibm4764();
    Result<std::unique_ptr<hardware::SecureCoprocessor>> cpu =
        hardware::SecureCoprocessor::Create(profile, rig.tracing_disk.get(),
                                            options.page_size, seed);
    SHPIR_CHECK(cpu.ok());
    rig.cpu = std::move(cpu).value();
    Result<std::unique_ptr<CApproxPir>> engine =
        CApproxPir::Create(rig.cpu.get(), options, &rig.trace);
    SHPIR_CHECK(engine.ok());
    rig.engine = std::move(engine).value();
    if (load) {
      std::vector<Page> pages;
      for (PageId id = 0; id < options.num_pages; ++id) {
        pages.emplace_back(id, PayloadFor(id));
      }
      SHPIR_CHECK_OK(rig.engine->Initialize(pages));
    }
    return rig;
  }
};

CApproxPir::Options SmallOptions() {
  CApproxPir::Options options;
  options.num_pages = 50;
  options.page_size = kPageSize;
  options.cache_pages = 8;
  options.block_size = 8;
  return options;
}

TEST(CApproxPirTest, RetrieveReturnsCorrectPayloads) {
  Rig rig = Rig::Make(SmallOptions());
  for (PageId id = 0; id < 50; ++id) {
    Result<Bytes> data = rig.engine->Retrieve(id);
    ASSERT_TRUE(data.ok()) << "id=" << id << ": " << data.status();
    EXPECT_EQ(*data, PayloadFor(id)) << "id=" << id;
  }
}

TEST(CApproxPirTest, CorrectUnderHeavyRandomChurn) {
  // 2000 random retrieves must all return correct data — this exercises
  // every path: cache hits, block hits, disk reads, evictions.
  Rig rig = Rig::Make(SmallOptions(), 7);
  crypto::SecureRandom rng(99);
  for (int i = 0; i < 2000; ++i) {
    const PageId id = rng.UniformInt(50);
    Result<Bytes> data = rig.engine->Retrieve(id);
    ASSERT_TRUE(data.ok()) << "query " << i;
    ASSERT_EQ(*data, PayloadFor(id)) << "query " << i << " id " << id;
  }
  // All hit categories must have been exercised.
  const CApproxPir::Stats& stats = rig.engine->stats();
  EXPECT_EQ(stats.queries, 2000u);
  EXPECT_GT(stats.cache_hits, 0u);
  EXPECT_GT(stats.block_hits, 0u);
}

TEST(CApproxPirTest, RepeatedRequestsForSamePage) {
  Rig rig = Rig::Make(SmallOptions());
  for (int i = 0; i < 100; ++i) {
    Result<Bytes> data = rig.engine->Retrieve(17);
    ASSERT_TRUE(data.ok());
    EXPECT_EQ(*data, PayloadFor(17));
  }
  EXPECT_GT(rig.engine->stats().cache_hits, 50u);
}

TEST(CApproxPirTest, PageMapStaysConsistentPermutation) {
  // After heavy churn, the uncached pages' locations must form a
  // permutation of the disk slots and cached pages must fill the cache.
  Rig rig = Rig::Make(SmallOptions(), 3);
  crypto::SecureRandom rng(4);
  for (int i = 0; i < 500; ++i) {
    ASSERT_TRUE(rig.engine->Retrieve(rng.UniformInt(50)).ok());
  }
  const uint64_t id_space =
      rig.engine->disk_slots() + rig.engine->cache_pages();
  std::set<uint64_t> locations;
  uint64_t cached = 0;
  for (PageId id = 0; id < id_space; ++id) {
    if (rig.engine->DebugIsCached(id)) {
      ++cached;
      continue;
    }
    Result<storage::Location> loc = rig.engine->DebugLocation(id);
    ASSERT_TRUE(loc.ok());
    EXPECT_TRUE(locations.insert(*loc).second)
        << "duplicate location " << *loc;
  }
  EXPECT_EQ(cached, rig.engine->cache_pages());
  EXPECT_EQ(locations.size(), rig.engine->disk_slots());
  EXPECT_EQ(*locations.rbegin(), rig.engine->disk_slots() - 1);
}

TEST(CApproxPirTest, ConstantCostPerQuery) {
  Rig rig = Rig::Make(SmallOptions());
  const uint64_t k = rig.engine->block_size();
  crypto::SecureRandom rng(5);
  hardware::CostAccountant::Counters prev = rig.cpu->cost().Snapshot();
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(rig.engine->Retrieve(rng.UniformInt(50)).ok());
    const hardware::CostAccountant::Counters now = rig.cpu->cost().Snapshot();
    const hardware::CostAccountant::Counters delta = now - prev;
    prev = now;
    // Paper §5: 4 random accesses, k+1 pages transferred twice, k+1
    // pages enciphered + deciphered.
    EXPECT_EQ(delta.seeks, 4u) << i;
    EXPECT_EQ(delta.disk_bytes, 2 * (k + 1) * kSealedSize) << i;
    EXPECT_EQ(delta.link_bytes, 2 * (k + 1) * kSealedSize) << i;
    EXPECT_EQ(delta.crypto_bytes, 2 * (k + 1) * kPageSize) << i;
  }
}

TEST(CApproxPirTest, UpdatesAreCostIndistinguishableFromQueries) {
  CApproxPir::Options options = SmallOptions();
  options.insert_reserve = 10;
  Rig rig = Rig::Make(options);
  const uint64_t k = rig.engine->block_size();
  const auto cost_of = [&](auto&& fn) {
    const auto before = rig.cpu->cost().Snapshot();
    fn();
    const auto delta = rig.cpu->cost().Snapshot() - before;
    EXPECT_EQ(delta.seeks, 4u);
    EXPECT_EQ(delta.disk_bytes, 2 * (k + 1) * kSealedSize);
    return delta;
  };
  cost_of([&] { ASSERT_TRUE(rig.engine->Retrieve(1).ok()); });
  cost_of([&] { ASSERT_TRUE(rig.engine->Modify(2, PayloadFor(99)).ok()); });
  cost_of([&] { ASSERT_TRUE(rig.engine->Remove(3).ok()); });
  cost_of([&] { ASSERT_TRUE(rig.engine->Insert(PayloadFor(77)).ok()); });
}

TEST(CApproxPirTest, TraceShapePerQuery) {
  Rig rig = Rig::Make(SmallOptions());
  rig.trace.Clear();
  const uint64_t k = rig.engine->block_size();
  ASSERT_TRUE(rig.engine->Retrieve(0).ok());
  // k block reads + 1 extra read + k block writes + 1 extra write.
  const auto& events = rig.trace.events();
  ASSERT_EQ(events.size(), 2 * (k + 1));
  uint64_t reads = 0, writes = 0;
  for (const auto& e : events) {
    if (e.op == storage::AccessEvent::Op::kRead) {
      ++reads;
    } else {
      ++writes;
    }
    EXPECT_EQ(e.request_index, 0u);
  }
  EXPECT_EQ(reads, k + 1);
  EXPECT_EQ(writes, k + 1);
  // The first k reads are the round-robin block (slots 0..k-1 on the
  // very first query).
  for (uint64_t i = 0; i < k; ++i) {
    EXPECT_EQ(events[i].location, i);
    EXPECT_EQ(events[i].op, storage::AccessEvent::Op::kRead);
  }
}

TEST(CApproxPirTest, RoundRobinBlockSchedule) {
  Rig rig = Rig::Make(SmallOptions());
  const uint64_t k = rig.engine->block_size();
  const uint64_t T = rig.engine->scan_period();
  rig.trace.Clear();
  for (uint64_t q = 0; q < T + 2; ++q) {
    ASSERT_TRUE(rig.engine->Retrieve(q % 50).ok());
  }
  // Query q must start reading at block (q mod T) * k.
  const auto& events = rig.trace.events();
  uint64_t idx = 0;
  for (uint64_t q = 0; q < T + 2; ++q) {
    EXPECT_EQ(events[idx].location, (q % T) * k) << "query " << q;
    idx += 2 * (k + 1);
  }
}

TEST(CApproxPirTest, ModifyThenRetrieve) {
  Rig rig = Rig::Make(SmallOptions());
  const Bytes new_data = PayloadFor(1234);
  ASSERT_TRUE(rig.engine->Modify(10, new_data).ok());
  Result<Bytes> data = rig.engine->Retrieve(10);
  ASSERT_TRUE(data.ok());
  EXPECT_EQ(*data, new_data);
  // Modify a page that is currently cached.
  ASSERT_TRUE(rig.engine->Retrieve(11).ok());
  if (rig.engine->DebugIsCached(11)) {
    const Bytes other = PayloadFor(4321);
    ASSERT_TRUE(rig.engine->Modify(11, other).ok());
    EXPECT_EQ(*rig.engine->Retrieve(11), other);
  }
}

TEST(CApproxPirTest, ModifyUnderChurnPersists) {
  Rig rig = Rig::Make(SmallOptions(), 21);
  crypto::SecureRandom rng(22);
  ASSERT_TRUE(rig.engine->Modify(5, PayloadFor(500)).ok());
  for (int i = 0; i < 300; ++i) {
    ASSERT_TRUE(rig.engine->Retrieve(rng.UniformInt(50)).ok());
  }
  EXPECT_EQ(*rig.engine->Retrieve(5), PayloadFor(500));
}

TEST(CApproxPirTest, RemoveMakesPageUnreachable) {
  Rig rig = Rig::Make(SmallOptions());
  ASSERT_TRUE(rig.engine->Remove(7).ok());
  Result<Bytes> data = rig.engine->Retrieve(7);
  EXPECT_FALSE(data.ok());
  EXPECT_EQ(data.status().code(), StatusCode::kNotFound);
  // Other pages unaffected.
  EXPECT_EQ(*rig.engine->Retrieve(8), PayloadFor(8));
}

TEST(CApproxPirTest, RemoveCachedPage) {
  Rig rig = Rig::Make(SmallOptions());
  // Pull page 9 into the cache, then delete it.
  ASSERT_TRUE(rig.engine->Retrieve(9).ok());
  ASSERT_TRUE(rig.engine->Remove(9).ok());
  // The dead page must no longer occupy a cache slot.
  EXPECT_FALSE(rig.engine->DebugIsCached(9));
  EXPECT_FALSE(rig.engine->Retrieve(9).ok());
}

TEST(CApproxPirTest, InsertReturnsRetrievablePage) {
  CApproxPir::Options options = SmallOptions();
  options.insert_reserve = 5;
  Rig rig = Rig::Make(options);
  const Bytes payload = PayloadFor(999);
  Result<PageId> id = rig.engine->Insert(payload);
  ASSERT_TRUE(id.ok()) << id.status();
  EXPECT_GE(*id, options.num_pages);
  Result<Bytes> data = rig.engine->Retrieve(*id);
  ASSERT_TRUE(data.ok());
  EXPECT_EQ(*data, payload);
}

TEST(CApproxPirTest, InsertSurvivesChurn) {
  CApproxPir::Options options = SmallOptions();
  options.insert_reserve = 5;
  Rig rig = Rig::Make(options, 31);
  Result<PageId> id = rig.engine->Insert(PayloadFor(600));
  ASSERT_TRUE(id.ok());
  crypto::SecureRandom rng(32);
  for (int i = 0; i < 300; ++i) {
    ASSERT_TRUE(rig.engine->Retrieve(rng.UniformInt(50)).ok());
  }
  EXPECT_EQ(*rig.engine->Retrieve(*id), PayloadFor(600));
}

TEST(CApproxPirTest, RemoveThenInsertReusesSlot) {
  Rig rig = Rig::Make(SmallOptions());  // No insert reserve...
  // ...but dummies from padding + cache seeding are available, so drain
  // them first to prove Remove replenishes the pool.
  int inserted = 0;
  while (rig.engine->Insert(PayloadFor(1)).ok()) {
    ++inserted;
  }
  EXPECT_GT(inserted, 0);
  ASSERT_TRUE(rig.engine->Remove(0).ok());
  Result<PageId> id = rig.engine->Insert(PayloadFor(2));
  ASSERT_TRUE(id.ok()) << id.status();
  EXPECT_EQ(*rig.engine->Retrieve(*id), PayloadFor(2));
}

TEST(CApproxPirTest, MixedWorkloadEndToEnd) {
  CApproxPir::Options options = SmallOptions();
  options.insert_reserve = 20;
  Rig rig = Rig::Make(options, 77);
  crypto::SecureRandom rng(78);
  // Shadow model of expected contents.
  std::vector<std::pair<PageId, Bytes>> live;
  for (PageId id = 0; id < options.num_pages; ++id) {
    live.emplace_back(id, PayloadFor(id));
  }
  for (int step = 0; step < 600; ++step) {
    const uint64_t action = rng.UniformInt(10);
    if (action < 6 && !live.empty()) {
      const size_t pick = rng.UniformInt(live.size());
      Result<Bytes> data = rig.engine->Retrieve(live[pick].first);
      ASSERT_TRUE(data.ok()) << "step " << step;
      ASSERT_EQ(*data, live[pick].second) << "step " << step;
    } else if (action < 8 && !live.empty()) {
      const size_t pick = rng.UniformInt(live.size());
      Bytes data = PayloadFor(rng.UniformInt(100000));
      ASSERT_TRUE(rig.engine->Modify(live[pick].first, data).ok());
      live[pick].second = data;
    } else if (action == 8 && !live.empty()) {
      const size_t pick = rng.UniformInt(live.size());
      ASSERT_TRUE(rig.engine->Remove(live[pick].first).ok());
      live.erase(live.begin() + static_cast<ptrdiff_t>(pick));
    } else {
      Bytes data = PayloadFor(rng.UniformInt(100000));
      Result<PageId> id = rig.engine->Insert(data);
      if (id.ok()) {
        live.emplace_back(*id, data);
      }
    }
  }
  // Final sweep: everything still correct.
  for (const auto& [id, data] : live) {
    ASSERT_EQ(*rig.engine->Retrieve(id), data) << "final sweep id " << id;
  }
}

TEST(CApproxPirTest, RelocationObserverFiresOncePerQuery) {
  Rig rig = Rig::Make(SmallOptions());
  uint64_t events = 0;
  uint64_t last_request = 0;
  rig.engine->set_relocation_observer(
      [&](PageId, storage::Location loc, uint64_t request_index) {
        ++events;
        last_request = request_index;
        EXPECT_LT(loc, rig.engine->disk_slots());
      });
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(rig.engine->Retrieve(static_cast<PageId>(i)).ok());
  }
  EXPECT_EQ(events, 20u);
  EXPECT_EQ(last_request, 19u);
}

TEST(CApproxPirTest, PrivacyDerivedBlockSize) {
  CApproxPir::Options options;
  options.num_pages = 2000;
  options.page_size = kPageSize;
  options.cache_pages = 50;
  options.privacy_c = 2.0;
  options.block_size = 0;  // Derive via Eq. 6.
  Rig rig = Rig::Make(options);
  EXPECT_GT(rig.engine->block_size(), 1u);
  EXPECT_LE(rig.engine->achieved_privacy(), 2.0 * 1.01);
  EXPECT_GT(rig.engine->achieved_privacy(), 1.0);
  EXPECT_EQ(*rig.engine->Retrieve(123), PayloadFor(123));
}

TEST(CApproxPirTest, SecureMemoryEnforced) {
  CApproxPir::Options options = SmallOptions();
  storage::MemoryDisk disk(*CApproxPir::DiskSlots(options), kSealedSize);
  hardware::HardwareProfile profile = hardware::HardwareProfile::Ibm4764();
  profile.secure_memory_bytes = 100;  // Far too small.
  Result<std::unique_ptr<hardware::SecureCoprocessor>> cpu =
      hardware::SecureCoprocessor::Create(profile, &disk, kPageSize, 1);
  ASSERT_TRUE(cpu.ok());
  Result<std::unique_ptr<CApproxPir>> engine =
      CApproxPir::Create(cpu->get(), options);
  EXPECT_FALSE(engine.ok());
  EXPECT_EQ(engine.status().code(), StatusCode::kResourceExhausted);
}

TEST(CApproxPirTest, SecureMemoryReleasedOnDestruction) {
  CApproxPir::Options options = SmallOptions();
  storage::MemoryDisk disk(*CApproxPir::DiskSlots(options), kSealedSize);
  Result<std::unique_ptr<hardware::SecureCoprocessor>> cpu =
      hardware::SecureCoprocessor::Create(hardware::HardwareProfile::Ibm4764(),
                                          &disk, kPageSize, 1);
  ASSERT_TRUE(cpu.ok());
  {
    Result<std::unique_ptr<CApproxPir>> engine =
        CApproxPir::Create(cpu->get(), options);
    ASSERT_TRUE(engine.ok());
    EXPECT_GT((*cpu)->secure_memory_used(), 0u);
  }
  EXPECT_EQ((*cpu)->secure_memory_used(), 0u);
}

TEST(CApproxPirTest, CreateValidation) {
  CApproxPir::Options options = SmallOptions();
  storage::MemoryDisk disk(*CApproxPir::DiskSlots(options), kSealedSize);
  Result<std::unique_ptr<hardware::SecureCoprocessor>> cpu =
      hardware::SecureCoprocessor::Create(hardware::HardwareProfile::Ibm4764(),
                                          &disk, kPageSize, 1);
  ASSERT_TRUE(cpu.ok());

  EXPECT_FALSE(CApproxPir::Create(nullptr, options).ok());

  CApproxPir::Options bad = options;
  bad.num_pages = 0;
  EXPECT_FALSE(CApproxPir::Create(cpu->get(), bad).ok());
  bad = options;
  bad.cache_pages = 1;
  EXPECT_FALSE(CApproxPir::Create(cpu->get(), bad).ok());
  bad = options;
  bad.block_size = 0;
  bad.privacy_c = 1.0;
  EXPECT_FALSE(CApproxPir::Create(cpu->get(), bad).ok());

  // Wrong disk geometry.
  storage::MemoryDisk wrong_disk(13, kSealedSize);
  Result<std::unique_ptr<hardware::SecureCoprocessor>> cpu2 =
      hardware::SecureCoprocessor::Create(hardware::HardwareProfile::Ibm4764(),
                                          &wrong_disk, kPageSize, 1);
  ASSERT_TRUE(cpu2.ok());
  EXPECT_FALSE(CApproxPir::Create(cpu2->get(), options).ok());
}

TEST(CApproxPirTest, OperationsBeforeInitializeFail) {
  Rig rig = Rig::Make(SmallOptions(), 42, /*load=*/false);
  EXPECT_EQ(rig.engine->Retrieve(0).status().code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(rig.engine->Insert(Bytes(4, 0)).status().code(),
            StatusCode::kFailedPrecondition);
}

TEST(CApproxPirTest, DoubleInitializeFails) {
  Rig rig = Rig::Make(SmallOptions());
  EXPECT_EQ(rig.engine->Initialize({}).code(),
            StatusCode::kFailedPrecondition);
}

TEST(CApproxPirTest, RejectsOutOfRangeIds) {
  Rig rig = Rig::Make(SmallOptions());
  EXPECT_FALSE(rig.engine->Retrieve(50).ok());  // Dummies not addressable.
  EXPECT_FALSE(rig.engine->Retrieve(100000).ok());
  EXPECT_FALSE(rig.engine->Modify(50, Bytes(4, 0)).ok());
  EXPECT_FALSE(rig.engine->Remove(50).ok());
}

TEST(CApproxPirTest, RejectsOversizedPayloads) {
  CApproxPir::Options options = SmallOptions();
  options.insert_reserve = 2;
  Rig rig = Rig::Make(options);
  EXPECT_FALSE(rig.engine->Modify(0, Bytes(kPageSize + 1, 0)).ok());
  EXPECT_FALSE(rig.engine->Insert(Bytes(kPageSize + 1, 0)).ok());
}

TEST(CApproxPirTest, ShortPayloadsZeroPadded) {
  Rig rig = Rig::Make(SmallOptions());
  ASSERT_TRUE(rig.engine->Modify(0, Bytes{1, 2, 3}).ok());
  Result<Bytes> data = rig.engine->Retrieve(0);
  ASSERT_TRUE(data.ok());
  ASSERT_EQ(data->size(), kPageSize);
  EXPECT_EQ((*data)[0], 1);
  EXPECT_EQ((*data)[2], 3);
  EXPECT_EQ((*data)[3], 0);
}

TEST(CApproxPirTest, TinyConfigurations) {
  // Smallest viable setups must still work.
  for (uint64_t m : {2u, 3u}) {
    for (uint64_t k : {1u, 2u, 3u}) {
      CApproxPir::Options options;
      options.num_pages = 6;
      options.page_size = kPageSize;
      options.cache_pages = m;
      options.block_size = k;
      Rig rig = Rig::Make(options, 1000 + m * 10 + k);
      crypto::SecureRandom rng(m * 100 + k);
      for (int i = 0; i < 200; ++i) {
        const PageId id = rng.UniformInt(6);
        ASSERT_EQ(*rig.engine->Retrieve(id), PayloadFor(id))
            << "m=" << m << " k=" << k << " i=" << i;
      }
    }
  }
}

TEST(CApproxPirTest, StatsTracking) {
  CApproxPir::Options options = SmallOptions();
  options.insert_reserve = 4;
  Rig rig = Rig::Make(options);
  ASSERT_TRUE(rig.engine->Retrieve(0).ok());
  ASSERT_TRUE(rig.engine->Modify(1, Bytes{9}).ok());
  ASSERT_TRUE(rig.engine->Remove(2).ok());
  ASSERT_TRUE(rig.engine->Insert(Bytes{8}).ok());
  const CApproxPir::Stats& stats = rig.engine->stats();
  EXPECT_EQ(stats.queries, 4u);
  EXPECT_EQ(stats.modifies, 1u);
  EXPECT_EQ(stats.removes, 1u);
  EXPECT_EQ(stats.inserts, 1u);
}

TEST(CApproxPirTest, DiskSlotsPadsToBlockMultiple) {
  CApproxPir::Options options = SmallOptions();  // n=50, k=8.
  Result<uint64_t> slots = CApproxPir::DiskSlots(options);
  ASSERT_TRUE(slots.ok());
  EXPECT_EQ(*slots % 8, 0u);
  EXPECT_GE(*slots, 56u);  // >= n rounded up.
}

TEST(CApproxPirTest, PartialLoadZeroFillsMissingPages) {
  CApproxPir::Options options = SmallOptions();
  Rig rig = Rig::Make(options, 42, /*load=*/false);
  std::vector<Page> pages;
  pages.emplace_back(0, PayloadFor(0));  // Only page 0 provided.
  ASSERT_TRUE(rig.engine->Initialize(pages).ok());
  EXPECT_EQ(*rig.engine->Retrieve(0), PayloadFor(0));
  EXPECT_EQ(*rig.engine->Retrieve(1), Bytes(kPageSize, 0));
}

TEST(CApproxPirTest, MetricsMirrorEngineActivity) {
  CApproxPir::Options options = SmallOptions();
  options.insert_reserve = 4;
  // The registry must outlive the rig: destructors release secure memory
  // through attached gauges.
  obs::MetricsRegistry registry;
  Rig rig = Rig::Make(options);
  rig.engine->EnableMetrics(&registry);

  for (PageId id = 0; id < 10; ++id) {
    ASSERT_TRUE(rig.engine->Retrieve(id).ok());
  }
  ASSERT_TRUE(rig.engine->Modify(3, PayloadFor(3)).ok());
  ASSERT_TRUE(rig.engine->Remove(5).ok());
  Result<PageId> inserted = rig.engine->Insert(PayloadFor(7));
  ASSERT_TRUE(inserted.ok());
  ASSERT_TRUE(rig.engine->OfflineReshuffle().ok());
  ASSERT_TRUE(rig.engine->RotateKeys().ok());

  auto counter = [&](const std::string& name) {
    return registry.FindOrCreateCounter(name)->Value();
  };
  // 10 retrieves + modify + remove + insert all run rounds.
  EXPECT_EQ(counter("shpir_engine_queries_total"), 13u);
  EXPECT_EQ(counter("shpir_engine_evictions_total"), 13u);
  EXPECT_EQ(counter("shpir_engine_modifies_total"), 1u);
  EXPECT_EQ(counter("shpir_engine_removes_total"), 1u);
  EXPECT_EQ(counter("shpir_engine_inserts_total"), 1u);
  EXPECT_EQ(counter("shpir_engine_reshuffles_total"), 2u);
  EXPECT_EQ(counter("shpir_engine_key_rotations_total"), 1u);
  // The counter mirrors agree with the legacy Stats struct.
  EXPECT_EQ(counter("shpir_engine_cache_hits_total"),
            rig.engine->stats().cache_hits);
  EXPECT_EQ(counter("shpir_engine_block_hits_total"),
            rig.engine->stats().block_hits);

  // Gauges expose the round-robin cursor and the paper's parameters.
  auto gauge = [&](const std::string& name) {
    return registry.FindOrCreateGauge(name)->Value();
  };
  EXPECT_EQ(gauge("shpir_engine_block_cursor"), 0.0);  // Reshuffle reset.
  EXPECT_DOUBLE_EQ(gauge("shpir_engine_achieved_privacy_c"),
                   rig.engine->achieved_privacy());
  EXPECT_DOUBLE_EQ(gauge("shpir_engine_block_size_k"),
                   static_cast<double>(rig.engine->block_size()));
  EXPECT_DOUBLE_EQ(gauge("shpir_engine_cache_pages_m"), 8.0);

  // Latency histograms: one whole-query sample per round, one sample per
  // phase per round.
  obs::Histogram* latency =
      registry.FindOrCreateHistogram("shpir_engine_query_latency_ns");
  EXPECT_EQ(latency->Count(), 13u);
  EXPECT_GT(latency->Sum(), 0u);
  obs::Histogram* reencrypt =
      registry.FindOrCreateHistogram("shpir_engine_phase_reencrypt_ns");
  EXPECT_EQ(reencrypt->Count(), 13u);

  // Disabling restores the unmetered path; counters stop moving.
  rig.engine->EnableMetrics(nullptr);
  ASSERT_TRUE(rig.engine->Retrieve(0).ok());
  EXPECT_EQ(counter("shpir_engine_queries_total"), 13u);
  EXPECT_EQ(latency->Count(), 13u);
}

TEST(CApproxPirTest, MetricsDoNotPerturbResults) {
  // Instrumented and uninstrumented engines with the same seed must make
  // identical RNG draws, hence identical disk layouts and results.
  CApproxPir::Options options = SmallOptions();
  obs::MetricsRegistry registry;
  Rig plain = Rig::Make(options, 99);
  Rig metered = Rig::Make(options, 99);
  metered.engine->EnableMetrics(&registry);
  for (PageId id = 0; id < 30; ++id) {
    Result<Bytes> a = plain.engine->Retrieve(id % 50);
    Result<Bytes> b = metered.engine->Retrieve(id % 50);
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(b.ok());
    EXPECT_EQ(*a, *b);
  }
  // Identical adversary-visible access sequences.
  EXPECT_EQ(plain.trace.events().size(), metered.trace.events().size());
  EXPECT_TRUE(std::equal(plain.trace.events().begin(),
                         plain.trace.events().end(),
                         metered.trace.events().begin()));
}

// --- Online block-size retuning (the privacy/cost dial, live) ----------

/// 60 pages + 4 reserve = 64 slots: divisors give a rich retune ladder.
CApproxPir::Options RetuneOptions() {
  CApproxPir::Options options;
  options.num_pages = 60;
  options.page_size = kPageSize;
  options.cache_pages = 8;
  options.block_size = 8;
  options.insert_reserve = 4;
  return options;
}

TEST(CApproxPirRetuneTest, ValidatesRequestedBlockSizes) {
  Rig rig = Rig::Make(RetuneOptions());
  ASSERT_EQ(rig.engine->disk_slots(), 64u);

  EXPECT_FALSE(rig.engine->RequestBlockSize(0).ok());
  EXPECT_FALSE(rig.engine->RequestBlockSize(7).ok());   // Not a divisor.
  EXPECT_FALSE(rig.engine->RequestBlockSize(24).ok());  // Not a divisor.
  EXPECT_FALSE(rig.engine->RequestBlockSize(64).ok());  // 2k > slots.
  EXPECT_TRUE(rig.engine->RequestBlockSize(32).ok());
  EXPECT_TRUE(rig.engine->RequestBlockSize(16).ok());

  Rig cold = Rig::Make(RetuneOptions(), 42, /*load=*/false);
  EXPECT_FALSE(cold.engine->RequestBlockSize(16).ok());
}

TEST(CApproxPirRetuneTest, AppliesOnlyAtScanPeriodBoundary) {
  Rig rig = Rig::Make(RetuneOptions());
  ASSERT_EQ(rig.engine->scan_period(), 8u);

  // Walk three rounds into the scan, then request a retune: it must
  // stay pending until the block cursor wraps, never landing mid-scan.
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(rig.engine->Retrieve(0).ok());
  }
  ASSERT_TRUE(rig.engine->RequestBlockSize(16).ok());
  EXPECT_EQ(rig.engine->pending_block_size(), 16u);

  for (int i = 3; i < 8; ++i) {  // Rounds 4..8 finish the scan.
    ASSERT_TRUE(rig.engine->Retrieve(0).ok());
    EXPECT_EQ(rig.engine->published_block_size(), 8u);
    EXPECT_EQ(rig.engine->block_size_transitions(), 0u);
  }
  // The next round starts a fresh scan and applies the transition.
  ASSERT_TRUE(rig.engine->Retrieve(0).ok());
  EXPECT_EQ(rig.engine->published_block_size(), 16u);
  EXPECT_EQ(rig.engine->pending_block_size(), 0u);
  EXPECT_EQ(rig.engine->block_size_transitions(), 1u);
  EXPECT_EQ(rig.engine->scan_period(), 4u);  // 64 / 16.
}

TEST(CApproxPirRetuneTest, RequestingCurrentSizeCancelsPending) {
  Rig rig = Rig::Make(RetuneOptions());
  ASSERT_TRUE(rig.engine->Retrieve(0).ok());  // Leave the boundary.
  ASSERT_TRUE(rig.engine->RequestBlockSize(16).ok());
  EXPECT_EQ(rig.engine->pending_block_size(), 16u);
  ASSERT_TRUE(rig.engine->RequestBlockSize(8).ok());
  EXPECT_EQ(rig.engine->pending_block_size(), 0u);
  for (int i = 0; i < 16; ++i) {
    ASSERT_TRUE(rig.engine->Retrieve(0).ok());
  }
  EXPECT_EQ(rig.engine->published_block_size(), 8u);
  EXPECT_EQ(rig.engine->block_size_transitions(), 0u);
}

TEST(CApproxPirRetuneTest, LaterRequestReplacesPending) {
  Rig rig = Rig::Make(RetuneOptions());
  ASSERT_TRUE(rig.engine->Retrieve(0).ok());
  ASSERT_TRUE(rig.engine->RequestBlockSize(32).ok());
  ASSERT_TRUE(rig.engine->RequestBlockSize(4).ok());
  EXPECT_EQ(rig.engine->pending_block_size(), 4u);
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(rig.engine->Retrieve(0).ok());
  }
  EXPECT_EQ(rig.engine->published_block_size(), 4u);
  EXPECT_EQ(rig.engine->block_size_transitions(), 1u);
}

TEST(CApproxPirRetuneTest, DataSurvivesRepeatedRetunes) {
  Rig rig = Rig::Make(RetuneOptions());
  const std::vector<uint64_t> schedule = {16, 4, 32, 8, 2, 16};
  uint64_t expected_transitions = 0;
  for (const uint64_t k : schedule) {
    ASSERT_TRUE(rig.engine->RequestBlockSize(k).ok());
    // Drive well past a boundary, reading every page: payloads must be
    // intact across every transition.
    for (PageId id = 0; id < 60; ++id) {
      Result<Bytes> got = rig.engine->Retrieve(id);
      ASSERT_TRUE(got.ok()) << got.status();
      EXPECT_EQ(*got, PayloadFor(id)) << "page " << id << " under k=" << k;
    }
    ++expected_transitions;
    EXPECT_EQ(rig.engine->published_block_size(), k);
    EXPECT_EQ(rig.engine->block_size_transitions(), expected_transitions);
  }
}

TEST(CApproxPirRetuneTest, GrowthReservesSecureMemoryUpFront) {
  // The Eq. 7 budget must cover the larger block buffer from request
  // time: a target the device cannot fit is rejected immediately and
  // leaves no pending transition behind.
  Rig rig = Rig::Make(RetuneOptions());
  // Eat the device's remaining secure memory down to (at most) a few
  // bytes, far less than the (32 - 8) extra buffer pages k=32 needs.
  for (const uint64_t chunk : {uint64_t{1} << 20, uint64_t{1} << 10,
                               uint64_t{16}}) {
    while (rig.cpu->ReserveSecureMemory(chunk, "test ballast").ok()) {
    }
  }
  const Status grown = rig.engine->RequestBlockSize(32);
  EXPECT_EQ(grown.code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(rig.engine->pending_block_size(), 0u);
  // Shrinking needs no new reservation and still works; the engine
  // keeps serving correctly at the reduced k.
  ASSERT_TRUE(rig.engine->RequestBlockSize(4).ok());
  for (PageId id = 0; id < 20; ++id) {
    Result<Bytes> got = rig.engine->Retrieve(id);
    ASSERT_TRUE(got.ok());
    EXPECT_EQ(*got, PayloadFor(id));
  }
  EXPECT_EQ(rig.engine->published_block_size(), 4u);
}

}  // namespace
}  // namespace shpir::core
