#include "crypto/chacha20.h"

#include <gtest/gtest.h>

#include <string>

#include "common/bytes.h"

namespace shpir::crypto {
namespace {

// RFC 8439 section 2.3.2: keystream block test vector.
TEST(ChaCha20Test, Rfc8439KeystreamBlock) {
  const Bytes key = HexDecode(
      "000102030405060708090a0b0c0d0e0f101112131415161718191a1b1c1d1e1f");
  const Bytes nonce = HexDecode("000000090000004a00000000");
  Result<ChaCha20> cipher = ChaCha20::Create(key);
  ASSERT_TRUE(cipher.ok());
  uint8_t block[ChaCha20::kBlockSize];
  ASSERT_TRUE(cipher->KeystreamBlock(nonce, 1, block).ok());
  EXPECT_EQ(HexEncode(ByteSpan(block, 64)),
            "10f1e7e4d13b5915500fdd1fa32071c4c7d1f4c733c068030422aa9ac3d46c4e"
            "d2826446079faa0914c2d705d98b02a2b5129cd1de164eb9cbd083e8a2503c4e");
}

// RFC 8439 section 2.4.2: full encryption test.
TEST(ChaCha20Test, Rfc8439Encryption) {
  const Bytes key = HexDecode(
      "000102030405060708090a0b0c0d0e0f101112131415161718191a1b1c1d1e1f");
  const Bytes nonce = HexDecode("000000000000004a00000000");
  const std::string msg =
      "Ladies and Gentlemen of the class of '99: If I could offer you only "
      "one tip for the future, sunscreen would be it.";
  const Bytes pt(msg.begin(), msg.end());
  Result<ChaCha20> cipher = ChaCha20::Create(key);
  ASSERT_TRUE(cipher.ok());
  Bytes ct(pt.size());
  ASSERT_TRUE(cipher->Crypt(nonce, 1, pt, ct).ok());
  EXPECT_EQ(HexEncode(ct),
            "6e2e359a2568f98041ba0728dd0d6981e97e7aec1d4360c20a27afccfd9fae0b"
            "f91b65c5524733ab8f593dabcd62b3571639d624e65152ab8f530c359f0861d8"
            "07ca0dbf500d6a6156a38e088a22b65e52bc514d16ccf806818ce91ab7793736"
            "5af90bbf74a35be6b40b8eedf2785e42874d");
}

TEST(ChaCha20Test, RoundTrip) {
  const Bytes key(32, 0x77);
  Result<ChaCha20> cipher = ChaCha20::Create(key);
  ASSERT_TRUE(cipher.ok());
  const Bytes nonce(12, 0x05);
  for (size_t len : {0u, 1u, 63u, 64u, 65u, 1000u}) {
    Bytes pt(len, 0x3c);
    Bytes ct(len), back(len);
    ASSERT_TRUE(cipher->Crypt(nonce, 0, pt, ct).ok());
    ASSERT_TRUE(cipher->Crypt(nonce, 0, ct, back).ok());
    EXPECT_EQ(pt, back) << "len " << len;
  }
}

TEST(ChaCha20Test, RejectsBadKeyAndNonce) {
  EXPECT_FALSE(ChaCha20::Create(Bytes(16, 0)).ok());
  EXPECT_FALSE(ChaCha20::Create(Bytes(31, 0)).ok());
  Result<ChaCha20> cipher = ChaCha20::Create(Bytes(32, 0));
  ASSERT_TRUE(cipher.ok());
  uint8_t block[64];
  EXPECT_FALSE(cipher->KeystreamBlock(Bytes(8, 0), 0, block).ok());
}

TEST(ChaCha20Test, CounterAdvancesKeystream) {
  Result<ChaCha20> cipher = ChaCha20::Create(Bytes(32, 0x01));
  ASSERT_TRUE(cipher.ok());
  const Bytes nonce(12, 0);
  uint8_t b0[64], b1[64];
  ASSERT_TRUE(cipher->KeystreamBlock(nonce, 0, b0).ok());
  ASSERT_TRUE(cipher->KeystreamBlock(nonce, 1, b1).ok());
  EXPECT_NE(HexEncode(ByteSpan(b0, 64)), HexEncode(ByteSpan(b1, 64)));
  // Crypt over 128 zero bytes equals the two keystream blocks concatenated.
  Bytes zeros(128, 0), out(128);
  ASSERT_TRUE(cipher->Crypt(nonce, 0, zeros, out).ok());
  EXPECT_EQ(HexEncode(ByteSpan(out.data(), 64)), HexEncode(ByteSpan(b0, 64)));
  EXPECT_EQ(HexEncode(ByteSpan(out.data() + 64, 64)),
            HexEncode(ByteSpan(b1, 64)));
}

}  // namespace
}  // namespace shpir::crypto
