#include "crypto/constant_time.h"

#include <gtest/gtest.h>

#include "common/bytes.h"

namespace shpir::crypto {
namespace {

TEST(ConstantTimeEquals, EqualBuffers) {
  const Bytes a = {1, 2, 3, 4};
  const Bytes b = {1, 2, 3, 4};
  EXPECT_TRUE(ConstantTimeEquals(a, b));
}

TEST(ConstantTimeEquals, ZeroLengthBuffersAreEqual) {
  const Bytes empty_a;
  const Bytes empty_b;
  EXPECT_TRUE(ConstantTimeEquals(empty_a, empty_b));
  EXPECT_TRUE(ConstantTimeEquals(ByteSpan(), ByteSpan()));
}

TEST(ConstantTimeEquals, LengthMismatchIsUnequal) {
  const Bytes a = {1, 2, 3};
  const Bytes b = {1, 2, 3, 0};
  EXPECT_FALSE(ConstantTimeEquals(a, b));
  EXPECT_FALSE(ConstantTimeEquals(b, a));
  EXPECT_FALSE(ConstantTimeEquals(a, ByteSpan()));
}

TEST(ConstantTimeEquals, SingleDifferingByteAtFirstPosition) {
  Bytes a(32, 0xAB);
  Bytes b = a;
  b[0] ^= 0x01;
  EXPECT_FALSE(ConstantTimeEquals(a, b));
}

TEST(ConstantTimeEquals, SingleDifferingByteAtLastPosition) {
  Bytes a(32, 0xAB);
  Bytes b = a;
  b[31] ^= 0x80;
  EXPECT_FALSE(ConstantTimeEquals(a, b));
}

TEST(ConstantTimeEquals, SingleByteBuffers) {
  const Bytes x = {0x00};
  const Bytes y = {0xFF};
  EXPECT_TRUE(ConstantTimeEquals(x, x));
  EXPECT_FALSE(ConstantTimeEquals(x, y));
}

TEST(ConstantTimeEquals, DifferenceInEveryByte) {
  Bytes a(16, 0x55);
  Bytes b(16, 0xAA);
  EXPECT_FALSE(ConstantTimeEquals(a, b));
}

}  // namespace
}  // namespace shpir::crypto
